// Figure 8: influence of the number of long-range links (1..10) on the
// mean route length, for the uniform and sparse (alpha = 5) distributions.
//
// Paper finding: every additional long link improves routing, with the
// largest gains up to ~6 links.
//
// Usage: bench_fig8_multilink [--full] [--csv] [--objects N] [--pairs M]
//                             [--checkpoint C] [--seed S] [--max-links K]
#include <iostream>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) try {
  using namespace voronet;
  const bench::Args args(argc, argv);
  const bench::Scale scale = bench::resolve_scale(args);
  const auto max_links = static_cast<std::size_t>(
      args.flags().get_int("max-links", scale.full ? 10 : 6));
  args.finish();

  std::cerr << "[fig8] objects=" << scale.objects << " pairs=" << scale.pairs
            << " links=1.." << max_links
            << (scale.full ? " (paper scale)" : " (default scale)") << "\n";

  const std::vector<workload::DistributionConfig> dists{
      workload::DistributionConfig::uniform(),
      workload::DistributionConfig::power_law(5.0)};

  bench::Json doc = bench::Json::object();
  doc.set("bench", bench::Json::string("fig8_multilink"))
      .set("objects", bench::Json::integer(scale.objects))
      .set("pairs", bench::Json::integer(scale.pairs))
      .set("max_links", bench::Json::integer(max_links))
      .set("seed", bench::Json::integer(scale.seed));

  for (const auto& dist : dists) {
    // One growth series per link count k.
    std::vector<std::vector<bench::GrowthPoint>> per_k;
    for (std::size_t k = 1; k <= max_links; ++k) {
      Timer t;
      per_k.push_back(bench::route_growth_series(dist, scale, k));
      std::cerr << "[fig8] " << dist.name() << " k=" << k << " done in "
                << t.seconds() << "s\n";
    }

    std::vector<std::string> header{"objects"};
    for (std::size_t k = 1; k <= max_links; ++k) {
      header.push_back("k=" + std::to_string(k));
    }
    stats::Table table(header);
    for (std::size_t row = 0; row < per_k[0].size(); ++row) {
      std::vector<std::string> cells{
          stats::Table::cell(per_k[0][row].objects)};
      for (const auto& s : per_k) {
        cells.push_back(stats::Table::cell(s[row].mean_hops, 2));
      }
      table.add_row(cells);
    }
    std::cout << "Figure 8 (" << dist.name()
              << "): mean route length vs long-link count\n";
    if (scale.csv) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }
    std::cout << "\n";
    doc.set(dist.name(), bench::table_json(table));
  }
  bench::write_json_file(scale.json_path, doc);
  return 0;
} catch (const std::exception& e) {
  std::cerr << "bench_fig8_multilink: " << e.what() << "\n";
  return 1;
}
