// Million-object scale benchmark: the protocol engine grown to
// N in {100k, 300k, 1M} nodes in ONE process, entirely through
// message-level joins, with churn and region queries served at every
// checkpoint (ROADMAP item 1; DESIGN.md, "Memory layout & arenas").
//
// At each checkpoint the bench records:
//   * build cost      -- wall seconds and event rate of the growth leg;
//   * churn service   -- crashes + leaves + rejoins, drained to
//                        convergence (the differential audit must pass);
//   * query service   -- radius queries sized to ~20 cells, with wall
//                        queries/s, mean messages and greedy hops per
//                        query;
//   * memory          -- the bytes-per-node decomposition (view arena /
//                        slot table / transport / query state) plus
//                        VmRSS / VmHWM from /proc/self/status.
//
// Usage: bench_scale [--churn C] [--queries Q] [--max-bytes-per-node B]
//                    [--seed S] [--csv] [--smoke] [--full] [--json PATH]
//
// --smoke shrinks the ladder to {2k, 6k} for CI; --max-bytes-per-node
// turns the structural bytes-per-node figure at the largest checkpoint
// into the exit status, so CI gates memory regressions.  The committed
// BENCH_scale.json is the --full run (N = 10^6 top rung).
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/expect.hpp"
#include "common/timer.hpp"
#include "protocol/harness.hpp"
#include "stats/table.hpp"
#include "workload/distributions.hpp"

namespace {

using namespace voronet;

/// Large enough for the 10^6 growth leg (~10^8-10^9 events end to end);
/// run_to_idle's default budget is sized for tests.
constexpr std::size_t kEventBudget = 4'000'000'000ULL;

struct Rss {
  std::size_t rss_kb = 0;  ///< VmRSS
  std::size_t hwm_kb = 0;  ///< VmHWM (peak)
};

Rss read_rss() {
  Rss r;
#ifdef __linux__
  std::ifstream in("/proc/self/status");
  std::string key;
  while (in >> key) {
    if (key == "VmRSS:") {
      in >> r.rss_kb;
    } else if (key == "VmHWM:") {
      in >> r.hwm_kb;
    }
  }
#endif
  return r;
}

void drain(protocol::ProtocolHarness& h) {
  const auto run = h.run_to_idle(kEventBudget);
  VORONET_EXPECT(!run.budget_exhausted, "scale run did not quiesce");
}

}  // namespace

int main(int argc, char** argv) try {
  const bench::Args args(argc, argv, /*default_seed=*/9);
  const std::vector<std::size_t> sizes =
      args.smoke ? std::vector<std::size_t>{2'000, 6'000}
                 : std::vector<std::size_t>{100'000, 300'000, 1'000'000};
  const auto churn_ops = static_cast<std::size_t>(
      args.flags().get_int("churn", args.smoke ? 40 : 200));
  const auto query_count = static_cast<std::size_t>(
      args.flags().get_int("queries", args.smoke ? 20 : 200));
  const auto max_bytes_per_node = static_cast<std::size_t>(
      args.flags().get_int("max-bytes-per-node", 0));
  args.finish();

  const Rss baseline = read_rss();

  protocol::HarnessConfig config;
  config.overlay.n_max = sizes.back() * 4;
  config.overlay.seed = args.seed;
  config.network.seed = args.seed ^ 0xfeedULL;
  config.seed = args.seed ^ 0x907aULL;
  protocol::ProtocolHarness h(config);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  Rng rng(args.seed);

  stats::Table table({"objects", "build_s", "events/s", "queries/s",
                      "msgs/query", "hops/query", "B/node", "view_B",
                      "slot_B", "transport_B", "rss_MB"});
  bench::Json checkpoints = bench::Json::array();
  std::size_t join_seq = 0;
  double first_bytes_per_node = 0.0;
  double last_bytes_per_node = 0.0;

  for (const std::size_t target : sizes) {
    // --- Growth leg: protocol joins only, timed ------------------------
    Timer build;
    const std::size_t events_before = h.queue().processed();
    while (h.node_count() + h.pending_joins() < target) {
      h.join_after(0.01 * static_cast<double>(join_seq++), gen.next(rng));
    }
    drain(h);
    const double build_secs = build.seconds();
    const double build_events =
        static_cast<double>(h.queue().processed() - events_before);
    VORONET_EXPECT(h.node_count() == target, "growth fell short");

    // --- Churn leg: crashes, voluntary leaves, rejoins -----------------
    Timer churn;
    for (std::size_t i = 0; i < churn_ops / 2; ++i) {
      h.crash(h.random_node(rng));
      h.leave_after(0.0, h.random_node(rng));
    }
    drain(h);
    while (h.node_count() + h.pending_joins() < target) {
      h.join_after(0.01 * static_cast<double>(join_seq++), gen.next(rng));
    }
    drain(h);
    const double churn_secs = churn.seconds();
    VORONET_EXPECT(h.node_count() == target, "churn did not restore N");

    // --- Query leg: radius queries sized to ~20 served cells -----------
    const double radius = std::sqrt(
        20.0 / (3.14159265358979 * static_cast<double>(target)));
    std::vector<std::uint64_t> ids;
    ids.reserve(query_count);
    Timer queries;
    for (std::size_t i = 0; i < query_count; ++i) {
      ids.push_back(h.issue_radius_query(h.random_node(rng), gen.next(rng),
                                         radius,
                                         0.01 * static_cast<double>(i)));
    }
    drain(h);
    const double query_secs = queries.seconds();
    double total_msgs = 0.0;
    double total_hops = 0.0;
    double total_latency = 0.0;
    std::size_t served_cells = 0;
    for (const std::uint64_t id : ids) {
      const auto& rec = h.query_record(id);
      VORONET_EXPECT(rec.done, "query did not complete");
      total_msgs += static_cast<double>(rec.total_messages());
      total_hops += static_cast<double>(rec.route_hops);
      total_latency += rec.latency();
      served_cells += rec.owners.size();
    }
    const double qn = static_cast<double>(query_count);
    h.drop_completed_queries();

    // --- Audit + memory ------------------------------------------------
    const auto verify = h.verify_views();
    VORONET_EXPECT(verify.converged(),
                   "differential audit failed at checkpoint");
    const auto mem = h.memory_breakdown();
    const double bytes_per_node =
        static_cast<double>(mem.total()) / static_cast<double>(target);
    if (first_bytes_per_node == 0.0) first_bytes_per_node = bytes_per_node;
    last_bytes_per_node = bytes_per_node;
    const Rss rss = read_rss();

    std::cerr << "[scale] N=" << target << ": built in " << build_secs
              << "s (" << build_events / build_secs << " events/s), "
              << qn / query_secs << " queries/s, "
              << total_msgs / qn << " msgs/query, " << bytes_per_node
              << " B/node, VmRSS " << rss.rss_kb / 1024 << " MB\n";

    table.add_row(
        {stats::Table::cell(target), stats::Table::cell(build_secs, 2),
         stats::Table::cell(build_events / build_secs, 0),
         stats::Table::cell(qn / query_secs, 1),
         stats::Table::cell(total_msgs / qn, 1),
         stats::Table::cell(total_hops / qn, 1),
         stats::Table::cell(bytes_per_node, 1),
         stats::Table::cell(mem.view_bytes), stats::Table::cell(mem.slot_bytes),
         stats::Table::cell(mem.transport_bytes),
         stats::Table::cell(rss.rss_kb / 1024)});

    bench::Json cp = bench::Json::object();
    cp.set("objects", bench::Json::integer(target))
        .set("build_seconds", bench::Json::number(build_secs))
        .set("build_events", bench::Json::number(build_events))
        .set("events_per_sec", bench::Json::number(build_events / build_secs))
        .set("churn_ops", bench::Json::integer(churn_ops))
        .set("churn_seconds", bench::Json::number(churn_secs));
    cp.set("queries",
           bench::Json::object()
               .set("count", bench::Json::integer(query_count))
               .set("radius", bench::Json::number(radius))
               .set("seconds", bench::Json::number(query_secs))
               .set("queries_per_sec", bench::Json::number(qn / query_secs))
               .set("mean_messages", bench::Json::number(total_msgs / qn))
               .set("mean_route_hops", bench::Json::number(total_hops / qn))
               .set("mean_latency_sim",
                    bench::Json::number(total_latency / qn))
               .set("mean_served_cells",
                    bench::Json::number(static_cast<double>(served_cells) /
                                        qn)));
    cp.set("memory",
           bench::Json::object()
               .set("view_bytes", bench::Json::integer(mem.view_bytes))
               .set("slot_bytes", bench::Json::integer(mem.slot_bytes))
               .set("transport_bytes",
                    bench::Json::integer(mem.transport_bytes))
               .set("query_bytes", bench::Json::integer(mem.query_bytes))
               .set("total_bytes", bench::Json::integer(mem.total()))
               .set("bytes_per_node", bench::Json::number(bytes_per_node))
               .set("vm_rss_kb", bench::Json::integer(rss.rss_kb))
               .set("vm_hwm_kb", bench::Json::integer(rss.hwm_kb)));
    cp.set("converged", bench::Json::boolean(verify.converged()));
    checkpoints.push(std::move(cp));
  }

  // Scale linearity: the structural footprint per node at the top rung
  // must stay under 2x the smallest rung's -- growth may add slack
  // (power-of-two classes, vector doubling) but not superlinear state.
  const double scaling = last_bytes_per_node / first_bytes_per_node;

  bench::Json doc = bench::Json::object();
  doc.set("bench", bench::Json::string("scale"));
  doc.set("seed", bench::Json::integer(args.seed));
  doc.set("baseline_rss_kb", bench::Json::integer(baseline.rss_kb));
  doc.set("checkpoints", std::move(checkpoints));
  doc.set("bytes_per_node_scaling", bench::Json::number(scaling));

  std::cout << "Protocol engine at scale (churn " << churn_ops
            << " ops, " << query_count << " queries per checkpoint)\n";
  if (args.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "bytes-per-node scaling " << sizes.front() << " -> "
            << sizes.back() << ": " << scaling << "x\n";
  bench::write_json_file(args.json_path, doc);

  if (scaling > 2.0) {
    std::cerr << "bench_scale: bytes-per-node grew " << scaling
              << "x across the ladder (limit 2x)\n";
    return 1;
  }
  if (max_bytes_per_node > 0 &&
      last_bytes_per_node > static_cast<double>(max_bytes_per_node)) {
    std::cerr << "bench_scale: " << last_bytes_per_node
              << " bytes/node exceeds the --max-bytes-per-node ceiling of "
              << max_bytes_per_node << "\n";
    return 1;
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "bench_scale: " << e.what() << "\n";
  return 1;
}
