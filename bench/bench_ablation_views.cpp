// Ablation: how much each view component contributes to routing
// (motivates the design choices of section 3.1).
//
// Configurations, on a clustered workload (sparse alpha = 5 with tight
// in-bin jitter) and a uniform one:
//   full        -- vn + cn + LRn (the paper's design)
//   no-cn       -- close neighbours ignored by the greedy step
//   no-lr       -- long links disabled (pure Delaunay greedy: O(sqrt N))
//   dmin-ball   -- dmin = 1/sqrt(pi Nmax) instead of the paper's 1/(pi Nmax)
//
// Usage: bench_ablation_views [--full] [--csv] [--objects N] [--pairs M]
//                             [--seed S]
#include <iostream>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "stats/table.hpp"

namespace {

struct Variant {
  std::string name;
  bool use_cn;
  bool use_lr;
  voronet::DminRule rule;
};

}  // namespace

int main(int argc, char** argv) try {
  using namespace voronet;
  const bench::Args args(argc, argv);
  const bench::Scale scale = bench::resolve_scale(args);
  args.finish();

  const std::size_t objects = scale.full ? 100'000 : 12'000;
  const std::size_t pairs = scale.pairs;

  std::vector<Variant> variants{
      {"full", true, true, DminRule::kPaperText},
      {"no-cn", false, true, DminRule::kPaperText},
      {"no-lr", true, false, DminRule::kPaperText},
      {"dmin-ball", true, true, DminRule::kBallExpectation},
  };

  auto clustered = workload::DistributionConfig::power_law(5.0);
  clustered.jitter = 0.05;  // clusters 20x tighter than a value bin
  const std::vector<workload::DistributionConfig> dists{
      workload::DistributionConfig::uniform(), clustered};

  stats::Table table({"workload", "variant", "objects", "mean hops",
                      "vs full"});
  for (const auto& dist : dists) {
    double full_hops = 0.0;
    for (const Variant& v : variants) {
      Timer t;
      OverlayConfig cfg;
      cfg.n_max = objects;
      cfg.seed = scale.seed;
      cfg.use_close_neighbors = v.use_cn;
      cfg.use_long_links = v.use_lr;
      cfg.dmin_rule = v.rule;
      Overlay overlay(cfg);
      Rng rng(scale.seed ^ 0xab1a7e);
      bench::grow_overlay(overlay, dist, objects, objects, rng,
                          [](std::size_t) {});
      Rng probe_rng(scale.seed + 1);
      const double hops = bench::mean_route_hops(overlay, pairs, probe_rng);
      if (v.name == "full") full_hops = hops;
      table.add_row({dist.name(), v.name, stats::Table::cell(objects),
                     stats::Table::cell(hops, 2),
                     stats::Table::cell(full_hops > 0 ? hops / full_hops : 1.0,
                                        2)});
      std::cerr << "[ablation] " << dist.name() << " " << v.name << " ("
                << t.seconds() << "s)\n";
    }
  }

  std::cout << "Ablation: routing cost by view configuration\n";
  if (scale.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  bench::write_json_file(
      scale.json_path, bench::Json::object()
                           .set("bench", bench::Json::string("ablation_views"))
                           .set("table", bench::table_json(table)));
  return 0;
} catch (const std::exception& e) {
  std::cerr << "bench_ablation_views: " << e.what() << "\n";
  return 1;
}
