// Shared machinery for the figure/table benchmark binaries.
//
// Every bench accepts:
//   --full            run at the paper's exact scale (300k objects, 100k
//                     route samples); otherwise a laptop-scale default
//   --csv             print machine-readable CSV instead of tables
//   --json PATH       additionally write the results as a JSON document
//   --objects N       override the maximum overlay size
//   --pairs M         override the number of sampled routes per checkpoint
//   --seed S          change the experiment seed
// plus bench-specific flags documented in each binary.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "stats/table.hpp"
#include "voronet/overlay.hpp"
#include "workload/distributions.hpp"

namespace voronet::bench {

/// Common scale parameters resolved from flags (paper scale under --full).
struct Scale {
  std::size_t objects;      ///< final overlay size
  std::size_t checkpoint;   ///< measure every `checkpoint` insertions
  std::size_t pairs;        ///< sampled routes per checkpoint
  std::uint64_t seed;
  bool csv;
  bool full;
  std::string json_path;    ///< empty unless --json PATH was given
};

// ---------------------------------------------------------------------------
// Minimal ordered JSON document builder.
//
// The figure benches and bench_hotpath share --json <path>: every bench
// writes one JSON object so sweep scripts and the perf-trend tracker can
// consume results without scraping tables.  Numbers are emitted with
// round-trip precision.
// ---------------------------------------------------------------------------
class Json {
 public:
  static Json object();
  static Json array();
  static Json number(double v);
  static Json integer(unsigned long long v);
  static Json string(std::string v);
  static Json boolean(bool v);

  /// Object member (insertion order preserved); returns *this for chaining.
  Json& set(const std::string& key, Json value);
  /// Array element; returns *this for chaining.
  Json& push(Json value);

  void write(std::ostream& os, int indent = 0) const;
  [[nodiscard]] std::string str() const;

 private:
  enum class Kind { kObject, kArray, kNumber, kString, kBool };
  Kind kind_ = Kind::kObject;
  std::string scalar_;  // rendered representation for leaf kinds
  std::vector<std::pair<std::string, Json>> children_;
};

/// Render a stats::Table as {"header": [...], "rows": [[...], ...]}; cells
/// that parse as numbers are emitted as numbers, the rest as strings.
Json table_json(const stats::Table& table);

/// Write `doc` to `path` (pretty-printed); throws std::runtime_error on
/// I/O failure.  No-op when path is empty, so benches can call it
/// unconditionally with scale.json_path.
void write_json_file(const std::string& path, const Json& doc);

/// Paper scale: 300,000 objects, checkpoints every 10,000 adds, 100,000
/// random couples per checkpoint (section 5).  Default scale keeps the
/// same shape at ~1/5 size so the whole harness runs in minutes.
Scale resolve_scale(const Flags& flags);

/// Grow an overlay to `target` objects under the given distribution,
/// invoking `checkpoint(n)` every `every` insertions (and at the end).
/// Gateways are chosen uniformly at random, as in the paper's setup.
template <typename Checkpoint>
void grow_overlay(Overlay& overlay, const workload::DistributionConfig& dist,
                  std::size_t target, std::size_t every, Rng& rng,
                  Checkpoint&& checkpoint) {
  workload::PointGenerator gen(dist);
  while (overlay.size() < target) {
    overlay.insert(gen.next(rng));
    if (overlay.size() % every == 0 || overlay.size() == target) {
      checkpoint(overlay.size());
    }
  }
}

/// Route measurement over random (source, target-object) couples.
struct ProbeStats {
  double mean_hops = 0.0;
  /// Fraction of routes terminated by the dmin condition before reaching
  /// the target's region (they finish with local fictive-object
  /// resolution, whose cost greedy hop counts do not show).
  double dmin_stop_fraction = 0.0;
};
ProbeStats probe_stats(const Overlay& overlay, std::size_t pairs, Rng& rng);

/// Mean greedy route length over `pairs` random (source, target-object)
/// couples, measured with read-only probes in parallel.
double mean_route_hops(const Overlay& overlay, std::size_t pairs,
                       Rng& rng);

/// One growth series: mean hops at every checkpoint.
struct GrowthPoint {
  std::size_t objects;
  double mean_hops;
};
std::vector<GrowthPoint> route_growth_series(
    const workload::DistributionConfig& dist, const Scale& scale,
    std::size_t long_links);

}  // namespace voronet::bench
