// Shared machinery for the figure/table benchmark binaries.
//
// Every bench accepts the common flag set, parsed once by parse_args():
//   --full            run at the paper's exact scale (300k objects, 100k
//                     route samples); otherwise a laptop-scale default
//   --smoke           shrink every phase for the CI smoke run (~seconds)
//   --csv             print machine-readable CSV instead of tables
//   --json PATH       additionally write the results as a JSON document
//   --seed S          change the experiment seed
// plus bench-specific flags documented in each binary (queried through
// Args::flags() before Args::finish() rejects the typos).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "common/json.hpp"
#include "stats/table.hpp"
#include "voronet/overlay.hpp"
#include "workload/distributions.hpp"

namespace voronet::bench {

// The ordered JSON document builder every bench writes --json files with.
// One definition for the whole repo (scenario reports use it too); see
// src/common/json.hpp.
using voronet::Json;
using voronet::write_json_file;

/// The common flag set, parsed once.  Bench-specific flags are queried
/// through flags(); call finish() after the last query so unknown flags
/// still abort startup.
class Args {
  // Declared first: members initialize in declaration order, and every
  // public field below reads from the parsed flags.
  Flags flags_;

 public:
  Args(int argc, const char* const* argv, std::uint64_t default_seed = 42)
      : flags_(argc, argv),
        smoke(flags_.get_bool("smoke", false)),
        full(bench_full_scale(flags_)),
        csv(flags_.get_bool("csv", false)),
        seed(static_cast<std::uint64_t>(
            flags_.get_int("seed", static_cast<std::int64_t>(default_seed)))),
        json_path(flags_.get_string("json", "")) {}

  const bool smoke;
  const bool full;
  const bool csv;
  const std::uint64_t seed;
  const std::string json_path;

  [[nodiscard]] const Flags& flags() const { return flags_; }
  /// Throws std::invalid_argument if any parsed flag was never queried.
  void finish() const { flags_.reject_unconsumed(); }
};

/// Common scale parameters resolved from the shared flags (paper scale
/// under --full, CI scale under --smoke).
struct Scale {
  std::size_t objects;      ///< final overlay size
  std::size_t checkpoint;   ///< measure every `checkpoint` insertions
  std::size_t pairs;        ///< sampled routes per checkpoint
  std::uint64_t seed;
  bool csv;
  bool full;
  std::string json_path;    ///< empty unless --json PATH was given
};

/// Render a stats::Table as {"header": [...], "rows": [[...], ...]}; cells
/// that parse as numbers are emitted as numbers, the rest as strings.
Json table_json(const stats::Table& table);

/// Paper scale: 300,000 objects, checkpoints every 10,000 adds, 100,000
/// random couples per checkpoint (section 5).  Default scale keeps the
/// same shape at ~1/5 size so the whole harness runs in minutes; --smoke
/// shrinks further for CI.
Scale resolve_scale(const Args& args);

/// Grow an overlay to `target` objects under the given distribution,
/// invoking `checkpoint(n)` every `every` insertions (and at the end).
/// Gateways are chosen uniformly at random, as in the paper's setup.
template <typename Checkpoint>
void grow_overlay(Overlay& overlay, const workload::DistributionConfig& dist,
                  std::size_t target, std::size_t every, Rng& rng,
                  Checkpoint&& checkpoint) {
  workload::PointGenerator gen(dist);
  while (overlay.size() < target) {
    overlay.insert(gen.next(rng));
    if (overlay.size() % every == 0 || overlay.size() == target) {
      checkpoint(overlay.size());
    }
  }
}

/// Route measurement over random (source, target-object) couples.
struct ProbeStats {
  double mean_hops = 0.0;
  /// Fraction of routes terminated by the dmin condition before reaching
  /// the target's region (they finish with local fictive-object
  /// resolution, whose cost greedy hop counts do not show).
  double dmin_stop_fraction = 0.0;
};
ProbeStats probe_stats(const Overlay& overlay, std::size_t pairs, Rng& rng);

/// Mean greedy route length over `pairs` random (source, target-object)
/// couples, measured with read-only probes in parallel.
double mean_route_hops(const Overlay& overlay, std::size_t pairs,
                       Rng& rng);

/// One growth series: mean hops at every checkpoint.
struct GrowthPoint {
  std::size_t objects;
  double mean_hops;
};
std::vector<GrowthPoint> route_growth_series(
    const workload::DistributionConfig& dist, const Scale& scale,
    std::size_t long_links);

}  // namespace voronet::bench
