// Lemma 2 validation: the Choose-LRT target density is dS / (K d^2) with
// K = 2 pi ln(sqrt(2)/dmin).
//
// Monte-Carlo estimate per logarithmic radial shell, compared with the
// closed-form probability; also reports the fraction of long links that
// are shorter than the mean inter-object spacing under both dmin rules
// (the paper's literal 1/(pi Nmax) and the ball-expectation variant; see
// DESIGN.md on the discrepancy in the paper's section 4.1).
//
// Usage: bench_lrt_distribution [--csv] [--samples M] [--nmax N] [--seed S]
#include <cmath>
#include <iostream>
#include <numbers>

#include "bench_common.hpp"
#include "stats/table.hpp"
#include "voronet/lrt.hpp"

int main(int argc, char** argv) try {
  using namespace voronet;
  const bench::Args args(argc, argv);
  const bool csv = args.csv;
  const auto samples = static_cast<std::size_t>(
      args.flags().get_int("samples", args.smoke ? 100'000 : 500'000));
  const auto n_max =
      static_cast<std::size_t>(args.flags().get_int("nmax", 300'000));
  const std::uint64_t seed = args.seed;
  args.finish();

  Rng rng(seed);
  const Vec2 from{0.5, 0.5};

  stats::Table table({"dmin rule", "shell [r1, r2)", "observed", "Lemma 2",
                      "rel err"});
  for (const DminRule rule :
       {DminRule::kPaperText, DminRule::kBallExpectation}) {
    const double dmin = dmin_for(rule, n_max);
    const std::string rule_name =
        rule == DminRule::kPaperText ? "1/(pi*N)" : "1/sqrt(pi*N)";
    constexpr int kShells = 8;
    const double log_lo = std::log(dmin);
    const double log_hi = std::log(std::numbers::sqrt2);
    std::vector<std::size_t> counts(kShells, 0);
    for (std::size_t i = 0; i < samples; ++i) {
      const double r = dist(from, choose_long_range_target(from, dmin, rng));
      const int shell = std::min(
          kShells - 1,
          std::max(0, static_cast<int>((std::log(r) - log_lo) /
                                       (log_hi - log_lo) * kShells)));
      ++counts[shell];
    }
    for (int s = 0; s < kShells; ++s) {
      const double r1 = std::exp(log_lo + (log_hi - log_lo) * s / kShells);
      const double r2 =
          std::exp(log_lo + (log_hi - log_lo) * (s + 1) / kShells);
      const double expected = radial_cdf(dmin, r1, r2);
      const double observed =
          static_cast<double>(counts[s]) / static_cast<double>(samples);
      char buf[64];
      std::snprintf(buf, sizeof buf, "[%.2e, %.2e)", r1, r2);
      table.add_row({rule_name, buf, stats::Table::cell(observed, 4),
                     stats::Table::cell(expected, 4),
                     stats::Table::cell(
                         expected > 0.0
                             ? std::abs(observed - expected) / expected
                             : 0.0,
                         4)});
    }
  }

  std::cout << "Lemma 2: Choose-LRT radial distribution vs closed form\n";
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  // Share of links shorter than the mean spacing 1/sqrt(N): these links
  // land (in expectation) inside the drawing object's own neighbourhood.
  stats::Table spacing({"dmin rule", "dmin", "P(link < spacing)"});
  for (const DminRule rule :
       {DminRule::kPaperText, DminRule::kBallExpectation}) {
    const double dmin = dmin_for(rule, n_max);
    const double spacing_len = 1.0 / std::sqrt(static_cast<double>(n_max));
    spacing.add_row(
        {rule == DminRule::kPaperText ? "1/(pi*N)" : "1/sqrt(pi*N)",
         stats::Table::cell(dmin, 9),
         stats::Table::cell(radial_cdf(dmin, dmin, spacing_len), 4)});
  }
  std::cout << "\nShare of sub-spacing long links by dmin rule (N="
            << n_max << ")\n";
  if (csv) {
    spacing.print_csv(std::cout);
  } else {
    spacing.print(std::cout);
  }
  bench::write_json_file(
      args.json_path,
      bench::Json::object()
          .set("bench", bench::Json::string("lrt_distribution"))
          .set("shells", bench::table_json(table))
          .set("sub_spacing", bench::table_json(spacing)));
  return 0;
} catch (const std::exception& e) {
  std::cerr << "bench_lrt_distribution: " << e.what() << "\n";
  return 1;
}
