// Section 4.2/4.3 claims table: maintenance costs of the overlay --
//   * join: O(log^2 N) greedy forwards plus O(|vn|) local messages,
//   * leave: O(|vn|) messages, no routing,
//   * query: O(log^2 N) forwards plus O(1) fictive-object updates.
//
// We grow an overlay, run a churn phase, and report per-operation hop and
// message statistics plus the per-kind message breakdown.
//
// Usage: bench_table_maintenance [--full] [--csv] [--objects N] [--seed S]
//                                [--churn-ops C]
#include <iostream>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "stats/table.hpp"
#include "voronet/churn.hpp"

int main(int argc, char** argv) try {
  using namespace voronet;
  const bench::Args args(argc, argv);
  const bench::Scale scale = bench::resolve_scale(args);
  const auto churn_ops = static_cast<std::size_t>(args.flags().get_int(
      "churn-ops", scale.full ? 30'000 : (args.smoke ? 1'000 : 5'000)));
  args.finish();

  stats::Table op_table({"distribution", "objects", "operation", "count",
                         "hops mean", "hops max", "msgs mean", "msgs max"});
  stats::Table msg_table({"distribution", "message kind", "count",
                          "per operation"});

  for (const auto& dist : {workload::DistributionConfig::uniform(),
                           workload::DistributionConfig::power_law(5.0)}) {
    Timer t;
    OverlayConfig cfg;
    cfg.n_max = scale.objects;
    cfg.seed = scale.seed;
    Overlay overlay(cfg);
    Rng rng(scale.seed ^ 0xabcULL);
    workload::PointGenerator gen(dist);
    bench::grow_overlay(overlay, dist, scale.objects / 2, scale.objects, rng,
                        [](std::size_t) {});
    overlay.metrics().reset();

    // Churn phase: equal join/leave rates around the half-size population,
    // with queries interleaved.
    ChurnConfig churn;
    churn.join_rate = 1.0;
    churn.leave_rate = 1.0;
    churn.query_rate = 2.0;
    churn.duration = static_cast<double>(churn_ops) / 4.0;
    churn.seed = scale.seed;
    const ChurnReport report = run_churn(overlay, gen, churn);
    std::cerr << "[maintenance] " << dist.name() << ": " << report.joins
              << " joins, " << report.leaves << " leaves, " << report.queries
              << " queries (" << t.seconds() << "s)\n";

    const auto& m = overlay.metrics();
    std::size_t total_ops = 0;
    for (const auto kind : {sim::OperationKind::kJoin,
                            sim::OperationKind::kLeave,
                            sim::OperationKind::kQuery}) {
      const auto& hops = m.hops(kind);
      const auto& msgs = m.operation_messages(kind);
      total_ops += hops.count();
      op_table.add_row({dist.name(), stats::Table::cell(overlay.size()),
                        std::string(sim::operation_kind_name(kind)),
                        stats::Table::cell(hops.count()),
                        stats::Table::cell(hops.mean(), 2),
                        stats::Table::cell(static_cast<std::size_t>(
                            hops.count() ? hops.max() : 0.0)),
                        stats::Table::cell(msgs.mean(), 1),
                        stats::Table::cell(static_cast<std::size_t>(
                            msgs.count() ? msgs.max() : 0.0))});
    }
    // The per-kind breakdown comes from the ChurnReport deltas, so it
    // covers exactly the churn phase regardless of what ran before.
    for (std::size_t k = 0; k < sim::kMessageKindCount; ++k) {
      const auto kind = static_cast<sim::MessageKind>(k);
      msg_table.add_row(
          {dist.name(), std::string(sim::message_kind_name(kind)),
           stats::Table::cell(report.messages_of(kind)),
           stats::Table::cell(static_cast<double>(report.messages_of(kind)) /
                                  static_cast<double>(total_ops),
                              2)});
    }
    std::cerr << "[maintenance] " << dist.name() << ": "
              << report.messages_per_event()
              << " maintenance messages per churn event\n";
  }

  std::cout << "Sections 4.2/4.3: per-operation maintenance costs\n";
  if (scale.csv) {
    op_table.print_csv(std::cout);
  } else {
    op_table.print(std::cout);
  }
  std::cout << "\nMessage breakdown by protocol kind\n";
  if (scale.csv) {
    msg_table.print_csv(std::cout);
  } else {
    msg_table.print(std::cout);
  }
  bench::write_json_file(
      scale.json_path,
      bench::Json::object()
          .set("bench", bench::Json::string("table_maintenance"))
          .set("operations", bench::table_json(op_table))
          .set("messages", bench::table_json(msg_table)));
  return 0;
} catch (const std::exception& e) {
  std::cerr << "bench_table_maintenance: " << e.what() << "\n";
  return 1;
}
