#include "bench_common.hpp"

#include <atomic>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/expect.hpp"
#include "common/parallel.hpp"
#include "stats/summary.hpp"

namespace voronet::bench {

Scale resolve_scale(const Flags& flags) {
  Scale s{};
  s.full = bench_full_scale(flags);
  s.csv = flags.has("csv");
  s.json_path = flags.get_string("json", "");
  s.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  if (s.full) {
    s.objects = static_cast<std::size_t>(flags.get_int("objects", 300'000));
    s.checkpoint =
        static_cast<std::size_t>(flags.get_int("checkpoint", 10'000));
    s.pairs = static_cast<std::size_t>(flags.get_int("pairs", 100'000));
  } else {
    s.objects = static_cast<std::size_t>(flags.get_int("objects", 60'000));
    s.checkpoint =
        static_cast<std::size_t>(flags.get_int("checkpoint", 10'000));
    s.pairs = static_cast<std::size_t>(flags.get_int("pairs", 10'000));
  }
  return s;
}

ProbeStats probe_stats(const Overlay& overlay, std::size_t pairs, Rng& rng) {
  // Pre-draw the couples sequentially so the measurement is deterministic
  // regardless of the worker count.
  std::vector<ProbeQuery> couples;
  couples.reserve(pairs);
  for (std::size_t i = 0; i < pairs; ++i) {
    const ObjectId from = overlay.random_object(rng);
    ObjectId to = overlay.random_object(rng);
    while (to == from && overlay.size() > 1) to = overlay.random_object(rng);
    couples.push_back({from, overlay.position(to)});
  }
  std::vector<RouteResult> results(couples.size());

  // Each worker runs a software-pipelined probe batch over its chunk; the
  // two levels of parallelism (lanes per core, chunks across cores)
  // compose.
  std::atomic<std::uint64_t> total_hops{0};
  std::atomic<std::uint64_t> dmin_stops{0};
  parallel_for(0, couples.size(),
               [&](std::size_t lo, std::size_t hi, std::size_t) {
                 overlay.probe_batch(
                     std::span(couples).subspan(lo, hi - lo),
                     std::span(results).subspan(lo, hi - lo));
                 std::uint64_t local = 0;
                 std::uint64_t local_stops = 0;
                 for (std::size_t i = lo; i < hi; ++i) {
                   local += results[i].hops;
                   if (results[i].stopped_by_dmin) ++local_stops;
                 }
                 total_hops.fetch_add(local, std::memory_order_relaxed);
                 dmin_stops.fetch_add(local_stops,
                                      std::memory_order_relaxed);
               });
  ProbeStats stats;
  stats.mean_hops = static_cast<double>(total_hops.load()) /
                    static_cast<double>(couples.size());
  stats.dmin_stop_fraction = static_cast<double>(dmin_stops.load()) /
                             static_cast<double>(couples.size());
  return stats;
}

double mean_route_hops(const Overlay& overlay, std::size_t pairs, Rng& rng) {
  return probe_stats(overlay, pairs, rng).mean_hops;
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // Remaining control characters must be \u-escaped for valid JSON.
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

std::string render_double(double v) {
  // Round-trip precision; JSON has no inf/nan, map them to null.
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

Json Json::object() { return Json{}; }

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.scalar_ = render_double(v);
  return j;
}

Json Json::integer(unsigned long long v) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.scalar_ = std::to_string(v);
  return j;
}

Json Json::string(std::string v) {
  Json j;
  j.kind_ = Kind::kString;
  j.scalar_ = std::move(v);
  return j;
}

Json Json::boolean(bool v) {
  Json j;
  j.kind_ = Kind::kBool;
  j.scalar_ = v ? "true" : "false";
  return j;
}

Json& Json::set(const std::string& key, Json value) {
  VORONET_EXPECT(kind_ == Kind::kObject, "set() on a non-object Json value");
  children_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  VORONET_EXPECT(kind_ == Kind::kArray, "push() on a non-array Json value");
  children_.emplace_back(std::string{}, std::move(value));
  return *this;
}

void Json::write(std::ostream& os, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const std::string inner(static_cast<std::size_t>(indent + 1) * 2, ' ');
  switch (kind_) {
    case Kind::kNumber:
    case Kind::kBool:
      os << scalar_;
      break;
    case Kind::kString:
      write_escaped(os, scalar_);
      break;
    case Kind::kObject: {
      if (children_.empty()) {
        os << "{}";
        break;
      }
      os << "{\n";
      for (std::size_t i = 0; i < children_.size(); ++i) {
        os << inner;
        write_escaped(os, children_[i].first);
        os << ": ";
        children_[i].second.write(os, indent + 1);
        os << (i + 1 < children_.size() ? ",\n" : "\n");
      }
      os << pad << '}';
      break;
    }
    case Kind::kArray: {
      if (children_.empty()) {
        os << "[]";
        break;
      }
      os << "[\n";
      for (std::size_t i = 0; i < children_.size(); ++i) {
        os << inner;
        children_[i].second.write(os, indent + 1);
        os << (i + 1 < children_.size() ? ",\n" : "\n");
      }
      os << pad << ']';
      break;
    }
  }
}

std::string Json::str() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

Json table_json(const stats::Table& table) {
  const auto cell_value = [](const std::string& cell) {
    double v = 0.0;
    const auto [ptr, ec] =
        std::from_chars(cell.data(), cell.data() + cell.size(), v);
    if (ec == std::errc{} && ptr == cell.data() + cell.size()) {
      return Json::number(v);
    }
    return Json::string(cell);
  };
  Json header = Json::array();
  for (const auto& h : table.header()) header.push(Json::string(h));
  Json rows = Json::array();
  for (const auto& row : table.row_data()) {
    Json jrow = Json::array();
    for (const auto& cell : row) jrow.push(cell_value(cell));
    rows.push(std::move(jrow));
  }
  return Json::object().set("header", std::move(header))
      .set("rows", std::move(rows));
}

void write_json_file(const std::string& path, const Json& doc) {
  if (path.empty()) return;
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open --json path: " + path);
  doc.write(os);
  os << '\n';
  if (!os) throw std::runtime_error("failed writing --json path: " + path);
}

std::vector<GrowthPoint> route_growth_series(
    const workload::DistributionConfig& dist, const Scale& scale,
    std::size_t long_links) {
  OverlayConfig cfg;
  cfg.n_max = scale.objects;
  cfg.long_links = long_links;
  cfg.seed = scale.seed;
  Overlay overlay(cfg);
  Rng rng(scale.seed ^ 0x5eedf00dULL);

  std::vector<GrowthPoint> series;
  grow_overlay(overlay, dist, scale.objects, scale.checkpoint, rng,
               [&](std::size_t n) {
                 series.push_back({n, mean_route_hops(overlay, scale.pairs,
                                                      rng)});
               });
  return series;
}

}  // namespace voronet::bench
