#include "bench_common.hpp"

#include <atomic>
#include <charconv>

#include "common/parallel.hpp"

namespace voronet::bench {

Scale resolve_scale(const Args& args) {
  Scale s{};
  s.full = args.full;
  s.csv = args.csv;
  s.json_path = args.json_path;
  s.seed = args.seed;
  const Flags& flags = args.flags();
  if (s.full) {
    s.objects = static_cast<std::size_t>(flags.get_int("objects", 300'000));
    s.checkpoint =
        static_cast<std::size_t>(flags.get_int("checkpoint", 10'000));
    s.pairs = static_cast<std::size_t>(flags.get_int("pairs", 100'000));
  } else if (args.smoke) {
    s.objects = static_cast<std::size_t>(flags.get_int("objects", 8'000));
    s.checkpoint =
        static_cast<std::size_t>(flags.get_int("checkpoint", 4'000));
    s.pairs = static_cast<std::size_t>(flags.get_int("pairs", 2'000));
  } else {
    s.objects = static_cast<std::size_t>(flags.get_int("objects", 60'000));
    s.checkpoint =
        static_cast<std::size_t>(flags.get_int("checkpoint", 10'000));
    s.pairs = static_cast<std::size_t>(flags.get_int("pairs", 10'000));
  }
  return s;
}

ProbeStats probe_stats(const Overlay& overlay, std::size_t pairs, Rng& rng) {
  // Pre-draw the couples sequentially so the measurement is deterministic
  // regardless of the worker count.
  std::vector<ProbeQuery> couples;
  couples.reserve(pairs);
  for (std::size_t i = 0; i < pairs; ++i) {
    const ObjectId from = overlay.random_object(rng);
    ObjectId to = overlay.random_object(rng);
    while (to == from && overlay.size() > 1) to = overlay.random_object(rng);
    couples.push_back({from, overlay.position(to)});
  }
  std::vector<RouteResult> results(couples.size());

  // Each worker runs a software-pipelined probe batch over its chunk; the
  // two levels of parallelism (lanes per core, chunks across cores)
  // compose.
  std::atomic<std::uint64_t> total_hops{0};
  std::atomic<std::uint64_t> dmin_stops{0};
  parallel_for(0, couples.size(),
               [&](std::size_t lo, std::size_t hi, std::size_t) {
                 overlay.probe_batch(
                     std::span(couples).subspan(lo, hi - lo),
                     std::span(results).subspan(lo, hi - lo));
                 std::uint64_t local = 0;
                 std::uint64_t local_stops = 0;
                 for (std::size_t i = lo; i < hi; ++i) {
                   local += results[i].hops;
                   if (results[i].stopped_by_dmin) ++local_stops;
                 }
                 total_hops.fetch_add(local, std::memory_order_relaxed);
                 dmin_stops.fetch_add(local_stops,
                                      std::memory_order_relaxed);
               });
  ProbeStats stats;
  stats.mean_hops = static_cast<double>(total_hops.load()) /
                    static_cast<double>(couples.size());
  stats.dmin_stop_fraction = static_cast<double>(dmin_stops.load()) /
                             static_cast<double>(couples.size());
  return stats;
}

double mean_route_hops(const Overlay& overlay, std::size_t pairs, Rng& rng) {
  return probe_stats(overlay, pairs, rng).mean_hops;
}

Json table_json(const stats::Table& table) {
  const auto cell_value = [](const std::string& cell) {
    double v = 0.0;
    const auto [ptr, ec] =
        std::from_chars(cell.data(), cell.data() + cell.size(), v);
    if (ec == std::errc{} && ptr == cell.data() + cell.size()) {
      return Json::number(v);
    }
    return Json::string(cell);
  };
  Json header = Json::array();
  for (const auto& h : table.header()) header.push(Json::string(h));
  Json rows = Json::array();
  for (const auto& row : table.row_data()) {
    Json jrow = Json::array();
    for (const auto& cell : row) jrow.push(cell_value(cell));
    rows.push(std::move(jrow));
  }
  return Json::object().set("header", std::move(header))
      .set("rows", std::move(rows));
}

std::vector<GrowthPoint> route_growth_series(
    const workload::DistributionConfig& dist, const Scale& scale,
    std::size_t long_links) {
  OverlayConfig cfg;
  cfg.n_max = scale.objects;
  cfg.long_links = long_links;
  cfg.seed = scale.seed;
  Overlay overlay(cfg);
  Rng rng(scale.seed ^ 0x5eedf00dULL);

  std::vector<GrowthPoint> series;
  grow_overlay(overlay, dist, scale.objects, scale.checkpoint, rng,
               [&](std::size_t n) {
                 series.push_back({n, mean_route_hops(overlay, scale.pairs,
                                                      rng)});
               });
  return series;
}

}  // namespace voronet::bench
