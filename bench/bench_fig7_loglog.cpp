// Figure 7: log(H) as a function of log(log(|O|)), for the four
// distributions, plus the least-squares slope x of each line.
//
// The paper reads off x ~ 2 from this plot, establishing the O(log^2 N)
// routing bound experimentally.  We print the transformed series and the
// fitted slope / intercept / R^2 per distribution.
//
// Usage: bench_fig7_loglog [--full] [--csv] [--objects N] [--pairs M]
//                          [--checkpoint C] [--seed S]
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "stats/linefit.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) try {
  using namespace voronet;
  const bench::Args args(argc, argv);
  const bench::Scale scale = bench::resolve_scale(args);
  args.finish();

  std::cerr << "[fig7] objects=" << scale.objects
            << " checkpoint=" << scale.checkpoint << " pairs=" << scale.pairs
            << (scale.full ? " (paper scale)" : " (default scale)") << "\n";

  // Independent experiments: grow the four overlays concurrently (see
  // bench_fig6_routes.cpp); results are deterministic.
  const auto dists = workload::paper_distributions();
  std::vector<std::vector<bench::GrowthPoint>> series(dists.size());
  parallel_for_each(0, dists.size(), [&](std::size_t d) {
    Timer t;
    series[d] = bench::route_growth_series(dists[d], scale, 1);
    std::cerr << "[fig7] " << dists[d].name() << " done in " << t.seconds()
              << "s\n";
  });

  // Transformed series.
  stats::Table table({"log(log(objects))", dists[0].name(), dists[1].name(),
                      dists[2].name(), dists[3].name()});
  for (std::size_t row = 0; row < series[0].size(); ++row) {
    const double x =
        std::log(std::log(static_cast<double>(series[0][row].objects)));
    std::vector<std::string> cells{stats::Table::cell(x, 4)};
    for (const auto& s : series) {
      cells.push_back(stats::Table::cell(std::log(s[row].mean_hops), 4));
    }
    table.add_row(cells);
  }
  std::cout << "Figure 7: log(H) vs log(log(|O|))\n";
  if (scale.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  // Slopes: the paper's poly-log exponent estimate.
  stats::Table fit_table({"distribution", "slope x", "intercept", "R^2"});
  for (std::size_t d = 0; d < dists.size(); ++d) {
    std::vector<double> xs;
    std::vector<double> ys;
    for (const auto& pt : series[d]) {
      xs.push_back(std::log(std::log(static_cast<double>(pt.objects))));
      ys.push_back(std::log(pt.mean_hops));
    }
    const stats::LineFit fit = stats::fit_line(xs, ys);
    fit_table.add_row({dists[d].name(), stats::Table::cell(fit.slope, 3),
                       stats::Table::cell(fit.intercept, 3),
                       stats::Table::cell(fit.r2, 4)});
  }
  std::cout << "\nFitted routing exponents (paper: x close to 2)\n";
  if (scale.csv) {
    fit_table.print_csv(std::cout);
  } else {
    fit_table.print(std::cout);
  }
  if (!scale.json_path.empty()) {
    bench::Json doc = bench::Json::object();
    doc.set("bench", bench::Json::string("fig7_loglog"))
        .set("objects", bench::Json::integer(scale.objects))
        .set("pairs", bench::Json::integer(scale.pairs))
        .set("seed", bench::Json::integer(scale.seed))
        .set("table", bench::table_json(table))
        .set("fits", bench::table_json(fit_table));
    bench::write_json_file(scale.json_path, doc);
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "bench_fig7_loglog: " << e.what() << "\n";
  return 1;
}
