// Background baseline (section 2.1 / Figure 1): greedy routing on
// Kleinberg's grid, and the comparison that motivates VoroNet -- the
// Voronoi overlay matches the grid's poly-log routing on uniform data
// while also supporting arbitrary (skewed) object distributions, which the
// grid model cannot represent at all.
//
// Usage: bench_kleinberg [--full] [--csv] [--pairs M] [--seed S]
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "kleinberg/grid.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) try {
  using namespace voronet;
  const bench::Args args(argc, argv);
  const bench::Scale scale = bench::resolve_scale(args);
  args.finish();

  const std::vector<std::size_t> sides =
      scale.full ? std::vector<std::size_t>{100, 180, 320, 550}
                 : std::vector<std::size_t>{70, 100, 140, 200};
  const std::size_t pairs = scale.pairs;

  stats::Table table({"nodes", "grid: mean hops", "grid: k=0 (lattice)",
                      "voronet uniform: mean hops"});
  for (const std::size_t side : sides) {
    Timer t;
    const std::size_t n = side * side;
    Rng rng(scale.seed);

    // Kleinberg grid with one long link (s = 2).
    kleinberg::KleinbergGrid grid(
        {.side = side, .long_links = 1, .exponent = 2.0, .seed = scale.seed});
    double grid_hops = 0.0;
    for (std::size_t i = 0; i < pairs; ++i) {
      const auto s =
          static_cast<kleinberg::KleinbergGrid::NodeId>(rng.index(n));
      const auto d =
          static_cast<kleinberg::KleinbergGrid::NodeId>(rng.index(n));
      grid_hops += static_cast<double>(grid.route(s, d).hops);
    }
    grid_hops /= static_cast<double>(pairs);

    // Plain lattice (no long links): Theta(side) routing for contrast.
    kleinberg::KleinbergGrid lattice(
        {.side = side, .long_links = 0, .exponent = 2.0, .seed = scale.seed});
    double lattice_hops = 0.0;
    const std::size_t lattice_pairs = std::min<std::size_t>(pairs, 2000);
    for (std::size_t i = 0; i < lattice_pairs; ++i) {
      const auto s =
          static_cast<kleinberg::KleinbergGrid::NodeId>(rng.index(n));
      const auto d =
          static_cast<kleinberg::KleinbergGrid::NodeId>(rng.index(n));
      lattice_hops += static_cast<double>(lattice.route(s, d).hops);
    }
    lattice_hops /= static_cast<double>(lattice_pairs);

    // VoroNet with the same number of objects, uniform placement.
    OverlayConfig cfg;
    cfg.n_max = n;
    cfg.seed = scale.seed;
    Overlay overlay(cfg);
    Rng grow_rng(scale.seed ^ n);
    bench::grow_overlay(overlay, workload::DistributionConfig::uniform(), n,
                        n, grow_rng, [](std::size_t) {});
    Rng probe_rng(scale.seed + 7);
    const double voronet_hops =
        bench::mean_route_hops(overlay, pairs, probe_rng);

    table.add_row({stats::Table::cell(n), stats::Table::cell(grid_hops, 2),
                   stats::Table::cell(lattice_hops, 2),
                   stats::Table::cell(voronet_hops, 2)});
    std::cerr << "[kleinberg] side=" << side << " (" << t.seconds()
              << "s)\n";
  }

  std::cout << "Kleinberg grid baseline vs VoroNet (greedy routing, k=1)\n";
  if (scale.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  bench::write_json_file(
      scale.json_path, bench::Json::object()
                           .set("bench", bench::Json::string("kleinberg"))
                           .set("table", bench::table_json(table)));
  return 0;
} catch (const std::exception& e) {
  std::cerr << "bench_kleinberg: " << e.what() << "\n";
  return 1;
}
