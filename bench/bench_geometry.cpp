// Figure 2 substrate micro-benchmarks (google-benchmark): construction and
// query costs of the tessellation kernel -- insertion, deletion, point
// location, nearest-vertex, predicates, Voronoi cell extraction.
//
// These quantify the simulator substrate; the protocol-level numbers live
// in the figure benches.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "geometry/delaunay.hpp"
#include "geometry/morton.hpp"
#include "geometry/predicates.hpp"
#include "geometry/voronoi.hpp"

namespace {

using voronet::Rng;
using voronet::Vec2;
using voronet::geo::DelaunayTriangulation;

void BM_DelaunayInsert(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(1);
    DelaunayTriangulation dt;
    state.ResumeTiming();
    DelaunayTriangulation::VertexId hint = DelaunayTriangulation::kNoVertex;
    for (std::size_t i = 0; i < n; ++i) {
      hint = dt.insert({rng.uniform(), rng.uniform()}, hint).vertex;
    }
    benchmark::DoNotOptimize(dt.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DelaunayInsert)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_DelaunayBulkInsert(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(), rng.uniform()});
  }
  for (auto _ : state) {
    DelaunayTriangulation dt;
    benchmark::DoNotOptimize(dt.bulk_insert(pts));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DelaunayBulkInsert)->Arg(10000)->Arg(100000);

void BM_DelaunayNearest(benchmark::State& state) {
  Rng rng(2);
  DelaunayTriangulation dt;
  for (int i = 0; i < 100000; ++i) dt.insert({rng.uniform(), rng.uniform()});
  for (auto _ : state) {
    benchmark::DoNotOptimize(dt.nearest({rng.uniform(), rng.uniform()}));
  }
}
BENCHMARK(BM_DelaunayNearest);

void BM_DelaunayInsertRemoveChurn(benchmark::State& state) {
  Rng rng(3);
  DelaunayTriangulation dt;
  std::vector<DelaunayTriangulation::VertexId> live;
  for (int i = 0; i < 20000; ++i) {
    live.push_back(dt.insert({rng.uniform(), rng.uniform()}).vertex);
  }
  for (auto _ : state) {
    const auto out = dt.insert({rng.uniform(), rng.uniform()});
    if (out.created) live.push_back(out.vertex);
    const std::size_t pick = rng.index(live.size());
    dt.remove(live[pick]);
    live[pick] = live.back();
    live.pop_back();
  }
}
BENCHMARK(BM_DelaunayInsertRemoveChurn);

void BM_Orient2dFilterHit(benchmark::State& state) {
  Rng rng(4);
  const Vec2 a{rng.uniform(), rng.uniform()};
  const Vec2 b{rng.uniform(), rng.uniform()};
  const Vec2 c{rng.uniform(), rng.uniform()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(voronet::geo::orient2d(a, b, c));
  }
}
BENCHMARK(BM_Orient2dFilterHit);

void BM_Orient2dExactFallback(benchmark::State& state) {
  // Exactly collinear input defeats the floating-point filter every time.
  const Vec2 a{0.5, 0.5};
  const Vec2 b{12.0, 12.0};
  const Vec2 c{4.0, 4.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(voronet::geo::orient2d(a, b, c));
  }
}
BENCHMARK(BM_Orient2dExactFallback);

void BM_IncircleFilterHit(benchmark::State& state) {
  const Vec2 a{0.1, 0.1};
  const Vec2 b{0.9, 0.2};
  const Vec2 c{0.5, 0.8};
  const Vec2 d{0.4, 0.4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(voronet::geo::incircle(a, b, c, d));
  }
}
BENCHMARK(BM_IncircleFilterHit);

void BM_IncircleExactFallback(benchmark::State& state) {
  // Cocircular points (unit-square corners) force the exact path.
  const Vec2 a{0.0, 0.0};
  const Vec2 b{1.0, 0.0};
  const Vec2 c{1.0, 1.0};
  const Vec2 d{0.0, 1.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(voronet::geo::incircle(a, b, c, d));
  }
}
BENCHMARK(BM_IncircleExactFallback);

void BM_VoronoiCell(benchmark::State& state) {
  Rng rng(5);
  DelaunayTriangulation dt;
  std::vector<DelaunayTriangulation::VertexId> ids;
  for (int i = 0; i < 10000; ++i) {
    ids.push_back(dt.insert({rng.uniform(), rng.uniform()}).vertex);
  }
  const voronet::geo::Box unit{{0, 0}, {1, 1}};
  for (auto _ : state) {
    const auto cell =
        voronet::geo::voronoi_cell(dt, ids[rng.index(ids.size())], unit);
    benchmark::DoNotOptimize(cell.polygon.size());
  }
}
BENCHMARK(BM_VoronoiCell);

void BM_DistanceToRegion(benchmark::State& state) {
  Rng rng(6);
  DelaunayTriangulation dt;
  std::vector<DelaunayTriangulation::VertexId> ids;
  for (int i = 0; i < 10000; ++i) {
    ids.push_back(dt.insert({rng.uniform(), rng.uniform()}).vertex);
  }
  for (auto _ : state) {
    const Vec2 p{rng.uniform(), rng.uniform()};
    benchmark::DoNotOptimize(voronet::geo::closest_point_in_region(
        dt, ids[rng.index(ids.size())], p));
  }
}
BENCHMARK(BM_DistanceToRegion);

}  // namespace

BENCHMARK_MAIN();
