// Query-workload benchmark: the attribute-space range / radius queries
// (paper, section 7 perspectives) served at scale, plus the message-level
// query engine's behaviour under network conditions.  Phases 2-4 are
// scenario::Scenario timelines executed by the one scenario::Runner; the
// latency x loss grid is scenario::sweep.
//
//   1. throughput  -- batched sequential query serving over overlays of
//      10^3 / 10^4 / 10^5 objects (10^6 with --full): queries/sec across
//      worker threads, msgs/query under the queries.hpp counting model,
//      and greedy hop counts against the polylog routing claim
//      (hops / log2(N)^2 should stay bounded as N grows);
//   2. message sweep -- a query-stream scenario swept over latency models
//      and loss rates: p50/p99 completion latency, wire messages per
//      query, and the differential check (every result set must equal
//      the sequential ground truth at quiescence -- enforced, not just
//      reported);
//   3. staleness   -- a flash-crowd scenario: queries racing a join burst
//      under loss; completion and recall against the quiesced truth;
//   4. churn       -- the crash-failover scenario: queries racing joins,
//      voluntary leaves AND crash-stop failures, graded (completion,
//      recall, precision, re-issued epochs, branch failovers) against
//      the post-quiescence ground truth.
//
// Usage: bench_queries [--objects N] [--queries Q] [--seed S] [--csv]
//                      [--smoke] [--full] [--json PATH]
//
// --smoke shrinks every phase for CI (~seconds); --full adds the 10^6
// point to the throughput series and widens the sweeps.
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/expect.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "scenario/runner.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "voronet/queries.hpp"
#include "workload/distributions.hpp"

namespace {

using namespace voronet;

struct QueryDraw {
  bool range = false;
  ObjectId from = kNoObject;
  Vec2 a, b;
  double tol = 0.0;
};

/// Pre-draw a mixed workload from the one scale-free geometry definition
/// (voronet::draw_range_geometry / draw_radius_geometry) -- the identical
/// distribution the scenario drivers draw per query, so phase 1's
/// per-query costs are comparable with the scenario phases.
std::vector<QueryDraw> draw_queries(const Overlay& overlay, std::size_t count,
                                    Rng& rng) {
  std::vector<QueryDraw> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    QueryDraw d;
    d.range = (i % 2 == 0);
    d.from = overlay.random_object(rng);
    const QueryGeometry g = d.range
                                ? draw_range_geometry(rng, overlay.size())
                                : draw_radius_geometry(rng, overlay.size());
    d.a = g.a;
    d.b = g.b;
    d.tol = g.tol;
    out.push_back(d);
  }
  return out;
}

RegionQueryResult run_draw(const Overlay& overlay, const QueryDraw& d) {
  return d.range ? range_query(overlay, d.from, d.a, d.b, d.tol)
                 : radius_query(overlay, d.from, d.a, d.tol);
}

// ---------------------------------------------------------------------------
// Phase 1: sequential serving throughput
// ---------------------------------------------------------------------------

struct ThroughputPoint {
  std::size_t objects;
  std::size_t queries;
  double seconds;
  double qps;
  double mean_hops;
  double p99_hops;
  double mean_msgs;     ///< counting-model messages per query
  double mean_matches;
  double hops_over_polylog;  ///< mean_hops / log2(N)^2
};

ThroughputPoint throughput_point(std::size_t objects, std::size_t queries,
                                 std::uint64_t seed) {
  OverlayConfig cfg;
  cfg.n_max = objects;
  cfg.seed = seed;
  Overlay overlay(cfg);
  Rng rng(seed);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  while (overlay.size() < objects) overlay.insert(gen.next(rng));

  const std::vector<QueryDraw> draws = draw_queries(overlay, queries, rng);
  std::vector<double> hops(queries);
  std::vector<double> msgs(queries);
  std::vector<double> matches(queries);

  Timer t;
  parallel_for(0, queries, [&](std::size_t begin, std::size_t end,
                               std::size_t) {
    for (std::size_t i = begin; i < end; ++i) {
      const RegionQueryResult res = run_draw(overlay, draws[i]);
      hops[i] = static_cast<double>(res.route_hops);
      msgs[i] = static_cast<double>(res.total_messages());
      matches[i] = static_cast<double>(res.matches.size());
    }
  });
  const double secs = t.seconds();

  stats::OfflineSummary hop_summary;
  hop_summary.reserve(queries);
  double msg_sum = 0.0;
  double match_sum = 0.0;
  for (std::size_t i = 0; i < queries; ++i) {
    hop_summary.add(hops[i]);
    msg_sum += msgs[i];
    match_sum += matches[i];
  }
  const double log2n = std::log2(static_cast<double>(objects));
  ThroughputPoint p;
  p.objects = objects;
  p.queries = queries;
  p.seconds = secs;
  p.qps = static_cast<double>(queries) / secs;
  p.mean_hops = hop_summary.mean();
  p.p99_hops = hop_summary.quantile(0.99);
  p.mean_msgs = msg_sum / static_cast<double>(queries);
  p.mean_matches = match_sum / static_cast<double>(queries);
  p.hops_over_polylog = p.mean_hops / (log2n * log2n);
  std::cerr << "[queries] N=" << objects << ": " << p.qps << " q/s, "
            << p.mean_msgs << " msgs/query, mean hops " << p.mean_hops
            << " (/log2^2 = " << p.hops_over_polylog << ")\n";
  return p;
}

}  // namespace

int main(int argc, char** argv) try {
  const bench::Args args(argc, argv, /*default_seed=*/9);
  const bool smoke = args.smoke;
  const bool full = args.full;
  const std::uint64_t seed = args.seed;
  const auto queries = static_cast<std::size_t>(
      args.flags().get_int("queries", smoke ? 2000 : 200000));
  std::vector<std::size_t> series = smoke
                                        ? std::vector<std::size_t>{300, 1000}
                                        : std::vector<std::size_t>{1000,
                                                                   10000,
                                                                   100000};
  if (full) series.push_back(1000000);
  if (const long n = args.flags().get_int("objects", 0); n > 0) {
    series = {static_cast<std::size_t>(n)};
  }
  args.finish();

  bench::Json doc = bench::Json::object();
  doc.set("bench", bench::Json::string("queries"));

  // --- Phase 1 -------------------------------------------------------------
  stats::Table tput({"objects", "queries", "q/s", "msgs/query", "mean_hops",
                     "p99_hops", "hops/log2^2", "mean_matches"});
  bench::Json tput_json = bench::Json::array();
  for (const std::size_t n : series) {
    const ThroughputPoint p = throughput_point(n, queries, seed);
    tput.add_row({stats::Table::cell(p.objects),
                  stats::Table::cell(p.queries),
                  stats::Table::cell(p.qps, 0),
                  stats::Table::cell(p.mean_msgs, 2),
                  stats::Table::cell(p.mean_hops, 2),
                  stats::Table::cell(p.p99_hops, 1),
                  stats::Table::cell(p.hops_over_polylog, 4),
                  stats::Table::cell(p.mean_matches, 1)});
    tput_json.push(bench::Json::object()
                       .set("objects", bench::Json::integer(p.objects))
                       .set("queries", bench::Json::integer(p.queries))
                       .set("seconds", bench::Json::number(p.seconds))
                       .set("queries_per_sec", bench::Json::number(p.qps))
                       .set("msgs_per_query", bench::Json::number(p.mean_msgs))
                       .set("mean_hops", bench::Json::number(p.mean_hops))
                       .set("p99_hops", bench::Json::number(p.p99_hops))
                       .set("hops_over_log2_sq",
                            bench::Json::number(p.hops_over_polylog))
                       .set("mean_matches",
                            bench::Json::number(p.mean_matches)));
  }
  doc.set("throughput", std::move(tput_json));

  // --- Phase 2 -------------------------------------------------------------
  const std::size_t msg_objects = smoke ? 150 : 600;
  const std::size_t msg_queries = smoke ? 20 : 100;

  const double stream_span = 0.05 * static_cast<double>(msg_queries);

  scenario::Scenario stream;
  stream.name = "bench-queries-stream";
  stream.population = msg_objects;
  stream.seed = seed;
  // Windowed sampling decomposes msgs/query over time: the per-window
  // seed-hop (query) / flood (query_forward) / echo (query_result) /
  // abort split shows WHICH term grows when loss or latency moves, where
  // the end-of-run wire_msgs_per_query aggregate only shows the total.
  stream.sample_interval = stream_span / 8.0;
  stream.timeline = {
      scenario::Event::query_stream(0.0, msg_queries, stream_span)};

  scenario::SweepGrid grid;
  grid.latencies =
      smoke ? std::vector<protocol::LatencyModel>{
                  protocol::LatencyModel::fixed(0.02)}
            : std::vector<protocol::LatencyModel>{
                  protocol::LatencyModel::fixed(0.02),
                  protocol::LatencyModel::uniform(0.005, 0.05),
                  protocol::LatencyModel::lognormal(0.005, 0.03, 1.0)};
  grid.losses = smoke ? std::vector<double>{0.0, 0.25}
                      : std::vector<double>{0.0, 0.05, 0.25};

  stats::Table sweep_table({"latency", "loss", "identical", "p50_lat",
                            "p99_lat", "wire_msgs/q", "mean_hops"});
  bench::Json sweep_json = bench::Json::array();
  for (const scenario::SweepCell& cell : scenario::sweep(stream, grid)) {
    const scenario::Report& rep = cell.report;
    VORONET_EXPECT(rep.quiesced, "query sweep did not quiesce");
    VORONET_EXPECT(rep.identical == rep.queries,
                   "message-level query diverged from the ground truth "
                   "at quiescence");
    sweep_table.add_row({rep.latency_name, stats::Table::cell(rep.loss, 2),
                         stats::Table::cell(rep.identical),
                         stats::Table::cell(rep.p50_completion, 3),
                         stats::Table::cell(rep.p99_completion, 3),
                         stats::Table::cell(rep.wire_msgs_per_query, 1),
                         stats::Table::cell(rep.mean_route_hops, 2)});
    sweep_json.push(
        bench::Json::object()
            .set("latency", bench::Json::string(rep.latency_name))
            .set("loss", bench::Json::number(rep.loss))
            .set("queries", bench::Json::integer(rep.queries))
            .set("identical", bench::Json::integer(rep.identical))
            .set("p50_completion", bench::Json::number(rep.p50_completion))
            .set("p99_completion", bench::Json::number(rep.p99_completion))
            .set("wire_msgs_per_query",
                 bench::Json::number(rep.wire_msgs_per_query))
            .set("mean_hops", bench::Json::number(rep.mean_route_hops))
            .set("windows", [&rep] {
              bench::Json rows = bench::Json::array();
              for (const voronet::obs::Window& w : rep.windows) {
                rows.push(
                    bench::Json::object()
                        .set("start", bench::Json::number(w.start))
                        .set("end", bench::Json::number(w.end))
                        .set("query", bench::Json::integer(w.messages_of(
                                          sim::MessageKind::kQuery)))
                        .set("query_forward",
                             bench::Json::integer(w.messages_of(
                                 sim::MessageKind::kQueryForward)))
                        .set("query_result",
                             bench::Json::integer(w.messages_of(
                                 sim::MessageKind::kQueryResult)))
                        .set("query_abort",
                             bench::Json::integer(w.messages_of(
                                 sim::MessageKind::kQueryAbort)))
                        .set("duplicates", bench::Json::integer(w.duplicates))
                        .set("retransmits",
                             bench::Json::integer(w.retransmits))
                        .set("pending_queries",
                             bench::Json::integer(w.gauges.pending_queries))
                        .set("in_flight",
                             bench::Json::integer(w.gauges.in_flight)));
              }
              return rows;
            }()));
  }
  doc.set("message_sweep", std::move(sweep_json));

  // --- Phase 3 -------------------------------------------------------------
  const std::size_t stale_objects = smoke ? 150 : 400;
  const std::size_t stale_burst = smoke ? 30 : 80;
  const std::size_t stale_queries = smoke ? 10 : 40;

  scenario::Scenario flash;
  flash.name = "bench-queries-staleness";
  flash.population = stale_objects;
  flash.seed = seed;
  flash.latency = protocol::LatencyModel::uniform(0.005, 0.05);
  flash.loss = 0.1;
  flash.timeline = {
      scenario::Event::join_burst(0.0, stale_burst, 2.0),
      scenario::Event::query_stream(0.0, stale_queries, 2.0,
                                    scenario::QueryMix::kRadius),
  };
  const scenario::Report stale = scenario::run_scenario(flash);
  VORONET_EXPECT(stale.quiesced, "staleness phase did not quiesce");
  doc.set("staleness",
          bench::Json::object()
              .set("queries", bench::Json::integer(stale.queries))
              .set("completed", bench::Json::integer(stale.completed))
              .set("mean_recall", bench::Json::number(stale.mean_recall))
              .set("min_recall", bench::Json::number(stale.min_recall)));

  // --- Phase 4 -------------------------------------------------------------
  const std::size_t churn_objects = smoke ? 150 : 400;
  const double horizon = smoke ? 1.5 : 3.0;

  scenario::Scenario churn;
  churn.name = "bench-queries-churn";
  churn.population = churn_objects;
  churn.seed = seed ^ 0xc4a5ULL;
  churn.latency = protocol::LatencyModel::uniform(0.005, 0.05);
  churn.loss = 0.1;
  churn.failure_detect_delay = 0.25;
  churn.timeline = {
      scenario::Event::join_burst(0.0, smoke ? 10 : 30, horizon,
                                  scenario::Spread::kUniform),
      scenario::Event::leave(0.0, smoke ? 8 : 25, horizon, 16),
      scenario::Event::crash(0.0, smoke ? 5 : 15, horizon, 16),
      scenario::Event::query_stream(0.0, smoke ? 15 : 50, horizon,
                                    scenario::QueryMix::kMixed,
                                    scenario::Spread::kUniform),
  };
  const scenario::Report churned = scenario::run_scenario(churn);
  VORONET_EXPECT(churned.quiesced, "churn phase did not quiesce");
  VORONET_EXPECT(churned.completed == churned.queries,
                 "a query was lost to churn despite the failover machinery");
  VORONET_EXPECT(churned.converged,
                 "views did not reconverge after the churn scenario");
  doc.set(
      "churn",
      bench::Json::object()
          .set("queries", bench::Json::integer(churned.queries))
          .set("completed", bench::Json::integer(churned.completed))
          .set("exact", bench::Json::integer(churned.exact))
          .set("reissued", bench::Json::integer(churned.reissued))
          .set("max_epochs", bench::Json::integer(churned.max_epochs))
          .set("branch_failovers",
               bench::Json::integer(churned.branch_failovers))
          .set("mean_recall", bench::Json::number(churned.mean_recall))
          .set("min_recall", bench::Json::number(churned.min_recall))
          .set("mean_precision", bench::Json::number(churned.mean_precision))
          .set("min_precision", bench::Json::number(churned.min_precision)));

  std::cout << "Query serving throughput (sequential layer, "
            << parallel_workers() << " workers)\n";
  if (args.csv) tput.print_csv(std::cout); else tput.print(std::cout);
  std::cout << "\nMessage-level queries: completion latency vs latency "
               "model and loss (" << msg_objects << " nodes, "
            << msg_queries << " queries; 'identical' counts exact "
               "differential matches)\n";
  if (args.csv) sweep_table.print_csv(std::cout);
  else sweep_table.print(std::cout);
  std::cout << "\nStaleness: " << stale.completed << "/" << stale.queries
            << " queries completed during a join burst at 10% loss, mean "
               "recall " << stale.mean_recall << " (min "
            << stale.min_recall << ")\n";
  std::cout << "\nChurn-concurrent (joins+leaves+crashes racing queries, "
               "10% loss): " << churned.completed << "/" << churned.queries
            << " completed, " << churned.exact << " exact, "
            << churned.reissued << " re-issued (max " << churned.max_epochs
            << " epochs, " << churned.branch_failovers
            << " branch failovers), recall mean " << churned.mean_recall
            << " (min " << churned.min_recall << "), precision mean "
            << churned.mean_precision << " (min " << churned.min_precision
            << ")\n";
  bench::write_json_file(args.json_path, doc);
  return 0;
} catch (const std::exception& e) {
  std::cerr << "bench_queries: " << e.what() << "\n";
  return 1;
}
