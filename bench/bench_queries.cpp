// Query-workload benchmark: the attribute-space range / radius queries
// (paper, section 7 perspectives) served at scale, plus the message-level
// query engine's behaviour under network conditions.
//
//   1. throughput  -- batched sequential query serving over overlays of
//      10^3 / 10^4 / 10^5 objects (10^6 with --full): queries/sec across
//      worker threads, msgs/query under the queries.hpp counting model,
//      and greedy hop counts against the polylog routing claim
//      (hops / log2(N)^2 should stay bounded as N grows);
//   2. message sweep -- the same queries executed as real kQuery /
//      kQueryForward / kQueryResult messages through the protocol engine,
//      swept over latency models and loss rates: p50/p99 completion
//      latency, wire messages per query, and the differential check
//      (every result set must equal the sequential ground truth at
//      quiescence -- enforced, not just reported);
//   3. staleness   -- queries racing a join burst under loss: completion
//      and recall against the quiesced ground truth;
//   4. churn       -- the crash-failover scenario: queries racing joins,
//      voluntary leaves AND crash-stop failures, graded (completion,
//      recall, precision, re-issued epochs, branch failovers) against
//      the post-quiescence ground truth.
//
// Usage: bench_queries [--objects N] [--queries Q] [--seed S] [--csv]
//                      [--smoke] [--full] [--json PATH]
//
// --smoke shrinks every phase for CI (~seconds); --full adds the 10^6
// point to the throughput series and widens the sweeps.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/expect.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "protocol/query_harness.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "voronet/queries.hpp"
#include "workload/distributions.hpp"

namespace {

using namespace voronet;

struct QueryDraw {
  bool range = false;
  ObjectId from = kNoObject;
  Vec2 a, b;
  double tol = 0.0;
};

/// Pre-draw a mixed workload whose selectivity is scale-free: radius and
/// tolerance shrink with sqrt(N) so a query matches tens of objects at
/// every N (what a per-query cost series needs; a fixed radius would
/// drown large overlays in O(N) result sets).
std::vector<QueryDraw> draw_queries(const Overlay& overlay, std::size_t count,
                                    Rng& rng) {
  const double n = static_cast<double>(overlay.size());
  std::vector<QueryDraw> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    QueryDraw d;
    d.range = (i % 2 == 0);
    d.from = overlay.random_object(rng);
    if (d.range) {
      const double len = rng.uniform(0.02, 0.3);
      const double angle = rng.uniform(0.0, 6.283185307179586);
      d.a = {rng.uniform(), rng.uniform()};
      d.b = {d.a.x + len * std::cos(angle), d.a.y + len * std::sin(angle)};
      d.tol = rng.uniform(0.0, 1.0) / std::sqrt(n);
    } else {
      const double want = rng.uniform(1.0, 48.0);  // expected matches
      d.a = {rng.uniform(), rng.uniform()};
      d.tol = std::sqrt(want / (3.141592653589793 * n));
    }
    out.push_back(d);
  }
  return out;
}

RegionQueryResult run_draw(const Overlay& overlay, const QueryDraw& d) {
  return d.range ? range_query(overlay, d.from, d.a, d.b, d.tol)
                 : radius_query(overlay, d.from, d.a, d.tol);
}

// ---------------------------------------------------------------------------
// Phase 1: sequential serving throughput
// ---------------------------------------------------------------------------

struct ThroughputPoint {
  std::size_t objects;
  std::size_t queries;
  double seconds;
  double qps;
  double mean_hops;
  double p99_hops;
  double mean_msgs;     ///< counting-model messages per query
  double mean_matches;
  double hops_over_polylog;  ///< mean_hops / log2(N)^2
};

ThroughputPoint throughput_point(std::size_t objects, std::size_t queries,
                                 std::uint64_t seed) {
  OverlayConfig cfg;
  cfg.n_max = objects;
  cfg.seed = seed;
  Overlay overlay(cfg);
  Rng rng(seed);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  while (overlay.size() < objects) overlay.insert(gen.next(rng));

  const std::vector<QueryDraw> draws = draw_queries(overlay, queries, rng);
  std::vector<double> hops(queries);
  std::vector<double> msgs(queries);
  std::vector<double> matches(queries);

  Timer t;
  parallel_for(0, queries, [&](std::size_t begin, std::size_t end,
                               std::size_t) {
    for (std::size_t i = begin; i < end; ++i) {
      const RegionQueryResult res = run_draw(overlay, draws[i]);
      hops[i] = static_cast<double>(res.route_hops);
      msgs[i] = static_cast<double>(res.total_messages());
      matches[i] = static_cast<double>(res.matches.size());
    }
  });
  const double secs = t.seconds();

  stats::OfflineSummary hop_summary;
  hop_summary.reserve(queries);
  double msg_sum = 0.0;
  double match_sum = 0.0;
  for (std::size_t i = 0; i < queries; ++i) {
    hop_summary.add(hops[i]);
    msg_sum += msgs[i];
    match_sum += matches[i];
  }
  const double log2n = std::log2(static_cast<double>(objects));
  ThroughputPoint p;
  p.objects = objects;
  p.queries = queries;
  p.seconds = secs;
  p.qps = static_cast<double>(queries) / secs;
  p.mean_hops = hop_summary.mean();
  p.p99_hops = hop_summary.quantile(0.99);
  p.mean_msgs = msg_sum / static_cast<double>(queries);
  p.mean_matches = match_sum / static_cast<double>(queries);
  p.hops_over_polylog = p.mean_hops / (log2n * log2n);
  std::cerr << "[queries] N=" << objects << ": " << p.qps << " q/s, "
            << p.mean_msgs << " msgs/query, mean hops " << p.mean_hops
            << " (/log2^2 = " << p.hops_over_polylog << ")\n";
  return p;
}

// ---------------------------------------------------------------------------
// Phase 2: message-level latency x loss sweep
// ---------------------------------------------------------------------------

struct SweepCell {
  std::string latency;
  double loss;
  std::size_t queries;
  std::size_t identical;  ///< result sets equal to the ground truth
  double p50_latency;
  double p99_latency;
  double wire_msgs_per_query;
  double mean_hops;
};

SweepCell message_cell(std::size_t objects, std::size_t queries,
                       const protocol::LatencyModel& latency, double loss,
                       std::uint64_t seed) {
  protocol::HarnessConfig config;
  config.overlay.n_max = objects * 2;
  config.overlay.seed = seed;
  config.network.seed = seed ^ 0xfeedULL;
  config.network.latency = latency;
  config.network.drop_probability = loss;
  config.seed = seed ^ 0x907aULL;
  protocol::QueryHarness qh(config);
  qh.populate(objects, seed);
  VORONET_EXPECT(qh.harness().verify_views().converged(),
                 "population did not converge");

  Rng rng(seed ^ 0xabcdULL);
  const std::vector<QueryDraw> draws =
      draw_queries(qh.overlay(), queries, rng);
  const auto tx_before = qh.harness().network().stats().transmissions;
  std::vector<std::uint64_t> ids;
  ids.reserve(queries);
  for (std::size_t i = 0; i < queries; ++i) {
    const QueryDraw& d = draws[i];
    const double at = 0.05 * static_cast<double>(i);
    ids.push_back(d.range
                      ? qh.issue_range(d.from, d.a, d.b, d.tol, at)
                      : qh.issue_radius(d.from, d.a, d.tol, at));
  }
  const auto run = qh.harness().run_to_idle();
  VORONET_EXPECT(!run.budget_exhausted, "query sweep did not quiesce");

  SweepCell cell;
  cell.latency = latency.name();
  cell.loss = loss;
  cell.queries = queries;
  cell.identical = 0;
  stats::OfflineSummary lat;
  stats::StreamingSummary hops;
  for (const std::uint64_t id : ids) {
    const auto d = qh.collect(id);
    VORONET_EXPECT(d.completed, "query never completed");
    if (d.identical()) ++cell.identical;
    lat.add(d.msg.latency());
    hops.add(static_cast<double>(d.msg.route_hops));
  }
  cell.p50_latency = lat.quantile(0.5);
  cell.p99_latency = lat.quantile(0.99);
  cell.wire_msgs_per_query =
      static_cast<double>(qh.harness().network().stats().transmissions -
                          tx_before) /
      static_cast<double>(queries);
  cell.mean_hops = hops.mean();
  return cell;
}

// ---------------------------------------------------------------------------
// Phase 3: staleness (queries racing a join burst)
// ---------------------------------------------------------------------------

struct StalenessReport {
  std::size_t queries = 0;
  std::size_t completed = 0;
  double mean_recall = 0.0;
  double min_recall = 1.0;
};

StalenessReport staleness_phase(std::size_t objects, std::size_t burst,
                                std::size_t queries, std::uint64_t seed) {
  protocol::HarnessConfig config;
  config.overlay.n_max = (objects + burst) * 2;
  config.overlay.seed = seed;
  config.network.seed = seed ^ 0xfeedULL;
  config.network.latency = protocol::LatencyModel::uniform(0.005, 0.05);
  config.network.drop_probability = 0.1;
  config.seed = seed ^ 0x907aULL;
  protocol::QueryHarness qh(config);
  qh.populate(objects, seed);

  Rng rng(seed ^ 0x5a1eULL);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  const double horizon = 2.0;
  for (std::size_t i = 0; i < burst; ++i) {
    qh.harness().join_after(
        horizon * static_cast<double>(i) / static_cast<double>(burst),
        gen.next(rng));
  }
  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < queries; ++i) {
    const double at =
        horizon * static_cast<double>(i) / static_cast<double>(queries);
    ids.push_back(qh.issue_radius(qh.harness().random_node(rng),
                                  {rng.uniform(), rng.uniform()},
                                  rng.uniform(0.03, 0.15), at));
  }
  const auto run = qh.harness().run_to_idle();
  VORONET_EXPECT(!run.budget_exhausted, "staleness phase did not quiesce");

  StalenessReport rep;
  rep.queries = queries;
  double recall_sum = 0.0;
  for (const std::uint64_t id : ids) {
    const auto d = qh.collect(id);
    if (!d.completed) continue;
    ++rep.completed;
    const double r = d.recall();
    recall_sum += r;
    rep.min_recall = std::min(rep.min_recall, r);
  }
  rep.mean_recall =
      rep.completed ? recall_sum / static_cast<double>(rep.completed) : 0.0;
  return rep;
}

// ---------------------------------------------------------------------------
// Phase 4: churn-concurrent queries (crash failover)
// ---------------------------------------------------------------------------

protocol::QueryHarness::ChurnScenarioReport churn_phase(
    std::size_t objects, const protocol::QueryHarness::ChurnScenario& s,
    std::uint64_t seed) {
  protocol::HarnessConfig config;
  config.overlay.n_max = (objects + s.joins) * 2;
  config.overlay.seed = seed;
  config.network.seed = seed ^ 0xfeedULL;
  config.network.latency = protocol::LatencyModel::uniform(0.005, 0.05);
  config.network.drop_probability = 0.1;
  config.failure_detect_delay = 0.25;
  config.seed = seed ^ 0x907aULL;
  protocol::QueryHarness qh(config);
  qh.populate(objects, seed);

  const auto rep = qh.run_churn_scenario(s);
  VORONET_EXPECT(rep.quiesced, "churn phase did not quiesce");
  VORONET_EXPECT(rep.completed == rep.queries,
                 "a query was lost to churn despite the failover machinery");
  VORONET_EXPECT(rep.converged,
                 "views did not reconverge after the churn scenario");
  return rep;
}

}  // namespace

int main(int argc, char** argv) try {
  const Flags flags(argc, argv);
  const bool smoke = flags.get_bool("smoke", false);
  const bool full = flags.get_bool("full", false);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 9));
  const auto queries = static_cast<std::size_t>(
      flags.get_int("queries", smoke ? 2000 : 200000));
  const bool csv = flags.get_bool("csv", false);
  const std::string json_path = flags.get_string("json", "");
  std::vector<std::size_t> series = smoke
                                        ? std::vector<std::size_t>{300, 1000}
                                        : std::vector<std::size_t>{1000,
                                                                   10000,
                                                                   100000};
  if (full) series.push_back(1000000);
  if (const long n = flags.get_int("objects", 0); n > 0) {
    series = {static_cast<std::size_t>(n)};
  }
  flags.reject_unconsumed();

  bench::Json doc = bench::Json::object();
  doc.set("bench", bench::Json::string("queries"));

  // --- Phase 1 -------------------------------------------------------------
  stats::Table tput({"objects", "queries", "q/s", "msgs/query", "mean_hops",
                     "p99_hops", "hops/log2^2", "mean_matches"});
  bench::Json tput_json = bench::Json::array();
  for (const std::size_t n : series) {
    const ThroughputPoint p = throughput_point(n, queries, seed);
    tput.add_row({stats::Table::cell(p.objects),
                  stats::Table::cell(p.queries),
                  stats::Table::cell(p.qps, 0),
                  stats::Table::cell(p.mean_msgs, 2),
                  stats::Table::cell(p.mean_hops, 2),
                  stats::Table::cell(p.p99_hops, 1),
                  stats::Table::cell(p.hops_over_polylog, 4),
                  stats::Table::cell(p.mean_matches, 1)});
    tput_json.push(bench::Json::object()
                       .set("objects", bench::Json::integer(p.objects))
                       .set("queries", bench::Json::integer(p.queries))
                       .set("seconds", bench::Json::number(p.seconds))
                       .set("queries_per_sec", bench::Json::number(p.qps))
                       .set("msgs_per_query", bench::Json::number(p.mean_msgs))
                       .set("mean_hops", bench::Json::number(p.mean_hops))
                       .set("p99_hops", bench::Json::number(p.p99_hops))
                       .set("hops_over_log2_sq",
                            bench::Json::number(p.hops_over_polylog))
                       .set("mean_matches",
                            bench::Json::number(p.mean_matches)));
  }
  doc.set("throughput", std::move(tput_json));

  // --- Phase 2 -------------------------------------------------------------
  const std::size_t msg_objects = smoke ? 150 : 600;
  const std::size_t msg_queries = smoke ? 20 : 100;
  const std::vector<protocol::LatencyModel> latencies =
      smoke ? std::vector<protocol::LatencyModel>{
                  protocol::LatencyModel::fixed(0.02)}
            : std::vector<protocol::LatencyModel>{
                  protocol::LatencyModel::fixed(0.02),
                  protocol::LatencyModel::uniform(0.005, 0.05),
                  protocol::LatencyModel::lognormal(0.005, 0.03, 1.0)};
  const std::vector<double> losses =
      smoke ? std::vector<double>{0.0, 0.25}
            : std::vector<double>{0.0, 0.05, 0.25};

  stats::Table sweep({"latency", "loss", "identical", "p50_lat", "p99_lat",
                      "wire_msgs/q", "mean_hops"});
  bench::Json sweep_json = bench::Json::array();
  for (const auto& latency : latencies) {
    for (const double loss : losses) {
      const SweepCell cell =
          message_cell(msg_objects, msg_queries, latency, loss, seed);
      VORONET_EXPECT(cell.identical == cell.queries,
                     "message-level query diverged from the ground truth "
                     "at quiescence");
      sweep.add_row({cell.latency, stats::Table::cell(cell.loss, 2),
                     stats::Table::cell(cell.identical),
                     stats::Table::cell(cell.p50_latency, 3),
                     stats::Table::cell(cell.p99_latency, 3),
                     stats::Table::cell(cell.wire_msgs_per_query, 1),
                     stats::Table::cell(cell.mean_hops, 2)});
      sweep_json.push(
          bench::Json::object()
              .set("latency", bench::Json::string(cell.latency))
              .set("loss", bench::Json::number(cell.loss))
              .set("queries", bench::Json::integer(cell.queries))
              .set("identical", bench::Json::integer(cell.identical))
              .set("p50_completion", bench::Json::number(cell.p50_latency))
              .set("p99_completion", bench::Json::number(cell.p99_latency))
              .set("wire_msgs_per_query",
                   bench::Json::number(cell.wire_msgs_per_query))
              .set("mean_hops", bench::Json::number(cell.mean_hops)));
    }
  }
  doc.set("message_sweep", std::move(sweep_json));

  // --- Phase 3 -------------------------------------------------------------
  const StalenessReport stale = staleness_phase(
      smoke ? 150 : 400, smoke ? 30 : 80, smoke ? 10 : 40, seed);
  doc.set("staleness",
          bench::Json::object()
              .set("queries", bench::Json::integer(stale.queries))
              .set("completed", bench::Json::integer(stale.completed))
              .set("mean_recall", bench::Json::number(stale.mean_recall))
              .set("min_recall", bench::Json::number(stale.min_recall)));

  // --- Phase 4 -------------------------------------------------------------
  protocol::QueryHarness::ChurnScenario churn;
  churn.joins = smoke ? 10 : 30;
  churn.leaves = smoke ? 8 : 25;
  churn.crashes = smoke ? 5 : 15;
  churn.queries = smoke ? 15 : 50;
  churn.horizon = smoke ? 1.5 : 3.0;
  churn.seed = seed ^ 0xc4a5ULL;
  const auto churned = churn_phase(smoke ? 150 : 400, churn, seed);
  doc.set(
      "churn",
      bench::Json::object()
          .set("queries", bench::Json::integer(churned.queries))
          .set("completed", bench::Json::integer(churned.completed))
          .set("exact", bench::Json::integer(churned.exact))
          .set("reissued", bench::Json::integer(churned.reissued))
          .set("max_epochs", bench::Json::integer(churned.max_epochs))
          .set("branch_failovers",
               bench::Json::integer(churned.branch_failovers))
          .set("mean_recall", bench::Json::number(churned.mean_recall))
          .set("min_recall", bench::Json::number(churned.min_recall))
          .set("mean_precision", bench::Json::number(churned.mean_precision))
          .set("min_precision", bench::Json::number(churned.min_precision)));

  std::cout << "Query serving throughput (sequential layer, "
            << parallel_workers() << " workers)\n";
  if (csv) tput.print_csv(std::cout); else tput.print(std::cout);
  std::cout << "\nMessage-level queries: completion latency vs latency "
               "model and loss (" << msg_objects << " nodes, "
            << msg_queries << " queries; 'identical' counts exact "
               "differential matches)\n";
  if (csv) sweep.print_csv(std::cout); else sweep.print(std::cout);
  std::cout << "\nStaleness: " << stale.completed << "/" << stale.queries
            << " queries completed during a join burst at 10% loss, mean "
               "recall " << stale.mean_recall << " (min "
            << stale.min_recall << ")\n";
  std::cout << "\nChurn-concurrent (joins+leaves+crashes racing queries, "
               "10% loss): " << churned.completed << "/" << churned.queries
            << " completed, " << churned.exact << " exact, "
            << churned.reissued << " re-issued (max " << churned.max_epochs
            << " epochs, " << churned.branch_failovers
            << " branch failovers), recall mean " << churned.mean_recall
            << " (min " << churned.min_recall << "), precision mean "
            << churned.mean_precision << " (min " << churned.min_precision
            << ")\n";
  bench::write_json_file(json_path, doc);
  return 0;
} catch (const std::exception& e) {
  std::cerr << "bench_queries: " << e.what() << "\n";
  return 1;
}
