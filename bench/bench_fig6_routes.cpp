// Figure 6: mean greedy route length as a function of the overlay size,
// for the four object distributions (uniform; sparse alpha = 1, 2, 5).
//
// Paper setup: 300,000-object overlay; mean over 100,000 random couples of
// distinct objects, measured after every 10,000 additions.  Expected
// result: poly-logarithmic growth, essentially independent of the data
// distribution (the curves overlap).
//
// Usage: bench_fig6_routes [--full] [--csv] [--objects N] [--pairs M]
//                          [--checkpoint C] [--seed S] [--long-links K]
#include <iostream>

#include "bench_common.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) try {
  using namespace voronet;
  const bench::Args args(argc, argv);
  const bench::Scale scale = bench::resolve_scale(args);
  const auto long_links =
      static_cast<std::size_t>(args.flags().get_int("long-links", 1));
  args.finish();

  std::cerr << "[fig6] objects=" << scale.objects
            << " checkpoint=" << scale.checkpoint << " pairs=" << scale.pairs
            << " long_links=" << long_links
            << (scale.full ? " (paper scale)" : " (default scale; --full for"
                                                " the paper's 300k/100k)")
            << "\n";

  // The four distribution series are independent experiments (each grows
  // its own overlay from its own seed), so they run concurrently; the
  // route sweeps inside each checkpoint parallelise further over the
  // worker pool.  Results are deterministic regardless of scheduling.
  const auto dists = workload::paper_distributions();
  std::vector<std::vector<bench::GrowthPoint>> series(dists.size());
  Timer timer;
  parallel_for_each(0, dists.size(), [&](std::size_t d) {
    Timer t;
    series[d] = bench::route_growth_series(dists[d], scale, long_links);
    std::cerr << "[fig6] " << dists[d].name() << " done in " << t.seconds()
              << "s\n";
  });

  stats::Table table({"objects", dists[0].name(), dists[1].name(),
                      dists[2].name(), dists[3].name()});
  for (std::size_t row = 0; row < series[0].size(); ++row) {
    table.add_row({stats::Table::cell(series[0][row].objects),
                   stats::Table::cell(series[0][row].mean_hops, 2),
                   stats::Table::cell(series[1][row].mean_hops, 2),
                   stats::Table::cell(series[2][row].mean_hops, 2),
                   stats::Table::cell(series[3][row].mean_hops, 2)});
  }
  std::cout << "Figure 6: mean route length vs overlay size (hops)\n";
  if (scale.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  if (!scale.json_path.empty()) {
    bench::Json doc = bench::Json::object();
    doc.set("bench", bench::Json::string("fig6_routes"))
        .set("objects", bench::Json::integer(scale.objects))
        .set("pairs", bench::Json::integer(scale.pairs))
        .set("long_links", bench::Json::integer(long_links))
        .set("seed", bench::Json::integer(scale.seed))
        .set("table", bench::table_json(table));
    bench::write_json_file(scale.json_path, doc);
  }
  std::cerr << "[fig6] total " << timer.seconds() << "s\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "bench_fig6_routes: " << e.what() << "\n";
  return 1;
}
