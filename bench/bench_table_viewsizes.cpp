// Section 4.1 claims table: every per-object view component has O(1)
// expected size --
//   |vn(o)| ~ 6 (planarity), |cn(o)| = O(1) for dmin = 1/(pi Nmax),
//   |BLRn(o)| small, total view size O(1).
//
// We grow overlays at several sizes per distribution and report the mean /
// p99 / max of each component: the means must stay flat as N grows.
//
// Usage: bench_table_viewsizes [--full] [--csv] [--seed S]
#include <iostream>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) try {
  using namespace voronet;
  const bench::Args args(argc, argv);
  const bench::Scale scale = bench::resolve_scale(args);
  args.finish();

  const std::vector<std::size_t> sizes =
      scale.full ? std::vector<std::size_t>{30'000, 100'000, 300'000}
                 : std::vector<std::size_t>{5'000, 20'000, 60'000};

  stats::Table table({"distribution", "objects", "vn mean", "vn max",
                      "cn mean", "cn p99", "blr mean", "blr max",
                      "view mean"});

  for (const auto& dist : workload::paper_distributions()) {
    for (const std::size_t n : sizes) {
      Timer t;
      OverlayConfig cfg;
      cfg.n_max = n;
      cfg.seed = scale.seed;
      Overlay overlay(cfg);
      Rng rng(scale.seed ^ n);
      bench::grow_overlay(overlay, dist, n, n, rng, [](std::size_t) {});

      stats::StreamingSummary vn;
      stats::StreamingSummary blr;
      stats::StreamingSummary total;
      stats::OfflineSummary cn;
      for (const ObjectId o : overlay.objects()) {
        const NodeView& v = overlay.view(o);
        vn.add(static_cast<double>(v.vn.size()));
        cn.add(static_cast<double>(v.cn.size()));
        blr.add(static_cast<double>(v.blr.size()));
        total.add(static_cast<double>(v.degree()));
      }
      table.add_row({dist.name(), stats::Table::cell(n),
                     stats::Table::cell(vn.mean(), 2),
                     stats::Table::cell(static_cast<std::size_t>(vn.max())),
                     stats::Table::cell(cn.mean(), 3),
                     stats::Table::cell(cn.quantile(0.99), 1),
                     stats::Table::cell(blr.mean(), 2),
                     stats::Table::cell(static_cast<std::size_t>(blr.max())),
                     stats::Table::cell(total.mean(), 2)});
      std::cerr << "[viewsizes] " << dist.name() << " n=" << n << " ("
                << t.seconds() << "s)\n";
    }
  }

  std::cout << "Section 4.1: view component sizes (O(1) expected)\n";
  if (scale.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  bench::write_json_file(
      scale.json_path, bench::Json::object()
                           .set("bench", bench::Json::string("table_viewsizes"))
                           .set("table", bench::table_json(table)));
  return 0;
} catch (const std::exception& e) {
  std::cerr << "bench_table_viewsizes: " << e.what() << "\n";
  return 1;
}
