// Section 7 perspective: the Delaunay triangulation is a t-spanner, the
// property behind the proposed range-query mechanisms ("Delaunay
// triangulation is known to be a t-spanner [8, 4]").
//
// Measures the observed graph dilation (shortest-path / Euclidean ratio)
// over sampled pairs for each paper workload; all values must stay below
// the Keil-Gutwin bound 2*pi/(3*cos(pi/6)) ~ 2.418.
//
// Usage: bench_spanner_dilation [--full] [--csv] [--objects N] [--pairs M]
//                               [--seed S]
#include <iostream>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "geometry/spanner.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) try {
  using namespace voronet;
  const bench::Args args(argc, argv);
  const bench::Scale scale = bench::resolve_scale(args);
  args.finish();

  const std::size_t objects = scale.full ? 20'000 : 4'000;
  const std::size_t pairs = scale.full ? 2'000 : 500;

  stats::Table table({"distribution", "objects", "pairs", "mean dilation",
                      "max dilation", "Keil-Gutwin bound"});
  for (const auto& dist : workload::paper_distributions()) {
    Timer t;
    OverlayConfig cfg;
    cfg.n_max = objects;
    cfg.seed = scale.seed;
    cfg.use_long_links = false;  // pure tessellation: faster to build
    Overlay overlay(cfg);
    Rng rng(scale.seed ^ 0x57a2);
    bench::grow_overlay(overlay, dist, objects, objects, rng,
                        [](std::size_t) {});
    Rng pair_rng(scale.seed + 11);
    const geo::DilationStats stats =
        geo::sample_dilation(overlay.tessellation(), pairs, pair_rng);
    table.add_row({dist.name(), stats::Table::cell(objects),
                   stats::Table::cell(stats.pairs),
                   stats::Table::cell(stats.mean_dilation, 4),
                   stats::Table::cell(stats.max_dilation, 4), "2.418"});
    std::cerr << "[spanner] " << dist.name() << " (" << t.seconds()
              << "s)\n";
  }

  std::cout << "Delaunay t-spanner dilation (range-query perspective)\n";
  if (scale.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  bench::write_json_file(
      scale.json_path, bench::Json::object()
                           .set("bench", bench::Json::string("spanner_dilation"))
                           .set("table", bench::table_json(table)));
  return 0;
} catch (const std::exception& e) {
  std::cerr << "bench_spanner_dilation: " << e.what() << "\n";
  return 1;
}
