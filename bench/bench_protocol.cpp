// Protocol-engine benchmark: the message-level simulation's cost and
// convergence behaviour.
//
//   1. throughput   -- wall-clock event/message processing rate while
//      growing an overlay entirely through protocol joins (the price of
//      simulating real messages instead of counting them);
//   2. convergence  -- simulated time until every node's local view
//      matches the ground truth again after a burst of joins, swept over
//      latency models and loss rates, with per-type message counts and
//      the differential verification result for every cell.
//
// Usage: bench_protocol [--objects N] [--burst B] [--seed S] [--csv]
//                       [--smoke] [--json PATH]
//
// --smoke shrinks both phases for the CI smoke run (~seconds).
#include <array>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/expect.hpp"
#include "common/timer.hpp"
#include "protocol/harness.hpp"
#include "stats/table.hpp"
#include "workload/distributions.hpp"

namespace {

using namespace voronet;

struct ProtocolScale {
  std::size_t objects;  ///< overlay size for both phases
  std::size_t burst;    ///< joins injected per convergence measurement
  std::uint64_t seed;
};

protocol::HarnessConfig base_config(const ProtocolScale& s) {
  protocol::HarnessConfig config;
  config.overlay.n_max = s.objects * 4;
  config.overlay.seed = s.seed;
  config.network.seed = s.seed ^ 0xfeedULL;
  config.seed = s.seed ^ 0x907aULL;
  return config;
}

/// Grow a harness to `target` nodes with spaced joins and drain.
void grow(protocol::ProtocolHarness& h, workload::PointGenerator& gen,
          Rng& rng, std::size_t target, double spacing) {
  std::size_t i = 0;
  while (h.node_count() + h.pending_joins() < target) {
    h.join_after(spacing * static_cast<double>(i++), gen.next(rng));
  }
  const auto run = h.run_to_idle();
  VORONET_EXPECT(!run.budget_exhausted, "growth did not quiesce");
}

bench::Json throughput_phase(const ProtocolScale& s) {
  protocol::ProtocolHarness h(base_config(s));
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  Rng rng(s.seed);

  Timer t;
  grow(h, gen, rng, s.objects, 0.01);
  const double secs = t.seconds();

  const auto& stats = h.network().stats();
  const double events = static_cast<double>(h.queue().processed());
  const double msgs = static_cast<double>(stats.transmissions);
  const auto report = h.verify_views();
  VORONET_EXPECT(report.converged(), "throughput phase did not converge");

  std::cerr << "[protocol] " << s.objects << " joins in " << secs << "s: "
            << msgs / secs << " msgs/s, " << events / secs
            << " events/s, mean join hops "
            << static_cast<double>(h.network().metrics().messages(
                   sim::MessageKind::kRouteForward)) /
                   static_cast<double>(s.objects)
            << "\n";

  return bench::Json::object()
      .set("objects", bench::Json::integer(s.objects))
      .set("seconds", bench::Json::number(secs))
      .set("messages", bench::Json::integer(stats.transmissions))
      .set("messages_per_sec", bench::Json::number(msgs / secs))
      .set("events_per_sec", bench::Json::number(events / secs))
      .set("delivered", bench::Json::integer(stats.delivered))
      .set("verified_nodes", bench::Json::integer(report.checked));
}

struct SweepCell {
  std::string latency;
  double loss;
  double convergence;  ///< simulated time from burst start to last apply
  std::uint64_t transmissions;
  std::uint64_t retransmits;
  std::uint64_t dropped;
  bool converged;
  std::array<std::uint64_t, sim::kMessageKindCount> by_type{};
};

SweepCell convergence_cell(const ProtocolScale& s,
                           const protocol::LatencyModel& latency,
                           double loss) {
  protocol::HarnessConfig config = base_config(s);
  config.network.latency = latency;
  config.network.drop_probability = loss;
  protocol::ProtocolHarness h(config);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  Rng rng(s.seed);
  grow(h, gen, rng, s.objects, 0.01);

  // Snapshot, then inject the burst within one second of simulated time.
  const double t0 = h.queue().now();
  const auto tx_before = h.network().stats().transmissions;
  const auto retx_before = h.network().stats().retransmits;
  const auto drop_before = h.network().stats().dropped;
  std::array<std::uint64_t, sim::kMessageKindCount> by_before{};
  for (std::size_t k = 0; k < sim::kMessageKindCount; ++k) {
    by_before[k] =
        h.network().metrics().messages(static_cast<sim::MessageKind>(k));
  }
  for (std::size_t i = 0; i < s.burst; ++i) {
    h.join_after(static_cast<double>(i) / static_cast<double>(s.burst),
                 gen.next(rng));
  }
  const auto run = h.run_to_idle();
  VORONET_EXPECT(!run.budget_exhausted, "burst did not quiesce");

  SweepCell cell;
  cell.latency = latency.name();
  cell.loss = loss;
  cell.convergence = h.last_apply_time() - t0;
  cell.transmissions = h.network().stats().transmissions - tx_before;
  cell.retransmits = h.network().stats().retransmits - retx_before;
  cell.dropped = h.network().stats().dropped - drop_before;
  cell.converged = h.verify_views().converged();
  for (std::size_t k = 0; k < sim::kMessageKindCount; ++k) {
    cell.by_type[k] =
        h.network().metrics().messages(static_cast<sim::MessageKind>(k)) -
        by_before[k];
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) try {
  const Flags flags(argc, argv);
  const bool smoke = flags.get_bool("smoke", false);
  ProtocolScale s;
  s.objects = static_cast<std::size_t>(
      flags.get_int("objects", smoke ? 400 : 2000));
  s.burst =
      static_cast<std::size_t>(flags.get_int("burst", smoke ? 50 : 200));
  s.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const bool csv = flags.get_bool("csv", false);
  const std::string json_path = flags.get_string("json", "");
  flags.reject_unconsumed();

  bench::Json doc = bench::Json::object();
  doc.set("bench", bench::Json::string("protocol"));
  doc.set("throughput", throughput_phase(s));

  const std::vector<protocol::LatencyModel> latencies = {
      protocol::LatencyModel::fixed(0.02),
      protocol::LatencyModel::uniform(0.005, 0.05),
      protocol::LatencyModel::lognormal(0.005, 0.03, 1.0),
  };
  const std::vector<double> losses = smoke ? std::vector<double>{0.0, 0.1}
                                           : std::vector<double>{0.0, 0.01,
                                                                 0.05, 0.2};

  stats::Table table({"latency", "loss", "convergence", "msgs", "retx",
                      "dropped", "vn_upd", "cn_upd", "lr_upd", "converged"});
  bench::Json sweep = bench::Json::array();
  for (const auto& latency : latencies) {
    for (const double loss : losses) {
      const SweepCell cell = convergence_cell(s, latency, loss);
      VORONET_EXPECT(cell.converged,
                     "sweep cell failed differential verification");
      const auto by = [&](sim::MessageKind k) {
        return cell.by_type[static_cast<std::size_t>(k)];
      };
      table.add_row({cell.latency, stats::Table::cell(cell.loss, 2),
                     stats::Table::cell(cell.convergence, 3),
                     stats::Table::cell(cell.transmissions),
                     stats::Table::cell(cell.retransmits),
                     stats::Table::cell(cell.dropped),
                     stats::Table::cell(by(sim::MessageKind::kVoronoiUpdate)),
                     stats::Table::cell(by(sim::MessageKind::kCloseNeighbor)),
                     stats::Table::cell(by(sim::MessageKind::kLongLinkBind)),
                     cell.converged ? "yes" : "NO"});
      bench::Json row = bench::Json::object();
      row.set("latency", bench::Json::string(cell.latency))
          .set("loss", bench::Json::number(cell.loss))
          .set("convergence_time", bench::Json::number(cell.convergence))
          .set("transmissions", bench::Json::integer(cell.transmissions))
          .set("retransmits", bench::Json::integer(cell.retransmits))
          .set("dropped", bench::Json::integer(cell.dropped))
          .set("converged", bench::Json::boolean(cell.converged));
      bench::Json per_type = bench::Json::object();
      for (std::size_t k = 0; k < sim::kMessageKindCount; ++k) {
        per_type.set(
            std::string(message_kind_name(static_cast<sim::MessageKind>(k))),
            bench::Json::integer(cell.by_type[k]));
      }
      row.set("messages_by_type", std::move(per_type));
      sweep.push(std::move(row));
    }
  }
  doc.set("convergence_sweep", std::move(sweep));

  std::cout << "Protocol engine: burst convergence vs latency model and "
               "loss rate ("
            << s.objects << " nodes, burst " << s.burst << ")\n";
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  bench::write_json_file(json_path, doc);
  return 0;
} catch (const std::exception& e) {
  std::cerr << "bench_protocol: " << e.what() << "\n";
  return 1;
}
