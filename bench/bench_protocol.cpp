// Protocol-engine benchmark: the message-level simulation's cost and
// convergence behaviour.
//
//   1. throughput   -- wall-clock event/message processing rate while
//      growing an overlay entirely through protocol joins (the price of
//      simulating real messages instead of counting them);
//   2. convergence  -- simulated time until every node's local view
//      matches the ground truth again after a burst of joins, swept over
//      latency models and loss rates via the scenario API (one flash-crowd
//      JoinBurst timeline x scenario::sweep), with per-type message counts
//      and the differential verification result for every cell.
//
// Usage: bench_protocol [--objects N] [--burst B] [--seed S] [--csv]
//                       [--smoke] [--json PATH]
//
// --smoke shrinks both phases for the CI smoke run (~seconds).
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/expect.hpp"
#include "common/timer.hpp"
#include "protocol/harness.hpp"
#include "scenario/runner.hpp"
#include "stats/table.hpp"
#include "workload/distributions.hpp"

namespace {

using namespace voronet;

struct ProtocolScale {
  std::size_t objects;  ///< overlay size for both phases
  std::size_t burst;    ///< joins injected per convergence measurement
  std::uint64_t seed;
};

bench::Json throughput_phase(const ProtocolScale& s) {
  protocol::HarnessConfig config;
  config.overlay.n_max = s.objects * 4;
  config.overlay.seed = s.seed;
  config.network.seed = s.seed ^ 0xfeedULL;
  config.seed = s.seed ^ 0x907aULL;
  protocol::ProtocolHarness h(config);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  Rng rng(s.seed);

  Timer t;
  std::size_t i = 0;
  while (h.node_count() + h.pending_joins() < s.objects) {
    h.join_after(0.01 * static_cast<double>(i++), gen.next(rng));
  }
  const auto run = h.run_to_idle();
  VORONET_EXPECT(!run.budget_exhausted, "growth did not quiesce");
  const double secs = t.seconds();

  const auto& stats = h.network().stats();
  const double events = static_cast<double>(h.queue().processed());
  const double msgs = static_cast<double>(stats.transmissions);
  const auto report = h.verify_views();
  VORONET_EXPECT(report.converged(), "throughput phase did not converge");

  std::cerr << "[protocol] " << s.objects << " joins in " << secs << "s: "
            << msgs / secs << " msgs/s, " << events / secs
            << " events/s, mean join hops "
            << static_cast<double>(h.network().metrics().messages(
                   sim::MessageKind::kRouteForward)) /
                   static_cast<double>(s.objects)
            << "\n";

  return bench::Json::object()
      .set("objects", bench::Json::integer(s.objects))
      .set("seconds", bench::Json::number(secs))
      .set("messages", bench::Json::integer(stats.transmissions))
      .set("messages_per_sec", bench::Json::number(msgs / secs))
      .set("events_per_sec", bench::Json::number(events / secs))
      .set("delivered", bench::Json::integer(stats.delivered))
      .set("verified_nodes", bench::Json::integer(report.checked));
}

}  // namespace

int main(int argc, char** argv) try {
  const bench::Args args(argc, argv, /*default_seed=*/7);
  const bool smoke = args.smoke;
  ProtocolScale s;
  s.objects = static_cast<std::size_t>(
      args.flags().get_int("objects", smoke ? 400 : 2000));
  s.burst = static_cast<std::size_t>(
      args.flags().get_int("burst", smoke ? 50 : 200));
  s.seed = args.seed;
  args.finish();

  bench::Json doc = bench::Json::object();
  doc.set("bench", bench::Json::string("protocol"));
  doc.set("throughput", throughput_phase(s));

  // The convergence measurement is a scenario: populate, inject one
  // flash-crowd join burst within a second of simulated time, drain, and
  // audit.  scenario::sweep replaces the hand-rolled latency x loss grid.
  scenario::Scenario burst;
  burst.name = "bench-protocol-burst";
  burst.population = s.objects;
  burst.seed = s.seed;
  burst.timeline = {scenario::Event::join_burst(0.0, s.burst, 1.0)};

  scenario::SweepGrid grid;
  grid.latencies = {
      protocol::LatencyModel::fixed(0.02),
      protocol::LatencyModel::uniform(0.005, 0.05),
      protocol::LatencyModel::lognormal(0.005, 0.03, 1.0),
  };
  grid.losses = smoke ? std::vector<double>{0.0, 0.1}
                      : std::vector<double>{0.0, 0.01, 0.05, 0.2};

  stats::Table table({"latency", "loss", "convergence", "msgs", "retx",
                      "dropped", "vn_upd", "cn_upd", "lr_upd", "converged"});
  bench::Json sweep_json = bench::Json::array();
  for (const scenario::SweepCell& cell : scenario::sweep(burst, grid)) {
    const scenario::Report& rep = cell.report;
    VORONET_EXPECT(rep.quiesced, "sweep cell did not quiesce");
    VORONET_EXPECT(rep.converged,
                   "sweep cell failed differential verification");
    table.add_row({rep.latency_name, stats::Table::cell(rep.loss, 2),
                   stats::Table::cell(rep.convergence_time, 3),
                   stats::Table::cell(rep.wire.transmissions),
                   stats::Table::cell(rep.wire.retransmits),
                   stats::Table::cell(rep.wire.dropped),
                   stats::Table::cell(
                       rep.messages_of(sim::MessageKind::kVoronoiUpdate)),
                   stats::Table::cell(
                       rep.messages_of(sim::MessageKind::kCloseNeighbor)),
                   stats::Table::cell(
                       rep.messages_of(sim::MessageKind::kLongLinkBind)),
                   rep.converged ? "yes" : "NO"});
    bench::Json row = bench::Json::object();
    row.set("latency", bench::Json::string(rep.latency_name))
        .set("loss", bench::Json::number(rep.loss))
        .set("convergence_time", bench::Json::number(rep.convergence_time))
        .set("transmissions", bench::Json::integer(rep.wire.transmissions))
        .set("retransmits", bench::Json::integer(rep.wire.retransmits))
        .set("dropped", bench::Json::integer(rep.wire.dropped))
        .set("converged", bench::Json::boolean(rep.converged));
    bench::Json per_type = bench::Json::object();
    for (std::size_t k = 0; k < sim::kMessageKindCount; ++k) {
      per_type.set(
          std::string(message_kind_name(static_cast<sim::MessageKind>(k))),
          bench::Json::integer(rep.messages[k]));
    }
    row.set("messages_by_type", std::move(per_type));
    sweep_json.push(std::move(row));
  }
  doc.set("convergence_sweep", std::move(sweep_json));

  std::cout << "Protocol engine: burst convergence vs latency model and "
               "loss rate ("
            << s.objects << " nodes, burst " << s.burst << ")\n";
  if (args.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  bench::write_json_file(args.json_path, doc);
  return 0;
} catch (const std::exception& e) {
  std::cerr << "bench_protocol: " << e.what() << "\n";
  return 1;
}
