// Section 7 perspective: dynamic adaptation of Nmax.
//
// The paper proposes growing Nmax (and thus shrinking dmin and the
// Choose-LRT lower bound) when the overlay outgrows its provisioning,
// either by redrawing every long link ("bootstrap storm") or only those
// of objects with over-dense close neighbourhoods (refined scheme).
//
// This bench grows an overlay far past its provisioned capacity, measures
// routing before and after each adaptation flavour, and reports the
// message bill of the adaptation itself.
//
// Usage: bench_adaptive_nmax [--full] [--csv] [--pairs M] [--seed S]
#include <iostream>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) try {
  using namespace voronet;
  const bench::Args args(argc, argv);
  const bench::Scale scale = bench::resolve_scale(args);
  args.finish();

  // Deliberate under-provisioning by 8x.  Note: far harsher ratios combined
  // with heavy clustering make the close neighbourhoods quadratic (every
  // cluster pair within dmin) -- precisely the degeneration the paper's
  // adaptation exists to prevent, but not something a benchmark should
  // simulate at full O(N^2) cost.
  const std::size_t actual = scale.full ? 50'000 : 8'000;
  const std::size_t provisioned = actual / 8;
  const std::size_t pairs = scale.pairs;

  stats::Table table({"workload", "phase", "n_max", "dmin", "mean hops",
                      "dmin-stop %", "adaptation msgs"});

  for (const auto& dist : {workload::DistributionConfig::uniform(),
                           workload::DistributionConfig::power_law(2.0)}) {
    for (const bool refined : {false, true}) {
      Timer t;
      OverlayConfig cfg;
      cfg.n_max = provisioned;  // deliberately under-provisioned
      cfg.seed = scale.seed;
      Overlay overlay(cfg);
      Rng rng(scale.seed ^ 0xada9);
      bench::grow_overlay(overlay, dist, actual, actual, rng,
                          [](std::size_t) {});

      Rng probe_rng(scale.seed + 3);
      const bench::ProbeStats before =
          bench::probe_stats(overlay, pairs, probe_rng);
      table.add_row({dist.name(),
                     refined ? "before (refined run)" : "before (full run)",
                     stats::Table::cell(overlay.config().n_max),
                     stats::Table::cell(overlay.dmin(), 8),
                     stats::Table::cell(before.mean_hops, 2),
                     stats::Table::cell(100.0 * before.dmin_stop_fraction, 1),
                     "-"});

      const std::uint64_t msgs_before = overlay.metrics().total_messages();
      overlay.rebalance_capacity(4 * actual, refined ? 8 : 0);
      const std::uint64_t adaptation_msgs =
          overlay.metrics().total_messages() - msgs_before;

      Rng probe_rng2(scale.seed + 3);
      const bench::ProbeStats after =
          bench::probe_stats(overlay, pairs, probe_rng2);
      table.add_row({dist.name(),
                     refined ? "after refined scheme" : "after full redraw",
                     stats::Table::cell(overlay.config().n_max),
                     stats::Table::cell(overlay.dmin(), 8),
                     stats::Table::cell(after.mean_hops, 2),
                     stats::Table::cell(100.0 * after.dmin_stop_fraction, 1),
                     stats::Table::cell(adaptation_msgs)});
      std::cerr << "[adaptive] " << dist.name()
                << (refined ? " refined" : " full") << " (" << t.seconds()
                << "s)\n";
    }
  }

  std::cout << "Section 7 perspective: Nmax adaptation\n";
  if (scale.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  bench::write_json_file(
      scale.json_path, bench::Json::object()
                           .set("bench", bench::Json::string("adaptive_nmax"))
                           .set("table", bench::table_json(table)));
  return 0;
} catch (const std::exception& e) {
  std::cerr << "bench_adaptive_nmax: " << e.what() << "\n";
  return 1;
}
