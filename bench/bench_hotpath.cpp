// Hot-path microbenchmarks: the three code paths everything else sits on.
//
//   1. bulk_insert  -- Delaunay construction throughput (points/sec) on
//      uniform-random points, plus the exact-predicate fallback rate the
//      adaptive filter stages are supposed to keep negligible;
//   2. locate       -- point-location walk lengths with and without a good
//      hint (the hint cache must make hinted walks O(1));
//   3. routing      -- greedy route throughput over a frozen overlay,
//      single-threaded and with parallel_for.
//
// Emits a JSON document (--json PATH, conventionally BENCH_hotpath.json)
// so the perf trajectory is tracked from commit to commit.
//
// Usage: bench_hotpath [--points N] [--locates L] [--objects K] [--routes M]
//                      [--seed S] [--threads T] [--smoke] [--json PATH]
//
// --smoke shrinks every dimension ~10x for the CI smoke run (~seconds).
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "geometry/delaunay.hpp"
#include "geometry/predicates.hpp"

namespace {

using namespace voronet;

struct HotpathScale {
  std::size_t points;
  std::size_t locates;
  std::size_t objects;
  std::size_t routes;
  std::uint64_t seed;
};

bench::Json bench_bulk_insert(const HotpathScale& s,
                              geo::DelaunayTriangulation& dt) {
  Rng rng(s.seed);
  std::vector<Vec2> points;
  points.reserve(s.points);
  for (std::size_t i = 0; i < s.points; ++i) {
    points.push_back({rng.uniform(), rng.uniform()});
  }

  geo::reset_predicate_stats();
  Timer t;
  dt.bulk_insert(points);
  const double secs = t.seconds();
  const geo::PredicateStats ps = geo::predicate_stats();

  const auto calls = ps.orient_calls + ps.incircle_calls;
  const auto exact = ps.orient_exact + ps.incircle_exact;
  const double exact_rate =
      calls == 0 ? 0.0
                 : static_cast<double>(exact) / static_cast<double>(calls);
  std::cerr << "[hotpath] bulk_insert: " << s.points << " pts in " << secs
            << "s (" << static_cast<double>(s.points) / secs
            << " pts/s), exact fallback rate " << exact_rate << "\n";
  return bench::Json::object()
      .set("points", bench::Json::integer(s.points))
      .set("seconds", bench::Json::number(secs))
      .set("points_per_sec",
           bench::Json::number(static_cast<double>(s.points) / secs))
      .set("orient_calls", bench::Json::integer(ps.orient_calls))
      .set("orient_adapt", bench::Json::integer(ps.orient_adapt))
      .set("orient_exact", bench::Json::integer(ps.orient_exact))
      .set("incircle_calls", bench::Json::integer(ps.incircle_calls))
      .set("incircle_adapt", bench::Json::integer(ps.incircle_adapt))
      .set("incircle_exact", bench::Json::integer(ps.incircle_exact))
      .set("exact_rate", bench::Json::number(exact_rate));
}

bench::Json bench_locate(const HotpathScale& s,
                         const geo::DelaunayTriangulation& dt) {
  Rng rng(s.seed ^ 0x10ca7eULL);
  // The hinted walk starts at the owner of a point one expected
  // nearest-neighbour distance away -- the bulk-build / overlay-join usage
  // pattern the hint cache is built for.
  const double step =
      1.0 / std::sqrt(static_cast<double>(dt.size() > 0 ? dt.size() : 1));
  std::uint64_t cold_steps = 0;
  std::uint64_t hinted_steps = 0;
  Timer t;
  for (std::size_t i = 0; i < s.locates; ++i) {
    const Vec2 p{rng.uniform(), rng.uniform()};
    const auto owner = dt.nearest(p);
    cold_steps += dt.last_walk_steps();
    const Vec2 q{std::min(1.0, std::max(0.0, p.x + step * rng.uniform(-1, 1))),
                 std::min(1.0, std::max(0.0, p.y + step * rng.uniform(-1, 1)))};
    dt.nearest(q, owner);
    hinted_steps += dt.last_walk_steps();
  }
  const double secs = t.seconds();
  const double cold =
      static_cast<double>(cold_steps) / static_cast<double>(s.locates);
  const double hinted =
      static_cast<double>(hinted_steps) / static_cast<double>(s.locates);
  std::cerr << "[hotpath] locate: mean walk steps cold=" << cold
            << " hinted=" << hinted << " (" << secs << "s)\n";
  return bench::Json::object()
      .set("queries", bench::Json::integer(s.locates))
      .set("seconds", bench::Json::number(secs))
      .set("mean_walk_steps_cold", bench::Json::number(cold))
      .set("mean_walk_steps_hinted", bench::Json::number(hinted));
}

bench::Json bench_routing(const HotpathScale& s) {
  OverlayConfig cfg;
  cfg.n_max = s.objects;
  cfg.seed = s.seed;
  Overlay overlay(cfg);
  Rng rng(s.seed ^ 0x9007e5ULL);
  Timer build;
  bench::grow_overlay(overlay, workload::DistributionConfig::uniform(),
                      s.objects, s.objects, rng, [](std::size_t) {});
  std::cerr << "[hotpath] overlay build: " << s.objects << " objects in "
            << build.seconds() << "s\n";

  std::vector<ProbeQuery> couples;
  couples.reserve(s.routes);
  for (std::size_t i = 0; i < s.routes; ++i) {
    const ObjectId from = overlay.random_object(rng);
    ObjectId to = overlay.random_object(rng);
    while (to == from && overlay.size() > 1) to = overlay.random_object(rng);
    couples.push_back({from, overlay.position(to)});
  }
  std::vector<RouteResult> results(couples.size());

  // Scalar probes: one route at a time (the per-route latency path).
  std::uint64_t hops = 0;
  Timer ts;
  for (const ProbeQuery& c : couples) {
    hops += overlay.probe(c.from, c.target).hops;
  }
  const double secs_scalar = ts.seconds();

  // The measurement sweep: software-pipelined batch, single-threaded.
  Timer t1;
  overlay.probe_batch(couples, results);
  const double secs_1t = t1.seconds();

  // And across the worker pool.
  Timer tmt;
  parallel_for(0, couples.size(),
               [&](std::size_t lo, std::size_t hi, std::size_t) {
                 overlay.probe_batch(
                     std::span(couples).subspan(lo, hi - lo),
                     std::span(results).subspan(lo, hi - lo));
               });
  const double secs_mt = tmt.seconds();

  const double rs = static_cast<double>(s.routes) / secs_scalar;
  const double r1 = static_cast<double>(s.routes) / secs_1t;
  const double rmt = static_cast<double>(s.routes) / secs_mt;
  std::cerr << "[hotpath] routing: " << r1 << " routes/s single-threaded ("
            << rs << " scalar), " << rmt << " routes/s with "
            << parallel_workers() << " workers\n";
  return bench::Json::object()
      .set("overlay_objects", bench::Json::integer(s.objects))
      .set("routes", bench::Json::integer(s.routes))
      .set("build_seconds", bench::Json::number(build.seconds()))
      .set("mean_hops",
           bench::Json::number(static_cast<double>(hops) /
                               static_cast<double>(s.routes)))
      .set("routes_per_sec_scalar", bench::Json::number(rs))
      .set("routes_per_sec_1t", bench::Json::number(r1))
      .set("routes_per_sec_mt", bench::Json::number(rmt))
      .set("workers", bench::Json::integer(parallel_workers()));
}

}  // namespace

int main(int argc, char** argv) try {
  const bench::Args args(argc, argv);
  const bool smoke = args.smoke;
  HotpathScale s{};
  s.points = static_cast<std::size_t>(
      args.flags().get_int("points", smoke ? 100'000 : 1'000'000));
  s.locates = static_cast<std::size_t>(
      args.flags().get_int("locates", smoke ? 2'000 : 20'000));
  s.objects = static_cast<std::size_t>(
      args.flags().get_int("objects", smoke ? 5'000 : 50'000));
  s.routes = static_cast<std::size_t>(
      args.flags().get_int("routes", smoke ? 2'000 : 20'000));
  s.seed = args.seed;
  const auto threads =
      static_cast<std::size_t>(args.flags().get_int("threads", 0));
  const std::string json_path = args.json_path;
  args.finish();
  set_parallel_workers(threads);

  geo::DelaunayTriangulation dt;
  bench::Json doc = bench::Json::object();
  doc.set("bench", bench::Json::string("hotpath"))
      .set("seed", bench::Json::integer(s.seed))
      .set("smoke", bench::Json::boolean(smoke))
      .set("bulk_insert", bench_bulk_insert(s, dt))
      .set("locate", bench_locate(s, dt))
      .set("routing", bench_routing(s));
  bench::write_json_file(json_path, doc);
  if (json_path.empty()) {
    doc.write(std::cout);
    std::cout << "\n";
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "bench_hotpath: " << e.what() << "\n";
  return 1;
}
