// bench_serve: open-loop serving latency through the transport seam.
//
// Grows one overlay per backend, mounts the serving front-end
// (src/serve: admission + batched covering floods + churn-invalidated
// cache) and drives it with an open-loop Poisson query stream at a sweep
// of arrival rates.  The headline cells run on ThreadTransport -- real
// threads, real monotonic-clock latencies, so p50/p99 are wall-clock
// serving numbers -- with one SimTransport cell as the deterministic
// cross-check (same serving code, virtual clock) and one churn cell
// that crashes nodes mid-stream to exercise cache invalidation.
//
// SLO gate (exit status, consumed by CI's smoke run):
//   * every cell quiesces (no budget_exhausted / patience overrun);
//   * the lowest-rate thread cell completes every offered query;
//   * graded queries -- those completed at the final topology version --
//     have recall == precision == 1.0 in EVERY cell, churn included;
//   * p99 is finite and positive wherever anything completed.
//
// Flags beyond the common set (see bench_common.hpp):
//   --objects N   overlay size per cell
//   --shards K    ThreadTransport actor threads (0 = derive)
//
// The "socket" cell is a real two-process run: the shard is forked into
// a child hosting tools-style voronet_served serving (ServedShard over a
// Unix-domain socket) and this process drives it with
// run_open_loop_remote -- same arrival schedule, wall-clock latencies
// measured across the process boundary.
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "net/serve_client.hpp"
#include "net/serve_loop.hpp"
#include "net/socket.hpp"
#include "protocol/query_harness.hpp"
#include "serve/open_loop.hpp"
#include "serve/query_server.hpp"

namespace {

using namespace voronet;
using protocol::HarnessConfig;
using protocol::TransportKind;

struct Cell {
  std::string name;
  TransportKind backend = TransportKind::kThread;
  double rate = 0.0;
  bool churn = false;
  bool remote = false;  ///< served from a forked process over a socket
  serve::LoadReport report;
  /// Overlay-internal bytes on the wire (codec frame sizes; identical
  /// billing on every backend).  Per-kind only for in-process cells.
  std::uint64_t wire_bytes = 0;
  std::vector<std::pair<std::string, std::uint64_t>> wire_by_kind;
};

HarnessConfig make_config(TransportKind backend, unsigned shards,
                          std::uint64_t seed) {
  HarnessConfig config;
  config.transport = backend;
  config.transport_shards = shards;
  config.seed = seed;
  // Short wires: on ThreadTransport these are real wall-clock seconds,
  // so the latency model and the failure detector are scaled down to
  // keep a full sweep inside a CI minute while preserving the shape
  // (non-zero spread, derived RTO, real retransmissions under churn).
  config.network.latency = protocol::LatencyModel::uniform(0.0005, 0.002);
  config.network.seed = seed ^ 0x77aabULL;
  config.failure_detect_delay = 0.05;
  return config;
}

Cell run_cell(std::string name, TransportKind backend, unsigned shards,
              std::size_t objects, double rate, double duration, bool churn,
              std::uint64_t seed) {
  Cell cell;
  cell.name = std::move(name);
  cell.backend = backend;
  cell.rate = rate;
  cell.churn = churn;

  protocol::QueryHarness qh(make_config(backend, shards, seed));
  qh.populate(objects, seed ^ 0x9e37ULL, 0.002);
  protocol::ProtocolHarness& harness = qh.harness();

  serve::QueryServer server(harness, serve::ServeConfig{});
  serve::LoadConfig load;
  load.rate = rate;
  load.duration = duration;
  load.seed = seed ^ 0xf00dULL;

  if (churn) {
    // Crash a handful of nodes mid-stream: every crash bumps the
    // topology version, invalidating all cached answers; queries
    // completed before the last crash become ungradable and the report
    // grades only the post-churn tail.
    Rng crng(seed ^ 0xc4a5ULL);
    const std::size_t crashes = std::max<std::size_t>(2, objects / 50);
    for (std::size_t i = 0; i < crashes; ++i) {
      const double at = duration * (0.2 + 0.5 * static_cast<double>(i) /
                                              static_cast<double>(crashes));
      harness.network().schedule(at, [&harness, &crng] {
        if (harness.node_count() > 8) {
          harness.crash(harness.random_node(crng));
        }
      });
    }
  }

  cell.report = serve::run_open_loop(harness, server, load);
  const sim::Metrics& metrics = harness.network().metrics();
  cell.wire_bytes = metrics.total_wire_bytes();
  for (std::size_t k = 0; k < sim::kMessageKindCount; ++k) {
    const auto kind = static_cast<sim::MessageKind>(k);
    if (metrics.wire_bytes(kind) > 0) {
      cell.wire_by_kind.emplace_back(std::string(sim::message_kind_name(kind)),
                                     metrics.wire_bytes(kind));
    }
  }
  return cell;
}

// One real client/server process pair over a Unix-domain socket: fork a
// ServedShard (safe here: every transport thread of earlier cells has
// been joined when its harness was destroyed), drive it remotely, reap
// it.  The shard's own overlay wire runs on ThreadTransport; the socket
// under measurement is the serving boundary.
Cell run_socket_cell(std::string name, std::size_t objects, double rate,
                     double duration, std::uint64_t seed) {
  Cell cell;
  cell.name = std::move(name);
  cell.backend = TransportKind::kSocket;
  cell.rate = rate;
  cell.remote = true;

  const std::string path = net::unique_uds_path();
  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error("bench_serve: fork failed");
  }
  if (pid == 0) {
    // Child: serve until the parent's shutdown frame.  _exit, not exit:
    // the parent owns the streams and the atexit machinery.
    int status = 0;
    try {
      net::ServedConfig config;
      config.listen = "uds:" + path;
      config.objects = objects;
      config.seed = seed;
      net::ServedShard shard(config);
      shard.serve();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bench_serve (shard child): %s\n", e.what());
      status = 1;
    }
    ::_exit(status);
  }

  serve::LoadConfig load;
  load.rate = rate;
  load.duration = duration;
  load.seed = seed ^ 0xf00dULL;
  try {
    net::ServeClient client("uds:" + path);
    net::ServeFrame server_report;
    cell.report = net::run_open_loop_remote(client, load, &server_report);
    cell.wire_bytes = server_report.wire_bytes;
    client.shutdown_server();
  } catch (...) {
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    throw;
  }
  int wstatus = 0;
  ::waitpid(pid, &wstatus, 0);
  if (!WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0) {
    cell.report.drained = false;  // shard died: fail the SLO gate loudly
  }
  return cell;
}

Json cell_json(const Cell& cell) {
  const serve::LoadReport& r = cell.report;
  Json j = Json::object();
  j.set("name", Json::string(cell.name));
  const char* backend = "sim";
  if (cell.backend == TransportKind::kThread) backend = "thread";
  if (cell.backend == TransportKind::kSocket) backend = "socket";
  j.set("backend", Json::string(backend));
  j.set("remote", Json::boolean(cell.remote));
  j.set("rate_qps", Json::number(cell.rate));
  j.set("churn", Json::boolean(cell.churn));
  j.set("offered", Json::integer(r.offered));
  j.set("admitted", Json::integer(r.admitted));
  j.set("rejected", Json::integer(r.rejected));
  j.set("completed", Json::integer(r.completed));
  j.set("completion_rate", Json::number(r.completion_rate));
  j.set("cache_hits", Json::integer(r.cache_hits));
  j.set("batches", Json::integer(r.batches));
  j.set("mean_batch", Json::number(r.mean_batch));
  j.set("p50_s", Json::number(r.p50));
  j.set("p99_s", Json::number(r.p99));
  j.set("max_s", Json::number(r.max_latency));
  j.set("mean_s", Json::number(r.mean_latency));
  j.set("graded", Json::integer(r.graded));
  j.set("recall", Json::number(r.recall));
  j.set("precision", Json::number(r.precision));
  j.set("drained", Json::boolean(r.drained));
  j.set("wire_bytes", Json::integer(cell.wire_bytes));
  if (!cell.wire_by_kind.empty()) {
    Json by_kind = Json::object();
    for (const auto& [kind, bytes] : cell.wire_by_kind) {
      by_kind.set(kind, Json::integer(bytes));
    }
    j.set("wire_bytes_by_kind", std::move(by_kind));
  }
  return j;
}

}  // namespace

int main(int argc, char** argv) try {
  bench::Args args(argc, argv, /*default_seed=*/0x5e4eULL);
  const std::size_t objects = static_cast<std::size_t>(args.flags().get_int(
      "objects", args.smoke ? 150 : 400));
  const unsigned shards =
      static_cast<unsigned>(args.flags().get_int("shards", 0));
  args.finish();

  const double duration = args.smoke ? 0.4 : 1.0;
  std::vector<double> rates =
      args.smoke ? std::vector<double>{100.0, 400.0}
                 : std::vector<double>{100.0, 400.0, 1500.0};

  std::vector<Cell> cells;
  for (const double rate : rates) {
    cells.push_back(run_cell("thread@" + std::to_string(static_cast<int>(rate)),
                             TransportKind::kThread, shards, objects, rate,
                             duration, /*churn=*/false, args.seed));
  }
  cells.push_back(run_cell("thread+churn", TransportKind::kThread, shards,
                           objects, rates[rates.size() - 2], duration,
                           /*churn=*/true, args.seed + 1));
  cells.push_back(run_cell("sim@" + std::to_string(static_cast<int>(rates[0])),
                           TransportKind::kSim, shards, objects, rates[0],
                           duration, /*churn=*/false, args.seed + 2));
  cells.push_back(
      run_socket_cell("socket@" + std::to_string(static_cast<int>(rates[0])),
                      objects, rates[0], duration, args.seed + 3));

  stats::Table table({"cell", "rate", "offered", "completed", "rejected",
                      "cache", "batches", "mean_batch", "p50 ms", "p99 ms",
                      "graded", "recall", "precision"});
  for (const Cell& c : cells) {
    const serve::LoadReport& r = c.report;
    table.add_row({c.name, stats::Table::cell(c.rate, 0),
                   stats::Table::cell(static_cast<std::size_t>(r.offered)),
                   stats::Table::cell(static_cast<std::size_t>(r.completed)),
                   stats::Table::cell(static_cast<std::size_t>(r.rejected)),
                   stats::Table::cell(static_cast<std::size_t>(r.cache_hits)),
                   stats::Table::cell(static_cast<std::size_t>(r.batches)),
                   stats::Table::cell(r.mean_batch, 2),
                   stats::Table::cell(r.p50 * 1e3, 3),
                   stats::Table::cell(r.p99 * 1e3, 3),
                   stats::Table::cell(static_cast<std::size_t>(r.graded)),
                   stats::Table::cell(r.recall, 4),
                   stats::Table::cell(r.precision, 4)});
  }
  if (args.csv) {
    table.print_csv(std::cout);
  } else {
    std::cout << "bench_serve: open-loop serving, " << objects
              << " objects per cell\n";
    table.print(std::cout);
  }

  // --- SLO gate ------------------------------------------------------------
  bool ok = true;
  const auto fail = [&ok](const std::string& what) {
    std::cerr << "SLO FAIL: " << what << "\n";
    ok = false;
  };
  for (const Cell& c : cells) {
    const serve::LoadReport& r = c.report;
    if (!r.drained) fail(c.name + ": transport did not quiesce");
    if (r.graded > 0 && (r.recall != 1.0 || r.precision != 1.0)) {
      fail(c.name + ": graded exactness violated");
    }
    if (r.completed > 0 && !(r.p99 > 0.0 && r.p99 < 1e9)) {
      fail(c.name + ": p99 not finite-positive");
    }
    if (!c.churn && r.graded == 0 && r.offered > 0) {
      fail(c.name + ": churn-free cell graded nothing");
    }
  }
  // The lowest-rate thread cell is under-loaded by construction: shedding
  // there would mean the admission bound leaks capacity.
  if (cells[0].report.completion_rate != 1.0) {
    fail(cells[0].name + ": under-loaded cell shed or lost queries");
  }

  if (!args.json_path.empty()) {
    Json doc = Json::object();
    doc.set("bench", Json::string("serve"));
    doc.set("objects", Json::integer(objects));
    doc.set("smoke", Json::boolean(args.smoke));
    doc.set("seed", Json::integer(args.seed));
    doc.set("slo_pass", Json::boolean(ok));
    Json arr = Json::array();
    for (const Cell& c : cells) arr.push(cell_json(c));
    doc.set("cells", std::move(arr));
    write_json_file(args.json_path, doc);
    std::cout << "wrote " << args.json_path << "\n";
  }
  return ok ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "bench_serve: " << e.what() << "\n";
  return 1;
}
