// Figure 5: distribution of the Voronoi out-degree |vn(o)| for the uniform
// and highly-sparse (alpha = 5) distributions.
//
// Paper setup: 300,000-object overlay; the histogram is expected to be
// centred around 6 regardless of the distribution (planarity of the
// Delaunay graph).  Prints one histogram per distribution plus the mean
// and mode; --all adds the alpha = 1 and alpha = 2 workloads (the paper
// reports them "equivalent" to the others).
//
// Usage: bench_fig5_degree [--full] [--csv] [--objects N] [--seed S] [--all]
#include <iostream>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "stats/histogram.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) try {
  using namespace voronet;
  const bench::Args args(argc, argv);
  const bench::Scale scale = bench::resolve_scale(args);
  const bool all = args.flags().has("all");
  args.finish();

  std::vector<workload::DistributionConfig> dists;
  if (all) {
    dists = workload::paper_distributions();
  } else {
    dists = {workload::DistributionConfig::uniform(),
             workload::DistributionConfig::power_law(5.0)};
  }

  std::cerr << "[fig5] objects=" << scale.objects
            << (scale.full ? " (paper scale)" : " (default scale)") << "\n";

  std::vector<stats::IntHistogram> histograms;
  for (const auto& dist : dists) {
    Timer t;
    OverlayConfig cfg;
    cfg.n_max = scale.objects;
    cfg.seed = scale.seed;
    Overlay overlay(cfg);
    Rng rng(scale.seed ^ 0xf16'5ULL);
    bench::grow_overlay(overlay, dist, scale.objects, scale.objects, rng,
                        [](std::size_t) {});
    stats::IntHistogram h;
    for (const ObjectId o : overlay.objects()) {
      h.add(overlay.view(o).vn.size());
    }
    histograms.push_back(h);
    std::cerr << "[fig5] " << dist.name() << ": mean=" << h.mean()
              << " mode=" << h.mode() << " (" << t.seconds() << "s)\n";
  }

  std::size_t max_degree = 0;
  for (const auto& h : histograms) {
    max_degree = std::max(max_degree, h.max_value());
  }

  std::vector<std::string> header{"out-degree"};
  for (const auto& dist : dists) header.push_back(dist.name());
  stats::Table table(header);
  for (std::size_t d = 0; d <= max_degree; ++d) {
    std::vector<std::string> row{stats::Table::cell(d)};
    for (const auto& h : histograms) row.push_back(stats::Table::cell(h.count(d)));
    table.add_row(row);
  }
  {
    std::vector<std::string> row{"mean"};
    for (const auto& h : histograms) {
      row.push_back(stats::Table::cell(h.mean(), 3));
    }
    table.add_row(row);
  }
  {
    std::vector<std::string> row{"mode"};
    for (const auto& h : histograms) {
      row.push_back(stats::Table::cell(h.mode()));
    }
    table.add_row(row);
  }

  std::cout << "Figure 5: distribution of |vn(o)| (objects per out-degree)\n";
  if (scale.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  if (!scale.json_path.empty()) {
    bench::Json doc = bench::Json::object();
    doc.set("bench", bench::Json::string("fig5_degree"))
        .set("objects", bench::Json::integer(scale.objects))
        .set("seed", bench::Json::integer(scale.seed))
        .set("table", bench::table_json(table));
    bench::write_json_file(scale.json_path, doc);
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "bench_fig5_degree: " << e.what() << "\n";
  return 1;
}
