// Failure injection (fail-stop crashes + repair) and capacity adaptation
// (the paper's section 7 perspective) tests.
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "voronet/overlay.hpp"
#include "workload/distributions.hpp"

namespace voronet {
namespace {

void grow(Overlay& overlay, std::size_t n, Rng& rng,
          workload::PointGenerator& gen) {
  while (overlay.size() < n) overlay.insert(gen.next(rng));
}

TEST(Crash, RoutingSurvivesDanglingReferences) {
  OverlayConfig cfg;
  cfg.n_max = 2048;
  cfg.seed = 1;
  Overlay overlay(cfg);
  Rng rng(1);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  grow(overlay, 300, rng, gen);

  // Crash 20% of the objects without any departure protocol.
  std::vector<ObjectId> victims;
  for (const ObjectId o : overlay.objects()) {
    if (rng.chance(0.2)) victims.push_back(o);
  }
  for (const ObjectId o : victims) overlay.crash(o);
  EXPECT_EQ(overlay.size(), 300u - victims.size());

  // Even with dangling cn/lr entries, greedy routing still reaches every
  // surviving object (the greedy step skips dead references and the vn
  // layer is healed at crash time).
  const std::vector<ObjectId> survivors = overlay.objects();
  for (int q = 0; q < 200; ++q) {
    const ObjectId from = survivors[rng.index(survivors.size())];
    const ObjectId to = survivors[rng.index(survivors.size())];
    EXPECT_EQ(overlay.probe(from, overlay.position(to)).owner, to);
  }
}

TEST(Crash, RepairRestoresAllInvariants) {
  OverlayConfig cfg;
  cfg.n_max = 2048;
  cfg.seed = 2;
  Overlay overlay(cfg);
  Rng rng(2);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  grow(overlay, 250, rng, gen);
  overlay.check_invariants();

  std::vector<ObjectId> victims;
  for (const ObjectId o : overlay.objects()) {
    if (rng.chance(0.25)) victims.push_back(o);
  }
  for (const ObjectId o : victims) overlay.crash(o);

  const std::size_t repaired = overlay.repair_dangling();
  EXPECT_GT(repaired, 0u);
  overlay.check_invariants();  // fully consistent again

  // A second sweep finds nothing left to fix.
  EXPECT_EQ(overlay.repair_dangling(), 0u);
}

TEST(Crash, MassCrashThenChurnRecovers) {
  OverlayConfig cfg;
  cfg.n_max = 2048;
  cfg.seed = 3;
  Overlay overlay(cfg);
  Rng rng(3);
  workload::PointGenerator gen(workload::DistributionConfig::power_law(2.0));
  grow(overlay, 200, rng, gen);

  // Crash half the overlay, repair, keep operating.
  std::vector<ObjectId> all = overlay.objects();
  for (std::size_t i = 0; i < all.size() / 2; ++i) overlay.crash(all[i]);
  overlay.repair_dangling();
  overlay.check_invariants();
  grow(overlay, 250, rng, gen);
  overlay.check_invariants();
}

TEST(Crash, CrashedLongLinkHolderIsRebound) {
  OverlayConfig cfg;
  cfg.n_max = 1024;
  cfg.seed = 4;
  Overlay overlay(cfg);
  Rng rng(4);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  grow(overlay, 150, rng, gen);

  // Find an object whose long link points at a different object; crash
  // the holder and verify the link re-binds to the new region owner.
  ObjectId origin = kNoObject;
  ObjectId holder = kNoObject;
  for (const ObjectId o : overlay.objects()) {
    const auto& lr = overlay.view(o).lr;
    if (!lr.empty() && lr[0].neighbor != o) {
      origin = o;
      holder = lr[0].neighbor;
      break;
    }
  }
  ASSERT_NE(origin, kNoObject);
  const Vec2 target = overlay.view(origin).lr[0].target;
  overlay.crash(holder);
  overlay.repair_dangling();
  const LongLink& rebound = overlay.view(origin).lr[0];
  EXPECT_EQ(rebound.target, target) << "target point must be preserved";
  EXPECT_TRUE(overlay.contains(rebound.neighbor));
  EXPECT_EQ(rebound.neighbor,
            overlay.tessellation().nearest(target, rebound.neighbor));
  overlay.check_invariants();
}

TEST(Rebalance, FullRedrawKeepsInvariants) {
  OverlayConfig cfg;
  cfg.n_max = 256;  // deliberately under-provisioned
  cfg.seed = 5;
  Overlay overlay(cfg);
  Rng rng(5);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  grow(overlay, 256, rng, gen);
  overlay.check_invariants();
  const double old_dmin = overlay.dmin();

  overlay.rebalance_capacity(4096);
  EXPECT_LT(overlay.dmin(), old_dmin);
  EXPECT_EQ(overlay.config().n_max, 4096u);
  overlay.check_invariants();

  // Growth beyond the old capacity now works under the new provisioning.
  grow(overlay, 500, rng, gen);
  overlay.check_invariants();
}

TEST(Rebalance, RefinedSchemeOnlyTouchesDenseObjects) {
  OverlayConfig cfg;
  cfg.n_max = 512;
  cfg.seed = 6;
  Overlay overlay(cfg);
  Rng rng(6);
  // Clustered data: some close neighbourhoods get dense.
  auto dist = workload::DistributionConfig::power_law(5.0);
  dist.jitter = 0.02;
  workload::PointGenerator gen(dist);
  grow(overlay, 400, rng, gen);
  overlay.check_invariants();

  // Record long-link targets of objects with small cn sets: the refined
  // scheme must not touch them.
  std::vector<std::pair<ObjectId, Vec2>> untouched;
  for (const ObjectId o : overlay.objects()) {
    if (overlay.view(o).cn.size() <= 3) {
      untouched.push_back({o, overlay.view(o).lr[0].target});
    }
  }
  ASSERT_FALSE(untouched.empty());

  overlay.rebalance_capacity(8192, /*dense_threshold=*/3);
  overlay.check_invariants();
  for (const auto& [o, target] : untouched) {
    EXPECT_EQ(overlay.view(o).lr[0].target, target)
        << "sparse-neighbourhood object redrew its long link";
  }
}

TEST(Rebalance, ShrinkingCapacityIsRejected) {
  OverlayConfig cfg;
  cfg.n_max = 1024;
  cfg.seed = 7;
  Overlay overlay(cfg);
  overlay.insert({0.5, 0.5});
  EXPECT_THROW(overlay.rebalance_capacity(512), ContractError);
}

TEST(Rebalance, RoutingImprovesForUnderProvisionedOverlay) {
  // An overlay provisioned for 64 objects but holding 4000 has dmin far
  // too large: many routes terminate through the dmin condition early and
  // must fall back to local resolution.  Re-provisioning tightens dmin
  // and restores genuine greedy routing.
  OverlayConfig cfg;
  cfg.n_max = 64;
  cfg.seed = 8;
  Overlay overlay(cfg);
  Rng rng(8);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  grow(overlay, 4000, rng, gen);

  std::size_t dmin_stops_before = 0;
  for (int q = 0; q < 300; ++q) {
    const ObjectId from = overlay.random_object(rng);
    const ObjectId to = overlay.random_object(rng);
    if (overlay.probe(from, overlay.position(to)).stopped_by_dmin) {
      ++dmin_stops_before;
    }
  }
  overlay.rebalance_capacity(8192);
  overlay.check_invariants();
  std::size_t dmin_stops_after = 0;
  for (int q = 0; q < 300; ++q) {
    const ObjectId from = overlay.random_object(rng);
    const ObjectId to = overlay.random_object(rng);
    if (overlay.probe(from, overlay.position(to)).stopped_by_dmin) {
      ++dmin_stops_after;
    }
  }
  EXPECT_LT(dmin_stops_after, dmin_stops_before);
}

}  // namespace
}  // namespace voronet
