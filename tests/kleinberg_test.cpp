// Tests for the Kleinberg grid baseline (paper, section 2.1 / Figure 1).
#include "kleinberg/grid.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace voronet::kleinberg {
namespace {

TEST(KleinbergGrid, ConstructionAndCoordinates) {
  KleinbergGrid g({.side = 8, .long_links = 1, .exponent = 2.0, .seed = 1});
  EXPECT_EQ(g.size(), 64u);
  const auto v = g.node_at(3, 5);
  EXPECT_EQ(g.row_of(v), 3u);
  EXPECT_EQ(g.col_of(v), 5u);
  EXPECT_EQ(g.distance(g.node_at(0, 0), g.node_at(3, 5)), 8u);
}

TEST(KleinbergGrid, LongContactsAreNeverSelf) {
  KleinbergGrid g({.side = 16, .long_links = 2, .exponent = 2.0, .seed = 2});
  for (KleinbergGrid::NodeId u = 0; u < g.size(); ++u) {
    ASSERT_EQ(g.long_contacts(u).size(), 2u);
    for (const auto v : g.long_contacts(u)) {
      EXPECT_NE(v, u);
      EXPECT_LT(v, g.size());
    }
  }
}

TEST(KleinbergGrid, HarmonicBiasTowardsShortLinks) {
  // With s = 2, P(distance <= 4) should far exceed the uniform share.
  KleinbergGrid g({.side = 64, .long_links = 1, .exponent = 2.0, .seed = 3});
  std::size_t close = 0;
  for (KleinbergGrid::NodeId u = 0; u < g.size(); ++u) {
    if (g.distance(u, g.long_contacts(u)[0]) <= 4) ++close;
  }
  const double frac = static_cast<double>(close) / static_cast<double>(g.size());
  // Under a uniform choice, d<=4 would cover ~40/4096 ~ 1% of nodes.
  EXPECT_GT(frac, 0.15);
}

TEST(KleinbergGrid, GreedyRoutingAlwaysArrives) {
  KleinbergGrid g({.side = 32, .long_links = 1, .exponent = 2.0, .seed = 4});
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    const auto s = static_cast<KleinbergGrid::NodeId>(rng.index(g.size()));
    const auto t = static_cast<KleinbergGrid::NodeId>(rng.index(g.size()));
    const auto res = g.route(s, t);
    EXPECT_TRUE(res.arrived);
    // Greedy on the lattice never exceeds the Manhattan distance without
    // long links; long links only shorten paths.
    EXPECT_LE(res.hops, g.distance(s, t) + 1);
  }
}

TEST(KleinbergGrid, LongLinksShortenRoutes) {
  const auto mean_hops = [](std::size_t k, std::uint64_t seed) {
    KleinbergGrid g({.side = 48, .long_links = k, .exponent = 2.0,
                     .seed = seed});
    Rng rng(seed);
    double total = 0;
    for (int i = 0; i < 400; ++i) {
      const auto s = static_cast<KleinbergGrid::NodeId>(rng.index(g.size()));
      const auto t = static_cast<KleinbergGrid::NodeId>(rng.index(g.size()));
      total += static_cast<double>(g.route(s, t).hops);
    }
    return total / 400.0;
  };
  EXPECT_LT(mean_hops(1, 5), 0.6 * mean_hops(0, 5) + 1.0);
  EXPECT_LT(mean_hops(4, 6), mean_hops(1, 6));
}

TEST(KleinbergGrid, ZeroLongLinksIsPlainLattice) {
  KleinbergGrid g({.side = 16, .long_links = 0, .exponent = 2.0, .seed = 7});
  const auto s = g.node_at(0, 0);
  const auto t = g.node_at(15, 15);
  const auto res = g.route(s, t);
  EXPECT_EQ(res.hops, 30u);  // exactly the Manhattan distance
}

TEST(KleinbergGrid, PolylogScalingSanity) {
  // Mean hops with s=2 must grow far slower than sqrt(n): compare 24x24
  // against 96x96 (16x more nodes): the ratio should be well under 4x.
  const auto mean_hops = [](std::size_t side) {
    KleinbergGrid g({.side = side, .long_links = 1, .exponent = 2.0,
                     .seed = 8});
    Rng rng(8);
    double total = 0;
    for (int i = 0; i < 300; ++i) {
      const auto s = static_cast<KleinbergGrid::NodeId>(rng.index(g.size()));
      const auto t = static_cast<KleinbergGrid::NodeId>(rng.index(g.size()));
      total += static_cast<double>(g.route(s, t).hops);
    }
    return total / 300.0;
  };
  EXPECT_LT(mean_hops(96), 3.0 * mean_hops(24));
}

}  // namespace
}  // namespace voronet::kleinberg
