// Property and rejection tests for the two src/net byte layouts: the
// transport frame codec (wire_codec) and the serving boundary's RPC
// codec (serve_wire), plus an end-to-end in-process exercise of the
// multi-process serving layer (ServedShard behind a Unix-domain socket,
// driven by ServeClient from the test thread).
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "net/serve_client.hpp"
#include "net/serve_loop.hpp"
#include "net/serve_wire.hpp"
#include "net/socket.hpp"
#include "net/wire_codec.hpp"
#include "net/wire_format.hpp"
#include "serve/open_loop.hpp"

namespace voronet::net {
namespace {

// The codec enumerates MessageKind exhaustively; growing the protocol
// vocabulary must not silently truncate on the wire.  (wire_format.hpp
// carries the same pin; this one keeps the TEST file honest about what
// it sweeps.)
static_assert(sim::kMessageKindCount == 13,
              "MessageKind changed: extend the codec sweep");

protocol::Message random_message(Rng& rng, sim::MessageKind kind,
                                 std::size_t entry_count) {
  protocol::Message m;
  m.type = kind;
  m.src = static_cast<protocol::NodeId>(rng.below(1u << 20));
  m.dst = static_cast<protocol::NodeId>(rng.below(1u << 20));
  m.version = rng();
  m.point = {rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)};
  m.hops = static_cast<std::uint32_t>(rng.below(1u << 16));
  m.query.kind = rng.below(2) == 0 ? protocol::QueryKind::kRange
                                   : protocol::QueryKind::kRadius;
  m.query.a = {rng.uniform(), rng.uniform()};
  m.query.b = {rng.uniform(), rng.uniform()};
  m.query.tol = rng.uniform(0.0, 0.5);
  m.query.issuer = static_cast<protocol::NodeId>(rng.below(1u << 20));
  m.query_final = rng.below(2) == 0;
  m.epoch = static_cast<std::uint32_t>(rng.below(16));
  m.transfer_id = rng();
  m.transfer_slot = static_cast<std::uint32_t>(rng());
  m.span = static_cast<obs::SpanId>(rng());
  for (std::size_t i = 0; i < entry_count; ++i) {
    m.entries.push_back(protocol::ViewEntry{
        static_cast<protocol::NodeId>(rng.below(1u << 20)),
        {rng.uniform(), rng.uniform()}});
  }
  return m;
}

void expect_equal_on_wire(const protocol::Message& a,
                          const protocol::Message& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.src, b.src);
  EXPECT_EQ(a.dst, b.dst);
  EXPECT_EQ(a.version, b.version);
  EXPECT_EQ(a.point.x, b.point.x);
  EXPECT_EQ(a.point.y, b.point.y);
  EXPECT_EQ(a.hops, b.hops);
  EXPECT_EQ(a.query.kind, b.query.kind);
  EXPECT_EQ(a.query.a.x, b.query.a.x);
  EXPECT_EQ(a.query.a.y, b.query.a.y);
  EXPECT_EQ(a.query.b.x, b.query.b.x);
  EXPECT_EQ(a.query.b.y, b.query.b.y);
  EXPECT_EQ(a.query.tol, b.query.tol);
  EXPECT_EQ(a.query.issuer, b.query.issuer);
  EXPECT_EQ(a.query_final, b.query_final);
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.transfer_id, b.transfer_id);
  EXPECT_EQ(a.transfer_slot, b.transfer_slot);
  EXPECT_EQ(a.entries, b.entries);
}

TEST(WireCodec, RoundTripFuzzAllKindsAndSizes) {
  for (std::size_t k = 0; k < sim::kMessageKindCount; ++k) {
    const auto kind = static_cast<sim::MessageKind>(k);
    for (std::uint64_t seed = 0; seed < 50; ++seed) {
      Rng rng(seed * 1000003 + k);
      const std::size_t entries = rng.below(65);
      const protocol::Message msg = random_message(rng, kind, entries);

      std::vector<std::uint8_t> buf;
      encode_frame(msg, buf);
      ASSERT_EQ(buf.size(), wire_frame_size(msg))
          << "layout arithmetic out of sync with the codec";

      protocol::Message out;
      std::size_t consumed = 0;
      ASSERT_EQ(decode_frame(buf.data(), buf.size(), consumed, out),
                DecodeStatus::kOk);
      EXPECT_EQ(consumed, buf.size());
      expect_equal_on_wire(msg, out);
    }
  }
}

TEST(WireCodec, EveryTruncationAsksForMoreBytes) {
  Rng rng(0xfeedULL);
  const protocol::Message msg =
      random_message(rng, sim::MessageKind::kQueryResult, 7);
  std::vector<std::uint8_t> buf;
  encode_frame(msg, buf);
  protocol::Message out;
  std::size_t consumed = 0;
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    ASSERT_EQ(decode_frame(buf.data(), cut, consumed, out),
              DecodeStatus::kNeedMore)
        << "prefix of " << cut << " bytes";
    ASSERT_EQ(consumed, 0u);
  }
}

TEST(WireCodec, BackToBackFramesDecodeInOrder) {
  Rng rng(0xabcdULL);
  std::vector<protocol::Message> msgs;
  std::vector<std::uint8_t> buf;
  for (int i = 0; i < 8; ++i) {
    msgs.push_back(random_message(
        rng, static_cast<sim::MessageKind>(rng.below(sim::kMessageKindCount)),
        rng.below(10)));
    encode_frame(msgs.back(), buf);
  }
  std::size_t off = 0;
  for (const protocol::Message& want : msgs) {
    protocol::Message out;
    std::size_t consumed = 0;
    ASSERT_EQ(decode_frame(buf.data() + off, buf.size() - off, consumed, out),
              DecodeStatus::kOk);
    expect_equal_on_wire(want, out);
    off += consumed;
  }
  EXPECT_EQ(off, buf.size());
}

// Table-driven rejection: each row corrupts one field of a valid frame
// and names the status the decoder must answer with.  Offsets are the
// wire layout of wire_format.hpp.
TEST(WireCodec, CorruptFramesAreRejectedWithDiagnostics) {
  Rng rng(0x5eedULL);
  const protocol::Message msg =
      random_message(rng, sim::MessageKind::kVoronoiUpdate, 3);
  std::vector<std::uint8_t> valid;
  encode_frame(msg, valid);

  struct Row {
    const char* what;
    std::size_t offset;       ///< byte to stomp
    std::uint8_t value;       ///< stomped value
    DecodeStatus want;
  };
  const Row rows[] = {
      // body_len = 3 (< kFixedBodyBytes) -- u32 at offset 0.
      {"undersized length", 0, 3, DecodeStatus::kBadLength},
      // magic low byte: 0x4e ("N") -> 0x00.
      {"bad magic", 4, 0x00, DecodeStatus::kBadMagic},
      // version byte.
      {"unknown version", 6, 99, DecodeStatus::kBadVersion},
      // message type byte out of enum range.
      {"bad message kind", 7, 200, DecodeStatus::kBadKind},
      // query-kind byte (offset: prefix 4 + magic 2 + ver 1 + type 1 +
      // src 4 + dst 4 + version 8 + point 16 + hops 4 = 44).
      {"bad query kind", 44, 7, DecodeStatus::kBadKind},
  };
  for (const Row& row : rows) {
    SCOPED_TRACE(row.what);
    std::vector<std::uint8_t> buf = valid;
    if (row.offset == 0) {
      buf[0] = row.value;
      buf[1] = buf[2] = buf[3] = 0;
    } else {
      buf[row.offset] = row.value;
    }
    protocol::Message out;
    std::size_t consumed = 0;
    std::string diag;
    EXPECT_EQ(decode_frame(buf.data(), buf.size(), consumed, out, &diag),
              row.want);
    EXPECT_EQ(consumed, 0u);
    EXPECT_FALSE(diag.empty()) << "rejections must carry a diagnostic";
  }

  // Oversized declared length (> kMaxFrameBody).
  {
    std::vector<std::uint8_t> buf = valid;
    buf[0] = 0xff;
    buf[1] = 0xff;
    buf[2] = 0xff;
    buf[3] = 0x7f;
    protocol::Message out;
    std::size_t consumed = 0;
    std::string diag;
    EXPECT_EQ(decode_frame(buf.data(), buf.size(), consumed, out, &diag),
              DecodeStatus::kBadLength);
    EXPECT_FALSE(diag.empty());
  }

  // Entry count inconsistent with the declared body length.
  {
    std::vector<std::uint8_t> buf = valid;
    const std::size_t count_off = kFramePrefixBytes + kFixedBodyBytes - 4;
    buf[count_off] = 200;  // declared 3 entries' worth of body
    protocol::Message out;
    std::size_t consumed = 0;
    std::string diag;
    EXPECT_EQ(decode_frame(buf.data(), buf.size(), consumed, out, &diag),
              DecodeStatus::kBadLength);
    EXPECT_FALSE(diag.empty());
  }
}

// ---------------------------------------------------------------------------
// serve_wire
// ---------------------------------------------------------------------------

TEST(ServeWire, RoundTripEveryKind) {
  Rng rng(0x7e57ULL);
  for (std::size_t k = 0; k < kServeKindCount; ++k) {
    ServeFrame f;
    f.kind = static_cast<ServeKind>(k);
    f.id = rng();
    f.a = {rng.uniform(), rng.uniform()};
    f.b = {rng.uniform(), rng.uniform()};
    f.tol = rng.uniform(0.0, 0.3);
    f.rejected = rng.below(2) == 0;
    f.cache_hit = rng.below(2) == 0;
    f.server_latency = rng.uniform(0.0, 1.0);
    for (std::size_t i = 0; i < rng.below(20); ++i) {
      f.matches.push_back(static_cast<std::int32_t>(rng.below(1u << 16)));
    }
    f.objects = rng();
    f.topology_version = rng();
    f.submitted = rng();
    f.admitted = rng();
    f.rejected_total = rng();
    f.completed = rng();
    f.cache_hits = rng();
    f.batches = rng();
    f.batch_members = rng();
    f.graded = rng();
    f.recall = rng.uniform();
    f.precision = rng.uniform();
    f.drained = rng.below(2) == 0;
    f.wire_bytes = rng();

    std::vector<std::uint8_t> buf;
    encode_serve_frame(f, buf);
    ServeFrame out;
    std::size_t consumed = 0;
    ASSERT_EQ(decode_serve_frame(buf.data(), buf.size(), consumed, out),
              DecodeStatus::kOk)
        << serve_kind_name(f.kind);
    EXPECT_EQ(consumed, buf.size());
    EXPECT_EQ(out.kind, f.kind);
    EXPECT_EQ(out.id, f.id);
    switch (f.kind) {
      case ServeKind::kSubmitRange:
        EXPECT_EQ(out.b.x, f.b.x);
        EXPECT_EQ(out.b.y, f.b.y);
        [[fallthrough]];
      case ServeKind::kSubmitRadius:
        EXPECT_EQ(out.a.x, f.a.x);
        EXPECT_EQ(out.a.y, f.a.y);
        EXPECT_EQ(out.tol, f.tol);
        break;
      case ServeKind::kAnswer:
        EXPECT_EQ(out.rejected, f.rejected);
        EXPECT_EQ(out.cache_hit, f.cache_hit);
        EXPECT_EQ(out.topology_version, f.topology_version);
        EXPECT_EQ(out.server_latency, f.server_latency);
        EXPECT_EQ(out.matches, f.matches);
        break;
      case ServeKind::kHelloAck:
        EXPECT_EQ(out.objects, f.objects);
        EXPECT_EQ(out.topology_version, f.topology_version);
        break;
      case ServeKind::kReport:
        EXPECT_EQ(out.submitted, f.submitted);
        EXPECT_EQ(out.admitted, f.admitted);
        EXPECT_EQ(out.rejected_total, f.rejected_total);
        EXPECT_EQ(out.completed, f.completed);
        EXPECT_EQ(out.cache_hits, f.cache_hits);
        EXPECT_EQ(out.batches, f.batches);
        EXPECT_EQ(out.batch_members, f.batch_members);
        EXPECT_EQ(out.graded, f.graded);
        EXPECT_EQ(out.objects, f.objects);
        EXPECT_EQ(out.topology_version, f.topology_version);
        EXPECT_EQ(out.recall, f.recall);
        EXPECT_EQ(out.precision, f.precision);
        EXPECT_EQ(out.drained, f.drained);
        EXPECT_EQ(out.wire_bytes, f.wire_bytes);
        break;
      case ServeKind::kHello:
      case ServeKind::kGetReport:
      case ServeKind::kShutdown:
        break;
    }
  }
}

TEST(ServeWire, RejectsCorruptFrames) {
  ServeFrame f;
  f.kind = ServeKind::kSubmitRadius;
  f.id = 42;
  f.a = {0.5, 0.5};
  f.tol = 0.05;
  std::vector<std::uint8_t> valid;
  encode_serve_frame(f, valid);

  ServeFrame out;
  std::size_t consumed = 0;
  std::string diag;
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    ASSERT_EQ(decode_serve_frame(valid.data(), cut, consumed, out),
              DecodeStatus::kNeedMore);
  }

  std::vector<std::uint8_t> bad = valid;
  bad[4] = 0x00;  // magic
  EXPECT_EQ(decode_serve_frame(bad.data(), bad.size(), consumed, out, &diag),
            DecodeStatus::kBadMagic);

  bad = valid;
  bad[6] = 9;  // version
  EXPECT_EQ(decode_serve_frame(bad.data(), bad.size(), consumed, out, &diag),
            DecodeStatus::kBadVersion);

  bad = valid;
  bad[7] = 250;  // kind
  EXPECT_EQ(decode_serve_frame(bad.data(), bad.size(), consumed, out, &diag),
            DecodeStatus::kBadKind);

  bad = valid;
  bad[0] = static_cast<std::uint8_t>(bad[0] + 8);  // padded body length
  bad.resize(bad.size() + 8, 0);
  EXPECT_EQ(decode_serve_frame(bad.data(), bad.size(), consumed, out, &diag),
            DecodeStatus::kBadLength);
}

// ---------------------------------------------------------------------------
// ServedShard + ServeClient, in process over a Unix-domain socket
// ---------------------------------------------------------------------------

TEST(ServedShard, AnswersRemoteClientsExactly) {
  ServedConfig config;
  config.objects = 60;
  config.seed = 0x5eedULL;
  ServedShard shard(config);
  // The shard's serve loop IS its transport's driving thread; the test
  // thread plays the remote client process.
  std::thread server([&shard] { shard.serve(); });

  {
    ServeClient client(shard.address().spec());
    EXPECT_EQ(client.objects(), 60u);

    std::size_t answers = 0;
    client.set_answer_handler([&answers](const ServeFrame& a) {
      EXPECT_FALSE(a.rejected);
      ++answers;
    });
    client.submit_radius({0.5, 0.5}, 0.2);
    client.submit_range({0.1, 0.1}, {0.7, 0.7}, 0.05);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(30);
    while (client.outstanding() > 0 &&
           std::chrono::steady_clock::now() < deadline) {
      client.poll_answers(0.1);
    }
    EXPECT_EQ(client.outstanding(), 0u);
    EXPECT_EQ(answers, 2u);

    // Scenario-vocabulary stream against the socket.
    const std::size_t sent = drive_query_stream(
        client, scenario::Event::query_stream(0.0, 6, 0.05), 0x1234ULL);
    EXPECT_EQ(sent, 6u);
    while (client.outstanding() > 0 &&
           std::chrono::steady_clock::now() < deadline) {
      client.poll_answers(0.1);
    }
    EXPECT_EQ(client.outstanding(), 0u);

    const ServeFrame report = client.get_report();
    EXPECT_TRUE(report.drained);
    EXPECT_EQ(report.completed, 8u);
    EXPECT_EQ(report.graded, 8u);
    EXPECT_EQ(report.recall, 1.0);
    EXPECT_EQ(report.precision, 1.0);
    EXPECT_GT(report.wire_bytes, 0u);
    client.shutdown_server();
  }
  server.join();
}

}  // namespace
}  // namespace voronet::net
