// Tests of the observability layer (src/obs): the causal tracer's span
// model and Chrome trace_event export, trace determinism across replays,
// span-tree well-formedness over a real churn-plus-queries run, the
// windowed metrics sampler's conservation invariant, the flight
// recorder's bounded rings and its dump on a planted fuzzer finding --
// and the counting-model audit that a re-issued query bills exactly ONE
// operation record.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"
#include "scenario/fuzz.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

namespace voronet {
namespace {

using scenario::Event;
using scenario::Report;
using scenario::Runner;
using scenario::Scenario;

// ---------------------------------------------------------------------------
// Tracer unit tests
// ---------------------------------------------------------------------------

TEST(Tracer, DisabledTracerRecordsNothing) {
  obs::Tracer t;
  EXPECT_FALSE(t.enabled());
  EXPECT_EQ(t.begin_span(1.0, "span", 3), obs::kNoSpan);
  EXPECT_EQ(t.instant(1.0, "inst", 3), obs::kNoSpan);
  t.end_span(obs::kNoSpan, 2.0);  // must be safe
  t.arg(obs::kNoSpan, "k", std::uint64_t{1});
  EXPECT_TRUE(t.records().empty());
}

TEST(Tracer, SpanModelAndChromeExport) {
  obs::Tracer t;
  t.enable();
  const obs::SpanId root = t.begin_span(0.001, "query", 7);
  const obs::SpanId child = t.begin_span(0.002, "serve", 9, root);
  const obs::SpanId mark = t.instant(0.003, "route_hop", 9, child);
  t.arg(root, "query", std::uint64_t{42});
  t.arg(child, "kind", "range");
  t.end_span(child, 0.004);
  t.end_span(root, 0.005);
  const obs::SpanId orphan = t.begin_span(0.006, "xfer:query", -1);
  // orphan is deliberately never ended: it must export as unfinished.

  ASSERT_EQ(t.records().size(), 4u);
  EXPECT_EQ(root, 1u);  // ids are 1-based insertion order
  EXPECT_EQ(child, 2u);
  EXPECT_EQ(mark, 3u);
  EXPECT_EQ(orphan, 4u);
  EXPECT_EQ(t.records()[1].parent, root);
  EXPECT_TRUE(t.records()[0].is_span);
  EXPECT_FALSE(t.records()[2].is_span);

  const Json doc = t.to_chrome_json();
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->size(), 4u);

  const Json& q = events->item(0);
  EXPECT_EQ(q.at("ph").as_string(), "X");
  EXPECT_DOUBLE_EQ(q.at("ts").as_double(), 1000.0);   // sim s -> us
  EXPECT_DOUBLE_EQ(q.at("dur").as_double(), 4000.0);  // 0.001 .. 0.005
  EXPECT_EQ(q.at("tid").as_int(), 7);
  EXPECT_EQ(q.at("args").at("span").as_uint(), root);
  EXPECT_EQ(q.at("args").find("parent"), nullptr);  // roots omit parent
  EXPECT_EQ(q.at("args").at("query").as_uint(), 42u);

  const Json& s = events->item(1);
  EXPECT_EQ(s.at("args").at("parent").as_uint(), root);
  EXPECT_EQ(s.at("args").at("kind").as_string(), "range");

  const Json& i = events->item(2);
  EXPECT_EQ(i.at("ph").as_string(), "i");
  EXPECT_EQ(i.at("s").as_string(), "t");
  EXPECT_EQ(i.at("args").at("parent").as_uint(), child);

  const Json& u = events->item(3);
  EXPECT_EQ(u.at("ph").as_string(), "X");
  EXPECT_DOUBLE_EQ(u.at("dur").as_double(), 0.0);  // clamped, flagged
  EXPECT_TRUE(u.at("unfinished").as_bool());
  EXPECT_EQ(u.at("tid").as_int(), 0);  // node -1 lands on track 0
}

// ---------------------------------------------------------------------------
// Flight-recorder unit tests
// ---------------------------------------------------------------------------

TEST(FlightRecorder, RingIsBoundedAndKeepsTheNewest) {
  obs::FlightRecorder fr;
  EXPECT_FALSE(fr.enabled());
  fr.record(1, 0.0, obs::FlightEvent::kSend, sim::MessageKind::kQuery, 2);
  fr.enable(4);
  ASSERT_TRUE(fr.enabled());
  for (std::uint64_t i = 0; i < 10; ++i) {
    fr.record(1, 0.1 * static_cast<double>(i), obs::FlightEvent::kSend,
              sim::MessageKind::kQuery, 2, /*ref=*/i);
  }
  fr.record(5, 0.99, obs::FlightEvent::kCrash, sim::MessageKind::kCount, -1);

  const Json doc = fr.to_json();
  EXPECT_EQ(doc.at("per_node_capacity").as_uint(), 4u);
  const Json& nodes = doc.at("nodes");
  ASSERT_EQ(nodes.size(), 2u);
  // Nodes ascending; node 1's ring holds only the NEWEST 4 of 10 entries,
  // oldest -> newest, and reports how many the ring dropped.
  const Json& n1 = nodes.item(0);
  EXPECT_EQ(n1.at("node").as_int(), 1);
  EXPECT_EQ(n1.at("dropped").as_uint(), 6u);
  const Json& events = n1.at("events");
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events.item(i).at("ref").as_uint(), 6u + i);
  }
  const Json& n5 = nodes.item(1);
  EXPECT_EQ(n5.at("node").as_int(), 5);
  EXPECT_EQ(n5.at("events").item(0).at("event").as_string(), "crash");
  // enable() resets; disabling drops all state.
  fr.enable(0);
  EXPECT_FALSE(fr.enabled());
  EXPECT_EQ(fr.to_json().at("nodes").size(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end: tracing a scenario run
// ---------------------------------------------------------------------------

/// Churn + loss + a query stream: enough pressure that the trace contains
/// route hops, serves, transfers with retransmissions -- and usually
/// re-issued epochs.
Scenario traced_scenario() {
  Scenario s;
  s.name = "obs-traced";
  s.population = 120;
  s.seed = 21;
  s.latency = protocol::LatencyModel::uniform(0.005, 0.05);
  s.loss = 0.12;
  s.failure_detect_delay = 0.25;
  s.timeline = {
      Event::join_burst(0.0, 10, 1.0),
      Event::crash(0.3, 4, 0.6, 16),
      Event::query_stream(0.0, 25, 1.2),
      Event::quiesce(1.5),
  };
  return s;
}

TEST(TraceDeterminism, SameScenarioSameSeedByteIdenticalTrace) {
  const Scenario s = traced_scenario();
  std::string first;
  std::string second;
  for (std::string* out : {&first, &second}) {
    Runner runner(s);
    runner.set_trace();
    const Report rep = runner.run();
    EXPECT_TRUE(rep.quiesced);
    *out = runner.harness().harness().tracer().to_chrome_json().str();
  }
  EXPECT_FALSE(first.empty());
  EXPECT_GT(first.size(), 10000u) << "trace suspiciously small";
  EXPECT_EQ(first, second) << "trace replay diverged";
}

TEST(TraceDeterminism, UntracedRunIsUnperturbed) {
  // Enabling the tracer must not change the run itself: the report of a
  // traced run is byte-identical to the untraced one (spans ride along,
  // they never feed back).
  const Scenario s = traced_scenario();
  Runner plain(s);
  const std::string a = plain.run().to_json().str();
  Runner traced(s);
  traced.set_trace();
  traced.record_flight();
  const std::string b = traced.run().to_json().str();
  EXPECT_EQ(a, b);
}

TEST(SpanTree, WellFormedOverARealRun) {
  const Scenario s = traced_scenario();
  Runner runner(s);
  runner.set_trace();
  const Report rep = runner.run();
  EXPECT_TRUE(rep.quiesced);
  const auto& records = runner.harness().harness().tracer().records();
  ASSERT_FALSE(records.empty());

  std::map<std::string, std::size_t> census;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    // Ids are insertion order, so a parent always precedes its children
    // (causality cannot point forward in simulated execution order).
    EXPECT_EQ(r.id, i + 1);
    if (r.parent != obs::kNoSpan) {
      ASSERT_LT(r.parent, r.id) << "parent assigned after child";
      const auto& p = records[r.parent - 1];
      EXPECT_LE(p.begin, r.begin)
          << r.name << " begins before its parent " << p.name;
    }
    if (r.is_span && r.end >= r.begin) {
      EXPECT_GE(r.end, r.begin);
    }
    if (!r.is_span) {
      EXPECT_DOUBLE_EQ(r.end, r.begin) << "instants are points in time";
    }
    ++census[r.name];
  }

  // The span vocabulary the harness promises (DESIGN.md, Observability):
  // query roots, epoch + serve spans, route-hop instants, transfers.
  EXPECT_EQ(census["query"], rep.queries);
  EXPECT_GE(census["epoch"], rep.queries);  // >= one epoch per query
  EXPECT_GT(census["serve"], 0u);
  EXPECT_GT(census["route_hop"], 0u);
  EXPECT_GT(census["xfer:query_forward"], 0u);

  // Every epoch span's parent is a query root; every serve hangs under an
  // epoch or another serve.
  for (const auto& r : records) {
    if (r.name == "epoch") {
      ASSERT_NE(r.parent, obs::kNoSpan);
      EXPECT_EQ(records[r.parent - 1].name, "query");
    }
    if (r.name == "serve") {
      ASSERT_NE(r.parent, obs::kNoSpan);
      const std::string& pname = records[r.parent - 1].name;
      EXPECT_TRUE(pname == "epoch" || pname == "serve")
          << "serve parented to " << pname;
    }
  }
}

// ---------------------------------------------------------------------------
// Metrics sampler: windowed time series in the Report
// ---------------------------------------------------------------------------

TEST(SamplerWindows, ConserveMessageCountsAndStayOnGrid) {
  Scenario s = traced_scenario();
  s.sample_interval = 0.25;
  Runner runner(s);
  const Report rep = runner.run();
  EXPECT_TRUE(rep.quiesced);
  EXPECT_TRUE(rep.converged);
  EXPECT_DOUBLE_EQ(rep.sample_interval, 0.25);
  EXPECT_FALSE(rep.windows_truncated);
  ASSERT_GE(rep.windows.size(), 6u);  // >= 1.5s of timeline at 0.25s

  // Conservation: the sampler is passive, so per-kind window deltas sum
  // EXACTLY to the end-of-run report deltas -- no message is double
  // counted or lost at a boundary.
  std::array<std::uint64_t, sim::kMessageKindCount> sums{};
  std::uint64_t retransmits = 0;
  std::uint64_t dropped = 0;
  for (const obs::Window& w : rep.windows) {
    for (std::size_t k = 0; k < sim::kMessageKindCount; ++k) {
      sums[k] += w.messages[k];
    }
    retransmits += w.retransmits;
    dropped += w.dropped;
  }
  for (std::size_t k = 0; k < sim::kMessageKindCount; ++k) {
    EXPECT_EQ(sums[k], rep.messages[k])
        << "window sums diverge for kind "
        << sim::message_kind_name(static_cast<sim::MessageKind>(k));
  }
  EXPECT_EQ(retransmits, rep.wire.retransmits);
  EXPECT_EQ(dropped, rep.wire.dropped);

  // Boundaries sit on the fixed grid t0 + k * dt (the last window may be
  // the partial remainder); windows are contiguous.
  for (std::size_t i = 0; i + 1 < rep.windows.size(); ++i) {
    EXPECT_DOUBLE_EQ(rep.windows[i].end, rep.windows[i + 1].start);
    EXPECT_NEAR(rep.windows[i].end - rep.windows[i].start, 0.25, 1e-9);
  }
  // Gauges carry the run's shape: the final window shows a settled system.
  const obs::Window& last = rep.windows.back();
  EXPECT_EQ(last.gauges.in_flight, 0u);
  EXPECT_EQ(last.gauges.pending_queries, 0u);
  EXPECT_EQ(last.gauges.stale_views, 0u);
  EXPECT_EQ(last.gauges.population, rep.final_population);

  // Sampling must not perturb the run: message totals match the
  // unsampled replay exactly.
  Scenario plain = traced_scenario();
  const Report base = scenario::run_scenario(plain);
  EXPECT_EQ(rep.total_messages, base.total_messages);
  EXPECT_EQ(rep.wire.transmissions, base.wire.transmissions);
}

// ---------------------------------------------------------------------------
// Counting-model audit: one operation record per query
// ---------------------------------------------------------------------------

TEST(CountingModel, BillsReissuedQueryOnce) {
  // A re-issued query runs extra flood epochs, but it is still ONE client
  // operation: the metrics must record exactly one kQuery operation per
  // completed query, with the re-issue traffic absorbed into that record
  // -- never one record per epoch, which would silently dilute the
  // per-operation message mean the paper's counting model reports.
  const Scenario s = traced_scenario();
  Runner runner(s);
  const Report rep = runner.run();
  EXPECT_TRUE(rep.quiesced);
  ASSERT_GT(rep.queries, 0u);
  EXPECT_EQ(rep.completed, rep.queries);
  ASSERT_GT(rep.reissued, 0u)
      << "scenario did not provoke a re-issue; the billing audit needs one";

  const auto& ops = runner.harness()
                        .harness()
                        .network()
                        .metrics()
                        .operation_messages(sim::OperationKind::kQuery);
  EXPECT_EQ(ops.count(), rep.completed)
      << "re-issued epochs must bill to one operation record";
  // Each completed query generated wire work, so the mean is positive and
  // at least the route length (every hop is a message).
  EXPECT_GT(ops.mean(), 0.0);
  const auto& hops = runner.harness().harness().network().metrics().hops(
      sim::OperationKind::kQuery);
  EXPECT_EQ(hops.count(), rep.completed);
  EXPECT_GE(ops.mean(), hops.mean());
}

// ---------------------------------------------------------------------------
// Fuzzer explainability: flight recorder rides along on findings
// ---------------------------------------------------------------------------

TEST(FuzzerExplainability, PlantedFaultDumpsTheFlightRecorder) {
  // Plant a guaranteed finding: a lossy scenario cannot settle every
  // reliable transfer in a single attempt, so a max_transfer_attempts
  // ceiling of 0.5 must fire.  The verdict carries the flight-recorder
  // dump -- parseable JSON with per-node rings -- which is what
  // scenario_fuzzer writes beside the minimized reproducer.
  Scenario s;
  s.name = "planted";
  s.population = 60;
  s.seed = 5;
  s.latency = protocol::LatencyModel::fixed(0.02);
  s.loss = 0.2;
  s.timeline = {
      Event::join_burst(0.0, 8, 0.5),
      Event::query_stream(0.0, 6, 0.5),
      Event::quiesce(0.8),
  };
  scenario::OracleLimits limits;
  limits.max_transfer_attempts = 0.5;
  const scenario::Verdict v = scenario::run_oracle(s, limits);
  ASSERT_FALSE(v.ok);
  EXPECT_NE(v.violation.find("transfer attempts"), std::string::npos)
      << "violation did not name the clause: " << v.violation;
  ASSERT_FALSE(v.flight_recorder.empty());

  const Json dump = Json::parse(v.flight_recorder);
  EXPECT_GT(dump.at("per_node_capacity").as_uint(), 0u);
  const Json& nodes = dump.at("nodes");
  ASSERT_GT(nodes.size(), 0u);
  // Every per-node ring is bounded and its entries are globally ordered.
  std::uint64_t capacity = dump.at("per_node_capacity").as_uint();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Json& events = nodes.item(i).at("events");
    EXPECT_LE(events.size(), capacity);
    for (std::size_t j = 0; j + 1 < events.size(); ++j) {
      EXPECT_LT(events.item(j).at("seq").as_uint(),
                events.item(j + 1).at("seq").as_uint());
    }
  }
  // A clean run under default limits keeps the dump empty (the verdict
  // only ships an explanation when there is something to explain).
  const scenario::Verdict clean = scenario::run_oracle(s);
  EXPECT_TRUE(clean.ok) << clean.violation;
  EXPECT_TRUE(clean.flight_recorder.empty());
}

}  // namespace
}  // namespace voronet
