// Tests of the scenario subsystem: declarative timelines, the unified
// runner, JSON (de)serialization, the sweep combinator -- and the replay
// determinism contract over every committed scenarios/*.json file
// (running the same scenario JSON with the same seed twice must produce
// bit-identical scenario::Report JSON).
#include "scenario/runner.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "scenario/scenario.hpp"

#ifndef VORONET_SCENARIO_DIR
#error "CMake must define VORONET_SCENARIO_DIR (the scenarios/ directory)"
#endif

namespace voronet::scenario {
namespace {

std::vector<std::string> committed_scenarios() {
  // Recursive: scenarios/regressions/ holds the fuzzer's reproducers and
  // the committed adversarial timelines, and they replay like any other
  // scenario file.
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(VORONET_SCENARIO_DIR)) {
    // scenarios/golden/ holds *report* JSON (the layout-equivalence
    // baselines), not scenario timelines.
    if (entry.path().extension() == ".json" &&
        !entry.path().string().ends_with(".report.json")) {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(ScenarioJson, ParserRoundTripsWriterOutput) {
  Json doc = Json::object();
  doc.set("name", Json::string("x \"quoted\"\n\ttabbed"))
      .set("count", Json::integer(42))
      .set("ratio", Json::number(0.1))
      .set("neg", Json::number(-3.25e-4))
      .set("on", Json::boolean(true))
      .set("off", Json::boolean(false))
      .set("nothing", Json::null())
      .set("empty_arr", Json::array())
      .set("empty_obj", Json::object())
      .set("arr", Json::array()
                      .push(Json::integer(1))
                      .push(Json::string("two"))
                      .push(Json::object().set("k", Json::number(3.5))));
  const std::string text = doc.str();
  const Json parsed = Json::parse(text);
  EXPECT_EQ(parsed.str(), text);
  EXPECT_EQ(parsed.at("count").as_uint(), 42u);
  EXPECT_DOUBLE_EQ(parsed.at("ratio").as_double(), 0.1);
  EXPECT_TRUE(parsed.at("on").as_bool());
  EXPECT_TRUE(parsed.at("nothing").is_null());
  EXPECT_EQ(parsed.at("arr").size(), 3u);
  EXPECT_EQ(parsed.at("arr").item(1).as_string(), "two");
  EXPECT_EQ(parsed.at("name").as_string(), "x \"quoted\"\n\ttabbed");
}

TEST(ScenarioJson, FullRangeIntegersSurviveParseAndWrite) {
  // Regression: integer extraction used to route through the double
  // value, silently corrupting 64-bit seeds above 2^53 (and hitting UB
  // near the int64 boundary).  The rendered token is authoritative.
  const std::uint64_t big = 18446744073709551615ULL;  // 2^64 - 1
  EXPECT_EQ(Json::parse("18446744073709551615").as_uint(), big);
  EXPECT_EQ(Json::parse(Json::integer(big).str()).as_uint(), big);
  const std::uint64_t odd53 = 9007199254740995ULL;  // 2^53 + 3
  EXPECT_EQ(Json::parse("9007199254740995").as_uint(), odd53);
  EXPECT_EQ(Json::parse("-42").as_int(), -42);
  EXPECT_THROW(Json::parse("-1").as_uint(), std::invalid_argument);
  EXPECT_THROW(Json::parse("1.5").as_uint(), std::invalid_argument);
}

TEST(ScenarioJson, ParseRejectsMalformedInput) {
  EXPECT_THROW(Json::parse("{"), std::invalid_argument);
  EXPECT_THROW(Json::parse("[1, 2,]"), std::invalid_argument);
  EXPECT_THROW(Json::parse("{\"a\": 1} trailing"), std::invalid_argument);
  EXPECT_THROW(Json::parse("{\"a\": nope}"), std::invalid_argument);
  EXPECT_THROW(Json::parse("\"unterminated"), std::invalid_argument);
}

Scenario sample_scenario() {
  Scenario s;
  s.name = "sample";
  s.population = 120;
  s.seed = 99;
  s.latency = protocol::LatencyModel::lognormal(0.005, 0.03, 1.0);
  s.loss = 0.1;
  s.failure_detect_delay = 0.25;
  s.timeline = {
      Event::join_burst(0.0, 20, 1.0),
      Event::leave(0.0, 10, 1.0, 16),
      Event::crash(0.2, 4, 1.0, 16),
      Event::revive(1.5, 2),
      Event::partition_start(0.5, 0.4),
      Event::partition_heal(1.2),
      Event::radius_query(0.3, {0.5, 0.5}, 0.1),
      Event::range_query(0.4, {0.1, 0.1}, {0.8, 0.2}, 0.02),
      Event::query_stream(0.0, 12, 1.0, QueryMix::kMixed, Spread::kUniform),
      Event::quiesce(1.6),
      Event::verify_barrier(1.6),
  };
  return s;
}

TEST(ScenarioSerialization, RoundTripIsExact) {
  const Scenario s = sample_scenario();
  const std::string text = scenario_to_json(s).str();
  const Scenario back = scenario_from_json(Json::parse(text));
  EXPECT_EQ(scenario_to_json(back).str(), text);
  EXPECT_EQ(back.name, s.name);
  EXPECT_EQ(back.population, s.population);
  EXPECT_EQ(back.seed, s.seed);
  EXPECT_EQ(back.latency.kind, s.latency.kind);
  EXPECT_DOUBLE_EQ(back.latency.b, s.latency.b);
  EXPECT_DOUBLE_EQ(back.loss, s.loss);
  ASSERT_EQ(back.timeline.size(), s.timeline.size());
  for (std::size_t i = 0; i < s.timeline.size(); ++i) {
    EXPECT_EQ(back.timeline[i].kind, s.timeline[i].kind) << "event " << i;
    EXPECT_DOUBLE_EQ(back.timeline[i].at, s.timeline[i].at) << "event " << i;
    EXPECT_EQ(back.timeline[i].count, s.timeline[i].count) << "event " << i;
  }
}

TEST(ScenarioSerialization, ValidationRejectsBrokenTimelines) {
  Scenario s;
  s.timeline = {Event::partition_start(0.0)};
  EXPECT_THROW(validate(s), std::invalid_argument);  // never heals

  s.timeline = {Event::partition_heal(0.0)};
  EXPECT_THROW(validate(s), std::invalid_argument);  // heal without start

  s.timeline = {Event::verify_barrier(2.0), Event::verify_barrier(1.0)};
  EXPECT_THROW(validate(s), std::invalid_argument);  // time moves backwards

  s.timeline.clear();
  s.loss = 1.0;
  EXPECT_THROW(validate(s), std::invalid_argument);

  s.loss = 0.0;
  s.workload = "gaussian";
  EXPECT_THROW(validate(s), std::invalid_argument);
}

TEST(ScenarioSerialization, MalformedScenarioJsonCarriesThePosition) {
  // A hand-edited (or fuzzed) scenario file must fail with a diagnostic
  // that names the offending timeline event -- "missing key" alone is
  // useless in a 40-event timeline.  scenario_runner propagates these as
  // a message on stderr and a non-zero exit.
  struct Case {
    const char* label;
    const char* json;
    const char* expect_a;  ///< position anchor
    const char* expect_b;  ///< defect description
  };
  const Case cases[] = {
      {"unknown event kind",
       R"({"timeline": [{"event": "quiesce"}, {"event": "meltdown"}]})",
       "timeline[1]", "unknown event kind"},
      {"missing loss-burst magnitude",
       R"({"timeline": [{"event": "loss_burst", "duration": 0.3}]})",
       "timeline[0]", "magnitude"},
      {"missing stall duration",
       R"({"timeline": [{"event": "stall", "count": 1}]})",
       "timeline[0]", "duration"},
      {"negative event time",
       R"({"timeline": [{"event": "join_burst", "at": -1.0, "count": 2,)"
       R"( "duration": 0.1}]})",
       "timeline[0] (join_burst)", "time must be >= 0"},
      {"unknown victim selector",
       R"({"timeline": [{"event": "crash", "count": 1, "duration": 0.1,)"
       R"( "target": "tallest"}]})",
       "timeline[0]", "unknown target"},
      {"saturated loss-burst magnitude",
       R"({"timeline": [{"event": "loss_burst", "duration": 0.3,)"
       R"( "magnitude": 1.5}]})",
       "timeline[0] (loss_burst)", "must lie in (0, 1)"},
      {"non-positive stall window",
       R"({"timeline": [{"event": "stall", "count": 1, "duration": 0.0}]})",
       "timeline[0] (stall)", "positive and finite"},
  };
  for (const Case& c : cases) {
    try {
      (void)scenario_from_json(Json::parse(c.json));
      ADD_FAILURE() << c.label << ": parsed without complaint";
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(c.expect_a), std::string::npos)
          << c.label << ": \"" << what << "\" lacks \"" << c.expect_a << "\"";
      EXPECT_NE(what.find(c.expect_b), std::string::npos)
          << c.label << ": \"" << what << "\" lacks \"" << c.expect_b << "\"";
    }
  }
}

TEST(ScenarioRunner, JoinBurstConvergesAndReportsDeltas) {
  Scenario s;
  s.name = "burst";
  s.population = 100;
  s.seed = 7;
  s.latency = protocol::LatencyModel::fixed(0.02);
  s.timeline = {Event::join_burst(0.0, 30, 1.0)};
  const Report rep = run_scenario(s);
  EXPECT_TRUE(rep.quiesced);
  EXPECT_TRUE(rep.converged);
  EXPECT_EQ(rep.initial_population, 100u);
  EXPECT_EQ(rep.final_population, 130u);
  EXPECT_EQ(rep.joins, 30u);
  EXPECT_GT(rep.convergence_time, 0.0);
  EXPECT_GT(rep.wire.transmissions, 0u);
  EXPECT_GT(rep.messages_of(sim::MessageKind::kVoronoiUpdate), 0u);
  EXPECT_GT(rep.total_messages, 0u);
}

TEST(ScenarioRunner, QueriesAreGradedDifferentially) {
  Scenario s;
  s.name = "queries";
  s.population = 150;
  s.seed = 11;
  s.latency = protocol::LatencyModel::uniform(0.005, 0.05);
  s.loss = 0.1;
  s.timeline = {Event::query_stream(0.0, 20, 1.0)};
  const Report rep = run_scenario(s);
  EXPECT_TRUE(rep.quiesced);
  EXPECT_EQ(rep.queries, 20u);
  EXPECT_EQ(rep.completed, 20u);
  // Quiet overlay: every query must match the ground truth exactly.
  EXPECT_EQ(rep.identical, 20u);
  EXPECT_EQ(rep.exact, 20u);
  EXPECT_DOUBLE_EQ(rep.mean_recall, 1.0);
  EXPECT_GT(rep.p99_completion, 0.0);
  EXPECT_GE(rep.p99_completion, rep.p50_completion);
  EXPECT_GT(rep.wire_msgs_per_query, 0.0);
}

TEST(ScenarioRunner, CrashAndReviveRestorePopulation) {
  Scenario s;
  s.name = "crash-revive";
  s.population = 120;
  s.seed = 13;
  s.latency = protocol::LatencyModel::fixed(0.01);
  s.failure_detect_delay = 0.2;
  s.timeline = {
      Event::crash(0.0, 5, 0.5, 16),
      Event::quiesce(0.8),
      Event::revive(0.8, 5),
      Event::verify_barrier(0.8),
  };
  const Report rep = run_scenario(s);
  EXPECT_TRUE(rep.quiesced);
  EXPECT_TRUE(rep.converged);
  EXPECT_EQ(rep.crashes, 5u);
  EXPECT_EQ(rep.revives, 5u);
  EXPECT_EQ(rep.final_population, 120u);  // every crash site rejoined
  ASSERT_EQ(rep.barriers.size(), 1u);
}

TEST(ScenarioRunner, PartitionBarriersShowStallThenHeal) {
  Scenario s;
  s.name = "partition";
  s.population = 120;
  s.seed = 33;
  s.latency = protocol::LatencyModel::fixed(0.02);
  s.timeline = {
      Event::partition_start(0.0, 0.5),
      Event::join_burst(0.0, 20, 0.3),
      Event::verify_barrier(5.0),
      Event::partition_heal(5.0),
      Event::quiesce(5.0),
      Event::verify_barrier(5.0),
  };
  const Report rep = run_scenario(s);
  EXPECT_TRUE(rep.quiesced);
  EXPECT_TRUE(rep.converged);
  ASSERT_EQ(rep.barriers.size(), 2u);
  // Mid-partition: cross-cut dissemination (or a cross-cut route hop) is
  // demonstrably stuck.  (The view audit alone can still pass -- a join
  // stalled in routing is absent from the ground truth too -- so the
  // stall shows through pending joins / in-flight transfers.)
  EXPECT_TRUE(rep.barriers[0].stale > 0 || rep.barriers[0].pending_joins > 0 ||
              rep.barriers[0].in_flight > 0);
  // Post-heal: the audit is exact again and nothing is stuck.
  EXPECT_TRUE(rep.barriers[1].converged);
  EXPECT_EQ(rep.barriers[1].pending_joins, 0u);
  EXPECT_EQ(rep.barriers[1].in_flight, 0u);
  EXPECT_EQ(rep.final_population, 140u);
}

TEST(ScenarioRunner, EventsAfterADrainFireImmediately) {
  // Regression: how far a quiesce barrier advances the clock depends on
  // the retransmit tail (seed- and loss-dependent), so an event listed
  // after a barrier may find its start already in the past.  It must
  // fire immediately, not invalidate the timeline.
  Scenario s;
  s.name = "post-barrier";
  s.population = 60;
  s.seed = 3;
  s.latency = protocol::LatencyModel::uniform(0.005, 0.05);
  s.loss = 0.1;
  s.timeline = {
      Event::join_burst(0.0, 5, 1.0),
      Event::quiesce(1.0),
      Event::join_burst(1.1, 5, 0.5),  // 1.1 can predate the drained clock
      Event::quiesce(2.0),
  };
  const Report rep = run_scenario(s);
  EXPECT_TRUE(rep.quiesced);
  EXPECT_TRUE(rep.converged);
  EXPECT_EQ(rep.joins, 10u);
  EXPECT_EQ(rep.final_population, 70u);
}

TEST(ScenarioRunner, SweepCoversTheGridInOrder) {
  Scenario base;
  base.name = "sweep";
  base.population = 60;
  base.seed = 17;
  base.timeline = {Event::join_burst(0.0, 10, 0.5)};
  SweepGrid grid;
  grid.latencies = {protocol::LatencyModel::fixed(0.0),
                    protocol::LatencyModel::fixed(0.02)};
  grid.losses = {0.0, 0.1};
  const auto cells = sweep(base, grid);
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_DOUBLE_EQ(cells[0].scenario.loss, 0.0);
  EXPECT_DOUBLE_EQ(cells[1].scenario.loss, 0.1);
  EXPECT_DOUBLE_EQ(cells[2].scenario.latency.a, 0.02);
  for (const auto& cell : cells) {
    EXPECT_TRUE(cell.report.quiesced);
    EXPECT_TRUE(cell.report.converged);
    EXPECT_EQ(cell.report.joins, 10u);
  }
  // Loss really bit in the lossy cells.
  EXPECT_GT(cells[3].report.wire.dropped, 0u);
}

TEST(ScenarioReplay, CommittedScenariosAreDeterministic) {
  // The acceptance contract: running the same scenario JSON with the
  // same seed twice produces bit-identical Report JSON -- for EVERY
  // committed scenario file.
  const auto files = committed_scenarios();
  ASSERT_GE(files.size(), 5u) << "expected the committed scenario corpus";
  for (const std::string& path : files) {
    SCOPED_TRACE(path);
    const Scenario s = load_scenario(path);
    const Report first = run_scenario(s);
    const Report second = run_scenario(s);
    EXPECT_TRUE(first.quiesced);
    EXPECT_TRUE(first.converged)
        << path << " did not end in a converged state";
    EXPECT_EQ(first.to_json().str(), second.to_json().str())
        << path << " replay diverged";
    // A committed scenario must survive a JSON round trip unchanged, so
    // recording a scenario and replaying the recording is lossless.
    const Scenario reparsed =
        scenario_from_json(Json::parse(scenario_to_json(s).str()));
    const Report third = run_scenario(reparsed);
    EXPECT_EQ(first.to_json().str(), third.to_json().str())
        << path << " serialization round trip changed the run";
  }
}

TEST(ScenarioReplay, SeedChangesTheRun) {
  const Scenario s = load_scenario(std::string(VORONET_SCENARIO_DIR) +
                                   "/steady_churn.json");
  Scenario other = s;
  other.seed ^= 0xabcdULL;
  const Report a = run_scenario(s);
  const Report b = run_scenario(other);
  EXPECT_NE(a.to_json().str(), b.to_json().str());
}

}  // namespace
}  // namespace voronet::scenario
