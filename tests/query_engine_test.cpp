// Differential tests of the message-level query engine: range / radius
// queries executed as kQuery / kQueryForward / kQueryResult messages over
// per-node local views must reproduce the sequential ground truth exactly
// at quiescence -- across latency models and loss rates -- and the
// logical message counts must obey the counting model of queries.hpp.
#include "protocol/query_harness.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "protocol/message.hpp"
#include "voronet/object_id.hpp"
#include "workload/distributions.hpp"

namespace voronet {
namespace {

using protocol::HarnessConfig;
using protocol::LatencyModel;
using protocol::QueryHarness;

HarnessConfig make_config(std::uint64_t seed) {
  HarnessConfig config;
  config.overlay.n_max = 4096;
  config.overlay.seed = seed;
  config.network.seed = seed ^ 0xfeedULL;
  config.seed = seed ^ 0x907aULL;
  return config;
}

TEST(QueryEngine, SentinelsAreOneDefinition) {
  // Pinned at compile time in protocol/message.hpp; re-checked here so a
  // refactor reintroducing a parallel literal fails loudly.
  static_assert(protocol::kNoNode == kNoObject);
  EXPECT_EQ(protocol::kNoNode, kNoObject);
  EXPECT_EQ(static_cast<ObjectId>(protocol::kNoNode),
            geo::DelaunayTriangulation::kNoVertex);
}

TEST(QueryEngine, ZeroLatencyDifferential) {
  QueryHarness qh(make_config(41));
  qh.populate(300, 41);
  ASSERT_TRUE(qh.harness().verify_views().converged());

  Rng rng(41);
  for (int q = 0; q < 12; ++q) {
    const protocol::NodeId from = qh.harness().random_node(rng);
    const auto range = qh.run_range(from, {rng.uniform(), rng.uniform()},
                                    {rng.uniform(), rng.uniform()},
                                    q % 3 == 0 ? 0.0 : rng.uniform(0.0, 0.08));
    EXPECT_TRUE(range.identical()) << "range query " << q;
    EXPECT_TRUE(range.counts_match)
        << "range query " << q << ": msg forwards " << range.msg.forward_sends
        << " vs truth " << range.truth.forward_messages << ", results "
        << range.msg.result_sends << " vs " << range.truth.result_messages;
    EXPECT_EQ(range.recall(), 1.0);

    const auto disk = qh.run_radius(from, {rng.uniform(), rng.uniform()},
                                    rng.uniform(0.0, 0.15));
    EXPECT_TRUE(disk.identical()) << "radius query " << q;
    EXPECT_TRUE(disk.counts_match) << "radius query " << q;
  }
}

TEST(QueryEngine, LatencyLossSweepStaysExactAtQuiescence) {
  const std::vector<LatencyModel> latencies = {
      LatencyModel::fixed(0.02),
      LatencyModel::uniform(0.005, 0.05),
      LatencyModel::lognormal(0.005, 0.03, 1.0),
  };
  const std::vector<double> losses = {0.0, 0.1, 0.25};
  for (const auto& latency : latencies) {
    for (const double loss : losses) {
      HarnessConfig config = make_config(43);
      config.network.latency = latency;
      config.network.drop_probability = loss;
      QueryHarness qh(config);
      qh.populate(200, 43);
      ASSERT_TRUE(qh.harness().verify_views().converged());

      Rng rng(43);
      for (int q = 0; q < 5; ++q) {
        const protocol::NodeId from = qh.harness().random_node(rng);
        const auto range = qh.run_range(
            from, {rng.uniform(), rng.uniform()},
            {rng.uniform(), rng.uniform()}, rng.uniform(0.0, 0.05));
        EXPECT_TRUE(range.identical())
            << latency.name() << " loss " << loss << " range " << q;
        const auto disk = qh.run_radius(
            from, {rng.uniform(), rng.uniform()}, rng.uniform(0.0, 0.12));
        EXPECT_TRUE(disk.identical())
            << latency.name() << " loss " << loss << " radius " << q;
        if (loss == 0.0 && latency.kind == LatencyModel::Kind::kFixed) {
          // Logical counts are deterministic only without retransmission
          // (a duplicate that slips the transport dedup draws an extra
          // rejection reply).
          EXPECT_TRUE(range.counts_match);
          EXPECT_TRUE(disk.counts_match);
        }
        EXPECT_GE(disk.msg.latency(), 0.0);
      }
    }
  }
}

TEST(QueryEngine, IssuerEqualsRootAnswersLocally) {
  QueryHarness qh(make_config(47));
  qh.populate(150, 47);
  const Vec2 center{0.5, 0.5};
  // Route once to find the owner, then issue FROM the owner: zero route
  // hops and no final aggregate message.
  const ObjectId owner = qh.overlay().tessellation().nearest(center);
  const auto d = qh.run_radius(owner, center, 0.1);
  EXPECT_TRUE(d.identical());
  EXPECT_EQ(d.msg.route_hops, 0u);
  EXPECT_EQ(d.msg.result_sends, d.msg.forward_sends);
}

TEST(QueryEngine, CompletionLatencyUnderFixedDelay) {
  HarnessConfig config = make_config(53);
  config.network.latency = LatencyModel::fixed(0.05);
  QueryHarness qh(config);
  qh.populate(200, 53);

  Rng rng(53);
  const protocol::NodeId from = qh.harness().random_node(rng);
  const auto d = qh.run_radius(from, {0.8, 0.2}, 0.1);
  ASSERT_TRUE(d.identical());
  // Every message leg costs 0.05; a query that flooded at least one cell
  // beyond the root needs >= injection + forward + echo.
  if (d.msg.forward_sends > 0) {
    EXPECT_GE(d.msg.latency(), 3 * 0.05 - 1e-12);
  }
  EXPECT_EQ(qh.harness().pending_queries(), 0u);
}

TEST(QueryEngine, QueriesDuringJoinBurstCompleteAndReportRecall) {
  HarnessConfig config = make_config(59);
  config.network.latency = LatencyModel::uniform(0.005, 0.05);
  config.network.drop_probability = 0.1;
  QueryHarness qh(config);
  qh.populate(200, 59);

  // A burst of joins with queries interleaved while the views churn:
  // the engine must still terminate and deliver every aggregate; result
  // quality is graded as recall, not asserted exact.
  Rng rng(59);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 30; ++i) {
    qh.harness().join_after(0.02 * i, gen.next(rng));
    if (i % 3 == 0) {
      ids.push_back(qh.issue_radius(qh.harness().random_node(rng),
                                    {rng.uniform(), rng.uniform()},
                                    rng.uniform(0.02, 0.15), 0.02 * i));
    }
  }
  const auto run = qh.harness().run_to_idle();
  ASSERT_FALSE(run.budget_exhausted);
  EXPECT_EQ(qh.harness().pending_queries(), 0u);
  for (const std::uint64_t id : ids) {
    const auto d = qh.collect(id);
    EXPECT_TRUE(d.completed);
    EXPECT_GE(d.recall(), 0.0);
    EXPECT_LE(d.recall(), 1.0);
  }
  // Quiet again: fresh queries are exact again.
  const auto after = qh.run_radius(qh.harness().random_node(rng),
                                   {0.4, 0.6}, 0.1);
  EXPECT_TRUE(after.identical());
}

// ---------------------------------------------------------------------------
// Crash-stop failures mid-query
// ---------------------------------------------------------------------------

/// Drive the harness in small time slices until the query's flood is
/// demonstrably in flight (the root served and forwarded), then crash
/// `victim`.  Returns false when the query completed before the flood
/// could be interrupted (does not happen with the latencies used here).
bool crash_mid_flood(QueryHarness& qh, std::uint64_t id,
                     protocol::NodeId victim) {
  auto& h = qh.harness();
  while (!h.query_record(id).done && h.query_record(id).forward_sends < 2) {
    const auto run = h.run_until(h.queue().now() + 0.003);
    if (run.budget_exhausted) return false;
  }
  if (h.query_record(id).done) return false;
  h.crash(victim);
  return true;
}

TEST(QueryEngine, CrashMidFloodFailoverSweep) {
  // The failover contract: a crash-stop failure mid-flood -- of a leaf
  // cell, an interior cell, the flood root or the issuer itself -- never
  // loses the query.  Per-branch aborts close dead branches, the issuer
  // re-issues tainted epochs, and once graded at quiescence the result
  // is EXACT against the post-crash ground truth (recall == precision
  // == 1), across latency models and loss up to 25%.
  const std::vector<LatencyModel> latencies = {
      LatencyModel::fixed(0.02),
      LatencyModel::uniform(0.005, 0.05),
      LatencyModel::lognormal(0.005, 0.03, 1.0),
  };
  const std::vector<double> losses = {0.0, 0.1, 0.25};
  const Vec2 center{0.5, 0.5};
  const double radius = 0.12;
  std::size_t reissued_total = 0;

  for (const auto& latency : latencies) {
    for (const double loss : losses) {
      HarnessConfig config = make_config(71);
      config.network.latency = latency;
      config.network.drop_probability = loss;
      config.failure_detect_delay = 0.2;
      QueryHarness qh(config);
      qh.populate(220, 71);
      ASSERT_TRUE(qh.harness().verify_views().converged());
      auto& h = qh.harness();

      for (const int role : {0, 1, 2, 3}) {  // leaf, interior, root, issuer
        // Victims come from the CURRENT sequential truth, so each role
        // names a cell that really serves this query.
        const ObjectId root = qh.overlay().tessellation().nearest(center);
        const auto truth =
            radius_query(qh.overlay(), root, center, radius);
        ASSERT_GT(truth.owners.size(), 3u);
        // Issuer: a node far from the region (its cell never serves).
        protocol::NodeId issuer = root;
        double worst = -1.0;
        for (const protocol::NodeId n : h.roster()) {
          const double d = dist2(qh.overlay().position(n), center);
          if (d > worst) {
            worst = d;
            issuer = n;
          }
        }
        protocol::NodeId victim = root;
        if (role == 0) {  // leaf: the served cell farthest from the centre
          double far = -1.0;
          for (const ObjectId o : truth.owners) {
            const double d = dist2(qh.overlay().position(o), center);
            if (d > far) {
              far = d;
              victim = o;
            }
          }
        } else if (role == 1) {  // interior: a served neighbour of the root
          for (const ObjectId o : qh.overlay().view(root).vn) {
            if (std::find(truth.owners.begin(), truth.owners.end(), o) !=
                truth.owners.end()) {
              victim = o;
              break;
            }
          }
        } else if (role == 3) {
          victim = issuer;
        }
        ASSERT_NE(issuer, root);

        const std::uint64_t id = qh.issue_radius(issuer, center, radius);
        ASSERT_TRUE(crash_mid_flood(qh, id, victim))
            << latency.name() << " loss " << loss << " role " << role;
        const auto run = h.run_to_idle();
        ASSERT_FALSE(run.budget_exhausted)
            << latency.name() << " loss " << loss << " role " << role;
        ASSERT_EQ(h.pending_queries(), 0u);

        const auto d = qh.collect(id);
        EXPECT_TRUE(d.completed)
            << latency.name() << " loss " << loss << " role " << role;
        EXPECT_TRUE(d.identical())
            << latency.name() << " loss " << loss << " role " << role
            << ": owners " << d.msg.owners.size() << " vs truth "
            << d.truth.owners.size() << ", epochs " << d.msg.epoch;
        EXPECT_EQ(d.recall(), 1.0);
        EXPECT_EQ(d.precision(), 1.0);
        if (role == 3) EXPECT_TRUE(d.msg.issuer_lost);
        if (d.msg.epoch > 1) ++reissued_total;

        // Repairs have quiesced: the strict view check (including the
        // dangling-holder audit) must hold again.
        EXPECT_FALSE(h.repair_in_flight());
        EXPECT_TRUE(h.verify_views().converged());
      }
      h.overlay().check_invariants();
    }
  }
  // The sweep must have exercised the failover path, not dodged it.
  EXPECT_GT(reissued_total, 0u);
}

TEST(QueryEngine, ChurnConcurrentScenario) {
  // Queries racing joins, voluntary leaves AND crash-stop failures on
  // one event queue -- the scenario class the failover machinery exists
  // for.  Every query must complete; quality is graded against the
  // post-quiescence ground truth (queries that finished before later
  // churn legitimately reflect an earlier topology, so recall /
  // precision are bounded, not asserted exact).
  HarnessConfig config = make_config(73);
  config.network.latency = LatencyModel::uniform(0.005, 0.05);
  config.network.drop_probability = 0.1;
  config.failure_detect_delay = 0.25;
  QueryHarness qh(config);
  qh.populate(250, 73);

  QueryHarness::ChurnScenario s;
  s.joins = 25;
  s.leaves = 20;
  s.crashes = 12;
  s.queries = 40;
  s.horizon = 2.5;
  s.seed = 73;
  const auto rep = qh.run_churn_scenario(s);

  EXPECT_TRUE(rep.quiesced);
  EXPECT_EQ(rep.completed, rep.queries);
  EXPECT_EQ(qh.harness().pending_queries(), 0u);
  EXPECT_TRUE(rep.converged);  // strict: repairs quiesced, no dangling
  EXPECT_GE(rep.mean_recall, 0.8);
  EXPECT_GE(rep.mean_precision, 0.8);
  EXPECT_GT(rep.exact, rep.queries / 2);
  qh.overlay().check_invariants();

  // Quiet again: fresh queries are exact again.
  Rng rng(73);
  const auto after = qh.run_radius(qh.harness().random_node(rng),
                                   {0.45, 0.55}, 0.1);
  EXPECT_TRUE(after.identical());
  EXPECT_EQ(after.recall(), 1.0);
  EXPECT_EQ(after.precision(), 1.0);
}

TEST(QueryEngine, EmptyTruthRecallRequiresEmptyResult) {
  // Satellite regression: recall() used to return 1.0 whenever the truth
  // set was empty, hiding message-layer false positives entirely.
  QueryHarness::Differential d;
  EXPECT_EQ(d.recall(), 1.0);     // empty == empty
  EXPECT_EQ(d.precision(), 1.0);  // nothing found, nothing false
  d.msg.matches = {ObjectId{3}};
  EXPECT_EQ(d.recall(), 0.0);  // false positive against an empty truth
  EXPECT_EQ(d.precision(), 0.0);
  d.truth.matches = {ObjectId{3}, ObjectId{5}};
  EXPECT_EQ(d.recall(), 0.5);
  EXPECT_EQ(d.precision(), 1.0);
}

TEST(QueryEngine, RecordHousekeeping) {
  QueryHarness qh(make_config(61));
  qh.populate(100, 61);
  Rng rng(61);
  for (int i = 0; i < 5; ++i) {
    (void)qh.run_radius(qh.harness().random_node(rng),
                        {rng.uniform(), rng.uniform()}, 0.05);
  }
  qh.harness().drop_completed_queries();
  const auto id = qh.issue_radius(qh.harness().random_node(rng), {0.5, 0.5},
                                  0.05);
  (void)qh.harness().run_to_idle();
  EXPECT_TRUE(qh.harness().query_record(id).done);
}

}  // namespace
}  // namespace voronet
