// Differential tests of the message-level query engine: range / radius
// queries executed as kQuery / kQueryForward / kQueryResult messages over
// per-node local views must reproduce the sequential ground truth exactly
// at quiescence -- across latency models and loss rates -- and the
// logical message counts must obey the counting model of queries.hpp.
#include "protocol/query_harness.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "protocol/message.hpp"
#include "voronet/object_id.hpp"
#include "workload/distributions.hpp"

namespace voronet {
namespace {

using protocol::HarnessConfig;
using protocol::LatencyModel;
using protocol::QueryHarness;

HarnessConfig make_config(std::uint64_t seed) {
  HarnessConfig config;
  config.overlay.n_max = 4096;
  config.overlay.seed = seed;
  config.network.seed = seed ^ 0xfeedULL;
  config.seed = seed ^ 0x907aULL;
  return config;
}

TEST(QueryEngine, SentinelsAreOneDefinition) {
  // Pinned at compile time in protocol/message.hpp; re-checked here so a
  // refactor reintroducing a parallel literal fails loudly.
  static_assert(protocol::kNoNode == kNoObject);
  EXPECT_EQ(protocol::kNoNode, kNoObject);
  EXPECT_EQ(static_cast<ObjectId>(protocol::kNoNode),
            geo::DelaunayTriangulation::kNoVertex);
}

TEST(QueryEngine, ZeroLatencyDifferential) {
  QueryHarness qh(make_config(41));
  qh.populate(300, 41);
  ASSERT_TRUE(qh.harness().verify_views().converged());

  Rng rng(41);
  for (int q = 0; q < 12; ++q) {
    const protocol::NodeId from = qh.harness().random_node(rng);
    const auto range = qh.run_range(from, {rng.uniform(), rng.uniform()},
                                    {rng.uniform(), rng.uniform()},
                                    q % 3 == 0 ? 0.0 : rng.uniform(0.0, 0.08));
    EXPECT_TRUE(range.identical()) << "range query " << q;
    EXPECT_TRUE(range.counts_match)
        << "range query " << q << ": msg forwards " << range.msg.forward_sends
        << " vs truth " << range.truth.forward_messages << ", results "
        << range.msg.result_sends << " vs " << range.truth.result_messages;
    EXPECT_EQ(range.recall(), 1.0);

    const auto disk = qh.run_radius(from, {rng.uniform(), rng.uniform()},
                                    rng.uniform(0.0, 0.15));
    EXPECT_TRUE(disk.identical()) << "radius query " << q;
    EXPECT_TRUE(disk.counts_match) << "radius query " << q;
  }
}

TEST(QueryEngine, LatencyLossSweepStaysExactAtQuiescence) {
  const std::vector<LatencyModel> latencies = {
      LatencyModel::fixed(0.02),
      LatencyModel::uniform(0.005, 0.05),
      LatencyModel::lognormal(0.005, 0.03, 1.0),
  };
  const std::vector<double> losses = {0.0, 0.1, 0.25};
  for (const auto& latency : latencies) {
    for (const double loss : losses) {
      HarnessConfig config = make_config(43);
      config.network.latency = latency;
      config.network.drop_probability = loss;
      QueryHarness qh(config);
      qh.populate(200, 43);
      ASSERT_TRUE(qh.harness().verify_views().converged());

      Rng rng(43);
      for (int q = 0; q < 5; ++q) {
        const protocol::NodeId from = qh.harness().random_node(rng);
        const auto range = qh.run_range(
            from, {rng.uniform(), rng.uniform()},
            {rng.uniform(), rng.uniform()}, rng.uniform(0.0, 0.05));
        EXPECT_TRUE(range.identical())
            << latency.name() << " loss " << loss << " range " << q;
        const auto disk = qh.run_radius(
            from, {rng.uniform(), rng.uniform()}, rng.uniform(0.0, 0.12));
        EXPECT_TRUE(disk.identical())
            << latency.name() << " loss " << loss << " radius " << q;
        if (loss == 0.0 && latency.kind == LatencyModel::Kind::kFixed) {
          // Logical counts are deterministic only without retransmission
          // (a duplicate that slips the transport dedup draws an extra
          // rejection reply).
          EXPECT_TRUE(range.counts_match);
          EXPECT_TRUE(disk.counts_match);
        }
        EXPECT_GE(disk.msg.latency(), 0.0);
      }
    }
  }
}

TEST(QueryEngine, IssuerEqualsRootAnswersLocally) {
  QueryHarness qh(make_config(47));
  qh.populate(150, 47);
  const Vec2 center{0.5, 0.5};
  // Route once to find the owner, then issue FROM the owner: zero route
  // hops and no final aggregate message.
  const ObjectId owner = qh.overlay().tessellation().nearest(center);
  const auto d = qh.run_radius(owner, center, 0.1);
  EXPECT_TRUE(d.identical());
  EXPECT_EQ(d.msg.route_hops, 0u);
  EXPECT_EQ(d.msg.result_sends, d.msg.forward_sends);
}

TEST(QueryEngine, CompletionLatencyUnderFixedDelay) {
  HarnessConfig config = make_config(53);
  config.network.latency = LatencyModel::fixed(0.05);
  QueryHarness qh(config);
  qh.populate(200, 53);

  Rng rng(53);
  const protocol::NodeId from = qh.harness().random_node(rng);
  const auto d = qh.run_radius(from, {0.8, 0.2}, 0.1);
  ASSERT_TRUE(d.identical());
  // Every message leg costs 0.05; a query that flooded at least one cell
  // beyond the root needs >= injection + forward + echo.
  if (d.msg.forward_sends > 0) {
    EXPECT_GE(d.msg.latency(), 3 * 0.05 - 1e-12);
  }
  EXPECT_EQ(qh.harness().pending_queries(), 0u);
}

TEST(QueryEngine, QueriesDuringJoinBurstCompleteAndReportRecall) {
  HarnessConfig config = make_config(59);
  config.network.latency = LatencyModel::uniform(0.005, 0.05);
  config.network.drop_probability = 0.1;
  QueryHarness qh(config);
  qh.populate(200, 59);

  // A burst of joins with queries interleaved while the views churn:
  // the engine must still terminate and deliver every aggregate; result
  // quality is graded as recall, not asserted exact.
  Rng rng(59);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 30; ++i) {
    qh.harness().join_after(0.02 * i, gen.next(rng));
    if (i % 3 == 0) {
      ids.push_back(qh.issue_radius(qh.harness().random_node(rng),
                                    {rng.uniform(), rng.uniform()},
                                    rng.uniform(0.02, 0.15), 0.02 * i));
    }
  }
  const auto run = qh.harness().run_to_idle();
  ASSERT_FALSE(run.budget_exhausted);
  EXPECT_EQ(qh.harness().pending_queries(), 0u);
  for (const std::uint64_t id : ids) {
    const auto d = qh.collect(id);
    EXPECT_TRUE(d.completed);
    EXPECT_GE(d.recall(), 0.0);
    EXPECT_LE(d.recall(), 1.0);
  }
  // Quiet again: fresh queries are exact again.
  const auto after = qh.run_radius(qh.harness().random_node(rng),
                                   {0.4, 0.6}, 0.1);
  EXPECT_TRUE(after.identical());
}

TEST(QueryEngine, RecordHousekeeping) {
  QueryHarness qh(make_config(61));
  qh.populate(100, 61);
  Rng rng(61);
  for (int i = 0; i < 5; ++i) {
    (void)qh.run_radius(qh.harness().random_node(rng),
                        {rng.uniform(), rng.uniform()}, 0.05);
  }
  qh.harness().drop_completed_queries();
  const auto id = qh.issue_radius(qh.harness().random_node(rng), {0.5, 0.5},
                                  0.05);
  (void)qh.harness().run_to_idle();
  EXPECT_TRUE(qh.harness().query_record(id).done);
}

}  // namespace
}  // namespace voronet
