// Differential tests of the message-level protocol engine.
//
// The central claim (DESIGN.md, "Protocol engine"): run the computation on
// the shared ground truth and the dissemination as real messages, and at
// quiescence every node's local view equals the authoritative one --
// under zero latency, under random latency (reordering), under loss with
// retransmission, across voluntary departures, crash-stop failures and
// network partitions.
#include "protocol/harness.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "protocol/network.hpp"
#include "workload/distributions.hpp"

namespace voronet::protocol {
namespace {

HarnessConfig small_config() {
  HarnessConfig config;
  config.overlay.n_max = 4096;
  config.overlay.seed = 11;
  config.network.seed = 12;
  return config;
}

/// Schedule `n` joins at the given inter-arrival spacing and drain.
void grow(ProtocolHarness& h, workload::PointGenerator& gen, Rng& rng,
          std::size_t n, double spacing = 0.0) {
  for (std::size_t i = 0; i < n; ++i) {
    h.join_after(spacing * static_cast<double>(i), gen.next(rng));
  }
  const auto run = h.run_to_idle();
  ASSERT_FALSE(run.budget_exhausted);
}

TEST(ProtocolEngine, DifferentialQuiescenceZeroLatencyZeroLoss) {
  // The synchronous limit: dissemination is instantaneous, so after every
  // batch the local views must bit-match the tessellation adjacency.
  ProtocolHarness h(small_config());
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  Rng rng(21);
  for (int batch = 0; batch < 6; ++batch) {
    grow(h, gen, rng, 50);
    const auto report = h.verify_views();
    EXPECT_EQ(report.checked, h.node_count());
    EXPECT_EQ(report.stale, 0u) << "batch " << batch;
    EXPECT_EQ(report.missing, 0u);
  }
  EXPECT_EQ(h.node_count(), 300u);
  EXPECT_EQ(h.pending_joins(), 0u);
  EXPECT_EQ(h.network().stats().dropped, 0u);
  EXPECT_EQ(h.network().stats().retransmits, 0u);
  h.overlay().check_invariants();
}

TEST(ProtocolEngine, JoinsRouteThroughLocalViews) {
  ProtocolHarness h(small_config());
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  Rng rng(22);
  // Space the joins out in simulated time: updates apply between joins,
  // so route chains run over populated views (a single-instant burst
  // degenerates to hop-zero sponsorship at the bootstrap gateway).
  grow(h, gen, rng, 200, 0.01);
  const auto& m = h.network().metrics();
  // Routing really happened at the message level: forwards were sent, and
  // every join entered through a kJoin message (minus the bootstrap).
  EXPECT_EQ(m.messages(sim::MessageKind::kJoin), 199u);
  EXPECT_GT(m.messages(sim::MessageKind::kRouteForward), 0u);
  EXPECT_GT(m.messages(sim::MessageKind::kVoronoiUpdate), 0u);
  EXPECT_GT(m.messages(sim::MessageKind::kAck), 0u);
}

TEST(ProtocolEngine, ConcurrentJoinsUnderLatencyConverge) {
  // Many joins in flight at once: route chains observe stale views while
  // other joins' updates are still travelling.  At quiescence the system
  // must still converge exactly.
  HarnessConfig config = small_config();
  config.network.latency = LatencyModel::uniform(0.01, 0.2);
  ProtocolHarness h(config);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  Rng rng(23);
  // Seed population, then a dense burst: 100 joins within one mean RTT.
  grow(h, gen, rng, 100);
  grow(h, gen, rng, 100, 0.001);
  const auto report = h.verify_views();
  EXPECT_EQ(report.stale, 0u);
  EXPECT_EQ(report.missing, 0u);
  EXPECT_EQ(h.node_count(), 200u);
  h.overlay().check_invariants();
}

TEST(ProtocolEngine, ReorderingUnderHeavyTailedLatencyIsSafe) {
  // Lognormal delays reorder aggressively; the versioned updates must
  // discard stale content instead of applying it.
  HarnessConfig config = small_config();
  config.network.latency = LatencyModel::lognormal(0.005, 0.05, 1.0);
  ProtocolHarness h(config);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  Rng rng(24);
  grow(h, gen, rng, 150, 0.002);
  Rng pick(25);
  for (int i = 0; i < 30; ++i) {
    h.leave_after(0.01 * i, h.random_node(pick));
    h.join_after(0.01 * i + 0.005, gen.next(rng));
  }
  const auto run = h.run_to_idle();
  ASSERT_FALSE(run.budget_exhausted);
  EXPECT_TRUE(h.verify_views().converged());
  h.overlay().check_invariants();
}

TEST(ProtocolEngine, LossWithRetransmitsReconverges) {
  HarnessConfig config = small_config();
  config.network.latency = LatencyModel::fixed(0.02);
  config.network.drop_probability = 0.25;
  ProtocolHarness h(config);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  Rng rng(26);
  grow(h, gen, rng, 120, 0.01);
  Rng pick(27);
  for (int i = 0; i < 20; ++i) h.leave_after(0.05 * i, h.random_node(pick));
  const auto run = h.run_to_idle();
  ASSERT_FALSE(run.budget_exhausted);

  const auto report = h.verify_views();
  EXPECT_TRUE(report.converged())
      << report.stale << " stale of " << report.checked;
  EXPECT_EQ(h.node_count(), 100u);
  // The 25% loss rate really bit: drops happened and retransmission
  // recovered them.
  const auto& stats = h.network().stats();
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_GT(stats.retransmits, 0u);
  EXPECT_EQ(h.network().in_flight(), 0u);
  h.overlay().check_invariants();
}

TEST(ProtocolEngine, DuplicateDeliveriesAreSuppressed) {
  // With loss on, some acks are lost, so retransmissions produce
  // duplicate arrivals; the transport must deliver each logical message
  // at most once.
  HarnessConfig config = small_config();
  config.network.latency = LatencyModel::fixed(0.01);
  config.network.drop_probability = 0.3;
  ProtocolHarness h(config);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  Rng rng(28);
  grow(h, gen, rng, 80, 0.01);
  EXPECT_GT(h.network().stats().duplicates, 0u);
  EXPECT_TRUE(h.verify_views().converged());
}

TEST(ProtocolEngine, VoluntaryLeavesDisseminate) {
  ProtocolHarness h(small_config());
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  Rng rng(29);
  grow(h, gen, rng, 150);
  Rng pick(30);
  for (int i = 0; i < 50; ++i) {
    h.leave(h.random_node(pick));
    const auto run = h.run_to_idle();
    ASSERT_FALSE(run.budget_exhausted);
  }
  EXPECT_EQ(h.node_count(), 100u);
  EXPECT_TRUE(h.verify_views().converged());
  EXPECT_GT(h.network().metrics().messages(sim::MessageKind::kLeaveNotify),
            0u);
  h.overlay().check_invariants();
}

TEST(ProtocolEngine, CrashStopRepairsAndReconverges) {
  HarnessConfig config = small_config();
  config.network.latency = LatencyModel::fixed(0.01);
  config.failure_detect_delay = 0.5;
  ProtocolHarness h(config);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  Rng rng(31);
  grow(h, gen, rng, 120);
  Rng pick(32);
  for (int i = 0; i < 10; ++i) {
    const NodeId victim = h.random_node(pick);
    h.crash(victim);
    const auto run = h.run_to_idle();
    ASSERT_FALSE(run.budget_exhausted);
    EXPECT_FALSE(h.overlay().contains(victim));
  }
  EXPECT_EQ(h.node_count(), 110u);
  EXPECT_TRUE(h.verify_views().converged());
  h.overlay().check_invariants();
}

TEST(ProtocolEngine, CrashDuringInFlightJoinsLosesNoJoin) {
  // A node crashes while join chains are routing through it: the
  // transport abandons the stranded hops (on either side -- a crash-stop
  // sender stops retransmitting too), the harness reroutes the chains
  // and re-ships orphaned view updates from live witnesses, and recycled
  // vertex ids must not inherit the crashed mark.  Loss is on so
  // sender-crash abandonment actually triggers.
  HarnessConfig config = small_config();
  config.network.latency = LatencyModel::uniform(0.02, 0.1);
  config.network.drop_probability = 0.15;
  config.failure_detect_delay = 0.3;
  ProtocolHarness h(config);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  Rng rng(36);
  grow(h, gen, rng, 100);
  Rng pick(37);
  // 40 joins spread over 2 time units, with 5 crashes landing mid-burst.
  for (int i = 0; i < 40; ++i) h.join_after(0.05 * i, gen.next(rng));
  for (int i = 0; i < 5; ++i) {
    h.queue().schedule(0.3 * (i + 1),
                       [&h, &pick] { h.crash(h.random_node(pick)); });
  }
  const auto run = h.run_to_idle();
  ASSERT_FALSE(run.budget_exhausted);
  EXPECT_EQ(h.pending_joins(), 0u);
  EXPECT_EQ(h.node_count(), 135u);  // 100 + 40 joins - 5 crashes
  // Keep joining after the crashes: recycled ids must be reachable.
  grow(h, gen, rng, 40, 0.01);
  EXPECT_EQ(h.node_count(), 175u);
  EXPECT_TRUE(h.verify_views().converged());
  h.overlay().check_invariants();
}

TEST(ProtocolEngine, ReviveAbandonsPredecessorEraTransfers) {
  // The surgical transport-level contract behind id recycling: reviving
  // an id must abandon every reliable transfer still armed from the dead
  // predecessor's era -- on BOTH sides.  Before the fix, revive() only
  // cleared the dedup table, so a predecessor-era retransmission was
  // delivered to the brand-new endpoint (receiver side), and a dead
  // sender's unacked transfers came back to life with the recycled id.
  sim::EventQueue queue;
  NetworkConfig config;
  config.latency = LatencyModel::fixed(0.05);
  Network net(queue, config);
  std::size_t delivered = 0;
  std::vector<Message> abandoned;
  net.set_sink([&](const Message&) { ++delivered; });
  net.set_abandon_handler([&](const Message& m) { abandoned.push_back(m); });

  // Receiver side: 1 -> 2 in flight when 2 crashes.
  Message to_victim;
  to_victim.type = sim::MessageKind::kVoronoiUpdate;
  to_victim.src = 1;
  to_victim.dst = 2;
  net.send(to_victim);
  // Sender side: 2 -> 3, dropped by a transient fault (simulated by
  // crashing the sender before the ack can settle the transfer).
  Message from_victim;
  from_victim.type = sim::MessageKind::kCloseNeighbor;
  from_victim.src = 2;
  from_victim.dst = 2;  // self-addressed: dies with the endpoint
  net.send(from_victim);
  net.crash(2);
  (void)queue.run_until(0.06);  // arrivals dropped at the dead endpoint
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(net.in_flight(), 2u);

  // The id is recycled for a brand-new node before the retransmit
  // timers fire: both predecessor-era transfers must be abandoned NOW
  // (with the crashed mark still visible to the abandon handler) ...
  net.revive(2);
  EXPECT_EQ(net.in_flight(), 0u);
  ASSERT_EQ(abandoned.size(), 2u);
  EXPECT_EQ(net.stats().abandoned, 2u);

  // ... and nothing stale may reach the new endpoint afterwards.
  const auto run = queue.run_to_idle();
  ASSERT_FALSE(run.budget_exhausted);
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(net.stats().retransmits, 0u);

  // The recycled endpoint is fully functional for fresh traffic.
  Message fresh;
  fresh.type = sim::MessageKind::kVoronoiUpdate;
  fresh.src = 1;
  fresh.dst = 2;
  net.send(fresh);
  (void)queue.run_to_idle();
  EXPECT_EQ(delivered, 1u);
}

TEST(ProtocolEngine, RecycledIdInheritsNoPredecessorTransfers) {
  // Regression: Network::revive() cleared the recycled id's receiver-side
  // dedup but left predecessor-era reliable transfers armed, so a
  // retransmission addressed to (or sent by) the dead predecessor could
  // deliver stale view content to the brand-new endpoint -- content with
  // a version counter ahead of the fresh node's zero, hence applied.
  // Crash a node and immediately rejoin while its transfers are still in
  // their retransmission window: the recycled id must come up clean and
  // the system must converge exactly.
  HarnessConfig config = small_config();
  config.network.latency = LatencyModel::uniform(0.02, 0.1);
  config.network.drop_probability = 0.3;  // keep retransmissions armed
  config.failure_detect_delay = 0.3;
  ProtocolHarness h(config);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  Rng rng(38);
  grow(h, gen, rng, 100, 0.005);
  Rng pick(39);
  for (int i = 0; i < 8; ++i) {
    // Crash mid-traffic (joins in flight address the victim too), then
    // join immediately: the freed vertex id is recycled while transfers
    // from the victim's era are still pending.
    h.join_after(0.0, gen.next(rng));
    h.crash(h.random_node(pick));
    h.join_after(0.01, gen.next(rng));
    const auto run = h.run_to_idle();
    ASSERT_FALSE(run.budget_exhausted);
  }
  EXPECT_EQ(h.pending_joins(), 0u);
  EXPECT_EQ(h.node_count(), 108u);  // 100 + 16 joins - 8 crashes
  EXPECT_FALSE(h.repair_in_flight());
  const auto report = h.verify_views();
  EXPECT_TRUE(report.converged())
      << report.stale << " stale, " << report.dangling << " dangling of "
      << report.checked;
  h.overlay().check_invariants();
}

TEST(ProtocolEngine, RepairWindowIsVisibleAndStrictVerifyResumes) {
  // verify_views() tolerates dangling long-link holders only while a
  // crash's failure-detection window is open; afterwards the strict
  // audit (report.dangling) is back in force.
  HarnessConfig config = small_config();
  config.network.latency = LatencyModel::fixed(0.01);
  config.failure_detect_delay = 0.5;
  ProtocolHarness h(config);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  Rng rng(40);
  grow(h, gen, rng, 80);
  EXPECT_FALSE(h.repair_in_flight());

  Rng pick(41);
  h.crash(h.random_node(pick));
  const auto mid = h.run_until(h.queue().now() + 0.25);
  ASSERT_FALSE(mid.budget_exhausted);
  EXPECT_TRUE(h.repair_in_flight());  // detection delay not yet elapsed

  const auto run = h.run_to_idle();
  ASSERT_FALSE(run.budget_exhausted);
  EXPECT_FALSE(h.repair_in_flight());
  const auto report = h.verify_views();
  EXPECT_TRUE(report.converged());
  EXPECT_EQ(report.dangling, 0u);
  h.overlay().check_invariants();
}

TEST(ProtocolEngine, PartitionStallsThenHeals) {
  HarnessConfig config = small_config();
  config.network.latency = LatencyModel::fixed(0.02);
  ProtocolHarness h(config);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  Rng rng(33);
  grow(h, gen, rng, 100);

  // Cut the network along x = 1/2 (node positions are immutable, so the
  // filter can consult the ground truth).
  const Overlay& overlay = h.overlay();
  const auto side = [&overlay](NodeId n) {
    return overlay.contains(n) ? overlay.position(n).x < 0.5 : true;
  };
  h.network().set_link_filter(
      [side](NodeId a, NodeId b) { return side(a) == side(b); });

  for (int i = 0; i < 30; ++i) h.join_after(0.01 * i, gen.next(rng));
  const double partition_end = h.queue().now() + 20.0;
  const auto during = h.run_until(partition_end);
  ASSERT_FALSE(during.budget_exhausted);
  // Cross-cut dissemination (and the occasional cross-cut route hop) is
  // stuck: either some views are stale or some joins cannot finish.
  const auto stalled = h.verify_views();
  EXPECT_TRUE(stalled.stale > 0 || h.pending_joins() > 0 ||
              h.network().in_flight() > 0);

  h.network().clear_link_filter();
  const auto after = h.run_to_idle();
  ASSERT_FALSE(after.budget_exhausted);
  EXPECT_EQ(h.pending_joins(), 0u);
  EXPECT_EQ(h.node_count(), 130u);
  EXPECT_TRUE(h.verify_views().converged());
  h.overlay().check_invariants();
}

TEST(ProtocolEngine, PowerLawWorkloadConverges) {
  // Clustered workloads exercise the close-neighbour machinery (dense
  // cn sets) through the message path.
  HarnessConfig config = small_config();
  config.overlay.n_max = 2048;  // larger dmin -> non-trivial cn sets
  config.network.latency = LatencyModel::uniform(0.0, 0.05);
  ProtocolHarness h(config);
  workload::PointGenerator gen(workload::DistributionConfig::power_law(2.0));
  Rng rng(34);
  grow(h, gen, rng, 250, 0.005);
  EXPECT_TRUE(h.verify_views().converged());
  EXPECT_GT(h.network().metrics().messages(sim::MessageKind::kCloseNeighbor),
            0u);
  h.overlay().check_invariants();
}

TEST(ProtocolEngine, DeterministicAcrossRuns) {
  const auto run_once = [] {
    HarnessConfig config = small_config();
    config.network.latency = LatencyModel::lognormal(0.001, 0.02, 0.8);
    config.network.drop_probability = 0.1;
    ProtocolHarness h(config);
    workload::PointGenerator gen(workload::DistributionConfig::uniform());
    Rng rng(35);
    for (std::size_t i = 0; i < 120; ++i) {
      h.join_after(0.003 * static_cast<double>(i), gen.next(rng));
    }
    h.run_to_idle();
    return std::tuple{h.network().stats().transmissions,
                      h.network().stats().dropped,
                      h.network().metrics().total_messages(),
                      h.queue().processed(), h.last_apply_time()};
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace voronet::protocol
