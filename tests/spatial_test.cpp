// Tests for the uniform-grid spatial oracle.
#include "spatial/grid_index.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace voronet::spatial {
namespace {

TEST(GridIndex, NearestMatchesLinearScan) {
  Rng rng(1);
  GridIndex index({{0, 0}, {1, 1}}, 512);
  std::vector<Vec2> pts;
  for (std::uint32_t i = 0; i < 512; ++i) {
    const Vec2 p{rng.uniform(), rng.uniform()};
    pts.push_back(p);
    index.insert(i, p);
  }
  for (int q = 0; q < 1000; ++q) {
    const Vec2 p{rng.uniform(-0.2, 1.2), rng.uniform(-0.2, 1.2)};
    std::uint32_t want = 0;
    double best = std::numeric_limits<double>::infinity();
    for (std::uint32_t i = 0; i < pts.size(); ++i) {
      const double d = dist2(pts[i], p);
      if (d < best) {
        best = d;
        want = i;
      }
    }
    EXPECT_EQ(index.nearest(p), want);
  }
}

TEST(GridIndex, RangeMatchesLinearScan) {
  Rng rng(2);
  GridIndex index({{0, 0}, {1, 1}}, 256);
  std::vector<Vec2> pts;
  for (std::uint32_t i = 0; i < 256; ++i) {
    const Vec2 p{rng.uniform(), rng.uniform()};
    pts.push_back(p);
    index.insert(i, p);
  }
  std::vector<GridIndex::Id> got;
  for (int q = 0; q < 200; ++q) {
    const Vec2 c{rng.uniform(), rng.uniform()};
    const double r = rng.uniform(0.0, 0.3);
    got.clear();
    index.range(c, r, got);
    std::sort(got.begin(), got.end());
    std::vector<GridIndex::Id> want;
    for (std::uint32_t i = 0; i < pts.size(); ++i) {
      if (dist2(pts[i], c) <= r * r) want.push_back(i);
    }
    EXPECT_EQ(got, want);
  }
}

TEST(GridIndex, InBoxMatchesLinearScan) {
  Rng rng(3);
  GridIndex index({{0, 0}, {1, 1}}, 128);
  std::vector<Vec2> pts;
  for (std::uint32_t i = 0; i < 128; ++i) {
    const Vec2 p{rng.uniform(), rng.uniform()};
    pts.push_back(p);
    index.insert(i, p);
  }
  std::vector<GridIndex::Id> got;
  for (int q = 0; q < 100; ++q) {
    geo::Box box{{rng.uniform(), rng.uniform()}, {0, 0}};
    box.hi = {box.lo.x + rng.uniform(0, 0.4), box.lo.y + rng.uniform(0, 0.4)};
    got.clear();
    index.in_box(box, got);
    std::sort(got.begin(), got.end());
    std::vector<GridIndex::Id> want;
    for (std::uint32_t i = 0; i < pts.size(); ++i) {
      if (box.contains(pts[i])) want.push_back(i);
    }
    EXPECT_EQ(got, want);
  }
}

TEST(GridIndex, RemoveAndReinsert) {
  GridIndex index({{0, 0}, {1, 1}}, 16);
  index.insert(1, {0.25, 0.25});
  index.insert(2, {0.75, 0.75});
  EXPECT_EQ(index.nearest({0.2, 0.2}), 1u);
  index.remove(1, {0.25, 0.25});
  EXPECT_EQ(index.size(), 1u);
  EXPECT_EQ(index.nearest({0.2, 0.2}), 2u);
  index.insert(3, {0.1, 0.1});
  EXPECT_EQ(index.nearest({0.2, 0.2}), 3u);
}

TEST(GridIndex, PointsOutsideBoundsAreClamped) {
  GridIndex index({{0, 0}, {1, 1}}, 16);
  index.insert(1, {-0.5, -0.5});
  index.insert(2, {1.5, 1.5});
  EXPECT_EQ(index.nearest({-1.0, -1.0}), 1u);
  EXPECT_EQ(index.nearest({2.0, 2.0}), 2u);
  std::vector<GridIndex::Id> got;
  index.range({-0.5, -0.5}, 0.1, got);
  EXPECT_EQ(got, std::vector<GridIndex::Id>{1});
}

TEST(GridIndex, RemoveMissingThrows) {
  GridIndex index({{0, 0}, {1, 1}}, 16);
  index.insert(1, {0.5, 0.5});
  EXPECT_THROW(index.remove(2, {0.5, 0.5}), ContractError);
}

TEST(GridIndex, NearestOnEmptyThrows) {
  GridIndex index({{0, 0}, {1, 1}}, 16);
  EXPECT_THROW((void)index.nearest({0.5, 0.5}), ContractError);
}

TEST(GridIndex, TieBreaksTowardSmallerId) {
  GridIndex index({{0, 0}, {1, 1}}, 16);
  index.insert(7, {0.25, 0.5});
  index.insert(3, {0.75, 0.5});
  // Exactly equidistant query.
  EXPECT_EQ(index.nearest({0.5, 0.5}), 3u);
}

}  // namespace
}  // namespace voronet::spatial
