// Snapshot save/load round-trip tests.
#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "voronet/overlay.hpp"
#include "workload/distributions.hpp"

namespace voronet {
namespace {

TEST(Snapshot, RoundTripPreservesStructure) {
  OverlayConfig cfg;
  cfg.n_max = 2048;
  cfg.long_links = 2;
  cfg.seed = 1;
  Overlay overlay(cfg);
  Rng rng(1);
  workload::PointGenerator gen(workload::DistributionConfig::power_law(2.0));
  for (int i = 0; i < 300; ++i) overlay.insert(gen.next(rng));
  overlay.check_invariants();

  std::stringstream buffer;
  overlay.save(buffer);
  const auto loaded = Overlay::load(buffer);
  ASSERT_NE(loaded, nullptr);

  EXPECT_EQ(loaded->size(), overlay.size());
  EXPECT_EQ(loaded->config().n_max, overlay.config().n_max);
  EXPECT_EQ(loaded->config().long_links, overlay.config().long_links);
  EXPECT_DOUBLE_EQ(loaded->dmin(), overlay.dmin());
  loaded->check_invariants();

  // Same positions -> same tessellation -> identical edge structure.
  std::size_t edges_a = 0;
  std::size_t edges_b = 0;
  overlay.tessellation().for_each_edge(
      [&](ObjectId, ObjectId) { ++edges_a; });
  loaded->tessellation().for_each_edge(
      [&](ObjectId, ObjectId) { ++edges_b; });
  EXPECT_EQ(edges_a, edges_b);
}

TEST(Snapshot, RoutingBehaviourIsIdentical) {
  OverlayConfig cfg;
  cfg.n_max = 1024;
  cfg.seed = 2;
  Overlay overlay(cfg);
  Rng rng(2);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  for (int i = 0; i < 200; ++i) overlay.insert(gen.next(rng));

  std::stringstream buffer;
  overlay.save(buffer);
  const auto loaded = Overlay::load(buffer);

  // Probes must agree hop-for-hop: the views are position-identified, so
  // compare via positions rather than ids.
  Rng probe_rng(3);
  for (int q = 0; q < 100; ++q) {
    const ObjectId from_a = overlay.random_object(probe_rng);
    const Vec2 from_pos = overlay.position(from_a);
    const Vec2 target{probe_rng.uniform(), probe_rng.uniform()};
    const ObjectId from_b = loaded->tessellation().nearest(from_pos);
    ASSERT_EQ(loaded->position(from_b), from_pos);
    const RouteResult ra = overlay.probe(from_a, target);
    const RouteResult rb = loaded->probe(from_b, target);
    EXPECT_EQ(ra.hops, rb.hops);
    EXPECT_EQ(overlay.position(ra.owner), loaded->position(rb.owner));
  }
}

TEST(Snapshot, LoadedOverlayKeepsOperating) {
  OverlayConfig cfg;
  cfg.n_max = 1024;
  cfg.seed = 4;
  Overlay overlay(cfg);
  Rng rng(4);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  for (int i = 0; i < 150; ++i) overlay.insert(gen.next(rng));

  std::stringstream buffer;
  overlay.save(buffer);
  const auto loaded = Overlay::load(buffer);

  // Joins, leaves and queries proceed normally on the restored overlay.
  for (int i = 0; i < 50; ++i) loaded->insert(gen.next(rng));
  for (int i = 0; i < 20; ++i) {
    loaded->remove(loaded->random_object(rng));
  }
  loaded->query(loaded->random_object(rng), {0.5, 0.5});
  loaded->check_invariants();
  EXPECT_EQ(loaded->size(), 180u);
}

TEST(Snapshot, MalformedInputIsRejected) {
  {
    std::stringstream buffer("not-a-snapshot 1\n");
    EXPECT_THROW(Overlay::load(buffer), std::runtime_error);
  }
  {
    std::stringstream buffer("voronet-snapshot 99\n");
    EXPECT_THROW(Overlay::load(buffer), std::runtime_error);
  }
  {
    std::stringstream buffer(
        "voronet-snapshot 1\nn_max 100 long_links 1 dmin 0x1p-10 seed 1\n"
        "flags 1 1\nobjects 2\n0x1p-1 0x1p-1 0x1p-2 0x1p-2\n");
    // Truncated: second object missing.
    EXPECT_THROW(Overlay::load(buffer), std::runtime_error);
  }
}

TEST(Snapshot, LongLinkAblationRoundTrips) {
  OverlayConfig cfg;
  cfg.n_max = 512;
  cfg.use_long_links = false;  // objects carry no long-link targets
  cfg.seed = 6;
  Overlay overlay(cfg);
  Rng rng(6);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  for (int i = 0; i < 60; ++i) overlay.insert(gen.next(rng));

  std::stringstream buffer;
  overlay.save(buffer);
  const auto loaded = Overlay::load(buffer);
  EXPECT_EQ(loaded->size(), 60u);
  loaded->check_invariants();
  for (const ObjectId o : loaded->objects()) {
    EXPECT_TRUE(loaded->view(o).lr.empty());
  }
}

TEST(Snapshot, EmptyOverlayRoundTrips) {
  OverlayConfig cfg;
  cfg.n_max = 64;
  Overlay overlay(cfg);
  std::stringstream buffer;
  overlay.save(buffer);
  const auto loaded = Overlay::load(buffer);
  EXPECT_EQ(loaded->size(), 0u);
  loaded->insert({0.5, 0.5});
  EXPECT_EQ(loaded->size(), 1u);
}

}  // namespace
}  // namespace voronet
