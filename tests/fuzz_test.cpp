// Tests of the scenario fuzzer: deterministic generation, the
// differential oracle, and the full inject-fault -> detect -> minimize ->
// replay-reproduces loop (ISSUE acceptance: the loop must be provable
// from a fixed seed, with the minimized reproducer surviving a JSON
// round trip).
#include "scenario/fuzz.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/json.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

namespace voronet::scenario {
namespace {

/// A scenario guaranteed to retransmit: base loss plus a loss burst over
/// a join burst.  Used with a tightened OracleLimits (any retransmission
/// violates) to PLANT a deterministic finding -- the fuzzer loop is then
/// provable end to end without depending on a real protocol bug.
Scenario planted_fault() {
  Scenario s;
  s.name = "planted";
  s.population = 48;
  s.seed = 77;
  s.latency = protocol::LatencyModel::fixed(0.01);
  s.loss = 0.2;
  s.timeline = {
      Event::join_burst(0.0, 8, 0.4),
      Event::loss_burst(0.1, 0.3, 0.3),
      Event::query_stream(0.2, 4, 0.4),
  };
  return s;
}

/// The tightened oracle: a single retransmission breaches the ceiling.
OracleLimits no_retransmit_limits() {
  OracleLimits limits;
  limits.max_transfer_attempts = 1.0;
  return limits;
}

TEST(Fuzz, GenerationIsDeterministicAndValid) {
  const FuzzConfig config;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const Scenario a = generate_scenario(seed, config);
    const Scenario b = generate_scenario(seed, config);
    EXPECT_EQ(scenario_to_json(a).str(), scenario_to_json(b).str())
        << "seed " << seed << " generated two different scenarios";
    EXPECT_NO_THROW(validate(a));
    EXPECT_GE(a.population, config.min_population);
    EXPECT_LE(a.population, config.max_population);
    EXPECT_GE(a.timeline.size(), config.min_events);
    EXPECT_EQ(a.seed, seed);
  }
  // Different seeds explore different timelines.
  EXPECT_NE(scenario_to_json(generate_scenario(1, config)).str(),
            scenario_to_json(generate_scenario(2, config)).str());
}

TEST(Fuzz, OracleVerdictIsDeterministic) {
  const Scenario s = generate_scenario(3);
  const Verdict a = run_oracle(s);
  const Verdict b = run_oracle(s);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.violation, b.violation);
}

TEST(Fuzz, OracleAcceptsABenignScenario) {
  Scenario s;
  s.name = "benign";
  s.population = 48;
  s.seed = 9;
  s.latency = protocol::LatencyModel::fixed(0.01);
  s.timeline = {
      Event::join_burst(0.0, 4, 0.3),
      Event::query_stream(0.1, 4, 0.4),
  };
  const Verdict v = run_oracle(s);
  EXPECT_TRUE(v.ok) << v.violation;
}

TEST(Fuzz, OracleFlagsTightenedLimits) {
  // Default limits: the lossy run is within the robustness contract.
  EXPECT_TRUE(run_oracle(planted_fault()).ok);
  // Tightened: the same run violates the planted attempt ceiling.
  const Verdict v = run_oracle(planted_fault(), no_retransmit_limits());
  ASSERT_FALSE(v.ok);
  EXPECT_NE(v.violation.find("transfer attempts"), std::string::npos)
      << v.violation;
}

TEST(Fuzz, MinimizerShrinksAndTheReproducerStillFails) {
  const Scenario s = planted_fault();
  const OracleLimits limits = no_retransmit_limits();
  std::size_t replays = 0;
  const Scenario min = minimize(s, limits, &replays);

  EXPECT_GT(replays, 0u);
  // The populate phase alone retransmits under 20% loss, so every event
  // is removable: ddmin must drive the timeline down to its 1-event
  // floor, and the population shrink must fire too.
  EXPECT_LE(min.timeline.size(), 1u);
  EXPECT_LT(min.population, s.population);
  // The whole point of a minimized reproducer: it still reproduces.
  EXPECT_FALSE(run_oracle(min, limits).ok);
}

TEST(Fuzz, MinimizationIsDeterministic) {
  const OracleLimits limits = no_retransmit_limits();
  const Scenario a = minimize(planted_fault(), limits);
  const Scenario b = minimize(planted_fault(), limits);
  EXPECT_EQ(scenario_to_json(a).str(), scenario_to_json(b).str());
}

TEST(Fuzz, MinimizedReproducerSurvivesAJsonRoundTrip) {
  // The finding is committed as JSON and replayed by CI forever: the
  // violation must survive serialization byte-for-byte.
  const OracleLimits limits = no_retransmit_limits();
  const Scenario min = minimize(planted_fault(), limits);
  const std::string text = scenario_to_json(min).str();
  const Scenario back = scenario_from_json(Json::parse(text));
  EXPECT_EQ(scenario_to_json(back).str(), text);
  EXPECT_FALSE(run_oracle(back, limits).ok);
}

TEST(Fuzz, FuzzRangeDetectsAndMinimizesPlantedFindings) {
  // End-to-end over the range driver: with the tightened oracle every
  // generated timeline that retransmits becomes a finding, is minimized,
  // and both the original and the minimized form replay as violations.
  FuzzConfig config;
  config.min_events = 4;
  config.max_events = 6;
  const OracleLimits limits = no_retransmit_limits();
  const auto findings = fuzz_range(1, 8, config, limits);
  ASSERT_FALSE(findings.empty());
  for (const Finding& f : findings) {
    EXPECT_FALSE(f.violation.empty());
    EXPECT_FALSE(run_oracle(f.scenario, limits).ok);
    EXPECT_FALSE(run_oracle(f.minimized, limits).ok);
    EXPECT_LE(f.minimized.timeline.size(), f.scenario.timeline.size());
    EXPECT_EQ(f.minimized.name,
              "regression_seed" + std::to_string(f.seed));
    EXPECT_GT(f.shrink_replays, 0u);
  }
  // Bit-determinism of the whole sweep (the CI smoke's contract).
  const auto again = fuzz_range(1, 8, config, limits);
  ASSERT_EQ(again.size(), findings.size());
  for (std::size_t i = 0; i < findings.size(); ++i) {
    EXPECT_EQ(again[i].seed, findings[i].seed);
    EXPECT_EQ(again[i].violation, findings[i].violation);
    EXPECT_EQ(scenario_to_json(again[i].minimized).str(),
              scenario_to_json(findings[i].minimized).str());
    EXPECT_EQ(again[i].shrink_replays, findings[i].shrink_replays);
  }
}

TEST(Fuzz, NastinessIsDeterministic) {
  const Scenario s = generate_scenario(5);
  EXPECT_EQ(nastiness(s), nastiness(s));
}

}  // namespace
}  // namespace voronet::scenario
