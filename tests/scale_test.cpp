// Memory-layout regression tests for the million-object refactor
// (DESIGN.md, "Memory layout & arenas").
//
// Three properties hold the refactor together:
//   * transport dedup state is BOUNDED by in_flight() + a constant,
//     whatever the churn (the old per-receiver seen_ sets grew with node
//     lifetime);
//   * a recycled NodeId is a brand-new endpoint: the slot inherits no
//     predecessor views, no dedup state, no flight-recorder ring;
//   * the layout change is pure layout: every committed scenario and
//     regression replays BYTE-IDENTICAL to the golden reports captured
//     before the refactor (scenarios/golden/).
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "protocol/flat_map.hpp"
#include "protocol/harness.hpp"
#include "protocol/view_arena.hpp"
#include "scenario/runner.hpp"
#include "workload/distributions.hpp"

namespace voronet::protocol {
namespace {

HarnessConfig lossy_config() {
  HarnessConfig config;
  config.overlay.n_max = 4096;
  config.overlay.seed = 41;
  config.network.seed = 42;
  config.network.latency = LatencyModel::uniform(0.005, 0.05);
  config.network.drop_probability = 0.15;  // retransmits -> duplicates
  return config;
}

void drain(ProtocolHarness& h, std::size_t* events = nullptr) {
  const auto run = h.run_to_idle();
  ASSERT_FALSE(run.budget_exhausted);
  if (events != nullptr) *events += run.processed;
}

TEST(ScaleInvariants, TransportDedupStaysBoundedUnderChurn) {
  // A >=10k-event churn run under 15% loss: every batch boundary must
  // satisfy dedup_entries() <= in_flight() + kOrphanDedupCapacity.  The
  // pre-refactor transport kept one hash set of seen transfer ids per
  // receiver FOREVER (dedup state grew with node lifetime and survived
  // departures); the bound is what makes a week-long run flat.
  ProtocolHarness h(lossy_config());
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  Rng rng(43);
  std::size_t events = 0;
  const auto check_bound = [&] {
    EXPECT_LE(h.network().dedup_entries(),
              h.network().in_flight() + Transport::kOrphanDedupCapacity);
  };
  for (std::size_t i = 0; i < 120; ++i) {
    h.join_after(0.01 * static_cast<double>(i), gen.next(rng));
  }
  drain(h, &events);
  check_bound();
  for (int batch = 0; batch < 14; ++batch) {
    for (int i = 0; i < 8; ++i) {
      h.join_after(0.01 * i, gen.next(rng));
      h.leave_after(0.02 * i, h.random_node(rng));
    }
    h.crash(h.random_node(rng));
    drain(h, &events);
    check_bound();
    // At idle nothing is in flight, so the dedup state is down to the
    // bounded orphan window alone.
    EXPECT_EQ(h.network().in_flight(), 0u);
    EXPECT_LE(h.network().dedup_window_size(),
              Transport::kOrphanDedupCapacity);
  }
  EXPECT_GE(events, 10000u) << "churn run too small to exercise dedup";
  EXPECT_GT(h.network().stats().duplicates, 0u)
      << "no duplicate arrivals: the dedup path was never exercised";
  EXPECT_TRUE(h.verify_views().converged());
}

TEST(ScaleInvariants, RecycledSlotInheritsNothing) {
  // Crash a node, then grow until the ground truth hands its vertex id
  // to a NEW object: the slot must come back as a fresh occupancy --
  // bumped generation, the new position, views that converge to the new
  // node's authority -- and the flight-recorder ring must not open with
  // the predecessor's last moments.
  HarnessConfig config;
  config.overlay.n_max = 4096;
  config.overlay.seed = 51;
  config.network.seed = 52;
  ProtocolHarness h(config);
  h.recorder().enable(64);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  Rng rng(53);
  for (int i = 0; i < 40; ++i) h.join(gen.next(rng));
  drain(h);

  const NodeId victim = h.random_node(rng);
  const Vec2 old_pos = h.node(victim).position();
  const std::uint32_t old_generation = h.slot_generation(victim);
  h.crash(victim);
  drain(h);
  ASSERT_EQ(h.node_count(), 39u);

  // The recorder saw the victim's crash; remember it so the reset check
  // below is not vacuous.
  const auto crash_events_of = [&](NodeId node) {
    std::size_t n = 0;
    const Json doc = h.recorder().to_json();
    for (const auto& [row_key, row] : doc.at("nodes").children()) {
      if (row.at("node").as_int() != node) continue;
      for (const auto& [ev_key, ev] : row.at("events").children()) {
        if (ev.at("event").as_string() == "crash") ++n;
      }
    }
    return n;
  };
  ASSERT_GE(crash_events_of(victim), 1u);

  // Grow until the victim's id is recycled (the tessellation free-lists
  // vertex ids, so this happens within a handful of joins).
  NodeId recycled = kNoNode;
  for (int i = 0; i < 50 && recycled == kNoNode; ++i) {
    h.join(gen.next(rng));
    drain(h);
    if (h.slot_generation(victim) != old_generation) recycled = victim;
  }
  ASSERT_EQ(recycled, victim) << "vertex id was never recycled";

  EXPECT_EQ(h.slot_generation(victim), old_generation + 1);
  EXPECT_NE(h.node(victim).position(), old_pos)
      << "recycled id kept the predecessor's position";
  // The predecessor's ring died with it: the recycled endpoint's ring
  // holds only new-era events.
  EXPECT_EQ(crash_events_of(victim), 0u)
      << "flight ring survived the recycle";
  // And the fresh occupancy's views converge like any other node's.
  EXPECT_TRUE(h.verify_views().converged());
}

TEST(ScaleInvariants, ViewArenaRecyclesStorage) {
  ViewArena arena;
  ViewSpan a;
  std::vector<ViewEntry> four = {
      {1, {0.1, 0.1}}, {2, {0.2, 0.2}}, {3, {0.3, 0.3}}, {4, {0.4, 0.4}}};
  arena.assign(a, four);
  EXPECT_EQ(arena.live_entries(), 4u);
  const std::uint32_t off = a.off;

  // Same size class: rewritten in place, no new storage.
  std::vector<ViewEntry> three = {{5, {0.5, 0.5}}, {6, {0.6, 0.6}},
                                  {7, {0.7, 0.7}}};
  arena.assign(a, three);
  EXPECT_EQ(a.off, off);
  EXPECT_EQ(arena.live_entries(), 3u);
  ASSERT_EQ(arena.view(a).size(), 3u);
  EXPECT_EQ(arena.view(a)[0].id, 5);

  // Released storage is recycled for the next same-class span.
  arena.release(a);
  EXPECT_FALSE(a.allocated());
  EXPECT_EQ(arena.live_entries(), 0u);
  ViewSpan b;
  arena.assign(b, four);
  EXPECT_EQ(b.off, off) << "free-listed block was not reused";

  // Growing past the class moves to a bigger block; shrink keeps the
  // class, shrink-to-zero releases.
  std::vector<ViewEntry> six(6, ViewEntry{9, {0.9, 0.9}});
  arena.assign(b, six);
  EXPECT_EQ(b.capacity(), 8u);
  arena.shrink(b, 2);
  EXPECT_EQ(arena.view(b).size(), 2u);
  EXPECT_EQ(b.capacity(), 8u);
  arena.shrink(b, 0);
  EXPECT_FALSE(b.allocated());
}

TEST(ScaleInvariants, FlatNodeMapFindsWhatItInserted) {
  FlatNodeMap<std::uint32_t> map;
  EXPECT_EQ(map.find(7), nullptr);
  for (NodeId id = 0; id < 200; id += 2) {
    map.insert(id, static_cast<std::uint32_t>(id * 10));
  }
  EXPECT_EQ(map.size(), 100u);
  for (NodeId id = 0; id < 200; ++id) {
    const std::uint32_t* v = map.find(id);
    if (id % 2 == 0) {
      ASSERT_NE(v, nullptr) << id;
      EXPECT_EQ(*v, static_cast<std::uint32_t>(id * 10));
    } else {
      EXPECT_EQ(v, nullptr) << id;
    }
  }
  map.clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.find(0), nullptr);
}

TEST(ScaleInvariants, FlatNodeMapReserveGrowsPast64kWithoutRehash) {
  // The serving layer's grader pre-sizes one mark per live node; at
  // bench scale that is well past 2^16 entries.  reserve() must jump
  // straight to the final capacity (no intermediate grows), keep every
  // existing entry findable, and leave headroom so the subsequent bulk
  // insert never rehashes.
  constexpr NodeId kEntries = 70'000;  // > 2^16
  FlatNodeMap<std::uint32_t> map;
  for (NodeId id = 0; id < 100; ++id) {
    map.insert(id, static_cast<std::uint32_t>(id + 1));
  }
  map.reserve(static_cast<std::size_t>(kEntries));
  const std::size_t sized = map.bytes();
  // Load factor 3/4 over power-of-two cells: 70k entries need 128k cells.
  EXPECT_GE(sized, (static_cast<std::size_t>(kEntries) * 4 / 3) *
                       (sizeof(NodeId) + sizeof(std::uint32_t)));
  for (NodeId id = 100; id < kEntries; ++id) {
    map.insert(id, static_cast<std::uint32_t>(id + 1));
  }
  EXPECT_EQ(map.bytes(), sized) << "bulk insert after reserve() rehashed";
  EXPECT_EQ(map.size(), static_cast<std::size_t>(kEntries));
  for (NodeId id = 0; id < kEntries; id += 997) {  // sampled probe
    const std::uint32_t* v = map.find(id);
    ASSERT_NE(v, nullptr) << id;
    EXPECT_EQ(*v, static_cast<std::uint32_t>(id + 1));
  }
  ASSERT_NE(map.find(kEntries - 1), nullptr);
  EXPECT_EQ(map.find(kEntries), nullptr);
  // Re-reserving at-or-below the current capacity is a no-op.
  map.reserve(10);
  EXPECT_EQ(map.bytes(), sized);
  EXPECT_EQ(map.size(), static_cast<std::size_t>(kEntries));
}

}  // namespace
}  // namespace voronet::protocol

namespace voronet::scenario {
namespace {

TEST(GoldenReports, CommittedScenariosReplayByteIdentical) {
  // The goldens in scenarios/golden/ are the report JSONs of every
  // committed scenario and regression, captured BEFORE the SoA/arena
  // refactor.  Byte-equality here proves the refactor changed the memory
  // layout and nothing else: same events, same message counts, same
  // query verdicts, same windowed series, digit for digit.
  std::size_t checked = 0;
  for (const auto& entry : std::filesystem::directory_iterator(
           std::string(VORONET_SCENARIO_DIR) + "/golden")) {
    if (!entry.path().string().ends_with(".report.json")) continue;
    const std::string name =
        entry.path().filename().string().substr(
            0, entry.path().filename().string().size() -
                   std::string(".report.json").size());
    std::string scenario_path =
        std::string(VORONET_SCENARIO_DIR) + "/" + name + ".json";
    if (!std::filesystem::exists(scenario_path)) {
      scenario_path = std::string(VORONET_SCENARIO_DIR) + "/regressions/" +
                      name + ".json";
    }
    ASSERT_TRUE(std::filesystem::exists(scenario_path))
        << "golden " << entry.path() << " has no scenario timeline";
    SCOPED_TRACE(scenario_path);

    const Scenario s = load_scenario(scenario_path);
    const Report rep = run_scenario(s);
    // Serialize exactly as scenario_runner --json does (write + newline).
    std::ostringstream got;
    rep.to_json().write(got);
    got << '\n';
    std::ifstream in(entry.path(), std::ios::binary);
    ASSERT_TRUE(in) << "cannot read golden " << entry.path();
    std::ostringstream want;
    want << in.rdbuf();
    EXPECT_EQ(got.str(), want.str())
        << "replay diverged from the pre-refactor golden";
    ++checked;
  }
  EXPECT_GE(checked, 7u) << "expected the committed golden corpus";
}

}  // namespace
}  // namespace voronet::scenario
