// Tests for the common utilities: contracts, RNG, CLI flags, parallel_for.
#include <atomic>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "common/flags.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"

namespace voronet {
namespace {

TEST(Expect, ThrowsWithContext) {
  try {
    VORONET_EXPECT(false, "sample message");
    FAIL() << "should have thrown";
  } catch (const ContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("sample message"), std::string::npos);
    EXPECT_NE(what.find("common_test.cpp"), std::string::npos);
  }
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  Rng c(43);
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 10; ++i) differs |= (a2() != c());
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformMeanAndSpread) {
  Rng rng(2);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.005);
}

TEST(Rng, BelowIsUnbiased) {
  Rng rng(3);
  std::array<int, 7> counts{};
  constexpr int kN = 140000;
  for (int i = 0; i < kN; ++i) ++counts[rng.below(7)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kN, 1.0 / 7.0, 0.01);
  }
  EXPECT_THROW(rng.below(0), ContractError);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(4);
  Rng child = parent.fork();
  // The fork must not replay the parent's stream.
  Rng parent2(4);
  (void)parent2.fork();
  bool differs = false;
  for (int i = 0; i < 10; ++i) differs |= (child() != parent());
  EXPECT_TRUE(differs);
}

TEST(Flags, ParsesAllForms) {
  const char* argv[] = {"prog",       "positional", "--alpha=2.5", "--name",
                        "test",       "--count",    "42",          "--enable"};
  const Flags flags(8, argv);
  EXPECT_DOUBLE_EQ(flags.get_double("alpha", 0.0), 2.5);
  EXPECT_EQ(flags.get_string("name", ""), "test");
  EXPECT_TRUE(flags.get_bool("enable", false));
  EXPECT_EQ(flags.get_int("count", 0), 42);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
}

TEST(Flags, SpaceFormConsumesNextToken) {
  // "--flag value" binds the following non-flag token to the flag; use
  // "--flag=value" when a positional must follow.
  const char* argv[] = {"prog", "--enable", "oops"};
  const Flags flags(3, argv);
  EXPECT_EQ(flags.get_string("enable", ""), "oops");
  EXPECT_TRUE(flags.positional().empty());
}

TEST(Flags, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  const Flags flags(1, argv);
  EXPECT_EQ(flags.get_int("missing", 7), 7);
  EXPECT_FALSE(flags.has("missing"));
}

TEST(Flags, RejectsMalformedValues) {
  const char* argv[] = {"prog", "--n", "abc"};
  const Flags flags(3, argv);
  EXPECT_THROW((void)flags.get_int("n", 0), std::invalid_argument);
}

TEST(Flags, BooleanSpellings) {
  const char* argv[] = {"prog", "--a=true", "--b=0", "--c=yes", "--d=off"};
  const Flags flags(5, argv);
  EXPECT_TRUE(flags.get_bool("a", false));
  EXPECT_FALSE(flags.get_bool("b", true));
  EXPECT_TRUE(flags.get_bool("c", false));
  EXPECT_FALSE(flags.get_bool("d", true));
}

TEST(Flags, UnconsumedDetection) {
  const char* argv[] = {"prog", "--used=1", "--typo=2"};
  const Flags flags(3, argv);
  (void)flags.get_int("used", 0);
  const auto leftover = flags.unconsumed();
  ASSERT_EQ(leftover.size(), 1u);
  EXPECT_EQ(leftover[0], "typo");
  EXPECT_THROW(flags.reject_unconsumed(), std::invalid_argument);
}

TEST(Parallel, CoversTheRangeExactlyOnce) {
  set_parallel_workers(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for_each(0, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  set_parallel_workers(0);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, WorkerIndicesAreDistinct) {
  set_parallel_workers(3);
  std::set<std::size_t> seen_workers;
  std::mutex mu;
  parallel_for(0, 300,
               [&](std::size_t lo, std::size_t hi, std::size_t worker) {
                 (void)lo;
                 (void)hi;
                 const std::lock_guard<std::mutex> lock(mu);
                 seen_workers.insert(worker);
               });
  set_parallel_workers(0);
  EXPECT_LE(seen_workers.size(), 3u);
  EXPECT_GE(seen_workers.size(), 1u);
}

TEST(Parallel, EmptyRangeIsANoop) {
  bool called = false;
  parallel_for(5, 5, [&](std::size_t, std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(Parallel, SingleWorkerRunsInline) {
  set_parallel_workers(1);
  int calls = 0;
  parallel_for(0, 10, [&](std::size_t lo, std::size_t hi, std::size_t w) {
    EXPECT_EQ(w, 0u);
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 10u);
    ++calls;
  });
  set_parallel_workers(0);
  EXPECT_EQ(calls, 1);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  // Busy loop long enough to register.
  volatile double x = 0.0;
  for (int i = 0; i < 2000000; ++i) x = x + 1e-9;
  EXPECT_GT(t.seconds(), 0.0);
  const double before = t.seconds();
  t.reset();
  EXPECT_LE(t.seconds(), before);
}

}  // namespace
}  // namespace voronet
