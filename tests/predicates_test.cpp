// Unit and property tests for the robust predicates, including the
// adversarial near-degenerate inputs that defeat naive double arithmetic.
#include "geometry/predicates.hpp"

#include "geometry/expansion.hpp"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

namespace voronet::geo {
namespace {

TEST(Orient2d, BasicOrientations) {
  EXPECT_GT(orient2d({0, 0}, {1, 0}, {0, 1}), 0);  // CCW
  EXPECT_LT(orient2d({0, 0}, {0, 1}, {1, 0}), 0);  // CW
  EXPECT_EQ(orient2d({0, 0}, {1, 1}, {2, 2}), 0);  // collinear
}

TEST(Orient2d, ExactlyCollinearNonTrivial) {
  // Points on the line y = x/3 using representable coordinates.
  const Vec2 a{3.0, 1.0};
  const Vec2 b{6.0, 2.0};
  const Vec2 c{9.0, 3.0};
  EXPECT_EQ(orient2d(a, b, c), 0);
}

TEST(Orient2d, TinyPerturbationsAreDetected) {
  // c sits on segment (a, b); nudging one coordinate by one ulp must flip
  // the result away from zero in the correct direction.
  const Vec2 a{0.5, 0.5};
  const Vec2 b{12.0, 12.0};
  const Vec2 c{4.0, 4.0};
  ASSERT_EQ(orient2d(a, b, c), 0);
  const Vec2 c_up{4.0, std::nextafter(4.0, 5.0)};
  const Vec2 c_dn{4.0, std::nextafter(4.0, 3.0)};
  EXPECT_EQ(orient2d(a, b, c_up), 1);
  EXPECT_EQ(orient2d(a, b, c_dn), -1);
}

TEST(Orient2d, ShewchukAdversarialGrid) {
  // The classic robustness demo: evaluate orient2d over a tiny grid of
  // points near a degenerate configuration; the exact predicate must be
  // sign-consistent with the long-double evaluation whenever the latter is
  // itself reliable (values far from the rounding noise floor).
  const double base = 0.5;
  int disagreements = 0;
  for (int i = 0; i < 32; ++i) {
    for (int j = 0; j < 32; ++j) {
      const Vec2 a{base + i * 0x1p-53, base + j * 0x1p-53};
      const Vec2 b{12.0, 12.0};
      const Vec2 c{24.0, 24.0};
      const int s = orient2d(a, b, c);
      const long double det =
          (static_cast<long double>(a.x) - c.x) * (b.y - c.y) -
          (static_cast<long double>(a.y) - c.y) * (b.x - c.x);
      // On the diagonal (i == j) the configuration is exactly collinear.
      if (i == j) {
        EXPECT_EQ(s, 0) << i << "," << j;
      } else if (std::abs(static_cast<double>(det)) > 1e-30) {
        const int ref = det > 0 ? 1 : -1;
        if (s != ref) ++disagreements;
      }
    }
  }
  EXPECT_EQ(disagreements, 0);
}

TEST(Orient2d, TranslationInvarianceOfSign) {
  std::mt19937_64 gen(11);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  for (int iter = 0; iter < 500; ++iter) {
    const Vec2 a{dist(gen), dist(gen)};
    const Vec2 b{dist(gen), dist(gen)};
    const Vec2 c{dist(gen), dist(gen)};
    const int s = orient2d(a, b, c);
    // Cyclic permutation preserves orientation; swap negates it.
    EXPECT_EQ(orient2d(b, c, a), s);
    EXPECT_EQ(orient2d(c, a, b), s);
    EXPECT_EQ(orient2d(b, a, c), -s);
  }
}

TEST(Incircle, BasicInOut) {
  // Unit circle through (1,0), (0,1), (-1,0): CCW order.
  const Vec2 a{1, 0};
  const Vec2 b{0, 1};
  const Vec2 c{-1, 0};
  EXPECT_GT(incircle(a, b, c, {0.0, 0.0}), 0);   // centre: inside
  EXPECT_LT(incircle(a, b, c, {2.0, 0.0}), 0);   // far: outside
  EXPECT_EQ(incircle(a, b, c, {0.0, -1.0}), 0);  // on the circle
}

TEST(Incircle, CocircularGridPoints) {
  // Four corners of a square are cocircular: the incircle determinant of
  // any three with the fourth must be exactly zero.
  const Vec2 p00{0, 0};
  const Vec2 p10{1, 0};
  const Vec2 p11{1, 1};
  const Vec2 p01{0, 1};
  EXPECT_EQ(incircle(p00, p10, p11, p01), 0);
  EXPECT_EQ(incircle(p10, p11, p01, p00), 0);
}

TEST(Incircle, OneUlpResolution) {
  const Vec2 a{1, 0};
  const Vec2 b{0, 1};
  const Vec2 c{-1, 0};
  const Vec2 just_in{0.0, std::nextafter(-1.0, 0.0)};
  const Vec2 just_out{0.0, std::nextafter(-1.0, -2.0)};
  EXPECT_GT(incircle(a, b, c, just_in), 0);
  EXPECT_LT(incircle(a, b, c, just_out), 0);
}

TEST(Incircle, SymmetryUnderCyclicPermutation) {
  std::mt19937_64 gen(13);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  for (int iter = 0; iter < 300; ++iter) {
    Vec2 a{dist(gen), dist(gen)};
    Vec2 b{dist(gen), dist(gen)};
    Vec2 c{dist(gen), dist(gen)};
    const Vec2 d{dist(gen), dist(gen)};
    if (orient2d(a, b, c) < 0) std::swap(b, c);
    if (orient2d(a, b, c) == 0) continue;
    const int s = incircle(a, b, c, d);
    EXPECT_EQ(incircle(b, c, a, d), s);
    EXPECT_EQ(incircle(c, a, b, d), s);
  }
}

TEST(Incircle, MatchesNaiveWhenWellConditioned) {
  std::mt19937_64 gen(17);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  for (int iter = 0; iter < 500; ++iter) {
    Vec2 a{dist(gen), dist(gen)};
    Vec2 b{dist(gen), dist(gen)};
    Vec2 c{dist(gen), dist(gen)};
    const Vec2 d{dist(gen), dist(gen)};
    if (orient2d(a, b, c) <= 0) std::swap(b, c);
    if (orient2d(a, b, c) <= 0) continue;
    const long double adx = a.x - d.x;
    const long double ady = a.y - d.y;
    const long double bdx = b.x - d.x;
    const long double bdy = b.y - d.y;
    const long double cdx = c.x - d.x;
    const long double cdy = c.y - d.y;
    const long double det =
        (adx * adx + ady * ady) * (bdx * cdy - cdx * bdy) +
        (bdx * bdx + bdy * bdy) * (cdx * ady - adx * cdy) +
        (cdx * cdx + cdy * cdy) * (adx * bdy - bdx * ady);
    if (std::abs(static_cast<double>(det)) > 1e-25) {
      EXPECT_EQ(incircle(a, b, c, d), det > 0 ? 1 : -1);
    }
  }
}

TEST(Circumcenter, EquidistantFromVertices) {
  const Vec2 a{0.1, 0.2};
  const Vec2 b{0.9, 0.3};
  const Vec2 c{0.4, 0.8};
  const Vec2 cc = circumcenter(a, b, c);
  const double da = dist(cc, a);
  EXPECT_NEAR(da, dist(cc, b), 1e-12);
  EXPECT_NEAR(da, dist(cc, c), 1e-12);
}

TEST(SegmentOps, ClosestPointClamps) {
  const Vec2 a{0, 0};
  const Vec2 b{1, 0};
  EXPECT_EQ(closest_point_on_segment(a, b, {0.5, 1.0}), (Vec2{0.5, 0.0}));
  EXPECT_EQ(closest_point_on_segment(a, b, {-1.0, 1.0}), a);
  EXPECT_EQ(closest_point_on_segment(a, b, {2.0, -1.0}), b);
}

TEST(SegmentOps, DegenerateSegmentIsAPoint) {
  const Vec2 a{0.3, 0.4};
  EXPECT_EQ(closest_point_on_segment(a, a, {1.0, 1.0}), a);
}

TEST(SegmentOps, IntersectionCases) {
  // Proper crossing.
  EXPECT_TRUE(segments_intersect({0, 0}, {1, 1}, {0, 1}, {1, 0}));
  // Disjoint.
  EXPECT_FALSE(segments_intersect({0, 0}, {1, 0}, {0, 1}, {1, 1}));
  // Shared endpoint.
  EXPECT_TRUE(segments_intersect({0, 0}, {1, 0}, {1, 0}, {2, 5}));
  // Collinear overlapping.
  EXPECT_TRUE(segments_intersect({0, 0}, {2, 0}, {1, 0}, {3, 0}));
  // Collinear disjoint.
  EXPECT_FALSE(segments_intersect({0, 0}, {1, 0}, {2, 0}, {3, 0}));
  // T-junction (endpoint interior to the other segment).
  EXPECT_TRUE(segments_intersect({0, 0}, {2, 0}, {1, 0}, {1, 1}));
}

TEST(SegmentOps, OnSegment) {
  EXPECT_TRUE(on_segment({0, 0}, {2, 2}, {1, 1}));
  EXPECT_TRUE(on_segment({0, 0}, {2, 2}, {0, 0}));
  EXPECT_FALSE(on_segment({0, 0}, {2, 2}, {3, 3}));
  EXPECT_FALSE(on_segment({0, 0}, {2, 2}, {1.0, 1.5}));
}

TEST(PredicateStats, AdaptiveStagesAreCounted) {
  reset_predicate_stats();
  // Well-conditioned: the stage-A filter succeeds.
  orient2d({0, 0}, {1, 0}, {0, 1});
  auto s = predicate_stats();
  EXPECT_EQ(s.orient_calls, 1u);
  EXPECT_EQ(s.orient_adapt, 0u);
  EXPECT_EQ(s.orient_exact, 0u);
  // Exactly degenerate with exactly representable translations: the
  // adaptive stage decides (zero tails) without the full exact fallback.
  EXPECT_EQ(orient2d({0.5, 0.5}, {12.0, 12.0}, {4.0, 4.0}), 0);
  s = predicate_stats();
  EXPECT_EQ(s.orient_adapt, 1u);
  EXPECT_EQ(s.orient_exact, 0u);
  // Exactly degenerate with roundoff in the translations (1e-20 - 3.0
  // rounds, leaving a nonzero tail): only the full exact stage can
  // certify the zero.
  EXPECT_EQ(orient2d({1e-20, 1e-20}, {1.0, 1.0}, {3.0, 3.0}), 0);
  s = predicate_stats();
  EXPECT_EQ(s.orient_adapt, 2u);
  EXPECT_EQ(s.orient_exact, 1u);
}

// ---------------------------------------------------------------------------
// Adaptive-stage validation: the staged predicates must agree with a
// from-scratch exact expansion evaluation of the original coordinates on
// random, adversarial (collinear / cocircular) and ulp-perturbed inputs.
// ---------------------------------------------------------------------------

/// Exact orient2d oracle built directly on the public expansion API:
/// ax*by - ax*cy + ay*cx - ay*bx + bx*cy - by*cx, fully expanded.
int orient2d_oracle(Vec2 a, Vec2 b, Vec2 c) {
  const auto t1 = Expansion<2>::product(a.x, b.y) -
                  Expansion<2>::product(a.x, c.y);
  const auto t2 = Expansion<2>::product(a.y, c.x) -
                  Expansion<2>::product(a.y, b.x);
  const auto t3 = Expansion<2>::product(b.x, c.y) -
                  Expansion<2>::product(b.y, c.x);
  return ((t1 + t2) + t3).sign();
}

/// Exact incircle oracle: expansion evaluation of the 4x4 lifted
/// determinant from the original coordinates.
int incircle_oracle(Vec2 a, Vec2 b, Vec2 c, Vec2 d) {
  const auto cross = [](Vec2 u, Vec2 v) {
    return Expansion<2>::product(u.x, v.y) - Expansion<2>::product(u.y, v.x);
  };
  const auto lift = [](Vec2 u) {
    return Expansion<2>::product(u.x, u.x) + Expansion<2>::product(u.y, u.y);
  };
  const auto ab = cross(a, b);
  const auto ac = cross(a, c);
  const auto ad = cross(a, d);
  const auto bc = cross(b, c);
  const auto bd = cross(b, d);
  const auto cd = cross(c, d);
  const auto m_bcd = (lift(b) * cd - lift(c) * bd) + lift(d) * bc;
  const auto m_acd = (lift(a) * cd - lift(c) * ad) + lift(d) * ac;
  const auto m_abd = (lift(a) * bd - lift(b) * ad) + lift(d) * ab;
  const auto m_abc = (lift(a) * bc - lift(b) * ac) + lift(c) * ab;
  return ((m_acd - m_bcd) + (m_abc - m_abd)).sign();
}

TEST(Orient2dAdaptive, AgreesWithExactOracleOnPerturbedCollinear) {
  std::mt19937_64 gen(101);
  std::uniform_real_distribution<double> coord(0.0, 1.0);
  std::uniform_real_distribution<double> along(-0.5, 1.5);
  const double deltas[] = {0.0,      0x1p-30,  -0x1p-30, 0x1p-45,
                           -0x1p-45, 0x1p-53,  -0x1p-53, 0x1p-60};
  for (int iter = 0; iter < 2000; ++iter) {
    const Vec2 a{coord(gen), coord(gen)};
    const Vec2 b{coord(gen), coord(gen)};
    const double t = along(gen);
    const double delta = deltas[iter % (sizeof(deltas) / sizeof(deltas[0]))];
    // c on (or within delta of) the line through a and b.
    const Vec2 c{a.x + t * (b.x - a.x) - delta * (b.y - a.y),
                 a.y + t * (b.y - a.y) + delta * (b.x - a.x)};
    EXPECT_EQ(orient2d(a, b, c), orient2d_oracle(a, b, c))
        << "a=(" << a.x << "," << a.y << ") b=(" << b.x << "," << b.y
        << ") c=(" << c.x << "," << c.y << ")";
  }
}

TEST(IncircleAdaptive, AgreesWithExactOracleOnPerturbedCocircular) {
  std::mt19937_64 gen(103);
  std::uniform_real_distribution<double> angle(0.0, 6.283185307179586);
  std::uniform_real_distribution<double> coord(0.25, 0.75);
  const double deltas[] = {0.0,      0x1p-30, -0x1p-30, 0x1p-45,
                           -0x1p-45, 0x1p-53, -0x1p-53, 0x1p-60};
  for (int iter = 0; iter < 1000; ++iter) {
    const Vec2 center{coord(gen), coord(gen)};
    const double r = 0.1 + 0.2 * coord(gen);
    const auto on_circle = [&](double theta, double dr) {
      return Vec2{center.x + (r + dr) * std::cos(theta),
                  center.y + (r + dr) * std::sin(theta)};
    };
    // Three CCW-ordered circle points and a fourth within delta of it.
    double t0 = angle(gen);
    double t1 = t0 + 0.5 + angle(gen) / 4.0;
    double t2 = t1 + 0.5 + angle(gen) / 4.0;
    Vec2 a = on_circle(t0, 0.0);
    Vec2 b = on_circle(t1, 0.0);
    Vec2 c = on_circle(t2, 0.0);
    if (orient2d(a, b, c) < 0) std::swap(b, c);
    if (orient2d(a, b, c) <= 0) continue;
    const double delta = deltas[iter % (sizeof(deltas) / sizeof(deltas[0]))];
    const Vec2 d = on_circle(angle(gen), delta);
    EXPECT_EQ(incircle(a, b, c, d), incircle_oracle(a, b, c, d))
        << "d=(" << d.x << "," << d.y << ") delta=" << delta;
  }
}

TEST(IncircleAdaptive, RectangleCornersNeedTheExactStage) {
  // Any rectangle is cyclic, so its corners are exactly cocircular; with
  // 0.1-style coordinates the translations round, which defeats stages B
  // and C -- only the full exact stage can certify the zero.
  reset_predicate_stats();
  EXPECT_EQ(incircle({0.1, 0.1}, {0.9, 0.1}, {0.9, 0.9}, {0.1, 0.9}), 0);
  const auto s = predicate_stats();
  EXPECT_EQ(s.incircle_adapt, 1u);
  EXPECT_EQ(s.incircle_exact, 1u);
}

TEST(PredicateStats, RandomWorkloadsNeverLeaveTheFilter) {
  // The acceptance bar for the hot path: on generic inputs the stage-A
  // filter decides everything; the adaptive machinery is pure insurance.
  std::mt19937_64 gen(107);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  reset_predicate_stats();
  for (int iter = 0; iter < 5000; ++iter) {
    const Vec2 a{dist(gen), dist(gen)};
    const Vec2 b{dist(gen), dist(gen)};
    Vec2 c{dist(gen), dist(gen)};
    const Vec2 d{dist(gen), dist(gen)};
    orient2d(a, b, c);
    if (orient2d(a, b, c) < 0) std::swap(c.x, c.y);
    if (orient2d(a, b, c) > 0) incircle(a, b, c, d);
  }
  const auto s = predicate_stats();
  EXPECT_EQ(s.orient_exact, 0u);
  EXPECT_EQ(s.incircle_exact, 0u);
  EXPECT_LE(s.orient_adapt, 5u);
  EXPECT_LE(s.incircle_adapt, 5u);
}

}  // namespace
}  // namespace voronet::geo
