// Transport conformance: the seam contract, proven against BOTH backends.
//
// Every test in this file runs twice -- once over SimTransport (the
// deterministic event-queue simulation) and once over ThreadTransport
// (real shard threads, monotonic-clock deadlines).  The assertions are
// the transport contract of protocol/transport.hpp: exactly-once
// delivery under loss and duplication, bounded dedup state, capped
// retransmission with give-up, stall parking, and crash/revive residue
// clearing.  Where a quantity is scheduling-dependent (which copy wins a
// duplicate race) the tests assert the invariant, not the schedule;
// where it is schedule-independent (wire attempt counts under total
// loss) they pin the exact number on both backends.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "net/socket_transport.hpp"
#include "protocol/sim_transport.hpp"
#include "protocol/thread_transport.hpp"

namespace voronet::protocol {
namespace {

enum class Backend { kSim, kThread, kSocket };

class TransportConformance : public ::testing::TestWithParam<Backend> {
 protected:
  static std::unique_ptr<Transport> make(const NetworkConfig& config) {
    if (GetParam() == Backend::kThread) {
      return std::make_unique<ThreadTransport>(config, /*shards=*/2,
                                               /*patience=*/30.0);
    }
    if (GetParam() == Backend::kSocket) {
      // Loopback over a Unix-domain socket: every frame and ack crosses
      // the kernel and comes back in through accept().
      net::SocketTransportConfig socket_config;
      socket_config.patience = 30.0;
      return std::make_unique<net::SocketTransport>(config,
                                                    std::move(socket_config));
    }
    return std::make_unique<SimTransport>(config);
  }

  /// Let real time pass until `done` holds (sim: the condition must
  /// already hold -- run_* calls advance virtual time, not this).
  template <typename Pred>
  static void await(Transport& t, Pred done) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!done()) {
      ASSERT_FALSE(t.deterministic())
          << "sim transport must satisfy the condition synchronously";
      ASSERT_LT(std::chrono::steady_clock::now(), deadline);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
};

NetworkConfig fast_config() {
  NetworkConfig config;
  // Wall-clock-scaled wires: the thread backend really waits these out.
  config.latency = LatencyModel::uniform(0.0005, 0.002);
  return config;
}

TEST_P(TransportConformance, DeliversEveryMessageExactlyOnceUnderLoss) {
  NetworkConfig config = fast_config();
  config.drop_probability = 0.3;
  auto t = make(config);

  std::map<std::uint64_t, int> seen;  // version -> deliveries
  t->set_sink([&](const Message& m) { ++seen[m.version]; });
  t->set_abandon_handler([](const Message&) { FAIL() << "nothing may fail"; });

  constexpr std::uint64_t kMessages = 200;
  for (std::uint64_t i = 0; i < kMessages; ++i) {
    Message m = t->draft();
    m.type = sim::MessageKind::kVoronoiUpdate;
    m.src = static_cast<NodeId>(i % 8);
    m.dst = static_cast<NodeId>((i + 1) % 8);
    m.version = i;
    t->send(std::move(m));
  }
  const auto run = t->run_to_idle();
  ASSERT_FALSE(run.budget_exhausted) << "backend: " << t->backend_name();

  ASSERT_EQ(seen.size(), kMessages);
  for (const auto& [version, count] : seen) {
    EXPECT_EQ(count, 1) << "version " << version << " on "
                        << t->backend_name();
  }
  EXPECT_EQ(t->in_flight(), 0u);
  EXPECT_EQ(t->stats().delivered, kMessages);
  EXPECT_GT(t->stats().retransmits, 0u) << "30% loss must retransmit";
}

TEST_P(TransportConformance, DedupSuppressesDuplicatesWithinBoundedWindow) {
  NetworkConfig config = fast_config();
  config.drop_probability = 0.2;
  auto t = make(config);

  std::map<std::uint64_t, int> seen;
  t->set_sink([&](const Message& m) { ++seen[m.version]; });
  t->set_abandon_handler([](const Message&) { FAIL() << "nothing may fail"; });

  t->begin_duplication(1.0);  // every wire attempt ships a copy
  constexpr std::uint64_t kMessages = 100;
  for (std::uint64_t i = 0; i < kMessages; ++i) {
    Message m = t->draft();
    m.type = sim::MessageKind::kCloseNeighbor;
    m.src = static_cast<NodeId>(i % 4);
    m.dst = static_cast<NodeId>(4 + i % 4);
    m.version = i;
    t->send(std::move(m));
  }
  const auto run = t->run_to_idle();
  t->end_duplication(1.0);
  ASSERT_FALSE(run.budget_exhausted);

  // Under injected duplication the contract is at-least-once: a copy
  // still in flight when the ack settles may re-deliver (the settle
  // prunes the orphan record -- see Network::arrive), and the layer
  // above is idempotent.  What the transport DOES guarantee: every
  // message arrives, the dedup machinery visibly suppresses the bulk of
  // the copies, and its state stays bounded.
  ASSERT_EQ(seen.size(), kMessages);
  for (const auto& [version, count] : seen) {
    EXPECT_GE(count, 1) << "version " << version << " on "
                        << t->backend_name();
  }
  EXPECT_GT(t->stats().injected_duplicates, 0u);
  EXPECT_GT(t->stats().duplicates, 0u) << "copies must hit the dedup";
  EXPECT_LT(t->stats().delivered,
            kMessages + t->stats().duplicates)
      << "dedup must suppress copies, not deliver everything";
  // The dedup invariant: per-transfer bits die with their slot, orphan
  // records live in a fixed ring -- never unbounded growth.
  EXPECT_LE(t->dedup_entries(),
            t->in_flight() + Transport::kOrphanDedupCapacity);
  EXPECT_LE(t->dedup_window_size(), Transport::kOrphanDedupCapacity);
}

TEST_P(TransportConformance, RetransmitsWithBackoffThenGivesUpUnderTotalLoss) {
  NetworkConfig config;
  config.latency = LatencyModel::fixed(0.001);
  config.max_retries = 2;
  auto t = make(config);
  // A dead link (filter, not probability: deterministic on both
  // backends, and drop_probability must stay < 1): nothing ever arrives.
  t->set_link_filter([](NodeId, NodeId) { return false; });

  std::size_t delivered = 0;
  std::vector<Message> abandoned;
  t->set_sink([&](const Message&) { ++delivered; });
  t->set_abandon_handler([&](const Message& m) { abandoned.push_back(m); });

  for (int i = 0; i < 3; ++i) {
    Message m = t->draft();
    m.type = sim::MessageKind::kVoronoiUpdate;
    m.src = 1;
    m.dst = 2;
    m.version = static_cast<std::uint64_t>(i);
    t->send(std::move(m));
  }
  const auto run = t->run_to_idle();
  ASSERT_FALSE(run.budget_exhausted);

  // Schedule-independent exact counts: each transfer makes max_retries+1
  // wire attempts (no acks exist -- nothing arrived), then gives up.
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(abandoned.size(), 3u);
  EXPECT_EQ(t->stats().abandoned, 3u);
  EXPECT_EQ(t->stats().retransmits, 6u);
  EXPECT_EQ(t->stats().transmissions, 9u);
  EXPECT_EQ(t->stats().acks, 0u);
  EXPECT_EQ(t->in_flight(), 0u);
  // Backoff: the second retransmission of each transfer waited at least
  // backoff_factor times the base RTO (minus the jitter band), so the
  // clock must show the widened window, not max_retries fixed RTOs.
  const double rto = t->retransmit_timeout();
  EXPECT_GE(t->now(), rto * (1.0 + config.backoff_factor) *
                          (1.0 - config.jitter / 2.0));
}

TEST_P(TransportConformance, StallParksArrivalsAndResumeDeliversOnce) {
  NetworkConfig config;
  config.latency = LatencyModel::fixed(0.001);
  auto t = make(config);

  std::size_t delivered = 0;
  t->set_sink([&](const Message&) { ++delivered; });
  t->set_abandon_handler([](const Message&) { FAIL() << "nothing may fail"; });

  t->stall(7);
  for (int i = 0; i < 3; ++i) {
    Message m = t->draft();
    m.type = sim::MessageKind::kLongLinkBind;
    m.src = 1;
    m.dst = 7;
    m.version = static_cast<std::uint64_t>(i);
    t->send(std::move(m));
  }
  // Let the arrivals park (latency 0.001, first retransmit no earlier
  // than ~0.0105).  A stalled host receives the packet but cannot run
  // its handler -- so no ack, and the transfers stay unsettled: from the
  // sender this is indistinguishable from a crash.
  (void)t->run_until(0.002);
  await(*t, [&] { return t->stalled_backlog() == 3; });
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(t->in_flight(), 3u) << "no ack from a wedged process";
  EXPECT_EQ(t->stats().stalled_deferred, 3u);
  EXPECT_TRUE(t->stalled(7));

  // Resume well inside the first retransmit window: the park buffer
  // drains in arrival order, each delivery acks, and every transfer
  // settles before its timer can fire -- exactly one delivery each.
  t->resume(7);
  const auto drained = t->run_to_idle();
  ASSERT_FALSE(drained.budget_exhausted);
  EXPECT_EQ(delivered, 3u);
  EXPECT_EQ(t->in_flight(), 0u);
  EXPECT_EQ(t->stalled_backlog(), 0u);
  EXPECT_FALSE(t->stalled(7));
}

TEST_P(TransportConformance, ReviveClearsPredecessorEraResidueOnBothSides) {
  NetworkConfig config;
  config.latency = LatencyModel::fixed(0.05);
  auto t = make(config);

  std::size_t delivered = 0;
  std::vector<Message> abandoned;
  t->set_sink([&](const Message&) { ++delivered; });
  t->set_abandon_handler([&](const Message& m) { abandoned.push_back(m); });

  // Receiver side: 1 -> 2 in flight when 2 crashes.  Sender side: a
  // transfer armed BY the victim (self-addressed: dies with it).
  Message to_victim = t->draft();
  to_victim.type = sim::MessageKind::kVoronoiUpdate;
  to_victim.src = 1;
  to_victim.dst = 2;
  t->send(std::move(to_victim));
  Message from_victim = t->draft();
  from_victim.type = sim::MessageKind::kCloseNeighbor;
  from_victim.src = 2;
  from_victim.dst = 2;
  t->send(std::move(from_victim));
  t->crash(2);

  // Let the arrivals reach the dead endpoint (sim: deterministic at
  // t=0.05; thread: wall clock plus a scheduling grace).
  (void)t->run_until(0.06);
  await(*t, [&] { return t->stats().dropped >= 2; });
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(t->in_flight(), 2u);

  // Recycle the id before the retransmit timers fire: both
  // predecessor-era transfers must be abandoned NOW, and the abandon
  // handler must still see the crashed mark (it decides failover).
  ASSERT_TRUE(t->crashed(2));
  t->revive(2);
  EXPECT_FALSE(t->crashed(2));
  EXPECT_EQ(t->in_flight(), 0u);
  ASSERT_EQ(abandoned.size(), 2u);
  EXPECT_EQ(t->stats().abandoned, 2u);

  // Nothing stale reaches the new endpoint; stale timers are no-ops.
  const auto run = t->run_to_idle();
  ASSERT_FALSE(run.budget_exhausted);
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(t->stats().retransmits, 0u);

  // The recycled endpoint serves fresh traffic normally.
  Message fresh = t->draft();
  fresh.type = sim::MessageKind::kVoronoiUpdate;
  fresh.src = 1;
  fresh.dst = 2;
  t->send(std::move(fresh));
  const auto fresh_run = t->run_to_idle();
  ASSERT_FALSE(fresh_run.budget_exhausted);
  EXPECT_EQ(delivered, 1u);
}

TEST_P(TransportConformance, DraftReservePathPresizesAndRecyclesPayloads) {
  auto t = make(fast_config());
  std::size_t delivered = 0;
  t->set_sink([&](const Message&) { ++delivered; });

  // The reserve path: a drafted message arrives pre-sized, so the hot
  // send loop never grows a payload vector mid-append.
  Message m = t->draft(/*reserve_entries=*/64);
  EXPECT_GE(m.entries.capacity(), 64u);
  for (int i = 0; i < 48; ++i) {
    m.entries.push_back(ViewEntry{static_cast<NodeId>(i), Vec2{0.1, 0.2}});
  }
  m.type = sim::MessageKind::kVoronoiUpdate;
  m.src = 3;
  m.dst = 4;
  t->send(std::move(m));
  const auto run = t->run_to_idle();
  ASSERT_FALSE(run.budget_exhausted);
  EXPECT_EQ(delivered, 1u);

  // Settling the transfer recycled its payload into the pool: the next
  // draft reuses that capacity instead of allocating.
  Message again = t->draft();
  EXPECT_GT(again.entries.capacity(), 0u)
      << "draft() after a settled send must reuse the pooled payload";
}

INSTANTIATE_TEST_SUITE_P(Backends, TransportConformance,
                         ::testing::Values(Backend::kSim, Backend::kThread,
                                           Backend::kSocket),
                         [](const auto& info) {
                           switch (info.param) {
                             case Backend::kSim:
                               return "sim";
                             case Backend::kThread:
                               return "thread";
                             case Backend::kSocket:
                               return "socket";
                           }
                           return "unknown";
                         });

}  // namespace
}  // namespace voronet::protocol
