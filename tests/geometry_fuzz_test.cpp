// Torture fuzzing for the tessellation kernel: adversarial point patterns
// (lattices, collinear rows, cocircular rings, microscopic clusters,
// on-edge insertions) under interleaved insert/delete churn, with the full
// structural audit after every phase.
#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "geometry/delaunay.hpp"
#include "geometry/predicates.hpp"

namespace voronet::geo {
namespace {

using VertexId = DelaunayTriangulation::VertexId;

class GeometryFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeometryFuzz, MixedAdversarialPatterns) {
  DelaunayTriangulation dt;
  Rng rng(GetParam());
  std::vector<VertexId> live;

  const auto insert = [&](Vec2 p) {
    const auto out = dt.insert(p);
    if (out.created) live.push_back(out.vertex);
  };
  const auto remove_random = [&](std::size_t count) {
    for (std::size_t i = 0; i < count && !live.empty(); ++i) {
      const std::size_t pick = rng.index(live.size());
      dt.remove(live[pick]);
      live[pick] = live.back();
      live.pop_back();
    }
  };

  // Phase 1: exact lattice (maximal cocircularity).
  for (int i = 0; i < 7; ++i) {
    for (int j = 0; j < 7; ++j) {
      insert({i * 0.125, j * 0.125});
    }
  }
  dt.validate();

  // Phase 2: collinear rows crossing the lattice.
  for (int i = 0; i < 9; ++i) insert({i * 0.1, 0.4375});
  for (int i = 0; i < 9; ++i) insert({0.4375, i * 0.1});
  dt.validate();

  // Phase 3: microscopic cluster (double-precision-adjacent points).
  const Vec2 c{0.333333333333, 0.666666666666};
  for (int i = 0; i < 12; ++i) {
    insert({c.x + i * 0x1p-48, c.y + (i % 3) * 0x1p-48});
  }
  dt.validate();

  // Phase 4: exact midpoints of existing collinear edges (on-edge
  // insertions).
  std::vector<std::pair<VertexId, VertexId>> edges;
  dt.for_each_edge([&](VertexId a, VertexId b) { edges.emplace_back(a, b); });
  int on_edge = 0;
  for (const auto& [a, b] : edges) {
    const Vec2 pa = dt.position(a);
    const Vec2 pb = dt.position(b);
    const Vec2 mid{(pa.x + pb.x) / 2.0, (pa.y + pb.y) / 2.0};
    if (orient2d(pa, pb, mid) == 0) {
      insert(mid);
      if (++on_edge == 10) break;
    }
  }
  EXPECT_GT(on_edge, 0) << "lattice must provide exact on-edge midpoints";
  dt.validate();

  // Phase 5: deletion storm, then rebuild pressure.
  remove_random(live.size() / 2);
  dt.validate();
  for (int i = 0; i < 40; ++i) insert({rng.uniform(), rng.uniform()});
  remove_random(live.size() / 3);
  dt.validate();

  // Phase 6: drain almost everything (exercises the pending-mode
  // collapse), then regrow.
  remove_random(live.size() > 2 ? live.size() - 2 : 0);
  dt.validate();
  for (int i = 0; i < 30; ++i) insert({rng.uniform(), rng.uniform()});
  dt.validate();
  EXPECT_EQ(dt.size(), live.size());
}

TEST_P(GeometryFuzz, CocircularRingChurn) {
  // Points on an exact circle (radius-5 Pythagorean points scaled):
  // (3,4), (4,3), (5,0), ... all at distance 5 from the origin.
  DelaunayTriangulation dt;
  Rng rng(GetParam() ^ 0x1234ull);
  const std::vector<Vec2> ring{{3, 4},  {4, 3},  {5, 0},  {4, -3},
                               {3, -4}, {0, -5}, {-3, -4}, {-4, -3},
                               {-5, 0}, {-4, 3}, {-3, 4},  {0, 5}};
  std::vector<VertexId> ids;
  for (const Vec2 p : ring) ids.push_back(dt.insert(p).vertex);
  dt.validate();

  // Insert the centre (equidistant from every ring point), delete it,
  // repeat with churn on ring vertices.
  for (int round = 0; round < 6; ++round) {
    const auto center = dt.insert({0, 0});
    dt.validate();
    dt.remove(center.vertex);
    dt.validate();
    const std::size_t pick = rng.index(ids.size());
    const Vec2 pos = dt.position(ids[pick]);
    dt.remove(ids[pick]);
    dt.validate();
    ids[pick] = dt.insert(pos).vertex;
    dt.validate();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeometryFuzz,
                         ::testing::Values(11ull, 22ull, 33ull, 44ull));

}  // namespace
}  // namespace voronet::geo
