// Tests for the statistics toolkit used by the benchmark harness.
#include "stats/histogram.hpp"
#include "stats/linefit.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

#include <array>
#include <sstream>

#include <gtest/gtest.h>

namespace voronet::stats {
namespace {

TEST(StreamingSummary, KnownMoments) {
  StreamingSummary s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(StreamingSummary, MergeEqualsSingleStream) {
  StreamingSummary a;
  StreamingSummary b;
  StreamingSummary whole;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.37 - 3.0;
    (i % 2 ? a : b).add(x);
    whole.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
}

TEST(StreamingSummary, MergeWithEmpty) {
  StreamingSummary a;
  a.add(1.0);
  StreamingSummary empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(OfflineSummary, Quantiles) {
  OfflineSummary s;
  for (int i = 100; i >= 1; --i) s.add(i);
  EXPECT_EQ(s.count(), 100u);
  // Nearest-rank convention: the true median 50.5 is not a sample.
  EXPECT_NEAR(s.median(), 50.5, 0.6);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.quantile(0.9), 90.0, 1.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(IntHistogram, CountsAndMoments) {
  IntHistogram h;
  for (const std::size_t v : {3u, 3u, 3u, 5u, 6u, 6u}) h.add(v);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.count(3), 3u);
  EXPECT_EQ(h.count(4), 0u);
  EXPECT_EQ(h.count(99), 0u);
  EXPECT_EQ(h.mode(), 3u);
  EXPECT_NEAR(h.mean(), 26.0 / 6.0, 1e-12);
  EXPECT_EQ(h.max_value(), 6u);
}

TEST(IntHistogram, Merge) {
  IntHistogram a;
  IntHistogram b;
  a.add(1);
  a.add(2);
  b.add(2);
  b.add(9);
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.count(2), 2u);
  EXPECT_EQ(a.count(9), 1u);
}

TEST(BinnedHistogram, BinningAndOverflow) {
  BinnedHistogram h(0.0, 10.0, 5);
  h.add(0.0);
  h.add(1.99);
  h.add(5.0);
  h.add(9.999);
  h.add(-1.0);
  h.add(10.0);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_DOUBLE_EQ(h.bin_low(2), 4.0);
}

TEST(LineFit, ExactLine) {
  const std::array<double, 4> xs{1.0, 2.0, 3.0, 4.0};
  const std::array<double, 4> ys{3.0, 5.0, 7.0, 9.0};
  const LineFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LineFit, NoisyLineStillCloses) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(0.5 * i + 2.0 + ((i % 2) ? 0.1 : -0.1));
  }
  const LineFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 0.5, 0.01);
  EXPECT_GT(fit.r2, 0.99);
}

TEST(LineFit, RejectsDegenerateInput) {
  const std::array<double, 1> one{1.0};
  EXPECT_THROW(fit_line(one, one), ContractError);
  const std::array<double, 3> xs{2.0, 2.0, 2.0};
  const std::array<double, 3> ys{1.0, 2.0, 3.0};
  EXPECT_THROW(fit_line(xs, ys), ContractError);
}

TEST(Table, AlignedOutput) {
  Table t({"n", "hops"});
  t.add_row({"10", "3.5"});
  t.add_row({"100000", "42.25"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("n"), std::string::npos);
  EXPECT_NE(out.find("100000"), std::string::npos);
  EXPECT_NE(out.find("42.25"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table t({"name", "value"});
  t.add_row({"with,comma", "with\"quote"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "name,value\n\"with,comma\",\"with\"\"quote\"\n");
}

TEST(Table, ArityEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractError);
}

TEST(Table, CellFormatting) {
  EXPECT_EQ(Table::cell(3.14159, 2), "3.14");
  EXPECT_EQ(Table::cell(std::size_t{42}), "42");
  EXPECT_EQ(Table::cell(static_cast<long long>(-7)), "-7");
}

}  // namespace
}  // namespace voronet::stats
