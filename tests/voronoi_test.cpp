// Tests for Voronoi cell extraction and DistanceToRegion.
#include "geometry/voronoi.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "geometry/delaunay.hpp"

namespace voronet::geo {
namespace {

using VertexId = DelaunayTriangulation::VertexId;

/// Point-in-convex-polygon (boundary counts as inside).
bool in_polygon(const std::vector<Vec2>& poly, Vec2 p) {
  const std::size_t n = poly.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 a = poly[i];
    const Vec2 b = poly[(i + 1) % n];
    if (cross(b - a, p - a) < -1e-12) return false;
  }
  return true;
}

TEST(VoronoiCell, ContainsItsSite) {
  DelaunayTriangulation dt;
  Rng rng(1);
  std::vector<VertexId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(dt.insert({rng.uniform(), rng.uniform()}).vertex);
  }
  const Box unit{{0, 0}, {1, 1}};
  for (const VertexId v : ids) {
    const VoronoiCell cell = voronoi_cell(dt, v, unit);
    ASSERT_GE(cell.polygon.size(), 3u);
    EXPECT_TRUE(in_polygon(cell.polygon, dt.position(v)))
        << "site " << v << " outside its own cell";
  }
}

TEST(VoronoiCell, MembershipMatchesNearest) {
  DelaunayTriangulation dt;
  Rng rng(2);
  for (int i = 0; i < 60; ++i) dt.insert({rng.uniform(), rng.uniform()});
  const Box unit{{0, 0}, {1, 1}};
  // Random probes: the probe lies in the (clipped) cell of its nearest
  // site (up to boundary tolerance).
  for (int q = 0; q < 300; ++q) {
    const Vec2 p{rng.uniform(), rng.uniform()};
    const VertexId owner = dt.nearest(p);
    const VoronoiCell cell = voronoi_cell(dt, owner, unit);
    EXPECT_TRUE(in_polygon(cell.polygon, p));
  }
}

TEST(VoronoiCell, CellsPartitionTheBox) {
  DelaunayTriangulation dt;
  Rng rng(3);
  for (int i = 0; i < 40; ++i) dt.insert({rng.uniform(), rng.uniform()});
  const Box unit{{0, 0}, {1, 1}};
  const auto cells = voronoi_diagram(dt, unit);
  EXPECT_EQ(cells.size(), dt.size());
  // Total area of clipped cells equals the box area.
  double total = 0.0;
  for (const auto& cell : cells) {
    double area = 0.0;
    for (std::size_t i = 0; i < cell.polygon.size(); ++i) {
      const Vec2 a = cell.polygon[i];
      const Vec2 b = cell.polygon[(i + 1) % cell.polygon.size()];
      area += cross(a, b);
    }
    total += area / 2.0;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(VoronoiCell, HullCellsAreClipped) {
  DelaunayTriangulation dt;
  dt.insert({0.4, 0.4});
  dt.insert({0.6, 0.4});
  dt.insert({0.5, 0.6});
  const Box unit{{0, 0}, {1, 1}};
  int clipped = 0;
  dt.for_each_vertex([&](VertexId v) {
    if (voronoi_cell(dt, v, unit).clipped) ++clipped;
  });
  EXPECT_EQ(clipped, 3);  // all three cells are unbounded
}

TEST(DistanceToRegion, InsideReturnsThePointItself) {
  DelaunayTriangulation dt;
  Rng rng(4);
  for (int i = 0; i < 80; ++i) dt.insert({rng.uniform(), rng.uniform()});
  for (int q = 0; q < 200; ++q) {
    const Vec2 p{rng.uniform(), rng.uniform()};
    const VertexId owner = dt.nearest(p);
    EXPECT_EQ(closest_point_in_region(dt, owner, p), p);
    EXPECT_EQ(dist2_to_region(dt, owner, p), 0.0);
  }
}

TEST(DistanceToRegion, OutsideProjectsOntoTheBoundary) {
  DelaunayTriangulation dt;
  Rng rng(5);
  std::vector<VertexId> ids;
  for (int i = 0; i < 80; ++i) {
    ids.push_back(dt.insert({rng.uniform(), rng.uniform()}).vertex);
  }
  for (int q = 0; q < 200; ++q) {
    const Vec2 p{rng.uniform(), rng.uniform()};
    const VertexId owner = dt.nearest(p);
    const VertexId other = ids[rng.index(ids.size())];
    if (other == owner) continue;
    const Vec2 z = closest_point_in_region(dt, other, p);
    // z must belong to other's region: its nearest site is `other` (ties
    // on the boundary allowed -- distance equality within tolerance).
    const VertexId zn = dt.nearest(z);
    const double dz_other = dist(z, dt.position(other));
    const double dz_zn = dist(z, dt.position(zn));
    EXPECT_LE(dz_other, dz_zn + 1e-9);
    // And no region point may be closer to p than z is: check against the
    // site itself and a few sampled boundary points.
    EXPECT_LE(dist2(p, z), dist2(p, dt.position(other)) + 1e-12);
  }
}

TEST(DistanceToRegion, RoutingInequalityHolds) {
  // The quantity drives the paper's stop condition: for any p and site o,
  // d(DistanceToRegion(o,p), p) <= d(o, p).
  DelaunayTriangulation dt;
  Rng rng(6);
  std::vector<VertexId> ids;
  for (int i = 0; i < 50; ++i) {
    ids.push_back(dt.insert({rng.uniform(), rng.uniform()}).vertex);
  }
  for (int q = 0; q < 300; ++q) {
    const Vec2 p{rng.uniform(-0.2, 1.2), rng.uniform(-0.2, 1.2)};
    const VertexId o = ids[rng.index(ids.size())];
    const Vec2 z = closest_point_in_region(dt, o, p);
    EXPECT_LE(dist2(p, z), dist2(p, dt.position(o)) * (1.0 + 1e-9));
  }
}

TEST(DistanceToRegion, PendingModeWorks) {
  DelaunayTriangulation dt;
  const auto a = dt.insert({0.25, 0.5}).vertex;
  const auto b = dt.insert({0.75, 0.5}).vertex;
  // Two-point "diagram": the bisector splits the plane at x = 0.5.
  const Vec2 z = closest_point_in_region(dt, a, {0.9, 0.5});
  EXPECT_NEAR(z.x, 0.5, 1e-9);
  EXPECT_EQ(closest_point_in_region(dt, b, {0.9, 0.5}), (Vec2{0.9, 0.5}));
}

TEST(BoxOps, ExpandTo) {
  Box box{{0, 0}, {1, 1}};
  box.expand_to({2.0, -1.0}, 0.5);
  EXPECT_EQ(box.hi.x, 2.5);
  EXPECT_EQ(box.lo.y, -1.5);
  EXPECT_TRUE(box.contains({2.0, -1.0}));
}

}  // namespace
}  // namespace voronet::geo
