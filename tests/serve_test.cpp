// Serving-layer tests: admission, batching, cache invalidation, and
// end-to-end exactness of the query front-end (src/serve).
//
// The deterministic cells run on SimTransport, where every count is
// exact and replayable.  The thread cells run the SAME serving code over
// ThreadTransport -- real shard threads, wall-clock latencies -- and
// assert the schedule-independent contract (everything completes,
// graded exactness holds) rather than any particular interleaving.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "protocol/query_harness.hpp"
#include "serve/open_loop.hpp"
#include "serve/query_server.hpp"
#include "voronet/queries.hpp"

namespace voronet::serve {
namespace {

using protocol::HarnessConfig;
using protocol::ProtocolHarness;
using protocol::QueryHarness;
using protocol::TransportKind;

HarnessConfig sim_config(std::uint64_t seed = 0x5eededULL) {
  HarnessConfig config;
  config.network.latency = protocol::LatencyModel::uniform(0.01, 0.05);
  config.network.seed = seed;
  config.seed = seed ^ 0xabcULL;
  return config;
}

/// Sequential ground truth for a server ticket's spec.
std::vector<NodeId> truth_matches(const ProtocolHarness& harness, Vec2 a,
                                  Vec2 b, double tol) {
  std::vector<NodeId> out;
  for (const NodeId n : harness.roster()) {
    if (site_within_tolerance(a, b, harness.node(n).position(), tol)) {
      out.push_back(n);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(QueryServer, BatchesCoResidentQueriesIntoSharedFloodsExactly) {
  QueryHarness qh(sim_config());
  qh.populate(120, 41);
  ProtocolHarness& h = qh.harness();

  ServeConfig sc;
  sc.max_batch = 4;
  sc.batch_window = 0.5;  // wide: only the size trigger fires here
  QueryServer server(h, sc);

  // Eight queries against one hot region: same bucket, two full batches.
  const Vec2 hot{0.45, 0.55};
  std::vector<QueryServer::TicketId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(server.submit_radius(
        Vec2{hot.x + 0.001 * i, hot.y - 0.001 * i}, 0.08));
  }
  const auto run = h.run_to_idle();
  ASSERT_FALSE(run.budget_exhausted);

  EXPECT_EQ(server.stats().batches, 2u) << "4+4 under max_batch=4";
  EXPECT_EQ(server.stats().batch_members, 8u);
  EXPECT_EQ(server.stats().completed, 8u);
  EXPECT_EQ(server.in_service(), 0u);
  for (const auto id : ids) {
    const QueryServer::Ticket& t = server.ticket(id);
    ASSERT_TRUE(t.done);
    EXPECT_FALSE(t.rejected);
    EXPECT_EQ(t.batch_size, 4u);
    EXPECT_GE(t.latency(), 0.0);
    EXPECT_EQ(t.matches, truth_matches(h, t.spec.a, t.spec.b, t.spec.tol))
        << "covering-flood member filter must reproduce the exact result";
  }
}

TEST(QueryServer, WindowTimerFlushesPartialBatch) {
  QueryHarness qh(sim_config());
  qh.populate(80, 42);
  ProtocolHarness& h = qh.harness();

  ServeConfig sc;
  sc.max_batch = 16;       // never reached
  sc.batch_window = 0.02;  // the clock does the flushing
  QueryServer server(h, sc);

  const auto a = server.submit_radius(Vec2{0.3, 0.3}, 0.1);
  const auto b = server.submit_range(Vec2{0.31, 0.3}, Vec2{0.35, 0.34}, 0.05);
  const auto run = h.run_to_idle();
  ASSERT_FALSE(run.budget_exhausted);

  EXPECT_EQ(server.stats().batches, 1u) << "one window flush for the bucket";
  EXPECT_EQ(server.stats().batch_members, 2u);
  for (const auto id : {a, b}) {
    const QueryServer::Ticket& t = server.ticket(id);
    ASSERT_TRUE(t.done);
    EXPECT_EQ(t.matches, truth_matches(h, t.spec.a, t.spec.b, t.spec.tol));
  }
}

TEST(QueryServer, CacheHitsExactSpecAndChurnInvalidates) {
  QueryHarness qh(sim_config());
  qh.populate(100, 43);
  ProtocolHarness& h = qh.harness();

  ServeConfig sc;
  sc.batch_window = 0.01;
  QueryServer server(h, sc);
  const Vec2 c{0.5, 0.5};

  const auto first = server.submit_radius(c, 0.1);
  ASSERT_FALSE(h.run_to_idle().budget_exhausted);
  ASSERT_TRUE(server.ticket(first).done);
  EXPECT_FALSE(server.ticket(first).cache_hit);
  const std::vector<NodeId> answer = server.ticket(first).matches;
  EXPECT_FALSE(answer.empty());

  // Identical spec, unchanged topology: answered from the cache, no new
  // flood, zero latency, same matches.
  const std::uint64_t floods_before = server.stats().batches;
  const auto hit = server.submit_radius(c, 0.1);
  EXPECT_TRUE(server.ticket(hit).done) << "cache hits complete synchronously";
  EXPECT_TRUE(server.ticket(hit).cache_hit);
  EXPECT_EQ(server.ticket(hit).matches, answer);
  EXPECT_EQ(server.ticket(hit).latency(), 0.0);
  EXPECT_EQ(server.stats().batches, floods_before);
  EXPECT_EQ(server.stats().cache_hits, 1u);

  // A nearby-but-different spec is NOT the same cache line.
  const auto miss = server.submit_radius(Vec2{c.x + 1e-9, c.y}, 0.1);
  EXPECT_FALSE(server.ticket(miss).done && server.ticket(miss).cache_hit);
  ASSERT_FALSE(h.run_to_idle().budget_exhausted);

  // Churn bumps the topology version: every cached answer is stale.
  Rng pick(7);
  h.crash(h.random_node(pick));
  ASSERT_FALSE(h.run_to_idle().budget_exhausted);
  const auto after = server.submit_radius(c, 0.1);
  EXPECT_FALSE(server.ticket(after).cache_hit)
      << "crash must invalidate the cached entry";
  ASSERT_FALSE(h.run_to_idle().budget_exhausted);
  ASSERT_TRUE(server.ticket(after).done);
  EXPECT_EQ(server.ticket(after).matches,
            truth_matches(h, c, c, 0.1))
      << "post-churn answer must match the post-churn topology";
  EXPECT_EQ(server.stats().cache_hits, 1u);
}

TEST(QueryServer, AdmissionBoundShedsAndRecovers) {
  QueryHarness qh(sim_config());
  qh.populate(60, 44);
  ProtocolHarness& h = qh.harness();

  ServeConfig sc;
  sc.queue_capacity = 2;
  sc.max_batch = 64;
  sc.batch_window = 0.05;
  sc.cache = false;  // every submit must take the admission path
  QueryServer server(h, sc);

  std::vector<QueryServer::TicketId> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(server.submit_radius(Vec2{0.4, 0.4 + 0.001 * i}, 0.05));
  }
  EXPECT_EQ(server.in_service(), 2u);
  EXPECT_EQ(server.stats().admitted, 2u);
  EXPECT_EQ(server.stats().rejected, 3u);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const QueryServer::Ticket& t = server.ticket(ids[i]);
    EXPECT_EQ(t.rejected, i >= 2) << i;
    EXPECT_EQ(t.done, i >= 2) << "rejected tickets are answered (shed) now";
  }

  ASSERT_FALSE(h.run_to_idle().budget_exhausted);
  EXPECT_EQ(server.in_service(), 0u) << "admitted queries drain";
  for (std::size_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(server.ticket(ids[i]).done);
    EXPECT_FALSE(server.ticket(ids[i]).rejected);
  }
  // Capacity freed: the next submit is admitted again.
  const auto again = server.submit_radius(Vec2{0.4, 0.41}, 0.05);
  EXPECT_FALSE(server.ticket(again).rejected);
  ASSERT_FALSE(h.run_to_idle().budget_exhausted);
  EXPECT_TRUE(server.ticket(again).done);
}

TEST(QueryServer, DropCompletedTicketsKeepsLiveOnes) {
  QueryHarness qh(sim_config());
  qh.populate(60, 45);
  ProtocolHarness& h = qh.harness();
  QueryServer server(h, ServeConfig{});

  const auto done_id = server.submit_radius(Vec2{0.2, 0.2}, 0.05);
  ASSERT_FALSE(h.run_to_idle().budget_exhausted);
  ASSERT_TRUE(server.ticket(done_id).done);
  const auto live_id = server.submit_radius(Vec2{0.7, 0.7}, 0.05);
  server.drop_completed_tickets();
  EXPECT_THROW(server.ticket(done_id), std::out_of_range);
  EXPECT_FALSE(server.ticket(live_id).done) << "pending ticket survives";
  ASSERT_FALSE(h.run_to_idle().budget_exhausted);
  EXPECT_TRUE(server.ticket(live_id).done);
}

TEST(OpenLoop, SimStreamCompletesAndGradesExactly) {
  QueryHarness qh(sim_config());
  qh.populate(150, 46);
  ProtocolHarness& h = qh.harness();
  QueryServer server(h, ServeConfig{});

  LoadConfig load;
  load.rate = 300.0;
  load.duration = 0.5;
  load.seed = 0xbeefULL;
  const LoadReport r = run_open_loop(h, server, load);

  EXPECT_TRUE(r.drained);
  EXPECT_GT(r.offered, 50u) << "Poisson at 300/s over 0.5s";
  EXPECT_EQ(r.rejected, 0u);
  EXPECT_EQ(r.completed, r.offered);
  EXPECT_EQ(r.completion_rate, 1.0);
  EXPECT_EQ(r.graded, r.offered) << "no churn: every ticket grades";
  EXPECT_EQ(r.recall, 1.0);
  EXPECT_EQ(r.precision, 1.0);
  EXPECT_GE(r.p99, r.p50);
  EXPECT_GE(r.max_latency, r.p99);
  EXPECT_GT(r.batches, 0u);
  EXPECT_GE(r.mean_batch, 1.0);
}

TEST(OpenLoop, ThreadBackendHarnessConvergesAndServes) {
  // The same protocol + serving stack over real threads.  Wall-clock
  // scaled wires; assertions are schedule-independent.
  HarnessConfig config;
  config.transport = TransportKind::kThread;
  config.transport_shards = 2;
  config.network.latency = protocol::LatencyModel::uniform(0.0005, 0.002);
  config.failure_detect_delay = 0.05;
  QueryHarness qh(config);
  qh.populate(60, 47, /*spacing=*/0.002);
  ProtocolHarness& h = qh.harness();
  ASSERT_FALSE(h.network().deterministic());
  EXPECT_TRUE(h.verify_views().converged())
      << "thread-backend joins must converge to the exact views";

  QueryServer server(h, ServeConfig{});
  LoadConfig load;
  load.rate = 150.0;
  load.duration = 0.3;
  load.seed = 0xfeedULL;
  const LoadReport r = run_open_loop(h, server, load);

  EXPECT_TRUE(r.drained);
  EXPECT_GT(r.offered, 10u);
  EXPECT_EQ(r.completed, r.offered) << "under-loaded stream completes fully";
  EXPECT_EQ(r.graded, r.offered);
  EXPECT_EQ(r.recall, 1.0);
  EXPECT_EQ(r.precision, 1.0);
  EXPECT_GT(r.p99, 0.0) << "wall-clock latency is real on this backend";
}

}  // namespace
}  // namespace voronet::serve
