// Direct tests of protocol::LatencyModel: sample statistics of the three
// kinds (mean / quantiles within tolerance), per-seed determinism, and
// the synchronous-limit ordering contract (a zero-latency model preserves
// issue order through the Network).
#include "protocol/latency.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "protocol/network.hpp"
#include "sim/event_queue.hpp"

namespace voronet::protocol {
namespace {

std::vector<double> samples(const LatencyModel& model, std::uint64_t seed,
                            std::size_t n) {
  Rng rng(seed);
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(model.sample(rng));
  return out;
}

double mean(const std::vector<double>& xs) {
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double quantile(std::vector<double> xs, double q) {
  std::sort(xs.begin(), xs.end());
  const auto i = static_cast<std::size_t>(
      q * static_cast<double>(xs.size() - 1));
  return xs[i];
}

TEST(LatencyModel, FixedIsExactAndNamed) {
  const LatencyModel model = LatencyModel::fixed(0.05);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(model.sample(rng), 0.05);
  EXPECT_DOUBLE_EQ(model.high_quantile(), 0.05);
  EXPECT_STREQ(model.name(), "fixed");
}

TEST(LatencyModel, UniformStatisticsWithinTolerance) {
  const LatencyModel model = LatencyModel::uniform(0.01, 0.09);
  const auto xs = samples(model, 42, 20'000);
  for (const double x : xs) {
    EXPECT_GE(x, 0.01);
    EXPECT_LT(x, 0.09);
  }
  // Mean (a+b)/2 = 0.05, quartiles at 0.03 / 0.07; 20k samples put the
  // sample statistics well within 2% of the analytic values.
  EXPECT_NEAR(mean(xs), 0.05, 0.001);
  EXPECT_NEAR(quantile(xs, 0.25), 0.03, 0.002);
  EXPECT_NEAR(quantile(xs, 0.75), 0.07, 0.002);
  EXPECT_DOUBLE_EQ(model.high_quantile(), 0.09);
  EXPECT_STREQ(model.name(), "uniform");
}

TEST(LatencyModel, LognormalFloorMedianAndTail) {
  const double floor = 0.005;
  const double median = 0.03;
  const LatencyModel model = LatencyModel::lognormal(floor, floor + median,
                                                     1.0);
  const auto xs = samples(model, 7, 40'000);
  for (const double x : xs) EXPECT_GE(x, floor);
  // The configured median is exact by construction (exp(sigma * z) has
  // median 1); 40k samples land within a few percent.
  EXPECT_NEAR(quantile(xs, 0.5), floor + median, 0.15 * median);
  // Heavy tail: the mean exceeds the median (exp(sigma^2/2) factor) and
  // the 97.7th percentile approximates high_quantile().
  EXPECT_GT(mean(xs), floor + median);
  EXPECT_NEAR(quantile(xs, 0.977), model.high_quantile(),
              0.3 * model.high_quantile());
  EXPECT_STREQ(model.name(), "lognormal");
}

TEST(LatencyModel, LognormalDegeneratesToFloorAtZeroMedian) {
  const LatencyModel model = LatencyModel::lognormal(0.02, 0.02, 1.0);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(model.sample(rng), 0.02);
}

TEST(LatencyModel, DeterministicPerSeed) {
  for (const LatencyModel& model :
       {LatencyModel::uniform(0.0, 0.1),
        LatencyModel::lognormal(0.001, 0.02, 0.8)}) {
    EXPECT_EQ(samples(model, 1234, 1'000), samples(model, 1234, 1'000))
        << model.name();
    EXPECT_NE(samples(model, 1234, 1'000), samples(model, 4321, 1'000))
        << model.name();
  }
}

TEST(LatencyModel, ZeroLatencyPreservesIssueOrder) {
  // The synchronous limit the differential quiescence tests rely on:
  // with delay 0 every message still travels through the event queue,
  // and FIFO tie-breaking must deliver them in exactly the issue order.
  sim::EventQueue queue;
  NetworkConfig config;
  config.latency = LatencyModel::fixed(0.0);
  Network net(queue, config);
  std::vector<std::uint64_t> delivered;
  net.set_sink([&](const Message& m) { delivered.push_back(m.version); });

  constexpr std::uint64_t kMessages = 50;
  for (std::uint64_t i = 0; i < kMessages; ++i) {
    Message m;
    m.type = sim::MessageKind::kVoronoiUpdate;
    m.src = 1;
    m.dst = 2;
    m.version = i;  // issue-order stamp
    net.send(m);
  }
  const auto run = queue.run_to_idle();
  ASSERT_FALSE(run.budget_exhausted);
  ASSERT_EQ(delivered.size(), kMessages);
  for (std::uint64_t i = 0; i < kMessages; ++i) {
    EXPECT_EQ(delivered[i], i) << "delivery order diverged from issue order";
  }
}

}  // namespace
}  // namespace voronet::protocol
