// Property-based routing tests: parameterized sweeps over distribution x
// long-link count x dmin rule, checking the invariants the paper's proofs
// rest on (strict greedy progress, owner correctness, hop bounds).
#include <cmath>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "voronet/overlay.hpp"
#include "workload/distributions.hpp"

namespace voronet {
namespace {

using Param = std::tuple<int /*dist: 0=uniform,1=a1,2=a2,3=a5*/,
                         std::size_t /*long links*/, int /*dmin rule*/>;

workload::DistributionConfig dist_for(int idx) {
  switch (idx) {
    case 0:
      return workload::DistributionConfig::uniform();
    case 1:
      return workload::DistributionConfig::power_law(1.0);
    case 2:
      return workload::DistributionConfig::power_law(2.0);
    default:
      return workload::DistributionConfig::power_law(5.0);
  }
}

class RoutingSweep : public ::testing::TestWithParam<Param> {};

TEST_P(RoutingSweep, GreedyProgressAndOwnerCorrectness) {
  const auto [dist_idx, links, rule_idx] = GetParam();
  OverlayConfig cfg;
  cfg.n_max = 4096;
  cfg.long_links = links;
  cfg.seed = 1000 + static_cast<std::uint64_t>(dist_idx) * 10 + links;
  cfg.dmin_rule = rule_idx == 0 ? DminRule::kPaperText
                                : DminRule::kBallExpectation;
  Overlay overlay(cfg);
  Rng rng(cfg.seed);
  workload::PointGenerator gen(dist_for(dist_idx));
  for (int i = 0; i < 400; ++i) overlay.insert(gen.next(rng));
  overlay.check_invariants(/*check_delaunay=*/false);

  for (int q = 0; q < 60; ++q) {
    const ObjectId target_obj = overlay.random_object(rng);
    const Vec2 target = overlay.position(target_obj);
    ObjectId cur = overlay.random_object(rng);

    // Manual greedy walk via the public step function: the distance to the
    // target must decrease strictly at every step until arrival (the
    // property Lemma 5's expectation argument is built on).
    std::size_t steps = 0;
    while (cur != target_obj) {
      const ObjectId next = overlay.greedy_neighbor(cur, target);
      ASSERT_NE(next, kNoObject);
      ASSERT_LT(dist2(overlay.position(next), target),
                dist2(overlay.position(cur), target))
          << "greedy step failed to progress";
      cur = next;
      ASSERT_LE(++steps, overlay.size()) << "greedy walk too long";
    }

    // The probe agrees on the owner.
    EXPECT_EQ(overlay.probe(overlay.random_object(rng), target).owner,
              target_obj);
  }
}

TEST_P(RoutingSweep, HopsScaleReasonably) {
  const auto [dist_idx, links, rule_idx] = GetParam();
  OverlayConfig cfg;
  cfg.n_max = 4096;
  cfg.long_links = links;
  cfg.seed = 2000 + static_cast<std::uint64_t>(dist_idx) * 10 + links;
  cfg.dmin_rule = rule_idx == 0 ? DminRule::kPaperText
                                : DminRule::kBallExpectation;
  Overlay overlay(cfg);
  Rng rng(cfg.seed);
  workload::PointGenerator gen(dist_for(dist_idx));
  for (int i = 0; i < 1000; ++i) overlay.insert(gen.next(rng));

  double total = 0.0;
  constexpr int kProbes = 200;
  for (int q = 0; q < kProbes; ++q) {
    const ObjectId to = overlay.random_object(rng);
    total += static_cast<double>(
        overlay.probe(overlay.random_object(rng), overlay.position(to)).hops);
  }
  const double mean = total / kProbes;
  // Generous poly-log envelope at n = 1000: ln(1000)^2 ~ 47.7.  Without
  // long links greedy would need ~sqrt(n) ~ 32+ hops; with them the mean
  // must sit well below the envelope.  (No lower bound: with the
  // ball-expectation dmin rule the alpha=5 clusters legitimately collapse
  // most routes into 0-hop dmin terminations.)
  EXPECT_LT(mean, 50.0);
}

std::string sweep_name(const ::testing::TestParamInfo<Param>& param_info) {
  static const char* const kNames[] = {"uniform", "alpha1", "alpha2",
                                       "alpha5"};
  const int d = std::get<0>(param_info.param);
  const std::size_t k = std::get<1>(param_info.param);
  const int r = std::get<2>(param_info.param);
  return std::string(kNames[d]) + "_k" + std::to_string(k) +
         (r == 0 ? "_paperdmin" : "_balldmin");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RoutingSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(std::size_t{1}, std::size_t{4}),
                       ::testing::Values(0, 1)),
    sweep_name);

class ChurnSweep : public ::testing::TestWithParam<int> {};

TEST_P(ChurnSweep, InvariantsUnderMixedChurn) {
  OverlayConfig cfg;
  cfg.n_max = 2048;
  cfg.seed = 3000 + GetParam();
  Overlay overlay(cfg);
  Rng rng(cfg.seed);
  workload::PointGenerator gen(dist_for(GetParam() % 4));
  std::vector<ObjectId> ids;
  for (int step = 0; step < 300; ++step) {
    const double roll = rng.uniform();
    if (ids.size() < 16 || roll < 0.45) {
      ids.push_back(overlay.insert(gen.next(rng)));
    } else if (roll < 0.7) {
      const std::size_t pick = rng.index(ids.size());
      overlay.remove(ids[pick]);
      ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(pick));
    } else if (roll < 0.8 && ids.size() > 4) {
      // Crash + immediate repair: must be equivalent to a graceful leave
      // from the invariant standpoint.
      const std::size_t pick = rng.index(ids.size());
      overlay.crash(ids[pick]);
      ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(pick));
      overlay.repair_dangling();
    } else {
      overlay.query(ids[rng.index(ids.size())],
                    {rng.uniform(), rng.uniform()});
    }
  }
  overlay.check_invariants();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnSweep, ::testing::Values(0, 1, 2, 3, 4, 5));

}  // namespace
}  // namespace voronet
