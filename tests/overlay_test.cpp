// Protocol tests for the VoroNet overlay: join, leave, routing, queries,
// and the full view-invariant audit after every kind of operation.
#include "voronet/overlay.hpp"

#include <algorithm>
#include <atomic>
#include <set>

#include <gtest/gtest.h>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "workload/distributions.hpp"

namespace voronet {
namespace {

OverlayConfig small_config(std::uint64_t seed = 1) {
  OverlayConfig cfg;
  cfg.n_max = 4096;
  cfg.seed = seed;
  return cfg;
}

TEST(OverlayBootstrap, FirstObjects) {
  Overlay overlay(small_config());
  const ObjectId a = overlay.insert({0.5, 0.5});
  EXPECT_EQ(overlay.size(), 1u);
  EXPECT_TRUE(overlay.contains(a));
  EXPECT_EQ(overlay.view(a).lr.size(), 1u);
  overlay.check_invariants();

  const ObjectId b = overlay.insert({0.25, 0.75});
  const ObjectId c = overlay.insert({0.75, 0.25});
  EXPECT_EQ(overlay.size(), 3u);
  overlay.check_invariants();
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
}

TEST(OverlayBootstrap, DuplicatePositionReturnsExistingObject) {
  Overlay overlay(small_config());
  const ObjectId a = overlay.insert({0.5, 0.5});
  overlay.insert({0.1, 0.1});
  overlay.insert({0.9, 0.2});
  const ObjectId dup = overlay.insert({0.5, 0.5});
  EXPECT_EQ(dup, a);
  EXPECT_EQ(overlay.size(), 3u);
  overlay.check_invariants();
}

TEST(OverlayBootstrap, RejectsOutOfSquarePositions) {
  Overlay overlay(small_config());
  overlay.insert({0.5, 0.5});
  EXPECT_THROW(overlay.insert({1.5, 0.5}), ContractError);
  EXPECT_THROW(overlay.insert({0.5, -0.1}), ContractError);
}

TEST(OverlayGrowth, InvariantsHoldWhileGrowingUniform) {
  Overlay overlay(small_config(3));
  Rng rng(3);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  for (int i = 0; i < 300; ++i) {
    overlay.insert(gen.next(rng));
    if (i % 30 == 0) overlay.check_invariants();
  }
  overlay.check_invariants();
  EXPECT_EQ(overlay.size(), 300u);
}

TEST(OverlayGrowth, InvariantsHoldForSkewedData) {
  // alpha = 5 concentrates most objects on a handful of attribute values:
  // the close-neighbour machinery must kick in (clusters far denser than
  // dmin) and the tessellation must survive the near-degenerate geometry.
  OverlayConfig cfg = small_config(4);
  cfg.n_max = 2048;
  Overlay overlay(cfg);
  Rng rng(4);
  workload::PointGenerator gen(workload::DistributionConfig::power_law(5.0));
  for (int i = 0; i < 400; ++i) {
    overlay.insert(gen.next(rng));
    if (i % 50 == 0) overlay.check_invariants();
  }
  overlay.check_invariants();
  // With alpha=5 and jitter 1e-9, clustered objects must see each other as
  // close neighbours.
  std::size_t with_cn = 0;
  for (const ObjectId o : overlay.objects()) {
    if (!overlay.view(o).cn.empty()) ++with_cn;
  }
  EXPECT_GT(with_cn, overlay.size() / 4)
      << "skewed workload should produce close-neighbour clusters";
}

TEST(OverlayRouting, ProbeReachesTheTargetObject) {
  Overlay overlay(small_config(5));
  Rng rng(5);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  std::vector<ObjectId> ids;
  for (int i = 0; i < 400; ++i) ids.push_back(overlay.insert(gen.next(rng)));
  for (int q = 0; q < 300; ++q) {
    const ObjectId from = ids[rng.index(ids.size())];
    const ObjectId to = ids[rng.index(ids.size())];
    const RouteResult r = overlay.probe(from, overlay.position(to));
    EXPECT_EQ(r.owner, to) << "greedy routing must find the region owner";
  }
}

TEST(OverlayRouting, ProbeFindsOwnerOfArbitraryPoints) {
  Overlay overlay(small_config(6));
  Rng rng(6);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  for (int i = 0; i < 300; ++i) overlay.insert(gen.next(rng));
  for (int q = 0; q < 200; ++q) {
    const Vec2 target{rng.uniform(), rng.uniform()};
    const ObjectId from = overlay.random_object(rng);
    const RouteResult r = overlay.probe(from, target);
    EXPECT_EQ(r.owner, overlay.tessellation().nearest(target));
  }
}

TEST(OverlayRouting, GreedyNeighborBreaksTiesTowardsSmallerId) {
  // Regression: with two exactly equidistant candidates the tie-break
  // used to compare against the kNoObject sentinel (-2), which no real id
  // can beat.  The smaller id must win, whatever the evaluation order.
  OverlayConfig cfg = small_config(9);
  cfg.use_long_links = false;  // keep the candidate set to vn only
  Overlay overlay(cfg);
  const ObjectId a = overlay.insert({0.5, 0.5});
  const ObjectId b = overlay.insert({0.25, 0.5});
  const ObjectId c = overlay.insert({0.75, 0.5});
  ASSERT_LT(b, c);
  // Target equidistant from b and c (exact coordinates): |t-b| == |t-c|.
  const Vec2 target{0.5, 0.25};
  ASSERT_EQ(dist2(overlay.position(b), target),
            dist2(overlay.position(c), target));
  EXPECT_EQ(overlay.greedy_neighbor(a, target), b);
  overlay.check_invariants();
}

TEST(OverlayRouting, ProbeBatchMatchesScalarProbes) {
  // The pipelined sweep must be a pure reordering: element-for-element
  // identical results to probe().
  Overlay overlay(small_config(12));
  Rng rng(12);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  for (int i = 0; i < 600; ++i) overlay.insert(gen.next(rng));

  std::vector<ProbeQuery> queries;
  for (int q = 0; q < 500; ++q) {
    queries.push_back({overlay.random_object(rng),
                       {rng.uniform(), rng.uniform()}});
  }
  std::vector<RouteResult> batch(queries.size());
  overlay.probe_batch(queries, batch);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const RouteResult r = overlay.probe(queries[i].from, queries[i].target);
    EXPECT_EQ(batch[i].owner, r.owner) << i;
    EXPECT_EQ(batch[i].hops, r.hops) << i;
    EXPECT_EQ(batch[i].stopped_by_dmin, r.stopped_by_dmin) << i;
  }
}

TEST(OverlayRouting, QueryMatchesProbeAndPreservesState) {
  Overlay overlay(small_config(7));
  Rng rng(7);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  for (int i = 0; i < 200; ++i) overlay.insert(gen.next(rng));
  overlay.check_invariants();
  for (int q = 0; q < 50; ++q) {
    const Vec2 target{rng.uniform(), rng.uniform()};
    const ObjectId from = overlay.random_object(rng);
    const RouteResult probed = overlay.probe(from, target);
    const RouteResult queried = overlay.query(from, target);
    EXPECT_EQ(probed.owner, queried.owner);
    EXPECT_EQ(probed.hops, queried.hops);
  }
  // The fictive insertions of the query protocol must leave no trace.
  overlay.check_invariants();
  EXPECT_EQ(overlay.size(), 200u);
}

TEST(OverlayRouting, QueryForExistingObjectPosition) {
  Overlay overlay(small_config(8));
  Rng rng(8);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  std::vector<ObjectId> ids;
  for (int i = 0; i < 150; ++i) ids.push_back(overlay.insert(gen.next(rng)));
  for (int q = 0; q < 50; ++q) {
    const ObjectId to = ids[rng.index(ids.size())];
    const RouteResult r =
        overlay.query(overlay.random_object(rng), overlay.position(to));
    EXPECT_EQ(r.owner, to);
  }
  overlay.check_invariants();
}

TEST(OverlayLeave, InvariantsAfterEveryRemoval) {
  Overlay overlay(small_config(9));
  Rng rng(9);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  std::vector<ObjectId> ids;
  for (int i = 0; i < 150; ++i) ids.push_back(overlay.insert(gen.next(rng)));
  overlay.check_invariants();
  for (int i = 0; i < 100; ++i) {
    const std::size_t pick = rng.index(ids.size());
    overlay.remove(ids[pick]);
    ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(pick));
    if (i % 10 == 0) overlay.check_invariants();
  }
  overlay.check_invariants();
  EXPECT_EQ(overlay.size(), 50u);
}

TEST(OverlayLeave, LongLinksAreDelegatedToTheNewOwner) {
  Overlay overlay(small_config(10));
  Rng rng(10);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  std::vector<ObjectId> ids;
  for (int i = 0; i < 120; ++i) ids.push_back(overlay.insert(gen.next(rng)));

  // Find an object that carries back-long-range entries and remove it: the
  // origins' links must follow to the new owners (checked exhaustively by
  // check_invariants, but verify the re-binding explicitly here).
  for (const ObjectId o : std::vector<ObjectId>(ids)) {
    if (overlay.view(o).blr.empty()) continue;
    const auto entries = overlay.view(o).blr;
    overlay.remove(o);
    for (const BackLink& e : entries) {
      if (e.origin == o) continue;  // o's own self-bound links died with it
      ASSERT_TRUE(overlay.contains(e.origin));
      const LongLink& l = overlay.view(e.origin).lr[e.link_index];
      EXPECT_NE(l.neighbor, o) << "link still points at the departed object";
      EXPECT_EQ(l.neighbor,
                overlay.tessellation().nearest(l.target, l.neighbor));
    }
    break;
  }
  overlay.check_invariants();
}

TEST(OverlayChurn, MixedOperationsKeepInvariants) {
  OverlayConfig cfg = small_config(11);
  Overlay overlay(cfg);
  Rng rng(11);
  workload::PointGenerator gen(workload::DistributionConfig::power_law(2.0));
  std::vector<ObjectId> ids;
  for (int step = 0; step < 500; ++step) {
    const double roll = rng.uniform();
    if (ids.size() < 20 || roll < 0.5) {
      ids.push_back(overlay.insert(gen.next(rng)));
    } else if (roll < 0.8) {
      const std::size_t pick = rng.index(ids.size());
      overlay.remove(ids[pick]);
      ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      overlay.query(ids[rng.index(ids.size())],
                    {rng.uniform(), rng.uniform()});
    }
    if (step % 100 == 0) overlay.check_invariants();
  }
  overlay.check_invariants();
}

TEST(OverlayConfig_, MultipleLongLinksImproveRouting) {
  // Statistical: k=4 should beat k=1 clearly on mean hops at this size.
  const auto mean_hops = [](std::size_t k) {
    OverlayConfig cfg;
    cfg.n_max = 4096;
    cfg.long_links = k;
    cfg.seed = 12;
    Overlay overlay(cfg);
    Rng rng(12);
    workload::PointGenerator gen(workload::DistributionConfig::uniform());
    for (int i = 0; i < 1500; ++i) overlay.insert(gen.next(rng));
    double total = 0.0;
    for (int q = 0; q < 400; ++q) {
      const ObjectId from = overlay.random_object(rng);
      total += static_cast<double>(
          overlay.probe(from, {rng.uniform(), rng.uniform()}).hops);
    }
    return total / 400.0;
  };
  const double h1 = mean_hops(1);
  const double h4 = mean_hops(4);
  EXPECT_LT(h4, h1) << "more long links must shorten routes on average";
}

TEST(OverlayConfig_, LongLinkAblationStillRoutesCorrectly) {
  OverlayConfig cfg = small_config(13);
  cfg.use_long_links = false;
  Overlay overlay(cfg);
  Rng rng(13);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  std::vector<ObjectId> ids;
  for (int i = 0; i < 300; ++i) ids.push_back(overlay.insert(gen.next(rng)));
  for (int q = 0; q < 100; ++q) {
    const ObjectId to = ids[rng.index(ids.size())];
    const RouteResult r =
        overlay.probe(overlay.random_object(rng), overlay.position(to));
    EXPECT_EQ(r.owner, to);
  }
  overlay.check_invariants();
}

TEST(OverlayConfig_, CloseNeighborAblation) {
  OverlayConfig cfg = small_config(14);
  cfg.use_close_neighbors = false;
  Overlay overlay(cfg);
  Rng rng(14);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  std::vector<ObjectId> ids;
  for (int i = 0; i < 200; ++i) ids.push_back(overlay.insert(gen.next(rng)));
  for (int q = 0; q < 100; ++q) {
    const ObjectId to = ids[rng.index(ids.size())];
    EXPECT_EQ(overlay.probe(overlay.random_object(rng),
                            overlay.position(to)).owner,
              to);
  }
}

TEST(OverlayConfig_, DminRules) {
  EXPECT_NEAR(dmin_for(DminRule::kPaperText, 300'000), 1.061e-6, 1e-8);
  EXPECT_NEAR(dmin_for(DminRule::kBallExpectation, 300'000), 1.0301e-3,
              1e-6);
  OverlayConfig cfg;
  cfg.dmin_override = 0.01;
  EXPECT_EQ(cfg.dmin(), 0.01);
}

TEST(OverlayMetrics, JoinAndQueryAccounting) {
  Overlay overlay(small_config(15));
  Rng rng(15);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  for (int i = 0; i < 100; ++i) overlay.insert(gen.next(rng));
  const auto& m = overlay.metrics();
  EXPECT_EQ(m.hops(sim::OperationKind::kJoin).count(), 100u);
  EXPECT_GT(m.messages(sim::MessageKind::kVoronoiUpdate), 0u);
  EXPECT_GT(m.messages(sim::MessageKind::kRouteForward), 0u);
  EXPECT_GT(m.messages(sim::MessageKind::kLongLinkBind), 0u);

  overlay.query(overlay.random_object(rng), {0.5, 0.5});
  EXPECT_EQ(m.hops(sim::OperationKind::kQuery).count(), 1u);
  EXPECT_EQ(m.messages(sim::MessageKind::kQueryAnswer), 1u);
}

TEST(OverlayViewSizes, VoronoiDegreeAveragesSix) {
  Overlay overlay(small_config(16));
  Rng rng(16);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  for (int i = 0; i < 1000; ++i) overlay.insert(gen.next(rng));
  double total = 0.0;
  for (const ObjectId o : overlay.objects()) {
    total += static_cast<double>(overlay.view(o).vn.size());
  }
  const double mean = total / static_cast<double>(overlay.size());
  EXPECT_GT(mean, 5.0);
  EXPECT_LT(mean, 6.5);  // < 6 exactly in expectation (hull effects)
}

TEST(OverlayRouting, ProbePathIsMonotoneAndConsistent) {
  Overlay overlay(small_config(19));
  Rng rng(19);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  std::vector<ObjectId> ids;
  for (int i = 0; i < 400; ++i) ids.push_back(overlay.insert(gen.next(rng)));
  std::vector<ObjectId> path;
  for (int q = 0; q < 100; ++q) {
    const ObjectId from = ids[rng.index(ids.size())];
    const Vec2 target = overlay.position(ids[rng.index(ids.size())]);
    const RouteResult r = overlay.probe_path(from, target, path);
    ASSERT_EQ(path.size(), r.hops + 1);
    EXPECT_EQ(path.front(), from);
    // Distance to the target strictly decreases along the path.
    for (std::size_t i = 1; i < path.size(); ++i) {
      EXPECT_LT(dist2(overlay.position(path[i]), target),
                dist2(overlay.position(path[i - 1]), target));
    }
    // Same semantics as the plain probe.
    const RouteResult plain = overlay.probe(from, target);
    EXPECT_EQ(plain.hops, r.hops);
    EXPECT_EQ(plain.owner, r.owner);
  }
}

TEST(OverlayKnn, MatchesBruteForce) {
  Overlay overlay(small_config(18));
  Rng rng(18);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  std::vector<ObjectId> ids;
  for (int i = 0; i < 300; ++i) ids.push_back(overlay.insert(gen.next(rng)));
  for (int q = 0; q < 50; ++q) {
    const Vec2 p{rng.uniform(), rng.uniform()};
    const std::size_t k = 1 + rng.index(8);
    const auto got = overlay.k_nearest(overlay.random_object(rng), p, k);
    ASSERT_EQ(got.size(), k);
    std::vector<ObjectId> want = ids;
    std::sort(want.begin(), want.end(), [&](ObjectId a, ObjectId b) {
      const double da = dist2(overlay.position(a), p);
      const double db = dist2(overlay.position(b), p);
      return da < db || (da == db && a < b);
    });
    want.resize(k);
    EXPECT_EQ(got, want);
  }
}

TEST(OverlayDeterminism, SameSeedSameStructure) {
  // Full determinism regression guard: identical seeds must produce
  // bit-identical overlays (positions, views, link bindings, metrics).
  const auto build = [](Overlay& overlay) {
    Rng rng(77);
    workload::PointGenerator gen(
        workload::DistributionConfig::power_law(2.0));
    for (int i = 0; i < 200; ++i) overlay.insert(gen.next(rng));
    for (int i = 0; i < 30; ++i) {
      overlay.remove(overlay.random_object(rng));
    }
    overlay.query(overlay.random_object(rng), {0.5, 0.5});
  };
  OverlayConfig cfg = small_config(21);
  Overlay a(cfg);
  Overlay b(cfg);
  build(a);
  build(b);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.objects(), b.objects());
  for (const ObjectId o : a.objects()) {
    EXPECT_EQ(a.position(o), b.position(o));
    EXPECT_EQ(a.view(o).vn, b.view(o).vn);
    EXPECT_EQ(a.view(o).cn, b.view(o).cn);
    ASSERT_EQ(a.view(o).lr.size(), b.view(o).lr.size());
    for (std::size_t j = 0; j < a.view(o).lr.size(); ++j) {
      EXPECT_EQ(a.view(o).lr[j].target, b.view(o).lr[j].target);
      EXPECT_EQ(a.view(o).lr[j].neighbor, b.view(o).lr[j].neighbor);
    }
  }
  EXPECT_EQ(a.metrics().total_messages(), b.metrics().total_messages());
}

TEST(OverlayMetrics, OperationMessageAccountingIsConsistent) {
  // The per-operation message record must equal the delta of the global
  // counter around the operation.
  Overlay overlay(small_config(22));
  Rng rng(22);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  for (int i = 0; i < 100; ++i) overlay.insert(gen.next(rng));

  const auto& m = overlay.metrics();
  const std::uint64_t before = m.total_messages();
  const auto count_before = m.hops(sim::OperationKind::kQuery).count();
  overlay.query(overlay.random_object(rng), {0.3, 0.7});
  const std::uint64_t delta = m.total_messages() - before;
  ASSERT_EQ(m.hops(sim::OperationKind::kQuery).count(), count_before + 1);
  // The most recent query's message count is the new max or min bracket:
  // check the recorded mean moved consistently with the delta.
  EXPECT_GE(m.operation_messages(sim::OperationKind::kQuery).max(),
            static_cast<double>(delta));
  EXPECT_LE(m.operation_messages(sim::OperationKind::kQuery).min(),
            static_cast<double>(delta));
}

TEST(OverlayDegenerate, CollinearObjectPopulation) {
  // All objects share one attribute value exactly (a realistic degenerate
  // application state): the tessellation runs in its collinear "pending"
  // mode and the full protocol must still work end to end.
  Overlay overlay(small_config(20));
  std::vector<ObjectId> ids;
  for (int i = 0; i < 40; ++i) {
    ids.push_back(overlay.insert({0.02 + i * 0.02, 0.5}));
  }
  EXPECT_FALSE(overlay.tessellation().has_triangles());
  overlay.check_invariants();

  // Routing along the line.
  Rng rng(20);
  for (int q = 0; q < 60; ++q) {
    const ObjectId to = ids[rng.index(ids.size())];
    EXPECT_EQ(overlay.probe(ids[rng.index(ids.size())],
                            overlay.position(to)).owner,
              to);
  }
  // Queries for off-line points still find the nearest object.
  const RouteResult r = overlay.query(ids[0], {0.31, 0.9});
  EXPECT_EQ(r.owner, overlay.tessellation().nearest({0.31, 0.9}));

  // Leaving the line triggers full triangulation; leaving again collapses
  // back.  Views must stay consistent throughout.
  const ObjectId off = overlay.insert({0.5, 0.9});
  EXPECT_TRUE(overlay.tessellation().has_triangles());
  overlay.check_invariants();
  overlay.remove(off);
  EXPECT_FALSE(overlay.tessellation().has_triangles());
  overlay.check_invariants();

  // Churn within the line.
  for (int i = 0; i < 10; ++i) {
    overlay.remove(ids[i]);
  }
  overlay.check_invariants();
  EXPECT_EQ(overlay.size(), 30u);
}

TEST(OverlayParallel, ConcurrentProbesAreConsistent) {
  Overlay overlay(small_config(17));
  Rng rng(17);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  std::vector<ObjectId> ids;
  for (int i = 0; i < 500; ++i) ids.push_back(overlay.insert(gen.next(rng)));

  // Fixed query set evaluated sequentially, then in parallel.
  struct Query {
    ObjectId from;
    Vec2 target;
  };
  std::vector<Query> queries;
  for (int q = 0; q < 256; ++q) {
    queries.push_back(
        {ids[rng.index(ids.size())], {rng.uniform(), rng.uniform()}});
  }
  std::vector<std::size_t> seq_hops(queries.size());
  std::vector<ObjectId> seq_owner(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const RouteResult r = overlay.probe(queries[i].from, queries[i].target);
    seq_hops[i] = r.hops;
    seq_owner[i] = r.owner;
  }
  std::atomic<std::size_t> mismatches{0};
  set_parallel_workers(4);
  parallel_for_each(0, queries.size(), [&](std::size_t i) {
    const RouteResult r = overlay.probe(queries[i].from, queries[i].target);
    if (r.hops != seq_hops[i] || r.owner != seq_owner[i]) {
      mismatches.fetch_add(1);
    }
  });
  set_parallel_workers(0);
  EXPECT_EQ(mismatches.load(), 0u);
}

}  // namespace
}  // namespace voronet
