// Tests for the discrete-event engine and the metrics registry.
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "common/expect.hpp"

namespace voronet::sim {
namespace {

TEST(EventQueue, ExecutesInTimestampOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  q.run_to_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesResolveFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  q.run_to_idle();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, HandlersMayScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) q.schedule(1.0, chain);
  };
  q.schedule(0.0, chain);
  const auto run = q.run_to_idle();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(run.processed, 5u);
  EXPECT_FALSE(run.budget_exhausted);
  EXPECT_EQ(q.now(), 4.0);
}

TEST(EventQueue, ScheduleDuringStepKeepsFifoOrder) {
  // An event scheduled from inside a handler at the *current* timestamp
  // must run after every already-queued event with that timestamp (FIFO by
  // insertion sequence), so re-entrant scheduling stays deterministic.
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] {
    order.push_back(0);
    q.schedule(0.0, [&] { order.push_back(3); });
  });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(1.0, [&] { order.push_back(2); });
  q.run_to_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(q.now(), 1.0);
}

TEST(EventQueue, RelativeDelaysAccumulate) {
  EventQueue q;
  double seen = -1.0;
  q.schedule(2.0, [&] {
    q.schedule(3.0, [&] { seen = q.now(); });
  });
  q.run_to_idle();
  EXPECT_EQ(seen, 5.0);
}

TEST(EventQueue, NegativeDelayRejected) {
  EventQueue q;
  EXPECT_THROW(q.schedule(-1.0, [] {}), ContractError);
}

TEST(EventQueue, EventBudgetExhaustionIsReportedNotThrown) {
  EventQueue q;
  std::function<void()> forever = [&] { q.schedule(1.0, forever); };
  q.schedule(0.0, forever);
  const auto run = q.run_to_idle(1000);
  EXPECT_TRUE(run.budget_exhausted);
  EXPECT_EQ(run.processed, 1000u);
  EXPECT_FALSE(q.idle());  // the runaway chain is still pending
}

TEST(EventQueue, StepReturnsFalseWhenIdle) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  q.schedule(1.0, [] {});
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, RunUntilStopsAtHorizonAndAdvancesClock) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  q.schedule(5.0, [&] { order.push_back(5); });
  const auto run = q.run_until(3.0);
  EXPECT_EQ(run.processed, 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.now(), 3.0);  // clock reaches the horizon, not the last event
  EXPECT_EQ(q.pending(), 1u);
  q.run_to_idle();
  EXPECT_EQ(q.now(), 5.0);
}

TEST(EventQueue, TimerFiresLikeAnOrdinaryEvent) {
  EventQueue q;
  int fired = 0;
  const TimerId t = q.schedule_timer(2.0, [&] { ++fired; });
  EXPECT_NE(t, kNoTimer);
  q.run_to_idle();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 2.0);
  EXPECT_FALSE(q.cancel(t));  // already fired
}

TEST(EventQueue, CancelledTimerNeverRunsNorAdvancesTheClock) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] { fired += 10; });
  const TimerId t = q.schedule_timer(5.0, [&] { fired += 100; });
  EXPECT_EQ(q.pending(), 2u);
  EXPECT_TRUE(q.cancel(t));
  EXPECT_FALSE(q.cancel(t));  // double cancel is a no-op
  EXPECT_EQ(q.pending(), 1u);
  const auto run = q.run_to_idle();
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(run.processed, 1u);
  EXPECT_EQ(q.now(), 1.0);  // the cancelled 5.0 event left no trace
  EXPECT_TRUE(q.idle());
}

TEST(EventQueue, CancelFromInsideAHandlerSuppressesALaterTimer) {
  // The ack-cancels-retransmit pattern of the protocol engine: the timer
  // is already in the heap when an earlier event cancels it.
  EventQueue q;
  int retransmits = 0;
  const TimerId rto = q.schedule_timer(3.0, [&] { ++retransmits; });
  q.schedule(1.0, [&] { EXPECT_TRUE(q.cancel(rto)); });
  q.run_to_idle();
  EXPECT_EQ(retransmits, 0);
  EXPECT_EQ(q.now(), 1.0);
}

TEST(EventQueue, TimersAndEventsShareDeterministicFifoTies) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(0); });
  q.schedule_timer(1.0, [&] { order.push_back(1); });
  q.schedule(1.0, [&] { order.push_back(2); });
  q.schedule_timer(1.0, [&] { order.push_back(3); });
  q.run_to_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Metrics, MessageCounting) {
  Metrics m;
  m.count_message(MessageKind::kRouteForward);
  m.count_message(MessageKind::kRouteForward, 4);
  m.count_message(MessageKind::kVoronoiUpdate, 2);
  EXPECT_EQ(m.messages(MessageKind::kRouteForward), 5u);
  EXPECT_EQ(m.messages(MessageKind::kVoronoiUpdate), 2u);
  EXPECT_EQ(m.total_messages(), 7u);
}

TEST(Metrics, OperationRecords) {
  Metrics m;
  m.record_operation(OperationKind::kJoin, 10, 40);
  m.record_operation(OperationKind::kJoin, 20, 60);
  EXPECT_EQ(m.hops(OperationKind::kJoin).count(), 2u);
  EXPECT_DOUBLE_EQ(m.hops(OperationKind::kJoin).mean(), 15.0);
  EXPECT_DOUBLE_EQ(m.operation_messages(OperationKind::kJoin).mean(), 50.0);
  m.reset();
  EXPECT_EQ(m.total_messages(), 0u);
  EXPECT_EQ(m.hops(OperationKind::kJoin).count(), 0u);
}

TEST(Metrics, KindNames) {
  EXPECT_EQ(message_kind_name(MessageKind::kRouteForward), "route_forward");
  EXPECT_EQ(message_kind_name(MessageKind::kQueryAnswer), "query_answer");
  EXPECT_EQ(message_kind_name(MessageKind::kJoin), "join");
  EXPECT_EQ(message_kind_name(MessageKind::kAck), "ack");
  EXPECT_EQ(operation_kind_name(OperationKind::kLeave), "leave");
}

}  // namespace
}  // namespace voronet::sim
