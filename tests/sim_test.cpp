// Tests for the discrete-event engine and the metrics registry.
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "common/expect.hpp"

namespace voronet::sim {
namespace {

TEST(EventQueue, ExecutesInTimestampOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  q.run_to_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesResolveFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  q.run_to_idle();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, HandlersMayScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) q.schedule(1.0, chain);
  };
  q.schedule(0.0, chain);
  const std::size_t processed = q.run_to_idle();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(processed, 5u);
  EXPECT_EQ(q.now(), 4.0);
}

TEST(EventQueue, RelativeDelaysAccumulate) {
  EventQueue q;
  double seen = -1.0;
  q.schedule(2.0, [&] {
    q.schedule(3.0, [&] { seen = q.now(); });
  });
  q.run_to_idle();
  EXPECT_EQ(seen, 5.0);
}

TEST(EventQueue, NegativeDelayRejected) {
  EventQueue q;
  EXPECT_THROW(q.schedule(-1.0, [] {}), ContractError);
}

TEST(EventQueue, EventBudgetStopsRunaway) {
  EventQueue q;
  std::function<void()> forever = [&] { q.schedule(1.0, forever); };
  q.schedule(0.0, forever);
  EXPECT_THROW(q.run_to_idle(1000), ContractError);
}

TEST(EventQueue, StepReturnsFalseWhenIdle) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  q.schedule(1.0, [] {});
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
}

TEST(Metrics, MessageCounting) {
  Metrics m;
  m.count_message(MessageKind::kRouteForward);
  m.count_message(MessageKind::kRouteForward, 4);
  m.count_message(MessageKind::kVoronoiUpdate, 2);
  EXPECT_EQ(m.messages(MessageKind::kRouteForward), 5u);
  EXPECT_EQ(m.messages(MessageKind::kVoronoiUpdate), 2u);
  EXPECT_EQ(m.total_messages(), 7u);
}

TEST(Metrics, OperationRecords) {
  Metrics m;
  m.record_operation(OperationKind::kJoin, 10, 40);
  m.record_operation(OperationKind::kJoin, 20, 60);
  EXPECT_EQ(m.hops(OperationKind::kJoin).count(), 2u);
  EXPECT_DOUBLE_EQ(m.hops(OperationKind::kJoin).mean(), 15.0);
  EXPECT_DOUBLE_EQ(m.operation_messages(OperationKind::kJoin).mean(), 50.0);
  m.reset();
  EXPECT_EQ(m.total_messages(), 0u);
  EXPECT_EQ(m.hops(OperationKind::kJoin).count(), 0u);
}

TEST(Metrics, KindNames) {
  EXPECT_EQ(message_kind_name(MessageKind::kRouteForward), "route_forward");
  EXPECT_EQ(message_kind_name(MessageKind::kQueryAnswer), "query_answer");
  EXPECT_EQ(operation_kind_name(OperationKind::kLeave), "leave");
}

}  // namespace
}  // namespace voronet::sim
