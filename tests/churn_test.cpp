// Tests for the event-driven churn driver.
#include "voronet/churn.hpp"

#include <gtest/gtest.h>

namespace voronet {
namespace {

TEST(Churn, RunsAndKeepsInvariants) {
  OverlayConfig cfg;
  cfg.n_max = 2048;
  cfg.seed = 1;
  Overlay overlay(cfg);
  Rng rng(1);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  for (int i = 0; i < 50; ++i) overlay.insert(gen.next(rng));

  ChurnConfig churn;
  churn.join_rate = 2.0;
  churn.leave_rate = 1.0;
  churn.query_rate = 3.0;
  churn.duration = 50.0;
  churn.seed = 1;
  const ChurnReport report = run_churn(overlay, gen, churn);

  EXPECT_GT(report.joins, 0u);
  EXPECT_GT(report.leaves, 0u);
  EXPECT_GT(report.queries, 0u);
  EXPECT_EQ(report.final_population, overlay.size());
  EXPECT_LE(report.simulated_time, churn.duration);
  EXPECT_EQ(report.events_processed,
            report.joins + report.leaves + report.queries);
  overlay.check_invariants();
}

TEST(Churn, PopulationFloorIsRespected) {
  OverlayConfig cfg;
  cfg.n_max = 512;
  cfg.seed = 2;
  Overlay overlay(cfg);
  Rng rng(2);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  for (int i = 0; i < 12; ++i) overlay.insert(gen.next(rng));

  ChurnConfig churn;
  churn.join_rate = 0.0;  // leaves only
  churn.leave_rate = 5.0;
  churn.query_rate = 0.0;
  churn.duration = 100.0;
  churn.min_population = 8;
  churn.seed = 2;
  run_churn(overlay, gen, churn);
  EXPECT_EQ(overlay.size(), 8u);
  overlay.check_invariants();
}

TEST(Churn, GrowthOnlyMatchesJoins) {
  OverlayConfig cfg;
  cfg.n_max = 512;
  cfg.seed = 3;
  Overlay overlay(cfg);
  Rng rng(3);
  workload::PointGenerator gen(workload::DistributionConfig::power_law(2.0));
  overlay.insert(gen.next(rng));

  ChurnConfig churn;
  churn.join_rate = 3.0;
  churn.leave_rate = 0.0;
  churn.query_rate = 0.0;
  churn.duration = 30.0;
  churn.seed = 3;
  const ChurnReport report = run_churn(overlay, gen, churn);
  EXPECT_EQ(overlay.size(), 1 + report.joins);
  overlay.check_invariants();
}

TEST(Churn, EventVocabularyDrivesTheSequentialLayer) {
  // The unified scenario vocabulary: count-based events interpret
  // directly against the overlay, same as the Poisson streams that
  // ChurnConfig::events() expands into.
  OverlayConfig cfg;
  cfg.n_max = 512;
  cfg.seed = 5;
  Overlay overlay(cfg);
  Rng rng(5);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  for (int i = 0; i < 30; ++i) overlay.insert(gen.next(rng));

  const std::vector<scenario::Event> timeline = {
      scenario::Event::join_burst(0.0, 25, 10.0),
      scenario::Event::leave(2.0, 10, 8.0, /*min_population=*/8,
                             scenario::Spread::kUniform),
      scenario::Event::query_stream(0.0, 40, 10.0),
      scenario::Event::quiesce(10.0),  // no-op barrier, accepted
  };
  const ChurnReport report = run_events(overlay, gen, timeline, 99);
  EXPECT_EQ(report.joins, 25u);
  EXPECT_EQ(report.leaves, 10u);
  EXPECT_EQ(report.queries, 40u);
  EXPECT_EQ(overlay.size(), 30u + 25u - 10u);
  EXPECT_GT(report.total_messages, 0u);
  overlay.check_invariants();

  // Message-layer-only events are rejected loudly, not silently dropped.
  EXPECT_THROW(run_events(overlay, gen,
                          {scenario::Event::crash(0.0, 1, 1.0, 8)}, 99),
               std::exception);

  // ChurnConfig is now a spelling of the same vocabulary.
  ChurnConfig config;
  const auto events = config.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, scenario::EventKind::kJoinBurst);
  EXPECT_EQ(events[0].spread, scenario::Spread::kPoisson);
  EXPECT_DOUBLE_EQ(events[0].rate, config.join_rate);
  EXPECT_EQ(events[1].min_population, config.min_population);
}

TEST(Churn, DeterministicForSeed) {
  const auto run_once = [] {
    OverlayConfig cfg;
    cfg.n_max = 512;
    cfg.seed = 4;
    Overlay overlay(cfg);
    Rng rng(4);
    workload::PointGenerator gen(workload::DistributionConfig::uniform());
    for (int i = 0; i < 20; ++i) overlay.insert(gen.next(rng));
    ChurnConfig churn;
    churn.duration = 25.0;
    churn.seed = 4;
    const ChurnReport r = run_churn(overlay, gen, churn);
    return std::tuple{r.joins, r.leaves, r.queries, overlay.size()};
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace voronet
