// Tests for the event-driven churn driver.
#include "voronet/churn.hpp"

#include <gtest/gtest.h>

namespace voronet {
namespace {

TEST(Churn, RunsAndKeepsInvariants) {
  OverlayConfig cfg;
  cfg.n_max = 2048;
  cfg.seed = 1;
  Overlay overlay(cfg);
  Rng rng(1);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  for (int i = 0; i < 50; ++i) overlay.insert(gen.next(rng));

  ChurnConfig churn;
  churn.join_rate = 2.0;
  churn.leave_rate = 1.0;
  churn.query_rate = 3.0;
  churn.duration = 50.0;
  churn.seed = 1;
  const ChurnReport report = run_churn(overlay, gen, churn);

  EXPECT_GT(report.joins, 0u);
  EXPECT_GT(report.leaves, 0u);
  EXPECT_GT(report.queries, 0u);
  EXPECT_EQ(report.final_population, overlay.size());
  EXPECT_LE(report.simulated_time, churn.duration);
  EXPECT_EQ(report.events_processed,
            report.joins + report.leaves + report.queries);
  overlay.check_invariants();
}

TEST(Churn, PopulationFloorIsRespected) {
  OverlayConfig cfg;
  cfg.n_max = 512;
  cfg.seed = 2;
  Overlay overlay(cfg);
  Rng rng(2);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  for (int i = 0; i < 12; ++i) overlay.insert(gen.next(rng));

  ChurnConfig churn;
  churn.join_rate = 0.0;  // leaves only
  churn.leave_rate = 5.0;
  churn.query_rate = 0.0;
  churn.duration = 100.0;
  churn.min_population = 8;
  churn.seed = 2;
  run_churn(overlay, gen, churn);
  EXPECT_EQ(overlay.size(), 8u);
  overlay.check_invariants();
}

TEST(Churn, GrowthOnlyMatchesJoins) {
  OverlayConfig cfg;
  cfg.n_max = 512;
  cfg.seed = 3;
  Overlay overlay(cfg);
  Rng rng(3);
  workload::PointGenerator gen(workload::DistributionConfig::power_law(2.0));
  overlay.insert(gen.next(rng));

  ChurnConfig churn;
  churn.join_rate = 3.0;
  churn.leave_rate = 0.0;
  churn.query_rate = 0.0;
  churn.duration = 30.0;
  churn.seed = 3;
  const ChurnReport report = run_churn(overlay, gen, churn);
  EXPECT_EQ(overlay.size(), 1 + report.joins);
  overlay.check_invariants();
}

TEST(Churn, DeterministicForSeed) {
  const auto run_once = [] {
    OverlayConfig cfg;
    cfg.n_max = 512;
    cfg.seed = 4;
    Overlay overlay(cfg);
    Rng rng(4);
    workload::PointGenerator gen(workload::DistributionConfig::uniform());
    for (int i = 0; i < 20; ++i) overlay.insert(gen.next(rng));
    ChurnConfig churn;
    churn.duration = 25.0;
    churn.seed = 4;
    const ChurnReport r = run_churn(overlay, gen, churn);
    return std::tuple{r.joins, r.leaves, r.queries, overlay.size()};
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace voronet
