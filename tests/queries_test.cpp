// Tests for the range (segment) and radius query mechanisms built on the
// overlay (paper, section 7 perspectives).
#include "voronet/queries.hpp"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "geometry/predicates.hpp"
#include "geometry/voronoi.hpp"
#include "workload/distributions.hpp"

namespace voronet {
namespace {

TEST(RadiusQuery, MatchesBruteForce) {
  OverlayConfig cfg;
  cfg.n_max = 4096;
  cfg.seed = 21;
  Overlay overlay(cfg);
  Rng rng(21);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  for (int i = 0; i < 400; ++i) overlay.insert(gen.next(rng));

  for (int q = 0; q < 40; ++q) {
    const Vec2 center{rng.uniform(), rng.uniform()};
    const double radius = rng.uniform(0.01, 0.2);
    const auto res =
        radius_query(overlay, overlay.random_object(rng), center, radius);

    std::vector<ObjectId> expected;
    for (const ObjectId o : overlay.objects()) {
      if (dist2(overlay.position(o), center) <= radius * radius) {
        expected.push_back(o);
      }
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(res.matches, expected)
        << "center=(" << center.x << "," << center.y << ") r=" << radius;
    // The flood visits at least the matching cells.
    EXPECT_GE(res.owners.size(), res.matches.size());
  }
}

TEST(RadiusQuery, ZeroRadiusFindsOwnerOnly) {
  OverlayConfig cfg;
  cfg.n_max = 1024;
  cfg.seed = 22;
  Overlay overlay(cfg);
  Rng rng(22);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  for (int i = 0; i < 100; ++i) overlay.insert(gen.next(rng));
  const Vec2 center{0.4, 0.6};
  const auto res =
      radius_query(overlay, overlay.random_object(rng), center, 0.0);
  EXPECT_EQ(res.owners.size(), 1u);
  EXPECT_EQ(res.owners.front(), overlay.tessellation().nearest(center));
}

TEST(RangeQuery, VisitsEveryCellTheSegmentCrosses) {
  OverlayConfig cfg;
  cfg.n_max = 2048;
  cfg.seed = 23;
  Overlay overlay(cfg);
  Rng rng(23);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  for (int i = 0; i < 300; ++i) overlay.insert(gen.next(rng));

  for (int q = 0; q < 25; ++q) {
    const Vec2 a{rng.uniform(), rng.uniform()};
    const Vec2 b{rng.uniform(), rng.uniform()};
    const auto res =
        range_query(overlay, overlay.random_object(rng), a, b, 0.0);
    const std::set<ObjectId> owners(res.owners.begin(), res.owners.end());

    // Dense sampling of the segment: every sampled point's owner must have
    // been visited (samples strictly between Voronoi vertices, so the
    // measure-zero grazing cases do not fire).
    for (int s = 0; s <= 200; ++s) {
      const double t = s / 200.0;
      const Vec2 p = a + t * (b - a);
      const ObjectId owner = overlay.tessellation().nearest(p);
      EXPECT_TRUE(owners.count(owner))
          << "segment sample at t=" << t << " owned by unvisited object";
    }
  }
}

TEST(RangeQuery, ToleranceSelectsNearbyObjects) {
  OverlayConfig cfg;
  cfg.n_max = 2048;
  cfg.seed = 24;
  Overlay overlay(cfg);
  Rng rng(24);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  for (int i = 0; i < 300; ++i) overlay.insert(gen.next(rng));

  const Vec2 a{0.1, 0.5};
  const Vec2 b{0.9, 0.5};
  const double tol = 0.05;
  const auto res = range_query(overlay, overlay.random_object(rng), a, b, tol);
  // The stadium flood must find exactly the objects within the tolerance
  // strip (brute-force comparison).
  std::vector<ObjectId> expected;
  for (const ObjectId o : overlay.objects()) {
    if (geo::dist2_to_segment(a, b, overlay.position(o)) <= tol * tol) {
      expected.push_back(o);
    }
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(res.matches, expected);
  const std::set<ObjectId> owners(res.owners.begin(), res.owners.end());
  for (const ObjectId o : res.matches) EXPECT_TRUE(owners.count(o));
  EXPECT_FALSE(res.matches.empty());
}

TEST(RangeQuery, DegenerateSegmentEqualsRadiusQuery) {
  // A zero-length segment with tolerance r floods the same disk as a
  // radius query of radius r.
  OverlayConfig cfg;
  cfg.n_max = 1024;
  cfg.seed = 25;
  Overlay overlay(cfg);
  Rng rng(25);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  for (int i = 0; i < 100; ++i) overlay.insert(gen.next(rng));
  const Vec2 p{0.3, 0.3};
  const ObjectId from = overlay.random_object(rng);
  const auto seg = range_query(overlay, from, p, p, 0.2);
  const auto disk = radius_query(overlay, from, p, 0.2);
  EXPECT_EQ(seg.matches, disk.matches);
  // With zero tolerance it collapses to the single owning cell.
  const auto point = range_query(overlay, from, p, p, 0.0);
  EXPECT_EQ(point.owners.size(), 1u);
  EXPECT_EQ(point.owners.front(), overlay.tessellation().nearest(p));
}

TEST(RangeQuery, GrazingSegmentThroughVoronoiVertex) {
  // Four cocircular sites with the exactly representable Voronoi vertex
  // (0.5, 0.5).  The diagonal segment passes through the vertex: it
  // crosses two cells and touches the other two in exactly one point.
  // The region test must return distance 0 for the grazed cells -- the
  // old ternary-search approximation reported a small positive distance
  // and a tolerance-0 query skipped them.
  OverlayConfig cfg;
  cfg.n_max = 64;
  cfg.seed = 31;
  Overlay overlay(cfg);
  std::vector<ObjectId> core;
  core.push_back(overlay.insert({0.25, 0.25}));
  core.push_back(overlay.insert({0.75, 0.25}));
  core.push_back(overlay.insert({0.25, 0.75}));
  core.push_back(overlay.insert({0.75, 0.75}));
  const Vec2 a{0.375, 0.375};
  const Vec2 b{0.625, 0.625};

  // Direct geometric regression: every cell is at distance exactly 0
  // (all coordinates dyadic, so the half-plane clipping is exact).
  for (const ObjectId o : core) {
    EXPECT_EQ(geo::dist2_region_to_segment(overlay.tessellation(), o, a, b),
              0.0)
        << "cell of object " << o << " not recognised as grazed";
  }

  for (const ObjectId from : core) {
    const auto res = range_query(overlay, from, a, b, 0.0);
    std::vector<ObjectId> owners = res.owners;
    std::sort(owners.begin(), owners.end());
    std::vector<ObjectId> expected = core;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(owners, expected);
  }
}

TEST(RegionQueries, CountingModelInvariants) {
  // result_messages = forward_messages + one final aggregate unless the
  // issuer is the flood root itself (queries.hpp counting model), and a
  // query served by a single cell sends no forwards beyond the probes of
  // its qualifying neighbours.
  OverlayConfig cfg;
  cfg.n_max = 2048;
  cfg.seed = 32;
  Overlay overlay(cfg);
  Rng rng(32);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  for (int i = 0; i < 300; ++i) overlay.insert(gen.next(rng));

  for (int q = 0; q < 20; ++q) {
    const Vec2 center{rng.uniform(), rng.uniform()};
    const ObjectId from = overlay.random_object(rng);
    const auto res = radius_query(overlay, from, center, rng.uniform(0.0, 0.2));
    ASSERT_FALSE(res.owners.empty());
    const std::size_t fin = res.owners.front() != from ? 1u : 0u;
    EXPECT_EQ(res.result_messages, res.forward_messages + fin);
    EXPECT_EQ(res.total_messages(),
              res.route_hops + res.forward_messages + res.result_messages);
  }

  // Radius 0 at a generic point: one served cell, no flood traffic
  // (no neighbouring region contains the centre).
  const Vec2 center{0.437, 0.611};
  const ObjectId owner = overlay.tessellation().nearest(center);
  const auto point = radius_query(overlay, owner, center, 0.0);
  EXPECT_EQ(point.owners.size(), 1u);
  EXPECT_EQ(point.forward_messages, 0u);
  EXPECT_EQ(point.result_messages, 0u);  // issuer == root: local answer
  EXPECT_EQ(point.route_hops, 0u);
}

TEST(RegionQueries, RandomizedDifferentialAgainstBruteForce) {
  // Both query styles against exhaustive scans over every object, across
  // many seeds: `matches` by site distance, `owners` by the same region
  // test the flood applies (so this also proves the flood's connectivity
  // claim: no qualifying cell is unreachable).
  const int kSeeds = 50;
  for (int seed = 0; seed < kSeeds; ++seed) {
    OverlayConfig cfg;
    cfg.n_max = 8192;
    cfg.seed = 100 + static_cast<std::uint64_t>(seed);
    Overlay overlay(cfg);
    Rng rng(cfg.seed);
    workload::PointGenerator gen(
        seed % 2 == 0 ? workload::DistributionConfig::uniform()
                      : workload::DistributionConfig::power_law(2.0));
    const int n = seed < 2 ? 2000 : 250;  // two full-size populations
    for (int i = 0; i < n; ++i) overlay.insert(gen.next(rng));
    const auto& dt = overlay.tessellation();

    for (int q = 0; q < 3; ++q) {
      // --- range ---------------------------------------------------------
      const Vec2 a{rng.uniform(), rng.uniform()};
      const Vec2 b{rng.uniform(), rng.uniform()};
      const double tol = q == 0 ? 0.0 : rng.uniform(0.0, 0.1);
      const double tol2 = tol * tol;
      const auto res =
          range_query(overlay, overlay.random_object(rng), a, b, tol);
      std::vector<ObjectId> owners = res.owners;
      std::sort(owners.begin(), owners.end());
      std::vector<ObjectId> expect_owners;
      std::vector<ObjectId> expect_matches;
      for (const ObjectId o : overlay.objects()) {
        if (geo::dist2_region_to_segment(dt, o, a, b) <= tol2) {
          expect_owners.push_back(o);
        }
        if (geo::dist2_to_segment(a, b, overlay.position(o)) <= tol2) {
          expect_matches.push_back(o);
        }
      }
      std::sort(expect_owners.begin(), expect_owners.end());
      std::sort(expect_matches.begin(), expect_matches.end());
      EXPECT_EQ(owners, expect_owners) << "seed " << seed << " range " << q;
      EXPECT_EQ(res.matches, expect_matches)
          << "seed " << seed << " range " << q;

      // --- radius --------------------------------------------------------
      const Vec2 center{rng.uniform(), rng.uniform()};
      const double radius = q == 0 ? 0.0 : rng.uniform(0.0, 0.2);
      const double r2 = radius * radius;
      const auto disk =
          radius_query(overlay, overlay.random_object(rng), center, radius);
      owners = disk.owners;
      std::sort(owners.begin(), owners.end());
      expect_owners.clear();
      expect_matches.clear();
      for (const ObjectId o : overlay.objects()) {
        if (geo::dist2_to_region(dt, o, center) <= r2) {
          expect_owners.push_back(o);
        }
        if (dist2(overlay.position(o), center) <= r2) {
          expect_matches.push_back(o);
        }
      }
      std::sort(expect_owners.begin(), expect_owners.end());
      std::sort(expect_matches.begin(), expect_matches.end());
      EXPECT_EQ(owners, expect_owners) << "seed " << seed << " radius " << q;
      EXPECT_EQ(disk.matches, expect_matches)
          << "seed " << seed << " radius " << q;
    }
  }
}

TEST(RegionQueries, DegenerateCases) {
  OverlayConfig cfg;
  cfg.n_max = 4096;
  cfg.seed = 33;
  Overlay overlay(cfg);
  Rng rng(33);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  for (int i = 0; i < 400; ++i) overlay.insert(gen.next(rng));

  // Zero-length segment with positive tolerance == radius query.
  const Vec2 p{0.31, 0.64};
  const ObjectId from = overlay.random_object(rng);
  const auto seg = range_query(overlay, from, p, p, 0.15);
  const auto disk = radius_query(overlay, from, p, 0.15);
  EXPECT_EQ(seg.matches, disk.matches);
  std::vector<ObjectId> seg_owners = seg.owners;
  std::vector<ObjectId> disk_owners = disk.owners;
  std::sort(seg_owners.begin(), seg_owners.end());
  std::sort(disk_owners.begin(), disk_owners.end());
  EXPECT_EQ(seg_owners, disk_owners);

  // Query region entirely outside the populated hull: no matches, but
  // the flood still serves the boundary cells the region meets (hull
  // cells are unbounded).
  const auto outside = range_query(overlay, from, {1.3, 1.2}, {1.6, 1.5},
                                   0.01);
  EXPECT_TRUE(outside.matches.empty());
  EXPECT_FALSE(outside.owners.empty());
  for (const ObjectId o : outside.owners) {
    EXPECT_LE(
        geo::dist2_region_to_segment(overlay.tessellation(), o, {1.3, 1.2},
                                     {1.6, 1.5}),
        0.01 * 0.01);
  }
  const auto far_disk = radius_query(overlay, from, {2.0, 2.0}, 0.05);
  EXPECT_TRUE(far_disk.matches.empty());
  EXPECT_FALSE(far_disk.owners.empty());

  // `from` equal to the owner of the queried point: zero route hops,
  // no final result message.
  const Vec2 center{0.52, 0.48};
  const ObjectId owner = overlay.tessellation().nearest(center);
  const auto local = radius_query(overlay, owner, center, 0.08);
  EXPECT_EQ(local.route_hops, 0u);
  EXPECT_EQ(local.owners.front(), owner);
  EXPECT_EQ(local.result_messages, local.forward_messages);
}

TEST(RangeQuery, SkewedDataStillCovered) {
  OverlayConfig cfg;
  cfg.n_max = 2048;
  cfg.seed = 26;
  Overlay overlay(cfg);
  Rng rng(26);
  workload::PointGenerator gen(workload::DistributionConfig::power_law(2.0));
  for (int i = 0; i < 300; ++i) overlay.insert(gen.next(rng));
  const Vec2 a{0.0, 0.0};
  const Vec2 b{1.0, 1.0};
  const auto res = range_query(overlay, overlay.random_object(rng), a, b, 0.0);
  const std::set<ObjectId> owners(res.owners.begin(), res.owners.end());
  for (int s = 0; s <= 100; ++s) {
    const double t = s / 100.0;
    const ObjectId owner = overlay.tessellation().nearest(a + t * (b - a));
    EXPECT_TRUE(owners.count(owner));
  }
}

}  // namespace
}  // namespace voronet
