// Tests for the range (segment) and radius query mechanisms built on the
// overlay (paper, section 7 perspectives).
#include "voronet/queries.hpp"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "geometry/predicates.hpp"
#include "workload/distributions.hpp"

namespace voronet {
namespace {

TEST(RadiusQuery, MatchesBruteForce) {
  OverlayConfig cfg;
  cfg.n_max = 4096;
  cfg.seed = 21;
  Overlay overlay(cfg);
  Rng rng(21);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  for (int i = 0; i < 400; ++i) overlay.insert(gen.next(rng));

  for (int q = 0; q < 40; ++q) {
    const Vec2 center{rng.uniform(), rng.uniform()};
    const double radius = rng.uniform(0.01, 0.2);
    const auto res =
        radius_query(overlay, overlay.random_object(rng), center, radius);

    std::vector<ObjectId> expected;
    for (const ObjectId o : overlay.objects()) {
      if (dist2(overlay.position(o), center) <= radius * radius) {
        expected.push_back(o);
      }
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(res.matches, expected)
        << "center=(" << center.x << "," << center.y << ") r=" << radius;
    // The flood visits at least the matching cells.
    EXPECT_GE(res.owners.size(), res.matches.size());
  }
}

TEST(RadiusQuery, ZeroRadiusFindsOwnerOnly) {
  OverlayConfig cfg;
  cfg.n_max = 1024;
  cfg.seed = 22;
  Overlay overlay(cfg);
  Rng rng(22);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  for (int i = 0; i < 100; ++i) overlay.insert(gen.next(rng));
  const Vec2 center{0.4, 0.6};
  const auto res =
      radius_query(overlay, overlay.random_object(rng), center, 0.0);
  EXPECT_EQ(res.owners.size(), 1u);
  EXPECT_EQ(res.owners.front(), overlay.tessellation().nearest(center));
}

TEST(RangeQuery, VisitsEveryCellTheSegmentCrosses) {
  OverlayConfig cfg;
  cfg.n_max = 2048;
  cfg.seed = 23;
  Overlay overlay(cfg);
  Rng rng(23);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  for (int i = 0; i < 300; ++i) overlay.insert(gen.next(rng));

  for (int q = 0; q < 25; ++q) {
    const Vec2 a{rng.uniform(), rng.uniform()};
    const Vec2 b{rng.uniform(), rng.uniform()};
    const auto res =
        range_query(overlay, overlay.random_object(rng), a, b, 0.0);
    const std::set<ObjectId> owners(res.owners.begin(), res.owners.end());

    // Dense sampling of the segment: every sampled point's owner must have
    // been visited (samples strictly between Voronoi vertices, so the
    // measure-zero grazing cases do not fire).
    for (int s = 0; s <= 200; ++s) {
      const double t = s / 200.0;
      const Vec2 p = a + t * (b - a);
      const ObjectId owner = overlay.tessellation().nearest(p);
      EXPECT_TRUE(owners.count(owner))
          << "segment sample at t=" << t << " owned by unvisited object";
    }
  }
}

TEST(RangeQuery, ToleranceSelectsNearbyObjects) {
  OverlayConfig cfg;
  cfg.n_max = 2048;
  cfg.seed = 24;
  Overlay overlay(cfg);
  Rng rng(24);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  for (int i = 0; i < 300; ++i) overlay.insert(gen.next(rng));

  const Vec2 a{0.1, 0.5};
  const Vec2 b{0.9, 0.5};
  const double tol = 0.05;
  const auto res = range_query(overlay, overlay.random_object(rng), a, b, tol);
  // The stadium flood must find exactly the objects within the tolerance
  // strip (brute-force comparison).
  std::vector<ObjectId> expected;
  for (const ObjectId o : overlay.objects()) {
    if (geo::dist2_to_segment(a, b, overlay.position(o)) <= tol * tol) {
      expected.push_back(o);
    }
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(res.matches, expected);
  const std::set<ObjectId> owners(res.owners.begin(), res.owners.end());
  for (const ObjectId o : res.matches) EXPECT_TRUE(owners.count(o));
  EXPECT_FALSE(res.matches.empty());
}

TEST(RangeQuery, DegenerateSegmentEqualsRadiusQuery) {
  // A zero-length segment with tolerance r floods the same disk as a
  // radius query of radius r.
  OverlayConfig cfg;
  cfg.n_max = 1024;
  cfg.seed = 25;
  Overlay overlay(cfg);
  Rng rng(25);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  for (int i = 0; i < 100; ++i) overlay.insert(gen.next(rng));
  const Vec2 p{0.3, 0.3};
  const ObjectId from = overlay.random_object(rng);
  const auto seg = range_query(overlay, from, p, p, 0.2);
  const auto disk = radius_query(overlay, from, p, 0.2);
  EXPECT_EQ(seg.matches, disk.matches);
  // With zero tolerance it collapses to the single owning cell.
  const auto point = range_query(overlay, from, p, p, 0.0);
  EXPECT_EQ(point.owners.size(), 1u);
  EXPECT_EQ(point.owners.front(), overlay.tessellation().nearest(p));
}

TEST(RangeQuery, SkewedDataStillCovered) {
  OverlayConfig cfg;
  cfg.n_max = 2048;
  cfg.seed = 26;
  Overlay overlay(cfg);
  Rng rng(26);
  workload::PointGenerator gen(workload::DistributionConfig::power_law(2.0));
  for (int i = 0; i < 300; ++i) overlay.insert(gen.next(rng));
  const Vec2 a{0.0, 0.0};
  const Vec2 b{1.0, 1.0};
  const auto res = range_query(overlay, overlay.random_object(rng), a, b, 0.0);
  const std::set<ObjectId> owners(res.owners.begin(), res.owners.end());
  for (int s = 0; s <= 100; ++s) {
    const double t = s / 100.0;
    const ObjectId owner = overlay.tessellation().nearest(a + t * (b - a));
    EXPECT_TRUE(owners.count(owner));
  }
}

}  // namespace
}  // namespace voronet
