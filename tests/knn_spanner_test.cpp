// Tests for k-nearest-neighbour search over the tessellation and the
// Delaunay t-spanner property (the geometric fact behind the paper's
// range-query perspective, section 7).
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "geometry/delaunay.hpp"
#include "geometry/spanner.hpp"

namespace voronet::geo {
namespace {

using VertexId = DelaunayTriangulation::VertexId;

class KnnRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KnnRandomized, MatchesBruteForceOrder) {
  DelaunayTriangulation dt;
  Rng rng(GetParam());
  std::vector<VertexId> ids;
  std::vector<Vec2> pts;
  for (int i = 0; i < 300; ++i) {
    const Vec2 p{rng.uniform(), rng.uniform()};
    const auto out = dt.insert(p);
    if (out.created) {
      ids.push_back(out.vertex);
      pts.push_back(p);
    }
  }
  std::vector<VertexId> got;
  for (int q = 0; q < 100; ++q) {
    const Vec2 p{rng.uniform(-0.1, 1.1), rng.uniform(-0.1, 1.1)};
    const std::size_t k = 1 + rng.index(12);
    dt.k_nearest(p, k, got);
    ASSERT_EQ(got.size(), std::min(k, ids.size()));

    // Brute force: sort all vertices by distance (ties by id).
    std::vector<VertexId> want = ids;
    std::sort(want.begin(), want.end(), [&](VertexId a, VertexId b) {
      const double da = dist2(dt.position(a), p);
      const double db = dist2(dt.position(b), p);
      return da < db || (da == db && a < b);
    });
    want.resize(got.size());
    EXPECT_EQ(got, want) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnnRandomized,
                         ::testing::Values(1ull, 7ull, 42ull, 1337ull));

TEST(Knn, KLargerThanPopulation) {
  DelaunayTriangulation dt;
  dt.insert({0.1, 0.1});
  dt.insert({0.9, 0.1});
  dt.insert({0.5, 0.9});
  std::vector<VertexId> got;
  dt.k_nearest({0.5, 0.5}, 10, got);
  EXPECT_EQ(got.size(), 3u);
}

TEST(Knn, PendingModeWorks) {
  DelaunayTriangulation dt;
  dt.insert({0.1, 0.1});
  dt.insert({0.5, 0.5});
  std::vector<VertexId> got;
  dt.k_nearest({0.0, 0.0}, 2, got);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(dt.position(got[0]), (Vec2{0.1, 0.1}));
}

TEST(Knn, ZeroKGivesNothing) {
  DelaunayTriangulation dt;
  dt.insert({0.1, 0.1});
  std::vector<VertexId> got{99};
  dt.k_nearest({0.5, 0.5}, 0, got);
  EXPECT_TRUE(got.empty());
}

TEST(Spanner, GraphDistanceBasics) {
  DelaunayTriangulation dt;
  const auto a = dt.insert({0.0, 0.0}).vertex;
  const auto b = dt.insert({1.0, 0.0}).vertex;
  const auto c = dt.insert({0.5, 0.8}).vertex;
  EXPECT_DOUBLE_EQ(graph_distance(dt, a, a), 0.0);
  // a-b is a Delaunay edge of the triangle: direct distance.
  EXPECT_DOUBLE_EQ(graph_distance(dt, a, b), 1.0);
  EXPECT_GT(graph_distance(dt, a, c), 0.9);
}

TEST(Spanner, DelaunayDilationIsBounded) {
  // Keil-Gutwin: the Delaunay triangulation is a t-spanner with
  // t = 2*pi/(3*cos(pi/6)) ~ 2.418; no sampled pair may exceed it.
  DelaunayTriangulation dt;
  Rng rng(5);
  for (int i = 0; i < 600; ++i) dt.insert({rng.uniform(), rng.uniform()});
  Rng pair_rng(6);
  const DilationStats stats = sample_dilation(dt, 400, pair_rng);
  EXPECT_EQ(stats.pairs, 400u);
  EXPECT_GE(stats.max_dilation, 1.0);
  EXPECT_LT(stats.max_dilation, 2.419);
  EXPECT_LT(stats.mean_dilation, 1.3)
      << "typical Delaunay dilation is well below the worst case";
}

TEST(Spanner, DilationOnSkewedPoints) {
  // Clustered points stress the spanner bound locally.
  DelaunayTriangulation dt;
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    const double cx = (i % 3) * 0.45 + 0.05;
    dt.insert({cx + 0.01 * rng.uniform(), 0.5 + 0.01 * rng.uniform()});
  }
  Rng pair_rng(8);
  const DilationStats stats = sample_dilation(dt, 300, pair_rng);
  EXPECT_LT(stats.max_dilation, 2.419);
}

}  // namespace
}  // namespace voronet::geo
