// Structural, property and oracle tests for the incremental/decremental
// Delaunay triangulation -- the tessellation substrate of VoroNet.
#include "geometry/delaunay.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "geometry/predicates.hpp"
#include "spatial/grid_index.hpp"

namespace voronet::geo {
namespace {

using VertexId = DelaunayTriangulation::VertexId;

using EdgeSet = std::set<std::pair<VertexId, VertexId>>;

/// Exhaustive Delaunay certificate: every real triangle's circumcircle is
/// empty of all live vertices (exact arithmetic).  O(T * N) -- small N only.
void expect_globally_delaunay(const DelaunayTriangulation& dt) {
  dt.for_each_triangle([&](VertexId a, VertexId b, VertexId c) {
    dt.for_each_vertex([&](VertexId w) {
      if (w == a || w == b || w == c) return;
      EXPECT_LE(incircle(dt.position(a), dt.position(b), dt.position(c),
                         dt.position(w)),
                0)
          << "vertex " << w << " inside circumcircle of (" << a << "," << b
          << "," << c << ")";
    });
  });
}

TEST(DelaunayBootstrap, EmptyAndSinglePoint) {
  DelaunayTriangulation dt;
  EXPECT_TRUE(dt.empty());
  EXPECT_FALSE(dt.has_triangles());

  const auto out = dt.insert({0.5, 0.5});
  EXPECT_TRUE(out.created);
  EXPECT_EQ(dt.size(), 1u);
  EXPECT_FALSE(dt.has_triangles());
  EXPECT_TRUE(dt.neighbors(out.vertex).empty());
  EXPECT_EQ(dt.nearest({0.9, 0.9}), out.vertex);
  dt.validate();
}

TEST(DelaunayBootstrap, TwoPointsArePathNeighbors) {
  DelaunayTriangulation dt;
  const auto a = dt.insert({0.2, 0.2}).vertex;
  const auto b = dt.insert({0.8, 0.8}).vertex;
  EXPECT_FALSE(dt.has_triangles());
  EXPECT_EQ(dt.neighbors(a), std::vector<VertexId>{b});
  EXPECT_EQ(dt.neighbors(b), std::vector<VertexId>{a});
  EXPECT_EQ(dt.nearest({0.0, 0.0}), a);
  EXPECT_EQ(dt.nearest({1.0, 1.0}), b);
  dt.validate();
}

TEST(DelaunayBootstrap, CollinearChainStaysPending) {
  DelaunayTriangulation dt;
  std::vector<VertexId> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(dt.insert({0.1 * i, 0.1 * i}).vertex);
  }
  EXPECT_FALSE(dt.has_triangles());
  dt.validate();
  // Path-graph neighbourhood along the line.
  EXPECT_EQ(dt.neighbors(ids[0]).size(), 1u);
  EXPECT_EQ(dt.neighbors(ids[3]).size(), 2u);
  // A non-collinear point triggers triangulation of everything.
  dt.insert({0.9, 0.1});
  EXPECT_TRUE(dt.has_triangles());
  EXPECT_EQ(dt.size(), 7u);
  dt.validate();
  expect_globally_delaunay(dt);
}

TEST(DelaunayBootstrap, TriangleAndGhosts) {
  DelaunayTriangulation dt;
  dt.insert({0.0, 0.0});
  dt.insert({1.0, 0.0});
  dt.insert({0.0, 1.0});
  EXPECT_TRUE(dt.has_triangles());
  dt.validate();
  dt.for_each_vertex([&](VertexId v) {
    EXPECT_TRUE(dt.on_hull(v));
    EXPECT_EQ(dt.neighbors(v).size(), 2u);
  });
}

TEST(DelaunayInsert, DuplicateReturnsExisting) {
  DelaunayTriangulation dt;
  const auto a = dt.insert({0.25, 0.25}).vertex;
  dt.insert({0.75, 0.25});
  dt.insert({0.5, 0.75});
  const auto dup = dt.insert({0.25, 0.25});
  EXPECT_FALSE(dup.created);
  EXPECT_EQ(dup.vertex, a);
  EXPECT_EQ(dt.size(), 3u);
  // Duplicate also detected in pending mode.
  DelaunayTriangulation dt2;
  const auto b = dt2.insert({0.1, 0.1}).vertex;
  EXPECT_FALSE(dt2.insert({0.1, 0.1}).created);
  EXPECT_EQ(dt2.insert({0.1, 0.1}).vertex, b);
}

TEST(DelaunayInsert, PointExactlyOnSharedEdge) {
  DelaunayTriangulation dt;
  dt.insert({0.0, 0.0});
  dt.insert({1.0, 0.0});
  dt.insert({0.5, 1.0});
  dt.insert({0.5, -1.0});
  dt.validate();
  // (0.5, 0) lies exactly on the interior edge between the two triangles.
  const auto out = dt.insert({0.5, 0.0});
  EXPECT_TRUE(out.created);
  dt.validate();
  expect_globally_delaunay(dt);
  EXPECT_EQ(dt.size(), 5u);
}

TEST(DelaunayInsert, PointExactlyOnHullEdge) {
  DelaunayTriangulation dt;
  dt.insert({0.0, 0.0});
  dt.insert({1.0, 0.0});
  dt.insert({0.5, 1.0});
  const auto out = dt.insert({0.5, 0.0});  // on hull edge (0,0)-(1,0)
  EXPECT_TRUE(out.created);
  dt.validate();
  expect_globally_delaunay(dt);
}

TEST(DelaunayInsert, PointOutsideHull) {
  DelaunayTriangulation dt;
  dt.insert({0.4, 0.4});
  dt.insert({0.6, 0.4});
  dt.insert({0.5, 0.6});
  dt.insert({0.5, -2.0});  // far below the hull
  dt.validate();
  expect_globally_delaunay(dt);
  dt.insert({3.0, 0.5});  // far right
  dt.validate();
  expect_globally_delaunay(dt);
}

TEST(DelaunayInsert, CollinearExtensionOfHullEdge) {
  DelaunayTriangulation dt;
  dt.insert({0.0, 0.0});
  dt.insert({1.0, 0.0});
  dt.insert({0.5, 1.0});
  // Collinear with the bottom hull edge, beyond its endpoints.
  dt.insert({2.0, 0.0});
  dt.validate();
  expect_globally_delaunay(dt);
  dt.insert({-1.0, 0.0});
  dt.validate();
  expect_globally_delaunay(dt);
  EXPECT_EQ(dt.size(), 5u);
}

TEST(DelaunayInsert, CocircularGrid) {
  // A perfect k x k lattice maximises cocircular quadruples; the structure
  // must stay topologically consistent (any tie-break is a valid Delaunay
  // triangulation).
  DelaunayTriangulation dt;
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      dt.insert({0.1 * i, 0.1 * j});
    }
  }
  EXPECT_EQ(dt.size(), 25u);
  dt.validate();
}

TEST(DelaunayInsert, AffectedVerticesAreExact) {
  // last_affected() must list exactly the pre-existing vertices whose
  // neighbour set changed (the paper's AddVoronoiRegion update fan-out).
  DelaunayTriangulation dt;
  Rng rng(99);
  std::vector<VertexId> ids;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(dt.insert({rng.uniform(), rng.uniform()}).vertex);
  }
  for (int i = 0; i < 32; ++i) {
    std::map<VertexId, std::vector<VertexId>> before;
    dt.for_each_vertex([&](VertexId v) {
      auto nb = dt.neighbors(v);
      std::sort(nb.begin(), nb.end());
      before[v] = std::move(nb);
    });
    const auto out = dt.insert({rng.uniform(), rng.uniform()});
    ASSERT_TRUE(out.created);
    const std::set<VertexId> affected(dt.last_affected().begin(),
                                      dt.last_affected().end());
    dt.for_each_vertex([&](VertexId v) {
      if (v == out.vertex) return;
      auto nb = dt.neighbors(v);
      std::sort(nb.begin(), nb.end());
      const bool changed = nb != before[v];
      if (changed) {
        EXPECT_TRUE(affected.count(v))
            << "vertex " << v << " changed but was not reported";
      }
      // The reported set may legitimately include vertices whose link was
      // re-examined but unchanged (cavity vertices); it must never miss one.
    });
  }
}

class DelaunayRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DelaunayRandomized, IncrementalInsertionStaysDelaunay) {
  DelaunayTriangulation dt;
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    dt.insert({rng.uniform(), rng.uniform()});
    if (i % 25 == 0) dt.validate();
  }
  dt.validate();
  expect_globally_delaunay(dt);
}

TEST_P(DelaunayRandomized, DeletionMatchesRebuild) {
  Rng rng(GetParam() ^ 0xabcdef);
  std::vector<Vec2> points;
  for (int i = 0; i < 120; ++i) {
    points.push_back({rng.uniform(), rng.uniform()});
  }
  DelaunayTriangulation dt;
  std::vector<VertexId> live;
  for (const auto p : points) live.push_back(dt.insert(p).vertex);

  // Delete half the vertices in random order, validating against a
  // from-scratch rebuild of the survivors (the Delaunay triangulation of
  // points in general position is unique, so edge sets must match).
  for (int round = 0; round < 60; ++round) {
    const std::size_t pick = rng.index(live.size());
    const VertexId victim = live[pick];
    live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    dt.remove(victim);
    dt.validate();

    DelaunayTriangulation fresh;
    std::map<VertexId, VertexId> to_fresh;
    for (const VertexId v : live) {
      to_fresh[v] = fresh.insert(dt.position(v)).vertex;
    }
    EdgeSet expected;
    fresh.for_each_edge([&](VertexId a, VertexId b) {
      // Map back through position-identical ids.
      expected.emplace(a, b);
    });
    EdgeSet got;
    dt.for_each_edge([&](VertexId a, VertexId b) {
      const VertexId fa = to_fresh.at(a);
      const VertexId fb = to_fresh.at(b);
      got.emplace(std::min(fa, fb), std::max(fa, fb));
    });
    ASSERT_EQ(got, expected) << "after removing vertex " << victim;
  }
}

TEST_P(DelaunayRandomized, ChurnInsertDeleteInterleaved) {
  DelaunayTriangulation dt;
  Rng rng(GetParam() + 17);
  std::vector<VertexId> live;
  for (int step = 0; step < 400; ++step) {
    const bool do_insert = live.size() < 10 || rng.chance(0.6);
    if (do_insert) {
      const auto out = dt.insert({rng.uniform(), rng.uniform()});
      if (out.created) live.push_back(out.vertex);
    } else {
      const std::size_t pick = rng.index(live.size());
      dt.remove(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    if (step % 50 == 0) dt.validate();
  }
  dt.validate();
  expect_globally_delaunay(dt);
}

TEST_P(DelaunayRandomized, NearestMatchesBruteForce) {
  DelaunayTriangulation dt;
  Rng rng(GetParam() + 31);
  spatial::GridIndex oracle({{-0.1, -0.1}, {1.1, 1.1}}, 256);
  std::vector<VertexId> ids;
  for (int i = 0; i < 256; ++i) {
    const Vec2 p{rng.uniform(), rng.uniform()};
    const auto out = dt.insert(p);
    if (out.created) {
      ids.push_back(out.vertex);
      oracle.insert(static_cast<std::uint32_t>(out.vertex), p);
    }
  }
  for (int q = 0; q < 500; ++q) {
    const Vec2 p{rng.uniform(-0.1, 1.1), rng.uniform(-0.1, 1.1)};
    const VertexId got = dt.nearest(p);
    const auto want = static_cast<VertexId>(oracle.nearest(p));
    // Both break ties towards the smaller id; positions are random doubles
    // so exact ties are effectively impossible anyway.
    EXPECT_EQ(got, want) << "query " << p.x << "," << p.y;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DelaunayRandomized,
                         ::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull,
                                           13ull, 21ull, 34ull));

TEST(DelaunayRemove, DownToPendingAndBack) {
  DelaunayTriangulation dt;
  const auto a = dt.insert({0.0, 0.0}).vertex;
  const auto b = dt.insert({1.0, 0.0}).vertex;
  const auto c = dt.insert({0.0, 1.0}).vertex;
  const auto d = dt.insert({1.0, 1.0}).vertex;
  EXPECT_TRUE(dt.has_triangles());
  dt.remove(d);
  dt.validate();
  dt.remove(c);
  EXPECT_FALSE(dt.has_triangles());  // two points: pending mode
  dt.validate();
  EXPECT_EQ(dt.neighbors(a), std::vector<VertexId>{b});
  // Build back up.
  dt.insert({0.3, 0.9});
  EXPECT_TRUE(dt.has_triangles());
  dt.validate();
  dt.remove(a);
  dt.remove(b);
  dt.validate();
  EXPECT_EQ(dt.size(), 1u);
}

TEST(DelaunayRemove, CollapseToCollinearPending) {
  DelaunayTriangulation dt;
  std::vector<VertexId> chain;
  for (int i = 0; i < 5; ++i) {
    chain.push_back(dt.insert({0.2 * i, 0.0}).vertex);
  }
  const auto apex = dt.insert({0.5, 1.0}).vertex;
  EXPECT_TRUE(dt.has_triangles());
  dt.validate();
  dt.remove(apex);
  // The five collinear points cannot form triangles: pending mode.
  EXPECT_FALSE(dt.has_triangles());
  EXPECT_EQ(dt.size(), 5u);
  dt.validate();
  EXPECT_EQ(dt.neighbors(chain[2]).size(), 2u);
}

TEST(DelaunayRemove, HullCornerWithCollinearChain) {
  // Removing the apex of a fan whose base chain is collinear exercises the
  // ghost-only hole fill.
  DelaunayTriangulation dt;
  dt.insert({0.0, 0.0});
  dt.insert({0.5, 0.0});
  dt.insert({1.0, 0.0});
  const auto apex = dt.insert({0.5, 0.8}).vertex;
  const auto top = dt.insert({0.5, 1.6}).vertex;
  dt.validate();
  dt.remove(apex);  // interior-ish vertex with hull exposure via `top`
  dt.validate();
  expect_globally_delaunay(dt);
  dt.remove(top);
  EXPECT_FALSE(dt.has_triangles());
  dt.validate();
}

TEST(DelaunayRemove, InteriorVertex) {
  DelaunayTriangulation dt;
  dt.insert({0.0, 0.0});
  dt.insert({1.0, 0.0});
  dt.insert({1.0, 1.0});
  dt.insert({0.0, 1.0});
  const auto center = dt.insert({0.5, 0.5}).vertex;
  EXPECT_FALSE(dt.on_hull(center));
  dt.remove(center);
  dt.validate();
  expect_globally_delaunay(dt);
  EXPECT_EQ(dt.size(), 4u);
}

TEST(DelaunayRemove, AffectedCoverLinkVertices) {
  DelaunayTriangulation dt;
  Rng rng(7);
  std::vector<VertexId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(dt.insert({rng.uniform(), rng.uniform()}).vertex);
  }
  for (int round = 0; round < 20; ++round) {
    const std::size_t pick = rng.index(ids.size());
    const VertexId victim = ids[pick];
    const auto link = dt.neighbors(victim);
    dt.remove(victim);
    ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(pick));
    const std::set<VertexId> affected(dt.last_affected().begin(),
                                      dt.last_affected().end());
    for (const VertexId u : link) {
      EXPECT_TRUE(affected.count(u))
          << "link vertex " << u << " missing from affected set";
    }
  }
}

TEST(DelaunayDegenerate, GridChurn) {
  // Insert a degenerate lattice, then delete random lattice vertices.
  DelaunayTriangulation dt;
  Rng rng(123);
  std::vector<VertexId> ids;
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      ids.push_back(dt.insert({0.1 * i, 0.1 * j}).vertex);
    }
  }
  dt.validate();
  for (int round = 0; round < 30; ++round) {
    const std::size_t pick = rng.index(ids.size());
    dt.remove(ids[pick]);
    ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(pick));
    dt.validate();
  }
}

TEST(DelaunayDegenerate, CocircularRing) {
  // Many exactly-cocircular points (vertices of a regular polygon on a
  // representable circle are not exactly cocircular in doubles, so use the
  // 4 axis-aligned + 4 diagonal points of a square, all on one circle).
  DelaunayTriangulation dt;
  dt.insert({1.0, 0.0});
  dt.insert({0.0, 1.0});
  dt.insert({-1.0, 0.0});
  dt.insert({0.0, -1.0});
  dt.validate();
  const auto center = dt.insert({0.0, 0.0}).vertex;
  dt.validate();
  dt.remove(center);
  dt.validate();
  EXPECT_EQ(dt.size(), 4u);
}

TEST(DelaunayWalk, LocateUsesHint) {
  DelaunayTriangulation dt;
  Rng rng(5);
  std::vector<VertexId> ids;
  for (int i = 0; i < 500; ++i) {
    ids.push_back(dt.insert({rng.uniform(), rng.uniform()}).vertex);
  }
  // Locating next to the hint should take far fewer steps than from a
  // random start.
  const VertexId hint = ids.back();
  const Vec2 near_hint = dt.position(hint) + Vec2{1e-6, 1e-6};
  (void)dt.nearest(near_hint, hint);
  EXPECT_LE(dt.last_walk_steps(), 8u);
}

TEST(DelaunayWalk, GoodHintShortensTheWalk) {
  // The point-location contract the overlay and bulk loader lean on: a
  // hint adjacent to the destination makes the walk O(1), far below the
  // O(sqrt n) of an unhinted walk across the structure.
  DelaunayTriangulation dt;
  Rng rng(7);
  std::vector<Vec2> pts;
  for (int i = 0; i < 4000; ++i) pts.push_back({rng.uniform(), rng.uniform()});
  dt.bulk_insert(pts);

  std::size_t cold_total = 0;
  std::size_t hinted_total = 0;
  std::size_t hinted_max = 0;
  for (int q = 0; q < 64; ++q) {
    const Vec2 p{rng.uniform(), rng.uniform()};
    const VertexId owner = dt.nearest(p);  // unhinted
    cold_total += dt.last_walk_steps();
    const Vec2 near{p.x * 0.999 + 0.0005, p.y * 0.999 + 0.0005};
    (void)dt.nearest(near, owner);  // hinted by a nearby vertex
    hinted_total += dt.last_walk_steps();
    hinted_max = std::max(hinted_max, dt.last_walk_steps());
  }
  EXPECT_LT(hinted_total * 4, cold_total)
      << "hinted walks must be far shorter than cold walks";
  EXPECT_LE(hinted_max, 32u);
}

TEST(DelaunayWalk, SequentialInsertsChainLocality) {
  // Unhinted inserts resume from the last touched triangle, so inserting
  // a spatially local sequence stays O(1) per step even without explicit
  // hints.
  DelaunayTriangulation dt;
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) dt.insert({rng.uniform(), rng.uniform()});
  std::size_t total = 0;
  double x = 0.3;
  for (int i = 0; i < 100; ++i) {
    x += 1e-4;
    dt.insert({x, 0.4});  // no hint: relies on the last-locate cache
    total += dt.last_walk_steps();
  }
  EXPECT_LE(total / 100, 6u)
      << "last-insert locality must keep unhinted local walks short";
}

TEST(DelaunayStar, OrderIsCyclic) {
  DelaunayTriangulation dt;
  dt.insert({0.0, 0.0});
  dt.insert({1.0, 0.0});
  dt.insert({1.0, 1.0});
  dt.insert({0.0, 1.0});
  const auto center = dt.insert({0.5, 0.5}).vertex;
  std::vector<DelaunayTriangulation::TriId> st;
  dt.star(center, st);
  EXPECT_EQ(st.size(), 4u);  // interior vertex of degree 4
  for (const auto t : st) {
    EXPECT_FALSE(dt.is_ghost(t));
  }
}

TEST(DelaunayHull, MatchesOrientationCertificate) {
  DelaunayTriangulation dt;
  Rng rng(77);
  for (int i = 0; i < 200; ++i) dt.insert({rng.uniform(), rng.uniform()});
  std::vector<VertexId> hull;
  dt.hull(hull);
  ASSERT_GE(hull.size(), 3u);
  // CCW convexity: every live vertex is left-of-or-on each hull edge.
  for (std::size_t i = 0; i < hull.size(); ++i) {
    const Vec2 a = dt.position(hull[i]);
    const Vec2 b = dt.position(hull[(i + 1) % hull.size()]);
    dt.for_each_vertex([&](VertexId w) {
      EXPECT_GE(orient2d(a, b, dt.position(w)), 0);
    });
  }
  // Hull vertices are exactly those reported by on_hull().
  std::set<VertexId> hull_set(hull.begin(), hull.end());
  EXPECT_EQ(hull_set.size(), hull.size()) << "hull repeats a vertex";
  dt.for_each_vertex([&](VertexId w) {
    EXPECT_EQ(dt.on_hull(w), hull_set.count(w) > 0) << "vertex " << w;
  });
}

TEST(DelaunayHull, SquareCorners) {
  DelaunayTriangulation dt;
  dt.insert({0.0, 0.0});
  dt.insert({1.0, 0.0});
  dt.insert({1.0, 1.0});
  dt.insert({0.0, 1.0});
  dt.insert({0.5, 0.5});
  std::vector<VertexId> hull;
  dt.hull(hull);
  EXPECT_EQ(hull.size(), 4u);
}

TEST(DelaunayScale, TenThousandPointsFastAndConsistent) {
  DelaunayTriangulation dt;
  Rng rng(2024);
  VertexId hint = DelaunayTriangulation::kNoVertex;
  for (int i = 0; i < 10000; ++i) {
    hint = dt.insert({rng.uniform(), rng.uniform()}, hint).vertex;
  }
  EXPECT_EQ(dt.size(), 10000u);
  dt.validate(/*check_delaunay=*/false);
  // Spot-check the Delaunay property on a subsample via validate's local
  // test (full exact check on 10k points is covered by smaller suites).
  dt.validate(true);
}

}  // namespace
}  // namespace voronet::geo
