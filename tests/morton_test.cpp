// Tests for Morton ordering and bulk Delaunay construction.
#include "geometry/morton.hpp"

#include <set>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "geometry/delaunay.hpp"

namespace voronet::geo {
namespace {

TEST(Morton, InterleaveBasics) {
  EXPECT_EQ(morton_interleave(0, 0), 0u);
  EXPECT_EQ(morton_interleave(1, 0), 1u);
  EXPECT_EQ(morton_interleave(0, 1), 2u);
  EXPECT_EQ(morton_interleave(1, 1), 3u);
  EXPECT_EQ(morton_interleave(2, 0), 4u);
  EXPECT_EQ(morton_interleave(0xffffffff, 0),
            0x5555555555555555ULL);
}

TEST(Morton, KeyOrdersQuadrants) {
  const Vec2 lo{0, 0};
  const Vec2 hi{1, 1};
  // Z-order visits quadrants: bottom-left, bottom-right, top-left,
  // top-right.
  const auto bl = morton_key({0.1, 0.1}, lo, hi);
  const auto br = morton_key({0.9, 0.1}, lo, hi);
  const auto tl = morton_key({0.1, 0.9}, lo, hi);
  const auto tr = morton_key({0.9, 0.9}, lo, hi);
  EXPECT_LT(bl, br);
  EXPECT_LT(br, tl);
  EXPECT_LT(tl, tr);
}

TEST(Morton, OrderIsAPermutation) {
  Rng rng(1);
  std::vector<Vec2> pts;
  for (int i = 0; i < 500; ++i) pts.push_back({rng.uniform(), rng.uniform()});
  const auto order = morton_order(pts);
  ASSERT_EQ(order.size(), pts.size());
  std::set<std::uint32_t> seen(order.begin(), order.end());
  EXPECT_EQ(seen.size(), pts.size());
}

TEST(Morton, LocalityOfConsecutiveElements) {
  // Consecutive points in Morton order must be far closer on average than
  // consecutive points in random order.
  Rng rng(2);
  std::vector<Vec2> pts;
  for (int i = 0; i < 2000; ++i) pts.push_back({rng.uniform(), rng.uniform()});
  const auto order = morton_order(pts);
  double morton_gap = 0.0;
  double random_gap = 0.0;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    morton_gap += dist(pts[order[i - 1]], pts[order[i]]);
    random_gap += dist(pts[i - 1], pts[i]);
  }
  EXPECT_LT(morton_gap, 0.25 * random_gap);
}

TEST(BulkInsert, SameStructureAsSequential) {
  Rng rng(3);
  std::vector<Vec2> pts;
  for (int i = 0; i < 400; ++i) pts.push_back({rng.uniform(), rng.uniform()});

  DelaunayTriangulation bulk;
  const auto ids = bulk.bulk_insert(pts);
  ASSERT_EQ(ids.size(), pts.size());
  bulk.validate();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(bulk.position(ids[i]), pts[i]);
  }

  DelaunayTriangulation seq;
  std::vector<DelaunayTriangulation::VertexId> seq_ids;
  for (const Vec2 p : pts) seq_ids.push_back(seq.insert(p).vertex);

  // Same point set in general position: unique Delaunay triangulation.
  std::set<std::pair<Vec2, Vec2>> bulk_edges;
  bulk.for_each_edge([&](auto a, auto b) {
    Vec2 pa = bulk.position(a);
    Vec2 pb = bulk.position(b);
    if (pb < pa) std::swap(pa, pb);
    bulk_edges.emplace(pa, pb);
  });
  std::set<std::pair<Vec2, Vec2>> seq_edges;
  seq.for_each_edge([&](auto a, auto b) {
    Vec2 pa = seq.position(a);
    Vec2 pb = seq.position(b);
    if (pb < pa) std::swap(pa, pb);
    seq_edges.emplace(pa, pb);
  });
  EXPECT_EQ(bulk_edges, seq_edges);
}

TEST(BulkInsert, HandlesDuplicatesAndDegenerate) {
  std::vector<Vec2> pts{{0.5, 0.5}, {0.5, 0.5}, {0.2, 0.2}, {0.8, 0.8},
                        {0.2, 0.2}};
  DelaunayTriangulation dt;
  const auto ids = dt.bulk_insert(pts);
  EXPECT_EQ(dt.size(), 3u);  // collinear set stays pending
  EXPECT_EQ(ids[0], ids[1]);
  EXPECT_EQ(ids[2], ids[4]);
  dt.validate();
}

TEST(BulkInsert, FasterThanRandomOrderAtScale) {
  Rng rng(4);
  std::vector<Vec2> pts;
  for (int i = 0; i < 30000; ++i) {
    pts.push_back({rng.uniform(), rng.uniform()});
  }
  Timer bulk_timer;
  DelaunayTriangulation bulk;
  bulk.bulk_insert(pts);
  const double bulk_s = bulk_timer.seconds();

  Timer seq_timer;
  DelaunayTriangulation seq;
  for (const Vec2 p : pts) seq.insert(p);  // no hints: random-order walks
  const double seq_s = seq_timer.seconds();

  EXPECT_LT(bulk_s, seq_s)
      << "Morton-ordered construction should beat hint-less insertion";
}

}  // namespace
}  // namespace voronet::geo
