// Unit tests for the exact floating-point expansion arithmetic.
#include "geometry/expansion.hpp"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

namespace voronet::geo {
namespace {

TEST(ErrorFreeTransforms, TwoSumIsExact) {
  double x = 0.0;
  double y = 0.0;
  two_sum(1.0, 0x1p-60, x, y);
  EXPECT_EQ(x, 1.0);
  EXPECT_EQ(y, 0x1p-60);  // the tail carries the part lost to rounding
}

TEST(ErrorFreeTransforms, TwoSumRecoversCancellation) {
  double x = 0.0;
  double y = 0.0;
  // 2^53 + 1.5 is not representable (ulp is 2 there): the sum rounds up to
  // 2^53 + 2 and the tail must carry the -0.5 roundoff exactly.
  two_sum(0x1p53, 1.5, x, y);
  EXPECT_EQ(x, 0x1p53 + 2.0);
  EXPECT_EQ(y, -0.5);
}

TEST(ErrorFreeTransforms, TwoDiffIsExact) {
  double x = 0.0;
  double y = 0.0;
  two_diff(1.0, 0x1p-55, x, y);
  EXPECT_EQ(x, 1.0);
  EXPECT_EQ(y, -0x1p-55);
}

TEST(ErrorFreeTransforms, TwoProductCapturesRoundoff) {
  double x = 0.0;
  double y = 0.0;
  const double a = 1.0 + 0x1p-30;
  two_product(a, a, x, y);
  // a^2 = 1 + 2^-29 + 2^-60; the 2^-60 term cannot fit in x.
  EXPECT_EQ(x, 1.0 + 0x1p-29);
  EXPECT_EQ(y, 0x1p-60);
}

TEST(ErrorFreeTransforms, SplitHalvesRecombine) {
  double hi = 0.0;
  double lo = 0.0;
  const double a = 3.14159265358979;
  split(a, hi, lo);
  EXPECT_EQ(hi + lo, a);
}

TEST(Expansion, SingleValueRoundTrips) {
  const Expansion<2> e(42.5);
  EXPECT_EQ(e.size(), 1u);
  EXPECT_EQ(e.estimate(), 42.5);
  EXPECT_EQ(e.sign(), 1);
}

TEST(Expansion, ZeroHasZeroSign) {
  const Expansion<2> e(0.0);
  EXPECT_EQ(e.size(), 0u);
  EXPECT_EQ(e.sign(), 0);
}

TEST(Expansion, ProductOfDoublesIsExact) {
  const auto e = Expansion<2>::product(1.0 + 0x1p-30, 1.0 + 0x1p-30);
  // Exact value 1 + 2^-29 + 2^-60 needs two components.
  EXPECT_EQ(e.size(), 2u);
  EXPECT_EQ(e.sign(), 1);
}

TEST(Expansion, DifferenceDetectsTinySign) {
  const auto d = Expansion<2>::difference(1.0, 1.0 + 0x1p-52);
  EXPECT_EQ(d.sign(), -1);
}

TEST(Expansion, SumCancelsExactly) {
  const Expansion<2> a(1e30);
  Expansion<2> b(1e30);
  b.negate();
  const auto s = a + b;
  EXPECT_EQ(s.sign(), 0);
}

TEST(Expansion, SumOfOppositeProductsIsZero) {
  const auto p = Expansion<2>::product(1.1, 2.3);
  auto q = Expansion<2>::product(2.3, 1.1);
  q.negate();
  EXPECT_EQ((p + q).sign(), 0);
}

TEST(Expansion, ScaledMatchesProduct) {
  const Expansion<2> a(7.25);
  const auto s = a.scaled(3.5);
  EXPECT_EQ(s.estimate(), 7.25 * 3.5);
}

TEST(Expansion, MulAgainstLongDoubleReference) {
  std::mt19937_64 gen(7);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (int iter = 0; iter < 1000; ++iter) {
    const double a = dist(gen);
    const double b = dist(gen);
    const double c = dist(gen);
    const double d = dist(gen);
    // (a*b) - (c*d) computed exactly vs in long double.
    const auto exact =
        Expansion<2>::product(a, b) - Expansion<2>::product(c, d);
    const long double ref = static_cast<long double>(a) * b -
                            static_cast<long double>(c) * d;
    const int ref_sign = ref > 0 ? 1 : (ref < 0 ? -1 : 0);
    EXPECT_EQ(exact.sign(), ref_sign) << "a=" << a << " b=" << b;
  }
}

TEST(Expansion, ExpansionProductSign) {
  // (x + eps)^2 - x^2 - 2*x*eps - eps^2 == 0 exactly.
  const double x = 1.0 / 3.0;
  const double eps = 0x1p-40;
  const auto xe = Expansion<2>::difference(x + eps, 0.0);
  const auto sq = xe * xe;                 // (x+eps)^2, exact
  auto x2 = Expansion<2>::product(x, x);   // x^2
  auto cross = Expansion<2>::product(x, eps).scaled(2.0);
  auto e2 = Expansion<2>::product(eps, eps);
  x2.negate();
  cross.negate();
  e2.negate();
  const auto total = ((sq + x2) + cross) + e2;
  // Note: x+eps rounds, so this is zero only if the rounding is captured;
  // difference(x+eps, 0) stores the rounded value, and the identity holds
  // for that rounded value v: sq == v*v built from v.
  const double v = x + eps;
  auto vv = Expansion<2>::product(v, v);
  vv.negate();
  EXPECT_EQ((sq + vv).sign(), 0);
  (void)total;
}

TEST(Expansion, CapacityViolationThrows) {
  Expansion<2> e;
  EXPECT_THROW(e.set_length(3), voronet::ContractError);
}

TEST(ExpansionSum, ZeroEliminationKeepsCanonicalZero) {
  double h[4];
  const double e[1] = {1.0};
  const double f[1] = {-1.0};
  const std::size_t len = expansion_sum(1, e, 1, f, h);
  // Exact cancellation: a single explicit zero component is kept.
  ASSERT_EQ(len, 1u);
  EXPECT_EQ(h[0], 0.0);
  EXPECT_EQ(expansion_sign(len, h), 0);
}

TEST(ExpansionSum, EmptyOperands) {
  double h[4];
  const double e[2] = {1.0, 2.0};
  EXPECT_EQ(expansion_sum(0, nullptr, 2, e, h), 2u);
  EXPECT_EQ(h[0], 1.0);
  EXPECT_EQ(expansion_sum(2, e, 0, nullptr, h), 2u);
}

TEST(ExpansionScale, ZeroScaleGivesEmpty) {
  double h[4];
  const double e[2] = {1.0, 2.0};
  EXPECT_EQ(expansion_scale(2, e, 0.0, h), 0u);
}

TEST(ExpansionSign, LargestComponentWins) {
  const double e[2] = {0.25, -8.0};
  EXPECT_EQ(expansion_sign(2, e), -1);
}

}  // namespace
}  // namespace voronet::geo
