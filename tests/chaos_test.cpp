// Chaos-layer tests: gray failures (stalls, loss bursts, latency
// spikes, duplication windows), targeted adversarial victim selection,
// and the capped-exponential-backoff retransmission policy.
//
// The contract under test is the paper's robustness claim made
// operational: polylog routing and exact differential views must hold
// *through* adversarial conditions, not just in their absence -- a
// stalled node is not a crashed node, a loss burst must not trigger a
// synchronized retransmit storm, and an adversary aiming at the
// overlay's structural weak points (highest degree, long-link hubs)
// must not break convergence.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "protocol/query_harness.hpp"
#include "scenario/fuzz.hpp"
#include "scenario/runner.hpp"
#include "workload/distributions.hpp"

namespace voronet {
namespace {

using protocol::HarnessConfig;
using protocol::LatencyModel;
using protocol::QueryHarness;
using scenario::Event;
using scenario::Target;

HarnessConfig make_config(std::uint64_t seed) {
  HarnessConfig config;
  config.overlay.n_max = 2048;
  config.overlay.seed = seed;
  config.network.latency = LatencyModel::fixed(0.01);
  config.network.seed = seed ^ 0xfeedULL;
  config.seed = seed ^ 0x907aULL;
  return config;
}

std::shared_ptr<QueryHarness::ScheduleContext> make_context(
    std::uint64_t seed) {
  return std::make_shared<QueryHarness::ScheduleContext>(
      seed, workload::DistributionConfig::uniform());
}

/// argmax over the ground truth with ties towards the smallest id --
/// the documented selector contract, recomputed independently here.
template <typename Score>
protocol::NodeId expected_target(const Overlay& overlay, Score&& score) {
  protocol::NodeId best = kNoObject;
  std::size_t best_score = 0;
  for (const ObjectId id : overlay.objects()) {
    const std::size_t s = score(overlay.view(id));
    if (best == kNoObject || s > best_score ||
        (s == best_score && id < best)) {
      best = id;
      best_score = s;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// Stall semantics
// ---------------------------------------------------------------------------

TEST(Chaos, StallParksDeliveriesAndResumeDrainsThem) {
  QueryHarness qh(make_config(101));
  qh.populate(48, 101);
  auto& h = qh.harness();
  ASSERT_TRUE(h.verify_views().converged());

  // Stall one node, then join a new object close to it so the view
  // updates MUST reach the stalled node.
  const protocol::NodeId victim = h.roster().front();
  const Vec2 near = h.overlay().position(victim);
  h.network().stall(victim);
  EXPECT_TRUE(h.network().stalled(victim));
  h.join_after(0.0, {near.x * 0.98 + 0.01, near.y * 0.98 + 0.01});

  // While stalled: the network cannot go idle (retransmits keep driving),
  // so advance bounded time only.
  h.run_until(h.queue().now() + 1.0);
  EXPECT_GT(h.network().stats().stalled_deferred, 0u);
  EXPECT_EQ(h.network().stats().abandoned, 0u);  // patient transport

  h.network().resume(victim);
  EXPECT_FALSE(h.network().stalled(victim));
  const auto run = h.run_to_idle();
  ASSERT_FALSE(run.budget_exhausted);
  // The parked backlog was delivered: the stalled node caught up exactly.
  EXPECT_TRUE(h.verify_views().converged());
}

TEST(Chaos, CrashDiscardsTheStallBacklog) {
  QueryHarness qh(make_config(103));
  qh.populate(48, 103);
  auto& h = qh.harness();

  const protocol::NodeId victim = h.roster().front();
  const Vec2 near = h.overlay().position(victim);
  h.network().stall(victim);
  h.join_after(0.0, {near.x * 0.98 + 0.01, near.y * 0.98 + 0.01});
  h.run_until(h.queue().now() + 0.5);
  EXPECT_GT(h.network().stats().stalled_deferred, 0u);

  // The wedged process dies with the host: no resurrection delivery.
  // (Harness crashes are scheduled events, so the mark clears on run.)
  h.crash(victim);
  const auto run = h.run_to_idle();
  ASSERT_FALSE(run.budget_exhausted);
  EXPECT_FALSE(h.network().stalled(victim));
  EXPECT_TRUE(h.verify_views().converged());
  // 48 populated - 1 crash + 1 join (rerouted past the dead sponsor); the
  // crashed id itself may be recycled by that join, so count, not id.
  EXPECT_EQ(h.node_count(), 48u);
}

// ---------------------------------------------------------------------------
// Satellite: stall-then-resume racing a query flood.
// ---------------------------------------------------------------------------

TEST(Chaos, StalledNodeIsNotTreatedAsCrashedWhenItResumesInTime) {
  // Patient transport (max_retries = 0): a stalled receiver makes its
  // senders retransmit, but nothing abandons, so the failure detector
  // never fires -- no spurious branch abort, no re-issued epoch.  The
  // flood simply waits the stall out and completes exactly.
  QueryHarness qh(make_config(105));
  qh.populate(56, 105);
  auto& h = qh.harness();
  const protocol::NodeId victim = h.roster()[3];
  const Vec2 center = h.overlay().position(victim);
  protocol::NodeId from = h.roster().front();
  if (from == victim) from = h.roster().back();

  h.network().stall(victim);
  // Resume well within the transport's (infinite) patience; the window
  // races the flood, which targets the victim's own cell.
  h.queue().schedule(0.4, [&h, victim] { h.network().resume(victim); });
  const std::uint64_t id = qh.issue_radius(from, center, 0.08);
  const auto run = h.run_to_idle();
  ASSERT_FALSE(run.budget_exhausted);

  const auto d = qh.collect(id);
  EXPECT_TRUE(d.completed);
  EXPECT_TRUE(d.identical());
  EXPECT_EQ(d.recall(), 1.0);
  EXPECT_EQ(d.precision(), 1.0);
  EXPECT_EQ(d.msg.branch_failovers, 0u);  // never spuriously aborted
  EXPECT_EQ(d.msg.epoch, 1u);             // never spuriously re-issued
  EXPECT_EQ(h.network().stats().abandoned, 0u);
  EXPECT_GT(h.network().stats().stalled_deferred, 0u);  // it really stalled
  EXPECT_TRUE(h.verify_views().converged());
}

TEST(Chaos, StalledNodeFailsOverWhenItOutlivesTheRetryCap) {
  // Impatient transport (max_retries = 3): a node that stays wedged past
  // the retry cap is indistinguishable from a crash to its senders.  The
  // flood must fail the branch over (abort echo, tainted epoch,
  // re-issue) instead of hanging -- and the epoch that finally runs
  // after the resume must be exact.
  HarnessConfig config = make_config(107);
  config.network.max_retries = 3;
  config.failure_detect_delay = 0.2;
  QueryHarness qh(config);
  qh.populate(56, 107);
  auto& h = qh.harness();
  const protocol::NodeId victim = h.roster()[3];
  // Root the flood at a Voronoi neighbour of the victim and size the disk
  // to cover the victim's cell: the victim is then a forwarded *branch*
  // (kQuery would otherwise terminate AT the wedged node and simply
  // reroute forever instead of failing a branch over).
  const auto& vn = h.overlay().view(victim).vn;
  ASSERT_FALSE(vn.empty());
  const Vec2 vp = h.overlay().position(victim);
  const Vec2 center = h.overlay().position(vn.front());
  const double gap = std::sqrt((center.x - vp.x) * (center.x - vp.x) +
                               (center.y - vp.y) * (center.y - vp.y));
  protocol::NodeId from = h.roster().front();
  if (from == victim) from = h.roster().back();

  h.network().stall(victim);
  // Far beyond the retry cap (rto ~0.03: 1 + 3 retries abandon within
  // ~0.3 even with backoff), so the failover path must engage.
  h.queue().schedule(1.6, [&h, victim] { h.network().resume(victim); });
  const std::uint64_t id = qh.issue_radius(from, center, gap * 1.3);
  const auto run = h.run_to_idle();
  ASSERT_FALSE(run.budget_exhausted);

  const auto d = qh.collect(id);
  EXPECT_TRUE(d.completed);  // failover kept the query live
  // The transport really did give the victim up at least once...
  EXPECT_GT(h.network().stats().abandoned, 0u);
  // ...and the query layer observed it: aborted branch or re-issue.
  EXPECT_TRUE(d.msg.branch_failovers > 0 || d.msg.epoch > 1);
  // The post-resume epoch ran over converged views: exact result.
  EXPECT_TRUE(d.identical());
  EXPECT_EQ(d.recall(), 1.0);
  EXPECT_EQ(d.precision(), 1.0);
  EXPECT_TRUE(h.verify_views().converged());
}

// ---------------------------------------------------------------------------
// Satellite: capped exponential backoff vs the fixed-RTO retransmit storm.
// ---------------------------------------------------------------------------

TEST(Chaos, BackoffBoundsPerTransferAttemptsUnderALossBurst) {
  // A correlated loss burst is where a fixed RTO melts down: every
  // armed transfer fires again each rto for the whole burst.  Capped
  // exponential backoff keeps per-transfer attempts logarithmic in the
  // burst length.  Both runs share seeds; only the backoff knob moves.
  const auto attempts_with = [](double backoff_factor, double jitter) {
    HarnessConfig config = make_config(109);
    config.network.backoff_factor = backoff_factor;
    config.network.jitter = jitter;
    QueryHarness qh(config);
    qh.populate(40, 109);
    auto& h = qh.harness();
    h.network().begin_loss_burst(0.9);
    h.queue().schedule(2.0, [&h] { h.network().end_loss_burst(0.9); });
    for (int i = 0; i < 6; ++i) {
      h.join_after(0.01 * i, {0.15 + 0.1 * i, 0.4});
    }
    const auto run = h.run_to_idle();
    EXPECT_FALSE(run.budget_exhausted);
    EXPECT_TRUE(h.verify_views().converged());
    return h.network().metrics().transfer_attempts().max();
  };

  const double fixed_rto = attempts_with(1.0, 0.0);   // the old behaviour
  const double backoff = attempts_with(2.0, 0.25);    // the default
  // Fixed RTO: ~burst/rto attempts (tens).  Backoff: log-ish (~10).
  EXPECT_GT(fixed_rto, 30.0);
  EXPECT_LE(backoff, 16.0);
  EXPECT_GT(fixed_rto, 2.0 * backoff);
}

TEST(Chaos, BackoffSurvivesHeavyLossWithLognormalLatency) {
  // The satellite's regression shape: 25% independent loss + lognormal
  // latency.  Reliable transfers must settle with bounded attempts and
  // the run must still converge to exact views.
  scenario::Scenario s;
  s.name = "loss25-lognormal";
  s.population = 80;
  s.seed = 111;
  s.latency = LatencyModel::lognormal(0.005, 0.03, 0.8);
  s.loss = 0.25;
  s.timeline = {
      Event::join_burst(0.0, 10, 0.5),
      Event::query_stream(0.1, 8, 0.6),
  };
  const scenario::Report rep = scenario::run_scenario(s);
  EXPECT_TRUE(rep.quiesced);
  EXPECT_TRUE(rep.converged);
  EXPECT_EQ(rep.completed, rep.queries);
  EXPECT_GT(rep.wire.retransmits, 0u);  // loss really bit
  // Independent 25% loss: P(k attempts) ~ 0.44^k; with thousands of
  // transfers the max stays small.  A storm regression blows past this.
  EXPECT_GT(rep.transfers_settled, 0u);
  EXPECT_LE(rep.max_transfer_attempts, 16.0);
  EXPECT_LT(rep.mean_transfer_attempts, 3.0);
}

// ---------------------------------------------------------------------------
// Degradation windows
// ---------------------------------------------------------------------------

TEST(Chaos, DuplicationWindowInjectsCopiesThatDedupAbsorbs) {
  QueryHarness qh(make_config(113));
  qh.populate(40, 113);
  auto& h = qh.harness();
  h.network().begin_duplication(0.8);
  for (int i = 0; i < 4; ++i) h.join_after(0.01 * i, {0.2 + 0.15 * i, 0.6});
  const auto mid = h.run_to_idle();
  ASSERT_FALSE(mid.budget_exhausted);
  h.network().end_duplication(0.8);
  EXPECT_GT(h.network().stats().injected_duplicates, 0u);
  EXPECT_GT(h.network().stats().duplicates, 0u);  // dedup saw the copies
  EXPECT_TRUE(h.verify_views().converged());      // and absorbed them
}

TEST(Chaos, ChaosTimelineStillConvergesAndServesExactQueries) {
  // The acceptance scenario: stalls, a loss burst, a latency spike,
  // duplication, and targeted crashes, all racing a query stream --
  // strict verify_views and recall == precision == 1 must hold at
  // quiescence (checked by the oracle's post-quiescence probes).
  scenario::Scenario s;
  s.name = "chaos-acceptance";
  s.population = 70;
  s.seed = 115;
  s.latency = LatencyModel::uniform(0.005, 0.04);
  s.loss = 0.1;
  s.failure_detect_delay = 0.3;
  s.timeline = {
      Event::stall(0.1, 2, 0.4, Target::kHighestDegree),
      Event::loss_burst(0.2, 0.4, 0.3),
      Event::latency_spike(0.3, 0.4, 4.0),
      Event::duplicate(0.1, 0.5, 0.4),
      Event::crash(0.2, 3, 0.4, 16).with_target(Target::kLongLinkHub),
      Event::query_stream(0.0, 10, 0.8),
      Event::join_burst(0.2, 8, 0.5),
  };
  const scenario::Report rep = scenario::run_scenario(s);
  EXPECT_TRUE(rep.quiesced);
  EXPECT_TRUE(rep.converged);
  // count = 2, but the targeted selector deterministically re-picks the
  // already-stalled argmax, so at least one window opens (not exactly 2).
  EXPECT_GE(rep.stalls, 1u);
  EXPECT_EQ(rep.crashes, 3u);
  EXPECT_EQ(rep.completed, rep.queries);
  EXPECT_GT(rep.wire.stalled_deferred, 0u);
  EXPECT_GT(rep.wire.injected_duplicates, 0u);

  // Same scenario through the fuzzer's oracle: clean bill of health,
  // including the exact post-quiescence probe queries.
  const scenario::Verdict v = scenario::run_oracle(s);
  EXPECT_TRUE(v.ok) << v.violation;
}

// ---------------------------------------------------------------------------
// Targeted adversarial selectors
// ---------------------------------------------------------------------------

TEST(Chaos, HighestDegreeSelectorStallsTheFattestView) {
  QueryHarness qh(make_config(117));
  qh.populate(50, 117);
  auto& h = qh.harness();
  const protocol::NodeId expect = expected_target(
      h.overlay(), [](const NodeView& v) { return v.degree(); });

  const auto ctx = make_context(117);
  qh.schedule_event(Event::stall(0.0, 1, 0.3, Target::kHighestDegree),
                    h.queue().now(), ctx);
  h.run_until(h.queue().now() + 0.1);
  EXPECT_TRUE(h.network().stalled(expect))
      << "selector missed the highest-degree node";
  const auto run = h.run_to_idle();  // auto-resume closes the window
  ASSERT_FALSE(run.budget_exhausted);
  EXPECT_FALSE(h.network().stalled(expect));
  EXPECT_TRUE(h.verify_views().converged());
}

TEST(Chaos, LongLinkHubSelectorCrashesTheBlrMaximum) {
  QueryHarness qh(make_config(119));
  qh.populate(50, 119);
  auto& h = qh.harness();
  const protocol::NodeId expect = expected_target(
      h.overlay(), [](const NodeView& v) { return v.blr.size(); });

  const auto ctx = make_context(119);
  qh.schedule_event(
      Event::crash(0.0, 1, 0.0, 4).with_target(Target::kLongLinkHub),
      h.queue().now(), ctx);
  const auto run = h.run_to_idle();
  ASSERT_FALSE(run.budget_exhausted);
  EXPECT_EQ(ctx->crashes, 1u);
  EXPECT_FALSE(h.overlay().contains(expect))
      << "selector missed the long-link hub";
  EXPECT_TRUE(h.verify_views().converged());
}

TEST(Chaos, DensestRegionSelectorLeavesTheCnMaximum) {
  QueryHarness qh(make_config(121));
  qh.populate(50, 121);
  auto& h = qh.harness();
  const protocol::NodeId expect = expected_target(
      h.overlay(), [](const NodeView& v) { return v.cn.size(); });

  const auto ctx = make_context(121);
  qh.schedule_event(
      Event::leave(0.0, 1, 0.0, 4).with_target(Target::kDensestRegion),
      h.queue().now(), ctx);
  const auto run = h.run_to_idle();
  ASSERT_FALSE(run.budget_exhausted);
  EXPECT_EQ(ctx->leaves, 1u);
  EXPECT_FALSE(h.overlay().contains(expect))
      << "selector missed the densest region";
  EXPECT_TRUE(h.verify_views().converged());
}

TEST(Chaos, TargetedTimelinesReplayBitIdentically) {
  // The selectors resolve from live overlay state at fire time; the
  // tie-break contract makes that deterministic.  Whole-report equality
  // is the strongest form of the claim.
  scenario::Scenario s;
  s.name = "targeted-replay";
  s.population = 60;
  s.seed = 123;
  s.latency = LatencyModel::uniform(0.005, 0.03);
  s.loss = 0.05;
  s.timeline = {
      Event::crash(0.1, 2, 0.3, 16).with_target(Target::kHighestDegree),
      Event::stall(0.2, 1, 0.3, Target::kLongLinkHub),
      Event::query_stream(0.0, 6, 0.6),
  };
  const scenario::Report a = scenario::run_scenario(s);
  const scenario::Report b = scenario::run_scenario(s);
  EXPECT_EQ(a.to_json().str(), b.to_json().str());
  EXPECT_TRUE(a.quiesced);
  EXPECT_TRUE(a.converged);
}

}  // namespace
}  // namespace voronet
