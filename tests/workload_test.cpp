// Tests for the workload generators (paper, section 5 distributions).
#include "workload/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "workload/alias_sampler.hpp"

namespace voronet::workload {
namespace {

TEST(AliasSampler, MatchesWeights) {
  const std::vector<double> weights{1.0, 2.0, 4.0, 8.0};
  AliasSampler sampler(weights);
  Rng rng(1);
  std::array<int, 4> counts{};
  constexpr int kSamples = 150000;
  for (int i = 0; i < kSamples; ++i) ++counts[sampler.sample(rng)];
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double expected = weights[i] / 15.0;
    EXPECT_NEAR(static_cast<double>(counts[i]) / kSamples, expected, 0.01)
        << "bucket " << i;
    EXPECT_DOUBLE_EQ(sampler.probability(i), expected);
  }
}

TEST(AliasSampler, SingleBucket) {
  const std::vector<double> weights{3.0};
  AliasSampler sampler(weights);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.sample(rng), 0u);
}

TEST(AliasSampler, ZeroWeightBucketNeverDrawn) {
  const std::vector<double> weights{1.0, 0.0, 1.0};
  AliasSampler sampler(weights);
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) EXPECT_NE(sampler.sample(rng), 1u);
}

TEST(AliasSampler, RejectsInvalidWeights) {
  EXPECT_THROW(AliasSampler(std::vector<double>{}), ContractError);
  EXPECT_THROW(AliasSampler(std::vector<double>{0.0, 0.0}), ContractError);
  EXPECT_THROW(AliasSampler(std::vector<double>{1.0, -1.0}), ContractError);
}

TEST(Distributions, UniformCoversTheSquare) {
  PointGenerator gen(DistributionConfig::uniform());
  Rng rng(4);
  double minx = 1.0;
  double maxx = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const Vec2 p = gen.next(rng);
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 1.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 1.0);
    minx = std::min(minx, p.x);
    maxx = std::max(maxx, p.x);
  }
  EXPECT_LT(minx, 0.02);
  EXPECT_GT(maxx, 0.98);
}

TEST(Distributions, PowerLawConcentratesMass) {
  // With alpha = 5 the most popular attribute value draws the dominant
  // share: the biggest x-cluster should hold > 80% of objects (the Zipf
  // normalisation sum_{i} i^-5 ~ 1.0369, so rank 1 has ~96%).
  DistributionConfig cfg = DistributionConfig::power_law(5.0);
  PointGenerator gen(cfg);
  Rng rng(5);
  std::map<long, int> x_cluster;  // bucket by rounded value grid
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const Vec2 p = gen.next(rng);
    ++x_cluster[std::lround(p.x * static_cast<double>(cfg.values_per_axis) -
                            0.5)];
  }
  int top = 0;
  for (const auto& [bucket, count] : x_cluster) top = std::max(top, count);
  EXPECT_GT(top, static_cast<int>(0.8 * kSamples));
}

TEST(Distributions, PowerLawAlphaOrdersConcentration) {
  const auto top_share = [](double alpha) {
    DistributionConfig cfg = DistributionConfig::power_law(alpha);
    PointGenerator gen(cfg);
    Rng rng(6);
    std::map<long, int> cluster;
    for (int i = 0; i < 20000; ++i) {
      const Vec2 p = gen.next(rng);
      ++cluster[std::lround(p.x * static_cast<double>(cfg.values_per_axis) -
                            0.5)];
    }
    int top = 0;
    for (const auto& [b, c] : cluster) top = std::max(top, c);
    return static_cast<double>(top) / 20000.0;
  };
  const double s1 = top_share(1.0);
  const double s2 = top_share(2.0);
  const double s5 = top_share(5.0);
  EXPECT_LT(s1, s2);
  EXPECT_LT(s2, s5);
}

TEST(Distributions, JitterKeepsPositionsDistinct) {
  DistributionConfig cfg = DistributionConfig::power_law(5.0);
  PointGenerator gen(cfg);
  Rng rng(7);
  const auto points = gen.generate(5000, rng);
  std::set<std::pair<double, double>> seen;
  for (const Vec2 p : points) {
    EXPECT_TRUE(seen.emplace(p.x, p.y).second) << "duplicate position";
  }
}

TEST(Distributions, GenerateIsDeterministicPerSeed) {
  DistributionConfig cfg = DistributionConfig::power_law(2.0);
  PointGenerator g1(cfg);
  PointGenerator g2(cfg);
  Rng r1(8);
  Rng r2(8);
  const auto a = g1.generate(100, r1);
  const auto b = g2.generate(100, r2);
  EXPECT_EQ(a, b);
}

TEST(Distributions, ClusterMixStaysNearCenters) {
  DistributionConfig cfg = DistributionConfig::cluster_mix(4, 0.005);
  PointGenerator gen(cfg);
  Rng rng(9);
  // Collect points; at least 4 tight groups should emerge (intra-cluster
  // spread ~ 3 sigma = 1.5e-2).
  std::vector<Vec2> pts;
  for (int i = 0; i < 2000; ++i) pts.push_back(gen.next(rng));
  // Every point lies in the square.
  for (const Vec2 p : pts) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 1.0);
  }
}

TEST(Distributions, PaperSetMatchesEvaluationSection) {
  const auto set = paper_distributions();
  ASSERT_EQ(set.size(), 4u);
  EXPECT_EQ(set[0].name(), "uniform");
  EXPECT_EQ(set[1].name(), "sparse(alpha=1)");
  EXPECT_EQ(set[2].name(), "sparse(alpha=2)");
  EXPECT_EQ(set[3].name(), "sparse(alpha=5)");
}

}  // namespace
}  // namespace voronet::workload
