// Monte-Carlo validation of Choose-LRT against Lemma 2's distribution.
#include "voronet/lrt.hpp"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "voronet/config.hpp"

namespace voronet {
namespace {

TEST(ChooseLrt, RadiusWithinBounds) {
  Rng rng(1);
  const double dmin = 1e-4;
  const Vec2 from{0.5, 0.5};
  for (int i = 0; i < 10000; ++i) {
    const Vec2 t = choose_long_range_target(from, dmin, rng);
    const double r = dist(from, t);
    EXPECT_GE(r, dmin * (1.0 - 1e-12));
    EXPECT_LE(r, std::numbers::sqrt2 * (1.0 + 1e-12));
  }
}

TEST(ChooseLrt, TargetsMayLeaveTheUnitSquare) {
  Rng rng(2);
  const double dmin = 1e-4;
  int outside = 0;
  for (int i = 0; i < 5000; ++i) {
    const Vec2 t = choose_long_range_target({0.02, 0.02}, dmin, rng);
    if (t.x < 0.0 || t.y < 0.0 || t.x > 1.0 || t.y > 1.0) ++outside;
  }
  // A corner object sends a large share of its targets outside (the paper
  // explicitly allows this, binding to the closest object instead).
  EXPECT_GT(outside, 500);
}

TEST(ChooseLrt, LogUniformRadiusMatchesClosedForm) {
  // Split [dmin, sqrt(2)] into logarithmic shells and compare the observed
  // shell frequencies with radial_cdf (Lemma 2's radial law).
  Rng rng(3);
  const double dmin = 1e-5;
  const Vec2 from{0.5, 0.5};
  constexpr int kShells = 10;
  constexpr int kSamples = 200000;
  const double log_lo = std::log(dmin);
  const double log_hi = std::log(std::numbers::sqrt2);
  std::array<int, kShells> counts{};
  for (int i = 0; i < kSamples; ++i) {
    const double r = dist(from, choose_long_range_target(from, dmin, rng));
    const double frac = (std::log(r) - log_lo) / (log_hi - log_lo);
    const int shell = std::min(kShells - 1,
                               std::max(0, static_cast<int>(frac * kShells)));
    ++counts[shell];
  }
  for (int s = 0; s < kShells; ++s) {
    const double r1 = std::exp(log_lo + (log_hi - log_lo) * s / kShells);
    const double r2 =
        std::exp(log_lo + (log_hi - log_lo) * (s + 1) / kShells);
    const double expected = radial_cdf(dmin, r1, r2);
    const double observed =
        static_cast<double>(counts[s]) / static_cast<double>(kSamples);
    // Each shell should hold ~10%; allow +-1.5 percentage points (>> 5
    // sigma for this sample size).
    EXPECT_NEAR(observed, expected, 0.015) << "shell " << s;
  }
}

TEST(ChooseLrt, AnglesAreUniform) {
  Rng rng(4);
  const double dmin = 1e-4;
  const Vec2 from{0.5, 0.5};
  constexpr int kSectors = 8;
  constexpr int kSamples = 80000;
  std::array<int, kSectors> counts{};
  for (int i = 0; i < kSamples; ++i) {
    const Vec2 t = choose_long_range_target(from, dmin, rng);
    const double angle = std::atan2(t.y - from.y, t.x - from.x);
    const double frac = (angle + std::numbers::pi) / (2 * std::numbers::pi);
    const int sector = std::min(kSectors - 1,
                                static_cast<int>(frac * kSectors));
    ++counts[sector];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kSamples, 1.0 / kSectors, 0.01);
  }
}

TEST(ChooseLrt, Lemma2DensityInAnnulusSector) {
  // Direct check of Lemma 2: P(target in surface dS at distance d) =
  // dS / (K d^2).  Take a thin annulus sector and compare.
  Rng rng(5);
  const double dmin = 1e-5;
  const Vec2 from{0.5, 0.5};
  const double r1 = 0.1;
  const double r2 = 0.11;
  const double theta1 = 0.3;
  const double theta2 = 0.7;
  constexpr int kSamples = 400000;
  int hits = 0;
  for (int i = 0; i < kSamples; ++i) {
    const Vec2 t = choose_long_range_target(from, dmin, rng);
    const double r = dist(from, t);
    if (r < r1 || r >= r2) continue;
    const double angle = std::atan2(t.y - from.y, t.x - from.x);
    if (angle >= theta1 && angle < theta2) ++hits;
  }
  // Integral of dS/(K d^2) over the sector: (theta2-theta1)/K * ln(r2/r1).
  const double expected = (theta2 - theta1) / lemma2_normalisation(dmin) *
                          std::log(r2 / r1);
  const double observed = static_cast<double>(hits) / kSamples;
  EXPECT_NEAR(observed, expected, expected * 0.15);
}

TEST(RadialCdf, FullRangeIsOne) {
  EXPECT_NEAR(radial_cdf(1e-5, 1e-5, std::numbers::sqrt2), 1.0, 1e-12);
  EXPECT_EQ(radial_cdf(1e-5, 0.0, 1e-5), 0.0);
}

TEST(DminFor, Monotonicity) {
  EXPECT_LT(dmin_for(DminRule::kPaperText, 1000),
            dmin_for(DminRule::kPaperText, 100));
  EXPECT_LT(dmin_for(DminRule::kPaperText, 10000),
            dmin_for(DminRule::kBallExpectation, 10000));
}

}  // namespace
}  // namespace voronet
