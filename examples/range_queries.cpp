// Range and radius queries over the attribute space -- the search styles
// the paper's introduction motivates and its conclusion sketches
// (section 7): a range query on one attribute is a segment in the unit
// square; a radius query collects everything inside a disk.
//
//   $ ./range_queries [--objects N] [--seed S] [--svg out.svg]
//
// The example publishes a power-law ("sparse") object population, runs
// both query styles through the overlay's cell-to-cell forwarding, and
// cross-checks the results against a linear scan.
#include <algorithm>
#include <iostream>

#include "common/flags.hpp"
#include "common/rng.hpp"
#include "geometry/predicates.hpp"
#include "stats/svg.hpp"
#include "voronet/overlay.hpp"
#include "voronet/queries.hpp"
#include "workload/distributions.hpp"

int main(int argc, char** argv) try {
  using namespace voronet;
  const Flags flags(argc, argv);
  const auto n = static_cast<std::size_t>(flags.get_int("objects", 2000));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 11));
  const std::string svg_path = flags.get_string("svg", "range_queries.svg");
  flags.reject_unconsumed();

  OverlayConfig cfg;
  cfg.n_max = n;
  cfg.seed = seed;
  Overlay overlay(cfg);
  Rng rng(seed);
  workload::PointGenerator gen(workload::DistributionConfig::power_law(2.0));
  for (std::size_t i = 0; i < n; ++i) overlay.insert(gen.next(rng));
  std::cout << "published " << overlay.size()
            << " objects under a sparse(alpha=2) attribute distribution\n";

  // --- Range query: "attribute-2 between 0.2 and 0.8, attribute-1 = 0.5"
  // is the vertical segment x=0.5, y in [0.2, 0.8]; tolerance selects the
  // strip around it.
  const Vec2 a{0.5, 0.2};
  const Vec2 b{0.5, 0.8};
  const double tol = 0.02;
  const auto range = range_query(overlay, overlay.random_object(rng), a, b,
                                 tol);
  // `matches` filters by SITE distance to the segment (the objects whose
  // attribute pair falls in the queried strip); `owners` is REGION
  // intersection (every cell the strip meets, i.e. the objects that had
  // to serve the query) -- an owner's site can sit outside the strip its
  // cell dips into, so owners is usually the larger set.
  std::cout << "range query along x=0.5, y in [0.2, 0.8] (tol " << tol
            << "): " << range.matches.size() << " matches, "
            << range.owners.size() << " cells visited, " << range.route_hops
            << " hops to reach the segment, " << range.forward_messages
            << " forwards + " << range.result_messages
            << " replies along it (" << range.total_messages()
            << " messages total)\n";

  // Cross-check against a linear scan over the matching strip.
  std::size_t scan_matches = 0;
  for (const ObjectId o : overlay.objects()) {
    if (geo::dist2_to_segment(a, b, overlay.position(o)) <= tol * tol) {
      ++scan_matches;
    }
  }
  std::cout << "  linear scan finds " << scan_matches << " objects ("
            << (scan_matches == range.matches.size() ? "exact vs scan"
                                                     : "MISMATCH")
            << ")\n";

  // --- Radius query: everything within 0.1 of the attribute pair
  // (0.3, 0.6) -- a similarity search around a reference object.
  const Vec2 center{0.3, 0.6};
  const double radius = 0.1;
  const auto disk =
      radius_query(overlay, overlay.random_object(rng), center, radius);
  std::size_t scan_disk = 0;
  for (const ObjectId o : overlay.objects()) {
    if (dist2(overlay.position(o), center) <= radius * radius) ++scan_disk;
  }
  std::cout << "radius query around (0.3, 0.6), r=0.1: "
            << disk.matches.size() << " matches ("
            << (disk.matches.size() == scan_disk ? "exact vs scan"
                                                 : "MISMATCH")
            << "), " << disk.owners.size() << " cells flooded\n";

  // --- Render both queries.
  stats::SvgWriter svg;
  for (const ObjectId o : overlay.objects()) {
    svg.add_point(overlay.position(o), 1.0, "#888888");
  }
  svg.add_line(a, b, 2.0, "blue");
  for (const ObjectId o : range.matches) {
    svg.add_point(overlay.position(o), 2.5, "blue");
  }
  // Disk outline (polyline approximation).
  constexpr int kArc = 64;
  for (int i = 0; i < kArc; ++i) {
    const double t0 = 2.0 * 3.14159265358979 * i / kArc;
    const double t1 = 2.0 * 3.14159265358979 * (i + 1) / kArc;
    svg.add_line({center.x + radius * std::cos(t0),
                  center.y + radius * std::sin(t0)},
                 {center.x + radius * std::cos(t1),
                  center.y + radius * std::sin(t1)},
                 1.5, "green");
  }
  for (const ObjectId o : disk.matches) {
    svg.add_point(overlay.position(o), 2.5, "green");
  }
  if (svg.save(svg_path)) std::cout << "wrote " << svg_path << "\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "range_queries: " << e.what() << "\n";
  return 1;
}
