// Network partition and healing at the message level.
//
// Splits the overlay along the x = 1/2 attribute line, keeps injecting
// joins while the two halves cannot talk, and shows the protocol engine
// riding it out: cross-cut view updates and route chains stall (stale
// local views, joins stuck in flight, reliable transfers retrying), then
// the partition heals and every retransmission drains until the
// differential audit is exact again.
//
//   $ ./example_partition_heal [--population N] [--joins J] [--seed S]
//
// Prints a timeline table (stale views / pending joins / in-flight
// transfers per checkpoint) and the final verification.
#include <iostream>

#include "common/flags.hpp"
#include "protocol/harness.hpp"
#include "stats/table.hpp"
#include "workload/distributions.hpp"

int main(int argc, char** argv) try {
  using namespace voronet;
  const Flags flags(argc, argv);
  const auto population =
      static_cast<std::size_t>(flags.get_int("population", 600));
  const auto joins = static_cast<std::size_t>(flags.get_int("joins", 60));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 5));
  flags.reject_unconsumed();

  protocol::HarnessConfig config;
  config.overlay.n_max = population * 4;
  config.overlay.seed = seed;
  config.network.seed = seed ^ 0xfeedULL;
  config.network.latency = protocol::LatencyModel::uniform(0.01, 0.05);
  protocol::ProtocolHarness h(config);

  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  Rng rng(seed);
  for (std::size_t i = 0; i < population; ++i) {
    h.join_after(0.01 * static_cast<double>(i), gen.next(rng));
  }
  auto run = h.run_to_idle();
  VORONET_EXPECT(!run.budget_exhausted, "bootstrap did not quiesce");
  std::cout << "bootstrapped " << h.node_count() << " protocol nodes ("
            << h.network().stats().transmissions << " messages)\n";

  // Partition: links crossing x = 1/2 go down.  Node positions are
  // immutable, so consulting the ground truth for the side is safe.
  const Overlay& overlay = h.overlay();
  const auto west = [&overlay](protocol::NodeId n) {
    return overlay.contains(n) ? overlay.position(n).x < 0.5 : true;
  };
  h.network().set_link_filter([west](protocol::NodeId a, protocol::NodeId b) {
    return west(a) == west(b);
  });
  std::cout << "partitioned along x = 0.5\n";

  // Joins keep arriving on both sides of the cut.
  const double t0 = h.queue().now();
  for (std::size_t i = 0; i < joins; ++i) {
    h.join_after(0.2 * static_cast<double>(i), gen.next(rng));
  }

  stats::Table table({"time", "phase", "nodes", "stale views",
                      "pending joins", "in flight", "retransmits"});
  const auto checkpoint = [&](const char* phase) {
    const auto report = h.verify_views();
    table.add_row({stats::Table::cell(h.queue().now() - t0, 1), phase,
                   stats::Table::cell(h.node_count()),
                   stats::Table::cell(report.stale),
                   stats::Table::cell(h.pending_joins()),
                   stats::Table::cell(h.network().in_flight()),
                   stats::Table::cell(h.network().stats().retransmits)});
  };

  const double partition_span = 0.2 * static_cast<double>(joins) + 10.0;
  for (int slice = 1; slice <= 4; ++slice) {
    run = h.run_until(t0 + partition_span * (0.25 * slice));
    VORONET_EXPECT(!run.budget_exhausted, "partition slice blew the budget");
    checkpoint("partitioned");
  }

  h.network().clear_link_filter();
  run = h.run_to_idle();
  VORONET_EXPECT(!run.budget_exhausted, "heal did not quiesce");
  checkpoint("healed");
  table.print(std::cout);

  const auto report = h.verify_views();
  VORONET_EXPECT(report.converged(), "views did not reconverge after heal");
  std::cout << "post-heal differential audit: " << report.checked
            << " local views match the ground truth exactly\n";
  h.overlay().check_invariants();
  std::cout << "ground-truth invariant audit passed over "
            << h.overlay().size() << " objects\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "partition_heal: " << e.what() << "\n";
  return 1;
}
