// Network partition and healing, expressed as a declarative scenario.
//
// The timeline splits the overlay along the x = 1/2 attribute line, keeps
// injecting joins while the two halves cannot talk, and places verify
// barriers across the partitioned window: the protocol engine rides it
// out (stale local views, joins stuck in flight, reliable transfers
// retrying), then the partition heals and every retransmission drains
// until the differential audit is exact again.
//
//   $ ./example_partition_heal [--scenario scenarios/partition_heal.json]
//                              [--population N] [--joins J] [--seed S]
//
// Prints the verify-barrier timeline (stale views / pending joins /
// in-flight transfers per checkpoint) and the final verification.
#include <iostream>

#include "common/expect.hpp"
#include "common/flags.hpp"
#include "scenario/runner.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) try {
  using namespace voronet;
  const Flags flags(argc, argv);
  const std::string path = flags.get_string("scenario", "");
  const auto population =
      static_cast<std::size_t>(flags.get_int("population", 600));
  const auto joins = static_cast<std::size_t>(flags.get_int("joins", 60));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 5));
  flags.reject_unconsumed();

  scenario::Scenario s;
  if (!path.empty()) {
    s = scenario::load_scenario(path);
    std::cout << "loaded scenario \"" << s.name << "\" from " << path << "\n";
  } else {
    s.name = "partition-heal (inline)";
    s.population = population;
    s.seed = seed;
    s.latency = protocol::LatencyModel::uniform(0.01, 0.05);
    // Joins keep arriving on both sides of the cut; barriers sample the
    // stalled system at quarters of the partitioned window.
    const double span = 0.2 * static_cast<double>(joins) + 10.0;
    s.timeline = {
        scenario::Event::partition_start(0.0, 0.5),
        scenario::Event::join_burst(0.0, joins,
                                    0.2 * static_cast<double>(joins)),
        scenario::Event::verify_barrier(0.25 * span),
        scenario::Event::verify_barrier(0.50 * span),
        scenario::Event::verify_barrier(0.75 * span),
        scenario::Event::verify_barrier(span),
        scenario::Event::partition_heal(span),
        scenario::Event::quiesce(span),
        scenario::Event::verify_barrier(span),
    };
  }

  scenario::Runner runner(s);
  const scenario::Report rep = runner.run();
  std::cout << "bootstrapped " << rep.initial_population
            << " protocol nodes; " << rep.joins
            << " joins injected during the partition\n";

  stats::Table table({"time", "nodes", "stale views", "pending joins",
                      "in flight", "converged"});
  for (const auto& b : rep.barriers) {
    table.add_row({stats::Table::cell(b.at, 1), stats::Table::cell(b.nodes),
                   stats::Table::cell(b.stale),
                   stats::Table::cell(b.pending_joins),
                   stats::Table::cell(b.in_flight),
                   b.converged ? "yes" : "no"});
  }
  table.print(std::cout);

  VORONET_EXPECT(rep.quiesced, "heal did not quiesce");
  VORONET_EXPECT(rep.converged, "views did not reconverge after heal");
  std::cout << "post-heal differential audit: " << rep.final_population
            << " local views match the ground truth exactly ("
            << rep.wire.retransmits << " retransmits rode out the cut)\n";
  runner.harness().overlay().check_invariants();
  std::cout << "ground-truth invariant audit passed over "
            << runner.harness().overlay().size() << " objects\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "partition_heal: " << e.what() << "\n";
  return 1;
}
