// Membership churn under simulated time: joins, leaves and queries drive
// the overlay through the discrete-event engine while the maintenance
// protocol keeps every view consistent.
//
//   $ ./churn [--population N] [--epochs E] [--seed S]
//
// Prints per-epoch population, message-rate and routing statistics, then
// audits the full set of view invariants (vn == tessellation adjacency,
// cn == dmin balls, long links bound to region owners, blr inverse).
#include <iostream>

#include "common/flags.hpp"
#include "common/timer.hpp"
#include "stats/table.hpp"
#include "voronet/churn.hpp"

int main(int argc, char** argv) try {
  using namespace voronet;
  const Flags flags(argc, argv);
  const auto population =
      static_cast<std::size_t>(flags.get_int("population", 2000));
  const auto epochs = static_cast<std::size_t>(flags.get_int("epochs", 5));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 3));
  flags.reject_unconsumed();

  OverlayConfig cfg;
  cfg.n_max = population * 4;
  cfg.seed = seed;
  Overlay overlay(cfg);
  Rng rng(seed);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  while (overlay.size() < population) overlay.insert(gen.next(rng));
  std::cout << "bootstrapped " << overlay.size() << " objects\n";

  stats::Table table({"epoch", "population", "joins", "leaves", "queries",
                      "join hops", "query hops", "msgs/op", "vn upd/op",
                      "route fwd/op"});
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    overlay.metrics().reset();
    ChurnConfig churn;
    churn.join_rate = 5.0;
    churn.leave_rate = 5.0;  // balanced churn around the base population
    churn.query_rate = 10.0;
    churn.duration = 100.0;
    churn.min_population = population / 2;
    churn.seed = seed + epoch;
    const ChurnReport report = run_churn(overlay, gen, churn);

    const auto& m = overlay.metrics();
    const double ops = static_cast<double>(report.joins + report.leaves +
                                           report.queries);
    const auto per_op = [&](sim::MessageKind kind) {
      return ops > 0
                 ? static_cast<double>(report.messages_of(kind)) / ops
                 : 0.0;
    };
    table.add_row(
        {stats::Table::cell(epoch), stats::Table::cell(overlay.size()),
         stats::Table::cell(report.joins), stats::Table::cell(report.leaves),
         stats::Table::cell(report.queries),
         stats::Table::cell(m.hops(sim::OperationKind::kJoin).mean(), 2),
         stats::Table::cell(m.hops(sim::OperationKind::kQuery).mean(), 2),
         stats::Table::cell(report.messages_per_event(), 1),
         stats::Table::cell(per_op(sim::MessageKind::kVoronoiUpdate), 1),
         stats::Table::cell(per_op(sim::MessageKind::kRouteForward), 1)});
  }
  table.print(std::cout);

  Timer audit;
  overlay.check_invariants();
  std::cout << "invariant audit passed over " << overlay.size()
            << " objects in " << audit.seconds() << "s\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "churn: " << e.what() << "\n";
  return 1;
}
