// Membership churn as a declarative scenario: joins, leaves, crashes and
// region queries race each other on the message-level protocol engine
// while the maintenance protocol keeps every local view consistent.
//
//   $ ./example_churn [--scenario scenarios/steady_churn.json]
//                     [--population N] [--seed S]
//
// Without --scenario, an equivalent steady-churn timeline is built in
// code -- the two spellings demonstrate that a scenario file IS the API.
// Prints the scenario's verify-barrier timeline, the per-kind message
// costs, the query grading, and then audits the ground-truth invariants.
#include <iostream>

#include "common/flags.hpp"
#include "common/timer.hpp"
#include "scenario/runner.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) try {
  using namespace voronet;
  const Flags flags(argc, argv);
  const std::string path = flags.get_string("scenario", "");
  const auto population =
      static_cast<std::size_t>(flags.get_int("population", 400));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 3));
  flags.reject_unconsumed();

  scenario::Scenario s;
  if (!path.empty()) {
    s = scenario::load_scenario(path);
    std::cout << "loaded scenario \"" << s.name << "\" from " << path << "\n";
  } else {
    s.name = "steady-churn (inline)";
    s.population = population;
    s.seed = seed;
    s.latency = protocol::LatencyModel::uniform(0.005, 0.05);
    s.loss = 0.05;
    s.failure_detect_delay = 0.25;
    const double horizon = 3.0;
    s.timeline = {
        scenario::Event::join_burst(0.0, 40, horizon,
                                    scenario::Spread::kUniform),
        scenario::Event::leave(0.0, 30, horizon, population / 2),
        scenario::Event::crash(0.0, 10, horizon, population / 2),
        scenario::Event::query_stream(0.0, 40, horizon),
        scenario::Event::quiesce(horizon),
        scenario::Event::verify_barrier(horizon),
    };
  }

  Timer wall;
  scenario::Runner runner(s);
  const scenario::Report rep = runner.run();
  std::cout << "scenario \"" << rep.name << "\": " << rep.initial_population
            << " -> " << rep.final_population << " nodes over "
            << rep.duration << " simulated time units (" << wall.seconds()
            << "s wall)\n";
  std::cout << rep.joins << " joins, " << rep.leaves << " leaves, "
            << rep.crashes << " crashes; " << rep.wire.transmissions
            << " wire transmissions (" << rep.wire.retransmits
            << " retransmits, " << rep.wire.dropped << " dropped)\n";

  const std::size_t ops = rep.joins + rep.leaves + rep.crashes + rep.queries;
  stats::Table msg_table({"message kind", "count", "per operation"});
  for (std::size_t k = 0; k < sim::kMessageKindCount; ++k) {
    const auto kind = static_cast<sim::MessageKind>(k);
    if (rep.messages_of(kind) == 0) continue;
    msg_table.add_row(
        {std::string(sim::message_kind_name(kind)),
         stats::Table::cell(rep.messages_of(kind)),
         stats::Table::cell(static_cast<double>(rep.messages_of(kind)) /
                                static_cast<double>(ops == 0 ? 1 : ops),
                            2)});
  }
  msg_table.print(std::cout);

  if (!rep.barriers.empty()) {
    stats::Table barriers({"time", "nodes", "stale", "pending joins",
                           "in flight", "converged"});
    for (const auto& b : rep.barriers) {
      barriers.add_row({stats::Table::cell(b.at, 2),
                        stats::Table::cell(b.nodes),
                        stats::Table::cell(b.stale),
                        stats::Table::cell(b.pending_joins),
                        stats::Table::cell(b.in_flight),
                        b.converged ? "yes" : "no"});
    }
    std::cout << "\nverify barriers:\n";
    barriers.print(std::cout);
  }

  if (rep.queries > 0) {
    std::cout << "\nqueries: " << rep.completed << "/" << rep.queries
              << " completed, " << rep.exact << " exact, " << rep.reissued
              << " re-issued; recall mean " << rep.mean_recall << " (min "
              << rep.min_recall << "), precision mean " << rep.mean_precision
              << "\n";
  }
  std::cout << "quiesced: " << (rep.quiesced ? "yes" : "NO")
            << ", converged: " << (rep.converged ? "yes" : "NO") << "\n";

  Timer audit;
  runner.harness().overlay().check_invariants();
  std::cout << "invariant audit passed over "
            << runner.harness().overlay().size() << " objects in "
            << audit.seconds() << "s\n";
  return rep.quiesced && rep.converged ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "churn: " << e.what() << "\n";
  return 1;
}
