// Semantic object search -- the application style the paper's
// introduction motivates: objects carry application attributes (not
// hashes), similar objects are overlay neighbours, and attribute-space
// searches map to geometric queries.
//
// Scenario: a shared music library.  Each track is described by two
// normalised attributes: tempo (x) and energy (y).  Popularity is heavily
// skewed (a few styles dominate), which is exactly the regime hash-based
// DHTs handle poorly and VoroNet is designed for.
//
//   $ ./semantic_search [--tracks N] [--seed S]
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "common/rng.hpp"
#include "voronet/overlay.hpp"
#include "voronet/queries.hpp"
#include "workload/distributions.hpp"

namespace {

/// A track's application payload; the overlay stores only the attributes,
/// the hosting "node" (this process) keeps the payload.
struct Track {
  std::string title;
  double tempo;   // normalised 0..1 (say, 60..200 bpm)
  double energy;  // normalised 0..1
};

std::string synth_title(voronet::Rng& rng) {
  static const char* kAdjectives[] = {"Silent", "Electric", "Golden",
                                      "Broken", "Midnight", "Neon"};
  static const char* kNouns[] = {"Horizon", "Echo", "Voltage",
                                 "Mirage", "Harbor", "Signal"};
  return std::string(kAdjectives[rng.index(6)]) + " " + kNouns[rng.index(6)];
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace voronet;
  const Flags flags(argc, argv);
  const auto n = static_cast<std::size_t>(flags.get_int("tracks", 3000));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 5));
  flags.reject_unconsumed();

  OverlayConfig cfg;
  cfg.n_max = n;
  cfg.seed = seed;
  Overlay overlay(cfg);

  // Publish the library: tempo/energy follow a skewed ("sparse")
  // distribution -- most tracks cluster around a few popular styles.
  Rng rng(seed);
  workload::PointGenerator gen(workload::DistributionConfig::power_law(2.0));
  std::vector<Track> tracks;                 // payloads, indexed by ObjectId
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 attrs = gen.next(rng);
    const ObjectId id = overlay.insert(attrs);
    if (static_cast<std::size_t>(id) >= tracks.size()) {
      tracks.resize(static_cast<std::size_t>(id) + 1);
    }
    tracks[id] = {synth_title(rng), attrs.x, attrs.y};
  }
  std::cout << "published " << overlay.size() << " tracks\n\n";

  // --- Exact-style lookup: "the track most similar to tempo=0.72,
  // energy=0.31" is a single greedy route.
  const Vec2 wanted{0.72, 0.31};
  const RouteResult hit = overlay.query(overlay.random_object(rng), wanted);
  std::cout << "closest to (tempo 0.72, energy 0.31): '"
            << tracks[hit.owner].title << "' at (" << std::fixed
            << std::setprecision(3) << tracks[hit.owner].tempo << ", "
            << tracks[hit.owner].energy << "), found in " << hit.hops
            << " hops\n\n";

  // --- Top-k similarity: the five most similar tracks, best first.
  const auto top5 = overlay.k_nearest(overlay.random_object(rng), wanted, 5);
  std::cout << "top-5 most similar tracks:\n";
  for (const ObjectId o : top5) {
    const Track& t = tracks[o];
    std::cout << "  '" << t.title << "' (" << t.tempo << ", " << t.energy
              << ")\n";
  }

  // --- Similarity search: everything within 0.08 of the reference.
  const auto similar =
      radius_query(overlay, overlay.random_object(rng), wanted, 0.08);
  std::cout << "\ntracks within 0.08 of the reference: "
            << similar.matches.size() << "\n";

  // --- Range search on one attribute: high-energy tracks (energy ~ 0.9)
  // across all tempos = a horizontal segment query.
  const auto energetic = range_query(
      overlay, overlay.random_object(rng), {0.0, 0.9}, {1.0, 0.9}, 0.03);
  std::cout << "\nhigh-energy sweep (energy in [0.87, 0.93]): "
            << energetic.matches.size() << " tracks, visited "
            << energetic.owners.size() << " cells with "
            << energetic.forward_messages << " forwards\n";

  // --- The library evolves: tracks are withdrawn, the overlay self-heals.
  std::size_t removed = 0;
  for (const ObjectId o : std::vector<ObjectId>(overlay.objects())) {
    if (rng.chance(0.05)) {
      overlay.remove(o);
      ++removed;
    }
  }
  overlay.check_invariants();
  std::cout << "\nwithdrew " << removed
            << " tracks; views verified consistent (" << overlay.size()
            << " remain)\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "semantic_search: " << e.what() << "\n";
  return 1;
}
