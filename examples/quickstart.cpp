// Quickstart: build a small VoroNet overlay, inspect an object's view,
// route a query greedily, and render the tessellation to SVG.
//
//   $ ./quickstart [--objects N] [--seed S] [--svg out.svg]
//
// This walks through the public API in the order a new user meets it:
// OverlayConfig -> insert (join protocol) -> view inspection -> probe /
// query (greedy routing) -> metrics.
#include <iostream>

#include "common/flags.hpp"
#include "common/rng.hpp"
#include "geometry/voronoi.hpp"
#include "stats/svg.hpp"
#include "voronet/overlay.hpp"
#include "workload/distributions.hpp"

int main(int argc, char** argv) try {
  using namespace voronet;
  const Flags flags(argc, argv);
  const auto n = static_cast<std::size_t>(flags.get_int("objects", 400));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const std::string svg_path = flags.get_string("svg", "quickstart.svg");
  flags.reject_unconsumed();

  // 1. Configure the overlay.  n_max provisions dmin and the long-range
  //    link distribution (routing is O(log^2 n_max)).
  OverlayConfig cfg;
  cfg.n_max = n;
  cfg.long_links = 1;
  cfg.seed = seed;
  Overlay overlay(cfg);

  // 2. Publish objects.  Coordinates are the two attribute values; here we
  //    draw them uniformly.  Each insert runs the paper's full join
  //    protocol: greedy route -> fictive-object insertion -> local
  //    tessellation update -> close-neighbour gathering -> long-link bind.
  Rng rng(seed);
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  ObjectId last = kNoObject;
  for (std::size_t i = 0; i < n; ++i) last = overlay.insert(gen.next(rng));
  std::cout << "overlay holds " << overlay.size() << " objects (dmin="
            << overlay.dmin() << ")\n";

  // 3. Inspect a view: Voronoi neighbours, close neighbours, long link.
  const NodeView& view = overlay.view(last);
  std::cout << "object " << last << " at (" << view.position.x << ", "
            << view.position.y << ")\n"
            << "  voronoi neighbours: " << view.vn.size()
            << "  close neighbours: " << view.cn.size()
            << "  long links: " << view.lr.size()
            << "  back links: " << view.blr.size() << "\n";
  for (const LongLink& l : view.lr) {
    std::cout << "  long link -> object " << l.neighbor << " (target ("
              << l.target.x << ", " << l.target.y << "))\n";
  }

  // 4. Route: find the object responsible for an arbitrary attribute pair.
  //    probe_path additionally records the forwarding chain for rendering.
  const Vec2 wanted{0.25, 0.75};
  const ObjectId gateway = overlay.random_object(rng);
  std::vector<ObjectId> path;
  const RouteResult hit = overlay.probe_path(gateway, wanted, path);
  std::cout << "query for (0.25, 0.75) from object " << gateway
            << " reached object " << hit.owner << " in " << hit.hops
            << " greedy hops\n";

  // 5. Metrics: the simulator accounts every protocol message.
  const auto& m = overlay.metrics();
  std::cout << "protocol messages so far: " << m.total_messages() << " ("
            << m.messages(sim::MessageKind::kRouteForward)
            << " greedy forwards)\n";

  // 6. Render the overlay: Voronoi cells, Delaunay links, objects, and the
  //    long link of the inspected object.
  stats::SvgWriter svg;
  const geo::Box unit{{0, 0}, {1, 1}};
  for (const auto& cell : geo::voronoi_diagram(overlay.tessellation(), unit)) {
    svg.add_polygon(cell.polygon, "#b0c4de");
  }
  overlay.tessellation().for_each_edge([&](ObjectId a, ObjectId b) {
    svg.add_line(overlay.position(a), overlay.position(b), 0.3, "#dddddd");
  });
  for (const ObjectId o : overlay.objects()) {
    svg.add_point(overlay.position(o), 1.5, "black");
  }
  svg.add_point(view.position, 4.0, "red");
  for (const LongLink& l : view.lr) {
    svg.add_line(view.position, overlay.position(l.neighbor), 1.2, "red");
  }
  // The greedy route from step 4, hop by hop.
  for (std::size_t i = 1; i < path.size(); ++i) {
    svg.add_line(overlay.position(path[i - 1]), overlay.position(path[i]),
                 1.6, "orange");
  }
  svg.add_point(wanted, 4.0, "orange");
  if (svg.save(svg_path)) {
    std::cout << "wrote " << svg_path << "\n";
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "quickstart: " << e.what() << "\n";
  return 1;
}
