// Minimal SVG writer used by the examples to render overlays, Voronoi
// diagrams and routing paths.
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "geometry/vec2.hpp"

namespace voronet::stats {

/// Renders geometry in the unit square to an SVG file (y flipped so that
/// (0,0) appears bottom-left, matching the paper's figures).
class SvgWriter {
 public:
  explicit SvgWriter(double pixels = 800.0) : pixels_(pixels) {}

  void add_point(Vec2 p, double radius = 2.0,
                 const std::string& color = "black");
  void add_line(Vec2 a, Vec2 b, double width = 0.6,
                const std::string& color = "gray");
  void add_polygon(const std::vector<Vec2>& poly, const std::string& stroke,
                   const std::string& fill = "none", double width = 0.8);
  void add_text(Vec2 p, const std::string& text, double size = 10.0);

  /// Write the SVG document; returns false on I/O failure.
  bool save(const std::string& path) const;

 private:
  [[nodiscard]] double tx(double x) const { return x * pixels_; }
  [[nodiscard]] double ty(double y) const { return (1.0 - y) * pixels_; }

  double pixels_;
  std::vector<std::string> body_;
};

}  // namespace voronet::stats
