// Ordinary least-squares line fit.
//
// Figure 7 of the paper establishes the O(log^x N) routing exponent by
// fitting log(H) against log(log(N)) and reading the slope x; this is the
// fit used by bench_fig7_loglog.
#pragma once

#include <cstddef>
#include <span>

namespace voronet::stats {

struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  ///< coefficient of determination
};

/// Fit y = intercept + slope * x; requires xs.size() == ys.size() >= 2.
LineFit fit_line(std::span<const double> xs, std::span<const double> ys);

}  // namespace voronet::stats
