#include "stats/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/expect.hpp"

namespace voronet::stats {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  VORONET_EXPECT(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  VORONET_EXPECT(row.size() == header_.size(),
                 "row arity does not match header");
  rows_.push_back(std::move(row));
}

std::string Table::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::cell(std::size_t value) { return std::to_string(value); }

std::string Table::cell(long long value) { return std::to_string(value); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      const bool needs_quotes =
          row[c].find(',') != std::string::npos ||
          row[c].find('"') != std::string::npos;
      if (needs_quotes) {
        os << '"';
        for (const char ch : row[c]) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << row[c];
      }
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace voronet::stats
