#include "stats/svg.hpp"

#include <sstream>

namespace voronet::stats {

void SvgWriter::add_point(Vec2 p, double radius, const std::string& color) {
  std::ostringstream os;
  os << "<circle cx=\"" << tx(p.x) << "\" cy=\"" << ty(p.y) << "\" r=\""
     << radius << "\" fill=\"" << color << "\"/>";
  body_.push_back(os.str());
}

void SvgWriter::add_line(Vec2 a, Vec2 b, double width,
                         const std::string& color) {
  std::ostringstream os;
  os << "<line x1=\"" << tx(a.x) << "\" y1=\"" << ty(a.y) << "\" x2=\""
     << tx(b.x) << "\" y2=\"" << ty(b.y) << "\" stroke=\"" << color
     << "\" stroke-width=\"" << width << "\"/>";
  body_.push_back(os.str());
}

void SvgWriter::add_polygon(const std::vector<Vec2>& poly,
                            const std::string& stroke, const std::string& fill,
                            double width) {
  if (poly.empty()) return;
  std::ostringstream os;
  os << "<polygon points=\"";
  for (const Vec2 p : poly) os << tx(p.x) << ',' << ty(p.y) << ' ';
  os << "\" stroke=\"" << stroke << "\" fill=\"" << fill
     << "\" stroke-width=\"" << width << "\"/>";
  body_.push_back(os.str());
}

void SvgWriter::add_text(Vec2 p, const std::string& text, double size) {
  std::ostringstream os;
  os << "<text x=\"" << tx(p.x) << "\" y=\"" << ty(p.y) << "\" font-size=\""
     << size << "\">" << text << "</text>";
  body_.push_back(os.str());
}

bool SvgWriter::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << pixels_
      << "\" height=\"" << pixels_ << "\" viewBox=\"0 0 " << pixels_ << ' '
      << pixels_ << "\">\n";
  out << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  for (const auto& el : body_) out << el << '\n';
  out << "</svg>\n";
  return static_cast<bool>(out);
}

}  // namespace voronet::stats
