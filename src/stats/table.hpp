// Column-aligned text tables and CSV output for the benchmark binaries.
//
// Every figure/table bench prints the same data twice on request: a
// human-readable table (default) and machine-readable CSV (--csv), so the
// paper's plots can be regenerated with any plotting tool.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace voronet::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience cell formatting.
  static std::string cell(double value, int precision = 3);
  static std::string cell(std::size_t value);
  static std::string cell(long long value);

  /// Pretty-print with aligned columns.
  void print(std::ostream& os) const;

  /// Comma-separated values (quotes cells containing commas).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Raw access for alternative serialisers (e.g. the benches' --json).
  [[nodiscard]] const std::vector<std::string>& header() const {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& row_data() const {
    return rows_;
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace voronet::stats
