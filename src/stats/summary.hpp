// Streaming and offline summary statistics for the benchmark harness.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "common/expect.hpp"

namespace voronet::stats {

/// Welford streaming accumulator: count / mean / variance / min / max in
/// O(1) memory, numerically stable.
class StreamingSummary {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  /// Merge another accumulator (parallel reduction; Chan et al.).
  void merge(const StreamingSummary& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * n2 / (n1 + n2);
    m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Retains samples for quantile queries.
class OfflineSummary {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }

  [[nodiscard]] double mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0.0;
    for (const double x : samples_) s += x;
    return s / static_cast<double>(samples_.size());
  }

  /// Quantile q in [0, 1] by nearest-rank on the sorted samples.
  [[nodiscard]] double quantile(double q) {
    VORONET_EXPECT(!samples_.empty(), "quantile of an empty summary");
    VORONET_EXPECT(q >= 0.0 && q <= 1.0, "quantile out of [0,1]");
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(samples_.size() - 1) + 0.5);
    return samples_[idx];
  }

  [[nodiscard]] double median() { return quantile(0.5); }

 private:
  std::vector<double> samples_;
  bool sorted_ = false;
};

}  // namespace voronet::stats
