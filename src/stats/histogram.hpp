// Histograms for the degree-distribution figures (Fig. 5) and view-size
// tables.
#pragma once

#include <cstddef>
#include <vector>

#include "common/expect.hpp"

namespace voronet::stats {

/// Histogram over small non-negative integers (e.g. vertex out-degree).
class IntHistogram {
 public:
  void add(std::size_t value) {
    if (value >= counts_.size()) counts_.resize(value + 1, 0);
    ++counts_[value];
    ++total_;
  }

  [[nodiscard]] std::size_t count(std::size_t value) const {
    return value < counts_.size() ? counts_[value] : 0;
  }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t max_value() const {
    return counts_.empty() ? 0 : counts_.size() - 1;
  }

  [[nodiscard]] double mean() const {
    if (total_ == 0) return 0.0;
    double s = 0.0;
    for (std::size_t v = 0; v < counts_.size(); ++v) {
      s += static_cast<double>(v) * static_cast<double>(counts_[v]);
    }
    return s / static_cast<double>(total_);
  }

  /// The most frequent value (smallest on ties).
  [[nodiscard]] std::size_t mode() const {
    std::size_t best = 0;
    for (std::size_t v = 1; v < counts_.size(); ++v) {
      if (counts_[v] > counts_[best]) best = v;
    }
    return best;
  }

  void merge(const IntHistogram& other) {
    if (other.counts_.size() > counts_.size()) {
      counts_.resize(other.counts_.size(), 0);
    }
    for (std::size_t v = 0; v < other.counts_.size(); ++v) {
      counts_[v] += other.counts_[v];
    }
    total_ += other.total_;
  }

 private:
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Fixed-width histogram over a double interval [lo, hi).
class BinnedHistogram {
 public:
  BinnedHistogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0) {
    VORONET_EXPECT(hi > lo && bins > 0, "invalid histogram parameters");
  }

  void add(double x) {
    ++total_;
    if (x < lo_) {
      ++underflow_;
      return;
    }
    if (x >= hi_) {
      ++overflow_;
      return;
    }
    const auto bin = static_cast<std::size_t>(
        (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size()));
    ++counts_[bin < counts_.size() ? bin : counts_.size() - 1];
  }

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const {
    return counts_[bin];
  }
  [[nodiscard]] double bin_low(std::size_t bin) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                     static_cast<double>(counts_.size());
  }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace voronet::stats
