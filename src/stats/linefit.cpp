#include "stats/linefit.hpp"

#include "common/expect.hpp"

namespace voronet::stats {

LineFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  VORONET_EXPECT(xs.size() == ys.size(), "fit_line size mismatch");
  VORONET_EXPECT(xs.size() >= 2, "fit_line needs at least two points");
  const auto n = static_cast<double>(xs.size());

  double sx = 0.0;
  double sy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n;
  const double my = sy / n;

  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  VORONET_EXPECT(sxx > 0.0, "fit_line with constant x values");

  LineFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

}  // namespace voronet::stats
