#include "geometry/predicates.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "geometry/expansion.hpp"

namespace voronet::geo {

namespace {

// Machine epsilon in Shewchuk's convention: 2^-53, the largest power of two
// such that 1 + eps rounds to a value distinct from 1 under round-to-even.
constexpr double kEpsilon = 0x1p-53;
constexpr double kResultErrBound = (3.0 + 8.0 * kEpsilon) * kEpsilon;
constexpr double kCcwErrBoundA = (3.0 + 16.0 * kEpsilon) * kEpsilon;
constexpr double kCcwErrBoundB = (2.0 + 12.0 * kEpsilon) * kEpsilon;
constexpr double kCcwErrBoundC = (9.0 + 64.0 * kEpsilon) * kEpsilon * kEpsilon;
constexpr double kIccErrBoundA = (10.0 + 96.0 * kEpsilon) * kEpsilon;
constexpr double kIccErrBoundB = (4.0 + 48.0 * kEpsilon) * kEpsilon;
constexpr double kIccErrBoundC = (44.0 + 576.0 * kEpsilon) * kEpsilon * kEpsilon;

// ---------------------------------------------------------------------------
// Counters.  The predicates are the innermost hot path of the whole system
// (tens of millions of calls per bulk build), so increments must not cost a
// locked RMW: each thread tallies into plain thread-local integers, flushed
// into the global atomics when the thread exits.  parallel_for joins its
// workers before any stats read, so predicate_stats() on the coordinating
// thread sees every finished worker's counts.
// ---------------------------------------------------------------------------

enum CounterIndex {
  kOrientCalls,
  kOrientAdapt,
  kOrientExact,
  kIncircleCalls,
  kIncircleAdapt,
  kIncircleExact,
  kCounterCount,
};

std::atomic<unsigned long long> g_flushed[kCounterCount];

struct LocalStats {
  unsigned long long v[kCounterCount] = {};
  ~LocalStats() {
    for (int i = 0; i < kCounterCount; ++i) {
      if (v[i] != 0) g_flushed[i].fetch_add(v[i], std::memory_order_relaxed);
    }
  }
};
thread_local LocalStats t_stats;

inline void bump(CounterIndex i) { ++t_stats.v[i]; }

int sign_of(double v) { return v > 0.0 ? 1 : (v < 0.0 ? -1 : 0); }

/// Exact 2x2 cross term ux*vy - uy*vx as a <=4-component expansion.
Expansion<4> cross_expansion(Vec2 u, Vec2 v) {
  return Expansion<2>::product(u.x, v.y) - Expansion<2>::product(u.y, v.x);
}

int orient2d_exact(Vec2 a, Vec2 b, Vec2 c) {
  // orient = (a x b) + (c x a)' + (b x c) with the symmetric decomposition
  //   (ax*by - ay*bx) + (ay*cx - ax*cy) + (bx*cy - by*cx).
  const auto t1 = cross_expansion(a, b);
  const auto t2 = Expansion<2>::product(a.y, c.x) -
                  Expansion<2>::product(a.x, c.y);
  const auto t3 = cross_expansion(b, c);
  return ((t1 + t2) + t3).sign();
}

/// Exact squared magnitude ux^2 + uy^2 as a <=4-component expansion.
Expansion<4> lift_expansion(Vec2 u) {
  return Expansion<2>::product(u.x, u.x) + Expansion<2>::product(u.y, u.y);
}

int incircle_exact(Vec2 a, Vec2 b, Vec2 c, Vec2 d) {
  // 4x4 determinant with rows (x, y, x^2+y^2, 1); expanding along the ones
  // column:  det = -M(b,c,d) + M(a,c,d) - M(a,b,d) + M(a,b,c)
  // where M(u,v,w) = lift(u)*(v x w) - lift(v)*(u x w) + lift(w)*(u x v).
  const auto ab = cross_expansion(a, b);
  const auto ac = cross_expansion(a, c);
  const auto ad = cross_expansion(a, d);
  const auto bc = cross_expansion(b, c);
  const auto bd = cross_expansion(b, d);
  const auto cd = cross_expansion(c, d);

  const auto alift = lift_expansion(a);
  const auto blift = lift_expansion(b);
  const auto clift = lift_expansion(c);
  const auto dlift = lift_expansion(d);

  // M(u,v,w) built from precomputed crosses.
  const auto m_bcd = (blift * cd - clift * bd) + dlift * bc;
  const auto m_acd = (alift * cd - clift * ad) + dlift * ac;
  const auto m_abd = (alift * bd - blift * ad) + dlift * ab;
  const auto m_abc = (alift * bc - blift * ac) + clift * ab;

  const auto det = (m_acd - m_bcd) + (m_abc - m_abd);
  return det.sign();
}

// ---------------------------------------------------------------------------
// Adaptive stages (Shewchuk's B and C).  Each stage refines the previous
// one's value using quantities already computed, so near-degenerate inputs
// are decided for a small constant extra cost; only configurations that
// are degenerate (or within one tail-product of it) reach the full exact
// expansion.
// ---------------------------------------------------------------------------

int orient2d_adapt(Vec2 a, Vec2 b, Vec2 c, double detsum) {
  const double acx = a.x - c.x;
  const double bcx = b.x - c.x;
  const double acy = a.y - c.y;
  const double bcy = b.y - c.y;

  // Stage B: exact expansion of the determinant of the *rounded*
  // translations.  Certifiable unless the translation roundoff matters.
  const auto det_b = Expansion<2>::product(acx, bcy) -
                     Expansion<2>::product(acy, bcx);
  double det = det_b.estimate();
  double errbound = kCcwErrBoundB * detsum;
  if (det >= errbound || -det >= errbound) return sign_of(det);

  const double acxtail = two_diff_tail(a.x, c.x, acx);
  const double bcxtail = two_diff_tail(b.x, c.x, bcx);
  const double acytail = two_diff_tail(a.y, c.y, acy);
  const double bcytail = two_diff_tail(b.y, c.y, bcy);
  if (acxtail == 0.0 && acytail == 0.0 && bcxtail == 0.0 && bcytail == 0.0) {
    // The translations were exact, so det_b is the exact determinant.
    return det_b.sign();
  }

  // Stage C: first-order tail correction of the stage-B estimate.
  errbound = kCcwErrBoundC * detsum + kResultErrBound * std::fabs(det);
  det += (acx * bcytail + bcy * acxtail) - (acy * bcxtail + bcx * acytail);
  if (det >= errbound || -det >= errbound) return sign_of(det);

  // Stage D: exact.  (acx + acxtail)(bcy + bcytail) - (acy + acytail)
  // (bcx + bcxtail) expanded into the four exact partial products.
  bump(kOrientExact);
  const auto d1 = Expansion<2>::product(acxtail, bcy) -
                  Expansion<2>::product(acytail, bcx);
  const auto d2 = Expansion<2>::product(acx, bcytail) -
                  Expansion<2>::product(acy, bcxtail);
  const auto d3 = Expansion<2>::product(acxtail, bcytail) -
                  Expansion<2>::product(acytail, bcxtail);
  return (((det_b + d1) + d2) + d3).sign();
}

int incircle_adapt(Vec2 a, Vec2 b, Vec2 c, Vec2 d, double permanent) {
  const double adx = a.x - d.x;
  const double bdx = b.x - d.x;
  const double cdx = c.x - d.x;
  const double ady = a.y - d.y;
  const double bdy = b.y - d.y;
  const double cdy = c.y - d.y;

  // Stage B: exact expansion of the determinant of the rounded
  // translations, grouped as alift*(b x c) + blift*(c x a) + clift*(a x b).
  const auto bc = Expansion<2>::product(bdx, cdy) -
                  Expansion<2>::product(cdx, bdy);
  const auto ca = Expansion<2>::product(cdx, ady) -
                  Expansion<2>::product(adx, cdy);
  const auto ab = Expansion<2>::product(adx, bdy) -
                  Expansion<2>::product(bdx, ady);
  const auto adet = bc.scaled(adx).scaled(adx) + bc.scaled(ady).scaled(ady);
  const auto bdet = ca.scaled(bdx).scaled(bdx) + ca.scaled(bdy).scaled(bdy);
  const auto cdet = ab.scaled(cdx).scaled(cdx) + ab.scaled(cdy).scaled(cdy);
  const auto det_b = (adet + bdet) + cdet;
  double det = det_b.estimate();
  double errbound = kIccErrBoundB * permanent;
  if (det >= errbound || -det >= errbound) return sign_of(det);

  const double adxtail = two_diff_tail(a.x, d.x, adx);
  const double adytail = two_diff_tail(a.y, d.y, ady);
  const double bdxtail = two_diff_tail(b.x, d.x, bdx);
  const double bdytail = two_diff_tail(b.y, d.y, bdy);
  const double cdxtail = two_diff_tail(c.x, d.x, cdx);
  const double cdytail = two_diff_tail(c.y, d.y, cdy);
  if (adxtail == 0.0 && adytail == 0.0 && bdxtail == 0.0 &&
      bdytail == 0.0 && cdxtail == 0.0 && cdytail == 0.0) {
    // Exact translations: det_b is the exact incircle determinant.
    return det_b.sign();
  }

  // Stage C: first-order tail correction.
  errbound = kIccErrBoundC * permanent + kResultErrBound * std::fabs(det);
  det += ((adx * adx + ady * ady) *
              ((bdx * cdytail + cdy * bdxtail) -
               (bdy * cdxtail + cdx * bdytail)) +
          2.0 * (adx * adxtail + ady * adytail) * (bdx * cdy - bdy * cdx)) +
         ((bdx * bdx + bdy * bdy) *
              ((cdx * adytail + ady * cdxtail) -
               (cdy * adxtail + adx * cdytail)) +
          2.0 * (bdx * bdxtail + bdy * bdytail) * (cdx * ady - cdy * adx)) +
         ((cdx * cdx + cdy * cdy) *
              ((adx * bdytail + bdy * adxtail) -
               (ady * bdxtail + bdx * adytail)) +
          2.0 * (cdx * cdxtail + cdy * cdytail) * (adx * bdy - ady * bdx));
  if (det >= errbound || -det >= errbound) return sign_of(det);

  // Stage D: full exact evaluation from the original coordinates.
  bump(kIncircleExact);
  return incircle_exact(a, b, c, d);
}

}  // namespace

int orient2d(Vec2 a, Vec2 b, Vec2 c) {
  bump(kOrientCalls);

  const double detleft = (a.x - c.x) * (b.y - c.y);
  const double detright = (a.y - c.y) * (b.x - c.x);
  const double det = detleft - detright;

  double detsum;
  if (detleft > 0.0) {
    if (detright <= 0.0) return sign_of(det);
    detsum = detleft + detright;
  } else if (detleft < 0.0) {
    if (detright >= 0.0) return sign_of(det);
    detsum = -detleft - detright;
  } else {
    return sign_of(det);
  }

  const double errbound = kCcwErrBoundA * detsum;
  if (det > errbound || -det > errbound) return sign_of(det);

  bump(kOrientAdapt);
  return orient2d_adapt(a, b, c, detsum);
}

int incircle(Vec2 a, Vec2 b, Vec2 c, Vec2 d) {
  bump(kIncircleCalls);

  const double adx = a.x - d.x;
  const double bdx = b.x - d.x;
  const double cdx = c.x - d.x;
  const double ady = a.y - d.y;
  const double bdy = b.y - d.y;
  const double cdy = c.y - d.y;

  const double bdxcdy = bdx * cdy;
  const double cdxbdy = cdx * bdy;
  const double alift = adx * adx + ady * ady;

  const double cdxady = cdx * ady;
  const double adxcdy = adx * cdy;
  const double blift = bdx * bdx + bdy * bdy;

  const double adxbdy = adx * bdy;
  const double bdxady = bdx * ady;
  const double clift = cdx * cdx + cdy * cdy;

  const double det = alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy) +
                     clift * (adxbdy - bdxady);

  const double permanent = (std::fabs(bdxcdy) + std::fabs(cdxbdy)) * alift +
                           (std::fabs(cdxady) + std::fabs(adxcdy)) * blift +
                           (std::fabs(adxbdy) + std::fabs(bdxady)) * clift;
  const double errbound = kIccErrBoundA * permanent;
  if (det > errbound || -det > errbound) return sign_of(det);

  bump(kIncircleAdapt);
  return incircle_adapt(a, b, c, d, permanent);
}

double orient2d_estimate(Vec2 a, Vec2 b, Vec2 c) {
  return (a.x - c.x) * (b.y - c.y) - (a.y - c.y) * (b.x - c.x);
}

Vec2 circumcenter(Vec2 a, Vec2 b, Vec2 c) {
  // Translate so a is the origin: solves the 2x2 linear system for the
  // center; relative error is fine for Voronoi geometry.
  const double bx = b.x - a.x;
  const double by = b.y - a.y;
  const double cx = c.x - a.x;
  const double cy = c.y - a.y;
  const double bl = bx * bx + by * by;
  const double cl = cx * cx + cy * cy;
  const double d = 2.0 * (bx * cy - by * cx);
  const double ux = (cy * bl - by * cl) / d;
  const double uy = (bx * cl - cx * bl) / d;
  return {a.x + ux, a.y + uy};
}

Vec2 closest_point_on_segment(Vec2 a, Vec2 b, Vec2 p) {
  const Vec2 ab = b - a;
  const double len2 = norm2(ab);
  if (len2 == 0.0) return a;
  double t = dot(p - a, ab) / len2;
  if (t < 0.0) t = 0.0;
  if (t > 1.0) t = 1.0;
  return a + t * ab;
}

double dist2_to_segment(Vec2 a, Vec2 b, Vec2 p) {
  return dist2(p, closest_point_on_segment(a, b, p));
}

double dist2_segment_segment(Vec2 a, Vec2 b, Vec2 c, Vec2 d) {
  if (segments_intersect(a, b, c, d)) return 0.0;
  // Disjoint segments: the minimum distance is attained at an endpoint of
  // one of them against the other.
  double best = dist2_to_segment(c, d, a);
  best = std::min(best, dist2_to_segment(c, d, b));
  best = std::min(best, dist2_to_segment(a, b, c));
  best = std::min(best, dist2_to_segment(a, b, d));
  return best;
}

bool on_segment(Vec2 a, Vec2 b, Vec2 p) {
  if (orient2d(a, b, p) != 0) return false;
  // Collinear: check the bounding box of the segment.
  const double lox = a.x < b.x ? a.x : b.x;
  const double hix = a.x < b.x ? b.x : a.x;
  const double loy = a.y < b.y ? a.y : b.y;
  const double hiy = a.y < b.y ? b.y : a.y;
  return p.x >= lox && p.x <= hix && p.y >= loy && p.y <= hiy;
}

bool segments_intersect(Vec2 a, Vec2 b, Vec2 c, Vec2 d) {
  const int o1 = orient2d(a, b, c);
  const int o2 = orient2d(a, b, d);
  const int o3 = orient2d(c, d, a);
  const int o4 = orient2d(c, d, b);
  if (o1 != o2 && o3 != o4) return true;
  if (o1 == 0 && on_segment(a, b, c)) return true;
  if (o2 == 0 && on_segment(a, b, d)) return true;
  if (o3 == 0 && on_segment(c, d, a)) return true;
  if (o4 == 0 && on_segment(c, d, b)) return true;
  return false;
}

PredicateStats predicate_stats() {
  const auto total = [](CounterIndex i) {
    return g_flushed[i].load(std::memory_order_relaxed) + t_stats.v[i];
  };
  return {total(kOrientCalls),   total(kOrientAdapt),   total(kOrientExact),
          total(kIncircleCalls), total(kIncircleAdapt), total(kIncircleExact)};
}

void reset_predicate_stats() {
  for (int i = 0; i < kCounterCount; ++i) {
    g_flushed[i].store(0, std::memory_order_relaxed);
    t_stats.v[i] = 0;
  }
}

}  // namespace voronet::geo
