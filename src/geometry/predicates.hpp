// Robust geometric predicates.
//
// orient2d and incircle are evaluated adaptively (Shewchuk 1997): a fast
// floating-point filter (stage A) resolves almost every call; when it
// cannot certify the sign, successively sharper partial-expansion stages
// (B, then C) re-use what is already computed and almost always decide
// near-degenerate inputs; only truly degenerate configurations fall all
// the way to full exact expansion arithmetic.  The returned sign is always
// correct -- including for collinear and cocircular inputs.  This is the
// property the paper leans on when citing Sugihara-Iri "resilience to
// calculation degeneracy": the overlay never builds a topologically
// inconsistent tessellation, whatever the object positions.
//
// See DESIGN.md ("Hot paths / predicates") for the stage layout and the
// counters the benches assert on.
#pragma once

#include "geometry/vec2.hpp"

namespace voronet::geo {

/// Sign of the area of triangle (a, b, c):
///   > 0  -- counter-clockwise (c strictly left of directed line a->b)
///   = 0  -- collinear
///   < 0  -- clockwise.
/// Exact.
int orient2d(Vec2 a, Vec2 b, Vec2 c);

/// Sign of the incircle determinant for CCW triangle (a, b, c):
///   > 0  -- d strictly inside the circumcircle
///   = 0  -- d exactly on the circumcircle (cocircular)
///   < 0  -- d strictly outside.
/// The caller must pass (a, b, c) in counter-clockwise order.  Exact.
int incircle(Vec2 a, Vec2 b, Vec2 c, Vec2 d);

/// Approximate (non-robust) signed doubled area; suitable only for
/// magnitude estimates, never for topological decisions.
double orient2d_estimate(Vec2 a, Vec2 b, Vec2 c);

/// Circumcenter of triangle (a, b, c), computed in double precision.
/// Used for Voronoi geometry (cell vertices), which tolerates rounding;
/// the triangle must not be degenerate.
Vec2 circumcenter(Vec2 a, Vec2 b, Vec2 c);

/// Closest point to p on segment [a, b].
Vec2 closest_point_on_segment(Vec2 a, Vec2 b, Vec2 p);

/// Squared distance from p to segment [a, b].
double dist2_to_segment(Vec2 a, Vec2 b, Vec2 p);

/// Squared distance between segments [a, b] and [c, d]: exactly 0 when
/// they intersect (decided with the exact orientation tests), otherwise
/// the minimum of the four endpoint-to-segment distances (attained at an
/// endpoint for disjoint segments).
double dist2_segment_segment(Vec2 a, Vec2 b, Vec2 c, Vec2 d);

/// True if segments [a,b] and [c,d] share at least one point (closed
/// segments, exact orientation tests; collinear overlaps count).
bool segments_intersect(Vec2 a, Vec2 b, Vec2 c, Vec2 d);

/// True if p lies on the closed segment [a, b] (exact).
bool on_segment(Vec2 a, Vec2 b, Vec2 p);

/// Evaluation counters since process start (or the last reset): total
/// calls, adaptive escalations (the stage-A filter failed; stages B/C
/// ran), and full exact-expansion fallbacks (stages B and C failed too).
/// The benchmarks assert the exact rate stays negligible on real
/// workloads -- that is the whole point of the adaptive stages.
///
/// Counting is exact across threads that have finished (per-thread tallies
/// are aggregated on thread exit); reads and resets are meant to happen on
/// the coordinating thread between parallel phases, where every worker has
/// already joined.
struct PredicateStats {
  unsigned long long orient_calls = 0;
  unsigned long long orient_adapt = 0;
  unsigned long long orient_exact = 0;
  unsigned long long incircle_calls = 0;
  unsigned long long incircle_adapt = 0;
  unsigned long long incircle_exact = 0;
};
PredicateStats predicate_stats();
void reset_predicate_stats();

}  // namespace voronet::geo
