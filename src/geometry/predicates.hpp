// Robust geometric predicates.
//
// orient2d and incircle are evaluated with a fast floating-point filter
// (Shewchuk's stage-A error bounds); when the filter cannot certify the
// sign, the computation falls back to exact expansion arithmetic, so the
// returned sign is always correct -- including for collinear and cocircular
// inputs.  This is the property the paper leans on when citing Sugihara-Iri
// "resilience to calculation degeneracy": the overlay never builds a
// topologically inconsistent tessellation, whatever the object positions.
#pragma once

#include "geometry/vec2.hpp"

namespace voronet::geo {

/// Sign of the area of triangle (a, b, c):
///   > 0  -- counter-clockwise (c strictly left of directed line a->b)
///   = 0  -- collinear
///   < 0  -- clockwise.
/// Exact.
int orient2d(Vec2 a, Vec2 b, Vec2 c);

/// Sign of the incircle determinant for CCW triangle (a, b, c):
///   > 0  -- d strictly inside the circumcircle
///   = 0  -- d exactly on the circumcircle (cocircular)
///   < 0  -- d strictly outside.
/// The caller must pass (a, b, c) in counter-clockwise order.  Exact.
int incircle(Vec2 a, Vec2 b, Vec2 c, Vec2 d);

/// Approximate (non-robust) signed doubled area; suitable only for
/// magnitude estimates, never for topological decisions.
double orient2d_estimate(Vec2 a, Vec2 b, Vec2 c);

/// Circumcenter of triangle (a, b, c), computed in double precision.
/// Used for Voronoi geometry (cell vertices), which tolerates rounding;
/// the triangle must not be degenerate.
Vec2 circumcenter(Vec2 a, Vec2 b, Vec2 c);

/// Closest point to p on segment [a, b].
Vec2 closest_point_on_segment(Vec2 a, Vec2 b, Vec2 p);

/// Squared distance from p to segment [a, b].
double dist2_to_segment(Vec2 a, Vec2 b, Vec2 p);

/// True if segments [a,b] and [c,d] share at least one point (closed
/// segments, exact orientation tests; collinear overlaps count).
bool segments_intersect(Vec2 a, Vec2 b, Vec2 c, Vec2 d);

/// True if p lies on the closed segment [a, b] (exact).
bool on_segment(Vec2 a, Vec2 b, Vec2 p);

/// Number of exact-fallback evaluations since process start; lets the
/// benchmarks report how often the floating-point filter fails.
struct PredicateStats {
  unsigned long long orient_calls = 0;
  unsigned long long orient_exact = 0;
  unsigned long long incircle_calls = 0;
  unsigned long long incircle_exact = 0;
};
PredicateStats predicate_stats();
void reset_predicate_stats();

}  // namespace voronet::geo
