#include "geometry/expansion.hpp"

namespace voronet::geo {

// fast_expansion_sum_zeroelim from Shewchuk's robust predicates paper,
// adapted to return the zero-eliminated length.
std::size_t expansion_sum(std::size_t elen, const double* e, std::size_t flen,
                          const double* f, double* h) {
  std::size_t eindex = 0;
  std::size_t findex = 0;
  std::size_t hindex = 0;

  if (elen == 0) {
    for (; findex < flen; ++findex) {
      if (f[findex] != 0.0) h[hindex++] = f[findex];
    }
    return hindex;
  }
  if (flen == 0) {
    for (; eindex < elen; ++eindex) {
      if (e[eindex] != 0.0) h[hindex++] = e[eindex];
    }
    return hindex;
  }

  double q;
  double enow = e[0];
  double fnow = f[0];
  if ((fnow > enow) == (fnow > -enow)) {
    q = enow;
    ++eindex;
  } else {
    q = fnow;
    ++findex;
  }

  double qnew;
  double hh;
  if (eindex < elen && findex < flen) {
    enow = e[eindex];
    fnow = f[findex];
    if ((fnow > enow) == (fnow > -enow)) {
      fast_two_sum(enow, q, qnew, hh);
      ++eindex;
    } else {
      fast_two_sum(fnow, q, qnew, hh);
      ++findex;
    }
    q = qnew;
    if (hh != 0.0) h[hindex++] = hh;
    while (eindex < elen && findex < flen) {
      enow = e[eindex];
      fnow = f[findex];
      if ((fnow > enow) == (fnow > -enow)) {
        two_sum(q, enow, qnew, hh);
        ++eindex;
      } else {
        two_sum(q, fnow, qnew, hh);
        ++findex;
      }
      q = qnew;
      if (hh != 0.0) h[hindex++] = hh;
    }
  }
  while (eindex < elen) {
    two_sum(q, e[eindex++], qnew, hh);
    q = qnew;
    if (hh != 0.0) h[hindex++] = hh;
  }
  while (findex < flen) {
    two_sum(q, f[findex++], qnew, hh);
    q = qnew;
    if (hh != 0.0) h[hindex++] = hh;
  }
  if (q != 0.0 || hindex == 0) h[hindex++] = q;
  return hindex;
}

// scale_expansion_zeroelim.
std::size_t expansion_scale(std::size_t elen, const double* e, double b,
                            double* h) {
  if (elen == 0 || b == 0.0) return 0;

  double bhi;
  double blo;
  split(b, bhi, blo);

  std::size_t hindex = 0;
  double q;
  double hh;
  two_product(e[0], b, q, hh);
  if (hh != 0.0) h[hindex++] = hh;
  for (std::size_t eindex = 1; eindex < elen; ++eindex) {
    double product1;
    double product0;
    two_product(e[eindex], b, product1, product0);
    double sum;
    two_sum(q, product0, sum, hh);
    if (hh != 0.0) h[hindex++] = hh;
    fast_two_sum(product1, sum, q, hh);
    if (hh != 0.0) h[hindex++] = hh;
  }
  if (q != 0.0 || hindex == 0) h[hindex++] = q;
  return hindex;
}

void expansion_negate(std::size_t elen, double* e) {
  for (std::size_t i = 0; i < elen; ++i) e[i] = -e[i];
}

double expansion_estimate(std::size_t elen, const double* e) {
  double q = 0.0;
  for (std::size_t i = 0; i < elen; ++i) q += e[i];
  return q;
}

int expansion_sign(std::size_t elen, const double* e) {
  // Components are stored in increasing magnitude; after zero elimination
  // the final component dominates the sum (non-overlapping property).
  for (std::size_t i = elen; i > 0; --i) {
    const double c = e[i - 1];
    if (c > 0.0) return 1;
    if (c < 0.0) return -1;
  }
  return 0;
}

}  // namespace voronet::geo
