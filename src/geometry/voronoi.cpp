#include "geometry/voronoi.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"
#include "geometry/predicates.hpp"

namespace voronet::geo {

namespace {

/// Clip a convex CCW polygon by the halfplane f(q) <= 0 where
/// f(q) = dot(q - origin, normal) (Sutherland-Hodgman, one plane).
/// Sets `touched` when at least one vertex was cut away.
void clip_halfplane(std::vector<Vec2>& poly, Vec2 origin, Vec2 normal,
                    bool& touched) {
  if (poly.empty()) return;
  thread_local std::vector<Vec2> out;
  out.clear();
  const std::size_t n = poly.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 a = poly[i];
    const Vec2 b = poly[(i + 1) % n];
    const double fa = dot(a - origin, normal);
    const double fb = dot(b - origin, normal);
    if (fa <= 0.0) {
      out.push_back(a);
      if (fb > 0.0) {
        const double t = fa / (fa - fb);
        out.push_back(a + t * (b - a));
        touched = true;
      }
    } else {
      touched = true;
      if (fb <= 0.0) {
        const double t = fa / (fa - fb);
        out.push_back(a + t * (b - a));
      }
    }
  }
  poly = out;
}

/// Clip the box polygon by the perpendicular bisectors towards every
/// Delaunay neighbour of `site` (the bisectors of non-neighbours are
/// redundant by Voronoi/Delaunay duality).  Writes the cell into `poly`.
void clip_cell_into(const DelaunayTriangulation& dt,
                    DelaunayTriangulation::VertexId site, const Box& box,
                    std::vector<Vec2>& poly) {
  poly.clear();
  poly.push_back({box.lo.x, box.lo.y});
  poly.push_back({box.hi.x, box.lo.y});
  poly.push_back({box.hi.x, box.hi.y});
  poly.push_back({box.lo.x, box.hi.y});

  const Vec2 s = dt.position(site);
  thread_local std::vector<DelaunayTriangulation::VertexId> nbrs;
  nbrs.clear();
  dt.append_neighbors(site, nbrs);
  for (const auto n : nbrs) {
    const Vec2 q = dt.position(n);
    const Vec2 mid = 0.5 * (s + q);
    // Halfplane closer to s than to n: dot(x - mid, q - s) <= 0.
    bool touched = false;
    clip_halfplane(poly, mid, q - s, touched);
    (void)touched;
  }
}

VoronoiCell cell_by_clipping(const DelaunayTriangulation& dt,
                             DelaunayTriangulation::VertexId site,
                             const Box& box) {
  VoronoiCell cell;
  cell.site = site;
  clip_cell_into(dt, site, box, cell.polygon);
  // Determine whether the box actually bounds the cell: if any polygon
  // vertex lies on the box boundary the cell was (potentially) unbounded.
  for (const Vec2 v : cell.polygon) {
    if (v.x <= box.lo.x || v.x >= box.hi.x || v.y <= box.lo.y ||
        v.y >= box.hi.y) {
      cell.clipped = true;
      break;
    }
  }
  return cell;
}

}  // namespace

void Box::expand_to(Vec2 p, double margin) {
  lo.x = std::min(lo.x, p.x - margin);
  lo.y = std::min(lo.y, p.y - margin);
  hi.x = std::max(hi.x, p.x + margin);
  hi.y = std::max(hi.y, p.y + margin);
}

VoronoiCell voronoi_cell(const DelaunayTriangulation& dt,
                         DelaunayTriangulation::VertexId site,
                         const Box& box) {
  VORONET_EXPECT(dt.is_live(site), "voronoi_cell of a dead vertex");
  return cell_by_clipping(dt, site, box);
}

std::vector<VoronoiCell> voronoi_diagram(const DelaunayTriangulation& dt,
                                         const Box& box) {
  std::vector<VoronoiCell> cells;
  cells.reserve(dt.size());
  dt.for_each_vertex([&](DelaunayTriangulation::VertexId v) {
    cells.push_back(cell_by_clipping(dt, v, box));
  });
  return cells;
}

Vec2 closest_point_in_region(const DelaunayTriangulation& dt,
                             DelaunayTriangulation::VertexId site, Vec2 p) {
  VORONET_EXPECT(dt.is_live(site), "closest_point_in_region: dead site");
  const Vec2 s = dt.position(site);

  // Fast path: p already inside the region (strictly closer to the site
  // than to every Delaunay neighbour).
  thread_local std::vector<DelaunayTriangulation::VertexId> nbrs;
  nbrs.clear();
  dt.append_neighbors(site, nbrs);
  bool inside = true;
  for (const auto n : nbrs) {
    const Vec2 q = dt.position(n);
    if (dot(p - 0.5 * (s + q), q - s) > 0.0) {
      inside = false;
      break;
    }
  }
  if (inside) return p;

  // The closest region point z satisfies d(z, p) <= d(s, p), so a clip box
  // containing the ball B(p, r) with r slightly above d(s, p) cannot cut
  // it off, and no artificial box edge can be closer to p than z.
  const double r = dist(s, p) * 1.0001 + 1e-12;
  const Box box{{p.x - r, p.y - r}, {p.x + r, p.y + r}};
  thread_local std::vector<Vec2> poly;
  clip_cell_into(dt, site, box, poly);
  VORONET_EXPECT(!poly.empty(), "clipped Voronoi cell vanished");

  Vec2 best = s;
  double best_d = dist2(s, p);
  const std::size_t n = poly.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 a = poly[i];
    const Vec2 b = poly[(i + 1) % n];
    const Vec2 cand = closest_point_on_segment(a, b, p);
    const double d = dist2(cand, p);
    if (d < best_d) {
      best = cand;
      best_d = d;
    }
  }
  return best;
}

double dist2_to_region(const DelaunayTriangulation& dt,
                       DelaunayTriangulation::VertexId site, Vec2 p) {
  return dist2(p, closest_point_in_region(dt, site, p));
}

double dist2_region_to_segment(const DelaunayTriangulation& dt,
                               DelaunayTriangulation::VertexId site, Vec2 a,
                               Vec2 b) {
  VORONET_EXPECT(dt.is_live(site), "dist2_region_to_segment: dead site");
  if (a == b) return dist2_to_region(dt, site, a);
  const Vec2 s = dt.position(site);

  // Does the segment meet the region?  The region is the intersection of
  // the bisector half-planes towards the Delaunay neighbours, each linear
  // along the segment, so clipping the parameter interval [0, 1] against
  // them decides membership without any clip box (unbounded hull cells
  // included) and returns 0 exactly when some p(t) satisfies every
  // constraint -- a segment merely grazing the cell boundary lands on
  // tlo == thi instead of the false positives of a sampled minimisation.
  thread_local std::vector<DelaunayTriangulation::VertexId> nbrs;
  nbrs.clear();
  dt.append_neighbors(site, nbrs);
  double tlo = 0.0;
  double thi = 1.0;
  for (const auto n : nbrs) {
    const Vec2 q = dt.position(n);
    const Vec2 mid = 0.5 * (s + q);
    const Vec2 normal = q - s;
    const double fa = dot(a - mid, normal);
    const double fb = dot(b - mid, normal);
    if (fa <= 0.0 && fb <= 0.0) continue;  // whole segment on s's side
    if (fa > 0.0 && fb > 0.0) {
      tlo = 1.0;
      thi = 0.0;
      break;  // whole segment beyond this bisector
    }
    const double t = fa / (fa - fb);  // f changes sign at t
    if (fa > 0.0) {
      tlo = std::max(tlo, t);
    } else {
      thi = std::min(thi, t);
    }
    if (tlo > thi) break;
  }
  if (tlo <= thi) return 0.0;

  // Disjoint: the distance between two convex sets is attained on the
  // region's boundary.  Clip the cell to a box that provably contains the
  // closest region point z: since s lies in the region,
  // d(z, segment) <= d(s, segment), so z lies within that margin of the
  // segment's bounding box -- and every artificial box edge is at least
  // the margin away from the segment, so it cannot undercut a real edge.
  const double margin = std::sqrt(dist2_to_segment(a, b, s)) * 1.0001 + 1e-12;
  Box box{{std::min(a.x, b.x) - margin, std::min(a.y, b.y) - margin},
          {std::max(a.x, b.x) + margin, std::max(a.y, b.y) + margin}};
  thread_local std::vector<Vec2> poly;
  clip_cell_into(dt, site, box, poly);
  VORONET_EXPECT(!poly.empty(), "clipped Voronoi cell vanished");

  double best = dist2_to_segment(a, b, s);  // upper bound (s is in the region)
  const std::size_t n = poly.size();
  for (std::size_t i = 0; i < n; ++i) {
    best = std::min(best,
                    dist2_segment_segment(a, b, poly[i], poly[(i + 1) % n]));
  }
  return best;
}

}  // namespace voronet::geo
