// Morton (Z-order) encoding for spatially coherent insertion orders.
//
// Inserting points in Morton order with chained location hints makes the
// incremental Delaunay construction effectively O(n log n) wall-clock (the
// walk from the previous insertion is O(1) expected), versus the O(n^1.5)
// behaviour of random-order insertion without hints.  Used by bulk_insert
// and available to benchmark setup code.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "geometry/vec2.hpp"

namespace voronet::geo {

/// Interleave the low 32 bits of x and y (x in even positions).
constexpr std::uint64_t morton_interleave(std::uint32_t x, std::uint32_t y) {
  const auto spread = [](std::uint64_t v) {
    v &= 0xffffffffULL;
    v = (v | (v << 16)) & 0x0000ffff0000ffffULL;
    v = (v | (v << 8)) & 0x00ff00ff00ff00ffULL;
    v = (v | (v << 4)) & 0x0f0f0f0f0f0f0f0fULL;
    v = (v | (v << 2)) & 0x3333333333333333ULL;
    v = (v | (v << 1)) & 0x5555555555555555ULL;
    return v;
  };
  return spread(x) | (spread(y) << 1);
}

/// Morton key of a point within the given bounding box (21 bits per axis).
std::uint64_t morton_key(Vec2 p, Vec2 lo, Vec2 hi);

/// Indices 0..n-1 permuted into Morton order of the given points.
std::vector<std::uint32_t> morton_order(std::span<const Vec2> points);

}  // namespace voronet::geo
