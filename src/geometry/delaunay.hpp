// Incremental / decremental Delaunay triangulation of the plane.
//
// This is the tessellation substrate under VoroNet: the Voronoi neighbours
// vn(o) of an overlay object are exactly its Delaunay neighbours here, and
// the join / leave protocols map to vertex insertion and removal.
//
// Representation
// --------------
// Triangle soup with adjacency: each live triangle stores three vertex ids
// in counter-clockwise order and the three neighbouring triangle ids
// (nbr[i] lies across the edge opposite v[i]).  The convex-hull boundary is
// closed with *ghost triangles* through a symbolic vertex-at-infinity
// (kGhostVertex): the hull edge u->v (interior on its left) is covered by
// the ghost triangle (v, u, g), normalised so the ghost vertex is always
// stored at index 2.  Ghosts make insertion outside the hull, hull-vertex
// deletion and hull walks uniform -- the structure is a triangulation of
// the sphere and every edge has exactly two faces.
//
// Robustness
// ----------
// All topological decisions go through the exact predicates of
// predicates.hpp, so degenerate inputs (collinear chains, cocircular
// quadruples, points exactly on edges) produce topologically consistent
// results -- the property the paper imports from Sugihara-Iri.  While the
// live point set is empty, a single point, or entirely collinear, the
// structure operates in a triangle-free "pending" mode (neighbourhood
// degenerates to the path graph along the line) and re-triangulates
// automatically as soon as a non-collinear point arrives.
//
// Algorithms
// ----------
// * insertion: visibility walk point location + Bowyer-Watson cavity
//   retriangulation (expected O(1) update size for random points);
// * deletion: Devillers-style -- triangulate the link of the removed
//   vertex with a scratch Delaunay triangulation and graft the part that
//   covers the star polygon back into the structure (handles hull
//   vertices through the ghost machinery);
// * nearest(p): walk to the triangle containing p, then greedy descent on
//   the Delaunay graph, which provably reaches the vertex whose Voronoi
//   region contains p.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "geometry/vec2.hpp"

namespace voronet::geo {

class DelaunayTriangulation {
 public:
  using VertexId = std::int32_t;
  using TriId = std::int32_t;

  /// Symbolic vertex-at-infinity closing the hull (never a real object).
  static constexpr VertexId kGhostVertex = -1;
  static constexpr VertexId kNoVertex = -2;
  static constexpr TriId kNoTriangle = -1;

  struct Triangle {
    std::array<VertexId, 3> v{kNoVertex, kNoVertex, kNoVertex};
    std::array<TriId, 3> nbr{kNoTriangle, kNoTriangle, kNoTriangle};
  };

  struct InsertOutcome {
    VertexId vertex = kNoVertex;
    bool created = false;  ///< false when the position was already present
  };

  DelaunayTriangulation() = default;

  /// Insert a point; `hint` (a live vertex near p) accelerates location.
  /// Exact duplicates are not re-inserted: the existing vertex is returned
  /// with created == false.
  InsertOutcome insert(Vec2 p, VertexId hint = kNoVertex);

  /// Offline bulk construction: inserts all points in Morton order with
  /// chained hints (O(1) expected location per point).  Returns the vertex
  /// id for each INPUT position (kNoVertex never occurs; duplicates map to
  /// the surviving vertex).  Equivalent to, but much faster than, inserting
  /// one by one in the given order.  last_affected() is empty afterwards
  /// (per-insert change tracking is suspended during the bulk load).
  std::vector<VertexId> bulk_insert(std::span<const Vec2> points);

  /// Remove a live vertex; its star is re-triangulated in place.
  void remove(VertexId v);

  /// Vertex whose Voronoi region contains p (ties broken arbitrarily but
  /// deterministically).  Requires a non-empty triangulation.
  [[nodiscard]] VertexId nearest(Vec2 p, VertexId hint = kNoVertex) const;

  /// Convex hull vertices in counter-clockwise order (walks the ghost
  /// cycle).  In pending (collinear) mode returns the sorted chain.
  void hull(std::vector<VertexId>& out) const;

  /// The k live vertices closest to p, in increasing distance order
  /// (fewer if the triangulation holds fewer).  Best-first expansion over
  /// the Delaunay graph: the (j+1)-st nearest neighbour of a point is
  /// always Delaunay-adjacent to one of the j nearest, so the expansion
  /// never misses a result.  Thread-safe for concurrent readers.
  void k_nearest(Vec2 p, std::size_t k, std::vector<VertexId>& out,
                 VertexId hint = kNoVertex) const;

  /// Append the live Delaunay neighbours of v (ghost excluded) to out.
  void append_neighbors(VertexId v, std::vector<VertexId>& out) const;
  [[nodiscard]] std::vector<VertexId> neighbors(VertexId v) const;
  [[nodiscard]] std::size_t degree(VertexId v) const;

  [[nodiscard]] bool is_live(VertexId v) const;
  [[nodiscard]] Vec2 position(VertexId v) const;
  [[nodiscard]] std::size_t size() const { return live_vertices_; }
  [[nodiscard]] bool empty() const { return live_vertices_ == 0; }

  /// True once at least one non-degenerate triangle exists (i.e. the live
  /// points are not all collinear).
  [[nodiscard]] bool has_triangles() const { return real_triangles_ > 0; }

  /// True if v lies on the convex hull of the live point set.  In pending
  /// (collinear) mode every vertex is reported as on the hull.
  [[nodiscard]] bool on_hull(VertexId v) const;

  /// Vertices other than the inserted/removed one whose Delaunay link
  /// changed during the most recent insert() or remove().  The overlay uses
  /// this to account for the view-update messages of the paper's
  /// AddVoronoiRegion / RemoveVoronoiRegion.
  [[nodiscard]] const std::vector<VertexId>& last_affected() const {
    return affected_;
  }

  /// Triangles visited by the most recent point-location walk (locate or
  /// nearest); exposed for message accounting in the simulator.  Meaningful
  /// only between sequential operations: concurrent read-only queries share
  /// the counter (atomically) and will interleave their counts.
  [[nodiscard]] std::size_t last_walk_steps() const {
    return walk_steps_.load(std::memory_order_relaxed);
  }

  /// Full structural audit; throws voronet::ContractError on violation.
  /// check_delaunay additionally verifies the (exact) local empty-circle
  /// property on every internal edge, which is O(T) exact incircle tests.
  void validate(bool check_delaunay = true) const;

  /// Invoke f(VertexId) for every live vertex.
  template <typename F>
  void for_each_vertex(F&& f) const {
    for (VertexId v = 0; v < static_cast<VertexId>(vpos_.size()); ++v) {
      if (vlive_[v]) f(v);
    }
  }

  /// Invoke f(a, b) once per live undirected Delaunay edge (a < b, real).
  template <typename F>
  void for_each_edge(F&& f) const {
    for (TriId t = 0; t < static_cast<TriId>(tris_.size()); ++t) {
      if (!tlive_[t]) continue;
      const Triangle& tri = tris_[t];
      for (int i = 0; i < 3; ++i) {
        const VertexId a = tri.v[(i + 1) % 3];
        const VertexId b = tri.v[(i + 2) % 3];
        if (a == kGhostVertex || b == kGhostVertex) continue;
        if (a < b) f(a, b);
      }
    }
    if (!has_triangles()) {
      // Pending mode: edges of the collinear path graph.
      for (std::size_t i = 1; i < pending_order_.size(); ++i) {
        const VertexId a = pending_order_[i - 1];
        const VertexId b = pending_order_[i];
        f(a < b ? a : b, a < b ? b : a);
      }
    }
  }

  /// Invoke f(a, b, c) once per live real triangle (CCW).
  template <typename F>
  void for_each_triangle(F&& f) const {
    for (TriId t = 0; t < static_cast<TriId>(tris_.size()); ++t) {
      if (tlive_[t] && !is_ghost(t)) {
        f(tris_[t].v[0], tris_[t].v[1], tris_[t].v[2]);
      }
    }
  }

  // --- Low-level access used by the Voronoi module -------------------------

  [[nodiscard]] TriId incident_triangle(VertexId v) const;
  [[nodiscard]] const Triangle& triangle(TriId t) const;
  [[nodiscard]] bool is_ghost(TriId t) const {
    return tris_[t].v[2] == kGhostVertex;
  }
  [[nodiscard]] bool triangle_live(TriId t) const {
    return t >= 0 && t < static_cast<TriId>(tris_.size()) && tlive_[t];
  }

  /// Triangles incident to v in counter-clockwise order (ghosts included;
  /// for a hull vertex the two incident ghosts appear consecutively).
  void star(VertexId v, std::vector<TriId>& out) const;

 private:
  struct Located {
    TriId tri = kNoTriangle;
    VertexId duplicate = kNoVertex;
  };

  /// Directed cavity-boundary edge (cavity on the left) recorded while
  /// digging; `outside` is the surviving triangle across it.
  struct BoundaryEdge {
    VertexId a;
    VertexId b;
    TriId outside;
  };

  VertexId new_vertex(Vec2 p);
  void free_vertex(VertexId v);
  TriId new_triangle(VertexId a, VertexId b, VertexId c);
  void free_triangle(TriId t);
  void link(TriId t, int edge, TriId other);
  [[nodiscard]] int edge_index(TriId t, VertexId a, VertexId b) const;
  [[nodiscard]] int vertex_index(TriId t, VertexId v) const;

  [[nodiscard]] Located locate(Vec2 p, VertexId hint) const;
  [[nodiscard]] bool in_circumdisk(TriId t, Vec2 p) const;
  void dig_cavity_and_fill(TriId seed, VertexId pv);
  void build_initial_triangulation();
  void collapse_to_pending();
  void rebuild_pending_order();

  void remove_triangulated(VertexId v);

  std::vector<Vec2> vpos_;
  std::vector<char> vlive_;
  std::vector<TriId> vtri_;  // one incident live triangle per live vertex
  std::vector<VertexId> vfree_;

  std::vector<Triangle> tris_;
  std::vector<char> tlive_;
  std::vector<TriId> tfree_;

  std::size_t live_vertices_ = 0;
  std::size_t real_triangles_ = 0;

  // Pending (triangle-free) mode: live vertices sorted along the common
  // line (lexicographically), empty once triangulated.
  std::vector<VertexId> pending_order_;

  std::vector<VertexId> affected_;
  // Cleared by bulk_insert(): nobody reads per-insert affected sets during
  // an offline build, and maintaining them (collect + sort + unique per
  // insert) is a measurable fraction of construction time.
  bool track_affected_ = true;
  mutable std::atomic<std::size_t> walk_steps_{0};

  // Last triangle reached by an unhinted locate / produced by an insert:
  // the walk start when the caller has no better hint.  Sequential bulk
  // loads and overlay joins exhibit strong locality, so this turns the
  // former O(T) live-triangle scan into an adjacent start.  Stale values
  // are fine (liveness is checked; a recycled id is still a valid start).
  mutable std::atomic<TriId> last_tri_{kNoTriangle};

  // Scratch buffers reused across operations to avoid re-allocation.
  mutable std::vector<TriId> scratch_tris_;
  std::vector<TriId> scratch_stack_;
  std::vector<BoundaryEdge> scratch_boundary_;
  // Open pv-incident edges while stitching a cavity: (other vertex, (tri,
  // edge index)).  Small (cavity boundary size), so linear scan beats a
  // hash map by a wide margin.
  std::vector<std::pair<VertexId, std::pair<TriId, int>>> scratch_open_;
  std::vector<std::uint32_t> tri_mark_;
  std::uint32_t mark_epoch_ = 0;
};

}  // namespace voronet::geo
