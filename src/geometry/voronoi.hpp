// Voronoi geometry derived from the Delaunay triangulation.
//
// VoroNet needs two geometric services from the Voronoi diagram:
//   * DistanceToRegion (paper, section 4.2.3): the point of an object's
//     Voronoi region closest to a query point -- the quantity that drives
//     the routing stop condition and the fictive-object placement of the
//     join algorithm;
//   * cell polygons for inspection, example rendering and the region
//     descriptions that objects exchange during maintenance.
//
// Cells of hull objects are unbounded; they are represented here clipped
// against a caller-supplied box (defaulting to a box that is provably
// large enough for the query at hand).
#pragma once

#include <optional>
#include <vector>

#include "geometry/delaunay.hpp"
#include "geometry/vec2.hpp"

namespace voronet::geo {

/// Axis-aligned clipping box.
struct Box {
  Vec2 lo{0.0, 0.0};
  Vec2 hi{1.0, 1.0};

  [[nodiscard]] bool contains(Vec2 p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }
  /// Grow the box so that it contains p with the given margin.
  void expand_to(Vec2 p, double margin);
};

/// A (clipped) Voronoi cell: convex polygon in CCW order.
struct VoronoiCell {
  DelaunayTriangulation::VertexId site = DelaunayTriangulation::kNoVertex;
  std::vector<Vec2> polygon;
  bool clipped = false;  ///< true if the unbounded cell met the clip box
};

/// Compute the Voronoi cell of `site`, clipped to `box`.
/// Requires a triangulated structure (>= 3 non-collinear points).
VoronoiCell voronoi_cell(const DelaunayTriangulation& dt,
                         DelaunayTriangulation::VertexId site, const Box& box);

/// All cells of the diagram clipped to `box` (for rendering / inspection).
std::vector<VoronoiCell> voronoi_diagram(const DelaunayTriangulation& dt,
                                         const Box& box);

/// DistanceToRegion of the paper: the point of site's Voronoi region
/// closest to p.  Returns p itself when p lies in the region.  The clip
/// box is chosen internally, large enough that clipping cannot affect the
/// answer (the closest cell point lies within d(p, site) of p).
Vec2 closest_point_in_region(const DelaunayTriangulation& dt,
                             DelaunayTriangulation::VertexId site, Vec2 p);

/// Convenience: squared distance from p to site's Voronoi region.
double dist2_to_region(const DelaunayTriangulation& dt,
                       DelaunayTriangulation::VertexId site, Vec2 p);

/// Squared distance from segment [a, b] to site's Voronoi region.
///
/// Exact where it matters: whether the segment meets the region is
/// decided by clipping the segment's parameter interval against the
/// region's bisector half-planes (no box, so unbounded hull cells are
/// handled exactly), which returns exactly 0 even when the segment only
/// grazes the cell -- e.g. passes through a Voronoi vertex.  The previous
/// implementation ternary-searched dist2_to_region along the segment and
/// could report a small positive distance for a grazing segment, making
/// tolerance-0 range queries skip cells the segment actually crosses
/// (regression-tested in tests/queries_test.cpp).  When the segment
/// misses the region, the distance is the minimum over the cell-boundary
/// edges of the exact segment-segment distance.
double dist2_region_to_segment(const DelaunayTriangulation& dt,
                               DelaunayTriangulation::VertexId site, Vec2 a,
                               Vec2 b);

}  // namespace voronet::geo
