#include "geometry/morton.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace voronet::geo {

std::uint64_t morton_key(Vec2 p, Vec2 lo, Vec2 hi) {
  const double wx = hi.x > lo.x ? hi.x - lo.x : 1.0;
  const double wy = hi.y > lo.y ? hi.y - lo.y : 1.0;
  constexpr double kScale = 2097151.0;  // 2^21 - 1 per axis
  const double fx = std::clamp((p.x - lo.x) / wx, 0.0, 1.0);
  const double fy = std::clamp((p.y - lo.y) / wy, 0.0, 1.0);
  return morton_interleave(static_cast<std::uint32_t>(fx * kScale),
                           static_cast<std::uint32_t>(fy * kScale));
}

std::vector<std::uint32_t> morton_order(std::span<const Vec2> points) {
  std::vector<std::uint32_t> order(points.size());
  if (points.empty()) return order;

  Vec2 lo = points[0];
  Vec2 hi = points[0];
  for (const Vec2 p : points) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }
  std::vector<std::uint64_t> keys(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    keys[i] = morton_key(points[i], lo, hi);
    order[i] = static_cast<std::uint32_t>(i);
  }
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return keys[a] < keys[b] || (keys[a] == keys[b] && a < b);
            });
  return order;
}

}  // namespace voronet::geo
