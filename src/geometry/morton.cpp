#include "geometry/morton.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace voronet::geo {

std::uint64_t morton_key(Vec2 p, Vec2 lo, Vec2 hi) {
  const double wx = hi.x > lo.x ? hi.x - lo.x : 1.0;
  const double wy = hi.y > lo.y ? hi.y - lo.y : 1.0;
  constexpr double kScale = 2097151.0;  // 2^21 - 1 per axis
  const double fx = std::clamp((p.x - lo.x) / wx, 0.0, 1.0);
  const double fy = std::clamp((p.y - lo.y) / wy, 0.0, 1.0);
  return morton_interleave(static_cast<std::uint32_t>(fx * kScale),
                           static_cast<std::uint32_t>(fy * kScale));
}

std::vector<std::uint32_t> morton_order(std::span<const Vec2> points) {
  std::vector<std::uint32_t> order(points.size());
  if (points.empty()) return order;

  Vec2 lo = points[0];
  Vec2 hi = points[0];
  for (const Vec2 p : points) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }
  // Pack (key, index) into one word when the index fits the 22 low bits
  // the 42-bit key leaves free, and LSD radix sort the packed words: for
  // bulk-load sizes this is several times faster than a comparison sort
  // through an indirection, and the index bits double as the tie-break.
  constexpr std::size_t kIndexBits = 22;
  const std::size_t n = points.size();
  if (n < (std::size_t{1} << kIndexBits)) {
    std::vector<std::uint64_t> packed(n);
    for (std::size_t i = 0; i < n; ++i) {
      packed[i] = (morton_key(points[i], lo, hi) << kIndexBits) | i;
    }
    constexpr int kDigitBits = 11;  // 6 passes cover all 64 bits
    constexpr std::size_t kBuckets = std::size_t{1} << kDigitBits;
    std::vector<std::uint64_t> tmp(n);
    std::vector<std::uint32_t> count(kBuckets);
    for (int shift = 0; shift < 64; shift += kDigitBits) {
      std::fill(count.begin(), count.end(), 0);
      const std::uint64_t mask = (shift + kDigitBits >= 64)
                                     ? ~std::uint64_t{0} >> shift
                                     : kBuckets - 1;
      for (const std::uint64_t v : packed) ++count[(v >> shift) & mask];
      std::uint32_t sum = 0;
      for (auto& c : count) {
        const std::uint32_t c0 = c;
        c = sum;
        sum += c0;
      }
      for (const std::uint64_t v : packed) tmp[count[(v >> shift) & mask]++] = v;
      packed.swap(tmp);
    }
    for (std::size_t i = 0; i < n; ++i) {
      order[i] = static_cast<std::uint32_t>(packed[i] &
                                            ((std::uint64_t{1} << kIndexBits) - 1));
    }
    return order;
  }

  std::vector<std::uint64_t> keys(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = morton_key(points[i], lo, hi);
    order[i] = static_cast<std::uint32_t>(i);
  }
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return keys[a] < keys[b] || (keys[a] == keys[b] && a < b);
            });
  return order;
}

}  // namespace voronet::geo
