// 2-D point/vector type used throughout the library.
//
// VoroNet places application objects in the unit square [0,1]^2 (the paper's
// two-attribute space), but all geometric routines accept arbitrary
// coordinates: long-range targets may legitimately fall outside the square
// (paper, section 4.3.2).
#pragma once

#include <cmath>
#include <compare>
#include <iosfwd>

namespace voronet {

/// Cartesian point / displacement in the attribute plane.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr Vec2 operator*(double s, Vec2 v) {
    return {s * v.x, s * v.y};
  }
  friend constexpr Vec2 operator*(Vec2 v, double s) { return s * v; }

  friend constexpr bool operator==(Vec2 a, Vec2 b) = default;
  friend constexpr auto operator<=>(Vec2 a, Vec2 b) = default;
};

/// Dot product.
constexpr double dot(Vec2 a, Vec2 b) { return a.x * b.x + a.y * b.y; }

/// Z-component of the 2-D cross product (signed parallelogram area).
constexpr double cross(Vec2 a, Vec2 b) { return a.x * b.y - a.y * b.x; }

/// Squared Euclidean distance (preferred for comparisons: no sqrt, no
/// rounding beyond the subtractions).
constexpr double dist2(Vec2 a, Vec2 b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Euclidean distance.
inline double dist(Vec2 a, Vec2 b) { return std::sqrt(dist2(a, b)); }

/// Squared length.
constexpr double norm2(Vec2 v) { return v.x * v.x + v.y * v.y; }

/// Length.
inline double norm(Vec2 v) { return std::sqrt(norm2(v)); }

std::ostream& operator<<(std::ostream& os, Vec2 v);

}  // namespace voronet
