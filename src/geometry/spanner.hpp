// Graph-dilation (spanner) analysis of the Delaunay triangulation.
//
// The paper's range-query perspective (section 7) rests on the Delaunay
// triangulation being a t-spanner: for every pair of sites, the shortest
// path through triangulation edges is at most t times the Euclidean
// distance (the best known bound is t < 1.998; the classical Keil-Gutwin
// bound is 2*pi/(3*cos(pi/6)) ~ 2.42).  These helpers measure the
// dilation so the property can be tested and reported.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "geometry/delaunay.hpp"

namespace voronet::geo {

/// Length of the shortest path between a and b through Delaunay edges
/// (Dijkstra with Euclidean edge weights).  Requires both vertices live.
double graph_distance(const DelaunayTriangulation& dt,
                      DelaunayTriangulation::VertexId a,
                      DelaunayTriangulation::VertexId b);

struct DilationStats {
  double max_dilation = 0.0;   ///< worst observed path/Euclid ratio
  double mean_dilation = 0.0;
  std::size_t pairs = 0;
};

/// Sample `pairs` random vertex pairs and report the observed dilation.
DilationStats sample_dilation(const DelaunayTriangulation& dt,
                              std::size_t pairs, Rng& rng);

}  // namespace voronet::geo
