#include "geometry/spanner.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/expect.hpp"

namespace voronet::geo {

double graph_distance(const DelaunayTriangulation& dt,
                      DelaunayTriangulation::VertexId a,
                      DelaunayTriangulation::VertexId b) {
  using VertexId = DelaunayTriangulation::VertexId;
  VORONET_EXPECT(dt.is_live(a) && dt.is_live(b),
                 "graph_distance requires live vertices");
  if (a == b) return 0.0;

  struct Item {
    double d;
    VertexId v;
    bool operator>(const Item& o) const { return d > o.d; }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
  std::unordered_map<VertexId, double> best;
  heap.push({0.0, a});
  best[a] = 0.0;
  std::vector<VertexId> nbrs;
  while (!heap.empty()) {
    const Item cur = heap.top();
    heap.pop();
    if (cur.v == b) return cur.d;
    const auto it = best.find(cur.v);
    if (it != best.end() && cur.d > it->second) continue;  // stale entry
    nbrs.clear();
    dt.append_neighbors(cur.v, nbrs);
    for (const VertexId u : nbrs) {
      const double nd = cur.d + dist(dt.position(cur.v), dt.position(u));
      const auto bit = best.find(u);
      if (bit == best.end() || nd < bit->second) {
        best[u] = nd;
        heap.push({nd, u});
      }
    }
  }
  VORONET_EXPECT(false, "Delaunay graph is connected; path must exist");
  return std::numeric_limits<double>::infinity();
}

DilationStats sample_dilation(const DelaunayTriangulation& dt,
                              std::size_t pairs, Rng& rng) {
  VORONET_EXPECT(dt.size() >= 2, "dilation needs at least two vertices");
  using VertexId = DelaunayTriangulation::VertexId;
  std::vector<VertexId> ids;
  ids.reserve(dt.size());
  dt.for_each_vertex([&](VertexId v) { ids.push_back(v); });

  DilationStats stats;
  double total = 0.0;
  for (std::size_t i = 0; i < pairs; ++i) {
    const VertexId a = ids[rng.index(ids.size())];
    VertexId b = ids[rng.index(ids.size())];
    while (b == a) b = ids[rng.index(ids.size())];
    const double euclid = dist(dt.position(a), dt.position(b));
    const double path = graph_distance(dt, a, b);
    const double dilation = path / euclid;
    stats.max_dilation = std::max(stats.max_dilation, dilation);
    total += dilation;
    ++stats.pairs;
  }
  stats.mean_dilation = stats.pairs ? total / static_cast<double>(stats.pairs)
                                    : 0.0;
  return stats;
}

}  // namespace voronet::geo
