// Multi-component floating-point expansions (Shewchuk, "Adaptive Precision
// Floating-Point Arithmetic and Fast Robust Geometric Predicates", 1997).
//
// An expansion represents an exact real number as an unevaluated sum of
// doubles, stored in order of increasing magnitude with non-overlapping
// mantissas.  All operations below are EXACT provided the compiler performs
// strict IEEE-754 double arithmetic (no FMA contraction, no -ffast-math);
// the geometry library is compiled with -ffp-contract=off to guarantee this.
//
// This header is an internal building block of predicates.cpp; it is
// exposed so the test suite can exercise the arithmetic directly.
#pragma once

#include <cstddef>

namespace voronet::geo {

// ---------------------------------------------------------------------------
// Error-free transformations.
// Each writes the rounded result to x and the exact roundoff to y, so that
// a op b == x + y exactly.
// ---------------------------------------------------------------------------

/// Requires |a| >= |b| (or a == 0).
inline void fast_two_sum(double a, double b, double& x, double& y) {
  x = a + b;
  const double bvirt = x - a;
  y = b - bvirt;
}

inline void two_sum(double a, double b, double& x, double& y) {
  x = a + b;
  const double bvirt = x - a;
  const double avirt = x - bvirt;
  const double bround = b - bvirt;
  const double around = a - avirt;
  y = around + bround;
}

inline void two_diff(double a, double b, double& x, double& y) {
  x = a - b;
  const double bvirt = a - x;
  const double avirt = x + bvirt;
  const double bround = bvirt - b;
  const double around = a - avirt;
  y = around + bround;
}

/// Roundoff of a - b given the already-computed x = fl(a - b), so that
/// a - b == x + tail exactly.  The tail is what the adaptive predicate
/// stages feed forward when the translated coordinates were inexact.
inline double two_diff_tail(double a, double b, double x) {
  const double bvirt = a - x;
  const double avirt = x + bvirt;
  const double bround = bvirt - b;
  const double around = a - avirt;
  return around + bround;
}

/// Veltkamp split: a == hi + lo with both halves fitting 26-bit mantissas.
inline void split(double a, double& hi, double& lo) {
  constexpr double kSplitter = 134217729.0;  // 2^27 + 1
  const double c = kSplitter * a;
  const double abig = c - a;
  hi = c - abig;
  lo = a - hi;
}

/// Dekker product: a * b == x + y exactly.
inline void two_product(double a, double b, double& x, double& y) {
  x = a * b;
  double ahi;
  double alo;
  double bhi;
  double blo;
  split(a, ahi, alo);
  split(b, bhi, blo);
  const double err1 = x - (ahi * bhi);
  const double err2 = err1 - (alo * bhi);
  const double err3 = err2 - (ahi * blo);
  y = (alo * blo) - err3;
}

// ---------------------------------------------------------------------------
// Expansion operations (arrays of doubles, increasing magnitude,
// non-overlapping).  All functions eliminate zero components and return the
// length of the output expansion; h must not alias e or f.
// ---------------------------------------------------------------------------

/// h = e + f.  |h| <= elen + flen.
std::size_t expansion_sum(std::size_t elen, const double* e, std::size_t flen,
                          const double* f, double* h);

/// h = e * b for a single double b.  |h| <= 2 * elen.
std::size_t expansion_scale(std::size_t elen, const double* e, double b,
                            double* h);

/// In-place negation.
void expansion_negate(std::size_t elen, double* e);

/// One-double approximation of the expansion's value (sum, low to high).
double expansion_estimate(std::size_t elen, const double* e);

/// Sign of the exact value: -1, 0, or +1.  The largest-magnitude component
/// (last, after zero elimination) determines the sign.
int expansion_sign(std::size_t elen, const double* e);

/// Fixed-capacity expansion value for composing exact computations without
/// manual buffer management.  Capacity bounds below are derived per call
/// site; exceeding N is a contract violation (checked).
template <std::size_t N>
class Expansion {
 public:
  Expansion() = default;

  /// Exact value of a single double.
  explicit Expansion(double v) {
    if (v != 0.0) {
      comp_[0] = v;
      len_ = 1;
    }
  }

  /// Exact product of two doubles.
  static Expansion product(double a, double b) {
    Expansion r;
    double x;
    double y;
    two_product(a, b, x, y);
    r.len_ = 0;
    if (y != 0.0) r.comp_[r.len_++] = y;
    if (x != 0.0) r.comp_[r.len_++] = x;
    return r;
  }

  /// Exact difference of two doubles.
  static Expansion difference(double a, double b) {
    Expansion r;
    double x;
    double y;
    two_diff(a, b, x, y);
    r.len_ = 0;
    if (y != 0.0) r.comp_[r.len_++] = y;
    if (x != 0.0) r.comp_[r.len_++] = x;
    return r;
  }

  [[nodiscard]] std::size_t size() const { return len_; }
  [[nodiscard]] const double* data() const { return comp_; }
  [[nodiscard]] double estimate() const {
    return expansion_estimate(len_, comp_);
  }
  [[nodiscard]] int sign() const { return expansion_sign(len_, comp_); }

  template <std::size_t M>
  [[nodiscard]] auto operator+(const Expansion<M>& other) const {
    Expansion<N + M> r;
    r.set_length(
        expansion_sum(len_, comp_, other.size(), other.data(), r.raw()));
    return r;
  }

  template <std::size_t M>
  [[nodiscard]] auto operator-(const Expansion<M>& other) const {
    Expansion<M> neg = other;
    neg.negate();
    return *this + neg;
  }

  /// Exact product with a single double.
  [[nodiscard]] Expansion<2 * N> scaled(double b) const {
    Expansion<2 * N> r;
    r.set_length(expansion_scale(len_, comp_, b, r.raw()));
    return r;
  }

  /// Exact product of two expansions (distributes over components).
  template <std::size_t M>
  [[nodiscard]] auto operator*(const Expansion<M>& other) const {
    // Each scaled partial has <= 2N components; summing M of them in
    // sequence yields at most 2*N*M components.
    Expansion<2 * N * M> acc;
    for (std::size_t i = 0; i < other.size(); ++i) {
      const auto partial = scaled(other.data()[i]);
      Expansion<2 * N * M> next;
      next.set_length(expansion_sum(acc.size(), acc.data(), partial.size(),
                                    partial.data(), next.raw()));
      acc = next;
    }
    return acc;
  }

  void negate() { expansion_negate(len_, comp_); }

  // Internal plumbing for the free functions above.
  double* raw() { return comp_; }
  void set_length(std::size_t n);

 private:
  double comp_[N > 0 ? N : 1] = {};
  std::size_t len_ = 0;
};

}  // namespace voronet::geo

#include "common/expect.hpp"

namespace voronet::geo {

template <std::size_t N>
void Expansion<N>::set_length(std::size_t n) {
  VORONET_EXPECT(n <= N, "expansion capacity exceeded");
  len_ = n;
}

}  // namespace voronet::geo
