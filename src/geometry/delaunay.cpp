#include "geometry/delaunay.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "common/expect.hpp"
#include "geometry/morton.hpp"
#include "geometry/predicates.hpp"

namespace voronet::geo {

namespace {

/// Key for an undirected edge; vertex ids are shifted so the ghost (-1)
/// maps to a valid non-negative key component.
std::uint64_t edge_key(DelaunayTriangulation::VertexId a,
                       DelaunayTriangulation::VertexId b) {
  const auto ua = static_cast<std::uint32_t>(a + 2);
  const auto ub = static_cast<std::uint32_t>(b + 2);
  const std::uint32_t lo = ua < ub ? ua : ub;
  const std::uint32_t hi = ua < ub ? ub : ua;
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

/// Exact test: with p collinear with (u, v), is p strictly inside the open
/// segment?  Sign-exact because the component products cannot cancel for
/// parallel vectors (see DESIGN.md verification notes).
bool inside_open_segment(Vec2 u, Vec2 v, Vec2 p) {
  return dot(p - u, v - u) > 0.0 && dot(p - v, u - v) > 0.0;
}

}  // namespace

// ---------------------------------------------------------------------------
// Allocation helpers
// ---------------------------------------------------------------------------

DelaunayTriangulation::VertexId DelaunayTriangulation::new_vertex(Vec2 p) {
  VertexId v;
  if (!vfree_.empty()) {
    v = vfree_.back();
    vfree_.pop_back();
    vpos_[v] = p;
    vlive_[v] = 1;
    vtri_[v] = kNoTriangle;
  } else {
    v = static_cast<VertexId>(vpos_.size());
    vpos_.push_back(p);
    vlive_.push_back(1);
    vtri_.push_back(kNoTriangle);
  }
  ++live_vertices_;
  return v;
}

void DelaunayTriangulation::free_vertex(VertexId v) {
  VORONET_DCHECK(vlive_[v]);
  vlive_[v] = 0;
  vtri_[v] = kNoTriangle;
  vfree_.push_back(v);
  --live_vertices_;
}

DelaunayTriangulation::TriId DelaunayTriangulation::new_triangle(VertexId a,
                                                                 VertexId b,
                                                                 VertexId c) {
  TriId t;
  if (!tfree_.empty()) {
    t = tfree_.back();
    tfree_.pop_back();
    tlive_[t] = 1;
  } else {
    t = static_cast<TriId>(tris_.size());
    tris_.push_back({});
    tlive_.push_back(1);
    tri_mark_.push_back(0);
  }
  tris_[t].v = {a, b, c};
  // nbr is deliberately left stale: every creation site links all three
  // edges before the structure is observable (the cavity fill and the
  // hole fill both assert their open-edge sets close), and validate()
  // audits full adjacency.
  if (c != kGhostVertex) ++real_triangles_;
  return t;
}

void DelaunayTriangulation::free_triangle(TriId t) {
  VORONET_DCHECK(tlive_[t]);
  if (!is_ghost(t)) --real_triangles_;
  tlive_[t] = 0;
  tfree_.push_back(t);
}

void DelaunayTriangulation::link(TriId t, int edge, TriId other) {
  tris_[t].nbr[edge] = other;
}

int DelaunayTriangulation::vertex_index(TriId t, VertexId v) const {
  const Triangle& tr = tris_[t];
  for (int i = 0; i < 3; ++i) {
    if (tr.v[i] == v) return i;
  }
  VORONET_EXPECT(false, "vertex not in triangle");
  return -1;
}

int DelaunayTriangulation::edge_index(TriId t, VertexId a, VertexId b) const {
  const Triangle& tr = tris_[t];
  for (int i = 0; i < 3; ++i) {
    const VertexId x = tr.v[(i + 1) % 3];
    const VertexId y = tr.v[(i + 2) % 3];
    if ((x == a && y == b) || (x == b && y == a)) return i;
  }
  VORONET_EXPECT(false, "edge not in triangle");
  return -1;
}

// ---------------------------------------------------------------------------
// Basic accessors
// ---------------------------------------------------------------------------

bool DelaunayTriangulation::is_live(VertexId v) const {
  return v >= 0 && v < static_cast<VertexId>(vpos_.size()) && vlive_[v];
}

Vec2 DelaunayTriangulation::position(VertexId v) const {
  VORONET_DCHECK(is_live(v));
  return vpos_[v];
}

DelaunayTriangulation::TriId DelaunayTriangulation::incident_triangle(
    VertexId v) const {
  VORONET_DCHECK(is_live(v));
  return vtri_[v];
}

const DelaunayTriangulation::Triangle& DelaunayTriangulation::triangle(
    TriId t) const {
  VORONET_DCHECK(triangle_live(t));
  return tris_[t];
}

void DelaunayTriangulation::star(VertexId v, std::vector<TriId>& out) const {
  out.clear();
  VORONET_EXPECT(is_live(v), "star() of a dead vertex");
  const TriId t0 = vtri_[v];
  VORONET_EXPECT(t0 != kNoTriangle, "star() requires a triangulated vertex");
  TriId t = t0;
  do {
    out.push_back(t);
    const int j = vertex_index(t, v);
    t = tris_[t].nbr[(j + 1) % 3];
    VORONET_EXPECT(t != kNoTriangle, "broken star adjacency");
    VORONET_EXPECT(out.size() <= tris_.size(), "star walk does not close");
  } while (t != t0);
}

void DelaunayTriangulation::append_neighbors(VertexId v,
                                             std::vector<VertexId>& out) const {
  VORONET_EXPECT(is_live(v), "neighbors() of a dead vertex");
  if (!has_triangles()) {
    // Pending mode: path graph along the sorted collinear order.
    for (std::size_t i = 0; i < pending_order_.size(); ++i) {
      if (pending_order_[i] != v) continue;
      if (i > 0) out.push_back(pending_order_[i - 1]);
      if (i + 1 < pending_order_.size()) out.push_back(pending_order_[i + 1]);
      return;
    }
    VORONET_EXPECT(false, "live vertex missing from pending order");
  }
  TriId t0 = vtri_[v];
  TriId t = t0;
  do {
    const int j = vertex_index(t, v);
    const VertexId a = tris_[t].v[(j + 1) % 3];
    if (a != kGhostVertex) out.push_back(a);
    t = tris_[t].nbr[(j + 1) % 3];
  } while (t != t0);
}

std::vector<DelaunayTriangulation::VertexId> DelaunayTriangulation::neighbors(
    VertexId v) const {
  std::vector<VertexId> out;
  append_neighbors(v, out);
  return out;
}

std::size_t DelaunayTriangulation::degree(VertexId v) const {
  thread_local std::vector<VertexId> buf;
  buf.clear();
  append_neighbors(v, buf);
  return buf.size();
}

bool DelaunayTriangulation::on_hull(VertexId v) const {
  VORONET_EXPECT(is_live(v), "on_hull() of a dead vertex");
  if (!has_triangles()) return true;
  TriId t0 = vtri_[v];
  TriId t = t0;
  do {
    if (is_ghost(t)) return true;
    const int j = vertex_index(t, v);
    t = tris_[t].nbr[(j + 1) % 3];
  } while (t != t0);
  return false;
}

// ---------------------------------------------------------------------------
// Point location
// ---------------------------------------------------------------------------

DelaunayTriangulation::Located DelaunayTriangulation::locate(
    Vec2 p, VertexId hint) const {
  TriId cur = kNoTriangle;
  if (hint != kNoVertex && is_live(hint) && vtri_[hint] != kNoTriangle) {
    cur = vtri_[hint];
  }
  const bool hinted = cur != kNoTriangle && tlive_[cur];
  if (!hinted) {
    // No usable hint: resume where the previous unhinted walk ended (bulk
    // loads and overlay joins are spatially local, so this is usually
    // adjacent to the destination).  A stale or dead id falls through to
    // the scan.
    const TriId last = last_tri_.load(std::memory_order_relaxed);
    if (last != kNoTriangle && last < static_cast<TriId>(tris_.size()) &&
        tlive_[last]) {
      cur = last;
    }
  }
  if (cur == kNoTriangle || !tlive_[cur]) {
    for (TriId t = 0; t < static_cast<TriId>(tris_.size()); ++t) {
      if (tlive_[t] && !is_ghost(t)) {
        cur = t;
        break;
      }
    }
  }
  VORONET_EXPECT(cur != kNoTriangle, "locate() on an empty triangulation");

  // The walk itself only needs orientation tests: a duplicate position is
  // detected once on arrival (p coinciding with a vertex can only stop the
  // walk in a triangle incident to that vertex), not re-checked per step.
  // Only unhinted walks publish their endpoint: hinted callers have their
  // own locality, and skipping the store keeps parallel hinted probes from
  // bouncing the cache line.
  TriId prev = kNoTriangle;
  std::size_t steps = 0;
  const std::size_t cap = 4 * tris_.size() + 64;
  const auto finish = [&](TriId t, VertexId dup) {
    walk_steps_.store(steps, std::memory_order_relaxed);
    if (!hinted) last_tri_.store(t, std::memory_order_relaxed);
    return Located{t, dup};
  };

  while (true) {
    ++steps;
    VORONET_EXPECT(steps <= cap, "point-location walk did not terminate");
    const Triangle& t = tris_[cur];

    if (t.v[2] == kGhostVertex) {
      const VertexId vv = t.v[0];
      const VertexId uu = t.v[1];
      const Vec2 pv = vpos_[vv];
      const Vec2 pu = vpos_[uu];
      if (p == pv) return finish(cur, vv);
      if (p == pu) return finish(cur, uu);
      const int o = orient2d(pv, pu, p);
      if (o > 0) return finish(cur, kNoVertex);  // strictly outside this edge
      if (o < 0) {                               // strictly inside: step in
        prev = cur;
        cur = t.nbr[2];
        continue;
      }
      // Collinear with the hull edge u->v.
      if (inside_open_segment(pu, pv, p)) return finish(cur, kNoVertex);
      prev = cur;
      // Beyond v: continue to the next ghost CCW; before u: previous ghost.
      cur = dot(p - pu, pv - pu) > 0.0 ? t.nbr[1] : t.nbr[0];
      continue;
    }

    const Vec2 p0 = vpos_[t.v[0]];
    const Vec2 p1 = vpos_[t.v[1]];
    const Vec2 p2 = vpos_[t.v[2]];
    // Edge i is opposite vertex i; the entry edge (shared with prev) is
    // already known to not separate p and is skipped.
    TriId next = kNoTriangle;
    if (t.nbr[0] != prev && orient2d(p1, p2, p) < 0) {
      next = t.nbr[0];
    } else if (t.nbr[1] != prev && orient2d(p2, p0, p) < 0) {
      next = t.nbr[1];
    } else if (t.nbr[2] != prev && orient2d(p0, p1, p) < 0) {
      next = t.nbr[2];
    }
    if (next == kNoTriangle) {
      // Closed triangle contains p; surface an exact duplicate if any.
      if (p == p0) return finish(cur, t.v[0]);
      if (p == p1) return finish(cur, t.v[1]);
      if (p == p2) return finish(cur, t.v[2]);
      return finish(cur, kNoVertex);
    }
    prev = cur;
    cur = next;
  }
}

bool DelaunayTriangulation::in_circumdisk(TriId t, Vec2 p) const {
  const Triangle& tr = tris_[t];
  if (is_ghost(t)) {
    const Vec2 v = vpos_[tr.v[0]];
    const Vec2 u = vpos_[tr.v[1]];
    const int o = orient2d(v, u, p);
    if (o != 0) return o > 0;
    return inside_open_segment(u, v, p);
  }
  return incircle(vpos_[tr.v[0]], vpos_[tr.v[1]], vpos_[tr.v[2]], p) > 0;
}

// ---------------------------------------------------------------------------
// Insertion
// ---------------------------------------------------------------------------

DelaunayTriangulation::InsertOutcome DelaunayTriangulation::insert(
    Vec2 p, VertexId hint) {
  affected_.clear();

  if (!has_triangles()) {
    // Pending mode: collect collinear points until a triangle is possible.
    for (const VertexId v : pending_order_) {
      if (vpos_[v] == p) return {v, false};
    }
    const VertexId nv = new_vertex(p);
    const auto cmp = [this](VertexId a, VertexId b) {
      return vpos_[a] < vpos_[b];
    };
    pending_order_.insert(
        std::upper_bound(pending_order_.begin(), pending_order_.end(), nv, cmp),
        nv);
    // Neighbours along the path graph changed around nv.
    const auto it = std::find(pending_order_.begin(), pending_order_.end(), nv);
    const std::size_t idx = static_cast<std::size_t>(it - pending_order_.begin());
    if (idx > 0) affected_.push_back(pending_order_[idx - 1]);
    if (idx + 1 < pending_order_.size()) {
      affected_.push_back(pending_order_[idx + 1]);
    }
    if (pending_order_.size() >= 3) build_initial_triangulation();
    return {nv, true};
  }

  const Located loc = locate(p, hint);
  if (loc.duplicate != kNoVertex) return {loc.duplicate, false};
  const VertexId nv = new_vertex(p);
  dig_cavity_and_fill(loc.tri, nv);
  // Chain locality for the next unhinted operation.
  last_tri_.store(vtri_[nv], std::memory_order_relaxed);
  return {nv, true};
}

void DelaunayTriangulation::build_initial_triangulation() {
  // Find the first non-collinear triple among the pending points.
  VORONET_DCHECK(pending_order_.size() >= 3);
  const VertexId a = pending_order_[0];
  const VertexId b = pending_order_[1];
  VertexId c = kNoVertex;
  int orientation = 0;
  for (std::size_t k = 2; k < pending_order_.size(); ++k) {
    orientation = orient2d(vpos_[a], vpos_[b], vpos_[pending_order_[k]]);
    if (orientation != 0) {
      c = pending_order_[k];
      break;
    }
  }
  if (c == kNoVertex) return;  // still all collinear

  std::vector<VertexId> rest;
  rest.reserve(pending_order_.size() - 3);
  for (const VertexId v : pending_order_) {
    if (v != a && v != b && v != c) rest.push_back(v);
  }
  pending_order_.clear();

  const VertexId x = a;
  const VertexId y = orientation > 0 ? b : c;
  const VertexId z = orientation > 0 ? c : b;
  VORONET_DCHECK(orient2d(vpos_[x], vpos_[y], vpos_[z]) > 0);

  const TriId t0 = new_triangle(x, y, z);
  const TriId g0 = new_triangle(y, x, kGhostVertex);  // hull edge x->y
  const TriId g1 = new_triangle(z, y, kGhostVertex);  // hull edge y->z
  const TriId g2 = new_triangle(x, z, kGhostVertex);  // hull edge z->x
  // Real triangle edges: edge opposite t0.v[i].
  link(t0, 2, g0);  // edge (x, y)
  link(t0, 0, g1);  // edge (y, z)
  link(t0, 1, g2);  // edge (z, x)
  link(g0, 2, t0);
  link(g1, 2, t0);
  link(g2, 2, t0);
  // Ghost-to-ghost adjacency: ghost (v, u, g) meets the previous ghost
  // (sharing u) across edge 0 and the next ghost (sharing v) across edge 1.
  link(g0, 0, g2);  // g0 shares x with g2
  link(g0, 1, g1);  // g0 shares y with g1
  link(g1, 0, g0);
  link(g1, 1, g2);
  link(g2, 0, g1);
  link(g2, 1, g0);
  vtri_[x] = t0;
  vtri_[y] = t0;
  vtri_[z] = t0;

  for (const VertexId v : rest) {
    const Located loc = locate(vpos_[v], x);
    VORONET_EXPECT(loc.duplicate == kNoVertex,
                   "duplicate point while bootstrapping");
    dig_cavity_and_fill(loc.tri, v);
  }
  // Every pre-existing vertex potentially changed neighbourhood.
  affected_.clear();
  for_each_vertex([this](VertexId v) { affected_.push_back(v); });
}

void DelaunayTriangulation::dig_cavity_and_fill(TriId seed, VertexId pv) {
  const Vec2 p = vpos_[pv];

  // --- Grow the cavity (connected triangles whose circumdisk contains p)
  // and record its directed boundary in the same pass: each directed edge
  // (t, i) is examined exactly once, and circumdisk membership is
  // path-independent, so a neighbour that fails the test here can never
  // join the cavity later.
  ++mark_epoch_;
  const std::uint32_t epoch = mark_epoch_;
  scratch_tris_.clear();
  std::vector<TriId>& cavity = scratch_tris_;
  scratch_stack_.clear();
  std::vector<TriId>& stack = scratch_stack_;
  std::vector<BoundaryEdge>& boundary = scratch_boundary_;
  boundary.clear();
  affected_.clear();
  stack.push_back(seed);
  tri_mark_[seed] = epoch;
  while (!stack.empty()) {
    const TriId t = stack.back();
    stack.pop_back();
    cavity.push_back(t);
    const Triangle& tr = tris_[t];
    if (track_affected_) {
      for (int i = 0; i < 3; ++i) {
        if (tr.v[i] != kGhostVertex) affected_.push_back(tr.v[i]);
      }
    }
    for (int i = 0; i < 3; ++i) {
      const TriId nb = tr.nbr[i];
      VORONET_DCHECK(nb != kNoTriangle);
      if (tri_mark_[nb] == epoch) continue;
      if (in_circumdisk(nb, p)) {
        tri_mark_[nb] = epoch;
        stack.push_back(nb);
      } else {
        boundary.push_back({tr.v[(i + 1) % 3], tr.v[(i + 2) % 3], nb});
      }
    }
  }
  std::sort(affected_.begin(), affected_.end());
  affected_.erase(std::unique(affected_.begin(), affected_.end()),
                  affected_.end());

  for (const TriId t : cavity) free_triangle(t);

  // --- Fill: one new triangle per boundary edge, all sharing pv.  Every
  // open edge is incident to pv, so the other endpoint identifies it; the
  // boundary cycle is small (expected O(1)), making a linear scan far
  // cheaper than a hash map.
  auto& open_edges = scratch_open_;
  open_edges.clear();
  const auto stitch_pv_edge = [&](VertexId other, TriId nt, int eidx) {
    for (std::size_t k = 0; k < open_edges.size(); ++k) {
      if (open_edges[k].first != other) continue;
      link(nt, eidx, open_edges[k].second.first);
      link(open_edges[k].second.first, open_edges[k].second.second, nt);
      open_edges[k] = open_edges.back();
      open_edges.pop_back();
      return;
    }
    open_edges.emplace_back(other, std::make_pair(nt, eidx));
  };
  for (const BoundaryEdge& be : boundary) {
    // The layout of each new triangle is fixed by construction, so every
    // edge index inside it is a constant -- no edge_index() search needed
    // except in the pre-existing outside triangle.
    TriId nt;
    int inner;   // edge (be.a, be.b) in nt
    int epv_a;   // edge (pv, be.a) in nt
    int epv_b;   // edge (pv, be.b) in nt
    if (be.a == kGhostVertex) {
      nt = new_triangle(be.b, pv, kGhostVertex);  // new hull edge pv->b
      inner = 1;
      epv_a = 0;
      epv_b = 2;
    } else if (be.b == kGhostVertex) {
      nt = new_triangle(pv, be.a, kGhostVertex);  // new hull edge a->pv
      inner = 0;
      epv_a = 2;
      epv_b = 1;
    } else {
      // Star-shapedness of the cavity boundary is a theorem under exact
      // predicates (the cavity is the set of triangles whose circumdisk
      // contains p); debug builds still verify it, and validate() audits
      // the full structure in the test suite.
      VORONET_DCHECK(orient2d(vpos_[be.a], vpos_[be.b], p) > 0);
      nt = new_triangle(be.a, be.b, pv);
      inner = 2;
      epv_a = 1;
      epv_b = 0;
    }
    // Link across the boundary edge to the surviving outside triangle.
    const int outer = edge_index(be.outside, be.a, be.b);
    link(nt, inner, be.outside);
    link(be.outside, outer, nt);
    if (be.a != kGhostVertex) vtri_[be.a] = nt;
    if (be.b != kGhostVertex) vtri_[be.b] = nt;
    // The two edges incident to pv pair up with sibling new triangles.
    stitch_pv_edge(be.a, nt, epv_a);
    stitch_pv_edge(be.b, nt, epv_b);
    vtri_[pv] = nt;
  }
  VORONET_EXPECT(open_edges.empty(), "cavity boundary is not a closed cycle");
}

// ---------------------------------------------------------------------------
// Removal
// ---------------------------------------------------------------------------

void DelaunayTriangulation::remove(VertexId v) {
  VORONET_EXPECT(is_live(v), "remove() of a dead vertex");
  affected_.clear();

  if (!has_triangles()) {
    const auto it = std::find(pending_order_.begin(), pending_order_.end(), v);
    VORONET_DCHECK(it != pending_order_.end());
    const std::size_t idx = static_cast<std::size_t>(it - pending_order_.begin());
    if (idx > 0) affected_.push_back(pending_order_[idx - 1]);
    if (idx + 1 < pending_order_.size()) {
      affected_.push_back(pending_order_[idx + 1]);
    }
    pending_order_.erase(it);
    free_vertex(v);
    return;
  }

  if (live_vertices_ <= 3) {
    free_vertex(v);
    collapse_to_pending();
    affected_.clear();
    for_each_vertex([this](VertexId u) { affected_.push_back(u); });
    return;
  }

  remove_triangulated(v);

  if (real_triangles_ == 0) {
    // The remaining points are collinear: fall back to pending mode.
    collapse_to_pending();
    affected_.clear();
    for_each_vertex([this](VertexId u) { affected_.push_back(u); });
  }
}

void DelaunayTriangulation::collapse_to_pending() {
  tris_.clear();
  tlive_.clear();
  tfree_.clear();
  tri_mark_.clear();
  real_triangles_ = 0;
  mark_epoch_ = 0;
  last_tri_.store(kNoTriangle, std::memory_order_relaxed);
  for (VertexId u = 0; u < static_cast<VertexId>(vpos_.size()); ++u) {
    if (vlive_[u]) vtri_[u] = kNoTriangle;
  }
  rebuild_pending_order();
}

void DelaunayTriangulation::rebuild_pending_order() {
  pending_order_.clear();
  for_each_vertex([this](VertexId u) { pending_order_.push_back(u); });
  std::sort(pending_order_.begin(), pending_order_.end(),
            [this](VertexId a, VertexId b) { return vpos_[a] < vpos_[b]; });
}

void DelaunayTriangulation::remove_triangulated(VertexId v) {
  // --- Star and link cycle (CCW around v; g appears at most once).
  std::vector<TriId> star_tris;
  star(v, star_tris);
  const std::size_t m = star_tris.size();
  VORONET_EXPECT(m >= 3, "triangulated vertex with degree < 3");

  std::vector<VertexId> link_cycle(m);
  std::vector<TriId> outside(m);
  for (std::size_t i = 0; i < m; ++i) {
    const TriId t = star_tris[i];
    const int j = vertex_index(t, v);
    link_cycle[i] = tris_[t].v[(j + 1) % 3];
    outside[i] = tris_[t].nbr[j];
  }
  // link edge i is (link_cycle[i], link_cycle[(i+1) % m]) with `outside[i]`
  // across it.

  for (const VertexId u : link_cycle) {
    if (u != kGhostVertex) affected_.push_back(u);
  }

  // --- Rotate so a ghost (if any) sits at position 0.
  const auto git = std::find(link_cycle.begin(), link_cycle.end(), kGhostVertex);
  const bool hull_vertex = git != link_cycle.end();
  if (hull_vertex) {
    const std::size_t shift = static_cast<std::size_t>(git - link_cycle.begin());
    std::rotate(link_cycle.begin(), link_cycle.begin() + shift,
                link_cycle.end());
    std::rotate(outside.begin(), outside.begin() + shift, outside.end());
  }
  const std::size_t chain_begin = hull_vertex ? 1 : 0;
  const std::size_t chain_len = m - chain_begin;
  VORONET_EXPECT(chain_len >= 2, "hull vertex with fewer than 2 real links");

  // --- Free the star; v disappears.
  for (const TriId t : star_tris) free_triangle(t);
  free_vertex(v);

  // --- Scratch Delaunay triangulation of the link vertices.
  DelaunayTriangulation mini;
  std::vector<VertexId> chain_global(chain_len);
  for (std::size_t i = 0; i < chain_len; ++i) {
    chain_global[i] = link_cycle[chain_begin + i];
    const auto out = mini.insert(vpos_[chain_global[i]]);
    VORONET_EXPECT(out.created && out.vertex == static_cast<VertexId>(i),
                   "scratch triangulation ids out of order");
  }

  // --- Flood-fill the mini triangles that cover the star polygon.
  //
  // Chain edges (mini ids i -> i+1, cyclic when v was interior) are edges
  // of the mini triangulation; the hole lies to their left.  The fill is
  // every real mini triangle reachable from a hole-side chain-adjacent
  // triangle without crossing a chain edge (Devillers).
  std::unordered_map<std::uint64_t, char> chain_edges;
  const std::size_t n_chain_edges = hull_vertex ? chain_len - 1 : chain_len;
  for (std::size_t i = 0; i < n_chain_edges; ++i) {
    chain_edges.emplace(
        edge_key(static_cast<VertexId>(i),
                 static_cast<VertexId>((i + 1) % chain_len)),
        1);
  }

  std::unordered_map<std::uint64_t, TriId> mini_directed;  // CCW edge -> tri
  const auto directed_key = [](VertexId a, VertexId b) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a + 2))
            << 32) |
           static_cast<std::uint32_t>(b + 2);
  };
  for (TriId t = 0; t < static_cast<TriId>(mini.tris_.size()); ++t) {
    if (!mini.tlive_[t] || mini.is_ghost(t)) continue;
    const Triangle& tr = mini.tris_[t];
    for (int i = 0; i < 3; ++i) {
      mini_directed[directed_key(tr.v[i], tr.v[(i + 1) % 3])] = t;
    }
  }

  std::vector<char> in_fill(mini.tris_.size(), 0);
  std::vector<TriId> fill;
  std::vector<TriId> stack;
  for (std::size_t i = 0; i < n_chain_edges; ++i) {
    const auto it = mini_directed.find(
        directed_key(static_cast<VertexId>(i),
                     static_cast<VertexId>((i + 1) % chain_len)));
    if (it == mini_directed.end()) continue;  // hole side is a new hull edge
    if (in_fill[it->second]) continue;
    in_fill[it->second] = 1;
    stack.push_back(it->second);
    while (!stack.empty()) {
      const TriId t = stack.back();
      stack.pop_back();
      fill.push_back(t);
      const Triangle& tr = mini.tris_[t];
      for (int e = 0; e < 3; ++e) {
        const VertexId ea = tr.v[(e + 1) % 3];
        const VertexId eb = tr.v[(e + 2) % 3];
        if (chain_edges.count(edge_key(ea, eb))) continue;
        const TriId nb = tr.nbr[e];
        if (mini.is_ghost(nb)) continue;  // mini hull: new global hull edge
        if (!in_fill[nb]) {
          in_fill[nb] = 1;
          stack.push_back(nb);
        }
      }
    }
  }

  // --- Materialise the fill in the main structure.
  std::vector<TriId> new_tris;
  new_tris.reserve(fill.size() + chain_len);
  const auto to_global = [&](VertexId mini_id) {
    return mini_id == kGhostVertex ? kGhostVertex : chain_global[mini_id];
  };
  for (const TriId t : fill) {
    const Triangle& tr = mini.tris_[t];
    new_tris.push_back(new_triangle(to_global(tr.v[0]), to_global(tr.v[1]),
                                    to_global(tr.v[2])));
  }
  // New ghosts: (a) fill-boundary edges that face the mini hull, and
  // (b) chain edges with no real triangle on the hole side.
  for (std::size_t k = 0; k < fill.size(); ++k) {
    const Triangle& tr = mini.tris_[fill[k]];
    for (int e = 0; e < 3; ++e) {
      const VertexId ea = tr.v[(e + 1) % 3];
      const VertexId eb = tr.v[(e + 2) % 3];
      if (chain_edges.count(edge_key(ea, eb))) continue;
      const TriId nb = tr.nbr[e];
      if (mini.is_ghost(nb) || !in_fill[nb]) {
        VORONET_EXPECT(mini.is_ghost(nb) && hull_vertex,
                       "hole fill leaked across a non-chain edge");
        // CCW edge (ea -> eb) of a fill triangle becomes hull edge ea->eb.
        new_tris.push_back(new_triangle(to_global(eb), to_global(ea),
                                        kGhostVertex));
      }
    }
  }
  for (std::size_t i = 0; i < n_chain_edges; ++i) {
    const auto it = mini_directed.find(
        directed_key(static_cast<VertexId>(i),
                     static_cast<VertexId>((i + 1) % chain_len)));
    if (it != mini_directed.end()) continue;
    VORONET_EXPECT(hull_vertex, "interior hole with an unfilled chain edge");
    // Chain edge (i -> i+1) has the hole on its left but no real triangle:
    // it becomes hull edge (i+1 -> i); ghost (i, i+1, g).
    new_tris.push_back(new_triangle(chain_global[i], chain_global[i + 1],
                                    kGhostVertex));
  }

  // --- Stitch: pair edges among new triangles, then attach the recorded
  // outside triangles along the original link-cycle edges.
  std::unordered_map<std::uint64_t, std::pair<TriId, int>> open_edges;
  for (const TriId t : new_tris) {
    const Triangle& tr = tris_[t];
    for (int e = 0; e < 3; ++e) {
      const VertexId ea = tr.v[(e + 1) % 3];
      const VertexId eb = tr.v[(e + 2) % 3];
      const std::uint64_t key = edge_key(ea, eb);
      const auto it = open_edges.find(key);
      if (it == open_edges.end()) {
        open_edges.emplace(key, std::make_pair(t, e));
      } else {
        link(t, e, it->second.first);
        link(it->second.first, it->second.second, t);
        open_edges.erase(it);
      }
    }
    for (int i = 0; i < 3; ++i) {
      if (tr.v[i] != kGhostVertex) vtri_[tr.v[i]] = t;
    }
  }
  for (std::size_t i = 0; i < m; ++i) {
    const VertexId a = link_cycle[i];
    const VertexId b = link_cycle[(i + 1) % m];
    const auto it = open_edges.find(edge_key(a, b));
    VORONET_EXPECT(it != open_edges.end(),
                   "link edge not covered by the hole fill");
    const TriId inner = it->second.first;
    const int inner_edge = it->second.second;
    const TriId outer = outside[i];
    link(inner, inner_edge, outer);
    link(outer, edge_index(outer, a, b), inner);
    open_edges.erase(it);
  }
  VORONET_EXPECT(open_edges.empty(), "hole fill has unmatched edges");

  std::sort(affected_.begin(), affected_.end());
  affected_.erase(std::unique(affected_.begin(), affected_.end()),
                  affected_.end());
}

// ---------------------------------------------------------------------------
// Nearest vertex
// ---------------------------------------------------------------------------

DelaunayTriangulation::VertexId DelaunayTriangulation::nearest(
    Vec2 p, VertexId hint) const {
  VORONET_EXPECT(live_vertices_ > 0, "nearest() on an empty triangulation");
  if (!has_triangles()) {
    VertexId best = pending_order_.front();
    double best_d = dist2(vpos_[best], p);
    for (const VertexId u : pending_order_) {
      const double d = dist2(vpos_[u], p);
      if (d < best_d || (d == best_d && u < best)) {
        best = u;
        best_d = d;
      }
    }
    return best;
  }

  const Located loc = locate(p, hint);
  if (loc.duplicate != kNoVertex) return loc.duplicate;
  VertexId cur = kNoVertex;
  double cur_d = 0.0;
  for (int i = 0; i < 3; ++i) {
    const VertexId u = tris_[loc.tri].v[i];
    if (u == kGhostVertex) continue;
    const double d = dist2(vpos_[u], p);
    if (cur == kNoVertex || d < cur_d || (d == cur_d && u < cur)) {
      cur = u;
      cur_d = d;
    }
  }
  // Greedy descent over the Delaunay graph converges to the vertex whose
  // Voronoi region contains p.  The star is walked in place -- no
  // neighbour list is materialised.  Ties move towards the smaller id, so
  // the descent cannot cycle (distance never increases; on equal distance
  // the id strictly decreases) and the fixpoint is deterministic.
  while (true) {
    const TriId t0 = vtri_[cur];
    TriId t = t0;
    VertexId best = cur;
    double best_d = cur_d;
    do {
      const int j = vertex_index(t, cur);
      const VertexId a = tris_[t].v[(j + 1) % 3];
      if (a != kGhostVertex) {
        const double d = dist2(vpos_[a], p);
        if (d < best_d || (d == best_d && a < best)) {
          best = a;
          best_d = d;
        }
      }
      t = tris_[t].nbr[(j + 1) % 3];
    } while (t != t0);
    if (best == cur) break;
    cur = best;
    cur_d = best_d;
  }
  return cur;
}

std::vector<DelaunayTriangulation::VertexId>
DelaunayTriangulation::bulk_insert(std::span<const Vec2> points) {
  std::vector<VertexId> ids(points.size(), kNoVertex);
  const std::vector<std::uint32_t> order = morton_order(points);
  // Pre-size the arenas: n vertices produce ~2n real triangles plus hull
  // ghosts, and transiently dead cavity triangles on the free list.
  vpos_.reserve(vpos_.size() + points.size());
  vlive_.reserve(vlive_.size() + points.size());
  vtri_.reserve(vtri_.size() + points.size());
  const std::size_t tri_estimate = tris_.size() + 2 * points.size() + 64;
  tris_.reserve(tri_estimate);
  tlive_.reserve(tri_estimate);
  tri_mark_.reserve(tri_estimate);
  track_affected_ = false;
  VertexId hint = kNoVertex;
  try {
    for (const std::uint32_t idx : order) {
      const InsertOutcome out = insert(points[idx], hint);
      ids[idx] = out.vertex;
      hint = out.vertex;
    }
  } catch (...) {
    track_affected_ = true;
    throw;
  }
  track_affected_ = true;
  affected_.clear();
  return ids;
}

void DelaunayTriangulation::hull(std::vector<VertexId>& out) const {
  out.clear();
  if (!has_triangles()) {
    out = pending_order_;
    return;
  }
  // Find any ghost, then follow the ghost cycle: ghost (v, u, g) has the
  // next hull ghost (sharing v) across the edge opposite u, i.e. nbr[1].
  TriId ghost = kNoTriangle;
  for (TriId t = 0; t < static_cast<TriId>(tris_.size()); ++t) {
    if (tlive_[t] && is_ghost(t)) {
      ghost = t;
      break;
    }
  }
  VORONET_EXPECT(ghost != kNoTriangle, "triangulation without ghosts");
  const TriId first = ghost;
  do {
    // Ghost (v, u, g) covers hull edge u->v; emit u and step to the ghost
    // of the next CCW hull edge v->w (the neighbour sharing v, nbr[1]).
    out.push_back(tris_[ghost].v[1]);
    ghost = tris_[ghost].nbr[1];
    VORONET_EXPECT(is_ghost(ghost), "ghost cycle left the hull");
    VORONET_EXPECT(out.size() <= live_vertices_, "ghost cycle corrupt");
  } while (ghost != first);
}

void DelaunayTriangulation::k_nearest(Vec2 p, std::size_t k,
                                      std::vector<VertexId>& out,
                                      VertexId hint) const {
  out.clear();
  if (k == 0 || live_vertices_ == 0) return;

  // Best-first expansion seeded at the region owner.
  struct Candidate {
    double d2;
    VertexId v;
    bool operator>(const Candidate& o) const {
      return d2 > o.d2 || (d2 == o.d2 && v > o.v);
    }
  };
  std::priority_queue<Candidate, std::vector<Candidate>,
                      std::greater<Candidate>>
      frontier;
  // Visited marks: local set keyed by vertex id (k and the explored
  // neighbourhood are small; a hash set keeps this thread-safe).
  std::unordered_set<VertexId> seen;

  const VertexId seed = nearest(p, hint);
  frontier.push({dist2(vpos_[seed], p), seed});
  seen.insert(seed);
  thread_local std::vector<VertexId> nbrs;
  while (!frontier.empty() && out.size() < k) {
    const Candidate c = frontier.top();
    frontier.pop();
    out.push_back(c.v);
    nbrs.clear();
    append_neighbors(c.v, nbrs);
    for (const VertexId u : nbrs) {
      if (seen.insert(u).second) {
        frontier.push({dist2(vpos_[u], p), u});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

void DelaunayTriangulation::validate(bool check_delaunay) const {
  std::size_t live_count = 0;
  for (VertexId v = 0; v < static_cast<VertexId>(vpos_.size()); ++v) {
    if (vlive_[v]) ++live_count;
  }
  VORONET_EXPECT(live_count == live_vertices_, "live vertex count mismatch");

  if (!has_triangles()) {
    VORONET_EXPECT(pending_order_.size() == live_vertices_,
                   "pending order incomplete");
    for (std::size_t i = 1; i < pending_order_.size(); ++i) {
      VORONET_EXPECT(
          vpos_[pending_order_[i - 1]] < vpos_[pending_order_[i]],
          "pending order not sorted / duplicate positions");
      if (pending_order_.size() >= 3 && i >= 2) {
        VORONET_EXPECT(orient2d(vpos_[pending_order_[0]],
                                vpos_[pending_order_[1]],
                                vpos_[pending_order_[i]]) == 0,
                       "pending mode with non-collinear points");
      }
    }
    return;
  }

  VORONET_EXPECT(pending_order_.empty(),
                 "pending points while triangulated");
  std::size_t real_count = 0;
  std::size_t ghost_count = 0;
  std::size_t directed_edges = 0;
  for (TriId t = 0; t < static_cast<TriId>(tris_.size()); ++t) {
    if (!tlive_[t]) continue;
    const Triangle& tr = tris_[t];
    VORONET_EXPECT(tr.v[0] != tr.v[1] && tr.v[1] != tr.v[2] &&
                       tr.v[0] != tr.v[2],
                   "degenerate triangle vertices");
    for (int i = 0; i < 3; ++i) {
      VORONET_EXPECT(tr.v[i] == kGhostVertex || is_live(tr.v[i]),
                     "triangle references dead vertex");
      VORONET_EXPECT(i == 2 || tr.v[i] != kGhostVertex,
                     "ghost vertex not normalised to index 2");
      const TriId nb = tr.nbr[i];
      VORONET_EXPECT(triangle_live(nb), "triangle neighbour dead or missing");
      const VertexId ea = tr.v[(i + 1) % 3];
      const VertexId eb = tr.v[(i + 2) % 3];
      const int back = edge_index(nb, ea, eb);
      VORONET_EXPECT(tris_[nb].nbr[back] == t, "adjacency not symmetric");
      // Shared edge must be directed oppositely in the two triangles.
      VORONET_EXPECT(tris_[nb].v[(back + 1) % 3] == eb &&
                         tris_[nb].v[(back + 2) % 3] == ea,
                     "shared edge has same direction in both triangles");
      ++directed_edges;
    }
    if (is_ghost(t)) {
      ++ghost_count;
    } else {
      ++real_count;
      VORONET_EXPECT(
          orient2d(vpos_[tr.v[0]], vpos_[tr.v[1]], vpos_[tr.v[2]]) > 0,
          "real triangle not counter-clockwise");
    }
  }
  VORONET_EXPECT(real_count == real_triangles_, "real triangle count drift");

  // Euler characteristic on the sphere (ghost vertex included):
  // V+1 - E + F = 2.
  VORONET_EXPECT(directed_edges % 2 == 0, "odd directed edge count");
  const std::size_t edges = directed_edges / 2;
  VORONET_EXPECT(live_vertices_ + 1 - edges + (real_count + ghost_count) == 2,
                 "Euler characteristic violated");

  for (VertexId v = 0; v < static_cast<VertexId>(vpos_.size()); ++v) {
    if (!vlive_[v]) continue;
    VORONET_EXPECT(triangle_live(vtri_[v]), "vertex incident triangle dead");
    const Triangle& tr = tris_[vtri_[v]];
    VORONET_EXPECT(tr.v[0] == v || tr.v[1] == v || tr.v[2] == v,
                   "vertex incident triangle does not contain it");
  }

  if (check_delaunay) {
    for (TriId t = 0; t < static_cast<TriId>(tris_.size()); ++t) {
      if (!tlive_[t] || is_ghost(t)) continue;
      const Triangle& tr = tris_[t];
      for (int i = 0; i < 3; ++i) {
        const TriId nb = tr.nbr[i];
        if (is_ghost(nb)) continue;
        const int back = edge_index(nb, tr.v[(i + 1) % 3], tr.v[(i + 2) % 3]);
        const VertexId opp = tris_[nb].v[back];
        VORONET_EXPECT(
            incircle(vpos_[tr.v[0]], vpos_[tr.v[1]], vpos_[tr.v[2]],
                     vpos_[opp]) <= 0,
            "local Delaunay property violated");
      }
    }
    // Hull convexity: for every ghost (v, u, g), every live vertex must be
    // on or left of the hull edge u->v.
    for (TriId t = 0; t < static_cast<TriId>(tris_.size()); ++t) {
      if (!tlive_[t] || !is_ghost(t)) continue;
      const Vec2 hv = vpos_[tris_[t].v[0]];
      const Vec2 hu = vpos_[tris_[t].v[1]];
      for_each_vertex([&](VertexId w) {
        VORONET_EXPECT(orient2d(hu, hv, vpos_[w]) >= 0,
                       "vertex outside the stored convex hull");
      });
    }
  }
}

}  // namespace voronet::geo
