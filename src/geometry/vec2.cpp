#include "geometry/vec2.hpp"

#include <ostream>

namespace voronet {

std::ostream& operator<<(std::ostream& os, Vec2 v) {
  return os << '(' << v.x << ", " << v.y << ')';
}

}  // namespace voronet
