// Kleinberg's small-world grid (background model of the paper, section 2.1
// and Figure 1), used as the comparison baseline for VoroNet's routing.
//
// The model: an n x n lattice where every node is connected to its four
// lattice neighbours and to k long-range contacts, each drawn with
// probability proportional to d^(-s) in lattice (Manhattan) distance d.
// With s = 2 greedy routing finds paths of O(log^2 n) steps [Kleinberg
// 2000]; VoroNet generalises exactly this construction to arbitrary point
// sets via the Voronoi tessellation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace voronet::kleinberg {

struct GridConfig {
  std::size_t side = 32;        ///< lattice is side x side
  std::size_t long_links = 1;   ///< k long-range contacts per node
  double exponent = 2.0;        ///< s in P(v) ~ d(u,v)^-s
  std::uint64_t seed = 1;
};

class KleinbergGrid {
 public:
  using NodeId = std::uint32_t;

  explicit KleinbergGrid(const GridConfig& config);

  [[nodiscard]] std::size_t size() const { return side_ * side_; }
  [[nodiscard]] std::size_t side() const { return side_; }

  [[nodiscard]] NodeId node_at(std::size_t row, std::size_t col) const;
  [[nodiscard]] std::size_t row_of(NodeId v) const { return v / side_; }
  [[nodiscard]] std::size_t col_of(NodeId v) const { return v % side_; }

  /// Manhattan (lattice) distance.
  [[nodiscard]] std::size_t distance(NodeId a, NodeId b) const;

  /// The long-range contacts of v (k of them, possibly repeated).
  [[nodiscard]] const std::vector<NodeId>& long_contacts(NodeId v) const {
    return long_[v];
  }

  struct RouteResult {
    std::size_t hops = 0;
    bool arrived = false;
  };

  /// Greedy routing from s to t using lattice + long contacts; each step
  /// moves to the neighbour closest to t in lattice distance.  Always
  /// terminates (the lattice neighbours guarantee strict progress).
  [[nodiscard]] RouteResult route(NodeId s, NodeId t) const;

 private:
  [[nodiscard]] NodeId sample_long_contact(NodeId u, Rng& rng) const;

  std::size_t side_;
  double exponent_;
  std::vector<std::vector<NodeId>> long_;
};

}  // namespace voronet::kleinberg
