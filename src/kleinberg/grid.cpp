#include "kleinberg/grid.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace voronet::kleinberg {

KleinbergGrid::KleinbergGrid(const GridConfig& config)
    : side_(config.side), exponent_(config.exponent) {
  VORONET_EXPECT(side_ >= 2, "grid side must be at least 2");
  Rng rng(config.seed);
  long_.resize(size());
  for (NodeId u = 0; u < size(); ++u) {
    long_[u].reserve(config.long_links);
    for (std::size_t k = 0; k < config.long_links; ++k) {
      long_[u].push_back(sample_long_contact(u, rng));
    }
  }
}

KleinbergGrid::NodeId KleinbergGrid::node_at(std::size_t row,
                                             std::size_t col) const {
  VORONET_DCHECK(row < side_ && col < side_);
  return static_cast<NodeId>(row * side_ + col);
}

std::size_t KleinbergGrid::distance(NodeId a, NodeId b) const {
  const auto dr = static_cast<long long>(row_of(a)) -
                  static_cast<long long>(row_of(b));
  const auto dc = static_cast<long long>(col_of(a)) -
                  static_cast<long long>(col_of(b));
  return static_cast<std::size_t>((dr < 0 ? -dr : dr) +
                                  (dc < 0 ? -dc : dc));
}

KleinbergGrid::NodeId KleinbergGrid::sample_long_contact(NodeId u,
                                                         Rng& rng) const {
  // Sample a ring radius r with P(r) ~ (#lattice points at L1 distance r)
  // * r^-s = 4r * r^-s, then a uniform point on the ring, rejecting
  // positions outside the lattice.  This is the standard simulation of
  // Kleinberg's distribution conditioned on the finite grid.
  const std::size_t max_r = 2 * (side_ - 1);
  // Ring weights are cheap; build the CDF once per grid via static cache
  // keyed on (side, exponent) would be premature -- the constructor builds
  // them n^2 * k times otherwise, so precompute lazily here instead.
  thread_local std::vector<double> cdf;
  thread_local std::size_t cdf_side = 0;
  thread_local double cdf_exp = 0.0;
  if (cdf_side != side_ || cdf_exp != exponent_) {
    cdf.assign(max_r + 1, 0.0);
    double acc = 0.0;
    for (std::size_t r = 1; r <= max_r; ++r) {
      acc += 4.0 * static_cast<double>(r) *
             std::pow(static_cast<double>(r), -exponent_);
      cdf[r] = acc;
    }
    for (std::size_t r = 1; r <= max_r; ++r) cdf[r] /= acc;
    cdf_side = side_;
    cdf_exp = exponent_;
  }

  const auto ur = static_cast<long long>(row_of(u));
  const auto uc = static_cast<long long>(col_of(u));
  while (true) {
    // Inverse-CDF sample of the radius.
    const double x = rng.uniform();
    std::size_t lo = 1;
    std::size_t hi = max_r;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf[mid] < x) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    const auto r = static_cast<long long>(lo);
    // Uniform point on the L1 ring of radius r: 4r positions.
    const auto idx = static_cast<long long>(rng.below(4 * lo));
    long long dr;
    long long dc;
    const long long leg = idx % r;
    switch (idx / r) {
      case 0:
        dr = -r + leg;
        dc = leg;
        break;  // north -> east
      case 1:
        dr = leg;
        dc = r - leg;
        break;  // east -> south
      case 2:
        dr = r - leg;
        dc = -leg;
        break;  // south -> west
      default:
        dr = -leg;
        dc = -r + leg;
        break;  // west -> north
    }
    const long long vr = ur + dr;
    const long long vc = uc + dc;
    if (vr < 0 || vc < 0 || vr >= static_cast<long long>(side_) ||
        vc >= static_cast<long long>(side_)) {
      continue;  // fell off the lattice; resample
    }
    const NodeId v = node_at(static_cast<std::size_t>(vr),
                             static_cast<std::size_t>(vc));
    if (v != u) return v;
  }
}

KleinbergGrid::RouteResult KleinbergGrid::route(NodeId s, NodeId t) const {
  RouteResult res;
  NodeId cur = s;
  while (cur != t) {
    const std::size_t cur_d = distance(cur, t);
    NodeId best = cur;
    std::size_t best_d = cur_d;

    const auto consider = [&](NodeId v) {
      const std::size_t d = distance(v, t);
      if (d < best_d || (d == best_d && v < best)) {
        best = v;
        best_d = d;
      }
    };
    const std::size_t r = row_of(cur);
    const std::size_t c = col_of(cur);
    if (r > 0) consider(node_at(r - 1, c));
    if (r + 1 < side_) consider(node_at(r + 1, c));
    if (c > 0) consider(node_at(r, c - 1));
    if (c + 1 < side_) consider(node_at(r, c + 1));
    for (const NodeId v : long_[cur]) consider(v);

    VORONET_EXPECT(best_d < cur_d, "greedy lattice step made no progress");
    cur = best;
    ++res.hops;
  }
  res.arrived = true;
  return res;
}

}  // namespace voronet::kleinberg
