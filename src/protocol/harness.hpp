// Differential protocol harness: message-level execution against the
// sequential ground truth.
//
// The harness runs every workload operation twice, in lock-step:
//   * the *computation* runs on the shared Overlay (DESIGN.md,
//     Substitution 1: the tessellation is the one true geometry);
//   * the *dissemination* runs as real messages: the resulting view
//     deltas travel to each affected ProtocolNode through the Network,
//     subject to latency, loss, partitions and crash-stop failures.
//
// Joins additionally route at the message level: the join request hops
// greedily from node to node using only each node's LOCAL view, so
// concurrent joins observe exactly the staleness a deployment would.
//
// verify_views() compares every node's local view against the overlay's
// authoritative one.  At quiescence with no partition this must match
// bit-for-bit -- the property DESIGN.md's Substitution 1 *assumes* and
// tests/protocol_test.cpp now proves per run.
//
// Storage (DESIGN.md, "Memory layout & arenas"): per-node protocol
// state lives in a dense slot table indexed by NodeId (the overlay's
// vertex ids are dense and recycled, so the id IS the slot index), with
// a generation counter per slot so tests can pin that a recycled id
// inherits nothing.  All view content -- node views and the sent-state
// dissemination cache -- is spans into one shared ViewArena.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"
#include "protocol/flat_map.hpp"
#include "protocol/node.hpp"
#include "protocol/transport.hpp"
#include "protocol/view_arena.hpp"
#include "sim/event_queue.hpp"
#include "voronet/overlay.hpp"

namespace voronet::protocol {

struct HarnessConfig {
  OverlayConfig overlay;
  NetworkConfig network;
  /// Which Transport backend carries the wire traffic.  kSim is the
  /// deterministic event-queue simulation (replayable; the default);
  /// kThread is the in-process actor-thread backend with wall-clock
  /// timers (the serving layer's backend -- NOT deterministic).
  TransportKind transport = TransportKind::kSim;
  /// Actor threads for the thread backend (0 = derive from the host);
  /// ignored by the sim backend.
  unsigned transport_shards = 0;
  /// Listen address spec for the socket backend ("uds:/path" /
  /// "tcp:host:port"; empty picks a fresh Unix-domain path).  Ignored by
  /// the sim and thread backends.
  std::string transport_listen;
  /// Delay between a crash and the survivors' repair dissemination (the
  /// failure-detection latency of the paper's fault model).
  double failure_detect_delay = 1.0;
  /// Backstop failure detector for query floods: a per-query timer that
  /// periodically checks the flood for participants that died without
  /// leaving a transport-observable trace and re-issues the query when it
  /// finds one.  0 derives a period from the transport RTO, the latency
  /// model's high quantile and failure_detect_delay.
  double query_deadline = 0.0;
  /// Seed for harness-level choices (gateway sampling).
  std::uint64_t seed = 0x907aULL;
};

class ProtocolHarness {
 public:
  explicit ProtocolHarness(const HarnessConfig& config);

  ProtocolHarness(const ProtocolHarness&) = delete;
  ProtocolHarness& operator=(const ProtocolHarness&) = delete;

  // --- Workload injection (all asynchronous: they schedule events) --------

  /// Join an object at p, entering through a uniformly random live node.
  void join(Vec2 p) { join_after(0.0, p); }
  void join_after(double delay, Vec2 p);

  /// Voluntary departure (runs the leave protocol).
  void leave(NodeId x) { leave_after(0.0, x); }
  void leave_after(double delay, NodeId x);

  /// Crash-stop failure: the node vanishes without protocol; survivors
  /// repair and re-disseminate after failure_detect_delay.
  void crash(NodeId x);

  // --- Region queries (message level) -------------------------------------
  //
  // The queries of src/voronet/queries.hpp executed as real messages: a
  // kQuery chain greedy-routes the spec to the flood root using only each
  // hop's LOCAL view, the root floods kQueryForward cell-to-cell across
  // the qualifying Voronoi adjacencies, every forward draws exactly one
  // kQueryResult reply (the aggregation echo of a finished subtree, or
  // the rejection of a duplicate arrival), and the root ships the final
  // aggregate to the issuer.  The geometric region tests run against the
  // ground-truth tessellation (DESIGN.md Substitution 1 -- the stand-in
  // for each cell knowing its own clipped geometry), but which
  // adjacencies exist, and therefore which cells get served, is read from
  // the per-node local views: a stale view loses or misdirects real
  // coverage, which the differential QueryHarness measures as recall.
  // Counting model: identical to queries.hpp (route_hops /
  // forward_messages / result_messages).  Result SETS are asserted equal
  // at quiescence across arbitrary latency and loss; the logical COUNTS
  // are deterministic only without retransmission (fixed latency, zero
  // loss) -- a retransmission that slips the transport dedup draws one
  // extra rejection reply -- and without re-issued epochs (below), which
  // multiply the flood cost (see the epoch extension in queries.hpp).
  //
  // Crash-stop failures mid-flood ARE survived, in two layers:
  //
  //  * Per-branch failover.  A branch whose addressee is unreachable
  //    (crashed before serving, or the transport's retry cap fired) is
  //    closed by the transport's abandonment hook with an explicit
  //    kQueryAbort reply, so the parent's subtree still terminates; the
  //    abort echo carries the cells the subtree DID cover and propagates
  //    its mark to the flood root.  A node that crashes while HOLDING
  //    pending subtree state cannot echo; its death is observed through
  //    the abandoned echoes / forwards of its own children (a crash-stop
  //    endpoint abandons reliable transfers on both sides) and, as a
  //    backstop, by the per-query echo-deadline timer that sweeps the
  //    flood for dead participants every `query_deadline`.
  //
  //  * Query epochs.  Any observation of a repair racing the flood --
  //    a served view entry that is provably dead, an aborted branch, a
  //    dead cell in the final aggregate, a crashed flood-state holder or
  //    root -- taints the epoch, and the issuer transparently re-issues
  //    the query with an incremented epoch once the failure-detection
  //    delay has passed.  Handlers discard messages from superseded
  //    epochs (per-epoch dedup), so a stale echo cannot corrupt the
  //    fresh aggregate.  The final epoch runs over repaired views and
  //    therefore matches the post-repair ground truth exactly; an epoch
  //    that observed nothing ran entirely on one side of the repair and
  //    is exact for the topology at its completion instant.  An issuer
  //    that crashes mid-query is modelled as the out-of-band client
  //    reconnecting elsewhere: the flood root completes the record
  //    directly (QueryRecord::issuer_lost).

  /// Progress / outcome of one message-level query (see issue_*_query).
  struct QueryRecord {
    QuerySpec spec;
    double issued = 0.0;     ///< simulated issue instant (first epoch)
    double completed = 0.0;  ///< final-aggregate arrival (valid when done)
    bool done = false;
    std::size_t route_hops = 0;       ///< kQuery greedy forwards (last epoch)
    std::uint64_t forward_sends = 0;  ///< logical kQueryForward sends (all)
    std::uint64_t result_sends = 0;   ///< kQueryResult + kQueryAbort sends
    std::vector<ViewEntry> owners;    ///< served cells, sorted by id
    std::vector<NodeId> matches;      ///< sites passing the predicate, sorted
    std::uint32_t epoch = 0;           ///< flood epochs used (1 = no failover)
    std::uint32_t branch_failovers = 0;///< branches closed by kQueryAbort
    bool issuer_lost = false;          ///< issuer crashed; completed at root

    /// Completion latency, measured from the FIRST issue: failover and
    /// re-issued epochs are part of the latency a client observes.
    [[nodiscard]] double latency() const { return completed - issued; }
    [[nodiscard]] std::uint64_t total_messages() const {
      return route_hops + forward_sends + result_sends;
    }
  };

  /// Issue a range / radius query from `from` (scheduled `delay` from
  /// now); returns the query id to pass to query_record().
  std::uint64_t issue_range_query(NodeId from, Vec2 a, Vec2 b, double tol,
                                  double delay = 0.0);
  std::uint64_t issue_radius_query(NodeId from, Vec2 center, double radius,
                                   double delay = 0.0);

  [[nodiscard]] const QueryRecord& query_record(std::uint64_t id) const {
    return query_records_.at(id);
  }
  /// Invoked (on the driving thread) the moment a query's record
  /// completes -- the serving layer's batching front-end keys off this.
  /// The record reference obtained via query_record(id) inside the
  /// handler is invalidated by issuing further queries: copy first.
  using QueryCompletionHandler = std::function<void(std::uint64_t)>;
  void set_query_completion_handler(QueryCompletionHandler handler) {
    on_query_complete_ = std::move(handler);
  }
  /// Queries issued but not yet completed at the issuer.
  [[nodiscard]] std::size_t pending_queries() const {
    return pending_queries_;
  }
  /// Forget completed query records (bulk sweeps would otherwise hold
  /// every result set in memory).
  void drop_completed_queries();

  // --- Execution ----------------------------------------------------------

  sim::EventQueue::RunResult run_to_idle(
      std::size_t max_events = sim::EventQueue::kDefaultEventBudget) {
    return net_->run_to_idle(max_events);
  }
  sim::EventQueue::RunResult run_until(double horizon) {
    return net_->run_until(horizon);
  }

  // --- Differential verification ------------------------------------------

  struct VerifyReport {
    std::size_t checked = 0;      ///< live nodes compared
    std::size_t stale = 0;        ///< nodes whose local view mismatches
    std::size_t missing = 0;      ///< ground-truth objects without a node
    std::size_t dangling = 0;     ///< dead long-link holders after repair
    std::vector<NodeId> stale_ids;  ///< first few offenders, for messages
    [[nodiscard]] bool converged() const {
      return stale == 0 && missing == 0 && dangling == 0;
    }
  };

  /// Compare every node's local vn / cn / lr (ids AND positions) against
  /// the overlay's authoritative view.  While a crash's failure-detection
  /// window is open (repair_in_flight()), dangling long-link holders are
  /// tolerated; once every repair has disseminated, a dangling holder is
  /// real divergence and is reported in `dangling`.
  [[nodiscard]] VerifyReport verify_views() const;

  /// Crash repairs whose failure-detection delay has not yet elapsed.
  [[nodiscard]] bool repair_in_flight() const { return repairs_pending_ > 0; }

  // --- Introspection ------------------------------------------------------

  /// The transport seam this harness drives (sim or thread backend).
  [[nodiscard]] Transport& network() { return *net_; }
  [[nodiscard]] const Transport& network() const { return *net_; }
  /// Sim-only escape hatch: the deterministic event queue behind
  /// SimTransport (scenario sampling grids, replay tests).  Fails the
  /// contract check on any other backend.
  [[nodiscard]] sim::EventQueue& queue();
  [[nodiscard]] Overlay& overlay() { return overlay_; }
  [[nodiscard]] const Overlay& overlay() const { return overlay_; }
  [[nodiscard]] std::size_t node_count() const { return live_nodes_; }
  [[nodiscard]] const std::vector<NodeId>& roster() const { return roster_; }
  [[nodiscard]] NodeId random_node(Rng& rng) const {
    return roster_[rng.index(roster_.size())];
  }
  [[nodiscard]] const ProtocolNode& node(NodeId id) const {
    VORONET_EXPECT(alive(id), "node(): id is not a live protocol node");
    return slots_[static_cast<std::size_t>(id)].node;
  }
  /// The shared view arena (resolve ProtocolNode view spans through it).
  [[nodiscard]] const ViewArena& view_arena() const { return arena_; }
  /// Occupancy generation of a node slot: bumped every time the id is
  /// (re-)registered, so tests can pin that a recycled slot is a fresh
  /// occupancy, not the predecessor's state.
  [[nodiscard]] std::uint32_t slot_generation(NodeId id) const {
    return id >= 0 && static_cast<std::size_t>(id) < slots_.size()
               ? slots_[static_cast<std::size_t>(id)].generation
               : 0;
  }
  /// Monotonic topology version: bumped on every node (de)registration.
  /// Positions are immutable per live object, so an unchanged version
  /// means an identical live (id, position) set -- the validity stamp of
  /// the serving layer's result cache (src/serve/query_server.hpp).
  [[nodiscard]] std::uint64_t topology_version() const {
    return topology_version_;
  }
  /// Joins scheduled but not yet sponsored (in-flight route chains).
  [[nodiscard]] std::size_t pending_joins() const { return pending_joins_; }
  /// Simulated time of the last view-advancing update -- the convergence
  /// instant of the most recent workload batch.
  [[nodiscard]] double last_apply_time() const { return last_apply_time_; }

  /// Bytes-per-node decomposition for bench_scale: where the memory of a
  /// million-object run actually sits.
  struct MemoryBreakdown {
    std::size_t view_bytes = 0;       ///< shared ViewArena (all spans)
    std::size_t slot_bytes = 0;       ///< node slot table + roster
    std::size_t transport_bytes = 0;  ///< Network-owned state
    std::size_t query_bytes = 0;      ///< flood/echo state + records
    [[nodiscard]] std::size_t total() const {
      return view_bytes + slot_bytes + transport_bytes + query_bytes;
    }
  };
  [[nodiscard]] MemoryBreakdown memory_breakdown() const;

  // --- Observability ------------------------------------------------------
  //
  // The harness owns one Tracer and one FlightRecorder (both off by
  // default -- zero cost beyond a branch per instrumentation site) and
  // installs them into the Network.  With the tracer enabled, every query
  // grows a causal span tree: a "query" root span at the issuer, one
  // "epoch" span per flood epoch, "route_hop" instants along the greedy
  // chain, a "serve" span per flood participant (parented to the serve
  // span that forwarded to it), "stale_entry" / "branch_abort" instants
  // explaining taints, and "reissue" instants when an epoch is
  // superseded; joins grow a "join" span with their route hops, and the
  // Network adds one "xfer:<kind>" span per reliable transfer.
  [[nodiscard]] obs::Tracer& tracer() { return tracer_; }
  [[nodiscard]] const obs::Tracer& tracer() const { return tracer_; }
  [[nodiscard]] obs::FlightRecorder& recorder() { return recorder_; }
  [[nodiscard]] const obs::FlightRecorder& recorder() const {
    return recorder_;
  }

 private:
  /// Per-query state the harness (not the record consumer) needs while
  /// the query is in flight; dropped at completion.
  struct QueryRuntime {
    /// The current epoch observed a repair racing it (a provably dead
    /// view entry at serve time, or an aborted branch): the result may
    /// straddle the repair, so completion re-issues instead.
    bool stale_observed = false;
    bool reissue_pending = false;  ///< a re-issue is already scheduled
    bool deadline_armed = false;   ///< echo-deadline sweep event pending
    bool issuer_known = false;     ///< issuer_pos below is meaningful
    Vec2 issuer_pos;  ///< guards against the issuer id being recycled
    obs::SpanId root_span = obs::kNoSpan;   ///< "query" span (tracing)
    obs::SpanId epoch_span = obs::kNoSpan;  ///< current "epoch" span
  };

  /// Last content disseminated per node component: suppresses the
  /// redundant updates the over-approximate touch tracking would produce
  /// (fictive-object churn restores views it transiently rewrites).
  /// !known = never sent, or the last transfer was abandoned by the
  /// transport -- the next touch ships unconditionally.  Content lives
  /// in the shared arena.
  struct SentState {
    ViewSpan vn, cn, lr;
    bool vn_known = false, cn_known = false, lr_known = false;
  };

  /// One entry of the dense node slot table, indexed by NodeId.
  struct NodeSlot {
    ProtocolNode node;
    SentState sent;
    std::uint32_t generation = 0;  ///< bumped per (re-)registration
    std::uint32_t roster_pos = 0;  ///< index into roster_ while live
    bool live = false;
    /// Previous holder departed: the next registration of this id must
    /// Network::revive() it (recycled-id hygiene); fresh ids skip the
    /// in-flight scan.
    bool dead_mark = false;
  };

  /// Per-node flood bookkeeping of one in-flight query (kept until the
  /// query completes so late duplicate forwards are rejected, not
  /// re-served).
  struct FloodEntry {
    NodeId node = kNoNode;  ///< the participant this entry belongs to
    NodeId parent = kNoNode;
    std::uint32_t pending = 0;        ///< forwards awaiting a reply
    bool aborted = false;             ///< a branch below failed over
    std::vector<ViewEntry> acc;       ///< this subtree's served cells
    std::vector<NodeId> replied;      ///< children already heard from
    obs::SpanId span = obs::kNoSpan;  ///< "serve" span while tracing
  };
  /// One query's flood state: flat entries plus a NodeId index.  The
  /// whole structure dies when the query completes or its epoch is
  /// superseded -- there is no per-node erase, which is what keeps the
  /// flat map tombstone-free.
  struct QueryFlood {
    FlatNodeMap<std::uint32_t> index;  ///< NodeId -> entries position
    std::vector<FloodEntry> entries;

    [[nodiscard]] FloodEntry* find(NodeId node) {
      const std::uint32_t* pos = index.find(node);
      return pos != nullptr ? &entries[*pos] : nullptr;
    }
    [[nodiscard]] const FloodEntry* find(NodeId node) const {
      const std::uint32_t* pos = index.find(node);
      return pos != nullptr ? &entries[*pos] : nullptr;
    }
    FloodEntry& emplace(NodeId node) {
      index.insert(node, static_cast<std::uint32_t>(entries.size()));
      FloodEntry& e = entries.emplace_back();
      e.node = node;
      return e;
    }
    [[nodiscard]] bool empty() const { return entries.empty(); }
  };

  [[nodiscard]] bool alive(NodeId x) const {
    return x >= 0 && static_cast<std::size_t>(x) < slots_.size() &&
           slots_[static_cast<std::size_t>(x)].live;
  }
  [[nodiscard]] NodeSlot& slot(NodeId x) {
    return slots_[static_cast<std::size_t>(x)];
  }
  [[nodiscard]] const NodeSlot& slot(NodeId x) const {
    return slots_[static_cast<std::size_t>(x)];
  }

  void start_join(Vec2 p);
  void handle_route(const Message& m);
  std::uint64_t issue_query(NodeId from, QuerySpec spec, double delay);
  void start_query(std::uint64_t query_id);
  /// (Re-)enter the route phase of the record's current epoch: inject a
  /// kQuery at the issuer, or at a random live gateway when the issuer
  /// is gone (the client's out-of-band bootstrap contact).
  void begin_epoch(std::uint64_t query_id);
  /// The current epoch is compromised (crashed subtree holder, aborted
  /// branch, repair observed): schedule a fresh epoch after the
  /// failure-detection delay.  Idempotent per epoch.
  void reissue_query(std::uint64_t query_id);
  /// Backstop failure detector: periodically sweep the flood for
  /// participants that died without a transport-observable trace.
  void arm_query_deadline(std::uint64_t query_id);
  void handle_query_route(const Message& m);
  void handle_query_forward(const Message& m);
  void handle_query_result(const Message& m);
  /// Is m a current-epoch message of a live query?  Superseded epochs'
  /// messages are discarded wholesale (their flood state is gone).
  [[nodiscard]] bool epoch_current(const Message& m) const;
  /// Does this (id, position) pair denote a live protocol node?
  [[nodiscard]] bool entry_live(const ViewEntry& e) const;
  [[nodiscard]] bool issuer_live(std::uint64_t query_id) const;
  /// Re-enter a query route chain through a fresh random gateway (the
  /// addressee departed or the transport abandoned the hop).
  void reroute_query(const Message& m);
  /// Per-branch failover for a kQueryForward whose addressee is gone
  /// (departed in flight, crashed, or beyond the retry cap): close the
  /// branch with an abort at the sender if it still holds flood state,
  /// or re-issue outright when the sender's subtree died with it.
  void fail_branch(const Message& m);
  /// Serve the query at `node`: record it, forward to every qualifying
  /// neighbouring cell except `parent`, echo when the subtree finishes.
  /// `parent_span` is the trace span of whatever caused the serve (the
  /// epoch span at the flood root, the forwarding sender's serve span
  /// otherwise); kNoSpan while tracing is off.
  void serve_query(std::uint64_t query_id, NodeId node, NodeId parent,
                   obs::SpanId parent_span);
  /// The subtree under `node` is complete: echo to the flood parent, or
  /// ship/complete the final aggregate when `node` is the root.
  void finish_query_node(std::uint64_t query_id, NodeId node);
  /// Apply one child reply at `node` (idempotent per child: transport
  /// dedup can rarely let a retransmission slip through).  `aborted`
  /// closes the branch AND taints the epoch (kQueryAbort, or the local
  /// failure detector standing in for a reply that cannot come).
  void apply_query_reply(std::uint64_t query_id, NodeId node, NodeId child,
                         const std::vector<ViewEntry>& subtree, bool aborted);
  /// Deliver the final aggregate to the client: completes the record,
  /// unless the epoch is tainted or the aggregate names dead cells -- a
  /// repair raced the flood -- in which case the query re-issues.
  void complete_query(std::uint64_t query_id, std::vector<ViewEntry> owners);
  /// Topology changed: memoised region verdicts are stale (a surviving
  /// cell's clipped geometry may have grown into the query region).
  void invalidate_region_caches() { query_region_cache_.clear(); }
  /// Ground-truth geometric test: does o's region meet the query region?
  [[nodiscard]] bool query_region_qualifies(const QuerySpec& spec,
                                            NodeId o) const;
  /// Re-enter a join route chain through a fresh random gateway (the
  /// addressee departed or the transport abandoned the hop).
  void reroute_join(const Message& m);
  /// Terminate join chain `join_id` at `sponsor`.  Exactly-once per
  /// chain: a rerouted chain can race its original (abandonment after a
  /// delivered-but-unacked hop), so completion is keyed by the id.
  void sponsor_join(NodeId sponsor, Vec2 p, std::uint64_t join_id);
  void execute_leave(NodeId x);
  void deliver(const Message& m);
  void on_abandon(const Message& m);

  /// Drain the overlay's touched-view sets and ship each changed
  /// component to its node as a versioned update from `src`.  `ensure`
  /// (when valid) is unioned in so a freshly joined node always receives
  /// its initial view.
  void disseminate(NodeId src, NodeId ensure = kNoNode);

  [[nodiscard]] std::vector<ViewEntry> authoritative_vn(NodeId o) const;
  [[nodiscard]] std::vector<ViewEntry> authoritative_cn(NodeId o) const;
  [[nodiscard]] std::vector<ViewEntry> authoritative_lr(NodeId o) const;

  void register_node(NodeId x);
  void deregister_node(NodeId x);

  HarnessConfig config_;
  Overlay overlay_;
  std::unique_ptr<Transport> net_;
  /// Dense node slot table, indexed by NodeId; all view content lives in
  /// arena_.
  std::vector<NodeSlot> slots_;
  std::size_t live_nodes_ = 0;
  ViewArena arena_;
  std::vector<NodeId> roster_;  ///< live node ids, dense (random sampling)
  std::unordered_map<std::uint64_t, QueryRecord> query_records_;
  std::unordered_map<std::uint64_t, QueryRuntime> query_runtime_;
  std::unordered_map<std::uint64_t, QueryFlood> query_flood_;
  /// Memoised region-test verdicts per in-flight query: a cell is probed
  /// once per neighbouring served cell, but its geometry only needs
  /// clipping once (mirrors the sequential flood's cache; dropped with
  /// the flood state at completion).
  std::unordered_map<std::uint64_t, FlatNodeMap<bool>> query_region_cache_;
  /// Reused buffer for authoritative-view extraction in disseminate()
  /// (one content build per ship, zero steady-state allocation).
  std::vector<ViewEntry> scratch_entries_;
  std::uint64_t query_seq_ = 0;
  std::size_t pending_queries_ = 0;
  std::size_t repairs_pending_ = 0;
  double query_deadline_ = 0.0;  ///< derived echo-deadline period
  std::uint64_t op_seq_ = 0;
  std::uint64_t join_seq_ = 0;
  std::uint64_t topology_version_ = 0;
  /// In-flight join chains, keyed by chain id; the value is the chain's
  /// "join" trace span (kNoSpan while tracing is off).
  std::unordered_map<std::uint64_t, obs::SpanId> active_joins_;
  QueryCompletionHandler on_query_complete_;
  std::size_t pending_joins_ = 0;
  double last_apply_time_ = 0.0;
  obs::Tracer tracer_;
  obs::FlightRecorder recorder_;
  Rng rng_;
};

}  // namespace voronet::protocol
