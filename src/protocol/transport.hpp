// The transport seam of the protocol engine.
//
// Everything above the wire -- ProtocolHarness, the query engine, the
// serving front-end, the obs hooks -- talks to this interface and never
// to a concrete backend.  Two implementations exist:
//
//   * SimTransport (sim_transport.hpp): the deterministic discrete-event
//     backend -- protocol::Network driven by sim::EventQueue.  Same
//     scenario + seed => bit-identical runs; every committed golden
//     replay pins that this seam did not move the sim semantics.
//   * ThreadTransport (thread_transport.hpp): in-process actor threads
//     with per-node MPSC mailboxes and real monotonic-clock timers.
//     Wall-clock time, genuinely concurrent, NOT deterministic.
//
// The contract both backends satisfy (tests/transport_conformance_test
// runs the suite against each, so a third backend -- sockets -- has a
// ready-made gate):
//
//   * reliable delivery: every non-ack send() reaches the sink exactly
//     once, or is handed to the abandon handler (crashed endpoint /
//     retry cap) -- never both, never neither (stall windows excepted:
//     a parked copy may deliver after an abandon once the node resumes);
//   * dedup: retransmission duplicates are suppressed by the live
//     transfer's delivered bit plus a bounded orphan window, so dedup
//     state is bounded by in_flight() + kOrphanDedupCapacity;
//   * retransmit backoff: attempt k waits min(rto*f^(k-1), cap) with
//     deterministic per-(transfer, attempt) jitter; max_retries bounds
//     the attempts of an abandoned transfer to max_retries + 1;
//   * crash/revive residue: revive(id) abandons every predecessor-era
//     transfer touching the id (through the abandon handler, with the
//     crashed mark still set) and drops its dedup, stall-backlog and
//     flight-recorder residue -- a recycled id inherits nothing.
//
// What is NOT universal: determinism (SimTransport only), and the
// degradation windows / link filters, which ThreadTransport honours on
// a best-effort wall-clock basis (a window "ends" when the driver says
// so, not at a virtual instant).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "protocol/latency.hpp"
#include "protocol/message.hpp"
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"

namespace voronet::obs {
class Tracer;
class FlightRecorder;
}  // namespace voronet::obs

namespace voronet::protocol {

struct NetworkConfig {
  LatencyModel latency = LatencyModel::fixed(0.0);
  /// Probability that any single transmission (data or ack) is lost.
  double drop_probability = 0.0;
  /// Base retransmission timeout; 0 derives one from the latency model
  /// (two high-quantile one-way delays plus slack).
  double retransmit_timeout = 0.0;
  /// Retransmission backoff: attempt k waits
  /// min(rto * backoff_factor^(k-1), rto_cap) plus deterministic jitter.
  /// A fixed timeout under correlated loss (a loss burst, a latency
  /// spike) synchronises every retransmitter into a storm; the capped
  /// exponential spreads them out while staying responsive to single
  /// losses.  1.0 restores the fixed-RTO behaviour.
  double backoff_factor = 2.0;
  /// Backoff ceiling; 0 derives 16x the base timeout.
  double rto_cap = 0.0;
  /// Deterministic jitter as a fraction of the armed timeout: the actual
  /// wait is scaled by a factor in [1 - jitter/2, 1 + jitter/2] hashed
  /// from (transfer id, attempt) -- no Rng stream is consumed, so the
  /// delivery randomness is unperturbed and replays stay bit-identical.
  double jitter = 0.25;
  /// Give up on a reliable transfer after this many retransmissions;
  /// 0 = keep retrying (transfers to crashed destinations are abandoned
  /// at the first timeout regardless).
  std::size_t max_retries = 0;
  std::uint64_t seed = 0x5eedULL;
};

/// Wire-level accounting, beyond the per-type counters in sim::Metrics.
struct NetworkStats {
  std::uint64_t sends = 0;          ///< logical send() calls
  std::uint64_t transmissions = 0;  ///< wire attempts incl. retransmits+acks
  std::uint64_t delivered = 0;      ///< messages handed to the sink
  std::uint64_t duplicates = 0;     ///< arrivals suppressed by dedup
  std::uint64_t dropped = 0;        ///< lost to loss, partition or crash
  std::uint64_t retransmits = 0;
  std::uint64_t abandoned = 0;      ///< reliable transfers given up
  std::uint64_t acks = 0;
  std::uint64_t injected_duplicates = 0;  ///< duplication-window copies
  std::uint64_t stalled_deferred = 0;     ///< arrivals parked at a stalled node
  /// Serialized bytes across all wire attempts (codec frame sizes, incl.
  /// the length prefix): the bytes the socket backend writes, and the
  /// bytes the sim/thread backends WOULD write -- all three bill through
  /// net::wire_frame_size so the number is backend-comparable.  Per-kind
  /// decomposition lives in sim::Metrics::wire_bytes().
  std::uint64_t wire_bytes = 0;
};

class Transport {
 public:
  /// Receives each delivered (non-ack, de-duplicated) message.  Always
  /// invoked on the driving thread (the one inside run_to_idle /
  /// run_until), on every backend -- the layer above stays single-
  /// threaded regardless of how the wire is implemented.
  using Sink = std::function<void(const Message&)>;
  /// Receives each reliable message the transport gave up on (crashed
  /// destination or retry cap), so the application layer can reroute or
  /// invalidate caches.  Driving-thread invocation, like Sink.
  using AbandonHandler = std::function<void(const Message&)>;
  /// Returns true when the src -> dst link is up (partition injection).
  using LinkFilter = std::function<bool(NodeId, NodeId)>;
  /// A deferred application-layer task (protocol timers: failure
  /// detection, query deadlines, scheduled workload events).
  using Task = std::function<void()>;
  using RunResult = sim::EventQueue::RunResult;

  /// Dedup-window capacity: arrivals whose transfer slot is already
  /// recycled (late duplicates past settle/abandon) are remembered in a
  /// FIFO window of this many (transfer, dst) pairs, so the dedup state
  /// is bounded by in_flight() + this constant instead of growing with
  /// node lifetime.
  static constexpr std::size_t kOrphanDedupCapacity = 512;

  virtual ~Transport() = default;

  virtual void set_sink(Sink sink) = 0;
  virtual void set_abandon_handler(AbandonHandler handler) = 0;

  /// A blank message whose payload vector comes from the retired-payload
  /// pool, with capacity for at least `reserve_entries` -- the reserve
  /// path that keeps batched front-end senders allocation-free.  Purely
  /// an allocation shortcut: send() accepts any Message.
  [[nodiscard]] virtual Message draft(std::size_t reserve_entries = 0) = 0;

  /// Send msg.src -> msg.dst.  Reliable (ack + retransmit) for every kind
  /// except kAck.  The transfer id is assigned here.
  virtual void send(Message msg) = 0;

  // --- Failure injection ---------------------------------------------------

  virtual void crash(NodeId node) = 0;
  /// Clear the crashed mark for a recycled id; abandons predecessor-era
  /// transfers and drops every other residue first (see contract above).
  virtual void revive(NodeId node) = 0;
  [[nodiscard]] virtual bool crashed(NodeId node) const = 0;

  virtual void stall(NodeId node) = 0;
  virtual void resume(NodeId node) = 0;
  virtual void resume_all() = 0;
  [[nodiscard]] virtual bool stalled(NodeId node) const = 0;

  virtual void begin_loss_burst(double extra_drop) = 0;
  virtual void end_loss_burst(double extra_drop) = 0;
  virtual void begin_latency_spike(double factor) = 0;
  virtual void end_latency_spike(double factor) = 0;
  virtual void begin_duplication(double probability) = 0;
  virtual void end_duplication(double probability) = 0;

  virtual void set_link_filter(LinkFilter up) = 0;
  virtual void clear_link_filter() = 0;

  // --- Clock & driving -----------------------------------------------------
  //
  // now() is the backend's native clock: virtual seconds (SimTransport)
  // or monotonic wall seconds since construction (ThreadTransport).
  // schedule() runs `fn` on the driving thread at now() + delay; the
  // protocol layer's own timers ride this one channel on every backend.

  [[nodiscard]] virtual double now() const = 0;
  virtual void schedule(double delay, Task fn) = 0;

  /// Drive until quiescent: no undelivered messages, no in-flight
  /// reliable transfers, no pending scheduled tasks (parked stall
  /// backlogs excepted).  Sim: drains the event queue.  Thread: pumps
  /// deliveries/timers and *waits* for the actor threads to go quiet --
  /// budget_exhausted reports a wall-clock patience cap, not an event
  /// count.
  virtual RunResult run_to_idle(
      std::size_t max_events = sim::EventQueue::kDefaultEventBudget) = 0;
  /// Drive until now() reaches `horizon` (absolute, native clock).
  virtual RunResult run_until(double horizon) = 0;

  // --- Accounting ----------------------------------------------------------

  /// Reliable transfers still awaiting acknowledgement.
  [[nodiscard]] virtual std::size_t in_flight() const = 0;
  /// Messages parked at stalled nodes (the sampler's backlog gauge).
  [[nodiscard]] virtual std::size_t stalled_backlog() const = 0;
  /// Dedup records currently held; bounded by in_flight() +
  /// kOrphanDedupCapacity by construction on every backend.
  [[nodiscard]] virtual std::size_t dedup_entries() const = 0;
  /// Orphan-window occupancy alone (late-duplicate records).
  [[nodiscard]] virtual std::size_t dedup_window_size() const = 0;
  /// Transport-owned bytes, for the bytes-per-node decomposition.
  [[nodiscard]] virtual std::size_t memory_bytes() const = 0;

  [[nodiscard]] virtual sim::Metrics& metrics() = 0;
  [[nodiscard]] virtual const sim::Metrics& metrics() const = 0;
  [[nodiscard]] virtual const NetworkStats& stats() const = 0;
  [[nodiscard]] virtual const NetworkConfig& config() const = 0;
  [[nodiscard]] virtual double retransmit_timeout() const = 0;

  // --- Observability -------------------------------------------------------

  virtual void set_tracer(obs::Tracer* tracer) = 0;
  virtual void set_recorder(obs::FlightRecorder* recorder) = 0;

  // --- Identity ------------------------------------------------------------

  /// True when same inputs => bit-identical runs (SimTransport).  The
  /// scenario replay/golden machinery requires this; the serving layer
  /// does not.
  [[nodiscard]] virtual bool deterministic() const = 0;
  [[nodiscard]] virtual const char* backend_name() const = 0;
};

/// Which Transport backend a harness should build.
enum class TransportKind : std::uint8_t {
  kSim,     ///< deterministic event-queue simulation (the default)
  kThread,  ///< in-process actor threads, wall-clock timers
  kSocket,  ///< real frames over kernel sockets (net/socket_transport.hpp)
};

}  // namespace voronet::protocol
