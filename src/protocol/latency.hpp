// Pluggable message-latency models for the protocol engine.
//
// The paper assumes an asynchronous network with arbitrary (finite)
// message delays; the latency model decides what "arbitrary" means per
// experiment: kFixed gives the deterministic baseline (and, at 0, the
// synchronous limit used by the differential quiescence test), kUniform
// bounded jitter, and kLognormal the heavy-tailed delays measured on real
// WANs -- the regime where reordering actually stresses the versioned
// view updates.
#pragma once

#include "common/rng.hpp"

namespace voronet::protocol {

struct LatencyModel {
  enum class Kind { kFixed, kUniform, kLognormal };

  Kind kind = Kind::kFixed;
  // kFixed: delay = a.            (a >= 0)
  // kUniform: delay ~ U[a, b].    (0 <= a <= b)
  // kLognormal: delay = a + exp(N(mu, sigma)) scaled so the median is b-a;
  //   `a` acts as a propagation floor, `sigma` controls the tail weight.
  double a = 0.0;
  double b = 0.0;
  double sigma = 0.5;

  [[nodiscard]] static LatencyModel fixed(double delay) {
    return {Kind::kFixed, delay, delay, 0.0};
  }
  [[nodiscard]] static LatencyModel uniform(double lo, double hi) {
    return {Kind::kUniform, lo, hi, 0.0};
  }
  [[nodiscard]] static LatencyModel lognormal(double floor, double median,
                                              double sigma) {
    return {Kind::kLognormal, floor, median, sigma};
  }

  /// Draw one delivery delay (always >= 0; >= a for every kind).
  [[nodiscard]] double sample(Rng& rng) const;

  /// An upper estimate of one-way delay used to derive retransmission
  /// timeouts: exact for kFixed/kUniform, the ~97.7th percentile (two
  /// sigma) for kLognormal.
  [[nodiscard]] double high_quantile() const;

  [[nodiscard]] const char* name() const;
};

}  // namespace voronet::protocol
