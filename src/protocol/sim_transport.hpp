// The deterministic Transport backend: protocol::Network driven by
// sim::EventQueue, behind the transport seam.
//
// This is pure composition -- every override is one forwarding line, so
// the sim semantics (event ordering, Rng streams, retransmit jitter) are
// byte-for-byte what they were before the seam existed.  The committed
// golden scenario replays pin that claim
// (tests/scale_test.cpp, CommittedScenariosReplayByteIdentical).
//
// The event queue is owned HERE: the harness's own protocol timers
// (failure detection, query deadlines, scheduled workload events) ride
// Transport::schedule(), which lands them in the same queue as the wire
// traffic -- one clock, one total order, full replayability.  Sim-only
// consumers (the scenario Runner's sampling grid, tests that need the
// raw queue) may reach through queue().
#pragma once

#include "protocol/network.hpp"
#include "protocol/transport.hpp"
#include "sim/event_queue.hpp"

namespace voronet::protocol {

class SimTransport final : public Transport {
 public:
  explicit SimTransport(const NetworkConfig& config) : net_(queue_, config) {}

  void set_sink(Sink sink) override { net_.set_sink(std::move(sink)); }
  void set_abandon_handler(AbandonHandler handler) override {
    net_.set_abandon_handler(std::move(handler));
  }

  [[nodiscard]] Message draft(std::size_t reserve_entries = 0) override {
    return net_.draft(reserve_entries);
  }
  void send(Message msg) override { net_.send(std::move(msg)); }

  void crash(NodeId node) override { net_.crash(node); }
  void revive(NodeId node) override { net_.revive(node); }
  [[nodiscard]] bool crashed(NodeId node) const override {
    return net_.crashed(node);
  }
  void stall(NodeId node) override { net_.stall(node); }
  void resume(NodeId node) override { net_.resume(node); }
  void resume_all() override { net_.resume_all(); }
  [[nodiscard]] bool stalled(NodeId node) const override {
    return net_.stalled(node);
  }

  void begin_loss_burst(double extra_drop) override {
    net_.begin_loss_burst(extra_drop);
  }
  void end_loss_burst(double extra_drop) override {
    net_.end_loss_burst(extra_drop);
  }
  void begin_latency_spike(double factor) override {
    net_.begin_latency_spike(factor);
  }
  void end_latency_spike(double factor) override {
    net_.end_latency_spike(factor);
  }
  void begin_duplication(double probability) override {
    net_.begin_duplication(probability);
  }
  void end_duplication(double probability) override {
    net_.end_duplication(probability);
  }

  void set_link_filter(LinkFilter up) override {
    net_.set_link_filter(std::move(up));
  }
  void clear_link_filter() override { net_.clear_link_filter(); }

  [[nodiscard]] double now() const override { return queue_.now(); }
  void schedule(double delay, Task fn) override {
    queue_.schedule(delay, std::move(fn));
  }
  RunResult run_to_idle(std::size_t max_events) override {
    return queue_.run_to_idle(max_events);
  }
  RunResult run_until(double horizon) override {
    return queue_.run_until(horizon);
  }

  [[nodiscard]] std::size_t in_flight() const override {
    return net_.in_flight();
  }
  [[nodiscard]] std::size_t stalled_backlog() const override {
    return net_.stalled_backlog();
  }
  [[nodiscard]] std::size_t dedup_entries() const override {
    return net_.dedup_entries();
  }
  [[nodiscard]] std::size_t dedup_window_size() const override {
    return net_.dedup_window_size();
  }
  [[nodiscard]] std::size_t memory_bytes() const override {
    return net_.memory_bytes();
  }

  [[nodiscard]] sim::Metrics& metrics() override { return net_.metrics(); }
  [[nodiscard]] const sim::Metrics& metrics() const override {
    return net_.metrics();
  }
  [[nodiscard]] const NetworkStats& stats() const override {
    return net_.stats();
  }
  [[nodiscard]] const NetworkConfig& config() const override {
    return net_.config();
  }
  [[nodiscard]] double retransmit_timeout() const override {
    return net_.retransmit_timeout();
  }

  void set_tracer(obs::Tracer* tracer) override { net_.set_tracer(tracer); }
  void set_recorder(obs::FlightRecorder* recorder) override {
    net_.set_recorder(recorder);
  }

  [[nodiscard]] bool deterministic() const override { return true; }
  [[nodiscard]] const char* backend_name() const override { return "sim"; }

  /// Sim-only escape hatches (the deterministic replay machinery).
  [[nodiscard]] sim::EventQueue& queue() { return queue_; }
  [[nodiscard]] Network& network() { return net_; }

 private:
  sim::EventQueue queue_;
  Network net_;
};

}  // namespace voronet::protocol
