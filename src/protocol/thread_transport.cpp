#include "protocol/thread_transport.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "common/expect.hpp"
#include "net/wire_format.hpp"

namespace voronet::protocol {

namespace {

/// SplitMix64 finaliser -- same jitter hash as protocol::Network, so both
/// backends desynchronise retransmissions the same way.
[[nodiscard]] std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::size_t kMaxPooledPayload = 4096;
constexpr std::size_t kMaxPoolSize = 1024;

/// Min-heap order on (deadline, seq).
[[nodiscard]] bool later(const double a_at, const std::uint64_t a_seq,
                         const double b_at, const std::uint64_t b_seq) {
  if (a_at != b_at) return a_at > b_at;
  return a_seq > b_seq;
}

/// How long the driver sleeps between quiescence probes when no wakeup
/// deadline is nearer.  Progress signals (upcalls, drained wire events)
/// notify the driver cv, so this only bounds staleness after silent
/// transitions (e.g. an ack settling the last in-flight transfer).
constexpr std::chrono::microseconds kDriverNap{500};

}  // namespace

ThreadTransport::ThreadTransport(const NetworkConfig& config, unsigned shards,
                                 double patience)
    : config_(config),
      patience_(patience),
      start_(std::chrono::steady_clock::now()),
      rng_(config.seed) {
  VORONET_EXPECT(config.drop_probability >= 0.0 &&
                     config.drop_probability < 1.0,
                 "drop probability must lie in [0, 1)");
  VORONET_EXPECT(config.backoff_factor >= 1.0,
                 "retransmit backoff factor must be >= 1");
  VORONET_EXPECT(config.jitter >= 0.0 && config.jitter < 1.0,
                 "retransmit jitter must lie in [0, 1)");
  VORONET_EXPECT(patience > 0.0, "patience must be positive");
  rto_ = config.retransmit_timeout > 0.0
             ? config.retransmit_timeout
             : 2.0 * config.latency.high_quantile() + 0.01;
  rto_cap_ = config.rto_cap > 0.0 ? config.rto_cap : 16.0 * rto_;

  if (shards == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    shards = std::clamp(hw == 0 ? 2u : hw, 1u, 8u);
  }
  shards_.reserve(shards);
  for (unsigned i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  threads_.reserve(shards);
  for (unsigned i = 0; i < shards; ++i) {
    threads_.emplace_back([this, i] { shard_loop(*shards_[i]); });
  }
}

ThreadTransport::~ThreadTransport() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->m);
    shard->stop = true;
    shard->cv.notify_all();
  }
  for (auto& t : threads_) t.join();
}

double ThreadTransport::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

double ThreadTransport::backoff_timeout(std::uint64_t transfer_id,
                                        std::size_t attempts) const {
  const double exponent =
      std::min<double>(static_cast<double>(attempts - 1), 40.0);
  double timeout =
      std::min(rto_ * std::pow(config_.backoff_factor, exponent), rto_cap_);
  if (config_.jitter > 0.0) {
    const double u = static_cast<double>(
                         mix64(transfer_id * 0x2545f4914f6cdd1dULL +
                               attempts) >>
                         11) *
                     0x1.0p-53;
    timeout *= 1.0 + config_.jitter * (u - 0.5);
  }
  return timeout;
}

double ThreadTransport::effective_drop_locked() const {
  double drop = config_.drop_probability;
  for (const double extra : loss_bursts_) drop += extra;
  return std::min(drop, 1.0);
}

bool ThreadTransport::flag_locked(const std::vector<std::uint8_t>& flags,
                                  NodeId node) const {
  if (node < 0) return false;
  const auto idx = static_cast<std::size_t>(node);
  return idx < flags.size() && flags[idx] != 0;
}

void ThreadTransport::set_flag(std::vector<std::uint8_t>& flags, NodeId node,
                               bool on) {
  if (node < 0) return;
  const auto idx = static_cast<std::size_t>(node);
  if (idx >= flags.size()) {
    if (!on) return;
    flags.resize(idx + 1, 0);
  }
  flags[idx] = on ? 1 : 0;
}

// ---------------------------------------------------------------------------
// Slot table / payload pool / orphan window (Network's structures verbatim)
// ---------------------------------------------------------------------------

ThreadTransport::Transfer* ThreadTransport::live_transfer_locked(
    std::uint32_t slot, std::uint64_t transfer_id) {
  if (slot == kNoTransferSlot || slot >= transfers_.size()) return nullptr;
  Transfer& t = transfers_[slot];
  return t.id == transfer_id ? &t : nullptr;
}

std::uint32_t ThreadTransport::alloc_slot_locked() {
  ++in_flight_;
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  transfers_.emplace_back();
  return static_cast<std::uint32_t>(transfers_.size() - 1);
}

void ThreadTransport::free_slot_locked(std::uint32_t slot) {
  Transfer& t = transfers_[slot];
  recycle_payload_locked(std::move(t.msg.entries));
  t.msg.entries.clear();
  t.id = 0;
  t.attempts = 1;
  t.delivered = false;
  t.settled = false;
  free_slots_.push_back(slot);
  VORONET_DCHECK(in_flight_ > 0);
  --in_flight_;
}

void ThreadTransport::recycle_payload_locked(
    std::vector<ViewEntry>&& entries) {
  if (entries.capacity() == 0 || entries.capacity() > kMaxPooledPayload ||
      payload_pool_.size() >= kMaxPoolSize) {
    return;
  }
  entries.clear();
  payload_pool_.push_back(std::move(entries));
}

Message ThreadTransport::draft(std::size_t reserve_entries) {
  std::lock_guard<std::mutex> lk(g_);
  Message m;
  if (!payload_pool_.empty()) {
    m.entries = std::move(payload_pool_.back());
    payload_pool_.pop_back();
  }
  if (reserve_entries > 0) m.entries.reserve(reserve_entries);
  return m;
}

bool ThreadTransport::OrphanWindow::insert(std::uint64_t transfer_id,
                                           NodeId dst) {
  if (ring.empty()) ring.resize(Transport::kOrphanDedupCapacity);
  for (const Rec& r : ring) {
    if (r.transfer_id == transfer_id) return false;
  }
  Rec& r = ring[next];
  if (r.transfer_id != 0) --count;
  r.transfer_id = transfer_id;
  r.dst = dst;
  ++count;
  next = (next + 1) % ring.size();
  return true;
}

void ThreadTransport::OrphanWindow::erase(std::uint64_t transfer_id) {
  for (Rec& r : ring) {
    if (r.transfer_id == transfer_id) {
      r = Rec{};
      --count;
      return;
    }
  }
}

void ThreadTransport::OrphanWindow::erase_dst(NodeId dst) {
  for (Rec& r : ring) {
    if (r.transfer_id != 0 && r.dst == dst) {
      r = Rec{};
      --count;
    }
  }
}

std::size_t ThreadTransport::dedup_entries() const {
  std::lock_guard<std::mutex> lk(g_);
  std::size_t n = orphans_.size();
  for (const Transfer& t : transfers_) {
    if (t.id != 0 && t.delivered) ++n;
  }
  return n;
}

std::size_t ThreadTransport::dedup_window_size() const {
  std::lock_guard<std::mutex> lk(g_);
  return orphans_.size();
}

std::size_t ThreadTransport::in_flight() const {
  std::lock_guard<std::mutex> lk(g_);
  return in_flight_;
}

std::size_t ThreadTransport::stalled_backlog() const {
  std::lock_guard<std::mutex> lk(g_);
  return backlog_count_;
}

std::size_t ThreadTransport::memory_bytes() const {
  std::lock_guard<std::mutex> lk(g_);
  std::size_t b = transfers_.size() * sizeof(Transfer);
  for (const Transfer& t : transfers_) {
    b += t.msg.entries.capacity() * sizeof(ViewEntry);
  }
  for (const auto& p : payload_pool_) b += p.capacity() * sizeof(ViewEntry);
  b += free_slots_.capacity() * sizeof(std::uint32_t);
  b += orphans_.ring.capacity() * sizeof(OrphanWindow::Rec);
  b += crashed_.capacity() + stalled_.capacity();
  b += stall_backlog_.capacity() * sizeof(std::vector<Message>);
  for (const auto& backlog : stall_backlog_) {
    b += backlog.capacity() * sizeof(Message);
    for (const Message& m : backlog) {
      b += m.entries.capacity() * sizeof(ViewEntry);
    }
  }
  return b;
}

// ---------------------------------------------------------------------------
// Send / failure injection (driving thread)
// ---------------------------------------------------------------------------

void ThreadTransport::send(Message msg) {
  std::lock_guard<std::mutex> lk(g_);
  msg.transfer_id = next_transfer_++;
  ++stats_.sends;
  const bool reliable = msg.type != sim::MessageKind::kAck;
  if (!reliable) {
    transmit_locked(msg);
    return;
  }
  const std::uint32_t slot = alloc_slot_locked();
  msg.transfer_slot = slot;
  transmit_locked(msg);
  Transfer& t = transfers_[slot];
  t.id = msg.transfer_id;
  recycle_payload_locked(std::move(t.msg.entries));
  const std::uint64_t id = msg.transfer_id;
  t.msg = std::move(msg);
  t.attempts = 1;
  t.delivered = false;
  t.settled = false;
  WireEvent timer;
  timer.at = now() + backoff_timeout(id, 1);
  timer.seq = event_seq_.fetch_add(1, std::memory_order_relaxed);
  timer.kind = WireEvent::kRetransmit;
  timer.slot = slot;
  timer.transfer = id;
  post(shard_of(t.msg.src), std::move(timer));
}

void ThreadTransport::crash(NodeId node) {
  std::lock_guard<std::mutex> lk(g_);
  set_flag(crashed_, node, true);
  set_flag(stalled_, node, false);
  if (node >= 0 && static_cast<std::size_t>(node) < stall_backlog_.size()) {
    backlog_count_ -= stall_backlog_[static_cast<std::size_t>(node)].size();
    stall_backlog_[static_cast<std::size_t>(node)].clear();
  }
}

void ThreadTransport::stall(NodeId node) {
  std::lock_guard<std::mutex> lk(g_);
  if (flag_locked(crashed_, node)) return;  // dead beats wedged
  set_flag(stalled_, node, true);
}

void ThreadTransport::resume(NodeId node) {
  std::lock_guard<std::mutex> lk(g_);
  if (!flag_locked(stalled_, node)) return;
  set_flag(stalled_, node, false);
  if (node < 0 || static_cast<std::size_t>(node) >= stall_backlog_.size()) {
    return;
  }
  std::vector<Message> backlog =
      std::move(stall_backlog_[static_cast<std::size_t>(node)]);
  stall_backlog_[static_cast<std::size_t>(node)].clear();
  backlog_count_ -= backlog.size();
  // Deliveries land in the upcall queue, so draining under g_ is safe:
  // nothing re-enters the application layer from here.
  for (Message& msg : backlog) receive_locked(std::move(msg));
}

void ThreadTransport::resume_all() {
  std::vector<NodeId> wedged;
  {
    std::lock_guard<std::mutex> lk(g_);
    for (std::size_t n = 0; n < stalled_.size(); ++n) {
      if (stalled_[n] != 0) wedged.push_back(static_cast<NodeId>(n));
    }
  }
  for (const NodeId node : wedged) resume(node);
}

bool ThreadTransport::crashed(NodeId node) const {
  std::lock_guard<std::mutex> lk(g_);
  return flag_locked(crashed_, node);
}

bool ThreadTransport::stalled(NodeId node) const {
  std::lock_guard<std::mutex> lk(g_);
  return flag_locked(stalled_, node);
}

void ThreadTransport::revive(NodeId node) {
  // Abandon predecessor-era transfers in ascending transfer-id order with
  // the crashed mark still set, exactly like Network::revive -- but the
  // abandon handler runs outside g_ (it may send afresh).
  std::vector<std::pair<std::uint64_t, std::uint32_t>> stale;
  {
    std::lock_guard<std::mutex> lk(g_);
    for (std::uint32_t slot = 0; slot < transfers_.size(); ++slot) {
      const Transfer& t = transfers_[slot];
      if (t.id != 0 && (t.msg.src == node || t.msg.dst == node)) {
        stale.emplace_back(t.id, slot);
      }
    }
  }
  std::sort(stale.begin(), stale.end());
  for (const auto& [id, slot] : stale) {
    Message msg;
    bool live = false;
    {
      std::lock_guard<std::mutex> lk(g_);
      if (Transfer* t = live_transfer_locked(slot, id)) {
        live = true;
        ++stats_.abandoned;
        metrics_.record_transfer_attempts(t->attempts);
        msg = std::move(t->msg);
        free_slot_locked(slot);
      }
    }
    if (!live) continue;  // settled (ack raced) or re-abandoned already
    if (abandon_) abandon_(msg);
    std::lock_guard<std::mutex> lk(g_);
    recycle_payload_locked(std::move(msg.entries));
  }
  std::lock_guard<std::mutex> lk(g_);
  set_flag(crashed_, node, false);
  if (!orphans_.empty()) orphans_.erase_dst(node);
  set_flag(stalled_, node, false);
  if (node >= 0 && static_cast<std::size_t>(node) < stall_backlog_.size()) {
    backlog_count_ -= stall_backlog_[static_cast<std::size_t>(node)].size();
    stall_backlog_[static_cast<std::size_t>(node)].clear();
  }
}

void ThreadTransport::begin_loss_burst(double extra_drop) {
  std::lock_guard<std::mutex> lk(g_);
  loss_bursts_.push_back(extra_drop);
}

void ThreadTransport::end_loss_burst(double extra_drop) {
  std::lock_guard<std::mutex> lk(g_);
  const auto it =
      std::find(loss_bursts_.begin(), loss_bursts_.end(), extra_drop);
  if (it != loss_bursts_.end()) loss_bursts_.erase(it);
}

void ThreadTransport::begin_latency_spike(double factor) {
  std::lock_guard<std::mutex> lk(g_);
  latency_spikes_.push_back(factor);
}

void ThreadTransport::end_latency_spike(double factor) {
  std::lock_guard<std::mutex> lk(g_);
  const auto it =
      std::find(latency_spikes_.begin(), latency_spikes_.end(), factor);
  if (it != latency_spikes_.end()) latency_spikes_.erase(it);
}

void ThreadTransport::begin_duplication(double probability) {
  std::lock_guard<std::mutex> lk(g_);
  duplications_.push_back(probability);
}

void ThreadTransport::end_duplication(double probability) {
  std::lock_guard<std::mutex> lk(g_);
  const auto it =
      std::find(duplications_.begin(), duplications_.end(), probability);
  if (it != duplications_.end()) duplications_.erase(it);
}

void ThreadTransport::set_link_filter(LinkFilter up) {
  std::lock_guard<std::mutex> lk(g_);
  link_up_ = std::move(up);
}

void ThreadTransport::clear_link_filter() {
  std::lock_guard<std::mutex> lk(g_);
  link_up_ = nullptr;
}

// ---------------------------------------------------------------------------
// Wire (shard threads; all helpers run under g_)
// ---------------------------------------------------------------------------

void ThreadTransport::transmit_locked(const Message& msg) {
  ++stats_.transmissions;
  metrics_.count_message(msg.type);
  metrics_.count_wire_bytes(msg.type, net::wire_frame_size(msg));
  stats_.wire_bytes += net::wire_frame_size(msg);
  if (msg.type == sim::MessageKind::kAck) ++stats_.acks;
  const bool link_down = link_up_ && !link_up_(msg.src, msg.dst);
  const double drop = effective_drop_locked();
  if (link_down || (drop > 0.0 && rng_.chance(drop))) {
    ++stats_.dropped;
    return;
  }
  double delay = config_.latency.sample(rng_);
  for (const double factor : latency_spikes_) delay *= factor;
  WireEvent ev;
  ev.at = now() + delay;
  ev.seq = event_seq_.fetch_add(1, std::memory_order_relaxed);
  ev.kind = msg.type == sim::MessageKind::kAck ? WireEvent::kAck
                                               : WireEvent::kArrive;
  ev.msg = msg;  // one payload copy per wire attempt, as in the sim
  wire_events_.fetch_add(1);
  post(shard_of(msg.dst), std::move(ev));
  if (!duplications_.empty()) {
    const double dup =
        *std::max_element(duplications_.begin(), duplications_.end());
    if (dup > 0.0 && rng_.chance(dup)) {
      ++stats_.injected_duplicates;
      double dup_delay = config_.latency.sample(rng_);
      for (const double factor : latency_spikes_) dup_delay *= factor;
      WireEvent copy;
      copy.at = now() + dup_delay;
      copy.seq = event_seq_.fetch_add(1, std::memory_order_relaxed);
      copy.kind = msg.type == sim::MessageKind::kAck ? WireEvent::kAck
                                                     : WireEvent::kArrive;
      copy.msg = msg;
      wire_events_.fetch_add(1);
      post(shard_of(msg.dst), std::move(copy));
    }
  }
}

void ThreadTransport::receive_locked(Message msg) {
  Message ack;
  ack.type = sim::MessageKind::kAck;
  ack.src = msg.dst;
  ack.dst = msg.src;
  ack.transfer_id = msg.transfer_id;
  ack.transfer_slot = msg.transfer_slot;
  transmit_locked(ack);

  bool fresh;
  if (Transfer* t = live_transfer_locked(msg.transfer_slot,
                                         msg.transfer_id)) {
    fresh = !t->delivered;
    t->delivered = true;
  } else {
    fresh = orphans_.insert(msg.transfer_id, msg.dst);
  }
  if (!fresh) {
    ++stats_.duplicates;
    recycle_payload_locked(std::move(msg.entries));
    return;
  }
  ++stats_.delivered;
  Upcall up;
  up.kind = Upcall::kDeliver;
  up.msg = std::move(msg);
  push_upcall(std::move(up));
}

void ThreadTransport::settle_locked(std::uint32_t slot,
                                    std::uint64_t transfer_id) {
  if (Transfer* t = live_transfer_locked(slot, transfer_id)) {
    metrics_.record_transfer_attempts(t->attempts);
    t->settled = true;  // the pending retransmit event is now a no-op
    free_slot_locked(slot);
  }
  if (!orphans_.empty()) orphans_.erase(transfer_id);
}

void ThreadTransport::retransmit_locked(std::uint32_t slot,
                                        std::uint64_t transfer_id) {
  Transfer* t = live_transfer_locked(slot, transfer_id);
  if (t == nullptr) return;  // acknowledged in the meantime
  const bool give_up =
      flag_locked(crashed_, t->msg.dst) || flag_locked(crashed_, t->msg.src) ||
      (config_.max_retries > 0 && t->attempts > config_.max_retries);
  if (give_up) {
    ++stats_.abandoned;
    metrics_.record_transfer_attempts(t->attempts);
    Upcall up;
    up.kind = Upcall::kAbandon;
    up.msg = std::move(t->msg);
    free_slot_locked(slot);
    push_upcall(std::move(up));
    return;
  }
  ++t->attempts;
  ++stats_.retransmits;
  transmit_locked(t->msg);
  WireEvent timer;
  timer.at = now() + backoff_timeout(transfer_id, t->attempts);
  timer.seq = event_seq_.fetch_add(1, std::memory_order_relaxed);
  timer.kind = WireEvent::kRetransmit;
  timer.slot = slot;
  timer.transfer = transfer_id;
  post(shard_of(t->msg.src), std::move(timer));
}

void ThreadTransport::process_event(WireEvent& ev) {
  const bool wire = ev.kind != WireEvent::kRetransmit;
  {
    std::lock_guard<std::mutex> lk(g_);
    switch (ev.kind) {
      case WireEvent::kArrive: {
        Message& msg = ev.msg;
        if (flag_locked(crashed_, msg.dst)) {
          ++stats_.dropped;
          recycle_payload_locked(std::move(msg.entries));
          break;
        }
        if (flag_locked(stalled_, msg.dst)) {
          ++stats_.stalled_deferred;
          const auto idx = static_cast<std::size_t>(msg.dst);
          if (idx >= stall_backlog_.size()) stall_backlog_.resize(idx + 1);
          stall_backlog_[idx].push_back(std::move(msg));
          ++backlog_count_;
          break;
        }
        receive_locked(std::move(msg));
        break;
      }
      case WireEvent::kAck:
        settle_locked(ev.msg.transfer_slot, ev.msg.transfer_id);
        break;
      case WireEvent::kRetransmit:
        retransmit_locked(ev.slot, ev.transfer);
        break;
    }
  }
  if (wire) {
    // Decrement AFTER the consequences (upcalls, follow-on wire events)
    // are published: the driver's quiescence probe reads this counter
    // first, so 0 means every consequence is already visible to it.
    wire_events_.fetch_sub(1);
  }
  // Every processed event can complete quiescence (an ack settling the
  // last transfer is silent otherwise) -- nudge the driver.
  up_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Shards
// ---------------------------------------------------------------------------

void ThreadTransport::post(Shard& shard, WireEvent ev) {
  std::lock_guard<std::mutex> lk(shard.m);
  shard.inbox.push_back(std::move(ev));
  shard.cv.notify_all();
}

void ThreadTransport::shard_loop(Shard& shard) {
  const auto cmp = [](const WireEvent& a, const WireEvent& b) {
    return later(a.at, a.seq, b.at, b.seq);
  };
  std::vector<WireEvent> due;
  std::unique_lock<std::mutex> lk(shard.m);
  for (;;) {
    for (WireEvent& ev : shard.inbox) {
      shard.heap.push_back(std::move(ev));
      std::push_heap(shard.heap.begin(), shard.heap.end(), cmp);
    }
    shard.inbox.clear();
    if (shard.stop) break;
    const double t = now();
    while (!shard.heap.empty() && shard.heap.front().at <= t) {
      std::pop_heap(shard.heap.begin(), shard.heap.end(), cmp);
      due.push_back(std::move(shard.heap.back()));
      shard.heap.pop_back();
    }
    if (!due.empty()) {
      lk.unlock();
      for (WireEvent& ev : due) process_event(ev);
      due.clear();
      lk.lock();
      continue;
    }
    if (shard.heap.empty()) {
      shard.cv.wait(lk,
                    [&shard] { return shard.stop || !shard.inbox.empty(); });
    } else {
      shard.cv.wait_for(lk,
                        std::chrono::duration<double>(shard.heap.front().at -
                                                      t));
    }
  }
}

// ---------------------------------------------------------------------------
// Driving (application thread)
// ---------------------------------------------------------------------------

void ThreadTransport::push_upcall(Upcall up) {
  std::lock_guard<std::mutex> lk(up_m_);
  upcalls_.push_back(std::move(up));
  up_cv_.notify_all();
}

void ThreadTransport::schedule(double delay, Task fn) {
  const auto cmp = [](const DriverTimer& a, const DriverTimer& b) {
    return later(a.at, a.seq, b.at, b.seq);
  };
  DriverTimer timer;
  timer.at = now() + std::max(delay, 0.0);
  timer.seq = timer_seq_++;
  timer.fn = std::move(fn);
  timers_.push_back(std::move(timer));
  std::push_heap(timers_.begin(), timers_.end(), cmp);
}

std::size_t ThreadTransport::pump() {
  const auto cmp = [](const DriverTimer& a, const DriverTimer& b) {
    return later(a.at, a.seq, b.at, b.seq);
  };
  std::size_t processed = 0;
  for (;;) {
    // Due application timers interleave with deliveries in deadline
    // order -- close enough to the sim's total order for protocol logic.
    if (!timers_.empty() && timers_.front().at <= now()) {
      std::pop_heap(timers_.begin(), timers_.end(), cmp);
      DriverTimer timer = std::move(timers_.back());
      timers_.pop_back();
      ++processed;
      timer.fn();
      continue;
    }
    Upcall up;
    {
      std::lock_guard<std::mutex> lk(up_m_);
      if (upcalls_.empty()) break;
      up = std::move(upcalls_.front());
      upcalls_.pop_front();
    }
    ++processed;
    if (up.kind == Upcall::kDeliver) {
      if (sink_) sink_(up.msg);
    } else {
      if (abandon_) abandon_(up.msg);
    }
    std::lock_guard<std::mutex> lk(g_);
    recycle_payload_locked(std::move(up.msg.entries));
  }
  return processed;
}

bool ThreadTransport::quiescent() const {
  if (wire_events_.load() != 0) return false;
  {
    std::lock_guard<std::mutex> lk(g_);
    if (in_flight_ != 0) return false;
  }
  {
    std::lock_guard<std::mutex> lk(up_m_);
    if (!upcalls_.empty()) return false;
  }
  return timers_.empty();
}

Transport::RunResult ThreadTransport::run_to_idle(std::size_t max_events) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(patience_));
  RunResult result;
  for (;;) {
    result.processed += pump();
    if (result.processed >= max_events) {
      result.budget_exhausted = true;
      return result;
    }
    if (quiescent()) return result;
    if (std::chrono::steady_clock::now() >= deadline) {
      result.budget_exhausted = true;
      return result;
    }
    std::unique_lock<std::mutex> lk(up_m_);
    if (!upcalls_.empty()) continue;
    auto nap = std::chrono::steady_clock::duration(kDriverNap);
    if (!timers_.empty()) {
      const auto until_timer =
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(timers_.front().at - now()));
      nap = std::min(nap, std::max(until_timer,
                                   std::chrono::steady_clock::duration::zero()));
    }
    up_cv_.wait_for(lk, nap);
  }
}

Transport::RunResult ThreadTransport::run_until(double horizon) {
  RunResult result;
  for (;;) {
    result.processed += pump();
    const double t = now();
    if (t >= horizon) return result;
    std::unique_lock<std::mutex> lk(up_m_);
    if (!upcalls_.empty()) continue;
    auto nap = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(horizon - t));
    nap = std::min(nap, std::chrono::steady_clock::duration(kDriverNap));
    if (!timers_.empty()) {
      const auto until_timer =
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(timers_.front().at - t));
      nap = std::min(nap, std::max(until_timer,
                                   std::chrono::steady_clock::duration::zero()));
    }
    up_cv_.wait_for(lk, nap);
  }
}

}  // namespace voronet::protocol
