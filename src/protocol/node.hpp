// Per-node protocol state machine.
//
// A ProtocolNode holds the *local* view the paper's autonomous object
// maintains -- Voronoi neighbours, close neighbours, long links -- fed
// exclusively by messages.  Nothing here reads the shared tessellation:
// between the moment the ground truth changes and the moment the update
// messages arrive, the local view is stale, and routing decisions made
// from it are exactly as wrong as a real deployment's would be.
//
// View components are versioned: an update is applied only when its
// version exceeds the component's last applied one, which makes updates
// idempotent under transport-level retransmission and safe under the
// reordering a random latency model produces.
#pragma once

#include <cstdint>
#include <vector>

#include "protocol/message.hpp"

namespace voronet::protocol {

class ProtocolNode {
 public:
  ProtocolNode(NodeId id, Vec2 position) : id_(id), position_(position) {}

  /// Outcome of one greedy routing decision over the local view.
  struct Route {
    bool terminal = false;  ///< no local entry is closer than this node
    NodeId next = kNoNode;  ///< valid when !terminal
  };

  /// The paper's Greedyneighbour on the local view: the entry of
  /// vn + cn + lr closest to the target, forwarded to only when strictly
  /// closer than this node (positions in view entries are exact and
  /// immutable, so the distance decreases strictly along a forwarding
  /// chain and protocol routing cannot cycle, however stale the views).
  [[nodiscard]] Route greedy_step(Vec2 target) const;

  /// Apply a view-update message (kVoronoiUpdate / kCloseNeighbor /
  /// kLongLinkBind).  Returns true when the update advanced the view,
  /// false when it was stale or a duplicate.
  bool apply_update(const Message& m);

  /// Departure notification: drop entries matching the departed peer
  /// (id AND position -- ids are recycled, positions are not).
  void forget_peer(NodeId peer, Vec2 peer_position);

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] Vec2 position() const { return position_; }
  [[nodiscard]] const std::vector<ViewEntry>& vn() const { return vn_; }
  [[nodiscard]] const std::vector<ViewEntry>& cn() const { return cn_; }
  [[nodiscard]] const std::vector<ViewEntry>& lr() const { return lr_; }
  [[nodiscard]] std::size_t degree() const {
    return vn_.size() + cn_.size() + lr_.size();
  }

 private:
  NodeId id_;
  Vec2 position_;
  std::vector<ViewEntry> vn_;  ///< sorted by id (authority sends sorted)
  std::vector<ViewEntry> cn_;  ///< sorted by id
  std::vector<ViewEntry> lr_;  ///< in link-index order
  std::uint64_t vn_version_ = 0;
  std::uint64_t cn_version_ = 0;
  std::uint64_t lr_version_ = 0;
};

}  // namespace voronet::protocol
