// Per-node protocol state machine.
//
// A ProtocolNode holds the *local* view the paper's autonomous object
// maintains -- Voronoi neighbours, close neighbours, long links -- fed
// exclusively by messages.  Nothing here reads the shared tessellation:
// between the moment the ground truth changes and the moment the update
// messages arrive, the local view is stale, and routing decisions made
// from it are exactly as wrong as a real deployment's would be.
//
// View components are versioned: an update is applied only when its
// version exceeds the component's last applied one, which makes updates
// idempotent under transport-level retransmission and safe under the
// reordering a random latency model produces.
//
// Storage: the three components are ViewSpan handles into the harness's
// shared ViewArena, not per-node heap vectors -- a node is a few dozen
// bytes of slot-table state plus its arena spans (DESIGN.md, "Memory
// layout & arenas").  Every accessor therefore takes the arena; the
// node is trivially movable and never owns heap memory directly.  The
// holder (the slot table) must call release() before discarding a node.
#pragma once

#include <cstdint>
#include <span>

#include "protocol/message.hpp"
#include "protocol/view_arena.hpp"

namespace voronet::protocol {

class ProtocolNode {
 public:
  ProtocolNode() = default;
  ProtocolNode(NodeId id, Vec2 position) : id_(id), position_(position) {}

  /// Outcome of one greedy routing decision over the local view.
  struct Route {
    bool terminal = false;  ///< no local entry is closer than this node
    NodeId next = kNoNode;  ///< valid when !terminal
  };

  /// The paper's Greedyneighbour on the local view: the entry of
  /// vn + cn + lr closest to the target, forwarded to only when strictly
  /// closer than this node (positions in view entries are exact and
  /// immutable, so the distance decreases strictly along a forwarding
  /// chain and protocol routing cannot cycle, however stale the views).
  [[nodiscard]] Route greedy_step(Vec2 target, const ViewArena& arena) const;

  /// Apply a view-update message (kVoronoiUpdate / kCloseNeighbor /
  /// kLongLinkBind).  Returns true when the update advanced the view,
  /// false when it was stale or a duplicate.
  bool apply_update(const Message& m, ViewArena& arena);

  /// Departure notification: drop entries matching the departed peer
  /// (id AND position -- ids are recycled, positions are not).
  void forget_peer(NodeId peer, Vec2 peer_position, ViewArena& arena);

  /// Return every span to the arena (the slot table calls this when the
  /// node deregisters; a recycled slot must inherit nothing).
  void release(ViewArena& arena);

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] Vec2 position() const { return position_; }
  [[nodiscard]] std::span<const ViewEntry> vn(const ViewArena& a) const {
    return a.view(vn_);
  }
  [[nodiscard]] std::span<const ViewEntry> cn(const ViewArena& a) const {
    return a.view(cn_);
  }
  [[nodiscard]] std::span<const ViewEntry> lr(const ViewArena& a) const {
    return a.view(lr_);
  }
  [[nodiscard]] std::size_t degree() const {
    return std::size_t{vn_.len} + cn_.len + lr_.len;
  }

 private:
  NodeId id_ = kNoNode;
  Vec2 position_{};
  ViewSpan vn_;  ///< sorted by id (authority sends sorted)
  ViewSpan cn_;  ///< sorted by id
  ViewSpan lr_;  ///< in link-index order
  std::uint64_t vn_version_ = 0;
  std::uint64_t cn_version_ = 0;
  std::uint64_t lr_version_ = 0;
};

}  // namespace voronet::protocol
