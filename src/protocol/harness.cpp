#include "protocol/harness.hpp"

#include <algorithm>
#include <utility>

#include "common/expect.hpp"
#include "geometry/voronoi.hpp"
#include "net/socket_transport.hpp"
#include "protocol/sim_transport.hpp"
#include "protocol/thread_transport.hpp"
#include "voronet/queries.hpp"

namespace voronet::protocol {

namespace {

/// Span-vs-vector content equality (ViewEntry has operator==).
bool same_entries(std::span<const ViewEntry> a,
                  const std::vector<ViewEntry>& b) {
  return std::equal(a.begin(), a.end(), b.begin(), b.end());
}

std::unique_ptr<Transport> make_transport(const HarnessConfig& config) {
  if (config.transport == TransportKind::kThread) {
    return std::make_unique<ThreadTransport>(config.network,
                                             config.transport_shards);
  }
  if (config.transport == TransportKind::kSocket) {
    net::SocketTransportConfig socket_config;
    socket_config.listen = config.transport_listen;
    return std::make_unique<net::SocketTransport>(config.network,
                                                  std::move(socket_config));
  }
  return std::make_unique<SimTransport>(config.network);
}

}  // namespace

ProtocolHarness::ProtocolHarness(const HarnessConfig& config)
    : config_(config),
      overlay_(config.overlay),
      net_(make_transport(config)),
      rng_(config.seed) {
  overlay_.track_view_changes(true);
  net_->set_tracer(&tracer_);
  net_->set_recorder(&recorder_);
  net_->set_sink([this](const Message& m) { deliver(m); });
  net_->set_abandon_handler([this](const Message& m) { on_abandon(m); });
  // Echo-deadline period: long enough that a healthy (merely slow) flood
  // is never declared dead -- several RTOs / tail latencies -- and at
  // least the failure-detection delay, so the sweep observes repairs the
  // fault model has already admitted to the survivors.
  query_deadline_ =
      config.query_deadline > 0.0
          ? config.query_deadline
          : std::max({4.0 * net_->retransmit_timeout(),
                      8.0 * config.network.latency.high_quantile(),
                      config.failure_detect_delay}) +
                0.05;
}

sim::EventQueue& ProtocolHarness::queue() {
  auto* sim = dynamic_cast<SimTransport*>(net_.get());
  VORONET_EXPECT(sim != nullptr,
                 "queue() is sim-only: this harness runs the thread backend");
  return sim->queue();
}

// ---------------------------------------------------------------------------
// Workload injection
// ---------------------------------------------------------------------------

void ProtocolHarness::join_after(double delay, Vec2 p) {
  ++pending_joins_;
  net_->schedule(delay, [this, p] { start_join(p); });
}

void ProtocolHarness::start_join(Vec2 p) {
  const std::uint64_t join_id = ++join_seq_;
  obs::SpanId span = obs::kNoSpan;
  if (tracer_.enabled()) {
    span = tracer_.begin_span(net_->now(), "join", -1);
    tracer_.arg(span, "join", join_id);
  }
  active_joins_.emplace(join_id, span);
  if (roster_.empty()) {
    // Nobody to route through: the bootstrap object sponsors itself.
    sponsor_join(kNoNode, p, join_id);
    return;
  }
  // The joining client contacts a random live node out of band; the join
  // request materialises at that gateway and routes from there.  Route
  // messages carry the chain id in `version` so completion is
  // exactly-once even when a chain is rerouted around a crash.
  const NodeId gateway = roster_[rng_.index(roster_.size())];
  Message m;
  m.type = sim::MessageKind::kJoin;
  m.src = gateway;
  m.dst = gateway;
  m.point = p;
  m.version = join_id;
  m.span = span;
  net_->send(std::move(m));
}

void ProtocolHarness::leave_after(double delay, NodeId x) {
  net_->schedule(delay, [this, x] { execute_leave(x); });
}

void ProtocolHarness::crash(NodeId x) {
  net_->schedule(0.0, [this, x] {
    if (!alive(x)) return;
    // Remember who should notice: the ground-truth Voronoi neighbours are
    // the nodes whose cells border the hole the crash leaves.
    const std::vector<NodeId> witnesses = overlay_.view(x).vn;
    net_->crash(x);
    deregister_node(x);
    // Ground-truth repair happens NOW (the overlay supports further
    // operations only with its invariants restored -- the usual
    // simulator substitution); what the failure-detection delay governs
    // is when the survivors *learn* about it: the touched views stay
    // undisseminated until the detection event fires (or an interleaved
    // operation ships them earlier, which only means a neighbour noticed
    // sooner).
    overlay_.crash(x);
    overlay_.repair_dangling();
    invalidate_region_caches();
    ++repairs_pending_;
    net_->schedule(config_.failure_detect_delay, [this, witnesses] {
      VORONET_DCHECK(repairs_pending_ > 0);
      --repairs_pending_;
      if (roster_.empty()) {
        (void)overlay_.take_touched_views();
        return;
      }
      NodeId detector = kNoNode;
      for (const NodeId w : witnesses) {
        if (alive(w)) {
          detector = w;
          break;
        }
      }
      if (detector == kNoNode) detector = roster_.front();
      disseminate(detector);
    });
  });
}

// ---------------------------------------------------------------------------
// Message handling
// ---------------------------------------------------------------------------

void ProtocolHarness::deliver(const Message& m) {
  switch (m.type) {
    case sim::MessageKind::kJoin:
    case sim::MessageKind::kRouteForward:
      handle_route(m);
      return;
    case sim::MessageKind::kQuery:
      handle_query_route(m);
      return;
    case sim::MessageKind::kQueryForward:
      handle_query_forward(m);
      return;
    case sim::MessageKind::kQueryResult:
    case sim::MessageKind::kQueryAbort:
      handle_query_result(m);
      return;
    case sim::MessageKind::kVoronoiUpdate:
    case sim::MessageKind::kCloseNeighbor:
    case sim::MessageKind::kLongLinkBind: {
      if (!alive(m.dst)) return;  // addressee departed in flight
      if (slot(m.dst).node.apply_update(m, arena_)) {
        last_apply_time_ = net_->now();
      }
      return;
    }
    case sim::MessageKind::kLeaveNotify: {
      if (alive(m.dst)) slot(m.dst).node.forget_peer(m.src, m.point, arena_);
      return;
    }
    default:
      return;  // kAck never reaches the sink; others are not sent
  }
}

void ProtocolHarness::reroute_join(const Message& m) {
  const auto j = active_joins_.find(m.version);
  if (j == active_joins_.end()) return;  // chain already done
  const obs::SpanId span = j->second;
  if (tracer_.enabled()) {
    tracer_.instant(net_->now(), "join_reroute", -1, span);
  }
  if (roster_.empty()) {
    // Nobody left to route through: self-sponsor into the empty net.
    sponsor_join(kNoNode, m.point, m.version);
    return;
  }
  Message retry;
  retry.type = sim::MessageKind::kRouteForward;
  const NodeId entry = roster_[rng_.index(roster_.size())];
  retry.src = entry;
  retry.dst = entry;
  retry.point = m.point;
  retry.hops = m.hops + 1;
  retry.version = m.version;
  retry.span = span;
  net_->send(std::move(retry));
}

void ProtocolHarness::on_abandon(const Message& m) {
  switch (m.type) {
    case sim::MessageKind::kJoin:
    case sim::MessageKind::kRouteForward:
      // The route chain died with its addressee (crash, or retry cap):
      // re-enter through a live gateway so the join is never lost.
      reroute_join(m);
      return;
    case sim::MessageKind::kQuery:
      // Query route chain died with its addressee: re-enter like a join.
      reroute_query(m);
      return;
    case sim::MessageKind::kQueryForward:
      // The addressed cell is unreachable (crashed before it could serve,
      // or the retry cap fired): per-branch failover.
      fail_branch(m);
      return;
    case sim::MessageKind::kQueryResult:
    case sim::MessageKind::kQueryAbort:
      if (!epoch_current(m)) return;
      if (m.query_final) {
        // The issuer crashed with the aggregate in flight: the client
        // stub completes from the root's copy (or re-issues, if the
        // epoch was tainted -- complete_query gates).
        complete_query(m.version, m.entries);
        return;
      }
      // An echo died with the ancestor waiting for it: that ancestor
      // crashed holding pending subtree state (or its link is beyond the
      // retry cap), so everything it aggregated is lost.  Re-issue.
      reissue_query(m.version);
      return;
    case sim::MessageKind::kVoronoiUpdate:
    case sim::MessageKind::kCloseNeighbor:
    case sim::MessageKind::kLongLinkBind: {
      // The addressee never got this content: forget that it was sent so
      // the next touch of the component ships unconditionally.
      if (alive(m.dst)) {
        SentState& sent = slot(m.dst).sent;
        if (m.type == sim::MessageKind::kVoronoiUpdate) {
          arena_.release(sent.vn);
          sent.vn_known = false;
        } else if (m.type == sim::MessageKind::kCloseNeighbor) {
          arena_.release(sent.cn);
          sent.cn_known = false;
        } else {
          arena_.release(sent.lr);
          sent.lr_known = false;
        }
      }
      // When the transfer died because its *sender* crashed (crash-stop:
      // a dead node cannot drive retransmission), a live witness re-ships
      // the current authoritative content now -- the crash-repair path
      // only covers the crashed node's neighbourhood, not its unfinished
      // sends.  Retry-cap abandonments with a live sender stay
      // best-effort (re-shipping there would loop under a permanent
      // partition).
      if (!net_->crashed(m.src) || roster_.empty() || !alive(m.dst)) {
        return;
      }
      ++op_seq_;
      Message fresh = net_->draft();
      fresh.type = m.type;
      fresh.src = roster_[rng_.index(roster_.size())];
      fresh.dst = m.dst;
      fresh.version = op_seq_;
      SentState& sent = slot(m.dst).sent;
      if (m.type == sim::MessageKind::kVoronoiUpdate) {
        fresh.entries = authoritative_vn(m.dst);
        arena_.assign(sent.vn, fresh.entries);
        sent.vn_known = true;
      } else if (m.type == sim::MessageKind::kCloseNeighbor) {
        fresh.entries = authoritative_cn(m.dst);
        arena_.assign(sent.cn, fresh.entries);
        sent.cn_known = true;
      } else {
        fresh.entries = authoritative_lr(m.dst);
        arena_.assign(sent.lr, fresh.entries);
        sent.lr_known = true;
      }
      net_->send(std::move(fresh));
      return;
    }
    default:
      return;  // leave notifications are best-effort
  }
}

void ProtocolHarness::handle_route(const Message& m) {
  if (!alive(m.dst)) {
    // The addressee departed while the operation was in flight; fall back
    // to another bootstrap contact.
    reroute_join(m);
    return;
  }
  const ProtocolNode::Route route =
      slot(m.dst).node.greedy_step(m.point, arena_);
  // TTL guard: a legitimate greedy chain visits distinct nodes (strictly
  // decreasing distance), so it can never exceed the population.  Longer
  // chains mean a permanently stale entry is bouncing the request between
  // believed and actual positions of a recycled id (possible once a
  // correcting update was abandoned under max_retries > 0); sponsoring
  // here is always safe -- the ground-truth insert resolves the true
  // owner geometrically from any starting object.
  const bool expired = m.hops > roster_.size() + 16;
  if (tracer_.enabled()) {
    const obs::SpanId hop =
        tracer_.instant(net_->now(), "route_hop", m.dst, m.span);
    tracer_.arg(hop, "hops", m.hops);
  }
  if (route.terminal || expired) {
    sponsor_join(m.dst, m.point, m.version);
    return;
  }
  Message fwd;
  fwd.type = sim::MessageKind::kRouteForward;
  fwd.src = m.dst;
  fwd.dst = route.next;
  fwd.point = m.point;
  fwd.hops = m.hops + 1;
  fwd.version = m.version;
  fwd.span = m.span;
  net_->send(std::move(fwd));
}

void ProtocolHarness::sponsor_join(NodeId sponsor, Vec2 p,
                                   std::uint64_t join_id) {
  const auto j = active_joins_.find(join_id);
  if (j == active_joins_.end()) return;  // a twin chain finished
  const obs::SpanId span = j->second;
  active_joins_.erase(j);
  VORONET_DCHECK(pending_joins_ > 0);
  --pending_joins_;
  const NodeId x = (sponsor == kNoNode || overlay_.size() == 0)
                       ? overlay_.insert(p)
                       : overlay_.insert(p, sponsor);
  invalidate_region_caches();
  if (tracer_.enabled() && span != obs::kNoSpan) {
    tracer_.arg(span, "node", static_cast<std::uint64_t>(x));
    tracer_.end_span(span, net_->now());
  }
  if (alive(x)) {
    // Position already taken (positions identify objects): no new node,
    // but the fictive churn may still have touched views.
    disseminate(sponsor == kNoNode ? x : sponsor);
    return;
  }
  register_node(x);
  disseminate(sponsor == kNoNode ? x : sponsor, /*ensure=*/x);
}

// ---------------------------------------------------------------------------
// Region queries (message level)
// ---------------------------------------------------------------------------

namespace {

/// Issuer-side match extraction: positions travel in the result entries,
/// so the issuer evaluates voronet::site_within_tolerance -- the ONE
/// site predicate the sequential layer also applies (a radius query is
/// the zero-length segment).
bool query_site_matches(const QuerySpec& spec, Vec2 pos) {
  const Vec2 b = spec.kind == QueryKind::kRange ? spec.b : spec.a;
  return site_within_tolerance(spec.a, b, pos, spec.tol);
}

}  // namespace

std::uint64_t ProtocolHarness::issue_range_query(NodeId from, Vec2 a, Vec2 b,
                                                 double tol, double delay) {
  VORONET_EXPECT(tol >= 0.0, "negative range tolerance");
  QuerySpec spec;
  spec.kind = QueryKind::kRange;
  spec.a = a;
  spec.b = b;
  spec.tol = tol;
  return issue_query(from, spec, delay);
}

std::uint64_t ProtocolHarness::issue_radius_query(NodeId from, Vec2 center,
                                                  double radius,
                                                  double delay) {
  VORONET_EXPECT(radius >= 0.0, "negative query radius");
  QuerySpec spec;
  spec.kind = QueryKind::kRadius;
  spec.a = center;
  spec.tol = radius;
  return issue_query(from, spec, delay);
}

std::uint64_t ProtocolHarness::issue_query(NodeId from, QuerySpec spec,
                                           double delay) {
  const std::uint64_t query_id = ++query_seq_;
  spec.issuer = from;
  QueryRecord& rec = query_records_[query_id];
  rec.spec = spec;
  query_runtime_[query_id];
  ++pending_queries_;
  net_->schedule(delay, [this, query_id] { start_query(query_id); });
  return query_id;
}

void ProtocolHarness::start_query(std::uint64_t query_id) {
  QueryRecord& rec = query_records_.at(query_id);
  rec.issued = net_->now();
  rec.epoch = 1;
  // Pin the issuer's identity: ids are recycled, so "the issuer is still
  // alive" must mean the same (id, position) pair, not just the id.
  QueryRuntime& rt = query_runtime_.at(query_id);
  if (alive(rec.spec.issuer)) {
    rt.issuer_known = true;
    rt.issuer_pos = slot(rec.spec.issuer).node.position();
  }
  if (tracer_.enabled()) {
    rt.root_span = tracer_.begin_span(net_->now(), "query", rec.spec.issuer);
    tracer_.arg(rt.root_span, "query", query_id);
    tracer_.arg(rt.root_span, "kind",
                rec.spec.kind == QueryKind::kRange ? "range" : "radius");
  }
  begin_epoch(query_id);
  arm_query_deadline(query_id);
}

void ProtocolHarness::begin_epoch(std::uint64_t query_id) {
  QueryRecord& rec = query_records_.at(query_id);
  if (roster_.empty()) {
    complete_query(query_id, {});  // nobody can serve anything
    return;
  }
  // The issuer injects the query at itself (or, if it departed between
  // issue and start -- or crashed between epochs -- at a random live
  // gateway: the out-of-band bootstrap contact of the join path).
  const NodeId entry = issuer_live(query_id)
                           ? rec.spec.issuer
                           : roster_[rng_.index(roster_.size())];
  QueryRuntime& rt = query_runtime_.at(query_id);
  if (tracer_.enabled()) {
    rt.epoch_span =
        tracer_.begin_span(net_->now(), "epoch", entry, rt.root_span);
    tracer_.arg(rt.epoch_span, "epoch", rec.epoch);
    tracer_.arg(rt.epoch_span, "entry", static_cast<std::uint64_t>(entry));
  }
  Message m;
  m.type = sim::MessageKind::kQuery;
  m.src = entry;
  m.dst = entry;
  m.point = rec.spec.target();
  m.version = query_id;
  m.epoch = rec.epoch;
  m.query = rec.spec;
  m.span = rt.epoch_span;
  net_->send(std::move(m));
}

bool ProtocolHarness::epoch_current(const Message& m) const {
  const auto it = query_records_.find(m.version);
  return it != query_records_.end() && !it->second.done &&
         m.epoch == it->second.epoch;
}

bool ProtocolHarness::entry_live(const ViewEntry& e) const {
  return alive(e.id) && slot(e.id).node.position() == e.pos;
}

bool ProtocolHarness::issuer_live(std::uint64_t query_id) const {
  const QueryRecord& rec = query_records_.at(query_id);
  const auto rt = query_runtime_.find(query_id);
  if (rt == query_runtime_.end() || !rt->second.issuer_known) return false;
  return entry_live({rec.spec.issuer, rt->second.issuer_pos});
}

void ProtocolHarness::reissue_query(std::uint64_t query_id) {
  const auto it = query_records_.find(query_id);
  if (it == query_records_.end() || it->second.done) return;
  QueryRuntime& rt = query_runtime_.at(query_id);
  if (rt.reissue_pending) return;  // several taints, one fresh epoch
  rt.reissue_pending = true;
  if (tracer_.enabled()) {
    const obs::SpanId t =
        tracer_.instant(net_->now(), "reissue_scheduled", -1, rt.root_span);
    tracer_.arg(t, "epoch", it->second.epoch);
  }
  // Give the repair a chance to land first: re-entering immediately would
  // mostly re-observe the same staleness and burn an epoch for nothing.
  const double delay =
      std::max(config_.failure_detect_delay, net_->retransmit_timeout());
  net_->schedule(delay, [this, query_id] {
    const auto rec = query_records_.find(query_id);
    if (rec == query_records_.end() || rec->second.done) return;
    QueryRuntime& runtime = query_runtime_.at(query_id);
    runtime.reissue_pending = false;
    runtime.stale_observed = false;
    ++rec->second.epoch;
    if (tracer_.enabled() && runtime.epoch_span != obs::kNoSpan) {
      tracer_.arg(runtime.epoch_span, "superseded", 1);
      tracer_.end_span(runtime.epoch_span, net_->now());
      runtime.epoch_span = obs::kNoSpan;
    }
    if (recorder_.enabled()) {
      recorder_.record(rec->second.spec.issuer, net_->now(),
                       obs::FlightEvent::kReissue, sim::MessageKind::kQuery,
                       kNoNode, query_id, rec->second.epoch);
    }
    // The old epoch's flood state dies here; its messages are filtered
    // out by the epoch checks, so they cannot resurrect it.
    query_flood_.erase(query_id);
    query_region_cache_.erase(query_id);
    begin_epoch(query_id);
  });
}

void ProtocolHarness::arm_query_deadline(std::uint64_t query_id) {
  {
    const auto rt = query_runtime_.find(query_id);
    if (rt == query_runtime_.end() || rt->second.deadline_armed) return;
    rt->second.deadline_armed = true;
  }
  net_->schedule(query_deadline_, [this, query_id] {
    const auto rec = query_records_.find(query_id);
    if (rec == query_records_.end() || rec->second.done) return;
    query_runtime_.at(query_id).deadline_armed = false;
    // Sweep the current flood for dead participants: a node that crashed
    // while holding subtree state usually betrays itself through its
    // children's abandoned transfers, but a subtree can die whole (every
    // member crashed) without leaving one -- this timer is the backstop
    // failure detector that keeps such a query live.
    const auto flood = query_flood_.find(query_id);
    bool dead = false;
    if (flood != query_flood_.end()) {
      for (const FloodEntry& e : flood->second.entries) {
        if (!alive(e.node)) {
          dead = true;
          break;
        }
      }
    }
    if (dead) reissue_query(query_id);
    arm_query_deadline(query_id);
  });
}

void ProtocolHarness::reroute_query(const Message& m) {
  if (!epoch_current(m)) return;
  if (roster_.empty()) {
    complete_query(m.version, {});
    return;
  }
  if (tracer_.enabled()) {
    tracer_.instant(net_->now(), "query_reroute", -1, m.span);
  }
  Message retry;
  retry.type = sim::MessageKind::kQuery;
  const NodeId entry = roster_[rng_.index(roster_.size())];
  retry.src = entry;
  retry.dst = entry;
  retry.point = m.query.target();
  retry.hops = m.hops + 1;
  retry.version = m.version;
  retry.epoch = m.epoch;
  retry.query = m.query;
  retry.span = m.span;
  net_->send(std::move(retry));
}

void ProtocolHarness::handle_query_route(const Message& m) {
  if (!epoch_current(m)) return;
  const auto rec = query_records_.find(m.version);
  if (!alive(m.dst)) {
    reroute_query(m);  // addressee departed while the query was in flight
    return;
  }
  const ProtocolNode::Route route =
      slot(m.dst).node.greedy_step(m.point, arena_);
  if (tracer_.enabled()) {
    const obs::SpanId hop =
        tracer_.instant(net_->now(), "route_hop", m.dst, m.span);
    tracer_.arg(hop, "hops", m.hops);
  }
  // Same TTL guard as the join chains: a legitimate greedy chain visits
  // distinct nodes, so longer ones mean a permanently stale entry is
  // bouncing the query; serving from here is safe (the flood still covers
  // whatever is reachable, and the differential harness grades it).
  const bool expired = m.hops > roster_.size() + 16;
  if (route.terminal || expired) {
    // One root per query: a twin chain (duplicate kQuery slip, or a
    // reroute racing its original) that terminates after a flood already
    // started must not root a second, partial flood -- its smaller final
    // aggregate could win the completion race and shadow the full one.
    const auto flood = query_flood_.find(m.version);
    if (flood != query_flood_.end() && !flood->second.empty()) return;
    rec->second.route_hops = m.hops;
    serve_query(m.version, m.dst, kNoNode, m.span);
    return;
  }
  Message fwd;
  fwd.type = sim::MessageKind::kQuery;
  fwd.src = m.dst;
  fwd.dst = route.next;
  fwd.point = m.point;
  fwd.hops = m.hops + 1;
  fwd.version = m.version;
  fwd.epoch = m.epoch;
  fwd.query = m.query;
  fwd.span = m.span;
  net_->send(std::move(fwd));
}

bool ProtocolHarness::query_region_qualifies(const QuerySpec& spec,
                                             NodeId o) const {
  // Substitution 1: the clipped-cell geometry a deployed object would
  // hold locally is read off the ground-truth tessellation.
  if (!overlay_.contains(o)) return false;
  const double tol2 = spec.tol * spec.tol;
  if (spec.kind == QueryKind::kRange) {
    return geo::dist2_region_to_segment(overlay_.tessellation(), o, spec.a,
                                        spec.b) <= tol2;
  }
  return geo::dist2_to_region(overlay_.tessellation(), o, spec.a) <= tol2;
}

void ProtocolHarness::serve_query(std::uint64_t query_id, NodeId node,
                                  NodeId parent, obs::SpanId parent_span) {
  QueryFlood& flood = query_flood_[query_id];
  QueryRecord& rec = query_records_.at(query_id);
  if (FloodEntry* existing = flood.find(node); existing != nullptr) {
    // Already served.  A forward from another branch is rejected (the
    // branch must not wait forever); a re-delivery from the node's own
    // flood parent -- a retransmission that slipped the transport dedup
    // -- is ignored, because the pending echo answers it and a rejection
    // racing ahead of that echo would book the whole subtree as empty.
    if (parent != kNoNode && parent != existing->parent) {
      if (tracer_.enabled()) {
        const obs::SpanId t =
            tracer_.instant(net_->now(), "duplicate_reject", node,
                            parent_span);
        tracer_.arg(t, "rejected_parent", static_cast<std::uint64_t>(parent));
      }
      Message reject;
      reject.type = sim::MessageKind::kQueryResult;
      reject.src = node;
      reject.dst = parent;
      reject.version = query_id;
      reject.epoch = rec.epoch;
      reject.query = rec.spec;
      reject.span = existing->span;
      net_->send(std::move(reject));
      ++rec.result_sends;
    }
    return;
  }
  FloodEntry& state = flood.emplace(node);
  state.parent = parent;
  if (tracer_.enabled()) {
    state.span = tracer_.begin_span(net_->now(), "serve", node, parent_span);
    tracer_.arg(state.span, "query", query_id);
    tracer_.arg(state.span, "epoch", rec.epoch);
  }
  if (recorder_.enabled()) {
    recorder_.record(node, net_->now(), obs::FlightEvent::kServe,
                     sim::MessageKind::kQueryForward, parent, query_id,
                     rec.epoch);
  }
  const ProtocolNode& self = slot(node).node;
  state.acc.push_back({node, self.position()});
  // Forward across every qualifying Voronoi adjacency of the LOCAL view,
  // except back to the parent.  Entries whose believed position no longer
  // matches the ground truth (departed peer, recycled id) cannot be
  // served through and are skipped -- exactly the coverage staleness
  // costs a deployment -- but a DEAD entry also means this view predates
  // a repair that is racing the flood, so the epoch is tainted and the
  // issuer will re-run the query over repaired views.
  FlatNodeMap<bool>& region_cache = query_region_cache_[query_id];
  for (const ViewEntry& e : self.vn(arena_)) {
    if (e.id == parent) continue;
    if (!overlay_.contains(e.id) || overlay_.position(e.id) != e.pos) {
      query_runtime_.at(query_id).stale_observed = true;
      if (tracer_.enabled()) {
        const obs::SpanId t =
            tracer_.instant(net_->now(), "stale_entry", node, state.span);
        tracer_.arg(t, "entry", static_cast<std::uint64_t>(e.id));
      }
      continue;
    }
    const bool* cached = region_cache.find(e.id);
    const bool qualifies =
        cached != nullptr
            ? *cached
            : region_cache.insert(e.id,
                                  query_region_qualifies(rec.spec, e.id));
    if (!qualifies) continue;
    Message fwd;
    fwd.type = sim::MessageKind::kQueryForward;
    fwd.src = node;
    fwd.dst = e.id;
    fwd.version = query_id;
    fwd.epoch = rec.epoch;
    fwd.query = rec.spec;
    fwd.span = state.span;
    net_->send(std::move(fwd));
    ++rec.forward_sends;
    ++state.pending;
  }
  if (state.pending == 0) finish_query_node(query_id, node);
}

void ProtocolHarness::fail_branch(const Message& m) {
  // The branch's target cell is gone: its region has been -- or is being
  // -- redistributed.  When the sender still lives and holds flood
  // state, close the branch with an explicit abort so its subtree
  // terminates (tainting the epoch); when the sender itself is gone too,
  // its whole subtree died with it -- only a fresh epoch can recover.
  if (!epoch_current(m)) return;
  if (alive(m.src)) {
    apply_query_reply(m.version, m.src, m.dst, {}, /*aborted=*/true);
  } else {
    reissue_query(m.version);
  }
}

void ProtocolHarness::handle_query_forward(const Message& m) {
  if (!epoch_current(m)) {
    return;  // superseded epoch, or a late dedup slip after completion
  }
  if (!alive(m.dst)) {
    fail_branch(m);  // the addressed cell departed with the forward in flight
    return;
  }
  serve_query(m.version, m.dst, m.src, m.span);
}

void ProtocolHarness::finish_query_node(std::uint64_t query_id,
                                        NodeId node) {
  QueryRecord& rec = query_records_.at(query_id);
  FloodEntry& state = *query_flood_.at(query_id).find(node);
  if (tracer_.enabled() && state.span != obs::kNoSpan) {
    tracer_.arg(state.span, "covered", state.acc.size());
    if (state.aborted) tracer_.arg(state.span, "aborted", 1);
    tracer_.end_span(state.span, net_->now());
  }
  if (state.parent != kNoNode) {
    // Subtree done: echo the covered cells -- as an abort echo when a
    // branch below failed over, so the mark reaches the root.
    Message echo = net_->draft();
    echo.type = state.aborted ? sim::MessageKind::kQueryAbort
                              : sim::MessageKind::kQueryResult;
    echo.src = node;
    echo.dst = state.parent;
    echo.version = query_id;
    echo.epoch = rec.epoch;
    echo.query = rec.spec;
    echo.entries = state.acc;
    echo.span = state.span;
    net_->send(std::move(echo));
    ++rec.result_sends;
    return;
  }
  // Flood root.  An aborted or tainted epoch is not worth shipping: its
  // aggregate straddles a repair.  Re-issue instead.
  if (state.aborted || query_runtime_.at(query_id).stale_observed) {
    reissue_query(query_id);
    return;
  }
  // Ship (or locally deliver) the final aggregate.  A crashed issuer is
  // the out-of-band client reconnecting elsewhere: the record completes
  // straight from the root's copy.
  if (node == rec.spec.issuer || !issuer_live(query_id)) {
    complete_query(query_id, std::move(state.acc));
    return;
  }
  Message fin = net_->draft();
  fin.type = sim::MessageKind::kQueryResult;
  fin.src = node;
  fin.dst = rec.spec.issuer;
  fin.version = query_id;
  fin.epoch = rec.epoch;
  fin.query = rec.spec;
  fin.query_final = true;
  fin.entries = state.acc;
  fin.span = state.span;
  net_->send(std::move(fin));
  ++rec.result_sends;
}

void ProtocolHarness::apply_query_reply(std::uint64_t query_id, NodeId node,
                                        NodeId child,
                                        const std::vector<ViewEntry>& subtree,
                                        bool aborted) {
  const auto rec = query_records_.find(query_id);
  if (rec == query_records_.end() || rec->second.done) return;
  const auto flood = query_flood_.find(query_id);
  if (flood == query_flood_.end()) return;
  FloodEntry* state = flood->second.find(node);
  if (state == nullptr) return;  // node departed mid-query
  if (!alive(node)) {
    // The waiting node itself is dead: nobody can echo its subtree any
    // more, whatever this reply says.  Re-issue.
    reissue_query(query_id);
    return;
  }
  if (std::find(state->replied.begin(), state->replied.end(), child) !=
      state->replied.end()) {
    return;  // duplicate reply slip
  }
  state->replied.push_back(child);
  if (aborted) {
    state->aborted = true;
    query_runtime_.at(query_id).stale_observed = true;
    ++rec->second.branch_failovers;
    if (tracer_.enabled()) {
      const obs::SpanId t =
          tracer_.instant(net_->now(), "branch_abort", node, state->span);
      tracer_.arg(t, "child", static_cast<std::uint64_t>(child));
    }
    if (recorder_.enabled()) {
      recorder_.record(node, net_->now(), obs::FlightEvent::kBranchAbort,
                       sim::MessageKind::kQueryAbort, child, query_id,
                       rec->second.epoch);
    }
  }
  state->acc.insert(state->acc.end(), subtree.begin(), subtree.end());
  VORONET_DCHECK(state->pending > 0);
  --state->pending;
  if (state->pending == 0) finish_query_node(query_id, node);
}

void ProtocolHarness::handle_query_result(const Message& m) {
  if (!epoch_current(m)) return;
  if (m.query_final) {
    complete_query(m.version, m.entries);
    return;
  }
  apply_query_reply(m.version, m.dst, m.src, m.entries,
                    m.type == sim::MessageKind::kQueryAbort);
}

void ProtocolHarness::complete_query(std::uint64_t query_id,
                                     std::vector<ViewEntry> owners) {
  const auto it = query_records_.find(query_id);
  if (it == query_records_.end()) return;  // record already dropped
  QueryRecord& rec = it->second;
  if (rec.done) return;  // exactly-once (a twin root can race)
  // Completion gate: if the epoch observed a repair, or the aggregate
  // names a cell that is no longer live (it crashed or left after
  // echoing), the result straddles a repair -- re-run it over repaired
  // views instead of handing the client a set no topology ever served.
  if (roster_.empty()) {
    owners.clear();  // everyone is gone; the true result set is empty
  } else {
    const QueryRuntime& rt = query_runtime_.at(query_id);
    const bool stale =
        rt.stale_observed ||
        std::any_of(owners.begin(), owners.end(),
                    [this](const ViewEntry& e) { return !entry_live(e); });
    if (stale) {
      reissue_query(query_id);
      return;
    }
  }
  rec.issuer_lost = !issuer_live(query_id);
  rec.done = true;
  rec.completed = net_->now();
  // One operation record per QUERY, not per epoch: re-issues are internal
  // retries of the same client operation, so the per-operation message
  // mean must absorb them rather than dilute itself with extra records
  // (pinned by obs_test.CountingModelBillsReissuedQueryOnce).
  net_->metrics().record_operation(sim::OperationKind::kQuery, rec.route_hops,
                                  rec.total_messages());
  {
    const QueryRuntime& rt = query_runtime_.at(query_id);
    if (tracer_.enabled()) {
      if (rt.epoch_span != obs::kNoSpan) {
        tracer_.end_span(rt.epoch_span, net_->now());
      }
      if (rt.root_span != obs::kNoSpan) {
        tracer_.arg(rt.root_span, "epochs", rec.epoch);
        tracer_.arg(rt.root_span, "route_hops", rec.route_hops);
        tracer_.arg(rt.root_span, "failovers", rec.branch_failovers);
        tracer_.arg(rt.root_span, "owners", owners.size());
        tracer_.end_span(rt.root_span, net_->now());
      }
    }
    if (recorder_.enabled()) {
      recorder_.record(rec.spec.issuer, net_->now(),
                       obs::FlightEvent::kComplete,
                       sim::MessageKind::kQueryResult, kNoNode, query_id,
                       rec.epoch);
    }
  }
  std::sort(owners.begin(), owners.end(),
            [](const ViewEntry& x, const ViewEntry& y) { return x.id < y.id; });
  for (const ViewEntry& e : owners) {
    if (query_site_matches(rec.spec, e.pos)) rec.matches.push_back(e.id);
  }
  rec.owners = std::move(owners);
  query_flood_.erase(query_id);
  query_region_cache_.erase(query_id);
  query_runtime_.erase(query_id);
  VORONET_DCHECK(pending_queries_ > 0);
  --pending_queries_;
  // Last, with all per-query state settled: the handler may issue fresh
  // queries or drop completed records.
  if (on_query_complete_) on_query_complete_(query_id);
}

void ProtocolHarness::drop_completed_queries() {
  for (auto it = query_records_.begin(); it != query_records_.end();) {
    it = it->second.done ? query_records_.erase(it) : std::next(it);
  }
}

void ProtocolHarness::execute_leave(NodeId x) {
  if (!alive(x) || !overlay_.contains(x)) return;
  const Vec2 pos = overlay_.position(x);

  // Departure notifications go to the node's LOCAL contacts (what the
  // paper's object actually knows), not the ground truth.
  const ProtocolNode& self = slot(x).node;
  std::vector<NodeId> notified;
  for (const std::span<const ViewEntry> component :
       {self.vn(arena_), self.cn(arena_)}) {
    for (const ViewEntry& e : component) notified.push_back(e.id);
  }
  std::sort(notified.begin(), notified.end());
  notified.erase(std::unique(notified.begin(), notified.end()),
                 notified.end());
  for (const NodeId peer : notified) {
    if (peer == x || !alive(peer)) continue;
    Message m;
    m.type = sim::MessageKind::kLeaveNotify;
    m.src = x;
    m.dst = peer;
    m.point = pos;
    net_->send(std::move(m));
  }

  // The closest live former Voronoi neighbour leads the repair (the
  // paper's RemoveVoronoiRegion heir).
  NodeId sponsor = kNoNode;
  for (const NodeId y : overlay_.view(x).vn) {
    if (alive(y)) {
      sponsor = y;
      break;
    }
  }
  deregister_node(x);
  overlay_.remove(x);
  invalidate_region_caches();
  if (sponsor == kNoNode) {
    // x was the last node (or its whole neighbourhood is gone): nobody
    // left to update.
    (void)overlay_.take_touched_views();
    return;
  }
  disseminate(sponsor);
}

// ---------------------------------------------------------------------------
// Dissemination
// ---------------------------------------------------------------------------

std::vector<ViewEntry> ProtocolHarness::authoritative_vn(NodeId o) const {
  std::vector<ViewEntry> out;
  const NodeView& view = overlay_.view(o);
  out.reserve(view.vn.size());
  for (const ObjectId nb : view.vn) out.push_back({nb, overlay_.position(nb)});
  return out;
}

std::vector<ViewEntry> ProtocolHarness::authoritative_cn(NodeId o) const {
  std::vector<ViewEntry> out;
  const NodeView& view = overlay_.view(o);
  out.reserve(view.cn.size());
  for (const ObjectId c : view.cn) out.push_back({c, overlay_.position(c)});
  return out;
}

std::vector<ViewEntry> ProtocolHarness::authoritative_lr(NodeId o) const {
  std::vector<ViewEntry> out;
  const NodeView& view = overlay_.view(o);
  out.reserve(view.lr.size());
  for (const LongLink& link : view.lr) {
    // Dangling holders (possible while a crash's failure-detection
    // window is open) are not usable view content and are not shipped;
    // once every repair has quiesced, verify_views() reports any that
    // remain as divergence instead of silently tolerating them here.
    if (link.neighbor == kNoObject || !overlay_.contains(link.neighbor)) {
      continue;
    }
    out.push_back({link.neighbor, overlay_.position(link.neighbor)});
  }
  return out;
}

void ProtocolHarness::disseminate(NodeId src, NodeId ensure) {
  Overlay::TouchedViews touched = overlay_.take_touched_views();
  if (ensure != kNoNode) {
    touched.vn.push_back(ensure);
    touched.cn.push_back(ensure);
    touched.lr.push_back(ensure);
  }
  ++op_seq_;
  const auto ship = [&](const std::vector<ObjectId>& ids,
                        sim::MessageKind kind, auto&& extract,
                        ViewSpan SentState::*span_slot,
                        bool SentState::*known_slot) {
    for (const ObjectId id : ids) {
      if (!alive(id)) continue;
      scratch_entries_.clear();
      extract(id, scratch_entries_);
      SentState& sent = slot(id).sent;
      if (sent.*known_slot &&
          same_entries(arena_.view(sent.*span_slot), scratch_entries_)) {
        continue;  // touch restored the value
      }
      Message m = net_->draft();
      m.type = kind;
      m.src = src;
      m.dst = id;
      m.version = op_seq_;
      m.entries.assign(scratch_entries_.begin(), scratch_entries_.end());
      arena_.assign(sent.*span_slot, scratch_entries_);
      sent.*known_slot = true;
      net_->send(std::move(m));
    }
  };
  ship(
      touched.vn, sim::MessageKind::kVoronoiUpdate,
      [&](NodeId o, std::vector<ViewEntry>& out) {
        const NodeView& view = overlay_.view(o);
        out.reserve(view.vn.size());
        for (const ObjectId nb : view.vn) {
          out.push_back({nb, overlay_.position(nb)});
        }
      },
      &SentState::vn, &SentState::vn_known);
  ship(
      touched.cn, sim::MessageKind::kCloseNeighbor,
      [&](NodeId o, std::vector<ViewEntry>& out) {
        const NodeView& view = overlay_.view(o);
        out.reserve(view.cn.size());
        for (const ObjectId c : view.cn) {
          out.push_back({c, overlay_.position(c)});
        }
      },
      &SentState::cn, &SentState::cn_known);
  ship(
      touched.lr, sim::MessageKind::kLongLinkBind,
      [&](NodeId o, std::vector<ViewEntry>& out) {
        const NodeView& view = overlay_.view(o);
        out.reserve(view.lr.size());
        for (const LongLink& link : view.lr) {
          if (link.neighbor == kNoObject ||
              !overlay_.contains(link.neighbor)) {
            continue;
          }
          out.push_back({link.neighbor, overlay_.position(link.neighbor)});
        }
      },
      &SentState::lr, &SentState::lr_known);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

void ProtocolHarness::register_node(NodeId x) {
  const auto idx = static_cast<std::size_t>(x);
  if (idx >= slots_.size()) slots_.resize(idx + 1);
  NodeSlot& s = slots_[idx];
  VORONET_DCHECK(!s.live);
  // Vertex ids are recycled by the ground truth: a new node may reuse
  // the id of a previously departed one, so clear the transport's dead
  // mark and abandon predecessor-era transfers.  Fresh ids skip the
  // revive (nothing to clean, and revive scans the in-flight table).
  if (s.dead_mark) {
    s.dead_mark = false;
    net_->revive(x);
  }
  ++s.generation;
  ++topology_version_;
  s.node = ProtocolNode(x, overlay_.position(x));
  s.roster_pos = static_cast<std::uint32_t>(roster_.size());
  s.live = true;
  ++live_nodes_;
  roster_.push_back(x);
}

void ProtocolHarness::deregister_node(NodeId x) {
  NodeSlot& s = slot(x);
  VORONET_DCHECK(s.live);
  // Every span the slot holds goes back to the arena; the recycled slot
  // must inherit nothing (pinned by the slot-recycling test).
  s.node.release(arena_);
  arena_.release(s.sent.vn);
  arena_.release(s.sent.cn);
  arena_.release(s.sent.lr);
  s.sent.vn_known = s.sent.cn_known = s.sent.lr_known = false;
  s.live = false;
  s.dead_mark = true;
  ++topology_version_;
  --live_nodes_;
  const std::uint32_t idx = s.roster_pos;
  slot(roster_.back()).roster_pos = idx;
  roster_[idx] = roster_.back();
  roster_.pop_back();
}

// ---------------------------------------------------------------------------
// Differential verification
// ---------------------------------------------------------------------------

ProtocolHarness::VerifyReport ProtocolHarness::verify_views() const {
  VerifyReport report;
  const bool strict = !repair_in_flight();
  for (const NodeId id : roster_) {
    const ProtocolNode& node = slot(id).node;
    ++report.checked;
    const bool ok = overlay_.contains(id) &&
                    node.position() == overlay_.position(id) &&
                    same_entries(node.vn(arena_), authoritative_vn(id)) &&
                    same_entries(node.cn(arena_), authoritative_cn(id)) &&
                    same_entries(node.lr(arena_), authoritative_lr(id));
    if (!ok) {
      ++report.stale;
      if (report.stale_ids.size() < 8) report.stale_ids.push_back(id);
    }
    if (strict && overlay_.contains(id)) {
      // With no repair in flight, a dead long-link holder in the ground
      // truth is real divergence (authoritative_lr would mask it).
      for (const LongLink& link : overlay_.view(id).lr) {
        if (link.neighbor == kNoObject || !overlay_.contains(link.neighbor)) {
          ++report.dangling;
        }
      }
    }
  }
  report.missing = overlay_.size() - live_nodes_;
  return report;
}

// ---------------------------------------------------------------------------
// Memory accounting
// ---------------------------------------------------------------------------

ProtocolHarness::MemoryBreakdown ProtocolHarness::memory_breakdown() const {
  MemoryBreakdown b;
  b.view_bytes = arena_.bytes();
  b.slot_bytes = slots_.capacity() * sizeof(NodeSlot) +
                 roster_.capacity() * sizeof(NodeId);
  b.transport_bytes = net_->memory_bytes();
  for (const auto& [id, flood] : query_flood_) {
    b.query_bytes +=
        flood.index.bytes() + flood.entries.capacity() * sizeof(FloodEntry);
    for (const FloodEntry& e : flood.entries) {
      b.query_bytes += e.acc.capacity() * sizeof(ViewEntry) +
                       e.replied.capacity() * sizeof(NodeId);
    }
  }
  for (const auto& [id, cache] : query_region_cache_) {
    b.query_bytes += cache.bytes();
  }
  for (const auto& [id, rec] : query_records_) {
    b.query_bytes += rec.owners.capacity() * sizeof(ViewEntry) +
                     rec.matches.capacity() * sizeof(NodeId);
  }
  return b;
}

}  // namespace voronet::protocol
