#include "protocol/node.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace voronet::protocol {

ProtocolNode::Route ProtocolNode::greedy_step(Vec2 target,
                                              const ViewArena& arena) const {
  double best = dist2(position_, target);
  NodeId next = kNoNode;
  const auto consider = [&](const ViewEntry& e) {
    const double d = dist2(e.pos, target);
    // Strict improvement over the current best; ties break towards the
    // smaller id so routing is deterministic regardless of scan order.
    if (d < best || (d == best && next != kNoNode && e.id < next)) {
      best = d;
      next = e.id;
    }
  };
  for (const ViewEntry& e : arena.view(vn_)) consider(e);
  for (const ViewEntry& e : arena.view(cn_)) consider(e);
  for (const ViewEntry& e : arena.view(lr_)) consider(e);
  if (next == kNoNode) return {true, kNoNode};
  return {false, next};
}

bool ProtocolNode::apply_update(const Message& m, ViewArena& arena) {
  const auto apply = [&](ViewSpan& component, std::uint64_t& version) {
    if (m.version <= version) return false;
    arena.assign(component, m.entries);
    version = m.version;
    return true;
  };
  switch (m.type) {
    case sim::MessageKind::kVoronoiUpdate:
      return apply(vn_, vn_version_);
    case sim::MessageKind::kCloseNeighbor:
      return apply(cn_, cn_version_);
    case sim::MessageKind::kLongLinkBind:
      return apply(lr_, lr_version_);
    default:
      VORONET_EXPECT(false, "not a view-update message");
  }
  return false;
}

void ProtocolNode::forget_peer(NodeId peer, Vec2 peer_position,
                               ViewArena& arena) {
  const auto drop = [&](ViewSpan& component) {
    const std::span<ViewEntry> view = arena.mutate(component);
    const auto end = std::remove_if(view.begin(), view.end(),
                                    [&](const ViewEntry& e) {
                                      return e.id == peer &&
                                             e.pos == peer_position;
                                    });
    arena.shrink(component,
                 static_cast<std::size_t>(end - view.begin()));
  };
  drop(vn_);
  drop(cn_);
  drop(lr_);
}

void ProtocolNode::release(ViewArena& arena) {
  arena.release(vn_);
  arena.release(cn_);
  arena.release(lr_);
  vn_version_ = cn_version_ = lr_version_ = 0;
}

}  // namespace voronet::protocol
