// Wire messages of the message-level protocol engine.
//
// The sequential overlay (src/voronet) substitutes message *accounting*
// for messages (DESIGN.md, Substitution 2).  The protocol engine removes
// that substitution: per-node state machines (protocol::ProtocolNode)
// exchange these typed messages through protocol::Network, which applies
// latency, loss and failure injection on top of sim::EventQueue.  Message
// kinds reuse sim::MessageKind so the per-type counters of sim::Metrics
// cover both simulation styles with one taxonomy.
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/vec2.hpp"
#include "obs/trace.hpp"
#include "sim/metrics.hpp"
#include "voronet/object_id.hpp"

namespace voronet::protocol {

/// Protocol-level node address.  IS the overlay's ObjectId (the ground
/// truth assigns ids; the protocol layer adopts them so differential
/// comparison is direct), and the invalid sentinel is the overlay's own
/// -- one definition in voronet/object_id.hpp instead of a parallel
/// literal that happened to coincide.
using NodeId = ObjectId;
inline constexpr NodeId kNoNode = kNoObject;
/// "No transport slot" sentinel for Message::transfer_slot.
inline constexpr std::uint32_t kNoTransferSlot = 0xffffffffu;
static_assert(kNoNode == kNoObject &&
                  kNoNode == geo::DelaunayTriangulation::kNoVertex,
              "the protocol sentinel must be the overlay's invalid id");

/// One remote-peer entry of a local view: the peer's id plus the position
/// the local node believes it has.  Positions are immutable per live
/// object, but ids are recycled across departures, so comparisons must
/// treat the pair as the identity.
struct ViewEntry {
  NodeId id = kNoNode;
  Vec2 pos;

  friend bool operator==(const ViewEntry&, const ViewEntry&) = default;
};

/// Which region-query style a kQuery / kQueryForward / kQueryResult
/// message serves (voronet::range_query / radius_query at message level).
enum class QueryKind : std::uint8_t {
  kRange,   ///< segment [a, b] inflated by `tol`
  kRadius,  ///< disk around `a` of radius `tol` (b unused)
};

/// Region-query payload carried by the three query message kinds.  The
/// spec travels with every hop so any node can evaluate the geometric
/// tests; `issuer` is where the final aggregate returns.
struct QuerySpec {
  QueryKind kind = QueryKind::kRadius;
  Vec2 a;            ///< segment start / disk centre
  Vec2 b;            ///< segment end (kRange only)
  double tol = 0.0;  ///< tolerance (kRange) / radius (kRadius)
  NodeId issuer = kNoNode;

  /// The greedy routing target: the point whose cell owner roots the
  /// flood (the paper routes a range query to one endpoint's owner).
  [[nodiscard]] Vec2 target() const { return a; }
};

/// A network message.  One struct covers every kind (this is a simulator:
/// clarity beats compactness); which fields are meaningful depends on
/// `type`:
///   * kJoin / kRouteForward -- point (the join position), hops, and
///     version carrying the join-chain id (completion is exactly-once
///     even when a chain is rerouted around a crashed hop);
///   * kVnUpdate (kVoronoiUpdate), kCloseGather (kCloseNeighbor),
///     kLongLinkTransfer (kLongLinkBind) -- entries (the authoritative
///     component content) and version (monotone per target component;
///     receivers discard stale or duplicate updates, which makes the
///     updates idempotent under retransmission and reordering);
///   * kLeaveNotify -- src announces its departure;
///   * kQuery -- a region query greedy-routing towards query.target();
///     version carries the query id, hops the chain length so far;
///   * kQueryForward -- cell-to-cell flood forward of the query from a
///     served cell to a neighbouring cell whose region qualifies;
///   * kQueryResult -- with query_final false, the aggregation echo (or
///     duplicate rejection) from a flood child back to its parent,
///     entries carrying the served cells of the finished subtree; with
///     query_final true, the root's aggregate to query.issuer;
///   * kQueryAbort -- the echo of a subtree that lost a branch to a
///     crash-stop failure: entries carry the cells the subtree still
///     COVERED, and the abort mark propagates to the flood root so the
///     issuer re-issues the query under a fresh epoch;
///   * kAck -- transport-internal, never reaches a node.
///
/// Query messages additionally carry `epoch`: the issuer re-issues a
/// query whose flood observed a crash or an in-flight repair, and every
/// handler discards messages whose epoch is not the query's current one,
/// so a stale echo from a failed epoch can never corrupt the fresh
/// flood's aggregate.
struct Message {
  sim::MessageKind type = sim::MessageKind::kRouteForward;
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  std::uint64_t version = 0;
  Vec2 point;
  std::uint32_t hops = 0;
  std::vector<ViewEntry> entries;
  QuerySpec query;
  bool query_final = false;
  std::uint32_t epoch = 0;  ///< query flood epoch (query kinds only)

  // Transport bookkeeping (owned by protocol::Network).
  std::uint64_t transfer_id = 0;  ///< unique per logical send, 0 = unset
  /// Transfer-slot index in the transport's slot vector; pure routing
  /// shortcut for acks/timers (the monotone transfer_id stays the
  /// transfer's identity -- the retransmit jitter hash is keyed by it,
  /// so replays depend on its numbering, never on slot recycling).
  std::uint32_t transfer_slot = kNoTransferSlot;

  /// Trace context (obs::Tracer): the span this message is causally part
  /// of -- the sender's serve/epoch/join span.  Receivers parent their
  /// events under it, which is what turns per-node events into one causal
  /// tree per query.  kNoSpan while tracing is off; never read by any
  /// protocol decision, so replays are untouched by whether a run traced.
  obs::SpanId span = obs::kNoSpan;
};

}  // namespace voronet::protocol
