// Wire messages of the message-level protocol engine.
//
// The sequential overlay (src/voronet) substitutes message *accounting*
// for messages (DESIGN.md, Substitution 2).  The protocol engine removes
// that substitution: per-node state machines (protocol::ProtocolNode)
// exchange these typed messages through protocol::Network, which applies
// latency, loss and failure injection on top of sim::EventQueue.  Message
// kinds reuse sim::MessageKind so the per-type counters of sim::Metrics
// cover both simulation styles with one taxonomy.
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/vec2.hpp"
#include "sim/metrics.hpp"

namespace voronet::protocol {

/// Protocol-level node address.  Equals the overlay's ObjectId (the ground
/// truth assigns ids; the protocol layer adopts them so differential
/// comparison is direct).
using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -2;

/// One remote-peer entry of a local view: the peer's id plus the position
/// the local node believes it has.  Positions are immutable per live
/// object, but ids are recycled across departures, so comparisons must
/// treat the pair as the identity.
struct ViewEntry {
  NodeId id = kNoNode;
  Vec2 pos;

  friend bool operator==(const ViewEntry&, const ViewEntry&) = default;
};

/// A network message.  One struct covers every kind (this is a simulator:
/// clarity beats compactness); which fields are meaningful depends on
/// `type`:
///   * kJoin / kRouteForward -- point (the join position), hops, and
///     version carrying the join-chain id (completion is exactly-once
///     even when a chain is rerouted around a crashed hop);
///   * kVnUpdate (kVoronoiUpdate), kCloseGather (kCloseNeighbor),
///     kLongLinkTransfer (kLongLinkBind) -- entries (the authoritative
///     component content) and version (monotone per target component;
///     receivers discard stale or duplicate updates, which makes the
///     updates idempotent under retransmission and reordering);
///   * kLeaveNotify -- src announces its departure;
///   * kAck -- transport-internal, never reaches a node.
struct Message {
  sim::MessageKind type = sim::MessageKind::kRouteForward;
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  std::uint64_t version = 0;
  Vec2 point;
  std::uint32_t hops = 0;
  std::vector<ViewEntry> entries;

  // Transport bookkeeping (owned by protocol::Network).
  std::uint64_t transfer_id = 0;  ///< unique per logical send, 0 = unset
};

}  // namespace voronet::protocol
