// Shared arena for view-entry spans.
//
// Every ProtocolNode view component (vn / cn / lr) and every sent-state
// cache line used to be its own heap vector: three to six allocations
// per node, scattered across the heap, each carrying malloc headers and
// unused capacity.  At the million-node scale ROADMAP item 1 targets,
// that is the dominant per-node cost.  The arena replaces them with
// spans into one contiguous store:
//
//   * allocation is by power-of-two size class with a per-class free
//     list, so a span's storage is recycled in O(1) when a node departs
//     or a view shrinks past its class;
//   * handles are (offset, length, class) triples -- the store may grow
//     (vector reallocation), so spans are resolved through the arena on
//     every access and raw pointers are never retained across an
//     assign();
//   * a span whose content fits its current class is rewritten in
//     place: the steady-state view update (same neighbour count, new
//     content) allocates nothing.
//
// Ownership rule: the arena does not track owners.  Whoever holds a
// ViewSpan must release() it exactly once (ProtocolHarness's slot table
// does this when a node deregisters).  Nothing here affects replay
// determinism -- the arena is pure storage; iteration order over any
// view is the span's element order, which is the order the content was
// written in.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/expect.hpp"
#include "protocol/message.hpp"

namespace voronet::protocol {

/// Handle to a ViewEntry span in a ViewArena.  Value-semantic and
/// trivially copyable; default-constructed = empty, no storage.
struct ViewSpan {
  static constexpr std::uint8_t kNullClass = 0xff;

  std::uint32_t off = 0;
  std::uint32_t len = 0;
  std::uint8_t cls = kNullClass;  ///< capacity = 1 << cls; kNullClass = none

  [[nodiscard]] bool allocated() const { return cls != kNullClass; }
  [[nodiscard]] std::uint32_t capacity() const {
    return allocated() ? (1u << cls) : 0u;
  }
};

class ViewArena {
 public:
  [[nodiscard]] std::span<const ViewEntry> view(ViewSpan s) const {
    return {store_.data() + s.off, s.len};
  }
  /// Mutable access for in-place edits (forget_peer); pair with
  /// shrink() when elements are removed.
  [[nodiscard]] std::span<ViewEntry> mutate(ViewSpan s) {
    return {store_.data() + s.off, s.len};
  }

  /// Replace the span's content.  Reuses the span's storage when the new
  /// length fits its size class, otherwise releases it and claims a
  /// free-listed (or fresh) block of the right class.
  void assign(ViewSpan& s, const ViewEntry* data, std::size_t n) {
    if (n == 0) {
      release(s);
      return;
    }
    const std::uint8_t cls = size_class(n);
    if (!s.allocated() || s.cls != cls) {
      release(s);
      s.off = acquire(cls);
      s.cls = cls;
    }
    live_ += n;
    live_ -= s.len;
    s.len = static_cast<std::uint32_t>(n);
    std::copy(data, data + n, store_.begin() + s.off);
  }
  void assign(ViewSpan& s, const std::vector<ViewEntry>& v) {
    assign(s, v.data(), v.size());
  }

  /// Drop trailing elements after an in-place removal; the storage class
  /// is kept (a shrunken view usually regrows to the same degree).
  void shrink(ViewSpan& s, std::size_t new_len) {
    VORONET_DCHECK(new_len <= s.len);
    live_ -= s.len - new_len;
    s.len = static_cast<std::uint32_t>(new_len);
    if (s.len == 0) release(s);
  }

  /// Return the span's storage to its class free list.
  void release(ViewSpan& s) {
    if (s.allocated()) {
      free_[s.cls].push_back(s.off);
      live_ -= s.len;
    }
    s = ViewSpan{};
  }

  /// Entries currently referenced by live spans.
  [[nodiscard]] std::size_t live_entries() const { return live_; }
  /// Bytes held by the arena (store + free lists).
  [[nodiscard]] std::size_t bytes() const {
    std::size_t b = store_.capacity() * sizeof(ViewEntry);
    for (const auto& f : free_) b += f.capacity() * sizeof(std::uint32_t);
    return b;
  }

 private:
  static constexpr std::size_t kClasses = 24;  // spans up to 2^23 entries

  [[nodiscard]] static std::uint8_t size_class(std::size_t n) {
    std::uint8_t cls = 2;  // minimum block: 4 entries
    while ((std::size_t{1} << cls) < n) ++cls;
    VORONET_EXPECT(cls < kClasses, "view span too large for the arena");
    return cls;
  }

  [[nodiscard]] std::uint32_t acquire(std::uint8_t cls) {
    auto& freelist = free_[cls];
    if (!freelist.empty()) {
      const std::uint32_t off = freelist.back();
      freelist.pop_back();
      return off;
    }
    const std::size_t off = store_.size();
    store_.resize(off + (std::size_t{1} << cls));
    return static_cast<std::uint32_t>(off);
  }

  std::vector<ViewEntry> store_;
  std::vector<std::uint32_t> free_[kClasses];
  std::size_t live_ = 0;
};

}  // namespace voronet::protocol
