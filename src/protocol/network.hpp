// Message router of the protocol engine: owns delivery.
//
// Every transmission is scheduled through sim::EventQueue with a delay
// drawn from the LatencyModel, may be lost (drop probability, partition
// filter, crashed destination), and is counted per message type in a
// sim::Metrics instance.  Non-ack messages are delivered reliably: the
// receiving side acknowledges, the sender retransmits on a cancellable
// timeout until acknowledged (or until the destination is observed
// crashed / the retry cap is hit).  Duplicate arrivals -- retransmission
// after a lost ack -- are suppressed by per-receiver transfer-id
// de-duplication (pruned when the transfer settles, so the table is
// bounded by the in-flight count; a retransmission already in flight at
// settle time can occasionally slip through, which the idempotent node
// layer absorbs).  Counters record the real wire traffic.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"
#include "protocol/latency.hpp"
#include "protocol/message.hpp"
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"

namespace voronet::protocol {

struct NetworkConfig {
  LatencyModel latency = LatencyModel::fixed(0.0);
  /// Probability that any single transmission (data or ack) is lost.
  double drop_probability = 0.0;
  /// Base retransmission timeout; 0 derives one from the latency model
  /// (two high-quantile one-way delays plus slack).
  double retransmit_timeout = 0.0;
  /// Retransmission backoff: attempt k waits
  /// min(rto * backoff_factor^(k-1), rto_cap) plus deterministic jitter.
  /// A fixed timeout under correlated loss (a loss burst, a latency
  /// spike) synchronises every retransmitter into a storm; the capped
  /// exponential spreads them out while staying responsive to single
  /// losses.  1.0 restores the fixed-RTO behaviour.
  double backoff_factor = 2.0;
  /// Backoff ceiling; 0 derives 16x the base timeout.
  double rto_cap = 0.0;
  /// Deterministic jitter as a fraction of the armed timeout: the actual
  /// wait is scaled by a factor in [1 - jitter/2, 1 + jitter/2] hashed
  /// from (transfer id, attempt) -- no Rng stream is consumed, so the
  /// delivery randomness is unperturbed and replays stay bit-identical.
  double jitter = 0.25;
  /// Give up on a reliable transfer after this many retransmissions;
  /// 0 = keep retrying (transfers to crashed destinations are abandoned
  /// at the first timeout regardless).
  std::size_t max_retries = 0;
  std::uint64_t seed = 0x5eedULL;
};

/// Wire-level accounting, beyond the per-type counters in sim::Metrics.
struct NetworkStats {
  std::uint64_t sends = 0;          ///< logical send() calls
  std::uint64_t transmissions = 0;  ///< wire attempts incl. retransmits+acks
  std::uint64_t delivered = 0;      ///< messages handed to the sink
  std::uint64_t duplicates = 0;     ///< arrivals suppressed by dedup
  std::uint64_t dropped = 0;        ///< lost to loss, partition or crash
  std::uint64_t retransmits = 0;
  std::uint64_t abandoned = 0;      ///< reliable transfers given up
  std::uint64_t acks = 0;
  std::uint64_t injected_duplicates = 0;  ///< duplication-window copies
  std::uint64_t stalled_deferred = 0;     ///< arrivals parked at a stalled node
};

class Network {
 public:
  /// Receives each delivered (non-ack, de-duplicated) message.
  using Sink = std::function<void(const Message&)>;
  /// Receives each reliable message the transport gave up on (crashed
  /// destination or retry cap), so the application layer can reroute or
  /// invalidate caches.
  using AbandonHandler = std::function<void(const Message&)>;
  /// Returns true when the src -> dst link is up (partition injection).
  using LinkFilter = std::function<bool(NodeId, NodeId)>;

  Network(sim::EventQueue& queue, const NetworkConfig& config);

  void set_sink(Sink sink) { sink_ = std::move(sink); }
  void set_abandon_handler(AbandonHandler handler) {
    abandon_ = std::move(handler);
  }

  /// Send msg.src -> msg.dst.  Reliable (ack + retransmit) for every kind
  /// except kAck.  The transfer id is assigned here.
  void send(Message msg);

  /// Crash-stop: the node stops receiving AND stops resending -- reliable
  /// transfers touching it on either side are abandoned when their
  /// timeout next fires (receiver side: the sender's failure detector;
  /// sender side: a dead node cannot drive its retransmit timer).
  /// Packets already in flight still arrive, as they would on a real
  /// network.
  void crash(NodeId node);
  /// Clear the crashed mark -- required when a vertex id is recycled for
  /// a brand-new node (the ground truth reuses Delaunay vertex ids).
  /// Reliable transfers still armed from the dead predecessor's era are
  /// abandoned first (through the abandon handler, with the crashed mark
  /// still set): a predecessor-era retransmission must never deliver
  /// stale content to the brand-new endpoint, and a dead sender's
  /// transfers must not come back to life with the recycled id.
  void revive(NodeId node);
  [[nodiscard]] bool crashed(NodeId node) const {
    return crashed_.count(node) != 0;
  }

  // --- Gray failures -------------------------------------------------------

  /// Stall: the node's process stops running but the node is NOT dead.
  /// Inbound non-ack messages are parked unacknowledged (so senders
  /// retransmit -- the failure detector's false-positive path); they are
  /// delivered in arrival order when the node resumes.  Transport acks
  /// for the node's own earlier sends still settle (NIC-level state), and
  /// its retransmit timers keep driving -- the process is wedged, not the
  /// host.  Idempotent; crash() discards the parked backlog.
  void stall(NodeId node);
  void resume(NodeId node);
  /// Resume every stalled node (scenario kResume).
  void resume_all();
  [[nodiscard]] bool stalled(NodeId node) const {
    return stalled_.count(node) != 0;
  }

  /// Degradation windows (scenario kLossBurst / kLatencySpike /
  /// kDuplicate).  Windows nest: drop probabilities add (clamped below
  /// 1), latency factors multiply, duplication picks the strongest
  /// window.  end_* removes one matching begin_* (balanced by the
  /// scheduling layer).
  void begin_loss_burst(double extra_drop);
  void end_loss_burst(double extra_drop);
  void begin_latency_spike(double factor);
  void end_latency_spike(double factor);
  void begin_duplication(double probability);
  void end_duplication(double probability);

  /// Install / remove a link filter (messages on down links are lost on
  /// transmission; retransmit timers keep reliable traffic alive until
  /// the partition heals).
  void set_link_filter(LinkFilter up) { link_up_ = std::move(up); }
  void clear_link_filter() { link_up_ = nullptr; }

  /// Reliable transfers still awaiting acknowledgement.
  [[nodiscard]] std::size_t in_flight() const { return pending_.size(); }
  /// Messages parked at stalled nodes (the sampler's backlog gauge).
  [[nodiscard]] std::size_t stalled_backlog() const {
    std::size_t n = 0;
    for (const auto& [node, backlog] : stall_backlog_) n += backlog.size();
    return n;
  }

  // --- Observability (obs::Tracer / obs::FlightRecorder) ------------------
  //
  // Non-owning; the harness installs its own instances.  Every use is
  // guarded by enabled(), so the cost with tracing off is one branch per
  // site.  Reliable transfers get one span each (parented to the
  // message's carried span) whose instants record the retransmission
  // timeline; the recorder logs send / deliver / drop / park / dedup /
  // retransmit / abandon plus crash / stall / resume transitions.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  void set_recorder(obs::FlightRecorder* recorder) { recorder_ = recorder; }

  [[nodiscard]] sim::Metrics& metrics() { return metrics_; }
  [[nodiscard]] const sim::Metrics& metrics() const { return metrics_; }
  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  [[nodiscard]] const NetworkConfig& config() const { return config_; }
  [[nodiscard]] double retransmit_timeout() const { return rto_; }

 private:
  struct Pending {
    Message msg;
    std::size_t attempts = 1;
    sim::TimerId timer = sim::kNoTimer;
    obs::SpanId span = obs::kNoSpan;  ///< transfer span while tracing
  };

  [[nodiscard]] bool tracing() const {
    return tracer_ != nullptr && tracer_->enabled();
  }
  [[nodiscard]] bool recording() const {
    return recorder_ != nullptr && recorder_->enabled();
  }

  /// One wire attempt: count it, lose it or schedule its arrival.
  void transmit(const Message& msg);
  void arrive(Message msg);
  /// Deliver a message that reached its (non-crashed) destination: park it
  /// when the destination is stalled, otherwise ack + dedup + sink.
  void receive(Message msg);
  /// Armed timeout for the transfer's next attempt: capped exponential
  /// backoff plus deterministic per-(transfer, attempt) jitter.
  [[nodiscard]] double backoff_timeout(std::uint64_t transfer_id,
                                       std::size_t attempts) const;
  [[nodiscard]] double effective_drop() const;
  void on_timeout(std::uint64_t transfer_id);
  void arm_timer(std::uint64_t transfer_id);
  /// Give up on a reliable transfer: erase it (the timer must already be
  /// settled or cancelled), prune the receiver-side dedup entry, and
  /// notify the application layer last (the handler may send afresh).
  void abandon_transfer(
      std::unordered_map<std::uint64_t, Pending>::iterator it);

  sim::EventQueue& queue_;
  NetworkConfig config_;
  obs::Tracer* tracer_ = nullptr;
  obs::FlightRecorder* recorder_ = nullptr;
  double rto_;
  double rto_cap_;
  Sink sink_;
  AbandonHandler abandon_;
  Rng rng_;
  sim::Metrics metrics_;
  NetworkStats stats_;
  std::uint64_t next_transfer_ = 1;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::unordered_set<NodeId> crashed_;
  std::unordered_map<NodeId, std::unordered_set<std::uint64_t>> seen_;
  LinkFilter link_up_;

  // Gray-failure state.
  std::unordered_set<NodeId> stalled_;
  /// Arrival-ordered backlog of a stalled node (drained on resume,
  /// discarded on crash).
  std::unordered_map<NodeId, std::vector<Message>> stall_backlog_;
  /// Open degradation windows (tiny: scenarios open a handful at most).
  std::vector<double> loss_bursts_;
  std::vector<double> latency_spikes_;
  std::vector<double> duplications_;
};

}  // namespace voronet::protocol
