// Message router of the protocol engine: owns delivery.
//
// Every transmission is scheduled through sim::EventQueue with a delay
// drawn from the LatencyModel, may be lost (drop probability, partition
// filter, crashed destination), and is counted per message type in a
// sim::Metrics instance.  Non-ack messages are delivered reliably: the
// receiving side acknowledges, the sender retransmits on a cancellable
// timeout until acknowledged (or until the destination is observed
// crashed / the retry cap is hit).  Duplicate arrivals -- retransmission
// after a lost ack -- are suppressed by per-receiver transfer-id
// de-duplication (pruned when the transfer settles, so the table is
// bounded by the in-flight count; a retransmission already in flight at
// settle time can occasionally slip through, which the idempotent node
// layer absorbs).  Counters record the real wire traffic.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "common/rng.hpp"
#include "protocol/latency.hpp"
#include "protocol/message.hpp"
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"

namespace voronet::protocol {

struct NetworkConfig {
  LatencyModel latency = LatencyModel::fixed(0.0);
  /// Probability that any single transmission (data or ack) is lost.
  double drop_probability = 0.0;
  /// Retransmission timeout; 0 derives one from the latency model
  /// (two high-quantile one-way delays plus slack).
  double retransmit_timeout = 0.0;
  /// Give up on a reliable transfer after this many retransmissions;
  /// 0 = keep retrying (transfers to crashed destinations are abandoned
  /// at the first timeout regardless).
  std::size_t max_retries = 0;
  std::uint64_t seed = 0x5eedULL;
};

/// Wire-level accounting, beyond the per-type counters in sim::Metrics.
struct NetworkStats {
  std::uint64_t sends = 0;          ///< logical send() calls
  std::uint64_t transmissions = 0;  ///< wire attempts incl. retransmits+acks
  std::uint64_t delivered = 0;      ///< messages handed to the sink
  std::uint64_t duplicates = 0;     ///< arrivals suppressed by dedup
  std::uint64_t dropped = 0;        ///< lost to loss, partition or crash
  std::uint64_t retransmits = 0;
  std::uint64_t abandoned = 0;      ///< reliable transfers given up
  std::uint64_t acks = 0;
};

class Network {
 public:
  /// Receives each delivered (non-ack, de-duplicated) message.
  using Sink = std::function<void(const Message&)>;
  /// Receives each reliable message the transport gave up on (crashed
  /// destination or retry cap), so the application layer can reroute or
  /// invalidate caches.
  using AbandonHandler = std::function<void(const Message&)>;
  /// Returns true when the src -> dst link is up (partition injection).
  using LinkFilter = std::function<bool(NodeId, NodeId)>;

  Network(sim::EventQueue& queue, const NetworkConfig& config);

  void set_sink(Sink sink) { sink_ = std::move(sink); }
  void set_abandon_handler(AbandonHandler handler) {
    abandon_ = std::move(handler);
  }

  /// Send msg.src -> msg.dst.  Reliable (ack + retransmit) for every kind
  /// except kAck.  The transfer id is assigned here.
  void send(Message msg);

  /// Crash-stop: the node stops receiving AND stops resending -- reliable
  /// transfers touching it on either side are abandoned when their
  /// timeout next fires (receiver side: the sender's failure detector;
  /// sender side: a dead node cannot drive its retransmit timer).
  /// Packets already in flight still arrive, as they would on a real
  /// network.
  void crash(NodeId node);
  /// Clear the crashed mark -- required when a vertex id is recycled for
  /// a brand-new node (the ground truth reuses Delaunay vertex ids).
  /// Reliable transfers still armed from the dead predecessor's era are
  /// abandoned first (through the abandon handler, with the crashed mark
  /// still set): a predecessor-era retransmission must never deliver
  /// stale content to the brand-new endpoint, and a dead sender's
  /// transfers must not come back to life with the recycled id.
  void revive(NodeId node);
  [[nodiscard]] bool crashed(NodeId node) const {
    return crashed_.count(node) != 0;
  }

  /// Install / remove a link filter (messages on down links are lost on
  /// transmission; retransmit timers keep reliable traffic alive until
  /// the partition heals).
  void set_link_filter(LinkFilter up) { link_up_ = std::move(up); }
  void clear_link_filter() { link_up_ = nullptr; }

  /// Reliable transfers still awaiting acknowledgement.
  [[nodiscard]] std::size_t in_flight() const { return pending_.size(); }

  [[nodiscard]] sim::Metrics& metrics() { return metrics_; }
  [[nodiscard]] const sim::Metrics& metrics() const { return metrics_; }
  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  [[nodiscard]] const NetworkConfig& config() const { return config_; }
  [[nodiscard]] double retransmit_timeout() const { return rto_; }

 private:
  struct Pending {
    Message msg;
    std::size_t attempts = 1;
    sim::TimerId timer = sim::kNoTimer;
  };

  /// One wire attempt: count it, lose it or schedule its arrival.
  void transmit(const Message& msg);
  void arrive(Message msg);
  void on_timeout(std::uint64_t transfer_id);
  void arm_timer(std::uint64_t transfer_id);
  /// Give up on a reliable transfer: erase it (the timer must already be
  /// settled or cancelled), prune the receiver-side dedup entry, and
  /// notify the application layer last (the handler may send afresh).
  void abandon_transfer(
      std::unordered_map<std::uint64_t, Pending>::iterator it);

  sim::EventQueue& queue_;
  NetworkConfig config_;
  double rto_;
  Sink sink_;
  AbandonHandler abandon_;
  Rng rng_;
  sim::Metrics metrics_;
  NetworkStats stats_;
  std::uint64_t next_transfer_ = 1;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::unordered_set<NodeId> crashed_;
  std::unordered_map<NodeId, std::unordered_set<std::uint64_t>> seen_;
  LinkFilter link_up_;
};

}  // namespace voronet::protocol
