// Message router of the protocol engine: owns delivery.
//
// Every transmission is scheduled through sim::EventQueue with a delay
// drawn from the LatencyModel, may be lost (drop probability, partition
// filter, crashed destination), and is counted per message type in a
// sim::Metrics instance.  Non-ack messages are delivered reliably: the
// receiving side acknowledges, the sender retransmits on a cancellable
// timeout until acknowledged (or until the destination is observed
// crashed / the retry cap is hit).  Duplicate arrivals -- retransmission
// after a lost ack -- are suppressed by per-transfer de-duplication: a
// delivered bit on the transfer's slot while the transfer is pending,
// plus a small bounded window for arrivals that outlive their slot (a
// retransmission still in flight at settle time can occasionally slip
// through, which the idempotent node layer absorbs).  Counters record
// the real wire traffic.
//
// Storage (DESIGN.md, "Memory layout & arenas"): reliable transfers
// live in a slot vector with free-list recycling -- the slot index
// travels in Message::transfer_slot so acks and timers resolve their
// transfer without a hash lookup, while the monotone transfer_id stays
// the identity (slot occupancy is generation-checked against it).
// Settled payload vectors are recycled through an explicit pool
// (draft()), and the crashed/stalled marks are dense per-node bitmaps.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"
#include "protocol/latency.hpp"
#include "protocol/message.hpp"
#include "protocol/transport.hpp"
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"

namespace voronet::protocol {

// NetworkConfig / NetworkStats live in transport.hpp (shared by every
// backend); this header re-exports them for existing includers.

class Network {
 public:
  using Sink = Transport::Sink;
  using AbandonHandler = Transport::AbandonHandler;
  using LinkFilter = Transport::LinkFilter;

  /// Dedup-window capacity (the Transport-contract constant; see
  /// transport.hpp).
  static constexpr std::size_t kOrphanDedupCapacity =
      Transport::kOrphanDedupCapacity;

  Network(sim::EventQueue& queue, const NetworkConfig& config);

  void set_sink(Sink sink) { sink_ = std::move(sink); }
  void set_abandon_handler(AbandonHandler handler) {
    abandon_ = std::move(handler);
  }

  /// A blank message whose payload vector comes from the retired-payload
  /// pool (capacity recycled from settled transfers), with capacity for
  /// at least `reserve_entries`.  The hint keeps non-harness callers --
  /// the serving front-end's batched senders -- allocation-free past the
  /// first few messages of a given size.  Purely an allocation shortcut:
  /// send() accepts any Message.
  [[nodiscard]] Message draft(std::size_t reserve_entries = 0);

  /// Send msg.src -> msg.dst.  Reliable (ack + retransmit) for every kind
  /// except kAck.  The transfer id is assigned here.
  void send(Message msg);

  /// Crash-stop: the node stops receiving AND stops resending -- reliable
  /// transfers touching it on either side are abandoned when their
  /// timeout next fires (receiver side: the sender's failure detector;
  /// sender side: a dead node cannot drive its retransmit timer).
  /// Packets already in flight still arrive, as they would on a real
  /// network.
  void crash(NodeId node);
  /// Clear the crashed mark -- required when a vertex id is recycled for
  /// a brand-new node (the ground truth reuses Delaunay vertex ids).
  /// Reliable transfers still armed from the dead predecessor's era are
  /// abandoned first (through the abandon handler, with the crashed mark
  /// still set): a predecessor-era retransmission must never deliver
  /// stale content to the brand-new endpoint, and a dead sender's
  /// transfers must not come back to life with the recycled id.  The
  /// predecessor's dedup window entries and flight-recorder ring are
  /// dropped too -- a recycled id inherits nothing.
  void revive(NodeId node);
  [[nodiscard]] bool crashed(NodeId node) const {
    return flag(crashed_, node);
  }

  // --- Gray failures -------------------------------------------------------

  /// Stall: the node's process stops running but the node is NOT dead.
  /// Inbound non-ack messages are parked unacknowledged (so senders
  /// retransmit -- the failure detector's false-positive path); they are
  /// delivered in arrival order when the node resumes.  Transport acks
  /// for the node's own earlier sends still settle (NIC-level state), and
  /// its retransmit timers keep driving -- the process is wedged, not the
  /// host.  Idempotent; crash() discards the parked backlog.
  void stall(NodeId node);
  void resume(NodeId node);
  /// Resume every stalled node (scenario kResume).
  void resume_all();
  [[nodiscard]] bool stalled(NodeId node) const {
    return flag(stalled_, node);
  }

  /// Degradation windows (scenario kLossBurst / kLatencySpike /
  /// kDuplicate).  Windows nest: drop probabilities add (clamped below
  /// 1), latency factors multiply, duplication picks the strongest
  /// window.  end_* removes one matching begin_* (balanced by the
  /// scheduling layer).
  void begin_loss_burst(double extra_drop);
  void end_loss_burst(double extra_drop);
  void begin_latency_spike(double factor);
  void end_latency_spike(double factor);
  void begin_duplication(double probability);
  void end_duplication(double probability);

  /// Install / remove a link filter (messages on down links are lost on
  /// transmission; retransmit timers keep reliable traffic alive until
  /// the partition heals).
  void set_link_filter(LinkFilter up) { link_up_ = std::move(up); }
  void clear_link_filter() { link_up_ = nullptr; }

  /// Reliable transfers still awaiting acknowledgement.
  [[nodiscard]] std::size_t in_flight() const { return in_flight_; }
  /// Messages parked at stalled nodes (the sampler's backlog gauge).
  [[nodiscard]] std::size_t stalled_backlog() const {
    return backlog_count_;
  }

  /// Dedup records currently held: delivered bits on live transfer slots
  /// plus the orphan window.  Bounded by in_flight() +
  /// kOrphanDedupCapacity by construction (the regression test asserts
  /// it across a long churn run).
  [[nodiscard]] std::size_t dedup_entries() const;
  /// Orphan-window occupancy alone (late-duplicate records).
  [[nodiscard]] std::size_t dedup_window_size() const {
    return orphans_.size();
  }

  /// Transport-owned bytes: transfer slots (including pooled payload
  /// capacity), the payload pool, per-node bitmaps, backlogs and the
  /// dedup window.  For the bytes-per-node decomposition of bench_scale.
  [[nodiscard]] std::size_t memory_bytes() const;

  // --- Observability (obs::Tracer / obs::FlightRecorder) ------------------
  //
  // Non-owning; the harness installs its own instances.  Every use is
  // guarded by enabled(), so the cost with tracing off is one branch per
  // site.  Reliable transfers get one span each (parented to the
  // message's carried span) whose instants record the retransmission
  // timeline; the recorder logs send / deliver / drop / park / dedup /
  // retransmit / abandon plus crash / stall / resume transitions.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  void set_recorder(obs::FlightRecorder* recorder) { recorder_ = recorder; }

  [[nodiscard]] sim::Metrics& metrics() { return metrics_; }
  [[nodiscard]] const sim::Metrics& metrics() const { return metrics_; }
  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  [[nodiscard]] const NetworkConfig& config() const { return config_; }
  [[nodiscard]] double retransmit_timeout() const { return rto_; }

 private:
  /// One reliable-transfer slot.  id == 0 marks a free slot (real
  /// transfer ids start at 1); the slot's Message keeps its payload
  /// vector across occupancies, so steady-state traffic allocates
  /// nothing here.
  struct Transfer {
    Message msg;
    std::uint64_t id = 0;  ///< occupancy check: matches msg.transfer_id
    std::size_t attempts = 1;
    sim::TimerId timer = sim::kNoTimer;
    obs::SpanId span = obs::kNoSpan;  ///< transfer span while tracing
    bool delivered = false;           ///< receiver-side dedup bit
  };

  /// Bounded FIFO of dedup records for transfers whose slot is gone
  /// (late duplicates after settle/abandon).  Almost always empty, so
  /// the linear scans below are on a cold path.
  struct OrphanWindow {
    struct Rec {
      std::uint64_t transfer_id = 0;  ///< 0 = vacant
      NodeId dst = kNoNode;
    };
    std::vector<Rec> ring;
    std::size_t next = 0;   ///< FIFO overwrite cursor
    std::size_t count = 0;  ///< live records

    [[nodiscard]] bool empty() const { return count == 0; }
    [[nodiscard]] std::size_t size() const { return count; }
    /// False when the transfer is already recorded (duplicate arrival).
    bool insert(std::uint64_t transfer_id, NodeId dst);
    void erase(std::uint64_t transfer_id);
    void erase_dst(NodeId dst);
  };

  [[nodiscard]] bool tracing() const {
    return tracer_ != nullptr && tracer_->enabled();
  }
  [[nodiscard]] bool recording() const {
    return recorder_ != nullptr && recorder_->enabled();
  }

  [[nodiscard]] static bool flag(const std::vector<std::uint8_t>& flags,
                                 NodeId node) {
    return node >= 0 && static_cast<std::size_t>(node) < flags.size() &&
           flags[static_cast<std::size_t>(node)] != 0;
  }
  static void set_flag(std::vector<std::uint8_t>& flags, NodeId node,
                       bool on);

  /// The transfer slot for (slot, transfer_id), or nullptr when the slot
  /// has been recycled since (generation check).
  [[nodiscard]] Transfer* live_transfer(std::uint32_t slot,
                                        std::uint64_t transfer_id);
  std::uint32_t alloc_slot();
  /// Release the slot: retire its payload to the pool, push it on the
  /// free list.  The timer must already be settled or cancelled.
  void free_slot(std::uint32_t slot);
  /// Return a payload vector's capacity to the draft pool.
  void recycle_payload(std::vector<ViewEntry>&& entries);

  /// One wire attempt: count it, lose it or schedule its arrival.
  void transmit(const Message& msg);
  void arrive(Message msg);
  /// Deliver a message that reached its (non-crashed) destination: park it
  /// when the destination is stalled, otherwise ack + dedup + sink.
  void receive(Message msg);
  /// Armed timeout for the transfer's next attempt: capped exponential
  /// backoff plus deterministic per-(transfer, attempt) jitter.
  [[nodiscard]] double backoff_timeout(std::uint64_t transfer_id,
                                       std::size_t attempts) const;
  [[nodiscard]] double effective_drop() const;
  void on_timeout(std::uint32_t slot, std::uint64_t transfer_id);
  void arm_timer(std::uint32_t slot);
  /// Give up on a reliable transfer: free its slot and notify the
  /// application layer last (the handler may send afresh).
  void abandon_transfer(std::uint32_t slot);

  sim::EventQueue& queue_;
  NetworkConfig config_;
  obs::Tracer* tracer_ = nullptr;
  obs::FlightRecorder* recorder_ = nullptr;
  double rto_;
  double rto_cap_;
  Sink sink_;
  AbandonHandler abandon_;
  Rng rng_;
  sim::Metrics metrics_;
  NetworkStats stats_;
  std::uint64_t next_transfer_ = 1;

  /// Transfer slot table (deque: stable addresses across growth, so a
  /// slot reference survives allocations made by reentrant sends).
  std::deque<Transfer> transfers_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t in_flight_ = 0;
  OrphanWindow orphans_;
  /// Retired payload vectors for draft() (bounded; capacity recycled).
  std::vector<std::vector<ViewEntry>> payload_pool_;

  /// Dense per-node transport marks, indexed by NodeId.
  std::vector<std::uint8_t> crashed_;
  std::vector<std::uint8_t> stalled_;
  LinkFilter link_up_;

  /// Arrival-ordered backlog of each stalled node (drained on resume,
  /// discarded on crash), indexed by NodeId.
  std::vector<std::vector<Message>> stall_backlog_;
  std::size_t backlog_count_ = 0;
  /// Open degradation windows (tiny: scenarios open a handful at most).
  std::vector<double> loss_bursts_;
  std::vector<double> latency_spikes_;
  std::vector<double> duplications_;
};

}  // namespace voronet::protocol
