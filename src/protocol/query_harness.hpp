// Differential query harness: every query runs twice.
//
//   * once on the sequential ground truth (voronet::range_query /
//     radius_query over the shared Overlay -- cell geometry and view
//     reads with message *accounting*);
//   * once through the message-level engine (ProtocolHarness's kQuery /
//     kQueryForward / kQueryResult protocol over per-node local views,
//     with real latency, loss and retransmission).
//
// At quiescence with converged views the two executions must agree
// exactly -- same served-cell set, same match set -- which
// run_range()/run_radius() check per query and
// tests/query_engine_test.cpp asserts across a latency x loss sweep.
// The logical message counts additionally agree whenever no
// retransmission occurred (fixed latency, zero loss; a retransmission
// that slips the transport dedup draws one extra rejection reply), so
// counts_match is asserted only there.
// Under staleness (views still converging while the query runs) the
// message execution legitimately loses coverage; recall() quantifies it
// against the ground truth instead of asserting.
#pragma once

#include <cstdint>
#include <vector>

#include "protocol/harness.hpp"
#include "voronet/queries.hpp"

namespace voronet::protocol {

class QueryHarness {
 public:
  explicit QueryHarness(const HarnessConfig& config) : harness_(config) {}

  /// Grow the population through message-level joins and quiesce.
  void populate(std::size_t objects, std::uint64_t seed,
                double spacing = 0.01);

  /// One differential execution: both layers, compared field by field.
  struct Differential {
    RegionQueryResult truth;           ///< sequential ground-truth result
    ProtocolHarness::QueryRecord msg;  ///< message-level outcome
    bool completed = false;   ///< the final aggregate reached the issuer
    bool owners_match = false;   ///< served-cell sets identical
    bool matches_match = false;  ///< predicate-match sets identical
    /// Forward/result counts identical.  Deterministic only without
    /// retransmission AND within a single flood epoch: the message side
    /// accumulates every epoch's cost, the sequential side always serves
    /// in one (see the epoch extension of the counting model in
    /// queries.hpp), so a re-issued query legitimately reports more.
    bool counts_match = false;

    /// The quiescence contract: identical result sets, delivered.
    [[nodiscard]] bool identical() const {
      return completed && owners_match && matches_match;
    }
    /// Fraction of ground-truth matches the message execution found (the
    /// staleness metric).  An empty truth set demands an empty message
    /// result: reporting 1.0 regardless would hide false positives.
    [[nodiscard]] double recall() const;
    /// Fraction of message-side matches that are ground-truth matches
    /// (1 when the message side found nothing: no false positives).
    [[nodiscard]] double precision() const;
  };

  /// Issue the query at both layers, run the network to quiescence, and
  /// compare.  The overlay must be quiet (no joins in flight) for the
  /// comparison to be meaningful as an assertion.
  Differential run_range(NodeId from, Vec2 a, Vec2 b, double tolerance);
  Differential run_radius(NodeId from, Vec2 center, double radius);

  /// Asynchronous issue for batched latency measurements: the query is
  /// NOT run to quiescence here; call harness().run_to_idle() (or
  /// run_until) and collect() afterwards.  `delay` spaces issues in
  /// simulated time.
  std::uint64_t issue_range(NodeId from, Vec2 a, Vec2 b, double tolerance,
                            double delay = 0.0) {
    return harness_.issue_range_query(from, a, b, tolerance, delay);
  }
  std::uint64_t issue_radius(NodeId from, Vec2 center, double radius,
                             double delay = 0.0) {
    return harness_.issue_radius_query(from, center, radius, delay);
  }
  /// Grade a previously issued query against the CURRENT ground truth.
  [[nodiscard]] Differential collect(std::uint64_t query_id) const;

  // --- Churn-concurrent scenario driver ------------------------------------
  //
  // The scenario class the failover machinery exists for: queries racing
  // joins, voluntary leaves and crash-stop failures on the same event
  // queue.  Every operation count is spread uniformly over [0, horizon]
  // in simulated time; leave/crash victims are drawn from the LIVE
  // population at fire time.  After quiescence every query is graded
  // (completion + recall + precision) against the post-quiescence ground
  // truth.

  struct ChurnScenario {
    std::size_t joins = 0;
    std::size_t leaves = 0;
    std::size_t crashes = 0;
    std::size_t queries = 0;
    double horizon = 2.0;  ///< ops land uniformly in [0, horizon]
    /// Leaves/crashes are skipped when the population is at or below
    /// this floor (a scenario must not tear the overlay down entirely).
    std::size_t min_population = 16;
    std::uint64_t seed = 0xc4a12ULL;
  };

  struct ChurnScenarioReport {
    std::size_t queries = 0;
    std::size_t completed = 0;
    std::size_t exact = 0;     ///< recall == precision == 1 at quiescence
    std::size_t reissued = 0;  ///< queries that needed more than one epoch
    std::uint32_t max_epochs = 0;
    std::uint64_t branch_failovers = 0;
    double mean_recall = 1.0, min_recall = 1.0;
    double mean_precision = 1.0, min_precision = 1.0;
    bool quiesced = false;   ///< event queue drained within budget
    bool converged = false;  ///< strict verify_views at quiescence
  };

  /// Run one scenario to quiescence and grade every query.  The overlay
  /// must already be populated (populate()).
  ChurnScenarioReport run_churn_scenario(const ChurnScenario& s);

  [[nodiscard]] ProtocolHarness& harness() { return harness_; }
  [[nodiscard]] const ProtocolHarness& harness() const { return harness_; }
  [[nodiscard]] Overlay& overlay() { return harness_.overlay(); }

 private:
  [[nodiscard]] Differential grade(std::uint64_t query_id,
                                   const RegionQueryResult& truth) const;

  ProtocolHarness harness_;
};

}  // namespace voronet::protocol
