// Differential query harness: every query runs twice.
//
//   * once on the sequential ground truth (voronet::range_query /
//     radius_query over the shared Overlay -- cell geometry and view
//     reads with message *accounting*);
//   * once through the message-level engine (ProtocolHarness's kQuery /
//     kQueryForward / kQueryResult protocol over per-node local views,
//     with real latency, loss and retransmission).
//
// At quiescence with converged views the two executions must agree
// exactly -- same served-cell set, same match set -- which
// run_range()/run_radius() check per query and
// tests/query_engine_test.cpp asserts across a latency x loss sweep.
// The logical message counts additionally agree whenever no
// retransmission occurred (fixed latency, zero loss; a retransmission
// that slips the transport dedup draws one extra rejection reply), so
// counts_match is asserted only there.
// Under staleness (views still converging while the query runs) the
// message execution legitimately loses coverage; recall() quantifies it
// against the ground truth instead of asserting.
//
// Workload injection speaks the scenario event vocabulary
// (src/scenario/events.hpp): schedule_event() schedules one declarative
// timeline event -- join bursts, leaves, crashes, revives, partitions,
// queries -- on the harness's event queue, drawing every stochastic
// choice from a shared ScheduleContext so a timeline replays bit-for-bit
// from its seed.  scenario::Runner composes these into full scenario
// executions; the ChurnScenario struct below survives only as a thin
// shim over the same vocabulary.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "protocol/harness.hpp"
#include "scenario/events.hpp"
#include "voronet/queries.hpp"
#include "workload/distributions.hpp"

namespace voronet::protocol {

class QueryHarness {
 public:
  explicit QueryHarness(const HarnessConfig& config) : harness_(config) {}

  /// Grow the population through message-level joins and quiesce.
  void populate(std::size_t objects, std::uint64_t seed,
                double spacing = 0.01);
  /// Same, with an explicit join-position workload.
  void populate(std::size_t objects, std::uint64_t seed,
                const workload::DistributionConfig& dist, double spacing);

  /// One differential execution: both layers, compared field by field.
  struct Differential {
    RegionQueryResult truth;           ///< sequential ground-truth result
    ProtocolHarness::QueryRecord msg;  ///< message-level outcome
    bool completed = false;   ///< the final aggregate reached the issuer
    bool owners_match = false;   ///< served-cell sets identical
    bool matches_match = false;  ///< predicate-match sets identical
    /// Forward/result counts identical.  Deterministic only without
    /// retransmission AND within a single flood epoch: the message side
    /// accumulates every epoch's cost, the sequential side always serves
    /// in one (see the epoch extension of the counting model in
    /// queries.hpp), so a re-issued query legitimately reports more.
    bool counts_match = false;

    /// The quiescence contract: identical result sets, delivered.
    [[nodiscard]] bool identical() const {
      return completed && owners_match && matches_match;
    }
    /// Fraction of ground-truth matches the message execution found (the
    /// staleness metric).  An empty truth set demands an empty message
    /// result: reporting 1.0 regardless would hide false positives.
    [[nodiscard]] double recall() const;
    /// Fraction of message-side matches that are ground-truth matches
    /// (1 when the message side found nothing: no false positives).
    [[nodiscard]] double precision() const;
  };

  /// Issue the query at both layers, run the network to quiescence, and
  /// compare.  The overlay must be quiet (no joins in flight) for the
  /// comparison to be meaningful as an assertion.
  Differential run_range(NodeId from, Vec2 a, Vec2 b, double tolerance);
  Differential run_radius(NodeId from, Vec2 center, double radius);

  /// Asynchronous issue for batched latency measurements: the query is
  /// NOT run to quiescence here; call harness().run_to_idle() (or
  /// run_until) and collect() afterwards.  `delay` spaces issues in
  /// simulated time.
  std::uint64_t issue_range(NodeId from, Vec2 a, Vec2 b, double tolerance,
                            double delay = 0.0) {
    return harness_.issue_range_query(from, a, b, tolerance, delay);
  }
  std::uint64_t issue_radius(NodeId from, Vec2 center, double radius,
                             double delay = 0.0) {
    return harness_.issue_radius_query(from, center, radius, delay);
  }
  /// Grade a previously issued query against the CURRENT ground truth.
  [[nodiscard]] Differential collect(std::uint64_t query_id) const;

  // --- Scenario event scheduling -------------------------------------------

  /// Shared mutable state of one scheduled timeline: the Rng every
  /// stochastic choice draws from, the join-position workload, and the
  /// counters / stacks the fire-time callbacks update.  Held by
  /// shared_ptr because Poisson streams re-arm themselves from inside
  /// scheduled closures.
  struct ScheduleContext {
    ScheduleContext(std::uint64_t seed,
                    const workload::DistributionConfig& dist)
        : rng(seed), points(dist) {}

    Rng rng;
    workload::PointGenerator points;
    std::vector<std::uint64_t> query_ids;  ///< every query issued
    std::size_t joins = 0;    ///< joins scheduled (bursts + revives)
    std::size_t leaves = 0;   ///< leaves executed (floor skips excluded)
    std::size_t crashes = 0;  ///< crashes executed
    std::size_t revives = 0;  ///< crash positions rejoined
    std::size_t stalls = 0;   ///< stall windows opened (gray failures)
    /// Positions of crashed nodes, most recent last (kRevive pops here).
    std::vector<Vec2> crashed_positions;
  };

  /// Schedule every operation of one timeline event at absolute times
  /// `t0 + event.at [+ spread]` on the harness's event queue.  Barrier
  /// kinds (kQuiesce / kVerifyBarrier) sequence the *run*, not the
  /// queue, and are rejected here -- scenario::Runner handles them.
  void schedule_event(const scenario::Event& event, double t0,
                      const std::shared_ptr<ScheduleContext>& ctx);

  // --- Churn-concurrent scenario driver (deprecated shim) ------------------
  //
  // The original one-off churn driver, now a thin wrapper that expands
  // into scenario events and schedules them through schedule_event().
  // New code should build a scenario::Scenario and use scenario::Runner,
  // which adds barriers, partitions and a full serializable report.

  struct ChurnScenario {
    std::size_t joins = 0;
    std::size_t leaves = 0;
    std::size_t crashes = 0;
    std::size_t queries = 0;
    double horizon = 2.0;  ///< ops land uniformly in [0, horizon]
    /// Leaves/crashes are skipped when the population is at or below
    /// this floor (a scenario must not tear the overlay down entirely).
    std::size_t min_population = 16;
    std::uint64_t seed = 0xc4a12ULL;

    /// The equivalent timeline in the unified event vocabulary.
    [[nodiscard]] std::vector<scenario::Event> events() const;
  };

  struct ChurnScenarioReport {
    std::size_t queries = 0;
    std::size_t completed = 0;
    std::size_t exact = 0;     ///< recall == precision == 1 at quiescence
    std::size_t reissued = 0;  ///< queries that needed more than one epoch
    std::uint32_t max_epochs = 0;
    std::uint64_t branch_failovers = 0;
    double mean_recall = 1.0, min_recall = 1.0;
    double mean_precision = 1.0, min_precision = 1.0;
    bool quiesced = false;   ///< event queue drained within budget
    bool converged = false;  ///< strict verify_views at quiescence
  };

  /// Run one scenario to quiescence and grade every query.  The overlay
  /// must already be populated (populate()).
  ChurnScenarioReport run_churn_scenario(const ChurnScenario& s);

  [[nodiscard]] ProtocolHarness& harness() { return harness_; }
  [[nodiscard]] const ProtocolHarness& harness() const { return harness_; }
  [[nodiscard]] Overlay& overlay() { return harness_.overlay(); }

 private:
  [[nodiscard]] Differential grade(std::uint64_t query_id,
                                   const RegionQueryResult& truth) const;

  /// Issue one query with geometry from the event (or drawn scale-free
  /// from ctx->rng) at `delay` from now.
  void issue_scenario_query(const scenario::Event& event, bool range,
                            double delay,
                            const std::shared_ptr<ScheduleContext>& ctx);
  /// Fire-time bodies of the membership / gray-failure events.
  void fire_leave(const std::shared_ptr<ScheduleContext>& ctx,
                  std::size_t floor, scenario::Target target);
  void fire_crash(const std::shared_ptr<ScheduleContext>& ctx,
                  std::size_t floor, scenario::Target target);
  void fire_stall(const std::shared_ptr<ScheduleContext>& ctx,
                  std::size_t floor, scenario::Target target,
                  double duration);
  /// Resolve a victim selector against the population alive right now.
  /// kUniformTarget draws from ctx's Rng; the adversarial selectors scan
  /// the overlay ground truth (the simulator's stand-in for the
  /// adversary's global knowledge) and break ties towards the smallest
  /// id, so replays stay bit-identical.
  [[nodiscard]] NodeId select_target(scenario::Target target, Rng& rng) const;

  ProtocolHarness harness_;
};

}  // namespace voronet::protocol
