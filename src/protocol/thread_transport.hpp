// The real-time Transport backend: in-process actor threads, per-node
// MPSC mailboxes, monotonic-clock timers.
//
// Where SimTransport *simulates* the wire inside one deterministic event
// queue, ThreadTransport *is* a wire: a pool of shard threads plays the
// network.  Every node is an actor whose mailbox (an MPSC timing wheel
// entry keyed by arrival deadline) is owned by the shard thread for
// node % shards; senders -- the driving thread and other shards -- post
// into it, and only the owning shard consumes.  Latency is a real
// monotonic-clock deadline (a message "in flight" occupies no thread),
// loss is drawn at transmission, acks and capped-exponential-backoff
// retransmissions run exactly the state machine protocol::Network runs,
// against the same conformance suite (tests/transport_conformance_test
// drives both backends through it).
//
// Threading contract:
//   * send(), draft(), schedule(), crash/stall/revive, run_* are called
//     from ONE driving thread (the thread that owns the harness);
//   * the sink and the abandon handler are invoked ONLY on that driving
//     thread, from inside run_to_idle()/run_until() -- shard threads
//     queue upcalls, the driver drains them.  The protocol layer above
//     therefore needs no locks, on any backend.
//   * shared transport state (transfer slots, dedup, stats, failure
//     marks) sits behind one mutex; shard threads hold it only for the
//     microseconds an event takes to classify.
//
// NOT deterministic: arrival interleaving is real.  The scenario replay
// machinery requires SimTransport; this backend exists for the serving
// layer (src/serve) and wall-clock benches, where p50/p99 latency under
// open-loop load is the point.  obs::Tracer / obs::FlightRecorder hooks
// are accepted but inert here (both are documented single-threaded,
// deterministic-replay instruments).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "protocol/transport.hpp"

namespace voronet::protocol {

class ThreadTransport final : public Transport {
 public:
  /// `shards`: actor threads (0 = derive from hardware_concurrency).
  /// `patience`: run_to_idle's wall-clock cap before it reports
  /// budget_exhausted instead of quiescence.
  explicit ThreadTransport(const NetworkConfig& config, unsigned shards = 0,
                           double patience = 60.0);
  ~ThreadTransport() override;

  ThreadTransport(const ThreadTransport&) = delete;
  ThreadTransport& operator=(const ThreadTransport&) = delete;

  void set_sink(Sink sink) override { sink_ = std::move(sink); }
  void set_abandon_handler(AbandonHandler handler) override {
    abandon_ = std::move(handler);
  }

  [[nodiscard]] Message draft(std::size_t reserve_entries = 0) override;
  void send(Message msg) override;

  void crash(NodeId node) override;
  void revive(NodeId node) override;
  [[nodiscard]] bool crashed(NodeId node) const override;

  void stall(NodeId node) override;
  void resume(NodeId node) override;
  void resume_all() override;
  [[nodiscard]] bool stalled(NodeId node) const override;

  void begin_loss_burst(double extra_drop) override;
  void end_loss_burst(double extra_drop) override;
  void begin_latency_spike(double factor) override;
  void end_latency_spike(double factor) override;
  void begin_duplication(double probability) override;
  void end_duplication(double probability) override;

  void set_link_filter(LinkFilter up) override;
  void clear_link_filter() override;

  [[nodiscard]] double now() const override;
  void schedule(double delay, Task fn) override;
  RunResult run_to_idle(std::size_t max_events) override;
  RunResult run_until(double horizon) override;

  [[nodiscard]] std::size_t in_flight() const override;
  [[nodiscard]] std::size_t stalled_backlog() const override;
  [[nodiscard]] std::size_t dedup_entries() const override;
  [[nodiscard]] std::size_t dedup_window_size() const override;
  [[nodiscard]] std::size_t memory_bytes() const override;

  [[nodiscard]] sim::Metrics& metrics() override { return metrics_; }
  [[nodiscard]] const sim::Metrics& metrics() const override {
    return metrics_;
  }
  [[nodiscard]] const NetworkStats& stats() const override { return stats_; }
  [[nodiscard]] const NetworkConfig& config() const override {
    return config_;
  }
  [[nodiscard]] double retransmit_timeout() const override { return rto_; }

  void set_tracer(obs::Tracer*) override {}       // inert (header comment)
  void set_recorder(obs::FlightRecorder*) override {}

  [[nodiscard]] bool deterministic() const override { return false; }
  [[nodiscard]] const char* backend_name() const override { return "thread"; }

  [[nodiscard]] unsigned shard_count() const {
    return static_cast<unsigned>(shards_.size());
  }

 private:
  /// One reliable-transfer slot (sender-side state + receiver dedup bit),
  /// generation-checked by transfer id exactly like Network's.
  struct Transfer {
    Message msg;
    std::uint64_t id = 0;  ///< 0 = free slot
    std::size_t attempts = 1;
    bool delivered = false;  ///< receiver-side dedup bit
    bool settled = false;    ///< ack seen; retransmit timer is a no-op
  };

  /// Bounded FIFO dedup window for transfers whose slot is recycled.
  struct OrphanWindow {
    struct Rec {
      std::uint64_t transfer_id = 0;
      NodeId dst = kNoNode;
    };
    std::vector<Rec> ring;
    std::size_t next = 0;
    std::size_t count = 0;

    [[nodiscard]] bool empty() const { return count == 0; }
    [[nodiscard]] std::size_t size() const { return count; }
    bool insert(std::uint64_t transfer_id, NodeId dst);
    void erase(std::uint64_t transfer_id);
    void erase_dst(NodeId dst);
  };

  /// A timed wire event owned by one shard: a data arrival at a node's
  /// mailbox, an ack arrival back at the sender, or a retransmit timer.
  struct WireEvent {
    double at = 0.0;        ///< monotonic deadline (seconds since start)
    std::uint64_t seq = 0;  ///< FIFO tie-break within a shard
    enum Kind : std::uint8_t { kArrive, kAck, kRetransmit } kind = kArrive;
    Message msg;               ///< kArrive payload / kAck routing fields
    std::uint32_t slot = 0;    ///< kRetransmit: transfer slot
    std::uint64_t transfer = 0;  ///< kRetransmit: generation check
  };

  struct Shard {
    std::mutex m;
    std::condition_variable cv;
    std::vector<WireEvent> inbox;  ///< MPSC injection side
    std::vector<WireEvent> heap;   ///< (at, seq) min-heap, owner-only
    bool stop = false;
  };

  /// Work queued for the driving thread (sink / abandon invocations).
  struct Upcall {
    enum Kind : std::uint8_t { kDeliver, kAbandon } kind = kDeliver;
    Message msg;
  };

  /// A schedule()d application task (driver-thread only).
  struct DriverTimer {
    double at = 0.0;
    std::uint64_t seq = 0;
    Task fn;
  };

  [[nodiscard]] Shard& shard_of(NodeId node) {
    const auto n = static_cast<std::uint64_t>(node < 0 ? 0 : node);
    return *shards_[static_cast<std::size_t>(n % shards_.size())];
  }

  void shard_loop(Shard& shard);
  void post(Shard& shard, WireEvent ev);
  void process_event(WireEvent& ev);

  // All *_locked helpers require g_ held.
  void transmit_locked(const Message& msg);
  void receive_locked(Message msg);
  void settle_locked(std::uint32_t slot, std::uint64_t transfer_id);
  void retransmit_locked(std::uint32_t slot, std::uint64_t transfer_id);
  [[nodiscard]] Transfer* live_transfer_locked(std::uint32_t slot,
                                              std::uint64_t transfer_id);
  std::uint32_t alloc_slot_locked();
  void free_slot_locked(std::uint32_t slot);
  void recycle_payload_locked(std::vector<ViewEntry>&& entries);
  [[nodiscard]] double backoff_timeout(std::uint64_t transfer_id,
                                       std::size_t attempts) const;
  [[nodiscard]] double effective_drop_locked() const;
  [[nodiscard]] bool flag_locked(const std::vector<std::uint8_t>& flags,
                                 NodeId node) const;
  static void set_flag(std::vector<std::uint8_t>& flags, NodeId node, bool on);
  void push_upcall(Upcall up);
  /// Drain queued upcalls + due driver timers; returns #processed.
  std::size_t pump();
  [[nodiscard]] bool quiescent() const;

  NetworkConfig config_;
  double rto_ = 0.0;
  double rto_cap_ = 0.0;
  double patience_;
  std::chrono::steady_clock::time_point start_;

  Sink sink_;
  AbandonHandler abandon_;

  // --- Shared transport state (behind g_) ----------------------------------
  mutable std::mutex g_;
  Rng rng_;
  sim::Metrics metrics_;
  NetworkStats stats_;
  std::uint64_t next_transfer_ = 1;
  std::deque<Transfer> transfers_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t in_flight_ = 0;
  OrphanWindow orphans_;
  std::vector<std::vector<ViewEntry>> payload_pool_;
  std::vector<std::uint8_t> crashed_;
  std::vector<std::uint8_t> stalled_;
  std::vector<std::vector<Message>> stall_backlog_;
  std::size_t backlog_count_ = 0;
  std::vector<double> loss_bursts_;
  std::vector<double> latency_spikes_;
  std::vector<double> duplications_;
  LinkFilter link_up_;
  std::atomic<std::uint64_t> wire_events_{0};  ///< scheduled, unprocessed
  std::atomic<std::uint64_t> event_seq_{0};

  // --- Shards --------------------------------------------------------------
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> threads_;

  // --- Driver side ---------------------------------------------------------
  mutable std::mutex up_m_;
  std::condition_variable up_cv_;
  std::deque<Upcall> upcalls_;
  std::vector<DriverTimer> timers_;  ///< min-heap; driver-thread only
  std::uint64_t timer_seq_ = 0;
};

}  // namespace voronet::protocol
