#include "protocol/query_harness.hpp"

#include <algorithm>
#include <memory>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "workload/distributions.hpp"

namespace voronet::protocol {

void QueryHarness::populate(std::size_t objects, std::uint64_t seed,
                            double spacing) {
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  Rng rng(seed);
  std::size_t i = 0;
  while (harness_.node_count() + harness_.pending_joins() < objects) {
    harness_.join_after(spacing * static_cast<double>(i++), gen.next(rng));
  }
  const auto run = harness_.run_to_idle();
  VORONET_EXPECT(!run.budget_exhausted, "query-harness growth did not quiesce");
}

double QueryHarness::Differential::recall() const {
  // An empty truth set is only "fully recalled" by an empty result: the
  // old unconditional 1.0 hid message-layer false positives entirely.
  if (truth.matches.empty()) return msg.matches.empty() ? 1.0 : 0.0;
  std::size_t found = 0;
  for (const NodeId id : msg.matches) {
    if (std::binary_search(truth.matches.begin(), truth.matches.end(), id)) {
      ++found;
    }
  }
  return static_cast<double>(found) /
         static_cast<double>(truth.matches.size());
}

double QueryHarness::Differential::precision() const {
  if (msg.matches.empty()) return 1.0;  // nothing found, nothing false
  std::size_t correct = 0;
  for (const NodeId id : msg.matches) {
    if (std::binary_search(truth.matches.begin(), truth.matches.end(), id)) {
      ++correct;
    }
  }
  return static_cast<double>(correct) /
         static_cast<double>(msg.matches.size());
}

QueryHarness::Differential QueryHarness::grade(
    std::uint64_t query_id, const RegionQueryResult& truth) const {
  Differential d;
  d.truth = truth;
  d.msg = harness_.query_record(query_id);
  d.completed = d.msg.done;

  std::vector<NodeId> truth_owners = truth.owners;
  std::sort(truth_owners.begin(), truth_owners.end());
  std::vector<NodeId> msg_owners;
  msg_owners.reserve(d.msg.owners.size());
  for (const ViewEntry& e : d.msg.owners) msg_owners.push_back(e.id);
  d.owners_match = msg_owners == truth_owners;
  d.matches_match = d.msg.matches == truth.matches;  // both sorted
  d.counts_match = d.msg.forward_sends == truth.forward_messages &&
                   d.msg.result_sends == truth.result_messages;
  return d;
}

QueryHarness::Differential QueryHarness::collect(
    std::uint64_t query_id) const {
  const ProtocolHarness::QueryRecord& rec = harness_.query_record(query_id);
  const Overlay& overlay = harness_.overlay();
  // The result sets of the sequential execution are independent of the
  // entry object; fall back to any live object when the issuer departed.
  NodeId from = rec.spec.issuer;
  if (!overlay.contains(from)) {
    VORONET_EXPECT(!overlay.objects().empty(),
                   "grading a query against an empty overlay");
    from = overlay.objects().front();
  }
  const RegionQueryResult truth =
      rec.spec.kind == QueryKind::kRange
          ? range_query(overlay, from, rec.spec.a, rec.spec.b, rec.spec.tol)
          : radius_query(overlay, from, rec.spec.a, rec.spec.tol);
  return grade(query_id, truth);
}

QueryHarness::ChurnScenarioReport QueryHarness::run_churn_scenario(
    const ChurnScenario& s) {
  VORONET_EXPECT(harness_.node_count() > 0,
                 "churn scenario needs a populated overlay (populate())");
  // One shared RNG drives both the schedule-time draws (times, query
  // specs) and the fire-time draws (leave/crash victims are chosen from
  // the population alive at that instant); event order is deterministic,
  // so the whole scenario replays bit-for-bit from the seed.
  const auto rng = std::make_shared<Rng>(s.seed);
  sim::EventQueue& queue = harness_.queue();
  const std::size_t floor = std::max<std::size_t>(s.min_population, 4);

  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  for (std::size_t i = 0; i < s.joins; ++i) {
    harness_.join_after(rng->uniform(0.0, s.horizon), gen.next(*rng));
  }
  for (std::size_t i = 0; i < s.leaves; ++i) {
    queue.schedule(rng->uniform(0.0, s.horizon), [this, rng, floor] {
      if (harness_.node_count() <= floor) return;
      harness_.leave(harness_.random_node(*rng));
    });
  }
  for (std::size_t i = 0; i < s.crashes; ++i) {
    queue.schedule(rng->uniform(0.0, s.horizon), [this, rng, floor] {
      if (harness_.node_count() <= floor) return;
      harness_.crash(harness_.random_node(*rng));
    });
  }
  std::vector<std::uint64_t> ids;
  ids.reserve(s.queries);
  for (std::size_t i = 0; i < s.queries; ++i) {
    const NodeId from = harness_.random_node(*rng);
    const double at = rng->uniform(0.0, s.horizon);
    if (i % 2 == 0) {
      const Vec2 c{rng->uniform(), rng->uniform()};
      ids.push_back(issue_radius(from, c, rng->uniform(0.03, 0.15), at));
    } else {
      const Vec2 a{rng->uniform(), rng->uniform()};
      const Vec2 b{rng->uniform(), rng->uniform()};
      ids.push_back(issue_range(from, a, b, rng->uniform(0.0, 0.05), at));
    }
  }

  const auto run = harness_.run_to_idle();

  ChurnScenarioReport rep;
  rep.queries = s.queries;
  rep.quiesced = !run.budget_exhausted;
  rep.converged = harness_.verify_views().converged();
  double recall_sum = 0.0;
  double precision_sum = 0.0;
  for (const std::uint64_t id : ids) {
    const Differential d = collect(id);
    if (!d.completed) continue;
    ++rep.completed;
    const double r = d.recall();
    const double p = d.precision();
    recall_sum += r;
    precision_sum += p;
    rep.min_recall = std::min(rep.min_recall, r);
    rep.min_precision = std::min(rep.min_precision, p);
    if (r == 1.0 && p == 1.0) ++rep.exact;
    if (d.msg.epoch > 1) ++rep.reissued;
    rep.max_epochs = std::max(rep.max_epochs, d.msg.epoch);
    rep.branch_failovers += d.msg.branch_failovers;
  }
  if (rep.completed > 0) {
    rep.mean_recall = recall_sum / static_cast<double>(rep.completed);
    rep.mean_precision = precision_sum / static_cast<double>(rep.completed);
  }
  return rep;
}

QueryHarness::Differential QueryHarness::run_range(NodeId from, Vec2 a,
                                                   Vec2 b,
                                                   double tolerance) {
  const RegionQueryResult truth =
      range_query(harness_.overlay(), from, a, b, tolerance);
  const std::uint64_t id = harness_.issue_range_query(from, a, b, tolerance);
  const auto run = harness_.run_to_idle();
  VORONET_EXPECT(!run.budget_exhausted, "range query did not quiesce");
  return grade(id, truth);
}

QueryHarness::Differential QueryHarness::run_radius(NodeId from, Vec2 center,
                                                    double radius) {
  const RegionQueryResult truth =
      radius_query(harness_.overlay(), from, center, radius);
  const std::uint64_t id = harness_.issue_radius_query(from, center, radius);
  const auto run = harness_.run_to_idle();
  VORONET_EXPECT(!run.budget_exhausted, "radius query did not quiesce");
  return grade(id, truth);
}

}  // namespace voronet::protocol
