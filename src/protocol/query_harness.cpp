#include "protocol/query_harness.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/expect.hpp"
#include "common/rng.hpp"

namespace voronet::protocol {

void QueryHarness::populate(std::size_t objects, std::uint64_t seed,
                            double spacing) {
  populate(objects, seed, workload::DistributionConfig::uniform(), spacing);
}

void QueryHarness::populate(std::size_t objects, std::uint64_t seed,
                            const workload::DistributionConfig& dist,
                            double spacing) {
  workload::PointGenerator gen(dist);
  Rng rng(seed);
  std::size_t i = 0;
  while (harness_.node_count() + harness_.pending_joins() < objects) {
    harness_.join_after(spacing * static_cast<double>(i++), gen.next(rng));
  }
  const auto run = harness_.run_to_idle();
  VORONET_EXPECT(!run.budget_exhausted, "query-harness growth did not quiesce");
}

double QueryHarness::Differential::recall() const {
  // An empty truth set is only "fully recalled" by an empty result: the
  // old unconditional 1.0 hid message-layer false positives entirely.
  if (truth.matches.empty()) return msg.matches.empty() ? 1.0 : 0.0;
  std::size_t found = 0;
  for (const NodeId id : msg.matches) {
    if (std::binary_search(truth.matches.begin(), truth.matches.end(), id)) {
      ++found;
    }
  }
  return static_cast<double>(found) /
         static_cast<double>(truth.matches.size());
}

double QueryHarness::Differential::precision() const {
  if (msg.matches.empty()) return 1.0;  // nothing found, nothing false
  std::size_t correct = 0;
  for (const NodeId id : msg.matches) {
    if (std::binary_search(truth.matches.begin(), truth.matches.end(), id)) {
      ++correct;
    }
  }
  return static_cast<double>(correct) /
         static_cast<double>(msg.matches.size());
}

QueryHarness::Differential QueryHarness::grade(
    std::uint64_t query_id, const RegionQueryResult& truth) const {
  Differential d;
  d.truth = truth;
  d.msg = harness_.query_record(query_id);
  d.completed = d.msg.done;

  std::vector<NodeId> truth_owners = truth.owners;
  std::sort(truth_owners.begin(), truth_owners.end());
  std::vector<NodeId> msg_owners;
  msg_owners.reserve(d.msg.owners.size());
  for (const ViewEntry& e : d.msg.owners) msg_owners.push_back(e.id);
  d.owners_match = msg_owners == truth_owners;
  d.matches_match = d.msg.matches == truth.matches;  // both sorted
  d.counts_match = d.msg.forward_sends == truth.forward_messages &&
                   d.msg.result_sends == truth.result_messages;
  return d;
}

QueryHarness::Differential QueryHarness::collect(
    std::uint64_t query_id) const {
  const ProtocolHarness::QueryRecord& rec = harness_.query_record(query_id);
  const Overlay& overlay = harness_.overlay();
  // The result sets of the sequential execution are independent of the
  // entry object; fall back to any live object when the issuer departed.
  NodeId from = rec.spec.issuer;
  if (!overlay.contains(from)) {
    VORONET_EXPECT(!overlay.objects().empty(),
                   "grading a query against an empty overlay");
    from = overlay.objects().front();
  }
  const RegionQueryResult truth =
      rec.spec.kind == QueryKind::kRange
          ? range_query(overlay, from, rec.spec.a, rec.spec.b, rec.spec.tol)
          : radius_query(overlay, from, rec.spec.a, rec.spec.tol);
  return grade(query_id, truth);
}

// ---------------------------------------------------------------------------
// Scenario event scheduling
// ---------------------------------------------------------------------------

void QueryHarness::issue_scenario_query(
    const scenario::Event& event, bool range, double delay,
    const std::shared_ptr<ScheduleContext>& ctx) {
  const NodeId from = harness_.random_node(ctx->rng);
  QueryGeometry spec;
  if (event.has_spec) {
    spec.a = event.a;
    spec.b = event.b;
    spec.tol = event.tol;
  } else {
    spec = range ? draw_range_geometry(ctx->rng, harness_.node_count())
                 : draw_radius_geometry(ctx->rng, harness_.node_count());
  }
  ctx->query_ids.push_back(
      range ? issue_range(from, spec.a, spec.b, spec.tol, delay)
            : issue_radius(from, spec.a, spec.tol, delay));
}

NodeId QueryHarness::select_target(scenario::Target target, Rng& rng) const {
  using scenario::Target;
  if (target == Target::kUniformTarget) return harness_.random_node(rng);
  const Overlay& overlay = harness_.overlay();
  NodeId best = kNoObject;
  std::size_t best_score = 0;
  for (const NodeId id : overlay.objects()) {
    const NodeView& v = overlay.view(id);
    std::size_t score = 0;
    switch (target) {
      case Target::kHighestDegree:
        score = v.degree();
        break;
      case Target::kLongLinkHub:
        score = v.blr.size();
        break;
      case Target::kDensestRegion:
        score = v.cn.size();
        break;
      case Target::kUniformTarget:
        break;
    }
    // live_ids_ iteration order is insertion order, not id order, so the
    // tie-break must compare ids explicitly for a deterministic pick.
    if (best == kNoObject || score > best_score ||
        (score == best_score && id < best)) {
      best = id;
      best_score = score;
    }
  }
  VORONET_EXPECT(best != kNoObject, "targeted selector on an empty overlay");
  return best;
}

void QueryHarness::fire_leave(const std::shared_ptr<ScheduleContext>& ctx,
                              std::size_t floor, scenario::Target target) {
  if (harness_.node_count() <= floor) return;
  harness_.leave(select_target(target, ctx->rng));
  ++ctx->leaves;
}

void QueryHarness::fire_crash(const std::shared_ptr<ScheduleContext>& ctx,
                              std::size_t floor, scenario::Target target) {
  if (harness_.node_count() <= floor) return;
  const NodeId victim = select_target(target, ctx->rng);
  ctx->crashed_positions.push_back(harness_.overlay().position(victim));
  harness_.crash(victim);
  ++ctx->crashes;
}

void QueryHarness::fire_stall(const std::shared_ptr<ScheduleContext>& ctx,
                              std::size_t floor, scenario::Target target,
                              double duration) {
  // The floor guards stalls too: wedging most of a tiny overlay stops
  // every query from completing within the run budget.
  if (harness_.node_count() <= floor) return;
  Transport& network = harness_.network();
  // Retry a few draws so overlapping uniform stalls tend to pick distinct
  // victims (targeted selectors are deterministic: re-stalling the same
  // node extends nothing -- the kEven spread already staggers windows).
  NodeId victim = select_target(target, ctx->rng);
  for (int i = 0; i < 4 && network.stalled(victim) &&
                  target == scenario::Target::kUniformTarget;
       ++i) {
    victim = select_target(target, ctx->rng);
  }
  if (network.stalled(victim)) return;
  network.stall(victim);
  ++ctx->stalls;
  // Auto-resume when the window closes: a stall is a *window*, so every
  // scenario quiesces without needing a matching kResume event.
  harness_.network().schedule(duration, [this, victim] {
    harness_.network().resume(victim);
  });
}

void QueryHarness::schedule_event(
    const scenario::Event& event, double t0,
    const std::shared_ptr<ScheduleContext>& ctx) {
  using scenario::EventKind;
  using scenario::QueryMix;
  using scenario::Spread;
  Transport& queue = harness_.network();
  const double now = queue.now();
  // An event whose start the run has already passed -- a preceding
  // quiesce barrier drained beyond it, and how far a drain advances the
  // clock depends on the retransmit tail, hence on seed and loss --
  // fires immediately: a declarative timeline must not become invalid
  // under a parameter edit.
  const double start = std::max(t0 + event.at, now);
  // The floor below which leave/crash fire-time bodies become no-ops.
  const std::size_t floor = std::max<std::size_t>(event.min_population, 4);

  /// Time of operation i under the event's spread (count-based spreads;
  /// Poisson streams re-arm themselves at fire time instead).
  const auto op_time = [&](std::size_t i) {
    switch (event.spread) {
      case Spread::kUniform:
        return ctx->rng.uniform(start, start + event.duration);
      case Spread::kEven:
      case Spread::kPoisson:
        break;
    }
    return event.count <= 1 ? start
                            : start + event.duration *
                                          static_cast<double>(i) /
                                          static_cast<double>(event.count);
  };
  /// Arm a self-rescheduling Poisson process: `fire` runs at each arrival
  /// until the window closes.  The closure owns ctx, so the stream stays
  /// alive for as long as it keeps re-arming.
  const auto arm_poisson = [&](auto&& fire) {
    const double end = start + event.duration;
    auto arm = [this, &queue, ctx, rate = event.rate, end,
                fire = std::forward<decltype(fire)>(fire)](
                   auto&& self, double from) -> void {
      const double delay = ctx->rng.exponential(rate);
      if (from + delay > end) return;
      queue.schedule(from + delay - queue.now(),
                     [self, fire, at = from + delay] {
                       fire();
                       self(self, at);
                     });
    };
    arm(arm, start);
  };

  switch (event.kind) {
    case EventKind::kJoinBurst: {
      if (event.spread == Spread::kPoisson) {
        arm_poisson([this, ctx] {
          harness_.join_after(0.0, ctx->points.next(ctx->rng));
          ++ctx->joins;
        });
        break;
      }
      for (std::size_t i = 0; i < event.count; ++i) {
        harness_.join_after(op_time(i) - now, ctx->points.next(ctx->rng));
        ++ctx->joins;
      }
      break;
    }
    case EventKind::kLeave: {
      const auto fire = [this, ctx, floor, target = event.target] {
        fire_leave(ctx, floor, target);
      };
      if (event.spread == Spread::kPoisson) {
        arm_poisson(fire);
        break;
      }
      for (std::size_t i = 0; i < event.count; ++i) {
        queue.schedule(op_time(i) - now, fire);
      }
      break;
    }
    case EventKind::kCrash: {
      const auto fire = [this, ctx, floor, target = event.target] {
        fire_crash(ctx, floor, target);
      };
      if (event.spread == Spread::kPoisson) {
        arm_poisson(fire);
        break;
      }
      for (std::size_t i = 0; i < event.count; ++i) {
        queue.schedule(op_time(i) - now, fire);
      }
      break;
    }
    case EventKind::kRevive: {
      queue.schedule(start - now, [this, ctx, count = event.count] {
        for (std::size_t i = 0; i < count && !ctx->crashed_positions.empty();
             ++i) {
          harness_.join_after(0.0, ctx->crashed_positions.back());
          ctx->crashed_positions.pop_back();
          ++ctx->revives;
          ++ctx->joins;
        }
      });
      break;
    }
    case EventKind::kPartitionStart: {
      queue.schedule(start - now, [this, ctx, axis = event.axis_value,
                                   target = event.target] {
        // Node positions are immutable, so consulting the ground truth
        // for the side of the cut is safe.  A targeted cut aims through
        // the selected node's x instead of the declared axis, isolating
        // (say) the long-link hub on whichever side is smaller.
        const Overlay& overlay = harness_.overlay();
        double cut = axis;
        if (target != scenario::Target::kUniformTarget &&
            harness_.node_count() > 0) {
          cut = overlay.position(select_target(target, ctx->rng)).x;
        }
        harness_.network().set_link_filter(
            [&overlay, cut](NodeId a, NodeId b) {
              const auto west = [&overlay, cut](NodeId n) {
                return overlay.contains(n) ? overlay.position(n).x < cut
                                           : true;
              };
              return west(a) == west(b);
            });
      });
      break;
    }
    case EventKind::kPartitionHeal: {
      queue.schedule(start - now,
                     [this] { harness_.network().clear_link_filter(); });
      break;
    }
    case EventKind::kRangeQuery:
      issue_scenario_query(event, /*range=*/true, start - now, ctx);
      break;
    case EventKind::kRadiusQuery:
      issue_scenario_query(event, /*range=*/false, start - now, ctx);
      break;
    case EventKind::kQueryStream: {
      const auto is_range = [mix = event.mix](std::size_t i) {
        return mix == QueryMix::kRange ||
               (mix == QueryMix::kMixed && i % 2 == 0);
      };
      if (event.spread == Spread::kPoisson) {
        // Fire-time issue: the spec must see the population of the issue
        // instant, so the stream schedules the issue itself, not a
        // pre-drawn query.
        auto counter = std::make_shared<std::size_t>(0);
        arm_poisson([this, ctx, event, counter, is_range] {
          issue_scenario_query(event, is_range((*counter)++), 0.0, ctx);
        });
        break;
      }
      for (std::size_t i = 0; i < event.count; ++i) {
        issue_scenario_query(event, is_range(i), op_time(i) - now, ctx);
      }
      break;
    }
    case EventKind::kStall: {
      // All `count` stall windows open at `start` and close together at
      // `start + duration` (fire_stall schedules each auto-resume); the
      // victims are resolved at fire time against the live population.
      for (std::size_t i = 0; i < event.count; ++i) {
        queue.schedule(start - now, [this, ctx, floor, target = event.target,
                                     duration = event.duration] {
          fire_stall(ctx, floor, target, duration);
        });
      }
      break;
    }
    case EventKind::kResume: {
      queue.schedule(start - now, [this] { harness_.network().resume_all(); });
      break;
    }
    case EventKind::kLossBurst: {
      queue.schedule(start - now, [this, m = event.magnitude] {
        harness_.network().begin_loss_burst(m);
      });
      queue.schedule(start + event.duration - now, [this, m = event.magnitude] {
        harness_.network().end_loss_burst(m);
      });
      break;
    }
    case EventKind::kLatencySpike: {
      queue.schedule(start - now, [this, m = event.magnitude] {
        harness_.network().begin_latency_spike(m);
      });
      queue.schedule(start + event.duration - now, [this, m = event.magnitude] {
        harness_.network().end_latency_spike(m);
      });
      break;
    }
    case EventKind::kDuplicate: {
      queue.schedule(start - now, [this, m = event.magnitude] {
        harness_.network().begin_duplication(m);
      });
      queue.schedule(start + event.duration - now, [this, m = event.magnitude] {
        harness_.network().end_duplication(m);
      });
      break;
    }
    case EventKind::kQuiesce:
    case EventKind::kVerifyBarrier:
      VORONET_EXPECT(false,
                     "barrier events sequence the run, not the queue; "
                     "scenario::Runner handles them");
  }
}

// ---------------------------------------------------------------------------
// Churn-concurrent scenario driver (deprecated shim)
// ---------------------------------------------------------------------------

std::vector<scenario::Event> QueryHarness::ChurnScenario::events() const {
  using scenario::Event;
  using scenario::QueryMix;
  using scenario::Spread;
  return {
      Event::join_burst(0.0, joins, horizon, Spread::kUniform),
      Event::leave(0.0, leaves, horizon, min_population),
      Event::crash(0.0, crashes, horizon, min_population),
      Event::query_stream(0.0, queries, horizon, QueryMix::kMixed,
                          Spread::kUniform),
  };
}

QueryHarness::ChurnScenarioReport QueryHarness::run_churn_scenario(
    const ChurnScenario& s) {
  VORONET_EXPECT(harness_.node_count() > 0,
                 "churn scenario needs a populated overlay (populate())");
  // One shared context drives both the schedule-time draws (times, query
  // specs) and the fire-time draws (leave/crash victims are chosen from
  // the population alive at that instant); event order is deterministic,
  // so the whole scenario replays bit-for-bit from the seed.
  const auto ctx = std::make_shared<ScheduleContext>(
      s.seed, workload::DistributionConfig::uniform());
  const double t0 = harness_.network().now();
  for (const scenario::Event& e : s.events()) schedule_event(e, t0, ctx);

  const auto run = harness_.run_to_idle();

  ChurnScenarioReport rep;
  rep.queries = ctx->query_ids.size();
  rep.quiesced = !run.budget_exhausted;
  rep.converged = harness_.verify_views().converged();
  double recall_sum = 0.0;
  double precision_sum = 0.0;
  for (const std::uint64_t id : ctx->query_ids) {
    const Differential d = collect(id);
    if (!d.completed) continue;
    ++rep.completed;
    const double r = d.recall();
    const double p = d.precision();
    recall_sum += r;
    precision_sum += p;
    rep.min_recall = std::min(rep.min_recall, r);
    rep.min_precision = std::min(rep.min_precision, p);
    if (r == 1.0 && p == 1.0) ++rep.exact;
    if (d.msg.epoch > 1) ++rep.reissued;
    rep.max_epochs = std::max(rep.max_epochs, d.msg.epoch);
    rep.branch_failovers += d.msg.branch_failovers;
  }
  if (rep.completed > 0) {
    rep.mean_recall = recall_sum / static_cast<double>(rep.completed);
    rep.mean_precision = precision_sum / static_cast<double>(rep.completed);
  }
  return rep;
}

QueryHarness::Differential QueryHarness::run_range(NodeId from, Vec2 a,
                                                   Vec2 b,
                                                   double tolerance) {
  const RegionQueryResult truth =
      range_query(harness_.overlay(), from, a, b, tolerance);
  const std::uint64_t id = harness_.issue_range_query(from, a, b, tolerance);
  const auto run = harness_.run_to_idle();
  VORONET_EXPECT(!run.budget_exhausted, "range query did not quiesce");
  return grade(id, truth);
}

QueryHarness::Differential QueryHarness::run_radius(NodeId from, Vec2 center,
                                                    double radius) {
  const RegionQueryResult truth =
      radius_query(harness_.overlay(), from, center, radius);
  const std::uint64_t id = harness_.issue_radius_query(from, center, radius);
  const auto run = harness_.run_to_idle();
  VORONET_EXPECT(!run.budget_exhausted, "radius query did not quiesce");
  return grade(id, truth);
}

}  // namespace voronet::protocol
