#include "protocol/query_harness.hpp"

#include <algorithm>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "workload/distributions.hpp"

namespace voronet::protocol {

void QueryHarness::populate(std::size_t objects, std::uint64_t seed,
                            double spacing) {
  workload::PointGenerator gen(workload::DistributionConfig::uniform());
  Rng rng(seed);
  std::size_t i = 0;
  while (harness_.node_count() + harness_.pending_joins() < objects) {
    harness_.join_after(spacing * static_cast<double>(i++), gen.next(rng));
  }
  const auto run = harness_.run_to_idle();
  VORONET_EXPECT(!run.budget_exhausted, "query-harness growth did not quiesce");
}

double QueryHarness::Differential::recall() const {
  if (truth.matches.empty()) return 1.0;
  std::size_t found = 0;
  for (const NodeId id : msg.matches) {
    if (std::binary_search(truth.matches.begin(), truth.matches.end(), id)) {
      ++found;
    }
  }
  return static_cast<double>(found) /
         static_cast<double>(truth.matches.size());
}

QueryHarness::Differential QueryHarness::grade(
    std::uint64_t query_id, const RegionQueryResult& truth) const {
  Differential d;
  d.truth = truth;
  d.msg = harness_.query_record(query_id);
  d.completed = d.msg.done;

  std::vector<NodeId> truth_owners = truth.owners;
  std::sort(truth_owners.begin(), truth_owners.end());
  std::vector<NodeId> msg_owners;
  msg_owners.reserve(d.msg.owners.size());
  for (const ViewEntry& e : d.msg.owners) msg_owners.push_back(e.id);
  d.owners_match = msg_owners == truth_owners;
  d.matches_match = d.msg.matches == truth.matches;  // both sorted
  d.counts_match = d.msg.forward_sends == truth.forward_messages &&
                   d.msg.result_sends == truth.result_messages;
  return d;
}

QueryHarness::Differential QueryHarness::collect(
    std::uint64_t query_id) const {
  const ProtocolHarness::QueryRecord& rec = harness_.query_record(query_id);
  const Overlay& overlay = harness_.overlay();
  // The result sets of the sequential execution are independent of the
  // entry object; fall back to any live object when the issuer departed.
  NodeId from = rec.spec.issuer;
  if (!overlay.contains(from)) {
    VORONET_EXPECT(!overlay.objects().empty(),
                   "grading a query against an empty overlay");
    from = overlay.objects().front();
  }
  const RegionQueryResult truth =
      rec.spec.kind == QueryKind::kRange
          ? range_query(overlay, from, rec.spec.a, rec.spec.b, rec.spec.tol)
          : radius_query(overlay, from, rec.spec.a, rec.spec.tol);
  return grade(query_id, truth);
}

QueryHarness::Differential QueryHarness::run_range(NodeId from, Vec2 a,
                                                   Vec2 b,
                                                   double tolerance) {
  const RegionQueryResult truth =
      range_query(harness_.overlay(), from, a, b, tolerance);
  const std::uint64_t id = harness_.issue_range_query(from, a, b, tolerance);
  const auto run = harness_.run_to_idle();
  VORONET_EXPECT(!run.budget_exhausted, "range query did not quiesce");
  return grade(id, truth);
}

QueryHarness::Differential QueryHarness::run_radius(NodeId from, Vec2 center,
                                                    double radius) {
  const RegionQueryResult truth =
      radius_query(harness_.overlay(), from, center, radius);
  const std::uint64_t id = harness_.issue_radius_query(from, center, radius);
  const auto run = harness_.run_to_idle();
  VORONET_EXPECT(!run.budget_exhausted, "radius query did not quiesce");
  return grade(id, truth);
}

}  // namespace voronet::protocol
