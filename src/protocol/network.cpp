#include "protocol/network.hpp"

#include <utility>

#include "common/expect.hpp"

namespace voronet::protocol {

Network::Network(sim::EventQueue& queue, const NetworkConfig& config)
    : queue_(queue), config_(config), rng_(config.seed) {
  VORONET_EXPECT(config.drop_probability >= 0.0 &&
                     config.drop_probability < 1.0,
                 "drop probability must lie in [0, 1)");
  // Auto-RTO: a round trip of pessimistic one-way delays plus slack, so
  // that under fixed/uniform latency a timeout implies a genuine loss.
  rto_ = config.retransmit_timeout > 0.0
             ? config.retransmit_timeout
             : 2.0 * config.latency.high_quantile() + 0.01;
}

void Network::send(Message msg) {
  msg.transfer_id = next_transfer_++;
  ++stats_.sends;
  const bool reliable = msg.type != sim::MessageKind::kAck;
  transmit(msg);
  if (reliable) {
    const std::uint64_t id = msg.transfer_id;
    pending_.emplace(id, Pending{std::move(msg), 1, sim::kNoTimer});
    arm_timer(id);
  }
}

void Network::crash(NodeId node) { crashed_.insert(node); }

void Network::revive(NodeId node) {
  // A recycled id is a brand-new endpoint: it must not inherit its
  // predecessor's unsettled transfers either.  A reliable transfer still
  // armed from the dead predecessor's era would otherwise retransmit into
  // the new endpoint (stale content, fresh dedup table) or resend on the
  // dead sender's behalf.  Abandon them through the regular give-up path
  // -- BEFORE clearing the crashed mark, so the application layer's
  // abandon handler still observes which side died and can re-ship
  // authoritative content from a live witness.
  std::vector<std::uint64_t> stale;
  for (const auto& [id, p] : pending_) {
    if (p.msg.src == node || p.msg.dst == node) stale.push_back(id);
  }
  for (const std::uint64_t id : stale) {
    const auto it = pending_.find(id);
    if (it == pending_.end()) continue;  // settled by a handler's send
    queue_.cancel(it->second.timer);
    abandon_transfer(it);
  }
  crashed_.erase(node);
  // ... nor its predecessor's dedup history.
  seen_.erase(node);
}

void Network::abandon_transfer(
    std::unordered_map<std::uint64_t, Pending>::iterator it) {
  ++stats_.abandoned;
  const Message msg = std::move(it->second.msg);
  pending_.erase(it);
  // The settling ack will never come, so drop the receiver-side dedup
  // entry here (keeps seen_ bounded by the genuinely in-flight count).
  const auto seen_it = seen_.find(msg.dst);
  if (seen_it != seen_.end()) {
    seen_it->second.erase(msg.transfer_id);
    if (seen_it->second.empty()) seen_.erase(seen_it);
  }
  // Tell the application layer last: the handler may send afresh.
  if (abandon_) abandon_(msg);
}

void Network::transmit(const Message& msg) {
  ++stats_.transmissions;
  metrics_.count_message(msg.type);
  if (msg.type == sim::MessageKind::kAck) ++stats_.acks;
  const bool link_down = link_up_ && !link_up_(msg.src, msg.dst);
  if (link_down || (config_.drop_probability > 0.0 &&
                    rng_.chance(config_.drop_probability))) {
    ++stats_.dropped;
    return;
  }
  const double delay = config_.latency.sample(rng_);
  queue_.schedule(delay, [this, msg] { arrive(msg); });
}

void Network::arrive(Message msg) {
  if (msg.type == sim::MessageKind::kAck) {
    // Transport-internal: settle the acknowledged transfer.  This runs
    // even when the original sender has crashed since -- the pending
    // entry is sender-side transport state that must not retransmit
    // forever on behalf of a dead node.
    const auto it = pending_.find(msg.transfer_id);
    if (it != pending_.end()) {
      queue_.cancel(it->second.timer);
      pending_.erase(it);
    }
    // Prune the receiver-side dedup entry (the ack's src is the original
    // receiver), so seen_ is bounded by the in-flight count instead of
    // growing for the life of the network.  A retransmission still in
    // flight when the ack settles can then be delivered a second time --
    // rare, and every protocol message is idempotent at the application
    // layer (versioned updates, exactly-once join chains).
    const auto seen_it = seen_.find(msg.src);
    if (seen_it != seen_.end()) {
      seen_it->second.erase(msg.transfer_id);
      if (seen_it->second.empty()) seen_.erase(seen_it);
    }
    return;
  }
  if (crashed_.count(msg.dst)) {
    ++stats_.dropped;
    return;
  }
  // Acknowledge every reliable arrival, duplicates included (the previous
  // ack may be the thing that got lost).
  Message ack;
  ack.type = sim::MessageKind::kAck;
  ack.src = msg.dst;
  ack.dst = msg.src;
  ack.transfer_id = msg.transfer_id;
  transmit(ack);

  auto& seen = seen_[msg.dst];
  if (!seen.insert(msg.transfer_id).second) {
    ++stats_.duplicates;
    return;
  }
  ++stats_.delivered;
  if (sink_) sink_(msg);
}

void Network::arm_timer(std::uint64_t transfer_id) {
  const auto it = pending_.find(transfer_id);
  VORONET_DCHECK(it != pending_.end());
  it->second.timer =
      queue_.schedule_timer(rto_, [this, transfer_id] {
        on_timeout(transfer_id);
      });
}

void Network::on_timeout(std::uint64_t transfer_id) {
  const auto it = pending_.find(transfer_id);
  if (it == pending_.end()) return;  // acknowledged in the meantime
  Pending& p = it->second;
  // Give up when either endpoint crashed -- a crash-stop sender can never
  // resend, so its unacked transfers die with it -- or the retry cap hit.
  const bool give_up =
      crashed_.count(p.msg.dst) != 0 || crashed_.count(p.msg.src) != 0 ||
      (config_.max_retries > 0 && p.attempts > config_.max_retries);
  if (give_up) {
    abandon_transfer(it);
    return;
  }
  ++p.attempts;
  ++stats_.retransmits;
  transmit(p.msg);
  arm_timer(transfer_id);
}

}  // namespace voronet::protocol
