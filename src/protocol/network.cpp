#include "protocol/network.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/expect.hpp"
#include "net/wire_format.hpp"

namespace voronet::protocol {

namespace {

/// SplitMix64 finaliser: the deterministic hash behind the retransmission
/// jitter.  Keyed by (transfer id, attempt) so concurrent transfers --
/// and successive attempts of one transfer -- desynchronise without
/// consuming the delivery Rng stream.
[[nodiscard]] std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Payloads above this capacity are not worth hoarding in the pool.
constexpr std::size_t kMaxPooledPayload = 4096;
constexpr std::size_t kMaxPoolSize = 1024;

}  // namespace

Network::Network(sim::EventQueue& queue, const NetworkConfig& config)
    : queue_(queue), config_(config), rng_(config.seed) {
  VORONET_EXPECT(config.drop_probability >= 0.0 &&
                     config.drop_probability < 1.0,
                 "drop probability must lie in [0, 1)");
  VORONET_EXPECT(config.backoff_factor >= 1.0,
                 "retransmit backoff factor must be >= 1");
  VORONET_EXPECT(config.jitter >= 0.0 && config.jitter < 1.0,
                 "retransmit jitter must lie in [0, 1)");
  // Auto-RTO: a round trip of pessimistic one-way delays plus slack, so
  // that under fixed/uniform latency a timeout implies a genuine loss.
  rto_ = config.retransmit_timeout > 0.0
             ? config.retransmit_timeout
             : 2.0 * config.latency.high_quantile() + 0.01;
  rto_cap_ = config.rto_cap > 0.0 ? config.rto_cap : 16.0 * rto_;
}

double Network::backoff_timeout(std::uint64_t transfer_id,
                                std::size_t attempts) const {
  // Attempt k waits min(rto * f^(k-1), cap): responsive to a single loss,
  // but a transfer stuck behind a loss burst / latency spike / stalled
  // receiver stops hammering the window.  pow() stays finite: the
  // exponent is capped by where the ceiling bites anyway.
  const double exponent = std::min<double>(static_cast<double>(attempts - 1),
                                           40.0);
  double timeout =
      std::min(rto_ * std::pow(config_.backoff_factor, exponent), rto_cap_);
  if (config_.jitter > 0.0) {
    // Deterministic jitter in [1 - j/2, 1 + j/2): hashed, not drawn, so
    // the Rng delivery stream (and with it every committed replay) is
    // untouched by how often a transfer retried.
    const double u = static_cast<double>(
                         mix64(transfer_id * 0x2545f4914f6cdd1dULL +
                               attempts) >>
                         11) *
                     0x1.0p-53;
    timeout *= 1.0 + config_.jitter * (u - 0.5);
  }
  return timeout;
}

double Network::effective_drop() const {
  double drop = config_.drop_probability;
  for (const double extra : loss_bursts_) drop += extra;
  // Windows are finite (validated by the scenario layer), so a saturated
  // probability cannot retransmit forever -- but keep it a probability.
  return std::min(drop, 1.0);
}

// ---------------------------------------------------------------------------
// Slot table / payload pool
// ---------------------------------------------------------------------------

void Network::set_flag(std::vector<std::uint8_t>& flags, NodeId node,
                       bool on) {
  if (node < 0) return;
  const auto idx = static_cast<std::size_t>(node);
  if (idx >= flags.size()) {
    if (!on) return;
    flags.resize(idx + 1, 0);
  }
  flags[idx] = on ? 1 : 0;
}

Network::Transfer* Network::live_transfer(std::uint32_t slot,
                                          std::uint64_t transfer_id) {
  if (slot == kNoTransferSlot || slot >= transfers_.size()) return nullptr;
  Transfer& t = transfers_[slot];
  return t.id == transfer_id ? &t : nullptr;
}

std::uint32_t Network::alloc_slot() {
  ++in_flight_;
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  transfers_.emplace_back();
  return static_cast<std::uint32_t>(transfers_.size() - 1);
}

void Network::free_slot(std::uint32_t slot) {
  Transfer& t = transfers_[slot];
  recycle_payload(std::move(t.msg.entries));
  t.msg.entries.clear();
  t.id = 0;
  t.attempts = 1;
  t.timer = sim::kNoTimer;
  t.span = obs::kNoSpan;
  t.delivered = false;
  free_slots_.push_back(slot);
  VORONET_DCHECK(in_flight_ > 0);
  --in_flight_;
}

void Network::recycle_payload(std::vector<ViewEntry>&& entries) {
  if (entries.capacity() == 0 || entries.capacity() > kMaxPooledPayload ||
      payload_pool_.size() >= kMaxPoolSize) {
    return;
  }
  entries.clear();
  payload_pool_.push_back(std::move(entries));
}

Message Network::draft(std::size_t reserve_entries) {
  Message m;
  if (!payload_pool_.empty()) {
    m.entries = std::move(payload_pool_.back());
    payload_pool_.pop_back();
  }
  if (reserve_entries > 0) m.entries.reserve(reserve_entries);
  return m;
}

bool Network::OrphanWindow::insert(std::uint64_t transfer_id, NodeId dst) {
  if (ring.empty()) ring.resize(Network::kOrphanDedupCapacity);
  for (const Rec& r : ring) {
    if (r.transfer_id == transfer_id) return false;  // already recorded
  }
  Rec& r = ring[next];
  if (r.transfer_id != 0) --count;  // FIFO eviction of the oldest record
  r.transfer_id = transfer_id;
  r.dst = dst;
  ++count;
  next = (next + 1) % ring.size();
  return true;
}

void Network::OrphanWindow::erase(std::uint64_t transfer_id) {
  for (Rec& r : ring) {
    if (r.transfer_id == transfer_id) {
      r = Rec{};
      --count;
      return;
    }
  }
}

void Network::OrphanWindow::erase_dst(NodeId dst) {
  for (Rec& r : ring) {
    if (r.transfer_id != 0 && r.dst == dst) {
      r = Rec{};
      --count;
    }
  }
}

std::size_t Network::dedup_entries() const {
  std::size_t n = orphans_.size();
  for (const Transfer& t : transfers_) {
    if (t.id != 0 && t.delivered) ++n;
  }
  return n;
}

std::size_t Network::memory_bytes() const {
  std::size_t b = transfers_.size() * sizeof(Transfer);
  for (const Transfer& t : transfers_) {
    b += t.msg.entries.capacity() * sizeof(ViewEntry);
  }
  for (const auto& p : payload_pool_) b += p.capacity() * sizeof(ViewEntry);
  b += free_slots_.capacity() * sizeof(std::uint32_t);
  b += orphans_.ring.capacity() * sizeof(OrphanWindow::Rec);
  b += crashed_.capacity() + stalled_.capacity();
  b += stall_backlog_.capacity() * sizeof(std::vector<Message>);
  for (const auto& backlog : stall_backlog_) {
    b += backlog.capacity() * sizeof(Message);
    for (const Message& m : backlog) {
      b += m.entries.capacity() * sizeof(ViewEntry);
    }
  }
  return b;
}

// ---------------------------------------------------------------------------
// Send / failure injection
// ---------------------------------------------------------------------------

void Network::send(Message msg) {
  msg.transfer_id = next_transfer_++;
  ++stats_.sends;
  const bool reliable = msg.type != sim::MessageKind::kAck;
  obs::SpanId span = obs::kNoSpan;
  std::uint32_t slot = kNoTransferSlot;
  if (reliable) {
    slot = alloc_slot();
    msg.transfer_slot = slot;
  }
  if (reliable && tracing()) {
    // One span per reliable transfer, parented to the message's carried
    // (application-level) span; its instants record the retransmission
    // timeline, its end the settle or abandonment.
    std::string name = "xfer:";
    name += sim::message_kind_name(msg.type);
    span = tracer_->begin_span(queue_.now(), name, msg.src, msg.span);
    tracer_->arg(span, "dst",
                 static_cast<std::uint64_t>(static_cast<std::int64_t>(msg.dst)));
    tracer_->arg(span, "transfer", msg.transfer_id);
  }
  if (reliable && recording()) {
    recorder_->record(msg.src, queue_.now(), obs::FlightEvent::kSend,
                      msg.type, msg.dst, msg.version, msg.epoch);
  }
  transmit(msg);
  if (reliable) {
    Transfer& t = transfers_[slot];
    t.id = msg.transfer_id;
    recycle_payload(std::move(t.msg.entries));  // retire previous payload
    t.msg = std::move(msg);
    t.attempts = 1;
    t.span = span;
    t.delivered = false;
    arm_timer(slot);
  }
}

void Network::crash(NodeId node) {
  if (recording()) {
    recorder_->record(node, queue_.now(), obs::FlightEvent::kCrash,
                      sim::MessageKind::kCount, -1);
  }
  set_flag(crashed_, node, true);
  // A crashed node's wedged process dies with the host: discard the
  // parked backlog instead of delivering it to a corpse on resume.
  set_flag(stalled_, node, false);
  if (node >= 0 && static_cast<std::size_t>(node) < stall_backlog_.size()) {
    backlog_count_ -= stall_backlog_[static_cast<std::size_t>(node)].size();
    stall_backlog_[static_cast<std::size_t>(node)].clear();
  }
}

void Network::stall(NodeId node) {
  if (crashed(node)) return;  // dead beats wedged
  if (recording()) {
    recorder_->record(node, queue_.now(), obs::FlightEvent::kStall,
                      sim::MessageKind::kCount, -1);
  }
  set_flag(stalled_, node, true);
}

void Network::resume(NodeId node) {
  if (!stalled(node)) return;
  if (recording()) {
    recorder_->record(node, queue_.now(), obs::FlightEvent::kResume,
                      sim::MessageKind::kCount, -1);
  }
  set_flag(stalled_, node, false);
  if (node < 0 || static_cast<std::size_t>(node) >= stall_backlog_.size()) {
    return;
  }
  // Drain in arrival order.  Move the backlog out first: delivering a
  // message can trigger sends whose acks / retransmissions must not
  // append to the vector mid-iteration.
  std::vector<Message> backlog =
      std::move(stall_backlog_[static_cast<std::size_t>(node)]);
  stall_backlog_[static_cast<std::size_t>(node)].clear();
  backlog_count_ -= backlog.size();
  for (Message& msg : backlog) receive(std::move(msg));
}

void Network::resume_all() {
  // Deterministic drain order: ascending node id (the dense bitmap's
  // natural scan order -- previously an explicit sort over a hash set).
  for (std::size_t n = 0; n < stalled_.size(); ++n) {
    if (stalled_[n] != 0) resume(static_cast<NodeId>(n));
  }
}

void Network::begin_loss_burst(double extra_drop) {
  loss_bursts_.push_back(extra_drop);
}

void Network::end_loss_burst(double extra_drop) {
  const auto it =
      std::find(loss_bursts_.begin(), loss_bursts_.end(), extra_drop);
  if (it != loss_bursts_.end()) loss_bursts_.erase(it);
}

void Network::begin_latency_spike(double factor) {
  latency_spikes_.push_back(factor);
}

void Network::end_latency_spike(double factor) {
  const auto it =
      std::find(latency_spikes_.begin(), latency_spikes_.end(), factor);
  if (it != latency_spikes_.end()) latency_spikes_.erase(it);
}

void Network::begin_duplication(double probability) {
  duplications_.push_back(probability);
}

void Network::end_duplication(double probability) {
  const auto it =
      std::find(duplications_.begin(), duplications_.end(), probability);
  if (it != duplications_.end()) duplications_.erase(it);
}

void Network::revive(NodeId node) {
  // A recycled id is a brand-new endpoint: it must not inherit its
  // predecessor's unsettled transfers either.  A reliable transfer still
  // armed from the dead predecessor's era would otherwise retransmit into
  // the new endpoint (stale content, fresh dedup table) or resend on the
  // dead sender's behalf.  Abandon them through the regular give-up path
  // -- BEFORE clearing the crashed mark, so the application layer's
  // abandon handler still observes which side died and can re-ship
  // authoritative content from a live witness.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> stale;
  for (std::uint32_t slot = 0; slot < transfers_.size(); ++slot) {
    const Transfer& t = transfers_[slot];
    if (t.id != 0 && (t.msg.src == node || t.msg.dst == node)) {
      stale.emplace_back(t.id, slot);
    }
  }
  // Abandon in ascending transfer-id order: the abandon handler may send
  // fresh messages, so the order is semantic -- it must be a property of
  // the run, not of the slot table's recycling history.
  std::sort(stale.begin(), stale.end());
  for (const auto& [id, slot] : stale) {
    if (transfers_[slot].id != id) continue;  // settled by a handler's send
    queue_.cancel(transfers_[slot].timer);
    abandon_transfer(slot);
  }
  set_flag(crashed_, node, false);
  // ... nor its predecessor's dedup history, stall window, or flight-
  // recorder ring (the ring is per-endpoint history; a recycled id is a
  // different endpoint).
  if (!orphans_.empty()) orphans_.erase_dst(node);
  set_flag(stalled_, node, false);
  if (node >= 0 && static_cast<std::size_t>(node) < stall_backlog_.size()) {
    backlog_count_ -= stall_backlog_[static_cast<std::size_t>(node)].size();
    stall_backlog_[static_cast<std::size_t>(node)].clear();
  }
  if (recorder_ != nullptr) recorder_->reset_node(node);
}

void Network::abandon_transfer(std::uint32_t slot) {
  Transfer& t = transfers_[slot];
  ++stats_.abandoned;
  metrics_.record_transfer_attempts(t.attempts);
  if (tracing() && t.span != obs::kNoSpan) {
    tracer_->arg(t.span, "attempts", t.attempts);
    tracer_->arg(t.span, "abandoned", std::uint64_t{1});
    tracer_->end_span(t.span, queue_.now());
  }
  if (recording()) {
    recorder_->record(t.msg.src, queue_.now(), obs::FlightEvent::kAbandon,
                      t.msg.type, t.msg.dst, t.msg.version, t.msg.epoch);
  }
  // The settling ack will never come; the delivered bit dies with the
  // slot, which keeps the dedup state bounded by the in-flight count.
  Message msg = std::move(t.msg);
  free_slot(slot);
  // Tell the application layer last: the handler may send afresh (and may
  // reoccupy this very slot -- `t` is dead past this point).
  if (abandon_) abandon_(msg);
  recycle_payload(std::move(msg.entries));
}

// ---------------------------------------------------------------------------
// Wire
// ---------------------------------------------------------------------------

void Network::transmit(const Message& msg) {
  ++stats_.transmissions;
  metrics_.count_message(msg.type);
  metrics_.count_wire_bytes(msg.type, net::wire_frame_size(msg));
  stats_.wire_bytes += net::wire_frame_size(msg);
  if (msg.type == sim::MessageKind::kAck) ++stats_.acks;
  const bool link_down = link_up_ && !link_up_(msg.src, msg.dst);
  const double drop = effective_drop();
  if (link_down || (drop > 0.0 && rng_.chance(drop))) {
    ++stats_.dropped;
    if (recording() && msg.type != sim::MessageKind::kAck) {
      recorder_->record(msg.src, queue_.now(), obs::FlightEvent::kDrop,
                        msg.type, msg.dst, msg.version, msg.epoch);
    }
    return;
  }
  double delay = config_.latency.sample(rng_);
  for (const double factor : latency_spikes_) delay *= factor;
  // One payload copy per wire attempt (the closure capture); arrive()
  // consumes it by move and recycles the vector into the draft pool.
  queue_.schedule(delay,
                  [this, m = msg]() mutable { arrive(std::move(m)); });
  if (!duplications_.empty()) {
    // Duplication window: the strongest open window's probability wins
    // (overlapping windows model one flaky path, not independent copies).
    const double dup =
        *std::max_element(duplications_.begin(), duplications_.end());
    if (dup > 0.0 && rng_.chance(dup)) {
      ++stats_.injected_duplicates;
      double dup_delay = config_.latency.sample(rng_);
      for (const double factor : latency_spikes_) dup_delay *= factor;
      queue_.schedule(dup_delay,
                      [this, m = msg]() mutable { arrive(std::move(m)); });
    }
  }
}

void Network::arrive(Message msg) {
  if (msg.type == sim::MessageKind::kAck) {
    // Transport-internal: settle the acknowledged transfer.  This runs
    // even when the original sender has crashed since -- the pending
    // entry is sender-side transport state that must not retransmit
    // forever on behalf of a dead node.  Acks also settle for a stalled
    // sender: the transport state machine lives below the wedged process.
    if (Transfer* t = live_transfer(msg.transfer_slot, msg.transfer_id)) {
      metrics_.record_transfer_attempts(t->attempts);
      if (tracing() && t->span != obs::kNoSpan) {
        tracer_->arg(t->span, "attempts", t->attempts);
        tracer_->end_span(t->span, queue_.now());
      }
      queue_.cancel(t->timer);
      free_slot(msg.transfer_slot);
    }
    // Prune any orphan dedup record (the transfer can have been re-
    // delivered after an earlier settle -- see receive()).  A
    // retransmission still in flight when the ack settles can then be
    // delivered a second time -- rare, and every protocol message is
    // idempotent at the application layer (versioned updates,
    // exactly-once join chains).
    if (!orphans_.empty()) orphans_.erase(msg.transfer_id);
    return;
  }
  if (crashed(msg.dst)) {
    ++stats_.dropped;
    if (recording()) {
      recorder_->record(msg.dst, queue_.now(), obs::FlightEvent::kDrop,
                        msg.type, msg.src, msg.version, msg.epoch);
    }
    recycle_payload(std::move(msg.entries));
    return;
  }
  if (stalled(msg.dst)) {
    // Gray failure: the packet reached the host, but the wedged process
    // cannot run its receive handler -- so no ack either.  The sender's
    // failure detector sees exactly what a crash looks like; only time
    // (resume before its patience runs out) tells the two apart.
    ++stats_.stalled_deferred;
    if (recording()) {
      recorder_->record(msg.dst, queue_.now(), obs::FlightEvent::kParked,
                        msg.type, msg.src, msg.version, msg.epoch);
    }
    const auto idx = static_cast<std::size_t>(msg.dst);
    if (idx >= stall_backlog_.size()) stall_backlog_.resize(idx + 1);
    stall_backlog_[idx].push_back(std::move(msg));
    ++backlog_count_;
    return;
  }
  receive(std::move(msg));
}

void Network::receive(Message msg) {
  // Acknowledge every reliable arrival, duplicates included (the previous
  // ack may be the thing that got lost).
  Message ack;
  ack.type = sim::MessageKind::kAck;
  ack.src = msg.dst;
  ack.dst = msg.src;
  ack.transfer_id = msg.transfer_id;
  ack.transfer_slot = msg.transfer_slot;
  transmit(ack);

  // Dedup: the delivered bit on the live transfer slot, or -- when the
  // slot is already recycled (settled/abandoned with a copy still in
  // flight) -- the bounded orphan window.
  bool fresh;
  if (Transfer* t = live_transfer(msg.transfer_slot, msg.transfer_id)) {
    fresh = !t->delivered;
    t->delivered = true;
  } else {
    fresh = orphans_.insert(msg.transfer_id, msg.dst);
  }
  if (!fresh) {
    ++stats_.duplicates;
    if (recording()) {
      recorder_->record(msg.dst, queue_.now(), obs::FlightEvent::kDuplicate,
                        msg.type, msg.src, msg.version, msg.epoch);
    }
    recycle_payload(std::move(msg.entries));
    return;
  }
  ++stats_.delivered;
  if (recording()) {
    recorder_->record(msg.dst, queue_.now(), obs::FlightEvent::kDeliver,
                      msg.type, msg.src, msg.version, msg.epoch);
  }
  if (sink_) sink_(msg);
  recycle_payload(std::move(msg.entries));
}

void Network::arm_timer(std::uint32_t slot) {
  Transfer& t = transfers_[slot];
  VORONET_DCHECK(t.id != 0);
  const double timeout = backoff_timeout(t.id, t.attempts);
  const std::uint64_t id = t.id;
  t.timer = queue_.schedule_timer(timeout, [this, slot, id] {
    on_timeout(slot, id);
  });
}

void Network::on_timeout(std::uint32_t slot, std::uint64_t transfer_id) {
  Transfer* t = live_transfer(slot, transfer_id);
  if (t == nullptr) return;  // acknowledged in the meantime
  // Give up when either endpoint crashed -- a crash-stop sender can never
  // resend, so its unacked transfers die with it -- or the retry cap hit.
  const bool give_up =
      crashed(t->msg.dst) || crashed(t->msg.src) ||
      (config_.max_retries > 0 && t->attempts > config_.max_retries);
  if (give_up) {
    abandon_transfer(slot);
    return;
  }
  ++t->attempts;
  ++stats_.retransmits;
  if (tracing() && t->span != obs::kNoSpan) {
    const obs::SpanId i = tracer_->instant(queue_.now(), "retransmit",
                                           t->msg.src, t->span);
    tracer_->arg(i, "attempt", t->attempts);
  }
  if (recording()) {
    recorder_->record(t->msg.src, queue_.now(), obs::FlightEvent::kRetransmit,
                      t->msg.type, t->msg.dst, t->msg.version, t->msg.epoch);
  }
  transmit(t->msg);
  arm_timer(slot);
}

}  // namespace voronet::protocol
