#include "protocol/network.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/expect.hpp"

namespace voronet::protocol {

namespace {

/// SplitMix64 finaliser: the deterministic hash behind the retransmission
/// jitter.  Keyed by (transfer id, attempt) so concurrent transfers --
/// and successive attempts of one transfer -- desynchronise without
/// consuming the delivery Rng stream.
[[nodiscard]] std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Network::Network(sim::EventQueue& queue, const NetworkConfig& config)
    : queue_(queue), config_(config), rng_(config.seed) {
  VORONET_EXPECT(config.drop_probability >= 0.0 &&
                     config.drop_probability < 1.0,
                 "drop probability must lie in [0, 1)");
  VORONET_EXPECT(config.backoff_factor >= 1.0,
                 "retransmit backoff factor must be >= 1");
  VORONET_EXPECT(config.jitter >= 0.0 && config.jitter < 1.0,
                 "retransmit jitter must lie in [0, 1)");
  // Auto-RTO: a round trip of pessimistic one-way delays plus slack, so
  // that under fixed/uniform latency a timeout implies a genuine loss.
  rto_ = config.retransmit_timeout > 0.0
             ? config.retransmit_timeout
             : 2.0 * config.latency.high_quantile() + 0.01;
  rto_cap_ = config.rto_cap > 0.0 ? config.rto_cap : 16.0 * rto_;
}

double Network::backoff_timeout(std::uint64_t transfer_id,
                                std::size_t attempts) const {
  // Attempt k waits min(rto * f^(k-1), cap): responsive to a single loss,
  // but a transfer stuck behind a loss burst / latency spike / stalled
  // receiver stops hammering the window.  pow() stays finite: the
  // exponent is capped by where the ceiling bites anyway.
  const double exponent = std::min<double>(static_cast<double>(attempts - 1),
                                           40.0);
  double timeout =
      std::min(rto_ * std::pow(config_.backoff_factor, exponent), rto_cap_);
  if (config_.jitter > 0.0) {
    // Deterministic jitter in [1 - j/2, 1 + j/2): hashed, not drawn, so
    // the Rng delivery stream (and with it every committed replay) is
    // untouched by how often a transfer retried.
    const double u = static_cast<double>(
                         mix64(transfer_id * 0x2545f4914f6cdd1dULL +
                               attempts) >>
                         11) *
                     0x1.0p-53;
    timeout *= 1.0 + config_.jitter * (u - 0.5);
  }
  return timeout;
}

double Network::effective_drop() const {
  double drop = config_.drop_probability;
  for (const double extra : loss_bursts_) drop += extra;
  // Windows are finite (validated by the scenario layer), so a saturated
  // probability cannot retransmit forever -- but keep it a probability.
  return std::min(drop, 1.0);
}

void Network::send(Message msg) {
  msg.transfer_id = next_transfer_++;
  ++stats_.sends;
  const bool reliable = msg.type != sim::MessageKind::kAck;
  obs::SpanId span = obs::kNoSpan;
  if (reliable && tracing()) {
    // One span per reliable transfer, parented to the message's carried
    // (application-level) span; its instants record the retransmission
    // timeline, its end the settle or abandonment.
    std::string name = "xfer:";
    name += sim::message_kind_name(msg.type);
    span = tracer_->begin_span(queue_.now(), name, msg.src, msg.span);
    tracer_->arg(span, "dst",
                 static_cast<std::uint64_t>(static_cast<std::int64_t>(msg.dst)));
    tracer_->arg(span, "transfer", msg.transfer_id);
  }
  if (reliable && recording()) {
    recorder_->record(msg.src, queue_.now(), obs::FlightEvent::kSend,
                      msg.type, msg.dst, msg.version, msg.epoch);
  }
  transmit(msg);
  if (reliable) {
    const std::uint64_t id = msg.transfer_id;
    pending_.emplace(id, Pending{std::move(msg), 1, sim::kNoTimer, span});
    arm_timer(id);
  }
}

void Network::crash(NodeId node) {
  if (recording()) {
    recorder_->record(node, queue_.now(), obs::FlightEvent::kCrash,
                      sim::MessageKind::kCount, -1);
  }
  crashed_.insert(node);
  // A crashed node's wedged process dies with the host: discard the
  // parked backlog instead of delivering it to a corpse on resume.
  stalled_.erase(node);
  stall_backlog_.erase(node);
}

void Network::stall(NodeId node) {
  if (crashed_.count(node) != 0) return;  // dead beats wedged
  if (recording()) {
    recorder_->record(node, queue_.now(), obs::FlightEvent::kStall,
                      sim::MessageKind::kCount, -1);
  }
  stalled_.insert(node);
}

void Network::resume(NodeId node) {
  const auto it = stalled_.find(node);
  if (it == stalled_.end()) return;
  if (recording()) {
    recorder_->record(node, queue_.now(), obs::FlightEvent::kResume,
                      sim::MessageKind::kCount, -1);
  }
  stalled_.erase(it);
  const auto backlog_it = stall_backlog_.find(node);
  if (backlog_it == stall_backlog_.end()) return;
  // Drain in arrival order.  Move the backlog out first: delivering a
  // message can trigger sends whose acks / retransmissions must not
  // append to the vector mid-iteration.
  std::vector<Message> backlog = std::move(backlog_it->second);
  stall_backlog_.erase(backlog_it);
  for (Message& msg : backlog) receive(std::move(msg));
}

void Network::resume_all() {
  // Deterministic drain order: ascending node id, independent of the
  // unordered_set's iteration order.
  std::vector<NodeId> nodes(stalled_.begin(), stalled_.end());
  std::sort(nodes.begin(), nodes.end());
  for (const NodeId node : nodes) resume(node);
}

void Network::begin_loss_burst(double extra_drop) {
  loss_bursts_.push_back(extra_drop);
}

void Network::end_loss_burst(double extra_drop) {
  const auto it =
      std::find(loss_bursts_.begin(), loss_bursts_.end(), extra_drop);
  if (it != loss_bursts_.end()) loss_bursts_.erase(it);
}

void Network::begin_latency_spike(double factor) {
  latency_spikes_.push_back(factor);
}

void Network::end_latency_spike(double factor) {
  const auto it =
      std::find(latency_spikes_.begin(), latency_spikes_.end(), factor);
  if (it != latency_spikes_.end()) latency_spikes_.erase(it);
}

void Network::begin_duplication(double probability) {
  duplications_.push_back(probability);
}

void Network::end_duplication(double probability) {
  const auto it =
      std::find(duplications_.begin(), duplications_.end(), probability);
  if (it != duplications_.end()) duplications_.erase(it);
}

void Network::revive(NodeId node) {
  // A recycled id is a brand-new endpoint: it must not inherit its
  // predecessor's unsettled transfers either.  A reliable transfer still
  // armed from the dead predecessor's era would otherwise retransmit into
  // the new endpoint (stale content, fresh dedup table) or resend on the
  // dead sender's behalf.  Abandon them through the regular give-up path
  // -- BEFORE clearing the crashed mark, so the application layer's
  // abandon handler still observes which side died and can re-ship
  // authoritative content from a live witness.
  std::vector<std::uint64_t> stale;
  for (const auto& [id, p] : pending_) {
    if (p.msg.src == node || p.msg.dst == node) stale.push_back(id);
  }
  for (const std::uint64_t id : stale) {
    const auto it = pending_.find(id);
    if (it == pending_.end()) continue;  // settled by a handler's send
    queue_.cancel(it->second.timer);
    abandon_transfer(it);
  }
  crashed_.erase(node);
  // ... nor its predecessor's dedup history or stall window.
  seen_.erase(node);
  stalled_.erase(node);
  stall_backlog_.erase(node);
}

void Network::abandon_transfer(
    std::unordered_map<std::uint64_t, Pending>::iterator it) {
  ++stats_.abandoned;
  metrics_.record_transfer_attempts(it->second.attempts);
  if (tracing() && it->second.span != obs::kNoSpan) {
    tracer_->arg(it->second.span, "attempts", it->second.attempts);
    tracer_->arg(it->second.span, "abandoned", std::uint64_t{1});
    tracer_->end_span(it->second.span, queue_.now());
  }
  if (recording()) {
    recorder_->record(it->second.msg.src, queue_.now(),
                      obs::FlightEvent::kAbandon, it->second.msg.type,
                      it->second.msg.dst, it->second.msg.version,
                      it->second.msg.epoch);
  }
  const Message msg = std::move(it->second.msg);
  pending_.erase(it);
  // The settling ack will never come, so drop the receiver-side dedup
  // entry here (keeps seen_ bounded by the genuinely in-flight count).
  const auto seen_it = seen_.find(msg.dst);
  if (seen_it != seen_.end()) {
    seen_it->second.erase(msg.transfer_id);
    if (seen_it->second.empty()) seen_.erase(seen_it);
  }
  // Tell the application layer last: the handler may send afresh.
  if (abandon_) abandon_(msg);
}

void Network::transmit(const Message& msg) {
  ++stats_.transmissions;
  metrics_.count_message(msg.type);
  if (msg.type == sim::MessageKind::kAck) ++stats_.acks;
  const bool link_down = link_up_ && !link_up_(msg.src, msg.dst);
  const double drop = effective_drop();
  if (link_down || (drop > 0.0 && rng_.chance(drop))) {
    ++stats_.dropped;
    if (recording() && msg.type != sim::MessageKind::kAck) {
      recorder_->record(msg.src, queue_.now(), obs::FlightEvent::kDrop,
                        msg.type, msg.dst, msg.version, msg.epoch);
    }
    return;
  }
  double delay = config_.latency.sample(rng_);
  for (const double factor : latency_spikes_) delay *= factor;
  queue_.schedule(delay, [this, msg] { arrive(msg); });
  if (!duplications_.empty()) {
    // Duplication window: the strongest open window's probability wins
    // (overlapping windows model one flaky path, not independent copies).
    const double dup =
        *std::max_element(duplications_.begin(), duplications_.end());
    if (dup > 0.0 && rng_.chance(dup)) {
      ++stats_.injected_duplicates;
      double dup_delay = config_.latency.sample(rng_);
      for (const double factor : latency_spikes_) dup_delay *= factor;
      queue_.schedule(dup_delay, [this, msg] { arrive(msg); });
    }
  }
}

void Network::arrive(Message msg) {
  if (msg.type == sim::MessageKind::kAck) {
    // Transport-internal: settle the acknowledged transfer.  This runs
    // even when the original sender has crashed since -- the pending
    // entry is sender-side transport state that must not retransmit
    // forever on behalf of a dead node.  Acks also settle for a stalled
    // sender: the transport state machine lives below the wedged process.
    const auto it = pending_.find(msg.transfer_id);
    if (it != pending_.end()) {
      metrics_.record_transfer_attempts(it->second.attempts);
      if (tracing() && it->second.span != obs::kNoSpan) {
        tracer_->arg(it->second.span, "attempts", it->second.attempts);
        tracer_->end_span(it->second.span, queue_.now());
      }
      queue_.cancel(it->second.timer);
      pending_.erase(it);
    }
    // Prune the receiver-side dedup entry (the ack's src is the original
    // receiver), so seen_ is bounded by the in-flight count instead of
    // growing for the life of the network.  A retransmission still in
    // flight when the ack settles can then be delivered a second time --
    // rare, and every protocol message is idempotent at the application
    // layer (versioned updates, exactly-once join chains).
    const auto seen_it = seen_.find(msg.src);
    if (seen_it != seen_.end()) {
      seen_it->second.erase(msg.transfer_id);
      if (seen_it->second.empty()) seen_.erase(seen_it);
    }
    return;
  }
  if (crashed_.count(msg.dst)) {
    ++stats_.dropped;
    if (recording()) {
      recorder_->record(msg.dst, queue_.now(), obs::FlightEvent::kDrop,
                        msg.type, msg.src, msg.version, msg.epoch);
    }
    return;
  }
  if (stalled_.count(msg.dst)) {
    // Gray failure: the packet reached the host, but the wedged process
    // cannot run its receive handler -- so no ack either.  The sender's
    // failure detector sees exactly what a crash looks like; only time
    // (resume before its patience runs out) tells the two apart.
    ++stats_.stalled_deferred;
    if (recording()) {
      recorder_->record(msg.dst, queue_.now(), obs::FlightEvent::kParked,
                        msg.type, msg.src, msg.version, msg.epoch);
    }
    stall_backlog_[msg.dst].push_back(std::move(msg));
    return;
  }
  receive(std::move(msg));
}

void Network::receive(Message msg) {
  // Acknowledge every reliable arrival, duplicates included (the previous
  // ack may be the thing that got lost).
  Message ack;
  ack.type = sim::MessageKind::kAck;
  ack.src = msg.dst;
  ack.dst = msg.src;
  ack.transfer_id = msg.transfer_id;
  transmit(ack);

  auto& seen = seen_[msg.dst];
  if (!seen.insert(msg.transfer_id).second) {
    ++stats_.duplicates;
    if (recording()) {
      recorder_->record(msg.dst, queue_.now(), obs::FlightEvent::kDuplicate,
                        msg.type, msg.src, msg.version, msg.epoch);
    }
    return;
  }
  ++stats_.delivered;
  if (recording()) {
    recorder_->record(msg.dst, queue_.now(), obs::FlightEvent::kDeliver,
                      msg.type, msg.src, msg.version, msg.epoch);
  }
  if (sink_) sink_(msg);
}

void Network::arm_timer(std::uint64_t transfer_id) {
  const auto it = pending_.find(transfer_id);
  VORONET_DCHECK(it != pending_.end());
  const double timeout = backoff_timeout(transfer_id, it->second.attempts);
  it->second.timer =
      queue_.schedule_timer(timeout, [this, transfer_id] {
        on_timeout(transfer_id);
      });
}

void Network::on_timeout(std::uint64_t transfer_id) {
  const auto it = pending_.find(transfer_id);
  if (it == pending_.end()) return;  // acknowledged in the meantime
  Pending& p = it->second;
  // Give up when either endpoint crashed -- a crash-stop sender can never
  // resend, so its unacked transfers die with it -- or the retry cap hit.
  const bool give_up =
      crashed_.count(p.msg.dst) != 0 || crashed_.count(p.msg.src) != 0 ||
      (config_.max_retries > 0 && p.attempts > config_.max_retries);
  if (give_up) {
    abandon_transfer(it);
    return;
  }
  ++p.attempts;
  ++stats_.retransmits;
  if (tracing() && p.span != obs::kNoSpan) {
    const obs::SpanId i = tracer_->instant(queue_.now(), "retransmit",
                                           p.msg.src, p.span);
    tracer_->arg(i, "attempt", p.attempts);
  }
  if (recording()) {
    recorder_->record(p.msg.src, queue_.now(), obs::FlightEvent::kRetransmit,
                      p.msg.type, p.msg.dst, p.msg.version, p.msg.epoch);
  }
  transmit(p.msg);
  arm_timer(transfer_id);
}

}  // namespace voronet::protocol
