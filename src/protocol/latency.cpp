#include "protocol/latency.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace voronet::protocol {

double LatencyModel::sample(Rng& rng) const {
  switch (kind) {
    case Kind::kFixed:
      return a;
    case Kind::kUniform:
      return rng.uniform(a, b);
    case Kind::kLognormal: {
      const double median = b - a;
      VORONET_EXPECT(median >= 0.0, "lognormal median below the floor");
      if (median == 0.0) return a;
      // Box-Muller on two uniforms; exp(sigma * z) has median 1, so the
      // scale factor makes the configured median exact.
      const double u1 = rng.uniform(1e-12, 1.0);
      const double u2 = rng.uniform();
      const double z = std::sqrt(-2.0 * std::log(u1)) *
                       std::cos(2.0 * 3.14159265358979323846 * u2);
      return a + median * std::exp(sigma * z);
    }
  }
  return a;
}

double LatencyModel::high_quantile() const {
  switch (kind) {
    case Kind::kFixed:
      return a;
    case Kind::kUniform:
      return b;
    case Kind::kLognormal:
      return a + (b - a) * std::exp(2.0 * sigma);
  }
  return a;
}

const char* LatencyModel::name() const {
  switch (kind) {
    case Kind::kFixed:
      return "fixed";
    case Kind::kUniform:
      return "uniform";
    case Kind::kLognormal:
      return "lognormal";
  }
  return "unknown";
}

}  // namespace voronet::protocol
