// Open-addressing NodeId -> value map for per-query flood state.
//
// The query runtime needs one associative lookup per flood participant
// (dedup of duplicate forwards, the region-test memo).  Node ids are
// dense non-negative ints, participation counts are small-to-moderate,
// and the maps die wholesale when the query completes -- so a flat
// linear-probing table with no per-node deletion beats a node-based
// unordered_map on both memory (no per-entry allocation) and locality.
//
// Deliberately minimal: insert, find, clear.  Erasing a single key is
// not supported -- flood state is only ever dropped a whole query at a
// time, which is what keeps the probe sequences tombstone-free.
// Iteration order is NOT exposed; every caller that needs an order
// iterates its own entry vector (semantic orders must never depend on a
// hash table -- DESIGN.md, "Memory layout & arenas").
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/expect.hpp"
#include "protocol/message.hpp"

namespace voronet::protocol {

template <typename V>
class FlatNodeMap {
 public:
  [[nodiscard]] V* find(NodeId key) {
    return const_cast<V*>(std::as_const(*this).find(key));
  }
  [[nodiscard]] const V* find(NodeId key) const {
    if (count_ == 0) return nullptr;
    const std::size_t mask = cells_.size() - 1;
    for (std::size_t i = slot(key, mask);; i = (i + 1) & mask) {
      const Cell& c = cells_[i];
      if (c.key == kNoNode) return nullptr;
      if (c.key == key) return &c.value;
    }
  }

  /// Insert (key must be absent -- flood participants are served once).
  V& insert(NodeId key, V value) {
    VORONET_DCHECK(key != kNoNode);
    if ((count_ + 1) * 4 > cells_.size() * 3) grow();
    const std::size_t mask = cells_.size() - 1;
    for (std::size_t i = slot(key, mask);; i = (i + 1) & mask) {
      Cell& c = cells_[i];
      if (c.key == kNoNode) {
        c.key = key;
        c.value = std::move(value);
        ++count_;
        return c.value;
      }
      VORONET_DCHECK(c.key != key);
    }
  }

  /// Pre-size for at least `expected` keys without rehashing: the table
  /// jumps straight to the final power-of-two capacity (load factor
  /// 3/4), so bulk writers -- the serving layer's ground-truth grader
  /// fills one entry per live node -- pay zero intermediate grows.
  void reserve(std::size_t expected) {
    std::size_t cap = cells_.empty() ? 16 : cells_.size();
    while (expected * 4 > cap * 3) cap *= 2;
    if (cap == cells_.size()) return;
    std::vector<Cell> old = std::move(cells_);
    cells_.assign(cap, Cell{});
    count_ = 0;
    for (Cell& c : old) {
      if (c.key != kNoNode) insert(c.key, std::move(c.value));
    }
  }

  void clear() {
    cells_.clear();
    count_ = 0;
  }

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::size_t bytes() const {
    return cells_.capacity() * sizeof(Cell);
  }

 private:
  struct Cell {
    NodeId key = kNoNode;
    V value{};
  };

  [[nodiscard]] static std::size_t slot(NodeId key, std::size_t mask) {
    // Fibonacci hash of the dense id: adjacent ids spread apart.
    auto h = static_cast<std::uint32_t>(key) * 0x9e3779b1u;
    return static_cast<std::size_t>(h) & mask;
  }

  void grow() {
    const std::size_t cap = cells_.empty() ? 16 : cells_.size() * 2;
    std::vector<Cell> old = std::move(cells_);
    cells_.assign(cap, Cell{});
    count_ = 0;
    for (Cell& c : old) {
      if (c.key != kNoNode) insert(c.key, std::move(c.value));
    }
  }

  std::vector<Cell> cells_;
  std::size_t count_ = 0;
};

}  // namespace voronet::protocol
