// Open-loop Poisson query stream + SLO grading for the serving layer.
//
// "Open loop" is the load-testing discipline: arrival instants are drawn
// ONCE from a Poisson process and never wait for responses, so a slow
// server faces a growing backlog instead of a conveniently self-throttled
// client (the coordinated-omission trap).  run_open_loop schedules every
// arrival on the transport clock up front, lets the transport drain, and
// measures each query's latency from its SCHEDULED arrival -- on
// ThreadTransport these are real wall-clock milliseconds, on SimTransport
// virtual seconds (same code, per the transport seam).
//
// Grading: after quiescence, every ticket whose completion was stamped
// with the FINAL topology version is compared against sequential ground
// truth (scan the live roster through voronet::site_within_tolerance).
// Tickets completed at an older version answered a topology that no
// longer exists -- exact then, ungradable now -- so churn runs grade the
// post-churn tail only.  On a churn-free run every completed ticket is
// graded and the acceptance gate is recall == precision == 1.0.
#pragma once

#include <cstdint>

#include "serve/query_server.hpp"

namespace voronet::serve {

struct LoadConfig {
  double rate = 200.0;       ///< mean arrivals per transport-second
  double duration = 1.0;     ///< arrival window (transport clock)
  double radius = 0.05;      ///< radius-query radius
  double range_fraction = 0.25;  ///< fraction submitted as range queries
  double range_tol = 0.02;       ///< tolerance of range queries
  double hotspot_fraction = 0.5; ///< arrivals aimed at a hot cell (batchable)
  std::uint64_t seed = 0x10adULL;
};

struct LoadReport {
  std::uint64_t offered = 0;    ///< arrivals scheduled
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;  ///< answered (cache or flood)
  std::uint64_t cache_hits = 0;
  std::uint64_t batches = 0;    ///< covering floods issued
  double mean_batch = 0.0;      ///< queries per flood
  double completion_rate = 0.0; ///< completed / offered
  bool drained = false;         ///< transport reached quiescence

  // Latency over answered queries (transport-clock seconds).
  double p50 = 0.0;
  double p99 = 0.0;
  double max_latency = 0.0;
  double mean_latency = 0.0;

  // Exactness over tickets completed at the final topology version.
  std::uint64_t graded = 0;
  double recall = 1.0;
  double precision = 1.0;
};

/// Drive `server` with an open-loop Poisson stream, drain the transport,
/// grade, and report.  The harness must already hold a converged overlay.
LoadReport run_open_loop(protocol::ProtocolHarness& harness,
                         QueryServer& server, const LoadConfig& config);

}  // namespace voronet::serve
