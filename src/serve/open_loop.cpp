#include "serve/open_loop.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "protocol/flat_map.hpp"
#include "voronet/queries.hpp"

namespace voronet::serve {

namespace {

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

LoadReport run_open_loop(protocol::ProtocolHarness& harness,
                         QueryServer& server, const LoadConfig& config) {
  VORONET_EXPECT(config.rate > 0.0, "open loop: non-positive rate");
  VORONET_EXPECT(config.duration > 0.0, "open loop: non-positive duration");

  protocol::Transport& transport = harness.network();
  Rng rng(config.seed);
  const Vec2 hotspot{rng.uniform(0.25, 0.75), rng.uniform(0.25, 0.75)};

  // Draw the whole arrival schedule up front: open-loop arrivals never
  // react to service times.
  std::vector<QueryServer::TicketId> tickets;
  LoadReport report;
  for (double t = rng.exponential(config.rate); t < config.duration;
       t += rng.exponential(config.rate)) {
    const bool hot = rng.chance(config.hotspot_fraction);
    const bool range = rng.chance(config.range_fraction);
    const Vec2 base = hot ? hotspot
                          : Vec2{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)};
    const Vec2 a{base.x + rng.uniform(-0.02, 0.02),
                 base.y + rng.uniform(-0.02, 0.02)};
    ++report.offered;
    if (range) {
      const Vec2 b{a.x + rng.uniform(-0.1, 0.1), a.y + rng.uniform(-0.1, 0.1)};
      const double tol = config.range_tol;
      transport.schedule(t, [&server, &tickets, a, b, tol] {
        tickets.push_back(server.submit_range(a, b, tol));
      });
    } else {
      const double r = config.radius;
      transport.schedule(t, [&server, &tickets, a, r] {
        tickets.push_back(server.submit_radius(a, r));
      });
    }
  }

  const auto run = harness.run_to_idle();
  report.drained = !run.budget_exhausted;

  const ServeStats& stats = server.stats();
  report.admitted = stats.admitted;
  report.rejected = stats.rejected;
  report.completed = stats.completed;
  report.cache_hits = stats.cache_hits;
  report.batches = stats.batches;
  report.mean_batch =
      stats.batches == 0 ? 0.0
                         : static_cast<double>(stats.batch_members) /
                               static_cast<double>(stats.batches);
  report.completion_rate =
      report.offered == 0 ? 1.0
                          : static_cast<double>(report.completed) /
                                static_cast<double>(report.offered);

  // Latency distribution over answered queries.
  std::vector<double> latencies;
  latencies.reserve(tickets.size());
  for (const auto id : tickets) {
    const QueryServer::Ticket& t = server.ticket(id);
    if (t.done && !t.rejected) latencies.push_back(t.latency());
  }
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    report.p50 = percentile(latencies, 0.50);
    report.p99 = percentile(latencies, 0.99);
    report.max_latency = latencies.back();
    double sum = 0.0;
    for (const double l : latencies) sum += l;
    report.mean_latency = sum / static_cast<double>(latencies.size());
  }

  // Exactness against sequential ground truth, current-topology tickets
  // only (header comment).  The mark table is the FlatNodeMap::reserve
  // path: sized once for the whole roster, zero intermediate grows.
  const std::uint64_t final_version = harness.topology_version();
  const std::vector<NodeId>& roster = harness.roster();
  protocol::FlatNodeMap<char> marks;
  std::uint64_t truth_total = 0, hit_total = 0, match_total = 0;
  for (const auto id : tickets) {
    const QueryServer::Ticket& t = server.ticket(id);
    if (!t.done || t.rejected || t.completed_version != final_version) {
      continue;
    }
    ++report.graded;
    match_total += t.matches.size();
    marks.clear();
    marks.reserve(roster.size());
    for (const NodeId m : t.matches) marks.insert(m, 1);
    for (const NodeId n : roster) {
      if (site_within_tolerance(t.spec.a, t.spec.b,
                                harness.node(n).position(), t.spec.tol)) {
        ++truth_total;
        if (marks.find(n) != nullptr) ++hit_total;
      }
    }
  }
  report.recall = truth_total == 0
                      ? 1.0
                      : static_cast<double>(hit_total) /
                            static_cast<double>(truth_total);
  report.precision = match_total == 0
                         ? 1.0
                         : static_cast<double>(hit_total) /
                               static_cast<double>(match_total);
  return report;
}

}  // namespace voronet::serve
