#include "serve/query_server.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/expect.hpp"
#include "voronet/queries.hpp"

namespace voronet::serve {

namespace {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t bits(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

/// The cache key must treat two specs as equal iff they denote the same
/// region -- issuer is routing detail, not semantics.
bool same_region(const QuerySpec& a, const QuerySpec& b) {
  return a.kind == b.kind && a.a == b.a && a.b == b.b && a.tol == b.tol;
}

}  // namespace

QueryServer::QueryServer(protocol::ProtocolHarness& harness,
                         const ServeConfig& config)
    : harness_(harness), config_(config), rng_(config.seed) {
  VORONET_EXPECT(config_.queue_capacity > 0, "serve: zero admission capacity");
  VORONET_EXPECT(config_.max_batch > 0, "serve: zero batch bound");
  VORONET_EXPECT(config_.bucket_size > 0.0, "serve: non-positive bucket size");
  harness_.set_query_completion_handler(
      [this](std::uint64_t flood_id) { on_flood_complete(flood_id); });
}

QueryServer::~QueryServer() {
  harness_.set_query_completion_handler(nullptr);
}

QueryServer::TicketId QueryServer::submit_radius(Vec2 center, double radius) {
  VORONET_EXPECT(radius >= 0.0, "serve: negative query radius");
  QuerySpec spec;
  spec.kind = QueryKind::kRadius;
  spec.a = center;
  spec.b = center;  // zero-length segment: one site predicate for both kinds
  spec.tol = radius;
  return submit(spec);
}

QueryServer::TicketId QueryServer::submit_range(Vec2 a, Vec2 b, double tol) {
  VORONET_EXPECT(tol >= 0.0, "serve: negative range tolerance");
  QuerySpec spec;
  spec.kind = QueryKind::kRange;
  spec.a = a;
  spec.b = b;
  spec.tol = tol;
  return submit(spec);
}

QueryServer::TicketId QueryServer::submit(QuerySpec spec) {
  ++stats_.submitted;
  const TicketId id = next_ticket_++;
  Ticket& t = tickets_[id];
  t.spec = spec;
  t.arrival = harness_.network().now();

  // Cache: an exact-spec entry stamped with the CURRENT topology version
  // is the answer -- positions are immutable per live object.
  if (config_.cache) {
    auto it = cache_.find(spec_hash(spec));
    if (it != cache_.end() && same_region(it->second.spec, spec) &&
        it->second.entry.version == harness_.topology_version()) {
      ++stats_.cache_hits;
      t.done = true;
      t.cache_hit = true;
      t.completed = t.arrival;
      t.completed_version = it->second.entry.version;
      t.matches = it->second.entry.matches;
      ++stats_.completed;
      return id;
    }
  }

  // Admission: shed at the front door once the service queue is full.
  if (in_service_ >= config_.queue_capacity) {
    ++stats_.rejected;
    t.rejected = true;
    t.done = true;
    t.completed = t.arrival;
    return id;
  }
  ++stats_.admitted;
  ++in_service_;

  const std::uint64_t key = bucket_key(spec.target());
  Bucket& bucket = buckets_[key];
  bucket.members.push_back(id);
  if (bucket.members.size() >= config_.max_batch) {
    flush_bucket(key);
  } else if (!bucket.timer_armed) {
    bucket.timer_armed = true;
    harness_.network().schedule(config_.batch_window, [this, key] {
      Bucket& b = buckets_[key];
      b.timer_armed = false;
      if (!b.members.empty()) flush_bucket(key);
    });
  }
  return id;
}

std::uint64_t QueryServer::bucket_key(Vec2 target) const {
  const auto cell = [&](double v) {
    const double c = std::floor(v / config_.bucket_size);
    return static_cast<std::int64_t>(c);
  };
  return mix64(static_cast<std::uint64_t>(cell(target.x)) * 0x100000001b3ULL ^
               static_cast<std::uint64_t>(cell(target.y)));
}

void QueryServer::flush_bucket(std::uint64_t key) {
  Bucket& bucket = buckets_[key];
  std::vector<TicketId> members;
  members.swap(bucket.members);
  if (members.empty()) return;

  // Nobody to serve: the true result set of every member is empty.
  if (harness_.roster().empty()) {
    const std::size_t n = members.size();
    for (const TicketId id : members) complete(id, {}, n, false);
    return;
  }

  // Covering disk: centroid of the member targets, radius wide enough
  // that every site matching ANY member lies inside (header proof).
  Vec2 c{0.0, 0.0};
  for (const TicketId id : members) c = c + tickets_.at(id).spec.target();
  c = (1.0 / static_cast<double>(members.size())) * c;
  double radius = 0.0;
  for (const TicketId id : members) {
    const QuerySpec& s = tickets_.at(id).spec;
    radius = std::max(radius,
                      std::max(dist(c, s.a), dist(c, s.b)) + s.tol);
  }

  ++stats_.batches;
  stats_.batch_members += members.size();
  const NodeId gateway = harness_.random_node(rng_);
  const std::uint64_t flood_id =
      harness_.issue_radius_query(gateway, c, radius);
  flights_[flood_id].members = std::move(members);
}

void QueryServer::on_flood_complete(std::uint64_t flood_id) {
  auto it = flights_.find(flood_id);
  if (it == flights_.end()) return;  // not one of ours (direct test query)
  const std::vector<TicketId> members = std::move(it->second.members);
  flights_.erase(it);

  // Copy the served cells before anything re-enters the harness: the
  // record reference is invalidated by issuing further queries.
  const std::vector<ViewEntry> owners = harness_.query_record(flood_id).owners;
  const std::uint64_t version = harness_.topology_version();

  for (const TicketId id : members) {
    const QuerySpec spec = tickets_.at(id).spec;
    std::vector<NodeId> matches;
    for (const ViewEntry& e : owners) {  // sorted by id -> matches sorted
      if (site_within_tolerance(spec.a, spec.b, e.pos, spec.tol)) {
        matches.push_back(e.id);
      }
    }
    if (config_.cache) {
      if (cache_.size() >= config_.cache_capacity) {
        stats_.cache_entries_dropped += cache_.size();
        cache_.clear();
      }
      KeyedEntry& slot = cache_[spec_hash(spec)];
      slot.spec = spec;
      slot.entry.version = version;
      slot.entry.matches = matches;
    }
    complete(id, std::move(matches), members.size(), false);
  }
}

void QueryServer::complete(TicketId id, std::vector<NodeId> matches,
                           std::size_t batch_size, bool cache_hit) {
  Ticket& t = tickets_.at(id);
  VORONET_EXPECT(!t.done, "serve: double completion of a ticket");
  t.done = true;
  t.cache_hit = cache_hit;
  t.completed = harness_.network().now();
  t.completed_version = harness_.topology_version();
  t.batch_size = batch_size;
  t.matches = std::move(matches);
  VORONET_EXPECT(in_service_ > 0, "serve: completion without admission");
  --in_service_;
  ++stats_.completed;
}

void QueryServer::drop_completed_tickets() {
  for (auto it = tickets_.begin(); it != tickets_.end();) {
    it = it->second.done ? tickets_.erase(it) : std::next(it);
  }
  harness_.drop_completed_queries();
}

std::uint64_t QueryServer::spec_hash(const QuerySpec& spec) {
  std::uint64_t h = mix64(static_cast<std::uint64_t>(spec.kind));
  h = mix64(h ^ bits(spec.a.x));
  h = mix64(h ^ bits(spec.a.y));
  h = mix64(h ^ bits(spec.b.x));
  h = mix64(h ^ bits(spec.b.y));
  h = mix64(h ^ bits(spec.tol));
  return h;
}

}  // namespace voronet::serve
