// The query front-end of the serving layer: admission, batching, and a
// churn-invalidated result cache in front of the protocol engine's
// region-query floods.
//
// A deployment does not get one flood per client query -- at open-loop
// load the floods would trample each other and the tail would explode.
// This server interposes three classic serving-layer mechanisms, all
// transport-agnostic (they run identically on SimTransport and
// ThreadTransport):
//
//   * ADMISSION: a bounded service queue.  A query is rejected outright
//     when `queue_capacity` admitted queries are still unfinished --
//     load shedding at the front door instead of collapse in the
//     overlay.  Rejections are visible in the stats and the bench's
//     completion rate.
//
//   * BATCHING: admitted queries are bucketed by the region of space
//     they touch (a uniform grid of `bucket_size` cells over the unit
//     square).  A bucket flushes when it holds `max_batch` members or
//     its oldest member has waited `batch_window` seconds.  One flush
//     issues ONE covering flood -- a radius query at the members'
//     centroid C with radius max_i(max(|C-a_i|, |C-b_i|) + tol_i) --
//     whose spanning tree is shared by every member.
//
//     Exactness: any site s matching member i satisfies
//     dist(s, seg_i) <= tol_i, so |s - C| <= max(|C-a_i|,|C-b_i|) +
//     tol_i <= R; s's own cell contains s, hence intersects the covering
//     disk, hence is served by the flood.  Filtering the flood's served
//     (id, pos) pairs through voronet::site_within_tolerance -- the ONE
//     site predicate of the sequential layer -- therefore reproduces
//     each member's match set exactly.  tests/serve_test.cpp pins
//     recall == precision == 1 against the sequential ground truth.
//
//   * RESULT CACHE: completed match sets keyed by the exact QuerySpec,
//     stamped with the harness's topology_version at completion.
//     Positions are immutable per live object, so an unchanged version
//     means an identical live (id, position) set and the cached answer
//     is exact; any join/leave/crash bumps the version and silently
//     invalidates every older entry.  No TTLs, no heuristics.
//
// Single-threaded by construction: every entry point runs on the
// transport's driving thread (Transport::Sink contract), so the server
// needs no locks even over ThreadTransport.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "protocol/harness.hpp"

namespace voronet::serve {

// The serving layer speaks the protocol layer's vocabulary.
using protocol::NodeId;
using protocol::QueryKind;
using protocol::QuerySpec;
using protocol::ViewEntry;

struct ServeConfig {
  /// Admission bound: queries in service (admitted, not yet completed)
  /// beyond this are rejected.
  std::size_t queue_capacity = 256;
  /// Flush a region bucket at this many co-batched members.
  std::size_t max_batch = 8;
  /// ... or when its oldest member has waited this long (transport
  /// clock: virtual seconds on sim, wall seconds on thread).
  double batch_window = 0.005;
  /// Edge length of the region-bucketing grid over the unit square.
  double bucket_size = 0.125;
  /// Result cache on/off, and its entry bound (the whole cache is
  /// dropped when full -- entries are invalidated wholesale by churn
  /// anyway, so eviction finesse buys nothing).
  bool cache = true;
  std::size_t cache_capacity = 4096;
  /// Gateway sampling for the covering floods.
  std::uint64_t seed = 0x5e11eULL;
};

struct ServeStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;    ///< admission-bound sheds
  std::uint64_t cache_hits = 0;  ///< answered without any flood
  std::uint64_t completed = 0;
  std::uint64_t batches = 0;        ///< covering floods issued
  std::uint64_t batch_members = 0;  ///< queries those floods served
  std::uint64_t cache_entries_dropped = 0;
};

class QueryServer {
 public:
  using TicketId = std::uint64_t;

  /// The client-visible record of one submitted query.
  struct Ticket {
    QuerySpec spec;
    double arrival = 0.0;    ///< client arrival (transport clock)
    double completed = 0.0;  ///< answer instant (valid when done)
    bool done = false;
    bool rejected = false;   ///< shed at admission; no answer
    bool cache_hit = false;
    std::size_t batch_size = 0;  ///< members of the flood that served it
    std::uint64_t completed_version = 0;  ///< topology version at answer
    std::vector<NodeId> matches;          ///< sorted site matches

    [[nodiscard]] double latency() const { return completed - arrival; }
  };

  QueryServer(protocol::ProtocolHarness& harness, const ServeConfig& config);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Submit a radius / range query arriving NOW (transport clock).
  /// Returns a ticket id; inspect ticket() after the transport drains
  /// (or poll done).  Rejected tickets are marked, never queued.
  TicketId submit_radius(Vec2 center, double radius);
  TicketId submit_range(Vec2 a, Vec2 b, double tol);

  [[nodiscard]] const Ticket& ticket(TicketId id) const {
    return tickets_.at(id);
  }
  /// Admitted queries not yet answered.
  [[nodiscard]] std::size_t in_service() const { return in_service_; }
  [[nodiscard]] const ServeStats& stats() const { return stats_; }
  /// Forget answered tickets (long open-loop runs would otherwise hold
  /// every match set); callers keep the ids they still care about.
  void drop_completed_tickets();

 private:
  struct Bucket {
    std::vector<TicketId> members;
    bool timer_armed = false;
  };
  /// One in-flight covering flood and the members it serves.
  struct Flight {
    std::vector<TicketId> members;
  };
  struct CacheEntry {
    std::uint64_t version = 0;
    std::vector<NodeId> matches;
  };

  TicketId submit(QuerySpec spec);
  [[nodiscard]] std::uint64_t bucket_key(Vec2 target) const;
  void flush_bucket(std::uint64_t key);
  void on_flood_complete(std::uint64_t flood_id);
  void complete(TicketId id, std::vector<NodeId> matches,
                std::size_t batch_size, bool cache_hit);
  [[nodiscard]] static std::uint64_t spec_hash(const QuerySpec& spec);

  protocol::ProtocolHarness& harness_;
  ServeConfig config_;
  Rng rng_;
  ServeStats stats_;
  TicketId next_ticket_ = 0;
  std::size_t in_service_ = 0;
  std::unordered_map<TicketId, Ticket> tickets_;
  std::unordered_map<std::uint64_t, Bucket> buckets_;
  std::unordered_map<std::uint64_t, Flight> flights_;  ///< by flood query id
  /// spec-hash -> entry; collisions are resolved by storing the spec in
  /// the entry?  No: the hash covers every spec field bit-exactly and a
  /// false hit is ruled out by comparing the stored spec.
  struct KeyedEntry {
    QuerySpec spec;
    CacheEntry entry;
  };
  std::unordered_map<std::uint64_t, KeyedEntry> cache_;
};

}  // namespace voronet::serve
