#include "sim/event_queue.hpp"

#include <utility>

#include "common/expect.hpp"

namespace voronet::sim {

void EventQueue::schedule(double delay, Handler fn) {
  VORONET_EXPECT(delay >= 0.0, "cannot schedule into the past");
  heap_.push(Event{now_ + delay, next_seq_++, kNoTimer, std::move(fn)});
}

TimerId EventQueue::schedule_timer(double delay, Handler fn) {
  VORONET_EXPECT(delay >= 0.0, "cannot schedule into the past");
  const TimerId id = next_timer_++;
  live_timers_.insert(id);
  heap_.push(Event{now_ + delay, next_seq_++, id, std::move(fn)});
  return id;
}

bool EventQueue::cancel(TimerId id) {
  if (live_timers_.erase(id) == 0) return false;
  ++cancelled_in_heap_;
  return true;
}

void EventQueue::skim_cancelled() {
  while (!heap_.empty()) {
    const Event& top = heap_.top();
    if (top.timer == kNoTimer || live_timers_.count(top.timer)) return;
    heap_.pop();
    --cancelled_in_heap_;
  }
}

bool EventQueue::step() {
  skim_cancelled();
  if (heap_.empty()) return false;
  // priority_queue::top returns const&; the handler must be moved out
  // before pop, so copy the bookkeeping fields first.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  if (ev.timer != kNoTimer) live_timers_.erase(ev.timer);
  now_ = ev.at;
  ++processed_;
  ev.fn();
  return true;
}

EventQueue::RunResult EventQueue::run_to_idle(std::size_t max_events) {
  RunResult result;
  while (!idle()) {
    if (result.processed >= max_events) {
      result.budget_exhausted = true;
      break;
    }
    step();
    ++result.processed;
  }
  return result;
}

EventQueue::RunResult EventQueue::run_until(double horizon,
                                            std::size_t max_events) {
  VORONET_EXPECT(horizon >= now_, "cannot run backwards in time");
  RunResult result;
  for (;;) {
    skim_cancelled();
    if (heap_.empty() || heap_.top().at > horizon) break;
    if (result.processed >= max_events) {
      result.budget_exhausted = true;
      return result;  // clock stays at the last executed event
    }
    step();
    ++result.processed;
  }
  now_ = horizon;
  return result;
}

}  // namespace voronet::sim
