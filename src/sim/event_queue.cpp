#include "sim/event_queue.hpp"

#include <utility>

#include "common/expect.hpp"

namespace voronet::sim {

void EventQueue::schedule(double delay, Handler fn) {
  VORONET_EXPECT(delay >= 0.0, "cannot schedule into the past");
  heap_.push(Event{now_ + delay, next_seq_++, std::move(fn)});
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top returns const&; the handler must be moved out
  // before pop, so copy the bookkeeping fields first.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  now_ = ev.at;
  ++processed_;
  ev.fn();
  return true;
}

std::size_t EventQueue::run_to_idle(std::size_t max_events) {
  std::size_t n = 0;
  while (!heap_.empty()) {
    VORONET_EXPECT(n < max_events, "event budget exhausted (protocol loop?)");
    step();
    ++n;
  }
  return n;
}

}  // namespace voronet::sim
