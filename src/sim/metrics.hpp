// Message and operation accounting for the overlay simulation.
//
// Message kinds mirror the paper's protocol messages (section 4), so the
// maintenance-cost tables can be reported per algorithm:
//   * routing forwards (the Spawn chain of Algorithm 5),
//   * AddVoronoiRegion / RemoveVoronoiRegion local updates,
//   * close-neighbour declarations (Lemma 1 gathering),
//   * back-long-range transfers and long-link (re)bindings.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "stats/summary.hpp"

namespace voronet::sim {

enum class MessageKind : std::uint8_t {
  kRouteForward,      ///< greedy Spawn hop (AddObject/SearchLongLink/Query)
  kVoronoiUpdate,     ///< region/link updates after a tessellation change
  kCloseNeighbor,     ///< cn() gathering and declarations
  kBlrTransfer,       ///< back-long-range responsibility hand-over
  kLongLinkBind,      ///< LRn(x) establishment / re-delegation notice
  kLeaveNotify,       ///< departure notifications to cn/vn
  kQueryAnswer,       ///< AnswerQuery back to the requester
  // Wire-level kinds used by the protocol engine (src/protocol): the
  // sequential overlay never emits these, the message-level simulation
  // emits all of them.
  kJoin,              ///< AddObject request entering the network
  kAck,               ///< transport acknowledgement (reliable delivery)
  kQuery,             ///< region query greedy-routing to the flood root
  kQueryForward,      ///< cell-to-cell flood forward of a region query
  kQueryResult,       ///< flood echo / final aggregate back to the issuer
  kQueryAbort,        ///< failed-branch partial echo (covered cells so far)
  kCount
};

inline constexpr std::size_t kMessageKindCount =
    static_cast<std::size_t>(MessageKind::kCount);

// Metrics stores one counter per kind in a fixed std::array indexed by
// the enum (count_message is a single array add: no hashing, no
// allocation, hot at bench_scale's message rates).  That layout is only
// sound while the enum stays closed and 0-based with kCount last; the
// assert makes adding a kind a conscious two-line change (enumerator +
// name) instead of a silent out-of-bounds index.  The metrics JSON keys
// are the enum names in declaration order, so reordering enumerators is
// a report-format change -- append instead.
static_assert(kMessageKindCount == 13,
              "MessageKind changed: update message_kind_name() and this "
              "count, and append (never reorder) to keep report keys "
              "stable");

[[nodiscard]] constexpr std::string_view message_kind_name(MessageKind k) {
  switch (k) {
    case MessageKind::kRouteForward:
      return "route_forward";
    case MessageKind::kVoronoiUpdate:
      return "voronoi_update";
    case MessageKind::kCloseNeighbor:
      return "close_neighbor";
    case MessageKind::kBlrTransfer:
      return "blr_transfer";
    case MessageKind::kLongLinkBind:
      return "long_link_bind";
    case MessageKind::kLeaveNotify:
      return "leave_notify";
    case MessageKind::kQueryAnswer:
      return "query_answer";
    case MessageKind::kJoin:
      return "join";
    case MessageKind::kAck:
      return "ack";
    case MessageKind::kQuery:
      return "query";
    case MessageKind::kQueryForward:
      return "query_forward";
    case MessageKind::kQueryResult:
      return "query_result";
    case MessageKind::kQueryAbort:
      return "query_abort";
    case MessageKind::kCount:
      break;
  }
  return "unknown";
}

enum class OperationKind : std::uint8_t {
  kJoin,
  kLeave,
  kQuery,
  kCount
};

[[nodiscard]] constexpr std::string_view operation_kind_name(
    OperationKind k) {
  switch (k) {
    case OperationKind::kJoin:
      return "join";
    case OperationKind::kLeave:
      return "leave";
    case OperationKind::kQuery:
      return "query";
    case OperationKind::kCount:
      break;
  }
  return "unknown";
}

class Metrics {
 public:
  void count_message(MessageKind kind, std::size_t n = 1) {
    messages_[static_cast<std::size_t>(kind)] += n;
  }

  [[nodiscard]] std::uint64_t messages(MessageKind kind) const {
    return messages_[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] std::uint64_t total_messages() const {
    std::uint64_t sum = 0;
    for (const auto m : messages_) sum += m;
    return sum;
  }

  /// Serialized bytes-on-wire for one transmission of `kind` (the codec
  /// frame size, net/wire_format.hpp).  Every transport backend bills
  /// through this one channel -- the sim and thread backends charge the
  /// bytes the socket backend would actually write, so bytes-per-kind is
  /// comparable across backends for identical traffic.
  void count_wire_bytes(MessageKind kind, std::size_t bytes) {
    wire_bytes_[static_cast<std::size_t>(kind)] += bytes;
  }
  [[nodiscard]] std::uint64_t wire_bytes(MessageKind kind) const {
    return wire_bytes_[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] std::uint64_t total_wire_bytes() const {
    std::uint64_t sum = 0;
    for (const auto b : wire_bytes_) sum += b;
    return sum;
  }

  /// Record one finished operation with its greedy hop count and the total
  /// messages it generated.
  void record_operation(OperationKind kind, std::size_t hops,
                        std::size_t op_messages) {
    const auto i = static_cast<std::size_t>(kind);
    hops_[i].add(static_cast<double>(hops));
    op_messages_[i].add(static_cast<double>(op_messages));
  }

  [[nodiscard]] const stats::StreamingSummary& hops(OperationKind kind) const {
    return hops_[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] const stats::StreamingSummary& operation_messages(
      OperationKind kind) const {
    return op_messages_[static_cast<std::size_t>(kind)];
  }

  /// Record the wire attempts (1 + retransmissions) a reliable transfer
  /// took to settle or be abandoned.  The max of this distribution is the
  /// retransmit-storm detector: under independent loss p with backoff it
  /// stays O(log(1/p)-ish), while a fixed RTO under correlated loss lets
  /// it blow up linearly with the burst length.
  void record_transfer_attempts(std::size_t attempts) {
    transfer_attempts_.add(static_cast<double>(attempts));
  }
  [[nodiscard]] const stats::StreamingSummary& transfer_attempts() const {
    return transfer_attempts_;
  }

  void reset() { *this = Metrics{}; }

 private:
  std::array<std::uint64_t, static_cast<std::size_t>(MessageKind::kCount)>
      messages_{};
  std::array<std::uint64_t, static_cast<std::size_t>(MessageKind::kCount)>
      wire_bytes_{};
  std::array<stats::StreamingSummary,
             static_cast<std::size_t>(OperationKind::kCount)>
      hops_{};
  std::array<stats::StreamingSummary,
             static_cast<std::size_t>(OperationKind::kCount)>
      op_messages_{};
  stats::StreamingSummary transfer_attempts_{};
};

}  // namespace voronet::sim
