// Discrete-event engine for the message-passing overlay simulation.
//
// Events are closures ordered by (virtual time, insertion sequence); ties
// resolve in FIFO order so runs are fully deterministic.  The overlay
// protocol schedules one event per network message (the paper's Spawn),
// which makes message counting and latency modelling explicit.
//
// Two scheduling channels share the clock:
//   * schedule()        -- fire-and-forget events (the common case);
//   * schedule_timer()  -- cancellable events, used by the protocol engine
//                          for retransmit timeouts.  cancel() before the
//                          timer fires suppresses the handler; a cancelled
//                          event neither advances the clock nor counts as
//                          processed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace voronet::sim {

/// Opaque handle for a cancellable timer (0 is never a valid handle).
using TimerId = std::uint64_t;
inline constexpr TimerId kNoTimer = 0;

class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Outcome of a bounded run: how many events executed and whether the
  /// run stopped because the event budget ran out rather than because the
  /// queue went quiet.  Callers that expect quiescence must check
  /// budget_exhausted -- a protocol livelock looks exactly like a long
  /// convergence otherwise.
  struct RunResult {
    std::size_t processed = 0;
    bool budget_exhausted = false;
  };

  /// Schedule fn at now() + delay (delay >= 0).
  void schedule(double delay, Handler fn);

  /// Schedule a cancellable event; the returned handle stays valid until
  /// the event fires or is cancelled.
  TimerId schedule_timer(double delay, Handler fn);

  /// Suppress a pending timer.  Returns true iff the timer was still
  /// pending (false after it fired, was already cancelled, or never
  /// existed).
  bool cancel(TimerId id);

  /// Execute the earliest pending live event; returns false when idle.
  bool step();

  /// Drain the queue (cancelled timers are skipped, not executed).  Stops
  /// after max_events executions and reports it in the result instead of
  /// throwing, so callers can tell budget exhaustion from quiescence.
  RunResult run_to_idle(std::size_t max_events = kDefaultEventBudget);

  /// Execute every event with timestamp <= horizon, then advance the clock
  /// to the horizon (events scheduled later stay pending).  Requires
  /// horizon >= now().
  RunResult run_until(double horizon,
                      std::size_t max_events = kDefaultEventBudget);

  [[nodiscard]] double now() const { return now_; }
  [[nodiscard]] bool idle() const { return pending() == 0; }
  /// Live (non-cancelled) events still queued.
  [[nodiscard]] std::size_t pending() const {
    return heap_.size() - cancelled_in_heap_;
  }
  [[nodiscard]] std::size_t processed() const { return processed_; }

  static constexpr std::size_t kDefaultEventBudget = 100'000'000;

 private:
  struct Event {
    double at;
    std::uint64_t seq;
    TimerId timer;  ///< kNoTimer for plain events
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Pop cancelled timers off the top (without advancing the clock) until
  /// the top is live or the heap is empty.
  void skim_cancelled();

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  // Timers pending in the heap; a cancel() moves the id from here into
  // limbo (tracked by cancelled_in_heap_) until its event is skimmed.
  std::unordered_set<TimerId> live_timers_;
  std::size_t cancelled_in_heap_ = 0;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  TimerId next_timer_ = 1;
  std::size_t processed_ = 0;
};

}  // namespace voronet::sim
