// Discrete-event engine for the message-passing overlay simulation.
//
// Events are closures ordered by (virtual time, insertion sequence); ties
// resolve in FIFO order so runs are fully deterministic.  The overlay
// protocol schedules one event per network message (the paper's Spawn),
// which makes message counting and latency modelling explicit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace voronet::sim {

class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Schedule fn at now() + delay (delay >= 0).
  void schedule(double delay, Handler fn);

  /// Execute the earliest pending event; returns false when idle.
  bool step();

  /// Drain the queue; returns the number of events processed.  max_events
  /// guards against runaway protocol loops.
  std::size_t run_to_idle(std::size_t max_events = kDefaultEventBudget);

  [[nodiscard]] double now() const { return now_; }
  [[nodiscard]] bool idle() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  [[nodiscard]] std::size_t processed() const { return processed_; }

  static constexpr std::size_t kDefaultEventBudget = 100'000'000;

 private:
  struct Event {
    double at;
    std::uint64_t seq;
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
};

}  // namespace voronet::sim
