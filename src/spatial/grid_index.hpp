// Uniform-grid spatial index.
//
// Serves as the brute-force oracle for the test suite (exact nearest and
// range queries to validate the Delaunay nearest-vertex walk and the
// close-neighbour sets of the overlay) and as the reference implementation
// the close-neighbour maintenance is checked against (paper, Lemma 1).
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/vec2.hpp"
#include "geometry/voronoi.hpp"

namespace voronet::spatial {

class GridIndex {
 public:
  using Id = std::uint32_t;

  /// `bounds` should cover the expected point positions (points outside are
  /// clamped into the border cells, which stays correct but slower);
  /// `expected_points` sizes the grid for ~1-2 points per cell.
  GridIndex(geo::Box bounds, std::size_t expected_points);

  void insert(Id id, Vec2 p);
  void remove(Id id, Vec2 p);

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  /// Exact nearest point (ties broken towards the smaller id).
  [[nodiscard]] Id nearest(Vec2 p) const;

  /// All ids with dist(p, center) <= radius, appended to out (unsorted).
  void range(Vec2 center, double radius, std::vector<Id>& out) const;

  /// All ids inside the closed box, appended to out (unsorted).
  void in_box(const geo::Box& box, std::vector<Id>& out) const;

 private:
  struct Entry {
    Id id;
    Vec2 p;
  };

  [[nodiscard]] std::size_t cell_of(Vec2 p) const;
  [[nodiscard]] std::size_t clamp_col(double x) const;
  [[nodiscard]] std::size_t clamp_row(double y) const;

  geo::Box bounds_;
  std::size_t cols_ = 1;
  std::size_t rows_ = 1;
  double cell_w_ = 1.0;
  double cell_h_ = 1.0;
  std::vector<std::vector<Entry>> cells_;
  std::size_t count_ = 0;
};

}  // namespace voronet::spatial
