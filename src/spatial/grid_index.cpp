#include "spatial/grid_index.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/expect.hpp"

namespace voronet::spatial {

GridIndex::GridIndex(geo::Box bounds, std::size_t expected_points)
    : bounds_(bounds) {
  VORONET_EXPECT(bounds.lo.x < bounds.hi.x && bounds.lo.y < bounds.hi.y,
                 "GridIndex requires a non-degenerate bounding box");
  const auto side = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(std::max<std::size_t>(
          expected_points, 1)))));
  cols_ = std::max<std::size_t>(side, 1);
  rows_ = cols_;
  cell_w_ = (bounds_.hi.x - bounds_.lo.x) / static_cast<double>(cols_);
  cell_h_ = (bounds_.hi.y - bounds_.lo.y) / static_cast<double>(rows_);
  cells_.resize(cols_ * rows_);
}

std::size_t GridIndex::clamp_col(double x) const {
  const double f = (x - bounds_.lo.x) / cell_w_;
  if (f <= 0.0) return 0;
  const auto c = static_cast<std::size_t>(f);
  return c >= cols_ ? cols_ - 1 : c;
}

std::size_t GridIndex::clamp_row(double y) const {
  const double f = (y - bounds_.lo.y) / cell_h_;
  if (f <= 0.0) return 0;
  const auto r = static_cast<std::size_t>(f);
  return r >= rows_ ? rows_ - 1 : r;
}

std::size_t GridIndex::cell_of(Vec2 p) const {
  return clamp_row(p.y) * cols_ + clamp_col(p.x);
}

void GridIndex::insert(Id id, Vec2 p) {
  cells_[cell_of(p)].push_back({id, p});
  ++count_;
}

void GridIndex::remove(Id id, Vec2 p) {
  auto& cell = cells_[cell_of(p)];
  const auto it = std::find_if(cell.begin(), cell.end(),
                               [&](const Entry& e) { return e.id == id; });
  VORONET_EXPECT(it != cell.end(), "GridIndex::remove of an absent id");
  *it = cell.back();
  cell.pop_back();
  --count_;
}

GridIndex::Id GridIndex::nearest(Vec2 p) const {
  VORONET_EXPECT(count_ > 0, "GridIndex::nearest on an empty index");
  const std::size_t pc = clamp_col(p.x);
  const std::size_t pr = clamp_row(p.y);

  Id best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  bool found = false;

  const std::size_t max_ring = std::max(cols_, rows_);
  for (std::size_t ring = 0; ring <= max_ring; ++ring) {
    // Once a candidate is known, stop as soon as the closest possible point
    // in the next unexplored ring cannot beat it.
    if (found) {
      const double ring_dist =
          (static_cast<double>(ring) - 1.0) *
          std::min(cell_w_, cell_h_);
      if (ring_dist > 0.0 && ring_dist * ring_dist > best_d) break;
    }
    const auto lo_c = pc >= ring ? pc - ring : 0;
    const auto hi_c = std::min(cols_ - 1, pc + ring);
    const auto lo_r = pr >= ring ? pr - ring : 0;
    const auto hi_r = std::min(rows_ - 1, pr + ring);
    for (std::size_t r = lo_r; r <= hi_r; ++r) {
      for (std::size_t c = lo_c; c <= hi_c; ++c) {
        // Visit only the ring's border cells (interior seen earlier).
        const bool border = r == lo_r || r == hi_r || c == lo_c || c == hi_c;
        if (ring > 0 && !border) continue;
        for (const Entry& e : cells_[r * cols_ + c]) {
          const double d = dist2(e.p, p);
          if (d < best_d || (d == best_d && found && e.id < best)) {
            best = e.id;
            best_d = d;
            found = true;
          }
        }
      }
    }
    if (ring > 0 && lo_c == 0 && lo_r == 0 && hi_c == cols_ - 1 &&
        hi_r == rows_ - 1 && found) {
      break;  // the whole grid has been scanned
    }
  }
  VORONET_EXPECT(found, "GridIndex::nearest found nothing");
  return best;
}

void GridIndex::range(Vec2 center, double radius,
                      std::vector<Id>& out) const {
  VORONET_EXPECT(radius >= 0.0, "negative range radius");
  const double r2 = radius * radius;
  const std::size_t lo_c = clamp_col(center.x - radius);
  const std::size_t hi_c = clamp_col(center.x + radius);
  const std::size_t lo_r = clamp_row(center.y - radius);
  const std::size_t hi_r = clamp_row(center.y + radius);
  for (std::size_t r = lo_r; r <= hi_r; ++r) {
    for (std::size_t c = lo_c; c <= hi_c; ++c) {
      for (const Entry& e : cells_[r * cols_ + c]) {
        if (dist2(e.p, center) <= r2) out.push_back(e.id);
      }
    }
  }
}

void GridIndex::in_box(const geo::Box& box, std::vector<Id>& out) const {
  const std::size_t lo_c = clamp_col(box.lo.x);
  const std::size_t hi_c = clamp_col(box.hi.x);
  const std::size_t lo_r = clamp_row(box.lo.y);
  const std::size_t hi_r = clamp_row(box.hi.y);
  for (std::size_t r = lo_r; r <= hi_r; ++r) {
    for (std::size_t c = lo_c; c <= hi_c; ++c) {
      for (const Entry& e : cells_[r * cols_ + c]) {
        if (box.contains(e.p)) out.push_back(e.id);
      }
    }
  }
}

}  // namespace voronet::spatial
