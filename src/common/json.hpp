// Minimal ordered JSON document type shared by the scenario subsystem and
// the bench binaries.
//
// Building: the figure benches and bench_hotpath share --json <path>; every
// bench writes one JSON object so sweep scripts and the perf-trend tracker
// can consume results without scraping tables.  Numbers are emitted with
// round-trip precision and object members keep insertion order, so a
// document serialized twice from the same values is bit-identical -- the
// property the scenario replay-determinism contract is asserted on.
//
// Parsing: scenario::Scenario files (scenarios/*.json) are read back
// through parse(), so a recorded run can be replayed from disk.  The
// parser covers the JSON subset the writer emits (objects, arrays, finite
// numbers, strings with the writer's escapes, booleans, null).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace voronet {

class Json {
 public:
  static Json object();
  static Json array();
  static Json number(double v);
  static Json integer(unsigned long long v);
  static Json string(std::string v);
  static Json boolean(bool v);
  static Json null();

  /// Parse a complete JSON document; throws std::invalid_argument with a
  /// character offset on malformed input or trailing garbage.
  static Json parse(std::string_view text);

  // --- Building ------------------------------------------------------------

  /// Object member (insertion order preserved); returns *this for chaining.
  Json& set(const std::string& key, Json value);
  /// Array element; returns *this for chaining.
  Json& push(Json value);

  // --- Inspection ----------------------------------------------------------

  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }

  /// Object: member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const Json* find(const std::string& key) const;
  /// Object: member access; throws std::invalid_argument when absent.
  [[nodiscard]] const Json& at(const std::string& key) const;
  /// Array/object: number of elements / members.
  [[nodiscard]] std::size_t size() const { return children_.size(); }
  /// Array: element access (throws on out-of-range / non-array).
  [[nodiscard]] const Json& item(std::size_t i) const;
  /// Object/array: the ordered (key, value) children; array keys are "".
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& children()
      const {
    return children_;
  }

  /// Typed leaf accessors; throw std::invalid_argument on kind mismatch.
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] std::uint64_t as_uint() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] bool as_bool() const;

  /// Convenience: member value with a default when absent.
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] std::uint64_t get_uint(const std::string& key,
                                       std::uint64_t def) const;
  [[nodiscard]] std::string get_string(const std::string& key,
                                       std::string def) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool def) const;

  // --- Output --------------------------------------------------------------

  void write(std::ostream& os, int indent = 0) const;
  [[nodiscard]] std::string str() const;

 private:
  enum class Kind { kObject, kArray, kNumber, kString, kBool, kNull };
  Kind kind_ = Kind::kObject;
  std::string scalar_;  // rendered representation for leaf kinds
  double num_ = 0.0;    // numeric value (kNumber only)
  std::vector<std::pair<std::string, Json>> children_;

  friend class JsonParser;
};

/// Write `doc` to `path` (pretty-printed); throws std::runtime_error on
/// I/O failure.  No-op when path is empty, so callers can pass an
/// optional --json flag value unconditionally.
void write_json_file(const std::string& path, const Json& doc);

/// Read and parse a whole JSON file; throws std::runtime_error when the
/// file cannot be read, std::invalid_argument when it does not parse.
Json read_json_file(const std::string& path);

}  // namespace voronet
