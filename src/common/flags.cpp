#include "common/flags.hpp"

#include <cstdlib>
#include <stdexcept>

namespace voronet {

namespace {
bool looks_like_flag(const std::string& arg) {
  return arg.size() > 2 && arg[0] == '-' && arg[1] == '-';
}
}  // namespace

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!looks_like_flag(arg)) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = {body.substr(eq + 1), false};
      continue;
    }
    // "--name value" form: consume the next token unless it is a flag.
    if (i + 1 < argc && !looks_like_flag(argv[i + 1])) {
      values_[body] = {argv[i + 1], false};
      ++i;
    } else {
      values_[body] = {"", false};  // boolean presence flag
    }
  }
}

bool Flags::has(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return false;
  it->second.second = true;
  return true;
}

std::string Flags::get_string(const std::string& name, std::string def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  it->second.second = true;
  return it->second.first;
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  it->second.second = true;
  try {
    return std::stoll(it->second.first);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects an integer, got '" +
                                it->second.first + "'");
  }
}

double Flags::get_double(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  it->second.second = true;
  try {
    return std::stod(it->second.first);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                it->second.first + "'");
  }
}

bool Flags::get_bool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  it->second.second = true;
  const std::string& v = it->second.first;
  if (v.empty() || v == "1" || v == "true" || v == "yes" || v == "on") {
    return true;
  }
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::invalid_argument("flag --" + name + " expects a boolean, got '" +
                              v + "'");
}

std::vector<std::string> Flags::unconsumed() const {
  std::vector<std::string> out;
  for (const auto& [name, entry] : values_) {
    if (!entry.second) out.push_back(name);
  }
  return out;
}

void Flags::reject_unconsumed() const {
  const auto leftover = unconsumed();
  if (leftover.empty()) return;
  std::string msg = "unknown flag(s):";
  for (const auto& name : leftover) msg += " --" + name;
  throw std::invalid_argument(msg);
}

bool bench_full_scale(const Flags& flags) {
  if (flags.has("full")) return true;
  const char* env = std::getenv("VORONET_BENCH_FULL");
  return env != nullptr && env[0] != '\0';
}

}  // namespace voronet
