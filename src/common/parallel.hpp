// Minimal fork-join parallelism for read-only measurement sweeps.
//
// The overlay structures themselves are mutated sequentially (the protocol
// is inherently ordered), but measurement passes -- routing 10^5 random
// pairs over a frozen overlay, histogramming view sizes -- are
// embarrassingly parallel.  parallel_for() splits an index range over a
// lazily created pool of std::jthread workers; on single-core machines it
// degrades to a plain loop with no thread overhead.
#pragma once

#include <cstddef>
#include <functional>

namespace voronet {

/// Number of worker threads parallel_for() will use (>= 1).
std::size_t parallel_workers();

/// Override the worker count (0 restores the hardware default).  Intended
/// for tests and benchmarks that need deterministic scheduling.
void set_parallel_workers(std::size_t n);

/// Invoke body(begin..end) chunks across the worker pool and join.
///
/// body receives a half-open sub-range [chunk_begin, chunk_end) plus the
/// worker index (0-based) so callers can keep per-worker accumulators and
/// merge them afterwards without locking.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t,
                                           std::size_t)>& body);

/// Convenience: per-element variant; fn(index) is called for each index.
void parallel_for_each(std::size_t begin, std::size_t end,
                       const std::function<void(std::size_t)>& fn);

}  // namespace voronet
