#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "common/expect.hpp"

namespace voronet {

namespace {
std::atomic<std::size_t> g_workers{0};  // 0 = use hardware default

std::size_t hardware_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}
}  // namespace

std::size_t parallel_workers() {
  const std::size_t configured = g_workers.load(std::memory_order_relaxed);
  return configured == 0 ? hardware_workers() : configured;
}

void set_parallel_workers(std::size_t n) {
  g_workers.store(n, std::memory_order_relaxed);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t,
                                           std::size_t)>& body) {
  VORONET_EXPECT(begin <= end, "parallel_for range must be ordered");
  const std::size_t n = end - begin;
  if (n == 0) return;

  const std::size_t workers = std::min(parallel_workers(), n);
  if (workers <= 1) {
    body(begin, end, 0);
    return;
  }

  // Static partition into near-equal chunks: measurement sweeps have
  // uniform per-item cost, so work stealing would add overhead for nothing.
  const std::size_t chunk = (n + workers - 1) / workers;
  std::vector<std::jthread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = begin + w * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    pool.emplace_back([&body, lo, hi, w] { body(lo, hi, w); });
  }
  // jthread joins on destruction.
}

void parallel_for_each(std::size_t begin, std::size_t end,
                       const std::function<void(std::size_t)>& fn) {
  parallel_for(begin, end,
               [&fn](std::size_t lo, std::size_t hi, std::size_t /*worker*/) {
                 for (std::size_t i = lo; i < hi; ++i) fn(i);
               });
}

}  // namespace voronet
