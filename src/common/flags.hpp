// Tiny command-line flag parser shared by the benchmark and example
// binaries.  Supports --name=value, --name value, and boolean --name.
// Unknown flags are reported and abort startup so typos in sweep scripts
// fail loudly instead of silently running the default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace voronet {

/// Parsed command-line flags with typed accessors and defaults.
class Flags {
 public:
  /// Parse argv; throws std::invalid_argument on malformed input.
  Flags(int argc, const char* const* argv);

  /// True if --name was present (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name,
                                       std::string def) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& name, double def) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool def) const;

  /// Positional (non-flag) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Names that were parsed but never queried; used to reject typos.
  [[nodiscard]] std::vector<std::string> unconsumed() const;

  /// Throws std::invalid_argument if any parsed flag was never queried.
  void reject_unconsumed() const;

 private:
  mutable std::map<std::string, std::pair<std::string, bool>> values_;
  std::vector<std::string> positional_;
};

/// Convenience used by bench binaries: true if --full was passed or the
/// environment variable VORONET_BENCH_FULL is set to a non-empty value.
bool bench_full_scale(const Flags& flags);

}  // namespace voronet
