// Deterministic, fast pseudo-random generation.
//
// All stochastic components of the library (workload generation, long-range
// target selection, routing pair sampling) draw from voronet::Rng so that a
// single 64-bit seed reproduces an entire experiment bit-for-bit.
//
// The core generator is xoshiro256++ (Blackman & Vigna), seeded through
// SplitMix64.  It satisfies the C++ UniformRandomBitGenerator requirements
// so it can also feed <random> distributions when convenient.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/expect.hpp"

namespace voronet {

/// xoshiro256++ PRNG.  Deterministic across platforms for a given seed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialise the state from a 64-bit seed via SplitMix64.
  void reseed(std::uint64_t seed) {
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).  Uses the top 53 bits for full mantissa entropy.
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    VORONET_EXPECT(lo <= hi, "uniform(lo, hi) requires lo <= hi");
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound) {
    VORONET_EXPECT(bound > 0, "below(bound) requires bound > 0");
    __extension__ using U128 = unsigned __int128;
    U128 product = static_cast<U128>((*this)()) * bound;
    auto low = static_cast<std::uint64_t>(product);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        product = static_cast<U128>((*this)()) * bound;
        low = static_cast<std::uint64_t>(product);
      }
    }
    return static_cast<std::uint64_t>(product >> 64);
  }

  /// Uniform size_t index in [0, n); convenience for container sampling.
  std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(below(static_cast<std::uint64_t>(n)));
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

  /// Exponential inter-arrival delay for a Poisson process of `rate`
  /// (the one definition every event-driven churn/workload driver uses).
  double exponential(double rate) {
    VORONET_EXPECT(rate > 0.0, "exponential(rate) requires rate > 0");
    return -std::log(uniform(1e-12, 1.0)) / rate;
  }

  /// Derive an independent child generator (for per-thread streams).
  Rng fork() { return Rng((*this)() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace voronet
