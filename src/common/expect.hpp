// Lightweight contract checking used across the library.
//
// VORONET_EXPECT(cond, msg)  -- precondition / invariant check that stays on
//                               in release builds; throws voronet::ContractError.
// VORONET_DCHECK(cond)       -- debug-only check, compiled out in NDEBUG.
//
// The overlay protocol and the geometric kernel both rely on invariants
// whose violation indicates a logic error, never a user error, so failing
// fast with a descriptive exception is the correct policy (CG: I.6, E.12).
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace voronet {

/// Thrown when a library invariant or precondition is violated.
class ContractError final : public std::logic_error {
 public:
  explicit ContractError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_failure(const char* kind, const char* cond,
                                          const std::string& msg,
                                          const std::source_location& loc) {
  std::string full = std::string(kind) + " failed: (" + cond + ") at " +
                     loc.file_name() + ":" + std::to_string(loc.line()) +
                     " in " + loc.function_name();
  if (!msg.empty()) full += " -- " + msg;
  throw ContractError(full);
}
}  // namespace detail

}  // namespace voronet

#define VORONET_EXPECT(cond, msg)                                  \
  do {                                                             \
    if (!(cond)) [[unlikely]] {                                    \
      ::voronet::detail::contract_failure(                         \
          "expectation", #cond, (msg), std::source_location::current()); \
    }                                                              \
  } while (false)

#if defined(NDEBUG)
#define VORONET_DCHECK(cond) \
  do {                       \
  } while (false)
#else
#define VORONET_DCHECK(cond)                                       \
  do {                                                             \
    if (!(cond)) [[unlikely]] {                                    \
      ::voronet::detail::contract_failure(                         \
          "debug check", #cond, "", std::source_location::current()); \
    }                                                              \
  } while (false)
#endif
