#include "common/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/expect.hpp"

namespace voronet {

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // Remaining control characters must be \u-escaped for valid JSON.
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

std::string render_double(double v) {
  // Round-trip precision; JSON has no inf/nan, map them to null.
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

Json Json::object() { return Json{}; }

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.num_ = v;
  j.scalar_ = render_double(v);
  return j;
}

Json Json::integer(unsigned long long v) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.num_ = static_cast<double>(v);
  j.scalar_ = std::to_string(v);
  return j;
}

Json Json::string(std::string v) {
  Json j;
  j.kind_ = Kind::kString;
  j.scalar_ = std::move(v);
  return j;
}

Json Json::boolean(bool v) {
  Json j;
  j.kind_ = Kind::kBool;
  j.scalar_ = v ? "true" : "false";
  return j;
}

Json Json::null() {
  Json j;
  j.kind_ = Kind::kNull;
  j.scalar_ = "null";
  return j;
}

Json& Json::set(const std::string& key, Json value) {
  VORONET_EXPECT(kind_ == Kind::kObject, "set() on a non-object Json value");
  children_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  VORONET_EXPECT(kind_ == Kind::kArray, "push() on a non-array Json value");
  children_.emplace_back(std::string{}, std::move(value));
  return *this;
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : children_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* v = find(key);
  if (v == nullptr) {
    throw std::invalid_argument("missing JSON member \"" + key + "\"");
  }
  return *v;
}

const Json& Json::item(std::size_t i) const {
  if (kind_ != Kind::kArray || i >= children_.size()) {
    throw std::invalid_argument("JSON array index out of range");
  }
  return children_[i].second;
}

double Json::as_double() const {
  if (kind_ != Kind::kNumber) {
    throw std::invalid_argument("JSON value is not a number");
  }
  return num_;
}

namespace {

/// Exact integer extraction from a number's rendered form.  Numbers that
/// were built by integer() or parsed from an integer token keep the full
/// 64-bit value in scalar_; routing through the double would corrupt
/// values above 2^53 (and overflow into UB near the int64 boundary).
template <typename Int>
bool parse_exact(const std::string& s, Int& out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

}  // namespace

std::int64_t Json::as_int() const {
  if (kind_ != Kind::kNumber) {
    throw std::invalid_argument("JSON value is not a number");
  }
  if (std::int64_t i = 0; parse_exact(scalar_, i)) return i;
  // Non-integer rendering (scientific / fractional): accept only values
  // the double represents exactly within the int64 range.
  const double v = num_;
  if (v != std::floor(v) || v < -9.223372036854775808e18 ||
      v >= 9.223372036854775808e18) {
    throw std::invalid_argument("JSON number is not an integer: " + scalar_);
  }
  return static_cast<std::int64_t>(v);
}

std::uint64_t Json::as_uint() const {
  if (kind_ != Kind::kNumber) {
    throw std::invalid_argument("JSON value is not a number");
  }
  if (std::uint64_t u = 0; parse_exact(scalar_, u)) return u;
  const double v = num_;
  if (v < 0.0) {
    throw std::invalid_argument("JSON number is negative: " + scalar_);
  }
  if (v != std::floor(v) || v >= 1.8446744073709552e19) {
    throw std::invalid_argument("JSON number is not an integer: " + scalar_);
  }
  return static_cast<std::uint64_t>(v);
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) {
    throw std::invalid_argument("JSON value is not a string");
  }
  return scalar_;
}

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) {
    throw std::invalid_argument("JSON value is not a boolean");
  }
  return scalar_ == "true";
}

double Json::get_double(const std::string& key, double def) const {
  const Json* v = find(key);
  return v == nullptr ? def : v->as_double();
}

std::uint64_t Json::get_uint(const std::string& key,
                             std::uint64_t def) const {
  const Json* v = find(key);
  return v == nullptr ? def : v->as_uint();
}

std::string Json::get_string(const std::string& key, std::string def) const {
  const Json* v = find(key);
  return v == nullptr ? std::move(def) : v->as_string();
}

bool Json::get_bool(const std::string& key, bool def) const {
  const Json* v = find(key);
  return v == nullptr ? def : v->as_bool();
}

void Json::write(std::ostream& os, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const std::string inner(static_cast<std::size_t>(indent + 1) * 2, ' ');
  switch (kind_) {
    case Kind::kNumber:
    case Kind::kBool:
    case Kind::kNull:
      os << scalar_;
      break;
    case Kind::kString:
      write_escaped(os, scalar_);
      break;
    case Kind::kObject: {
      if (children_.empty()) {
        os << "{}";
        break;
      }
      os << "{\n";
      for (std::size_t i = 0; i < children_.size(); ++i) {
        os << inner;
        write_escaped(os, children_[i].first);
        os << ": ";
        children_[i].second.write(os, indent + 1);
        os << (i + 1 < children_.size() ? ",\n" : "\n");
      }
      os << pad << '}';
      break;
    }
    case Kind::kArray: {
      if (children_.empty()) {
        os << "[]";
        break;
      }
      os << "[\n";
      for (std::size_t i = 0; i < children_.size(); ++i) {
        os << inner;
        children_[i].second.write(os, indent + 1);
        os << (i + 1 < children_.size() ? ",\n" : "\n");
      }
      os << pad << ']';
      break;
    }
  }
}

std::string Json::str() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

// ---------------------------------------------------------------------------
// Parser: recursive descent over the writer's subset of JSON.
// ---------------------------------------------------------------------------

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("JSON parse error at offset " +
                                std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json::string(parse_string());
      case 't':
        if (consume_word("true")) return Json::boolean(true);
        fail("invalid literal");
      case 'f':
        if (consume_word("false")) return Json::boolean(false);
        fail("invalid literal");
      case 'n':
        if (consume_word("null")) return Json::null();
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (consume('}')) return obj;
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      if (consume(',')) continue;
      expect('}');
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (consume(']')) return arr;
    while (true) {
      arr.push(parse_value());
      skip_ws();
      if (consume(',')) continue;
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape digit");
          }
          // The writer only \u-escapes control characters (< 0x20); encode
          // the general case as UTF-8 anyway so foreign documents survive.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(v)) {
      fail("malformed number '" + token + "'");
    }
    // Preserve integer tokens exactly (to_string rendering, full uint64
    // range -- a 64-bit seed must survive parse + write byte-for-byte;
    // the double value is only a lossy convenience view).
    if (token.find_first_of(".eE") == std::string::npos && token[0] != '-') {
      unsigned long long u = 0;
      const auto [uptr, uec] =
          std::from_chars(token.data(), token.data() + token.size(), u);
      if (uec == std::errc{} && uptr == token.data() + token.size()) {
        return Json::integer(u);
      }
    }
    return Json::number(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Json Json::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

void write_json_file(const std::string& path, const Json& doc) {
  if (path.empty()) return;
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open --json path: " + path);
  doc.write(os);
  os << '\n';
  if (!os) throw std::runtime_error("failed writing --json path: " + path);
}

Json read_json_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot read JSON file: " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  return Json::parse(buf.str());
}

}  // namespace voronet
