// The VoroNet wire format, version 1: frame layout constants and the
// size function.
//
// Everything that crosses a process boundary -- transport frames between
// SocketTransport peers, and nothing else -- is one length-prefixed
// little-endian frame per protocol::Message.  This header holds only the
// layout arithmetic (offsets, sizes, magic/version constants), so that
// layers which must *account* for wire bytes without ever touching a
// socket -- protocol::Network and ThreadTransport bill serialized bytes
// per message kind through sim::Metrics -- can depend on the numbers
// without pulling in the codec or any socket code.  The codec itself
// (wire_codec.hpp) is the only writer/reader of the layout.
//
// Frame layout (all integers little-endian, doubles as little-endian
// IEEE-754 bit patterns):
//
//   u32  body_len            length of everything after this prefix
//   u16  magic               0x564e ("NV")
//   u8   wire_version        1
//   u8   type                sim::MessageKind, < kMessageKindCount
//   i32  src                 protocol::NodeId
//   i32  dst
//   u64  version             component / join-chain / query id
//   f64  point.x, point.y
//   u32  hops
//   u8   query.kind          QueryKind, < 2
//   f64  query.a.x, a.y, b.x, b.y, tol
//   i32  query.issuer
//   u8   query_final         0 / 1
//   u32  epoch
//   u64  transfer_id
//   u32  transfer_slot
//   u64  span                trace context (obs::SpanId)
//   u32  entry_count
//   entry_count x { i32 id, f64 pos.x, f64 pos.y }
//
// Versioning rule: the frame is rejected (never partially interpreted)
// unless magic and wire_version match exactly.  Any layout change --
// field added, field widened, enumerator semantics changed -- bumps
// kWireVersion; there is no in-place forward compatibility, because both
// endpoints of a VoroNet deployment ship from the same tree.
#pragma once

#include <cstddef>
#include <cstdint>

#include "protocol/message.hpp"
#include "sim/metrics.hpp"

namespace voronet::net {

inline constexpr std::uint16_t kWireMagic = 0x564e;  // "NV"
inline constexpr std::uint8_t kWireVersion = 1;

/// Length prefix (not part of body_len itself).
inline constexpr std::size_t kFramePrefixBytes = 4;
/// Fixed body bytes before the entries array.
inline constexpr std::size_t kFixedBodyBytes =
    2 + 1 + 1 +      // magic, version, type
    4 + 4 +          // src, dst
    8 +              // version
    8 + 8 +          // point
    4 +              // hops
    1 +              // query.kind
    8 * 5 +          // query.a, query.b, query.tol
    4 +              // query.issuer
    1 +              // query_final
    4 +              // epoch
    8 +              // transfer_id
    4 +              // transfer_slot
    8 +              // span
    4;               // entry_count
/// One ViewEntry on the wire: i32 id + two f64 coordinates.
inline constexpr std::size_t kEntryBytes = 4 + 8 + 8;

/// Reject frames whose declared body length exceeds this before trusting
/// it with an allocation (a corrupt length must fail loudly, not OOM).
inline constexpr std::size_t kMaxFrameBody = 1u << 26;

// The codec serializes every message kind by one shared layout; a new
// kind therefore serializes automatically BUT must be a conscious wire
// decision (receivers of the previous version reject it as an unknown
// type byte only if the version was bumped).  This pin makes adding a
// kind fail compile here until the codec -- and kWireVersion -- have
// been revisited.
static_assert(sim::kMessageKindCount == 13,
              "MessageKind changed: audit the wire codec (decode validates "
              "type < kMessageKindCount), bump net::kWireVersion, and "
              "update this count");

/// Serialized bytes of one message, length prefix included -- the number
/// a SocketTransport actually writes per wire attempt, and the number
/// the Sim/Thread backends bill per transmission so all three backends
/// report identical bytes-on-wire for identical traffic.
[[nodiscard]] inline std::size_t wire_frame_size(
    const protocol::Message& msg) {
  return kFramePrefixBytes + kFixedBodyBytes +
         msg.entries.size() * kEntryBytes;
}

}  // namespace voronet::net
