#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace voronet::net {

namespace {

[[nodiscard]] std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Fill a sockaddr for `addr`; returns the length, 0 on bad input.
socklen_t fill_sockaddr(const Address& addr, sockaddr_storage& storage,
                        std::string& err) {
  std::memset(&storage, 0, sizeof(storage));
  if (addr.family == Address::Family::kUnix) {
    auto& sun = reinterpret_cast<sockaddr_un&>(storage);
    sun.sun_family = AF_UNIX;
    if (addr.path.size() + 1 > sizeof(sun.sun_path)) {
      err = "unix socket path too long: " + addr.path;
      return 0;
    }
    std::memcpy(sun.sun_path, addr.path.c_str(), addr.path.size() + 1);
    return static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                  addr.path.size() + 1);
  }
  auto& sin = reinterpret_cast<sockaddr_in&>(storage);
  sin.sin_family = AF_INET;
  sin.sin_port = htons(addr.port);
  const std::string host =
      addr.host == "localhost" ? std::string("127.0.0.1") : addr.host;
  if (inet_pton(AF_INET, host.c_str(), &sin.sin_addr) != 1) {
    err = "tcp host must be numeric IPv4 (or localhost): " + addr.host;
    return 0;
  }
  return sizeof(sockaddr_in);
}

void set_nodelay(int fd) {
  const int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

std::string Address::spec() const {
  if (family == Family::kUnix) return "uds:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

bool parse_address(const std::string& spec, Address& out, std::string& err) {
  if (spec.rfind("uds:", 0) == 0) {
    out.family = Address::Family::kUnix;
    out.path = spec.substr(4);
    if (out.path.empty()) {
      err = "empty unix socket path in '" + spec + "'";
      return false;
    }
    return true;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == rest.size()) {
      err = "expected tcp:host:port, got '" + spec + "'";
      return false;
    }
    out.family = Address::Family::kTcp;
    out.host = rest.substr(0, colon);
    char* end = nullptr;
    const long port = std::strtol(rest.c_str() + colon + 1, &end, 10);
    if (end == nullptr || *end != '\0' || port < 0 || port > 65535) {
      err = "bad tcp port in '" + spec + "'";
      return false;
    }
    out.port = static_cast<std::uint16_t>(port);
    return true;
  }
  err = "address must start with uds: or tcp:, got '" + spec + "'";
  return false;
}

std::string unique_uds_path() {
  static std::atomic<std::uint64_t> counter{0};
  const char* tmp = std::getenv("TMPDIR");
  std::string dir = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
  if (dir.back() == '/') dir.pop_back();
  return dir + "/voronet-" + std::to_string(::getpid()) + "-" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

bool set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

int open_listener(const Address& addr, Address& resolved, std::string& err) {
  const int domain =
      addr.family == Address::Family::kUnix ? AF_UNIX : AF_INET;
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) {
    err = errno_message("socket");
    return -1;
  }
  if (addr.family == Address::Family::kUnix) {
    ::unlink(addr.path.c_str());  // stale path from a dead predecessor
  } else {
    const int one = 1;
    (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  }
  sockaddr_storage storage;
  const socklen_t len = fill_sockaddr(addr, storage, err);
  if (len == 0 || ::bind(fd, reinterpret_cast<sockaddr*>(&storage), len) < 0 ||
      ::listen(fd, 64) < 0 || !set_nonblocking(fd)) {
    if (err.empty()) err = errno_message("bind/listen");
    ::close(fd);
    return -1;
  }
  resolved = addr;
  if (addr.family == Address::Family::kTcp && addr.port == 0) {
    sockaddr_in sin;
    socklen_t sin_len = sizeof(sin);
    if (getsockname(fd, reinterpret_cast<sockaddr*>(&sin), &sin_len) == 0) {
      resolved.port = ntohs(sin.sin_port);
    }
  }
  return fd;
}

int start_connect(const Address& addr, bool& in_progress, std::string& err) {
  in_progress = false;
  const int domain =
      addr.family == Address::Family::kUnix ? AF_UNIX : AF_INET;
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) {
    err = errno_message("socket");
    return -1;
  }
  if (!set_nonblocking(fd)) {
    err = errno_message("fcntl");
    ::close(fd);
    return -1;
  }
  sockaddr_storage storage;
  const socklen_t len = fill_sockaddr(addr, storage, err);
  if (len == 0) {
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&storage), len) == 0) {
    if (addr.family == Address::Family::kTcp) set_nodelay(fd);
    return fd;
  }
  if (errno == EINPROGRESS || errno == EAGAIN) {
    in_progress = true;
    return fd;
  }
  err = errno_message("connect");
  ::close(fd);
  return -1;
}

int finish_connect(int fd) {
  int soerr = 0;
  socklen_t len = sizeof(soerr);
  if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) < 0) return errno;
  if (soerr == 0) set_nodelay(fd);
  return soerr;
}

int accept_conn(int listen_fd) {
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) return -1;
  if (!set_nonblocking(fd)) {
    ::close(fd);
    return -1;
  }
  set_nodelay(fd);
  return fd;
}

}  // namespace voronet::net
