// Shared little-endian field primitives for the repo's two byte
// layouts: the transport frame codec (wire_codec) and the serving
// boundary's RPC codec (serve_wire).
//
// Writers append explicit byte shifts to a caller-owned buffer, so the
// layouts are pinned little-endian regardless of host endianness (every
// deployment target is little-endian; a big-endian host pays the swap
// here).  The Cursor reader is bounds-UNCHECKED by design: both codecs
// validate the declared frame length once up front, so the per-field
// reads stay branch-free.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

namespace voronet::net::wire {

inline void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

inline void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

inline void put_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

inline void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// Bounds-unchecked reader (see header comment for the contract).
struct Cursor {
  const std::uint8_t* p;

  std::uint8_t u8() { return *p++; }
  std::uint16_t u16() {
    const std::uint16_t v = static_cast<std::uint16_t>(p[0] | (p[1] << 8));
    p += 2;
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    }
    p += 4;
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    }
    p += 8;
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64() { return std::bit_cast<double>(u64()); }
};

}  // namespace voronet::net::wire
